package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"stash"
	"stash/internal/cliutil"
	"stash/internal/frontier"
)

// The frontier experiment sweeps a memory-technology design-space grid
// (workloads x organizations x technology profiles x stash capacities)
// and extracts, per workload, the Pareto frontier over total energy
// (dynamic + leakage), execution time, and local storage capacity.
// Everything printed to stdout is a pure function of the simulated
// metrics, so fresh and cache-served runs are byte-identical.
var (
	frontierWorkloads = flag.String("frontier-workloads", "reuse", "comma-separated workloads for -exp frontier (or 'micro', 'apps', 'all')")
	frontierOrgs      = flag.String("frontier-orgs", "Scratch,Cache,Stash", "comma-separated organizations for -exp frontier")
	frontierTechs     = flag.String("frontier-techs", "sram,stt-mram,edram", "comma-separated technology profiles for -exp frontier")
	frontierCaps      = flag.String("frontier-caps", "16,32", "comma-separated stash capacities in KB for -exp frontier")
	frontierJSON      = flag.String("frontier-json", "", "write the frontier cells (full grid, frontier-flagged) as JSON to this file")
)

// frontierCell is one design point with its objectives, as printed and
// as dumped by -frontier-json.
type frontierCell struct {
	Workload   string  `json:"workload"`
	Org        string  `json:"org"`
	Tech       string  `json:"tech"`
	CapacityKB int     `json:"capacity_kb"`
	Cycles     uint64  `json:"cycles"`
	DynamicPJ  float64 `json:"dynamic_pj"`
	StaticPJ   float64 `json:"static_pj"`
	TotalPJ    float64 `json:"total_pj"`
	OnFrontier bool    `json:"on_frontier"`
}

func (c frontierCell) id() string {
	return fmt.Sprintf("%s/%s/%s/%dKB", c.Workload, c.Org, c.Tech, c.CapacityKB)
}

func parseCaps(arg string) ([]int, error) {
	var caps []int
	for _, f := range strings.Split(arg, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		kb, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad -frontier-caps entry %q: %v", f, err)
		}
		caps = append(caps, kb)
	}
	return caps, nil
}

// cellTech names the technology axis of a grid cell: the stash profile
// where the organization has a stash, otherwise the (always-set) GPU L1
// profile.
func cellTech(cfg stash.Config) string {
	if cfg.StashTech != nil && cfg.StashTech.Profile != "" {
		return cfg.StashTech.Profile
	}
	if cfg.L1Tech != nil && cfg.L1Tech.Profile != "" {
		return cfg.L1Tech.Profile
	}
	return "sram"
}

func figFrontier() {
	header("Frontier: memory-technology design space (energy vs time vs capacity)")

	workloads := cliutil.ExpandWorkloads(*frontierWorkloads)
	orgs, err := cliutil.ExpandOrgs(*frontierOrgs)
	if err != nil {
		log.Fatal(err)
	}
	techs := strings.Split(*frontierTechs, ",")
	for i := range techs {
		techs[i] = strings.TrimSpace(techs[i])
	}
	caps, err := parseCaps(*frontierCaps)
	if err != nil {
		log.Fatal(err)
	}
	specs, err := stash.TechGrid(workloads, orgs, techs, caps)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	results, err := sweepFlags.Run(context.Background(), specs, stash.SweepOptions{})
	if results == nil {
		log.Fatal(err)
	}
	if !*quiet {
		sweepFlags.ReportWall("frontier: ", len(specs), time.Since(start))
	}
	sweptResults = append(sweptResults, results...)

	cells := make([]frontierCell, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			failedCells++
			fmt.Fprintf(os.Stderr, "frontier: %s failed (status %s): %v\n", r.Spec, r.Status(), r.Err)
			continue
		}
		cfg := r.Spec.Config
		cells = append(cells, frontierCell{
			Workload:   r.Spec.Workload,
			Org:        cfg.Org.String(),
			Tech:       cellTech(cfg),
			CapacityKB: cfg.LocalMemKB(),
			Cycles:     r.Result.Cycles,
			DynamicPJ:  r.Result.EnergyPJ,
			StaticPJ:   r.Result.StaticEnergyPJ,
			TotalPJ:    r.Result.EnergyPJ + r.Result.StaticEnergyPJ,
		})
	}

	// Extract one frontier per workload: objectives from different
	// workloads are not comparable. All three objectives are minimized
	// (capacity is an area cost).
	byWorkload := make(map[string][]int)
	for i, c := range cells {
		byWorkload[c.Workload] = append(byWorkload[c.Workload], i)
	}
	names := make([]string, 0, len(byWorkload))
	for w := range byWorkload {
		names = append(names, w)
	}
	sort.Strings(names)
	for _, w := range names {
		idx := byWorkload[w]
		pts := make([]frontier.Point, len(idx))
		for k, i := range idx {
			pts[k] = frontier.Point{
				ID:      cells[i].id(),
				Metrics: []float64{cells[i].TotalPJ, float64(cells[i].Cycles), float64(cells[i].CapacityKB)},
			}
		}
		front, err := frontier.Extract(pts)
		if err != nil {
			log.Fatal(err)
		}
		onFront := make(map[string]bool, len(front))
		for _, p := range front {
			onFront[p.ID] = true
		}
		for _, i := range idx {
			cells[i].OnFrontier = onFront[cells[i].id()]
		}

		fmt.Println()
		fmt.Printf("%s: %d design points, %d on the Pareto frontier\n", w, len(idx), len(front))
		fmt.Printf("  %-10s %-10s %8s %10s %14s %14s %14s  %s\n",
			"org", "tech", "cap KB", "cycles", "dynamic pJ", "static pJ", "total pJ", "frontier")
		for _, i := range idx {
			c := cells[i]
			mark := ""
			if c.OnFrontier {
				mark = "*"
			}
			fmt.Printf("  %-10s %-10s %8d %10d %14.1f %14.1f %14.1f  %s\n",
				c.Org, c.Tech, c.CapacityKB, c.Cycles, c.DynamicPJ, c.StaticPJ, c.TotalPJ, mark)
		}
	}

	if *frontierJSON != "" {
		data, err := json.MarshalIndent(cells, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*frontierJSON, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d frontier cells to %s\n", len(cells), *frontierJSON)
	}
}
