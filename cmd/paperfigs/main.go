// Paperfigs regenerates every table and figure of the paper's
// evaluation (ISCA 2015, Sections 5-6) from the simulator:
//
//	paperfigs -exp table1   # cache/scratchpad/stash feature matrix
//	paperfigs -exp table2   # simulated system parameters
//	paperfigs -exp table3   # per-access energies
//	paperfigs -exp table4   # related-work comparison
//	paperfigs -exp fig5     # microbenchmarks: time/energy/instr/traffic
//	paperfigs -exp fig6     # applications: time/energy
//	paperfigs -exp frontier # memory-technology design space + Pareto frontier
//	paperfigs -exp all
//
// Figures are printed as normalized tables (Scratch = 100), matching
// the paper's bar charts.
//
// The figure grids are embarrassingly parallel (every cell is one
// independent simulation), so they run on a worker pool:
//
//	paperfigs -exp fig6 -j 8          # 8 concurrent simulations
//	paperfigs -exp fig6 -j 1          # serial: identical output, slower
//	paperfigs -exp all -json out.json # raw sweep results as JSON
//
// Each simulation is deterministic and results are assembled in grid
// order, so the tables printed to stdout are byte-identical for every
// -j value; per-sweep wall times go to stderr.
//
// With -server the figure grids are submitted to a running stashd
// daemon instead of simulated locally; cells the daemon has seen
// before are served from its content-addressed cache, so regenerating
// a figure twice simulates nothing the second time:
//
//	paperfigs -exp all -server http://localhost:8341
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"stash"
	"stash/internal/cliutil"
)

var (
	sweepFlags   cliutil.SweepFlags
	quiet        = flag.Bool("q", false, "suppress per-sweep wall-time reports on stderr")
	traceDir     = flag.String("trace-dir", "", "write a Perfetto-loadable trace per figure cell into this directory (kernel and CPU phases annotated)")
	traceBuckets = flag.Uint64("trace-buckets", 0, "trace time-series window width in cycles (0 = default 1024)")
)

// sweptResults accumulates every figure cell simulated in this
// invocation for the optional -json dump; failedCells counts the ones
// that did not produce a result.
var (
	sweptResults []stash.SweepResult
	failedCells  int
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1|table2|table3|table4|fig5|fig6|frontier|all")
	sweepFlags.Register()
	version := cliutil.VersionFlag()
	flag.Parse()
	version()
	if sweepFlags.Server != "" && *traceDir != "" {
		fmt.Fprintln(os.Stderr, "-trace-dir requires local simulation; drop -server or -trace-dir")
		os.Exit(2)
	}
	switch *exp {
	case "table1":
		table1()
	case "table2":
		table2()
	case "table3":
		table3()
	case "table4":
		table4()
	case "fig5":
		fig5()
	case "fig6":
		fig6()
	case "frontier":
		figFrontier()
	case "all":
		table1()
		table2()
		table3()
		table4()
		fig5()
		fig6()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	writeJSON()
	if failedCells > 0 {
		fmt.Fprintf(os.Stderr, "%d cells failed; figures above are partial\n", failedCells)
		os.Exit(1)
	}
}

func writeJSON() {
	if sweepFlags.JSONOut == "" || len(sweptResults) == 0 {
		return
	}
	cliutil.WriteJSON(sweepFlags.JSONOut, sweptResults)
}

func header(s string) {
	fmt.Println()
	fmt.Println(s)
	fmt.Println(strings.Repeat("=", len(s)))
}

func table1() {
	header("Table 1: Comparison of cache, scratchpad, and stash")
	fmt.Print(stash.RenderFeatures(stash.FeatureMatrix(), []string{"Cache", "Scratchpad", "Stash"}))
}

func table2() {
	header("Table 2: Parameters of the simulated heterogeneous system")
	rows := [][2]string{
		{"GPU frequency (simulation clock)", "700 MHz"},
		{"CUs (microbenchmarks, apps)", "1, 15"},
		{"CPU cores (microbenchmarks, apps)", "15, 1"},
		{"Scratchpad/Stash size", "16 KB, 32 banks"},
		{"L1 size", "32 KB, 8-way"},
		{"L2 size", "4 MB, 16 banks (NUCA)"},
		{"Stash-map", "64 entries"},
		{"TLB & RTLB (VP-map)", "64 entries each"},
		{"Stash address translation", "10 cycles"},
		{"L1 and stash hit latency", "1 cycle"},
		{"Interconnect", "4x4 mesh, 3 cycles/hop, 16 B flits"},
		{"Coherence", "DeNovo (word granularity states)"},
	}
	for _, r := range rows {
		fmt.Printf("  %-38s %s\n", r[0], r[1])
	}
}

func table3() {
	header("Table 3: Per-access energy for various hardware units")
	fmt.Printf("  %-14s %12s %12s\n", "Hardware Unit", "Hit Energy", "Miss Energy")
	for _, e := range stash.AccessEnergies() {
		miss := "-"
		if e.HasMissEntry {
			miss = fmt.Sprintf("%.1f pJ", e.MissPJ)
		}
		fmt.Printf("  %-14s %9.1f pJ %12s\n", e.Unit, e.HitPJ, miss)
	}
}

func table4() {
	header("Table 4: Comparison of stash and prior work")
	fmt.Print(stash.RenderFeatures(stash.RelatedWorkMatrix(),
		[]string{"Bypass L1", "Change Data Layout", "Elide Tag", "Virtual Private Memories", "DMAs", "Stash"}))
}

// collect sweeps the workloads across every org on the worker pool and
// returns results[workload][org] for the cells that succeeded. A
// failing cell does not abort the figure: it is reported on stderr,
// kept (with status and diagnostic) in the -json dump, rendered as "-"
// in the tables, and makes the process exit nonzero at the end.
func collect(figure string, names []string, orgs []stash.MemOrg) map[string]map[stash.MemOrg]stash.Result {
	specs := stash.Grid(names, orgs)
	if *traceDir != "" {
		for i := range specs {
			specs[i].Config.Trace = &stash.TraceConfig{BucketCycles: *traceBuckets}
		}
	}
	start := time.Now()
	results, err := sweepFlags.Run(context.Background(), specs, stash.SweepOptions{})
	if results == nil {
		// The daemon refused the sweep outright (nothing ran).
		log.Fatal(err)
	}
	if !*quiet {
		sweepFlags.ReportWall(figure+": ", len(specs), time.Since(start))
	}
	sweptResults = append(sweptResults, results...)
	if *traceDir != "" {
		writeTraces(figure, results)
	}

	out := make(map[string]map[stash.MemOrg]stash.Result)
	for _, r := range results {
		if r.Err != nil {
			failedCells++
			fmt.Fprintf(os.Stderr, "%s: %s failed (status %s): %v\n",
				figure, r.Spec, r.Status(), r.Err)
			continue
		}
		if out[r.Spec.Workload] == nil {
			out[r.Spec.Workload] = make(map[stash.MemOrg]stash.Result)
		}
		out[r.Spec.Workload][r.Spec.Config.Org] = r.Result
	}
	return out
}

// writeTraces writes each cell's Perfetto-loadable trace (phase
// annotations included) into -trace-dir. Failed cells keep the partial
// trace up to the failure; never-started cells have none and are
// skipped.
func writeTraces(figure string, results []stash.SweepResult) {
	if err := os.MkdirAll(*traceDir, 0o777); err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		tl := r.Result.Timeline
		if tl == nil {
			continue
		}
		p := filepath.Join(*traceDir, fmt.Sprintf("%s-%s-%s.json", figure, r.Spec.Workload, r.Spec.Config.Org))
		if err := cliutil.WriteTimeline(p, "chrome", tl); err != nil {
			log.Fatal(err)
		}
	}
}

// printNormalized prints one metric across workloads and orgs,
// normalized to the Scratch configuration (x100, like the paper's
// percentage axes), with a geometric-mean-free simple average row.
func printNormalized(title string, names []string, orgs []stash.MemOrg,
	res map[string]map[stash.MemOrg]stash.Result, metric func(stash.Result) float64) {
	fmt.Println()
	fmt.Println(title + " (normalized to Scratch = 100; lower is better)")
	fmt.Printf("  %-12s", "")
	for _, org := range orgs {
		fmt.Printf(" %10s", org)
	}
	fmt.Println()
	avg := make([]float64, len(orgs))
	cnt := make([]int, len(orgs))
	for _, name := range names {
		baseCell, haveBase := res[name][stash.Scratch]
		base := metric(baseCell)
		fmt.Printf("  %-12s", name)
		for i, org := range orgs {
			cell, ok := res[name][org]
			if !ok || !haveBase || base == 0 {
				fmt.Printf(" %10s", "-") // cell (or its baseline) failed
				continue
			}
			v := 100 * metric(cell) / base
			avg[i] += v
			cnt[i]++
			fmt.Printf(" %10.0f", v)
		}
		fmt.Println()
	}
	fmt.Printf("  %-12s", "AVERAGE")
	for i := range orgs {
		if cnt[i] == 0 {
			fmt.Printf(" %10s", "-")
			continue
		}
		fmt.Printf(" %10.0f", avg[i]/float64(cnt[i]))
	}
	fmt.Println()
}

func printEnergyBreakdown(names []string, orgs []stash.MemOrg,
	res map[string]map[stash.MemOrg]stash.Result) {
	comps := []string{"GPU core+", "L1 D$", "Scratch/Stash", "L2 $", "N/W"}
	fmt.Println()
	fmt.Println("Dynamic energy breakdown (% of the workload's Scratch total)")
	for _, name := range names {
		base := res[name][stash.Scratch].EnergyPJ
		fmt.Printf("  %s\n", name)
		fmt.Printf("    %-10s", "")
		for _, c := range comps {
			fmt.Printf(" %14s", c)
		}
		fmt.Printf(" %10s\n", "total")
		for _, org := range orgs {
			r, ok := res[name][org]
			if !ok || base == 0 {
				fmt.Printf("    %-10s %s\n", org, "-")
				continue
			}
			fmt.Printf("    %-10s", org)
			for _, c := range comps {
				fmt.Printf(" %14.1f", 100*r.EnergyByComponent[c]/base)
			}
			fmt.Printf(" %10.1f\n", 100*r.EnergyPJ/base)
		}
	}
}

func fig5() {
	header("Figure 5: Microbenchmarks (1 CU + 15 CPU cores)")
	names := stash.Microbenchmarks()
	orgs := []stash.MemOrg{stash.Scratch, stash.ScratchGD, stash.Cache, stash.Stash}
	res := collect("fig5", names, orgs)
	printNormalized("(a) Execution time", names, orgs, res,
		func(r stash.Result) float64 { return float64(r.Cycles) })
	printNormalized("(b) Dynamic energy", names, orgs, res,
		func(r stash.Result) float64 { return r.EnergyPJ })
	printEnergyBreakdown(names, orgs, res)
	printNormalized("(c) GPU instruction count", names, orgs, res,
		func(r stash.Result) float64 { return float64(r.GPUInstructions) })
	printNormalized("(d) Network traffic (flit-crossings)", names, orgs, res,
		func(r stash.Result) float64 { return float64(r.TotalFlitHops()) })
	fmt.Println()
	fmt.Println("Traffic by class (flit-hops):")
	for _, name := range names {
		fmt.Printf("  %-12s", name)
		for _, org := range orgs {
			r := res[name][org]
			fmt.Printf("  %s[r=%d w=%d wb=%d]", org,
				r.FlitHops["read"], r.FlitHops["write"], r.FlitHops["writeback"])
		}
		fmt.Println()
	}
}

func fig6() {
	header("Figure 6: Applications (15 CUs + 1 CPU core)")
	names := stash.Applications()
	orgs := []stash.MemOrg{stash.Scratch, stash.ScratchG, stash.Cache, stash.Stash, stash.StashG}
	res := collect("fig6", names, orgs)
	printNormalized("(a) Execution time", names, orgs, res,
		func(r stash.Result) float64 { return float64(r.Cycles) })
	printNormalized("(b) Dynamic energy", names, orgs, res,
		func(r stash.Result) float64 { return r.EnergyPJ })
	printEnergyBreakdown(names, orgs, res)
}
