// Stashsim runs workloads on memory organizations and prints the
// measured metrics (and, with -v, the full counter dump):
//
//	stashsim -workload reuse -org Stash
//	stashsim -workload lud -org Cache -v
//	stashsim -list
//
// Both -workload and -org accept comma-separated lists or the keyword
// "all" ("micro" and "apps" also work for -workload); the cross
// product runs as one parallel sweep and reports are printed in grid
// order, so output is identical for every -j value:
//
//	stashsim -workload all -org Scratch,Stash -j 8
//	stashsim -workload micro -org all -json results.json
//
// With -server the sweep is submitted to a running stashd daemon
// instead of simulated locally; cells the daemon has seen before are
// served from its content-addressed cache without re-simulating:
//
//	stashsim -workload all -org all -server http://localhost:8341
//
// Ablation flags map to the paper's design options:
//
//	-no-replication    disable the Section 4.5 data replication optimization
//	-eager-writeback   write dirty stash data back at every kernel boundary
//	-chunk-words N     lazy-writeback chunk granularity (power of two, <=16)
//
// Memory-technology flags explore non-SRAM structures (DESIGN.md §16);
// each takes a profile name (sram, stt-mram, edram) and each structure
// can be resized independently:
//
//	-stash-tech P      stash data-array technology
//	-l1-tech P         GPU L1 technology
//	-llc-tech P        LLC bank technology
//	-stash-cap N       stash capacity in KB     (0 = default 16)
//	-l1-cap N          L1 capacity in KB        (0 = default 32)
//	-llc-cap N         LLC per-bank capacity KB (0 = default 256)
//
// Hardening flags (see DESIGN.md §10) make long sweeps robust: a cell
// that hangs, deadlocks, breaks an invariant, or panics is reported as
// a structured per-cell failure — with its machine-state diagnostic in
// the JSON output — while the remaining cells still run and print:
//
//	-check             enable coherence invariant checking
//	-watchdog N        fail a cell after N cycles without protocol progress
//	-cell-timeout D    wall-clock budget per cell attempt (e.g. 2m)
//	-retries N         re-run failed cells up to N extra times
//	-fail-fast         stop scheduling new cells after the first failure
//
// The exit status is nonzero if any cell failed.
//
// Tracing flags record a cycle-accurate event timeline per cell
// (timing-neutral: metrics are bit-identical with tracing on or off):
//
//	-trace PATH        write a Chrome/Perfetto trace; with multiple cells
//	                   PATH is a directory of <workload>-<org> files
//	-trace-buckets N   time-series window width in cycles (default 1024)
//	-trace-format F    chrome (default) or binary
//
// Failed and timed-out cells still write their partial trace — a
// truncated-but-valid file covering the run up to the failure. Traces
// require local simulation (they do not cross the -server wire).
//
// For performance work, -cpuprofile and -memprofile write pprof
// profiles of the simulation itself:
//
//	stashsim -workload reuse -org Stash -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"stash"
	"stash/internal/cliutil"
)

func main() {
	workload := flag.String("workload", "implicit", "comma-separated workload names, or all|micro|apps (see -list)")
	orgName := flag.String("org", "Stash", "comma-separated memory organizations, or all: Scratch|ScratchG|ScratchGD|Cache|Stash|StashG")
	list := flag.Bool("list", false, "list workloads and exit")
	verbose := flag.Bool("v", false, "dump all raw counters")
	noRepl := flag.Bool("no-replication", false, "disable the data replication optimization")
	eager := flag.Bool("eager-writeback", false, "eager (kernel-boundary) stash writebacks")
	chunkWords := flag.Int("chunk-words", 0, "lazy-writeback chunk granularity in words (0 = default 16)")
	stashTech := flag.String("stash-tech", "", "stash memory technology profile (sram|stt-mram|edram; empty = baseline)")
	l1Tech := flag.String("l1-tech", "", "GPU L1 memory technology profile (empty = baseline)")
	llcTech := flag.String("llc-tech", "", "LLC memory technology profile (empty = baseline)")
	stashCap := flag.Int("stash-cap", 0, "stash capacity in KB (0 = default)")
	l1Cap := flag.Int("l1-cap", 0, "L1 capacity in KB (0 = default)")
	llcCap := flag.Int("llc-cap", 0, "LLC per-bank capacity in KB (0 = default)")
	check := flag.Bool("check", false, "enable coherence invariant checking")
	watchdog := flag.Uint64("watchdog", 0, "fail a cell after this many cycles without protocol progress (0 = off)")
	cellTimeout := flag.Duration("cell-timeout", 0, "wall-clock budget per cell attempt (0 = unbounded)")
	retries := flag.Int("retries", 0, "extra attempts for failed cells")
	failFast := flag.Bool("fail-fast", false, "stop scheduling new cells after the first failure")
	tracePath := flag.String("trace", "", "write per-cell event traces to this file (one cell) or directory")
	traceBuckets := flag.Uint64("trace-buckets", 0, "trace time-series window width in cycles (0 = default 1024)")
	traceFormat := flag.String("trace-format", "chrome", "trace file format: chrome (Perfetto-loadable JSON) or binary")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	var sweepFlags cliutil.SweepFlags
	sweepFlags.Register()
	version := cliutil.VersionFlag()
	flag.Parse()
	version()

	if sweepFlags.Server != "" && *tracePath != "" {
		fmt.Fprintln(os.Stderr, "-trace requires local simulation; drop -server or -trace")
		os.Exit(2)
	}
	if sweepFlags.Server != "" && (*failFast || *cellTimeout != 0 || *retries != 0) {
		fmt.Fprintln(os.Stderr, "note: -fail-fast/-cell-timeout/-retries are local policies; the daemon applies its own")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush recent frees so the profile shows live heap accurately
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *list {
		fmt.Println("microbenchmarks:", stash.Microbenchmarks())
		fmt.Println("applications:   ", stash.Applications())
		return
	}

	workloads := cliutil.ExpandWorkloads(*workload)
	orgs, err := cliutil.ExpandOrgs(*orgName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	specs := make([]stash.RunSpec, 0, len(workloads)*len(orgs))
	for _, w := range workloads {
		for _, org := range orgs {
			cfg := stash.MicroConfig(org)
			if !stash.IsMicrobenchmark(w) {
				cfg = stash.AppConfig(org)
			}
			cfg.DisableReplication = *noRepl
			cfg.EagerWriteback = *eager
			cfg.ChunkWords = *chunkWords
			cfg.CheckInvariants = *check
			cfg.WatchdogBudget = *watchdog
			if *stashTech != "" || *stashCap != 0 {
				cfg.StashTech = &stash.TechSpec{Profile: *stashTech, CapacityKB: *stashCap}
			}
			if *l1Tech != "" || *l1Cap != 0 {
				cfg.L1Tech = &stash.TechSpec{Profile: *l1Tech, CapacityKB: *l1Cap}
			}
			if *llcTech != "" || *llcCap != 0 {
				cfg.LLCTech = &stash.TechSpec{Profile: *llcTech, CapacityKB: *llcCap}
			}
			if *tracePath != "" {
				cfg.Trace = &stash.TraceConfig{BucketCycles: *traceBuckets}
			}
			specs = append(specs, stash.RunSpec{Workload: w, Config: cfg})
		}
	}

	start := time.Now()
	results, err := sweepFlags.Run(context.Background(), specs, stash.SweepOptions{
		FailFast:    *failFast,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
	})
	if len(specs) > 1 {
		sweepFlags.ReportWall("", len(specs), time.Since(start))
	}
	if results == nil {
		// The daemon refused the sweep outright (nothing ran).
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Failures never suppress the cells that did complete: every cell is
	// reported, the JSON (if requested) carries the full partial results
	// with per-cell status and diagnostics, and only then does a failing
	// sweep exit nonzero.
	failed := 0
	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		if r.Err != nil {
			failed++
		}
		report(r, *verbose)
	}
	if sweepFlags.JSONOut != "" {
		cliutil.WriteJSON(sweepFlags.JSONOut, results)
	}
	if *tracePath != "" {
		writeTraces(*tracePath, *traceFormat, results)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%d of %d cells failed\n", failed, len(results))
		os.Exit(1)
	}
}

func report(r stash.SweepResult, verbose bool) {
	cfg := r.Spec.Config
	fmt.Printf("%s on %s (%d CUs, %d CPU cores)\n", r.Spec.Workload, cfg.Org, cfg.GPUs, cfg.CPUs)
	if r.Err != nil {
		fmt.Printf("  status: %s", r.Status())
		if r.Attempts > 1 {
			fmt.Printf(" (after %d attempts)", r.Attempts)
		}
		fmt.Printf("\n  error: %v\n", r.Err)
		var ce *stash.CellError
		if errors.As(r.Err, &ce) && ce.Diagnostic != "" {
			if verbose {
				fmt.Printf("  diagnostic:\n%s", indent(ce.Diagnostic, "    "))
			} else {
				fmt.Println("  (run with -v or -json for the machine-state diagnostic)")
			}
		}
		return
	}
	res := r.Result
	fmt.Print(res)
	if res.StaticEnergyPJ != 0 {
		fmt.Printf("  static energy: %.1f nJ (leakage; not in the dynamic total)\n", res.StaticEnergyPJ/1e3)
	}
	fmt.Printf("  traffic: read=%d write=%d writeback=%d flit-hops\n",
		res.FlitHops["read"], res.FlitHops["write"], res.FlitHops["writeback"])
	if verbose {
		names := make([]string, 0, len(res.Counters))
		for n := range res.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if res.Counters[n] != 0 {
				fmt.Printf("  %-44s %12d\n", n, res.Counters[n])
			}
		}
	}
}

func indent(s, prefix string) string {
	var sb strings.Builder
	for _, ln := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		sb.WriteString(prefix)
		sb.WriteString(ln)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// writeTraces writes each cell's timeline. Cells that failed or timed
// out keep whatever they traced before stopping, so their files are
// truncated but still valid; only never-started cells (no timeline)
// are skipped.
func writeTraces(path, format string, results []stash.SweepResult) {
	ext := cliutil.TraceExt(format)
	dir := len(results) > 1
	if dir {
		if err := os.MkdirAll(path, 0o777); err != nil {
			log.Fatal(err)
		}
	}
	for _, r := range results {
		tl := r.Result.Timeline
		if tl == nil {
			continue
		}
		p := path
		if dir {
			p = filepath.Join(path, fmt.Sprintf("%s-%s%s", r.Spec.Workload, r.Spec.Config.Org, ext))
		}
		if err := cliutil.WriteTimeline(p, format, tl); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %s (%d events, %d dropped)\n", p, tl.NumEvents(), tl.Dropped())
	}
}
