// Stashsim runs one workload on one memory organization and prints the
// measured metrics (and, with -v, the full counter dump):
//
//	stashsim -workload reuse -org Stash
//	stashsim -workload lud -org Cache -v
//	stashsim -list
//
// Ablation flags map to the paper's design options:
//
//	-no-replication    disable the Section 4.5 data replication optimization
//	-eager-writeback   write dirty stash data back at every kernel boundary
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"stash"
)

func main() {
	workload := flag.String("workload", "implicit", "workload name (see -list)")
	orgName := flag.String("org", "Stash", "memory organization: Scratch|ScratchG|ScratchGD|Cache|Stash|StashG")
	list := flag.Bool("list", false, "list workloads and exit")
	verbose := flag.Bool("v", false, "dump all raw counters")
	noRepl := flag.Bool("no-replication", false, "disable the data replication optimization")
	eager := flag.Bool("eager-writeback", false, "eager (kernel-boundary) stash writebacks")
	flag.Parse()

	if *list {
		fmt.Println("microbenchmarks:", stash.Microbenchmarks())
		fmt.Println("applications:   ", stash.Applications())
		return
	}

	var org stash.MemOrg
	found := false
	for _, o := range stash.Orgs() {
		if o.String() == *orgName {
			org, found = o, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown org %q\n", *orgName)
		os.Exit(2)
	}

	cfg := stash.MicroConfig(org)
	if !stash.IsMicrobenchmark(*workload) {
		cfg = stash.AppConfig(org)
	}
	cfg.DisableReplication = *noRepl
	cfg.EagerWriteback = *eager

	res, err := stash.RunWorkloadCfg(*workload, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s (%d CUs, %d CPU cores)\n", *workload, org, cfg.GPUs, cfg.CPUs)
	fmt.Print(res)
	fmt.Printf("  traffic: read=%d write=%d writeback=%d flit-hops\n",
		res.FlitHops["read"], res.FlitHops["write"], res.FlitHops["writeback"])
	if *verbose {
		names := make([]string, 0, len(res.Counters))
		for n := range res.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if res.Counters[n] != 0 {
				fmt.Printf("  %-44s %12d\n", n, res.Counters[n])
			}
		}
	}
}
