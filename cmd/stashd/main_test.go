package main

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// resetDeprecationOnce lets each test observe the once-per-process
// warning independently.
func resetDeprecationOnce() { deprecationOnce = sync.Once{} }

func TestResolveCacheSpecRejectsConflicts(t *testing.T) {
	for _, legacy := range [][]string{
		{"-cache-entries"},
		{"-cache-dir"},
		{"-cache-entries", "-cache-bytes", "-cache-dir"},
	} {
		_, err := resolveCacheSpec("memory://?entries=8", 4096, 256<<20, "", legacy,
			func(string, ...any) { t.Errorf("conflict %v still warned", legacy) })
		if err == nil {
			t.Fatalf("legacy %v combined with -cache: want error, got none", legacy)
		}
		for _, name := range legacy {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("conflict error %q does not name %s", err, name)
			}
		}
	}
}

func TestResolveCacheSpecLegacyAliases(t *testing.T) {
	defer resetDeprecationOnce()
	resetDeprecationOnce()
	var warnings []string
	warnf := func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}

	sp, err := resolveCacheSpec("", 99, 1<<20, "", []string{"-cache-entries", "-cache-bytes"}, warnf)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Scheme != "memory" || sp.Entries != 99 || sp.Bytes != 1<<20 {
		t.Fatalf("legacy memory spec = %+v", sp)
	}

	// The aliases collapse to ONE warning per process, however many
	// times boot-path code resolves the spec.
	sp2, err := resolveCacheSpec("", 4096, 256<<20, "/var/lib/stashd", []string{"-cache-dir"}, warnf)
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Scheme != "log" || sp2.Path != "/var/lib/stashd" {
		t.Fatalf("legacy log spec = %+v", sp2)
	}
	if len(warnings) != 1 {
		t.Fatalf("deprecation warned %d times, want exactly 1: %v", len(warnings), warnings)
	}
}

func TestResolveCacheSpecWarningNamesEquivalentSpec(t *testing.T) {
	defer resetDeprecationOnce()
	resetDeprecationOnce()
	var got string
	_, err := resolveCacheSpec("", 4096, 256<<20, "/data/cells", []string{"-cache-dir"},
		func(format string, args ...any) { got = fmt.Sprintf(format, args...) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "log:///data/cells") {
		t.Errorf("deprecation warning %q does not suggest the equivalent spec URL", got)
	}
	if !strings.Contains(got, "-cache-dir") {
		t.Errorf("deprecation warning %q does not name the offending flag", got)
	}
}

func TestResolveCacheSpecPlainDefaults(t *testing.T) {
	sp, err := resolveCacheSpec("", 4096, 256<<20, "", nil,
		func(string, ...any) { t.Error("no aliases set, but warned") })
	if err != nil {
		t.Fatal(err)
	}
	if sp.Scheme != "memory" || sp.Entries != 4096 {
		t.Fatalf("default spec = %+v", sp)
	}
}

func TestResolveCacheSpecURL(t *testing.T) {
	sp, err := resolveCacheSpec("pairtree:///d?compress=gzip", 4096, 256<<20, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Scheme != "pairtree" || sp.Path != "/d" || sp.Codec == 0 {
		t.Fatalf("parsed spec = %+v", sp)
	}
	if _, err := resolveCacheSpec("bogus://x", 0, 0, "", nil, nil); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestResolveShards(t *testing.T) {
	shards, err := resolveShards("http://a:1, http://b:1,,http://c:1", "")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"http://a:1", "http://b:1", "http://c:1"}; !reflect.DeepEqual(shards, want) {
		t.Fatalf("shards = %v, want %v", shards, want)
	}

	dir := t.TempDir()
	ring := filepath.Join(dir, "ring")
	if err := os.WriteFile(ring, []byte("# fleet\nhttp://a:1\nhttp://b:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	shards, err = resolveShards("", ring)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("ring file shards = %v", shards)
	}

	if _, err := resolveShards("http://a:1", ring); err == nil {
		t.Error("-shards and -ring together: want error")
	}
	if _, err := resolveShards("", ""); err == nil {
		t.Error("neither membership source: want error")
	}
	if _, err := resolveShards(" , ,", ""); err == nil {
		t.Error("blank -shards list: want error")
	}
}
