// Stashd is the simulation-as-a-service daemon: a long-running HTTP
// server over the sweep engine with a content-addressed cell-result
// cache in front of it. Every simulation is deterministic, so a cell
// (workload + config, keyed by stash.RunSpec.Fingerprint) is simulated
// at most once: repeats are cache hits replayed byte-identically with
// zero engine cycles run, concurrent identical requests collapse to
// one simulation, and with a persistent engine the cache survives
// restarts.
//
// The cache is configured by a single -cache engine-spec URL:
//
//	stashd -cache 'memory://?entries=4096&bytes=256MiB'
//	stashd -cache 'log:///var/lib/stashd'
//	stashd -cache 'pairtree:///var/lib/stashd?compress=gzip&ttl=24h'
//
//	# a grid sweep, streamed back as NDJSON (one cell per line):
//	curl -sN localhost:8341/v1/sweep -d '{"workloads":["implicit"],"orgs":["Scratch","Stash"]}'
//
//	# one cell by query (ablation knobs accepted):
//	curl -s 'localhost:8341/v1/cell?workload=lud&org=Stash&eager_writeback=true'
//
//	curl -s localhost:8341/healthz
//	curl -s localhost:8341/metrics
//
// The existing CLIs submit to a daemon instead of simulating locally
// with -server:
//
//	stashsim -workload all -org all -server http://localhost:8341
//	paperfigs -exp fig5 -server http://localhost:8341
//
// Simulation capacity is a bounded worker pool (-workers); each cell
// honors the -cell-timeout/-retries hardening policy, so a wedged cell
// returns a structured error instead of occupying a worker forever.
// On SIGTERM/SIGINT the daemon drains: /healthz flips to 503, queued
// cells fail fast, in-flight requests get -drain-timeout to finish,
// then connections are closed.
//
// The daemon fails well. Sick cache storage degrades it rather than
// failing requests: a simulated result whose persist fails is still
// served, and a circuit breaker (breaker=/breaker_backoff= in the
// -cache spec) stops hammering a dead store tier while the memory
// tier keeps serving. Overload sheds with 429 + Retry-After past
// -max-queue waiting cells (whole sweeps before single cells),
// clients can bound a request with an X-Stashd-Deadline header
// (clamped by -max-deadline), and -tenant-slots keeps one namespace
// from occupying every worker. Startup probes the cache engine and
// refuses to boot on failure. For chaos drills, any engine wraps in
// deterministic fault injection straight from the spec:
//
//	stashd -cache 'faulty+pairtree:///data?fault_seed=7&fault_put=0.2&fault_down_first=100'
//
// Cluster mode scales past one machine (DESIGN.md §15). Shards are
// ordinary nodes, ideally with a remote+ cache spec so they fill from
// peers before simulating; a coordinator routes each cell to the shard
// owning its fingerprint on a consistent-hash ring and merges the
// per-shard streams back in spec order, byte-identical to one node:
//
//	stashd -addr :8351 -cache 'remote+memory://?peers=http://h1:8351,http://h2:8351&self=http://h1:8351'
//	stashd -role coordinator -shards http://h1:8351,http://h2:8351 -hedge 30s
//	stashd -role coordinator -ring /etc/stashd/ring            # one URL per line
//
// A dead shard's cells re-dispatch to the ring successor, stragglers
// are hedged after -hedge, and shard 429s propagate into coordinator
// backoff — see the "Running a cluster" section in README.md.
//
// See the "Operating stashd" runbook in README.md for the failure
// modes and the /metrics series to alert on.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"stash/internal/cellcache"
	"stash/internal/cliutil"
	"stash/internal/cluster"
	"stash/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8341", "listen address")
	role := flag.String("role", "node", "node (simulate locally) or coordinator (route cells to -shards)")
	shardList := flag.String("shards", "", "comma-separated shard base URLs (coordinator role)")
	ringFile := flag.String("ring", "", "static ring file, one shard base URL per line (coordinator role)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard on the consistent-hash ring (coordinator role)")
	hedge := flag.Duration("hedge", 0, "hedge straggler cells to the ring successor after this long (0 = off; coordinator role)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrently simulated cells across all requests")
	maxCells := flag.Int("max-cells", 1024, "largest accepted per-request sweep grid")
	cellTimeout := flag.Duration("cell-timeout", 5*time.Minute, "wall-clock budget per cell attempt (0 = unbounded)")
	retries := flag.Int("retries", 0, "extra attempts for failed cells")
	maxQueue := flag.Int("max-queue", 0, "cells queued for a worker before requests are shed with 429 (0 = 4x max-cells, -1 = unbounded)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on per-request X-Stashd-Deadline simulation budgets (0 = unbounded)")
	tenantSlots := flag.Int("tenant-slots", 0, "concurrently simulating cells per namespace (0 = workers-1, -1 = unbounded)")
	cacheSpec := flag.String("cache", "", "cache engine spec URL, e.g. memory://?entries=4096&bytes=256MiB, log:///var/lib/stashd, pairtree:///data?compress=gzip&ttl=24h, remote+memory://?peers=...")
	cacheEntries := flag.Int("cache-entries", 4096, "deprecated: use -cache memory://?entries=N")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "deprecated: use -cache memory://?bytes=N")
	cacheDir := flag.String("cache-dir", "", "deprecated: use -cache log://DIR")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long in-flight requests may finish after SIGTERM")
	version := cliutil.VersionFlag()
	flag.Parse()
	version()
	log.SetPrefix("stashd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	switch *role {
	case "coordinator":
		if offending := visitedFlags("cache", "cache-entries", "cache-bytes", "cache-dir", "workers", "cell-timeout", "retries", "tenant-slots"); len(offending) > 0 {
			log.Fatalf("-role coordinator holds no cache and runs no simulations; configure %s on the shards", strings.Join(offending, ", "))
		}
		shards, err := resolveShards(*shardList, *ringFile)
		if err != nil {
			log.Fatal(err)
		}
		coord, err := cluster.New(shards, cluster.Options{VNodes: *vnodes, HedgeAfter: *hedge})
		if err != nil {
			log.Fatal(err)
		}
		front := serve.NewCoordinator(serve.CoordinatorConfig{
			Cluster:     coord,
			MaxCells:    *maxCells,
			MaxDeadline: *maxDeadline,
		})
		banner := fmt.Sprintf("%s coordinating %d shards on %s (vnodes %d, hedge %v)",
			cliutil.Version(), len(shards), *addr, *vnodes, *hedge)
		serveHTTP(*addr, front.Handler(), *drainTimeout, banner, func() { front.Drain() })

	case "node":
		if offending := visitedFlags("shards", "ring", "vnodes", "hedge"); len(offending) > 0 {
			log.Fatalf("%s require -role coordinator", strings.Join(offending, ", "))
		}
		runNode(*addr, *workers, *maxCells, *cellTimeout, *retries, *maxQueue, *maxDeadline,
			*tenantSlots, *cacheSpec, *cacheEntries, *cacheBytes, *cacheDir, *drainTimeout)

	default:
		log.Fatalf("unknown -role %q (want node or coordinator)", *role)
	}
}

func runNode(addr string, workers, maxCells int, cellTimeout time.Duration, retries, maxQueue int,
	maxDeadline time.Duration, tenantSlots int, cacheSpec string, cacheEntries int, cacheBytes int64,
	cacheDir string, drainTimeout time.Duration) {
	spec, err := resolveCacheSpec(cacheSpec, cacheEntries, cacheBytes, cacheDir,
		visitedFlags("cache-entries", "cache-bytes", "cache-dir"), log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	cache, err := spec.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()
	// Fail fast on an engine that cannot round-trip a sentinel entry:
	// a misconfigured or unwritable cache should kill the boot, not
	// surface as every cell running degraded. Deliberately injected
	// faults (a faulty+ spec, for chaos runs) only warn — booting sick
	// is the point there.
	if err := cache.Probe(); err != nil {
		if spec.Fault != nil {
			log.Printf("cache probe: %v (fault injection armed; continuing)", err)
		} else {
			log.Fatalf("cache probe failed (engine %s unusable): %v", spec.String(), err)
		}
	}
	if spec.Scheme != "memory" {
		log.Printf("persistent cache %s: %d cells loaded", spec.String(), cache.Stats().StoreEntries)
	}

	draining := make(chan struct{})
	srv := serve.New(serve.Config{
		Cache:       cache,
		Workers:     workers,
		MaxCells:    maxCells,
		CellTimeout: cellTimeout,
		Retries:     retries,
		MaxQueue:    maxQueue,
		MaxDeadline: maxDeadline,
		TenantSlots: tenantSlots,
	}, draining)
	banner := fmt.Sprintf("%s listening on %s (%d workers, cell timeout %v)",
		cliutil.Version(), addr, workers, cellTimeout)
	serveHTTP(addr, srv.Handler(), drainTimeout, banner, func() {
		srv.Drain()     // /healthz -> 503 so load balancers stop routing here
		close(draining) // queued cells fail fast instead of starting late
	})
}

// serveHTTP runs the listener with the shared SIGTERM/SIGINT drain
// choreography: drain() flips the role's health/admission state, then
// in-flight requests get drainTimeout to finish before connections are
// force-closed.
func serveHTTP(addr string, handler http.Handler, drainTimeout time.Duration, banner string, drain func()) {
	hs := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Printf("draining: refusing new work, waiting up to %v for in-flight requests", drainTimeout)
		drain()
		shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			log.Printf("drain timeout: force-closing remaining connections (%v)", err)
			hs.Close()
		}
	}()

	log.Print(banner)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
	log.Print("stopped")
}

// visitedFlags returns "-name" for each of the named flags the user
// set on the command line.
func visitedFlags(names ...string) []string {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	var out []string
	flag.Visit(func(f *flag.Flag) {
		if set[f.Name] {
			out = append(out, "-"+f.Name)
		}
	})
	return out
}

// resolveShards merges the two coordinator membership sources: exactly
// one of -shards (inline list) or -ring (file) must name the fleet.
func resolveShards(shardList, ringFile string) ([]string, error) {
	switch {
	case shardList != "" && ringFile != "":
		return nil, fmt.Errorf("-shards and -ring are both set; pick one membership source")
	case ringFile != "":
		return cluster.ReadRingFile(ringFile)
	case shardList != "":
		var shards []string
		for _, s := range strings.Split(shardList, ",") {
			if s = strings.TrimSpace(s); s != "" {
				shards = append(shards, s)
			}
		}
		if len(shards) == 0 {
			return nil, fmt.Errorf("-shards lists no shard URLs")
		}
		return shards, nil
	default:
		return nil, fmt.Errorf("-role coordinator requires -shards host1,host2,... or -ring FILE")
	}
}

// deprecationOnce collapses the legacy cache-flag warning to a single
// line per process, no matter how the aliases are combined.
var deprecationOnce sync.Once

// resolveCacheSpec merges the -cache engine-spec URL with the
// deprecated -cache-entries/-cache-bytes/-cache-dir aliases (legacy
// holds the ones actually set). The old flags keep their exact
// pre-spec semantics (-cache-dir picks the append-only log engine) but
// may not be combined with -cache: one source of truth, no silent
// overrides. Using any alias warns once per process, naming the
// equivalent -cache spec to migrate to.
func resolveCacheSpec(raw string, entries int, bytes int64, dir string, legacy []string, warnf func(string, ...any)) (cellcache.Spec, error) {
	if raw != "" {
		if len(legacy) > 0 {
			return cellcache.Spec{}, fmt.Errorf("-cache cannot be combined with deprecated %s; fold them into the spec URL", strings.Join(legacy, ", "))
		}
		return cellcache.ParseSpec(raw)
	}
	sp := cellcache.Spec{Scheme: "memory", Entries: entries, Bytes: bytes}
	if dir != "" {
		sp.Scheme = "log"
		sp.Path = dir
	}
	if len(legacy) > 0 {
		deprecationOnce.Do(func() {
			warnf("deprecated: %s will be removed; use the equivalent -cache '%s'", strings.Join(legacy, ", "), sp.String())
		})
	}
	return sp, nil
}
