// Stashd is the simulation-as-a-service daemon: a long-running HTTP
// server over the sweep engine with a content-addressed cell-result
// cache in front of it. Every simulation is deterministic, so a cell
// (workload + config, keyed by stash.RunSpec.Fingerprint) is simulated
// at most once: repeats are cache hits replayed byte-identically with
// zero engine cycles run, concurrent identical requests collapse to
// one simulation, and with a persistent engine the cache survives
// restarts.
//
// The cache is configured by a single -cache engine-spec URL:
//
//	stashd -cache 'memory://?entries=4096&bytes=256MiB'
//	stashd -cache 'log:///var/lib/stashd'
//	stashd -cache 'pairtree:///var/lib/stashd?compress=gzip&ttl=24h'
//
//	# a grid sweep, streamed back as NDJSON (one cell per line):
//	curl -sN localhost:8341/v1/sweep -d '{"workloads":["implicit"],"orgs":["Scratch","Stash"]}'
//
//	# one cell by query (ablation knobs accepted):
//	curl -s 'localhost:8341/v1/cell?workload=lud&org=Stash&eager_writeback=true'
//
//	curl -s localhost:8341/healthz
//	curl -s localhost:8341/metrics
//
// The existing CLIs submit to a daemon instead of simulating locally
// with -server:
//
//	stashsim -workload all -org all -server http://localhost:8341
//	paperfigs -exp fig5 -server http://localhost:8341
//
// Simulation capacity is a bounded worker pool (-workers); each cell
// honors the -cell-timeout/-retries hardening policy, so a wedged cell
// returns a structured error instead of occupying a worker forever.
// On SIGTERM/SIGINT the daemon drains: /healthz flips to 503, queued
// cells fail fast, in-flight requests get -drain-timeout to finish,
// then connections are closed.
//
// The daemon fails well. Sick cache storage degrades it rather than
// failing requests: a simulated result whose persist fails is still
// served, and a circuit breaker (breaker=/breaker_backoff= in the
// -cache spec) stops hammering a dead store tier while the memory
// tier keeps serving. Overload sheds with 429 + Retry-After past
// -max-queue waiting cells (whole sweeps before single cells),
// clients can bound a request with an X-Stashd-Deadline header
// (clamped by -max-deadline), and -tenant-slots keeps one namespace
// from occupying every worker. Startup probes the cache engine and
// refuses to boot on failure. For chaos drills, any engine wraps in
// deterministic fault injection straight from the spec:
//
//	stashd -cache 'faulty+pairtree:///data?fault_seed=7&fault_put=0.2&fault_down_first=100'
//
// See the "Operating stashd" runbook in README.md for the failure
// modes and the /metrics series to alert on.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"stash/internal/cellcache"
	"stash/internal/cliutil"
	"stash/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8341", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrently simulated cells across all requests")
	maxCells := flag.Int("max-cells", 1024, "largest accepted per-request sweep grid")
	cellTimeout := flag.Duration("cell-timeout", 5*time.Minute, "wall-clock budget per cell attempt (0 = unbounded)")
	retries := flag.Int("retries", 0, "extra attempts for failed cells")
	maxQueue := flag.Int("max-queue", 0, "cells queued for a worker before requests are shed with 429 (0 = 4x max-cells, -1 = unbounded)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on per-request X-Stashd-Deadline simulation budgets (0 = unbounded)")
	tenantSlots := flag.Int("tenant-slots", 0, "concurrently simulating cells per namespace (0 = workers-1, -1 = unbounded)")
	cacheSpec := flag.String("cache", "", "cache engine spec URL, e.g. memory://?entries=4096&bytes=256MiB, log:///var/lib/stashd, pairtree:///data?compress=gzip&ttl=24h")
	cacheEntries := flag.Int("cache-entries", 4096, "deprecated: use -cache memory://?entries=N")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "deprecated: use -cache memory://?bytes=N")
	cacheDir := flag.String("cache-dir", "", "deprecated: use -cache log://DIR")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long in-flight requests may finish after SIGTERM")
	version := cliutil.VersionFlag()
	flag.Parse()
	version()
	log.SetPrefix("stashd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	spec, err := resolveCacheSpec(*cacheSpec, *cacheEntries, *cacheBytes, *cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	cache, err := spec.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()
	// Fail fast on an engine that cannot round-trip a sentinel entry:
	// a misconfigured or unwritable cache should kill the boot, not
	// surface as every cell running degraded. Deliberately injected
	// faults (a faulty+ spec, for chaos runs) only warn — booting sick
	// is the point there.
	if err := cache.Probe(); err != nil {
		if spec.Fault != nil {
			log.Printf("cache probe: %v (fault injection armed; continuing)", err)
		} else {
			log.Fatalf("cache probe failed (engine %s unusable): %v", spec.String(), err)
		}
	}
	if spec.Scheme != "memory" {
		log.Printf("persistent cache %s: %d cells loaded", spec.String(), cache.Stats().StoreEntries)
	}

	draining := make(chan struct{})
	srv := serve.New(serve.Config{
		Cache:       cache,
		Workers:     *workers,
		MaxCells:    *maxCells,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
		MaxQueue:    *maxQueue,
		MaxDeadline: *maxDeadline,
		TenantSlots: *tenantSlots,
	}, draining)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Printf("draining: refusing new work, waiting up to %v for in-flight requests", *drainTimeout)
		srv.Drain()     // /healthz -> 503 so load balancers stop routing here
		close(draining) // queued cells fail fast instead of starting late
		shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			log.Printf("drain timeout: force-closing remaining connections (%v)", err)
			hs.Close()
		}
	}()

	log.Printf("%s listening on %s (%d workers, cell timeout %v)", cliutil.Version(), *addr, *workers, *cellTimeout)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
	log.Print("stopped")
}

// resolveCacheSpec merges the -cache engine-spec URL with the
// deprecated -cache-entries/-cache-bytes/-cache-dir aliases. The old
// flags keep their exact pre-spec semantics (-cache-dir picks the
// append-only log engine) but may not be combined with -cache: one
// source of truth, no silent overrides.
func resolveCacheSpec(raw string, entries int, bytes int64, dir string) (cellcache.Spec, error) {
	var legacy []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "cache-entries", "cache-bytes", "cache-dir":
			legacy = append(legacy, "-"+f.Name)
		}
	})
	if raw != "" {
		if len(legacy) > 0 {
			return cellcache.Spec{}, fmt.Errorf("-cache cannot be combined with deprecated %s; fold them into the spec URL", strings.Join(legacy, ", "))
		}
		return cellcache.ParseSpec(raw)
	}
	if len(legacy) > 0 {
		log.Printf("deprecated: %s; use -cache (see -help)", strings.Join(legacy, ", "))
	}
	sp := cellcache.Spec{Scheme: "memory", Entries: entries, Bytes: bytes}
	if dir != "" {
		sp.Scheme = "log"
		sp.Path = dir
	}
	return sp, nil
}
