package main

import (
	"strings"
	"testing"
)

func TestFoldMinOf(t *testing.T) {
	mustParse := func(line string) record {
		t.Helper()
		r, ok := parseLine(line)
		if !ok {
			t.Fatalf("parseLine(%q) failed", line)
		}
		return r
	}
	recs := []record{
		// Three consecutive runs of Fig5, as go test -count 3 prints them:
		// the middle run is fastest and carries its own coherent metrics.
		mustParse("BenchmarkFig5/lud-8 3 2000 ns/op 10 allocs/op 900 sim_cycles"),
		mustParse("BenchmarkFig5/lud-8 3 1000 ns/op 12 allocs/op 900 sim_cycles"),
		mustParse("BenchmarkFig5/lud-8 3 3000 ns/op 11 allocs/op 900 sim_cycles"),
		// A short group: only 2 of the expected 3 runs.
		mustParse("BenchmarkWarpStep-8 100 500 ns/op"),
		mustParse("BenchmarkWarpStep-8 100 400 ns/op"),
	}

	var warn strings.Builder
	out := foldMinOf(recs, 3, &warn)
	if len(out) != 2 {
		t.Fatalf("folded to %d records, want 2: %+v", len(out), out)
	}
	if out[0].NsPerOp != 1000 || out[0].AllocsPerOp != 12 {
		t.Errorf("fig5 fold kept %+v, want the whole 1000 ns/op run (allocs 12)", out[0])
	}
	if want := 900 / (1000 / 1e9); out[0].SimCyclesPerSec != want {
		t.Errorf("fig5 sim_cycles_per_sec = %g, want %g (derived from the kept run)", out[0].SimCyclesPerSec, want)
	}
	if out[1].NsPerOp != 400 {
		t.Errorf("warpstep fold kept %g ns/op, want 400", out[1].NsPerOp)
	}
	if w := warn.String(); !strings.Contains(w, "BenchmarkWarpStep-8 ran 2 times, want 3") {
		t.Errorf("short group did not warn: %q", w)
	}
	if w := warn.String(); strings.Contains(w, "Fig5") {
		t.Errorf("complete group warned: %q", warn.String())
	}
}

func TestFoldMinOfSingletons(t *testing.T) {
	recs := []record{
		{Name: "BenchmarkA", NsPerOp: 1},
		{Name: "BenchmarkB", NsPerOp: 2},
	}
	var warn strings.Builder
	out := foldMinOf(recs, 1, &warn)
	if len(out) != 2 || out[0].Name != "BenchmarkA" || out[1].Name != "BenchmarkB" {
		t.Fatalf("min-of 1 changed records: %+v", out)
	}
	if warn.Len() != 0 {
		t.Errorf("min-of 1 warned: %q", warn.String())
	}
}
