// Benchjson converts `go test -bench` output on stdin into the JSON
// benchmark-trajectory schema committed as BENCH_*.json (see
// scripts/bench.sh). Every benchmark line becomes one record carrying
// ns/op, allocs/op, B/op and all custom metrics; records with a
// sim_cycles metric also get the derived sim_cycles_per_sec, the
// simulator-throughput number the perf work tracks.
//
//	go test -run '^$' -bench BenchmarkFig5 -benchmem | benchjson -label baseline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"stash/internal/cliutil"
)

type record struct {
	Name            string             `json:"name"`
	Iterations      int64              `json:"iterations"`
	NsPerOp         float64            `json:"ns_per_op"`
	BytesPerOp      float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp     float64            `json:"allocs_per_op,omitempty"`
	Metrics         map[string]float64 `json:"metrics,omitempty"`
	SimCyclesPerSec float64            `json:"sim_cycles_per_sec,omitempty"`
}

type report struct {
	Label      string    `json:"label"`
	Date       time.Time `json:"date"`
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	Benchmarks []record  `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "free-form label stored in the report (e.g. baseline, a git SHA)")
	version := cliutil.VersionFlag()
	flag.Parse()
	version()

	rep := report{
		Label:     *label,
		Date:      time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // pass the raw output through for the console
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line: a name, the iteration
// count, then (value, unit) pairs.
func parseLine(line string) (record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return record{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			r.Metrics[f[i+1]] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	if cycles, ok := r.Metrics["sim_cycles"]; ok && r.NsPerOp > 0 {
		r.SimCyclesPerSec = cycles / (r.NsPerOp / 1e9)
	}
	return r, true
}
