// Benchjson converts `go test -bench` output on stdin into the JSON
// benchmark-trajectory schema committed as BENCH_*.json (see
// scripts/bench.sh). Every benchmark line becomes one record carrying
// ns/op, allocs/op, B/op and all custom metrics; records with a
// sim_cycles metric also get the derived sim_cycles_per_sec, the
// simulator-throughput number the perf work tracks.
//
//	go test -run '^$' -bench BenchmarkFig5 -benchmem | benchjson -label baseline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"stash/internal/cliutil"
)

type record struct {
	Name            string             `json:"name"`
	Iterations      int64              `json:"iterations"`
	NsPerOp         float64            `json:"ns_per_op"`
	BytesPerOp      float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp     float64            `json:"allocs_per_op,omitempty"`
	Metrics         map[string]float64 `json:"metrics,omitempty"`
	SimCyclesPerSec float64            `json:"sim_cycles_per_sec,omitempty"`
}

type report struct {
	Label      string    `json:"label"`
	Date       time.Time `json:"date"`
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	MinOf      int       `json:"min_of,omitempty"`
	Benchmarks []record  `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "free-form label stored in the report (e.g. baseline, a git SHA)")
	compare := flag.String("compare", "", "baseline BENCH_*.json to compare against; exits 1 when the sim_cycles_per_sec geomean ratio falls below -floor")
	floor := flag.Float64("floor", 0.7, "minimum acceptable new/baseline sim_cycles_per_sec geomean ratio for -compare")
	minOf := flag.Int("min-of", 1, "fold N consecutive runs of each benchmark (from go test -count N) into one record, keeping the fastest; min-of-N damps scheduler noise in regression gates")
	version := cliutil.VersionFlag()
	flag.Parse()
	version()
	if *minOf < 1 {
		fmt.Fprintln(os.Stderr, "benchjson: -min-of must be >= 1")
		os.Exit(2)
	}

	rep := report{
		Label:     *label,
		Date:      time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // pass the raw output through for the console
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *minOf > 1 {
		rep.MinOf = *minOf
		rep.Benchmarks = foldMinOf(rep.Benchmarks, *minOf, os.Stderr)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *compare != "" {
		if err := compareBaseline(rep, *compare, *floor); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// foldMinOf collapses the consecutive runs `go test -count N` emits
// for each benchmark into the single fastest record (minimum ns/op),
// the standard way to strip one-sided scheduler noise before a
// regression comparison. The kept record is one coherent measurement —
// its allocs, custom metrics, and derived sim_cycles_per_sec all come
// from the same run, never mixed across runs. Runs are matched by raw
// name and must be adjacent, exactly as go test prints them; a group
// whose size differs from n folds anyway but warns, so a truncated
// bench log cannot masquerade as a clean min-of-N gate.
func foldMinOf(recs []record, n int, warn io.Writer) []record {
	out := recs[:0]
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].Name == recs[i].Name {
			j++
		}
		best := recs[i]
		for _, r := range recs[i+1 : j] {
			if r.NsPerOp < best.NsPerOp {
				best = r
			}
		}
		if j-i != n {
			fmt.Fprintf(warn, "benchjson: %s ran %d times, want %d (-min-of %d)\n",
				best.Name, j-i, n, n)
		}
		out = append(out, best)
		i = j
	}
	return out
}

// compareBaseline is the regression guard behind -compare: it matches
// the new report's records against the baseline file by name and
// requires the geomean of the new/baseline sim_cycles_per_sec ratios to
// stay at or above floor. Records without a sim_cycles metric on both
// sides (micro-benchmarks without a simulated clock) are ignored.
func compareBaseline(rep report, path string, floor float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseBy := make(map[string]record, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[stripProcs(r.Name)] = r
	}
	var logSum float64
	n := 0
	for _, r := range rep.Benchmarks {
		b, ok := baseBy[stripProcs(r.Name)]
		if !ok || r.SimCyclesPerSec <= 0 || b.SimCyclesPerSec <= 0 {
			continue
		}
		ratio := r.SimCyclesPerSec / b.SimCyclesPerSec
		fmt.Fprintf(os.Stderr, "compare %-60s %12.0f -> %12.0f cycles/s  (%.2fx)\n",
			r.Name, b.SimCyclesPerSec, r.SimCyclesPerSec, ratio)
		logSum += math.Log(ratio)
		n++
	}
	if n == 0 {
		return fmt.Errorf("no comparable sim_cycles_per_sec records between report and %s", path)
	}
	geomean := math.Exp(logSum / float64(n))
	fmt.Fprintf(os.Stderr, "compare geomean over %d cells: %.3fx (floor %.2fx, baseline %s)\n",
		n, geomean, floor, path)
	if geomean < floor {
		return fmt.Errorf("sim_cycles_per_sec geomean %.3fx below floor %.2fx vs %s", geomean, floor, path)
	}
	return nil
}

// stripProcs removes the -N GOMAXPROCS suffix go test appends to
// benchmark names (absent when GOMAXPROCS is 1), so reports from hosts
// with different core counts compare by the same key.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// parseLine parses one benchmark result line: a name, the iteration
// count, then (value, unit) pairs.
func parseLine(line string) (record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return record{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			r.Metrics[f[i+1]] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	if cycles, ok := r.Metrics["sim_cycles"]; ok && r.NsPerOp > 0 {
		r.SimCyclesPerSec = cycles / (r.NsPerOp / 1e9)
	}
	return r, true
}
