package stash

import (
	"math"
	"strings"
	"testing"
)

func TestOrgsRoundTrip(t *testing.T) {
	names := []string{"Scratch", "ScratchG", "ScratchGD", "Cache", "Stash", "StashG"}
	for i, o := range Orgs() {
		if o.String() != names[i] {
			t.Errorf("org %d = %q, want %q", i, o.String(), names[i])
		}
	}
}

func TestWorkloadLists(t *testing.T) {
	if len(Microbenchmarks()) != 4 || len(Applications()) != 7 || len(Workloads()) != 11 {
		t.Fatalf("workload lists wrong: %d micro, %d apps",
			len(Microbenchmarks()), len(Applications()))
	}
	if !IsMicrobenchmark("reuse") || IsMicrobenchmark("lud") {
		t.Fatal("IsMicrobenchmark misclassifies")
	}
}

func TestRunWorkloadUnknown(t *testing.T) {
	if _, err := RunWorkload("not-a-workload", Stash); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunWorkloadImplicitStashVsScratch(t *testing.T) {
	scratch, err := RunWorkload("implicit", Scratch)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunWorkload("implicit", Stash)
	if err != nil {
		t.Fatal(err)
	}
	n := st.NormalizeTo(scratch)
	if n.Instructions >= 1 || n.Energy >= 1 {
		t.Fatalf("stash not better than scratch: %+v", n)
	}
}

func TestCustomKernelThroughPublicAPI(t *testing.T) {
	// The Figure 1b program, written against the public API.
	const n = 256
	sys, err := NewSystem(MicroConfig(Stash))
	if err != nil {
		t.Fatal(err)
	}
	base := sys.Alloc(n, func(i int) uint32 { return uint32(i) })

	a := NewAsm()
	tid, sbase, gbase, v := a.R(), a.R(), a.R(), a.R()
	a.Spec(tid, TID)
	a.MovI(sbase, 0)
	a.Spec(gbase, CTAID)
	a.MulI(gbase, gbase, 128*4)
	a.AddI(gbase, gbase, int64(base))
	a.AddMapReg(0, MapParams{
		FieldBytes: 4, ObjectBytes: 4, RowElems: 128, NumRows: 1, Coherent: true,
	}, sbase, gbase)
	a.Barrier()
	a.LdStash(v, tid, 0, 0)
	a.AddI(v, v, 100)
	a.StStash(tid, 0, v, 0)
	k, err := a.Kernel(128, n/128, 128)
	if err != nil {
		t.Fatal(err)
	}

	sys.RunKernel(k)
	res := sys.Result()
	if res.Cycles == 0 || res.GPUInstructions == 0 {
		t.Fatalf("no activity measured: %+v", res)
	}
	sys.Flush()
	for i := 0; i < n; i++ {
		if got := sys.ReadWord(base + Addr(4*i)); got != uint32(i+100) {
			t.Fatalf("A[%d] = %d, want %d", i, got, i+100)
		}
	}
}

func TestCPUProgramThroughPublicAPI(t *testing.T) {
	sys, err := NewSystem(MicroConfig(Cache))
	if err != nil {
		t.Fatal(err)
	}
	src := sys.Alloc(64, func(i int) uint32 { return uint32(i * 2) })
	dst := sys.Alloc(15, nil)
	a := NewAsm()
	id, addr, v, sum, i, idx, cond := a.R(), a.R(), a.R(), a.R(), a.R(), a.R(), a.R()
	a.Spec(id, CTAID)
	a.MovI(sum, 0)
	a.For(i, 5)
	a.MulI(idx, id, 5)
	a.Add(idx, idx, i)
	a.SetLtI(cond, idx, 64)
	a.If(cond)
	a.MulI(addr, idx, 4)
	a.AddI(addr, addr, int64(src))
	a.LdGlobal(v, addr, 0)
	a.Add(sum, sum, v)
	a.EndIf()
	a.EndFor()
	a.MulI(addr, id, 4)
	a.AddI(addr, addr, int64(dst))
	a.StGlobal(addr, 0, sum)
	prog, err := a.Program()
	if err != nil {
		t.Fatal(err)
	}
	sys.RunCPU(prog, 15)
	sys.Flush()
	for tid := 0; tid < 13; tid++ { // threads 0..12 cover 0..64
		var want uint32
		for j := tid * 5; j < tid*5+5 && j < 64; j++ {
			want += uint32(j * 2)
		}
		if got := sys.ReadWord(dst + Addr(4*tid)); got != want {
			t.Fatalf("sum[%d] = %d, want %d", tid, got, want)
		}
	}
}

func TestTables(t *testing.T) {
	t1 := FeatureMatrix()
	if len(t1) != 9 {
		t.Fatalf("Table 1 rows = %d, want 9", len(t1))
	}
	for _, r := range t1 {
		if r.Support["Stash"] == "" || r.Support["Cache"] == "" || r.Support["Scratchpad"] == "" {
			t.Fatalf("Table 1 row %q incomplete", r.Benefit)
		}
	}
	t4 := RelatedWorkMatrix()
	if len(t4) != 10 {
		t.Fatalf("Table 4 rows = %d, want 10", len(t4))
	}
	out := RenderFeatures(t1, []string{"Cache", "Scratchpad", "Stash"})
	if !strings.Contains(out, "No conflict misses") {
		t.Fatal("rendered table missing rows")
	}
	e := AccessEnergies()
	if len(e) != 4 || e[0].HitPJ != 55.3 || e[1].MissPJ != 86.8 {
		t.Fatalf("Table 3 energies wrong: %+v", e)
	}
}

func TestNormalizeTo(t *testing.T) {
	base := Result{Cycles: 100, EnergyPJ: 200, GPUInstructions: 50,
		FlitHops: map[string]uint64{"read": 10}}
	r := Result{Cycles: 50, EnergyPJ: 100, GPUInstructions: 25,
		FlitHops: map[string]uint64{"read": 5}}
	n := r.NormalizeTo(base)
	for _, v := range []float64{n.Cycles, n.Energy, n.Instructions, n.Traffic} {
		if math.Abs(v-0.5) > 1e-9 {
			t.Fatalf("normalized = %+v, want all 0.5", n)
		}
	}
}

func TestAblationConfigs(t *testing.T) {
	cfg := MicroConfig(Stash)
	cfg.DisableReplication = true
	noRepl, err := RunWorkloadCfg("reuse", cfg)
	if err != nil {
		t.Fatal(err)
	}
	withRepl, err := RunWorkload("reuse", Stash)
	if err != nil {
		t.Fatal(err)
	}
	if noRepl.TotalFlitHops() <= withRepl.TotalFlitHops() {
		t.Fatalf("replication off traffic %d <= on %d",
			noRepl.TotalFlitHops(), withRepl.TotalFlitHops())
	}
}
