package stash

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// The benchmarks in this file regenerate every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index). Simulated
// metrics are reported through testing.B's ReportMetric: sim_cycles is
// the paper's execution-time axis, nJ the dynamic-energy axis,
// instructions Figure 5c, and flit_hops Figure 5d. Run with
//
//	go test -bench=. -benchmem
//
// and compare configurations per workload; EXPERIMENTS.md records the
// paper-vs-measured comparison.

func reportRun(b *testing.B, name string, org MemOrg) {
	b.Helper()
	var res Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = RunWorkload(name, org)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Cycles), "sim_cycles")
	b.ReportMetric(res.EnergyPJ/1e3, "nJ")
	b.ReportMetric(float64(res.GPUInstructions), "instructions")
	b.ReportMetric(float64(res.TotalFlitHops()), "flit_hops")
}

// BenchmarkTable1FeatureMatrix renders the qualitative Table 1.
func BenchmarkTable1FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(FeatureMatrix()) != 9 {
			b.Fatal("feature matrix incomplete")
		}
	}
}

// BenchmarkTable3AccessEnergy checks the energy model against Table 3.
func BenchmarkTable3AccessEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := AccessEnergies()
		if e[0].HitPJ != 55.3 || e[1].HitPJ != 55.4 || e[1].MissPJ != 86.8 {
			b.Fatal("Table 3 energies drifted")
		}
	}
}

// BenchmarkTable4RelatedWork renders the qualitative Table 4.
func BenchmarkTable4RelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(RelatedWorkMatrix()) != 10 {
			b.Fatal("related-work matrix incomplete")
		}
	}
}

// BenchmarkFig5Microbenchmarks regenerates Figure 5 (a)-(d): the four
// microbenchmarks on the four plotted configurations. All four panel
// metrics are reported per run.
func BenchmarkFig5Microbenchmarks(b *testing.B) {
	for _, name := range Microbenchmarks() {
		for _, org := range []MemOrg{Scratch, ScratchGD, Cache, Stash} {
			b.Run(name+"/"+org.String(), func(b *testing.B) {
				reportRun(b, name, org)
			})
		}
	}
}

// BenchmarkFig5TraceOverhead pins the host cost of the tracing
// subsystem on one Figure 5 cell. trace-off is the shipping
// configuration (every emit site a nil-check no-op); trace-on pays for
// event staging, series bucketing, and the periodic ring drain. Both
// variants produce bit-identical simulated metrics — only ns/op and
// allocs/op move. scripts/bench.sh records both rows in BENCH_*.json,
// so the trajectory tracks the overhead release over release.
func BenchmarkFig5TraceOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		label := "trace-off"
		if traced {
			label = "trace-on"
		}
		b.Run("implicit/Stash/"+label, func(b *testing.B) {
			var res Result
			for i := 0; i < b.N; i++ {
				cfg := MicroConfig(Stash)
				if traced {
					cfg.Trace = &TraceConfig{}
				}
				var err error
				res, err = RunWorkloadCfg("implicit", cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "sim_cycles")
			if res.Timeline != nil {
				b.ReportMetric(float64(res.Timeline.NumEvents()), "trace_events")
			}
		})
	}
}

// BenchmarkFig6Applications regenerates Figure 6 (a)-(b): the seven
// applications on the five plotted configurations.
func BenchmarkFig6Applications(b *testing.B) {
	for _, name := range Applications() {
		for _, org := range []MemOrg{Scratch, ScratchG, Cache, Stash, StashG} {
			b.Run(name+"/"+org.String(), func(b *testing.B) {
				reportRun(b, name, org)
			})
		}
	}
}

// BenchmarkAblationReplication quantifies the Section 4.5 data
// replication optimization on the Reuse microbenchmark: disabling it
// forces cross-kernel refetches.
func BenchmarkAblationReplication(b *testing.B) {
	for _, on := range []bool{true, false} {
		label := "replication-on"
		if !on {
			label = "replication-off"
		}
		b.Run(label, func(b *testing.B) {
			var res Result
			for i := 0; i < b.N; i++ {
				cfg := MicroConfig(Stash)
				cfg.DisableReplication = !on
				var err error
				res, err = RunWorkloadCfg("reuse", cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "sim_cycles")
			b.ReportMetric(res.EnergyPJ/1e3, "nJ")
			b.ReportMetric(float64(res.TotalFlitHops()), "flit_hops")
		})
	}
}

// BenchmarkAblationLazyWriteback quantifies lazy versus eager (kernel-
// boundary, scratchpad-style) writebacks on the Reuse microbenchmark.
func BenchmarkAblationLazyWriteback(b *testing.B) {
	for _, eager := range []bool{false, true} {
		label := "lazy"
		if eager {
			label = "eager"
		}
		b.Run(label, func(b *testing.B) {
			var res Result
			for i := 0; i < b.N; i++ {
				cfg := MicroConfig(Stash)
				cfg.EagerWriteback = eager
				var err error
				res, err = RunWorkloadCfg("reuse", cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "sim_cycles")
			b.ReportMetric(res.EnergyPJ/1e3, "nJ")
			b.ReportMetric(float64(res.TotalFlitHops()), "flit_hops")
		})
	}
}

// BenchmarkAblationChunkGranularity sweeps the lazy-writeback chunk
// size (Section 4.2) on the Implicit microbenchmark: finer chunks mean
// more, smaller flush operations for the same dirty footprint.
func BenchmarkAblationChunkGranularity(b *testing.B) {
	for _, chunk := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("chunk-%dw", chunk), func(b *testing.B) {
			var res Result
			for i := 0; i < b.N; i++ {
				cfg := MicroConfig(Stash)
				cfg.ChunkWords = chunk
				var err error
				res, err = RunWorkloadCfg("implicit", cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "sim_cycles")
			b.ReportMetric(res.EnergyPJ/1e3, "nJ")
			b.ReportMetric(float64(res.TotalFlitHops()), "flit_hops")
			var flushes uint64
			for name, v := range res.Counters {
				if strings.HasSuffix(name, ".lazy_writeback_chunks") {
					flushes += v
				}
			}
			b.ReportMetric(float64(flushes), "chunk_flushes")
		})
	}
}

// BenchmarkSweepFig5 runs the whole Figure 5 grid through the parallel
// sweep engine at different worker counts; ns/op is the wall time of
// the full 16-cell sweep (compare -cpu runs on a multi-core host).
func BenchmarkSweepFig5(b *testing.B) {
	specs := Grid(Microbenchmarks(), []MemOrg{Scratch, ScratchGD, Cache, Stash})
	for _, workers := range []int{1, 0} {
		label := "serial"
		if workers == 0 {
			label = "gomaxprocs"
		}
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Sweep(context.Background(), specs, SweepOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (host time
// per simulated implicit run), the only benchmark here where host
// ns/op is the interesting number.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunWorkload("implicit", Stash); err != nil {
			b.Fatal(err)
		}
	}
}
