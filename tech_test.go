package stash

import (
	"strings"
	"testing"
)

// TestTechFingerprintsUnchangedWithoutTechAxes pins the fingerprints of
// cells spanning both machine shapes and several organizations, captured
// immediately before the technology axes were added to Config. Absent
// (nil) tech fields must keep every pre-existing cell-cache entry valid,
// so these hashes must never move without a fingerprintVersion bump.
func TestTechFingerprintsUnchangedWithoutTechAxes(t *testing.T) {
	chunk4 := AppConfig(Scratch)
	chunk4.ChunkWords = 4
	for _, tc := range []struct {
		name string
		spec RunSpec
		want string
	}{
		{"implicit/MicroConfig(Stash)",
			RunSpec{Workload: "implicit", Config: MicroConfig(Stash)},
			"7a21751cb410811a96c8981950098a196f1886904a3b813a5a7677e1d18d43d0"},
		{"lud/AppConfig(StashG)",
			RunSpec{Workload: "lud", Config: AppConfig(StashG)},
			"caf416af79cdf2996abe2cdb47f7593b77f013b682d42ffbec57ef7e1e3ef87f"},
		{"reuse/MicroConfig(Cache)",
			RunSpec{Workload: "reuse", Config: MicroConfig(Cache)},
			"fd6086159774e850aa96c473c1d0efb891b6a188bc1544a21238f136ef2df008"},
		{"sgemm/AppConfig(Scratch)+ChunkWords=4",
			RunSpec{Workload: "sgemm", Config: chunk4},
			"c9da90731f54662d54b13c942214eb1f639c6acfe3e791f97affb84f08074ffc"},
	} {
		fp, err := tc.spec.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if fp != tc.want {
			t.Errorf("%s: fingerprint moved without any tech axis set:\n got %s\nwant %s\nAdding Config fields must not re-key existing cache entries.", tc.name, fp, tc.want)
		}
	}
}

// TestTechSpecFieldSensitivity mutates every TechSpec field on every
// axis and requires the fingerprint to move: two cells differing in any
// technology parameter must never alias in the cell cache.
func TestTechSpecFieldSensitivity(t *testing.T) {
	mk := func(edit func(*Config)) string {
		cfg := MicroConfig(Stash)
		cfg.StashTech = &TechSpec{Profile: "sram"}
		cfg.L1Tech = &TechSpec{Profile: "sram"}
		cfg.LLCTech = &TechSpec{Profile: "sram"}
		if edit != nil {
			edit(&cfg)
		}
		fp, err := (RunSpec{Workload: "implicit", Config: cfg}).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return fp
	}
	base := mk(nil)
	edits := map[string]func(*Config){
		"StashTech.Profile":          func(c *Config) { c.StashTech.Profile = "stt-mram" },
		"StashTech.ReadLatDelta":     func(c *Config) { c.StashTech.ReadLatDelta = 3 },
		"StashTech.WriteLatDelta":    func(c *Config) { c.StashTech.WriteLatDelta = 5 },
		"StashTech.ReadEnergyScale":  func(c *Config) { c.StashTech.ReadEnergyScale = 1.5 },
		"StashTech.WriteEnergyScale": func(c *Config) { c.StashTech.WriteEnergyScale = 2.5 },
		"StashTech.LeakageMWPerKB":   func(c *Config) { c.StashTech.LeakageMWPerKB = 0.01 },
		"StashTech.CapacityKB":       func(c *Config) { c.StashTech.CapacityKB = 32 },
		"L1Tech.Profile":             func(c *Config) { c.L1Tech.Profile = "edram" },
		"L1Tech.CapacityKB":          func(c *Config) { c.L1Tech.CapacityKB = 64 },
		"LLCTech.Profile":            func(c *Config) { c.LLCTech.Profile = "edram" },
		"LLCTech.CapacityKB":         func(c *Config) { c.LLCTech.CapacityKB = 128 },
	}
	seen := map[string]string{base: "base"}
	for name, edit := range edits {
		fp := mk(edit)
		if fp == base {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutations %s and %s collided on fingerprint %s", name, prev, fp)
		}
		seen[fp] = name
	}
	// The same spec on different axes must also be distinct cells.
	onStash := mk(func(c *Config) { c.StashTech.Profile = "edram" })
	onL1 := mk(func(c *Config) { c.L1Tech.Profile = "edram" })
	if onStash == onL1 {
		t.Error("the same profile on StashTech vs L1Tech fingerprinted identically")
	}
}

func TestTechSpecValidation(t *testing.T) {
	valid := []Config{
		MicroConfig(Stash), // all axes nil
		func() Config {
			c := MicroConfig(Stash)
			c.StashTech = &TechSpec{} // empty spec = custom identity
			return c
		}(),
		func() Config {
			c := MicroConfig(Stash)
			c.StashTech = &TechSpec{Profile: "stt-mram", WriteLatDelta: 20}
			c.L1Tech = &TechSpec{ReadEnergyScale: 0.5, CapacityKB: 64}
			c.LLCTech = &TechSpec{Profile: "edram", CapacityKB: 256}
			return c
		}(),
		func() Config {
			// A tech axis for a structure the org lacks is accepted.
			c := MicroConfig(Cache)
			c.StashTech = &TechSpec{Profile: "stt-mram"}
			return c
		}(),
	}
	for i, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("valid config %d rejected: %v", i, err)
		}
	}

	invalid := []struct {
		name string
		edit func(*Config)
		want string
	}{
		{"unknown profile", func(c *Config) { c.StashTech = &TechSpec{Profile: "memristor"} }, "StashTech"},
		{"negative read scale", func(c *Config) { c.L1Tech = &TechSpec{ReadEnergyScale: -1} }, "L1Tech"},
		{"negative write delta", func(c *Config) { c.LLCTech = &TechSpec{WriteLatDelta: -2} }, "LLCTech"},
		{"huge lat delta", func(c *Config) { c.StashTech = &TechSpec{ReadLatDelta: 1 << 20} }, "StashTech"},
		{"huge energy scale", func(c *Config) { c.StashTech = &TechSpec{WriteEnergyScale: 1e9} }, "StashTech"},
		{"stash capacity too small", func(c *Config) { c.StashTech = &TechSpec{CapacityKB: 1} }, "StashTech"},
		{"l1 capacity too large", func(c *Config) { c.L1Tech = &TechSpec{CapacityKB: 1 << 20} }, "L1Tech"},
		{"negative capacity", func(c *Config) { c.LLCTech = &TechSpec{CapacityKB: -4} }, "LLCTech"},
	}
	for _, tc := range invalid {
		c := MicroConfig(Stash)
		tc.edit(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the offending axis %s", tc.name, err, tc.want)
		}
	}
}

// TestTechSRAMProfileKeepsMetrics runs cells with and without an
// explicit "sram" profile. SRAM is the identity technology for timing,
// so cycle counts must be bit-identical; energy accounting switches to
// the refined read/write-split classes. On a pure cache hierarchy the
// splits partition the unified events exactly (same costs, same counts),
// so energy is bit-equal too; on a stash the refined model additionally
// prices fill writes into the data array, so its energy is strictly
// higher than the legacy unified accounting.
func TestTechSRAMProfileKeepsMetrics(t *testing.T) {
	withSRAM := func(org MemOrg) (Result, Result) {
		base, err := RunWorkload("implicit", org)
		if err != nil {
			t.Fatal(err)
		}
		cfg := MicroConfig(org)
		cfg.StashTech = &TechSpec{Profile: "sram"}
		cfg.L1Tech = &TechSpec{Profile: "sram"}
		cfg.LLCTech = &TechSpec{Profile: "sram"}
		got, err := RunWorkloadCfg("implicit", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return got, base
	}

	got, base := withSRAM(Cache)
	if got.Cycles != base.Cycles {
		t.Errorf("Cache: sram profile changed cycles: %d vs %d", got.Cycles, base.Cycles)
	}
	if got.EnergyPJ != base.EnergyPJ {
		t.Errorf("Cache: sram profile changed energy: %v vs %v pJ (splits must partition the unified classes exactly)", got.EnergyPJ, base.EnergyPJ)
	}
	if got.EnergyEvents["l1_read_hit"] != base.EnergyEvents["l1_hit"] {
		t.Errorf("l1_read_hit %d should equal legacy l1_hit %d on this workload", got.EnergyEvents["l1_read_hit"], base.EnergyEvents["l1_hit"])
	}
	if rm, wm := got.EnergyEvents["l1_read_miss"], got.EnergyEvents["l1_write_miss"]; rm+wm != base.EnergyEvents["l1_miss"] {
		t.Errorf("l1 miss splits %d+%d should partition legacy l1_miss %d", rm, wm, base.EnergyEvents["l1_miss"])
	}
	if r, w := got.EnergyEvents["l2_read"], got.EnergyEvents["l2_write"]; r+w != base.EnergyEvents["l2_access"] {
		t.Errorf("l2 splits %d+%d should partition legacy l2_access %d", r, w, base.EnergyEvents["l2_access"])
	}

	got, base = withSRAM(Stash)
	if got.Cycles != base.Cycles {
		t.Errorf("Stash: sram profile changed cycles: %d vs %d", got.Cycles, base.Cycles)
	}
	if got.EnergyPJ <= base.EnergyPJ {
		t.Errorf("Stash: refined accounting prices fill writes, so energy %v should exceed legacy %v", got.EnergyPJ, base.EnergyPJ)
	}
	if got.StaticEnergyPJ == 0 {
		t.Error("sram profile has nonzero leakage but StaticEnergyPJ is 0")
	}
	for _, split := range []string{"stash_read", "stash_write", "l2_read", "l2_write"} {
		if got.EnergyEvents[split] == 0 {
			t.Errorf("split event %s not charged under an explicit profile", split)
		}
		if base.EnergyEvents[split] != 0 {
			t.Errorf("split event %s charged on the default path", split)
		}
	}
	for _, unified := range []string{"stash_hit", "l2_access"} {
		if got.EnergyEvents[unified] != 0 {
			t.Errorf("unified event %s still charged under an explicit profile", unified)
		}
	}
}

// TestTechSTTMRAMChangesMetrics pins the direction of the technology
// model: a write-penalized profile on the stash must cost cycles and
// change dynamic energy relative to the SRAM baseline.
func TestTechSTTMRAMChangesMetrics(t *testing.T) {
	base, err := RunWorkload("implicit", Stash)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MicroConfig(Stash)
	cfg.StashTech = &TechSpec{Profile: "stt-mram"}
	got, err := RunWorkloadCfg("implicit", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles <= base.Cycles {
		t.Errorf("stt-mram stash did not cost cycles: %d vs baseline %d", got.Cycles, base.Cycles)
	}
	if got.EnergyPJ == base.EnergyPJ {
		t.Error("stt-mram stash left dynamic energy bit-identical to SRAM")
	}
	if got.StaticEnergyPJ >= float64(got.Cycles)*0.05*16*1e9/700e6 {
		t.Error("stt-mram leakage should be far below an SRAM-leakage bound")
	}
}

func TestTechGridShape(t *testing.T) {
	specs, err := TechGrid([]string{"reuse"}, []MemOrg{Cache, Stash}, []string{"sram", "stt-mram"}, []int{16, 32})
	if err != nil {
		t.Fatal(err)
	}
	// Cache: one cell per tech (no stash capacity axis); Stash: tech x cap.
	if want := 2 + 2*2; len(specs) != want {
		t.Fatalf("grid has %d cells, want %d", len(specs), want)
	}
	for i, s := range specs {
		if err := s.Config.Validate(); err != nil {
			t.Errorf("cell %d invalid: %v", i, err)
		}
		if s.Config.L1Tech == nil || s.Config.L1Tech.Profile == "" {
			t.Errorf("cell %d missing explicit L1 profile", i)
		}
		if s.Config.LLCTech != nil {
			t.Errorf("cell %d set an LLC tech; the grid holds the LLC at baseline", i)
		}
	}
	// Stash cells carry the capacity axis.
	caps := map[int]bool{}
	for _, s := range specs {
		if s.Config.Org == Stash && s.Config.StashTech != nil {
			caps[s.Config.StashTech.CapacityKB] = true
		}
	}
	if !caps[16] || !caps[32] {
		t.Errorf("stash capacity axis not expanded: got %v", caps)
	}
	// Deterministic: same inputs, same specs.
	again, err := TechGrid([]string{"reuse"}, []MemOrg{Cache, Stash}, []string{"sram", "stt-mram"}, []int{16, 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		a, _ := specs[i].Fingerprint()
		b, _ := again[i].Fingerprint()
		if a != b {
			t.Fatalf("grid expansion not deterministic at cell %d", i)
		}
	}

	if _, err := TechGrid([]string{"reuse"}, []MemOrg{Cache}, []string{"unobtainium"}, nil); err == nil {
		t.Error("unknown technology accepted")
	}
	if _, err := TechGrid([]string{"reuse"}, []MemOrg{Cache}, nil, nil); err == nil {
		t.Error("empty technology list accepted")
	}
}

func TestLocalMemKB(t *testing.T) {
	if got := MicroConfig(Cache).LocalMemKB(); got != 32 {
		t.Errorf("Cache local mem = %d KB, want 32", got)
	}
	if got := MicroConfig(Stash).LocalMemKB(); got != 48 {
		t.Errorf("Stash local mem = %d KB, want 48", got)
	}
	c := MicroConfig(Stash)
	c.StashTech = &TechSpec{Profile: "stt-mram", CapacityKB: 64}
	c.L1Tech = &TechSpec{CapacityKB: 16}
	if got := c.LocalMemKB(); got != 80 {
		t.Errorf("overridden local mem = %d KB, want 80", got)
	}
}

func TestTechProfilesListed(t *testing.T) {
	names := TechProfiles()
	if len(names) < 3 {
		t.Fatalf("want at least sram/stt-mram/edram, got %v", names)
	}
	for _, want := range []string{"sram", "stt-mram", "edram"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("profile %s missing from TechProfiles(): %v", want, names)
		}
	}
}
