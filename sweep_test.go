package stash

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// zeroWalls strips host timing so sweep results can be compared and
// JSON-diffed bit-for-bit.
func zeroWalls(results []SweepResult) []SweepResult {
	out := append([]SweepResult(nil), results...)
	for i := range out {
		out[i].Wall = 0
	}
	return out
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	workloads := []string{"implicit", "reuse"}
	orgs := []MemOrg{Scratch, Cache, Stash}
	if testing.Short() {
		workloads = []string{"implicit"}
		orgs = []MemOrg{Scratch, Stash}
	}
	specs := Grid(workloads, orgs)

	serial, err := Sweep(context.Background(), specs, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(context.Background(), specs, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(zeroWalls(serial), zeroWalls(parallel)) {
		t.Fatal("parallel sweep results differ from serial")
	}
	var sbuf, pbuf bytes.Buffer
	if err := EncodeJSON(&sbuf, zeroWalls(serial)); err != nil {
		t.Fatal(err)
	}
	if err := EncodeJSON(&pbuf, zeroWalls(parallel)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sbuf.Bytes(), pbuf.Bytes()) {
		t.Fatal("parallel sweep JSON differs from serial")
	}
}

func TestSweepRepeatable(t *testing.T) {
	specs := Grid([]string{"implicit"}, []MemOrg{Stash})
	a, err := Sweep(context.Background(), specs, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(context.Background(), specs, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zeroWalls(a), zeroWalls(b)) {
		t.Fatal("two identical sweeps disagree: simulation is not deterministic")
	}
}

func TestGrid(t *testing.T) {
	specs := Grid([]string{"implicit", "lud"}, []MemOrg{Scratch, Stash})
	if len(specs) != 4 {
		t.Fatalf("grid size = %d, want 4", len(specs))
	}
	want := []string{"implicit/Scratch", "implicit/Stash", "lud/Scratch", "lud/Stash"}
	for i, s := range specs {
		if s.String() != want[i] {
			t.Errorf("spec %d = %q, want %q", i, s, want[i])
		}
	}
	// Microbenchmarks get the 1-CU machine, applications the 15-CU one.
	if specs[0].Config.GPUs != 1 || specs[0].Config.CPUs != 15 {
		t.Errorf("micro config = %d CUs/%d CPUs, want 1/15", specs[0].Config.GPUs, specs[0].Config.CPUs)
	}
	if specs[2].Config.GPUs != 15 || specs[2].Config.CPUs != 1 {
		t.Errorf("app config = %d CUs/%d CPUs, want 15/1", specs[2].Config.GPUs, specs[2].Config.CPUs)
	}
}

func TestSweepFailFast(t *testing.T) {
	specs := []RunSpec{
		{Workload: "implicit", Config: MicroConfig(Stash)},
		{Workload: "no-such-workload", Config: MicroConfig(Stash)},
		{Workload: "implicit", Config: MicroConfig(Scratch)},
		{Workload: "implicit", Config: MicroConfig(Cache)},
	}
	results, err := Sweep(context.Background(), specs, SweepOptions{Workers: 1, FailFast: true})
	if err == nil || !strings.Contains(err.Error(), "no-such-workload") {
		t.Fatalf("fail-fast error = %v, want unknown-workload failure", err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
	if results[0].Err != nil {
		t.Errorf("cell 0 failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("failing cell has nil Err")
	}
	// With one worker the cells after the failure are never started and
	// must carry the cancellation, not look like successes.
	for i := 2; i < 4; i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Errorf("cell %d Err = %v, want context.Canceled", i, results[i].Err)
		}
	}
}

func TestSweepCollectAll(t *testing.T) {
	specs := []RunSpec{
		{Workload: "bad-one", Config: MicroConfig(Stash)},
		{Workload: "implicit", Config: MicroConfig(Stash)},
		{Workload: "bad-two", Config: MicroConfig(Stash)},
	}
	results, err := Sweep(context.Background(), specs, SweepOptions{Workers: 2})
	if err == nil {
		t.Fatal("collect-all sweep with failures returned nil error")
	}
	if !strings.Contains(err.Error(), "bad-one") || !strings.Contains(err.Error(), "bad-two") {
		t.Fatalf("joined error %v missing a cell failure", err)
	}
	if results[1].Err != nil || results[1].Result.Cycles == 0 {
		t.Errorf("healthy cell not run to completion: %+v", results[1])
	}
}

func TestSweepProgress(t *testing.T) {
	specs := Grid([]string{"implicit"}, []MemOrg{Scratch, Stash})
	var events []SweepEvent
	_, err := Sweep(context.Background(), specs, SweepOptions{
		Workers:  2,
		Progress: func(e SweepEvent) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(specs) {
		t.Fatalf("%d progress events, want %d", len(events), len(specs))
	}
	for i, e := range events {
		if e.Done != i+1 || e.Total != len(specs) {
			t.Errorf("event %d: Done=%d Total=%d, want %d/%d", i, e.Done, e.Total, i+1, len(specs))
		}
		if e.Err != nil || e.Wall <= 0 {
			t.Errorf("event %d: Err=%v Wall=%v", i, e.Err, e.Wall)
		}
	}
}

func TestSweepCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := Grid([]string{"implicit"}, []MemOrg{Scratch, Stash})
	results, err := Sweep(ctx, specs, SweepOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("cell %d Err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestSweepJSONRoundTrip: a decoded EncodeJSON document reproduces
// every cell's spec, wall time, status — including reconstructed
// errors with their diagnostics — and re-encodes bit-identically
// (timelines excepted: their JSON form is a summary).
func TestSweepJSONRoundTrip(t *testing.T) {
	cells := []SweepResult{
		{
			Spec:   RunSpec{Workload: "implicit", Config: MicroConfig(Stash)},
			Result: Result{Cycles: 123, EnergyPJ: 4.5, FlitHops: map[string]uint64{"read": 9}, Counters: map[string]uint64{"x": 1}},
			Wall:   time.Millisecond, Attempts: 1,
		},
		{
			Spec: RunSpec{Workload: "lud", Config: AppConfig(Cache)},
			Wall: time.Second, Attempts: 2,
			Err: &CellError{Workload: "lud", Org: Cache, Kind: FailHang, Msg: "no progress for 1000 cycles", Diagnostic: "engine: cycle=42"},
		},
		{
			Spec: RunSpec{Workload: "nw", Config: AppConfig(Stash)},
			Wall: time.Second, Attempts: 1,
			Err: fmt.Errorf("gave up: %w", ErrCellTimeout),
		},
		{
			Spec: RunSpec{Workload: "surf", Config: AppConfig(Scratch)},
			Err:  fmt.Errorf("stash: surf on Scratch not started: %w", context.Canceled),
		},
	}
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, cells); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(cells) {
		t.Fatalf("decoded %d cells, want %d", len(decoded), len(cells))
	}
	for i, d := range decoded {
		orig := cells[i]
		if d.Spec != orig.Spec || d.Wall != orig.Wall || d.Attempts != orig.Attempts {
			t.Errorf("cell %d identity: got %+v", i, d)
		}
		if d.Status() != orig.Status() {
			t.Errorf("cell %d status: got %s want %s", i, d.Status(), orig.Status())
		}
	}
	if !reflect.DeepEqual(decoded[0].Result, cells[0].Result) {
		t.Errorf("ok cell result did not round-trip: %+v", decoded[0].Result)
	}
	var ce *CellError
	if !errors.As(decoded[1].Err, &ce) || ce.Diagnostic != "engine: cycle=42" || ce.Msg != "no progress for 1000 cycles" {
		t.Errorf("cell error did not round-trip: %#v", decoded[1].Err)
	}
	if !errors.Is(decoded[2].Err, ErrCellTimeout) {
		t.Errorf("timeout identity lost: %v", decoded[2].Err)
	}

	var rebuf bytes.Buffer
	if err := EncodeJSON(&rebuf, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), rebuf.Bytes()) {
		t.Errorf("re-encoded document differs:\n%s\nvs\n%s", buf.Bytes(), rebuf.Bytes())
	}
}

// TestEnergyBreakdownJSONRoundTrip: the per-component and per-event
// energy breakdown of a real simulated cell — including the technology
// extension's static-energy fields and the TechSpec carried in the spec
// — survives the sweep NDJSON encoding exactly, so downstream tooling
// can re-price runs from the dump without re-simulating.
func TestEnergyBreakdownJSONRoundTrip(t *testing.T) {
	cfg := MicroConfig(Stash)
	cfg.StashTech = &TechSpec{Profile: "edram"}
	cfg.L1Tech = &TechSpec{Profile: "stt-mram", CapacityKB: 64}
	results, err := Sweep(context.Background(), []RunSpec{{Workload: "implicit", Config: cfg}}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	orig := results[0]
	if len(orig.Result.EnergyEvents) == 0 {
		t.Fatal("simulated cell has no EnergyEvents")
	}
	if orig.Result.StaticEnergyPJ == 0 || len(orig.Result.StaticByStructure) == 0 {
		t.Fatalf("tech cell has no static energy: %+v", orig.Result.StaticByStructure)
	}

	var buf bytes.Buffer
	if err := EncodeJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := decoded[0]
	if !reflect.DeepEqual(got.Spec, orig.Spec) {
		t.Errorf("spec with tech axes did not round-trip:\n got %+v\nwant %+v", got.Spec, orig.Spec)
	}
	for name, field := range map[string][2]interface{}{
		"EnergyEvents":      {got.Result.EnergyEvents, orig.Result.EnergyEvents},
		"EnergyByComponent": {got.Result.EnergyByComponent, orig.Result.EnergyByComponent},
		"StaticByStructure": {got.Result.StaticByStructure, orig.Result.StaticByStructure},
	} {
		if !reflect.DeepEqual(field[0], field[1]) {
			t.Errorf("%s did not round-trip:\n got %+v\nwant %+v", name, field[0], field[1])
		}
	}
	if got.Result.StaticEnergyPJ != orig.Result.StaticEnergyPJ {
		t.Errorf("StaticEnergyPJ = %v, want %v", got.Result.StaticEnergyPJ, orig.Result.StaticEnergyPJ)
	}
	if got.Result.EnergyPJ != orig.Result.EnergyPJ {
		t.Errorf("EnergyPJ = %v, want %v", got.Result.EnergyPJ, orig.Result.EnergyPJ)
	}

	var rebuf bytes.Buffer
	if err := EncodeJSON(&rebuf, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), rebuf.Bytes()) {
		t.Error("re-encoded energy breakdown document differs")
	}
}

func TestConfigValidate(t *testing.T) {
	ok := MicroConfig(Stash)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad org", func(c *Config) { c.Org = MemOrg(99) }},
		{"zero gpus", func(c *Config) { c.GPUs = 0 }},
		{"negative cpus", func(c *Config) { c.CPUs = -1 }},
		{"too many nodes", func(c *Config) { c.GPUs, c.CPUs = 10, 7 }},
		{"chunk not power of two", func(c *Config) { c.ChunkWords = 3 }},
		{"chunk too large", func(c *Config) { c.ChunkWords = 32 }},
		{"negative chunk", func(c *Config) { c.ChunkWords = -4 }},
	}
	for _, tc := range cases {
		cfg := ok
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
	for _, chunk := range []int{0, 1, 2, 4, 8, 16} {
		cfg := ok
		cfg.ChunkWords = chunk
		if err := cfg.Validate(); err != nil {
			t.Errorf("ChunkWords=%d rejected: %v", chunk, err)
		}
	}
}

func TestInvalidConfigReturnsErrorNotPanic(t *testing.T) {
	bad := MicroConfig(Stash)
	bad.Org = MemOrg(42)
	if _, err := RunWorkloadCfg("implicit", bad); err == nil {
		t.Error("RunWorkloadCfg accepted an invalid org")
	}
	if _, err := NewSystem(bad); err == nil {
		t.Error("NewSystem accepted an invalid org")
	}
	bad = MicroConfig(Stash)
	bad.GPUs = 0
	if _, err := RunWorkloadCfg("implicit", bad); err == nil {
		t.Error("RunWorkloadCfg accepted zero GPUs")
	}
}

func TestRunWorkloadContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunWorkloadContext(ctx, "implicit", MicroConfig(Stash)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run err = %v, want context.Canceled", err)
	}

	// reuse/Scratch is the longest-running cell by a wide margin, so the
	// deadline reliably fires mid-simulation.
	ctx, cancel = context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunWorkloadContext(ctx, "reuse", MicroConfig(Scratch))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out run err = %v, want context.DeadlineExceeded", err)
	}
	// The whole point: a multi-second simulation unwound almost
	// immediately instead of running to completion.
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt unwind", wall)
	}
}

func TestParseMemOrg(t *testing.T) {
	for _, o := range Orgs() {
		got, err := ParseMemOrg(o.String())
		if err != nil || got != o {
			t.Errorf("ParseMemOrg(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := ParseMemOrg("NotAnOrg"); err == nil {
		t.Error("ParseMemOrg accepted a bogus name")
	}
	if MemOrg(99).String() != "MemOrg(99)" {
		t.Errorf("out-of-range String() = %q", MemOrg(99).String())
	}
	if MemOrg(99).Valid() {
		t.Error("MemOrg(99) reported valid")
	}
}

func TestMemOrgJSONRoundTrip(t *testing.T) {
	b, err := StashG.MarshalText()
	if err != nil || string(b) != "StashG" {
		t.Fatalf("MarshalText = %q, %v", b, err)
	}
	var o MemOrg
	if err := o.UnmarshalText([]byte("ScratchGD")); err != nil || o != ScratchGD {
		t.Fatalf("UnmarshalText = %v, %v", o, err)
	}
	if err := o.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("UnmarshalText accepted a bogus name")
	}
}

func TestNormalizeToZeroBaseline(t *testing.T) {
	r := Result{Cycles: 50, EnergyPJ: 100, GPUInstructions: 25,
		FlitHops: map[string]uint64{"read": 5}}
	n := r.NormalizeTo(Result{})
	if n.Cycles != 0 || n.Energy != 0 || n.Instructions != 0 || n.Traffic != 0 {
		t.Fatalf("zero baseline normalized = %+v, want all zero", n)
	}
}

// sumCounters totals every counter whose name ends in suffix (one per
// CU-attached stash).
func sumCounters(r Result, suffix string) uint64 {
	var t uint64
	for name, v := range r.Counters {
		if strings.HasSuffix(name, suffix) {
			t += v
		}
	}
	return t
}

func TestAblationChunkWords(t *testing.T) {
	coarse := MicroConfig(Stash)
	fine := coarse
	fine.ChunkWords = 4
	rc, err := RunWorkloadCfg("implicit", coarse)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := RunWorkloadCfg("implicit", fine)
	if err != nil {
		t.Fatal(err)
	}
	cFlush := sumCounters(rc, ".lazy_writeback_chunks")
	fFlush := sumCounters(rf, ".lazy_writeback_chunks")
	// Finer chunks mean more (smaller) lazy-writeback flush operations
	// for the same dirty footprint.
	if fFlush <= cFlush {
		t.Fatalf("4-word chunks flushed %d times, 16-word %d: want finer > coarser", fFlush, cFlush)
	}
}
