package stash

import (
	"stash/internal/gpu"
	"stash/internal/isa"
)

// Reg is a virtual register of the simulated mini ISA.
type Reg int

// Special identifies a read-only special register.
type Special int

// Special registers.
const (
	TID    Special = iota // thread index within the block
	NTID                  // threads per block
	CTAID                 // block index
	NCTAID                // grid size in blocks
	LANE                  // lane within the warp
	WARPID                // warp within the block
)

var specMap = map[Special]isa.Spec{
	TID: isa.SpecTid, NTID: isa.SpecNtid, CTAID: isa.SpecCtaid,
	NCTAID: isa.SpecNctaid, LANE: isa.SpecLane, WARPID: isa.SpecWarpID,
}

// Asm assembles kernels and CPU programs for the simulated machine.
// The instruction set mirrors the paper's CUDA-level operations: ALU
// ops, structured IF/FOR control flow, barriers, loads and stores to
// global memory (through the L1), the scratchpad, and the stash (with
// the map-index-table slot encoded in the instruction, Section 3.2),
// plus the AddMap/ChgMap and DMA intrinsics.
type Asm struct {
	b *isa.Builder
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm { return &Asm{b: isa.NewBuilder()} }

// R allocates a fresh register.
func (a *Asm) R() Reg { return Reg(a.b.Reg()) }

// MovI sets rd to an immediate; Mov copies registers; Spec reads a
// special register.
func (a *Asm) MovI(rd Reg, v int64)       { a.b.MovImm(int(rd), v) }
func (a *Asm) Mov(rd, ra Reg)             { a.b.Mov(int(rd), int(ra)) }
func (a *Asm) Spec(rd Reg, s Special)     { a.b.Special(int(rd), specMap[s]) }
func (a *Asm) Add(rd, ra, rb Reg)         { a.b.Add(int(rd), int(ra), int(rb)) }
func (a *Asm) Sub(rd, ra, rb Reg)         { a.b.Sub(int(rd), int(ra), int(rb)) }
func (a *Asm) Mul(rd, ra, rb Reg)         { a.b.Mul(int(rd), int(ra), int(rb)) }
func (a *Asm) AddI(rd, ra Reg, v int64)   { a.b.AddImm(int(rd), int(ra), v) }
func (a *Asm) MulI(rd, ra Reg, v int64)   { a.b.MulImm(int(rd), int(ra), v) }
func (a *Asm) DivI(rd, ra Reg, v int64)   { a.b.DivImm(int(rd), int(ra), v) }
func (a *Asm) ModI(rd, ra Reg, v int64)   { a.b.ModImm(int(rd), int(ra), v) }
func (a *Asm) SetLt(rd, ra, rb Reg)       { a.b.SetLt(int(rd), int(ra), int(rb)) }
func (a *Asm) SetLtI(rd, ra Reg, v int64) { a.b.SetLtImm(int(rd), int(ra), v) }
func (a *Asm) SetEqI(rd, ra Reg, v int64) { a.b.SetEqImm(int(rd), int(ra), v) }
func (a *Asm) Select(rd, c, rt, rf Reg)   { a.b.Select(int(rd), int(c), int(rt), int(rf)) }

// Flops models n cycles of floating-point work.
func (a *Asm) Flops(n int) { a.b.Flops(n) }

// LdGlobal / StGlobal access global memory through the L1 (byte
// address = ra + off).
func (a *Asm) LdGlobal(rd, ra Reg, off int64) { a.b.LdGlobal(int(rd), int(ra), off) }
func (a *Asm) StGlobal(ra Reg, off int64, rb Reg) {
	a.b.StGlobal(int(ra), off, int(rb))
}

// LdShared / StShared access the scratchpad (word offset = ra + off).
func (a *Asm) LdShared(rd, ra Reg, off int64) { a.b.LdShared(int(rd), int(ra), off) }
func (a *Asm) StShared(ra Reg, off int64, rb Reg) {
	a.b.StShared(int(ra), off, int(rb))
}

// LdStash / StStash access the stash under the given map-index-table
// slot (word offset = ra + off).
func (a *Asm) LdStash(rd, ra Reg, off int64, slot int) {
	a.b.LdStash(int(rd), int(ra), off, slot)
}
func (a *Asm) StStash(ra Reg, off int64, rb Reg, slot int) {
	a.b.StStash(int(ra), off, int(rb), slot)
}

// AddMap installs a stash mapping in the block's map index table slot.
// The stash base is block-relative; the runtime rebases it onto the
// block's local allocation.
func (a *Asm) AddMap(slot int, m MapParams) { a.b.AddMap(slot, m.internal()) }

// AddMapReg is AddMap with the stash base and global base taken from
// registers (lane-0 values), for per-block tiles.
func (a *Asm) AddMapReg(slot int, m MapParams, sbase, gbase Reg) {
	a.b.AddMapReg(slot, m.internal(), int(sbase), int(gbase))
}

// ChgMap updates an existing mapping (paper Section 4.2).
func (a *Asm) ChgMap(slot int, m MapParams) { a.b.ChgMap(slot, m.internal()) }

// DMALoad / DMAStore transfer a tile between global memory and the
// scratchpad through the DMA engine, blocking the whole CU.
func (a *Asm) DMALoad(m MapParams, sbase, gbase Reg) {
	a.b.DMALoadReg(m.internal(), int(sbase), int(gbase))
}
func (a *Asm) DMAStore(m MapParams, sbase, gbase Reg) {
	a.b.DMAStoreReg(m.internal(), int(sbase), int(gbase))
}

// Barrier synchronizes the thread block.
func (a *Asm) Barrier() { a.b.Barrier() }

// If/Else/EndIf bracket a divergent region executing where c != 0.
func (a *Asm) If(c Reg) { a.b.If(int(c)) }
func (a *Asm) Else()    { a.b.Else() }
func (a *Asm) EndIf()   { a.b.EndIf() }

// For/EndFor bracket a counted loop; i runs 0..n-1.
func (a *Asm) For(i Reg, n int64) { a.b.For(int(i), n) }
func (a *Asm) EndFor()            { a.b.EndFor() }

// Assemble finalizes and validates the instruction stream — balanced
// If/For regions, well-formed register use — and reports the first
// builder error without materializing a launchable artifact. Kernel
// and Program perform the same assembly; call Assemble directly to
// check a program before choosing a launch shape. Assembly is
// idempotent: more instructions may be appended and the program
// assembled again.
func (a *Asm) Assemble() error {
	_, err := a.b.Build()
	return err
}

// Kernel assembles the program as a GPU kernel, returning any builder
// error (see Assemble) instead of panicking. localWords is the
// per-block scratchpad/stash allocation in words (chunk-aligned, 64 B).
func (a *Asm) Kernel(blockDim, gridDim, localWords int) (*Kernel, error) {
	p, err := a.b.Build()
	if err != nil {
		return nil, err
	}
	return &Kernel{k: &gpu.Kernel{
		Prog:               p,
		BlockDim:           blockDim,
		GridDim:            gridDim,
		LocalWordsPerBlock: localWords,
	}}, nil
}

// Program assembles the instruction sequence as a CPU program,
// returning any builder error (see Assemble) instead of panicking.
func (a *Asm) Program() (*Program, error) {
	p, err := a.b.Build()
	if err != nil {
		return nil, err
	}
	return &Program{p: p}, nil
}
