package stash

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"stash/internal/sweep"
)

// RunSpec names one cell of a sweep: a workload plus the machine
// configuration to run it on.
type RunSpec struct {
	Workload string `json:"workload"`
	Config   Config `json:"config"`
}

// String renders the cell as "workload/Org".
func (s RunSpec) String() string { return s.Workload + "/" + s.Config.Org.String() }

// Grid crosses workloads with memory organizations into the row-major
// spec list the paper's figures are built from, giving each workload
// the machine the paper uses for it (MicroConfig for microbenchmarks,
// AppConfig for applications).
func Grid(workloads []string, orgs []MemOrg) []RunSpec {
	specs := make([]RunSpec, 0, len(workloads)*len(orgs))
	for _, w := range workloads {
		for _, o := range orgs {
			specs = append(specs, RunSpec{Workload: w, Config: configFor(w, o)})
		}
	}
	return specs
}

// SweepResult is one completed (or failed, or skipped) sweep cell.
type SweepResult struct {
	// Spec identifies the cell.
	Spec RunSpec
	// Result holds the measurements when Err is nil.
	Result Result
	// Wall is the host time the simulation took, across all attempts.
	// It is zero for cells a fail-fast or canceled sweep never started.
	Wall time.Duration
	// Attempts counts how many times the cell ran (at least 1 for every
	// started cell; more under SweepOptions.Retries).
	Attempts int
	// Err is the cell's failure: a Config.Validate error, a workload
	// verification failure, a *CellError from the hardening checks, or
	// the cancellation error for cells that were canceled, timed out, or
	// never started.
	Err error
}

// Status classifies the cell's disposition for reporting: ok, error,
// hang, deadlock, invariant, panic, timeout, canceled, or not_started.
func (r SweepResult) Status() CellStatus { return statusOf(r.Err, r.Wall > 0) }

// sweepResultJSON is the stable JSON schema of one sweep cell (see
// EncodeJSON).
type sweepResultJSON struct {
	Workload   string     `json:"workload"`
	Org        MemOrg     `json:"org"`
	Config     Config     `json:"config"`
	Status     CellStatus `json:"status"`
	WallNS     int64      `json:"wall_ns"`
	Attempts   int        `json:"attempts,omitempty"`
	Error      string     `json:"error,omitempty"`
	Diagnostic string     `json:"diagnostic,omitempty"`
	Result     *Result    `json:"result,omitempty"`
	// Timeline is the failed cell's partial-trace summary; successful
	// cells embed theirs inside Result.
	Timeline *Timeline `json:"timeline,omitempty"`
}

// MarshalJSON encodes the cell under the schema documented at
// EncodeJSON.
func (r SweepResult) MarshalJSON() ([]byte, error) {
	out := sweepResultJSON{
		Workload: r.Spec.Workload,
		Org:      r.Spec.Config.Org,
		Config:   r.Spec.Config,
		Status:   r.Status(),
		WallNS:   r.Wall.Nanoseconds(),
		Attempts: r.Attempts,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
		var ce *CellError
		if errors.As(r.Err, &ce) {
			out.Diagnostic = ce.Diagnostic
		}
		out.Timeline = r.Result.Timeline
	} else {
		res := r.Result
		out.Result = &res
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a cell previously encoded by MarshalJSON (one
// element of an EncodeJSON document, or one stashd NDJSON line) back
// into a SweepResult. The cell's error is reconstructed from its
// status: hang/deadlock/invariant/panic become a *CellError carrying
// the diagnostic, timeout satisfies errors.Is(err, ErrCellTimeout),
// canceled/not_started carry context.Canceled, and plain errors keep
// their message. Status therefore round-trips exactly. Timelines do
// not round-trip — the JSON form is a summary, not the event payload —
// so decoded results have Result.Timeline == nil.
func (r *SweepResult) UnmarshalJSON(b []byte) error {
	var in struct {
		sweepResultJSON
		// Shadow the summary-only field so a marshal-only *Timeline can
		// never be half-decoded into the result.
		Timeline json.RawMessage `json:"timeline,omitempty"`
	}
	if err := json.Unmarshal(b, &in); err != nil {
		return fmt.Errorf("stash: decoding sweep cell: %w", err)
	}
	*r = SweepResult{
		Spec:     RunSpec{Workload: in.Workload, Config: in.Config},
		Wall:     time.Duration(in.WallNS),
		Attempts: in.Attempts,
	}
	if in.Result != nil {
		r.Result = *in.Result
		r.Result.Timeline = nil
	}
	r.Err = decodeCellErr(in.Status, in.Error, in.Diagnostic, r.Spec)
	return nil
}

// decodeCellErr rebuilds a cell error from its wire form.
func decodeCellErr(status CellStatus, msg, diagnostic string, spec RunSpec) error {
	kind, ok := map[CellStatus]FailureKind{
		StatusHang:      FailHang,
		StatusDeadlock:  FailDeadlock,
		StatusInvariant: FailInvariant,
		StatusPanic:     FailPanic,
	}[status]
	switch {
	case ok:
		// CellError.Error prefixes "stash: <cell>: <kind>: "; strip it so
		// Msg round-trips instead of nesting.
		prefix := fmt.Sprintf("stash: %s on %v: %s: ", spec.Workload, spec.Config.Org, kind)
		return &CellError{
			Workload:   spec.Workload,
			Org:        spec.Config.Org,
			Kind:       kind,
			Msg:        strings.TrimPrefix(msg, prefix),
			Diagnostic: diagnostic,
		}
	case status == StatusTimeout:
		return &wireErr{msg: msg, sentinel: ErrCellTimeout}
	case status == StatusCanceled, status == StatusNotStarted:
		return &wireErr{msg: msg, sentinel: context.Canceled}
	case status == StatusOK:
		return nil
	}
	return errors.New(msg)
}

// wireErr is a decoded cell error: the wire message verbatim (so
// re-encoding is byte-identical) still wrapping the sentinel the
// status implies, so errors.Is keeps working after a round trip.
type wireErr struct {
	msg      string
	sentinel error
}

func (e *wireErr) Error() string { return e.msg }
func (e *wireErr) Unwrap() error { return e.sentinel }

// SweepEvent is delivered to SweepOptions.Progress once per completed
// cell. Callbacks are serialized: no two run concurrently, and Done is
// strictly increasing across them.
type SweepEvent struct {
	// Index is the cell's position in the spec slice.
	Index int
	// Done counts completed cells including this one; Total is the
	// sweep size.
	Done, Total int
	// Spec identifies the cell; Wall and Err mirror its SweepResult.
	Spec RunSpec
	Wall time.Duration
	Err  error
}

// SweepOptions configures Sweep.
type SweepOptions struct {
	// Workers bounds the number of concurrently simulated cells. Values
	// below 1 select runtime.GOMAXPROCS(0); 1 runs the sweep serially.
	Workers int
	// FailFast stops launching new cells after the first error and
	// cancels the cells in flight. The default runs every cell and
	// collects all errors.
	FailFast bool
	// CellTimeout bounds each cell attempt's wall time. A cell that
	// exceeds it fails with an error satisfying
	// errors.Is(err, ErrCellTimeout) (status "timeout") instead of
	// stalling the sweep. Zero means no per-cell bound.
	CellTimeout time.Duration
	// Retries re-runs a failed cell up to this many extra attempts
	// (each with a fresh CellTimeout) before recording the failure.
	// Cells stopped by the sweep's own context are never retried.
	Retries int
	// Progress, when non-nil, observes each completed cell. It fires
	// once per cell, after its final attempt.
	Progress func(SweepEvent)
}

// Sweep fans the spec cells out over a bounded worker pool of
// independent simulations, each run through RunWorkloadContext under
// ctx. Results are returned in spec order regardless of completion
// order, and every simulation is single-threaded and deterministic, so
// a parallel sweep's results (and anything rendered from them) are
// bit-identical to a serial run's — only the wall time differs.
//
// The returned slice always has one entry per spec. The error is nil
// only if every cell succeeded; under FailFast it is the first failure,
// otherwise every cell failure joined in spec order. If ctx is
// canceled, Sweep returns promptly with ctx's error — cells that
// already completed keep their full results, and the unfinished cells'
// Err fields carry the cancellation, so partial results are always
// reportable (see SweepResult.Status and EncodeJSON).
//
// Each cell is crash-isolated: a hang, deadlock, invariant violation,
// or panic in one simulation becomes that cell's *CellError (with a
// diagnostic dump) and the rest of the sweep proceeds.
func Sweep(ctx context.Context, specs []RunSpec, opts SweepOptions) ([]SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]SweepResult, len(specs))
	var progressMu sync.Mutex
	done := 0

	cellErrs, err := sweep.Run(ctx, len(specs),
		sweep.Options{Workers: workers, FailFast: opts.FailFast},
		func(ctx context.Context, i int) error {
			spec := specs[i]
			start := time.Now()
			var (
				res      Result
				runErr   error
				attempts int
			)
			for {
				attempts++
				runCtx, cancelCell := ctx, context.CancelFunc(func() {})
				if opts.CellTimeout > 0 {
					runCtx, cancelCell = context.WithTimeoutCause(ctx, opts.CellTimeout, ErrCellTimeout)
				}
				res, runErr = RunWorkloadContext(runCtx, spec.Workload, spec.Config)
				cancelCell()
				// Retry simulation failures, but never a sweep-wide stop.
				if runErr == nil || attempts > opts.Retries || ctx.Err() != nil {
					break
				}
			}
			wall := time.Since(start)
			results[i] = SweepResult{Spec: spec, Result: res, Wall: wall, Attempts: attempts, Err: runErr}
			if opts.Progress != nil {
				progressMu.Lock()
				done++
				opts.Progress(SweepEvent{
					Index: i, Done: done, Total: len(specs),
					Spec: spec, Wall: wall, Err: runErr,
				})
				progressMu.Unlock()
			}
			return runErr
		})

	// Cells the pool never started carry the cancellation error in the
	// pool's per-slot list; surface it on their results.
	for i, cellErr := range cellErrs {
		if cellErr != nil && results[i].Err == nil {
			results[i] = SweepResult{Spec: specs[i], Err: cellErr}
		}
	}
	return results, err
}

// EncodeJSON writes sweep results as one deterministic, indented JSON
// document: an array with one object per cell in spec order,
//
//	{
//	  "workload":   "lud",
//	  "org":        "Stash",
//	  "config":     {"org": "Stash", "gpus": 15, "cpus": 1, ...},
//	  "status":     "ok",                // see CellStatus
//	  "wall_ns":    123456789,
//	  "attempts":   1,                   // omitted for never-started cells
//	  "result":     {"Cycles": ...},     // on success
//	  "error":      "...",               // on failure
//	  "diagnostic": "engine: ..."        // machine-state dump, CellError only
//	}
//
// Apart from wall_ns (host timing), the document is bit-reproducible
// across runs and worker counts.
func EncodeJSON(w io.Writer, results []SweepResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return fmt.Errorf("stash: encoding sweep results: %w", err)
	}
	return nil
}

// DecodeJSON reads an EncodeJSON document back into sweep results; see
// SweepResult.UnmarshalJSON for how much of each cell round-trips.
func DecodeJSON(r io.Reader) ([]SweepResult, error) {
	var out []SweepResult
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("stash: decoding sweep results: %w", err)
	}
	return out, nil
}
