#!/usr/bin/env bash
# bench.sh — run the workload benchmarks and record the performance
# trajectory as BENCH_<date>.json (ns/op, B/op, allocs/op, sim_cycles
# and the derived sim_cycles_per_sec per cell).
#
#   scripts/bench.sh                 # Figure 5 grid, three iterations per cell
#   BENCH=. scripts/bench.sh         # every benchmark
#   BENCHTIME=1x scripts/bench.sh    # quicker, noisier single iteration
#   MINOF=3 scripts/bench.sh         # run each cell 3 times, keep the fastest
#   LABEL=baseline OUT=BENCH_baseline.json scripts/bench.sh
#
# MINOF > 1 runs every benchmark N times (go test -count N) and folds
# each group to its fastest run (benchjson -min-of N), the standard way
# to strip one-sided scheduler noise before a regression comparison.
#
# The default Figure 5 selection includes BenchmarkFig5TraceOverhead,
# so every report carries a trace-on vs trace-off row pair; compare
# them to read the tracing subsystem's host-time overhead:
#
#   jq -r '.benchmarks[] | select(.name | contains("TraceOverhead"))
#          | [.name, .ns_per_op, .allocs_per_op] | @tsv' "$OUT"
#
# Compare two reports field by field (the committed BENCH_baseline.json
# is the pre-optimization reference):
#
#   jq -r '.benchmarks[] | [.name, .ns_per_op, .allocs_per_op, .sim_cycles_per_sec] | @tsv' BENCH_baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=${BENCH:-BenchmarkFig5}
BENCHTIME=${BENCHTIME:-3x}
DISPATCHTIME=${DISPATCHTIME:-1000x}
MINOF=${MINOF:-1}
LABEL=${LABEL:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)}
OUT=${OUT:-BENCH_$(date -u +%Y%m%d).json}

# The report carries two benchmark families: the Figure 5 workload grid
# (simulator throughput, sim_cycles_per_sec) and the warp-dispatch
# micro-benchmarks from internal/isa (interpreter cost in isolation,
# instr/s, zero allocs/op in steady state).
{
	go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count "$MINOF" .
	go test -run '^$' -bench 'BenchmarkWarpStep|BenchmarkCompiledDispatch' \
		-benchmem -benchtime "$DISPATCHTIME" -count "$MINOF" ./internal/isa
} | go run ./cmd/benchjson -label "$LABEL" -min-of "$MINOF" >"$OUT"
echo "wrote $OUT" >&2
