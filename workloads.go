package stash

import (
	"context"
	"fmt"
	"runtime/debug"

	"stash/internal/check"
	"stash/internal/sim"
	"stash/internal/system"
	"stash/internal/workloads"
)

// Microbenchmarks lists the paper's four microbenchmarks (Section
// 5.4.1) in the Figure 5 order.
func Microbenchmarks() []string {
	return []string{"implicit", "pollution", "on-demand", "reuse"}
}

// Applications lists the paper's seven applications (Section 5.4.2) in
// the Figure 6 order.
func Applications() []string {
	return []string{"lud", "surf", "backprop", "nw", "pathfinder", "sgemm", "stencil"}
}

// Workloads lists every reproducible workload.
func Workloads() []string {
	return append(Microbenchmarks(), Applications()...)
}

// IsMicrobenchmark reports whether the named workload runs on the
// microbenchmark machine (1 CU + 15 CPU cores).
func IsMicrobenchmark(name string) bool {
	for _, m := range Microbenchmarks() {
		if m == name {
			return true
		}
	}
	return false
}

// RunWorkload simulates the named workload on the given memory
// organization (on the machine the paper used for it), verifies
// functional correctness against a Go reference, and returns the
// measurements. Measurement snapshots are taken before the final
// verification flush, exactly as the paper measures.
func RunWorkload(name string, org MemOrg) (Result, error) {
	return RunWorkloadContext(context.Background(), name, configFor(name, org))
}

// RunWorkloadCfg is RunWorkload with an explicit machine configuration
// (for ablations: replication off, eager writeback, chunk granularity,
// different core counts). Invalid configurations are reported through
// Config.Validate's error, never a panic.
func RunWorkloadCfg(name string, cfg Config) (Result, error) {
	return RunWorkloadContext(context.Background(), name, cfg)
}

// interruptStride is how many simulation events execute between
// cancellation polls: rare enough to keep the hot event loop cheap,
// frequent enough that cancellation lands within microseconds of host
// time.
const interruptStride = 4096

// RunWorkloadContext is RunWorkloadCfg under a context: a long
// simulation stops within interruptStride engine events of ctx being
// canceled and returns ctx's error. RunWorkload and RunWorkloadCfg are
// thin wrappers over it with a background context.
//
// The simulation is crash-isolated: the engine unwinds cancellations,
// watchdog firings, invariant violations, and any simulator panic as
// panics, and this boundary converts every one of them into an error —
// check failures and panics become a *CellError carrying a
// machine-state diagnostic — so one wedged or buggy cell can never take
// down the process or a whole sweep.
func RunWorkloadContext(ctx context.Context, name string, cfg Config) (res Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	icfg, err := cfg.internal()
	if err != nil {
		return Result{}, err
	}
	w, err := workloads.ByName(name)
	if err != nil {
		return Result{}, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return Result{}, fmt.Errorf("stash: %s on %v not started: %w", name, cfg.Org, context.Cause(ctx))
	}
	s := system.New(icfg)
	if done := ctx.Done(); done != nil {
		s.Eng.SetInterrupt(interruptStride, func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		})
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		// Even a crashed or canceled run keeps its partial timeline (a
		// truncated-but-valid trace up to the failure), so the caller
		// can still visualize what led up to it.
		res = Result{}
		if tl := s.FinishTrace(); tl != nil {
			res.Timeline = &Timeline{tl: tl}
		}
		switch v := r.(type) {
		case sim.Interrupted:
			err = fmt.Errorf("stash: %s on %v canceled: %w", name, cfg.Org, context.Cause(ctx))
		case *check.HangError:
			err = &CellError{Workload: name, Org: cfg.Org, Kind: FailHang, Msg: v.Error(), Diagnostic: v.Dump}
		case *check.DeadlockError:
			err = &CellError{Workload: name, Org: cfg.Org, Kind: FailDeadlock, Msg: v.Error(), Diagnostic: v.Dump}
		case *check.InvariantError:
			err = &CellError{Workload: name, Org: cfg.Org, Kind: FailInvariant, Msg: v.Error(), Diagnostic: v.Dump}
		default:
			err = &CellError{
				Workload:   name,
				Org:        cfg.Org,
				Kind:       FailPanic,
				Msg:        fmt.Sprint(r),
				Diagnostic: s.Diagnose(),
				Stack:      string(debug.Stack()),
			}
		}
	}()
	w.Run(s, cfg.Org.internal())
	res = measure(s)
	if verr := w.Verify(s); verr != nil {
		return res, fmt.Errorf("stash: %s on %v failed verification: %w", name, cfg.Org, verr)
	}
	return res, nil
}

func configFor(name string, org MemOrg) Config {
	if IsMicrobenchmark(name) {
		return MicroConfig(org)
	}
	return AppConfig(org)
}
