package stash

import (
	"fmt"

	"stash/internal/system"
	"stash/internal/workloads"
)

// Microbenchmarks lists the paper's four microbenchmarks (Section
// 5.4.1) in the Figure 5 order.
func Microbenchmarks() []string {
	return []string{"implicit", "pollution", "on-demand", "reuse"}
}

// Applications lists the paper's seven applications (Section 5.4.2) in
// the Figure 6 order.
func Applications() []string {
	return []string{"lud", "surf", "backprop", "nw", "pathfinder", "sgemm", "stencil"}
}

// Workloads lists every reproducible workload.
func Workloads() []string {
	return append(Microbenchmarks(), Applications()...)
}

// IsMicrobenchmark reports whether the named workload runs on the
// microbenchmark machine (1 CU + 15 CPU cores).
func IsMicrobenchmark(name string) bool {
	for _, m := range Microbenchmarks() {
		if m == name {
			return true
		}
	}
	return false
}

// RunWorkload simulates the named workload on the given memory
// organization (on the machine the paper used for it), verifies
// functional correctness against a Go reference, and returns the
// measurements. Measurement snapshots are taken before the final
// verification flush, exactly as the paper measures.
func RunWorkload(name string, org MemOrg) (Result, error) {
	return RunWorkloadCfg(name, configFor(name, org))
}

// RunWorkloadCfg is RunWorkload with an explicit machine configuration
// (for ablations: replication off, eager writeback, different core
// counts).
func RunWorkloadCfg(name string, cfg Config) (Result, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return Result{}, err
	}
	s := system.New(cfg.internal())
	iorg := cfg.Org.internal()
	w.Run(s, iorg)
	res := measure(s)
	if err := w.Verify(s); err != nil {
		return res, fmt.Errorf("stash: %s on %v failed verification: %w", name, cfg.Org, err)
	}
	return res, nil
}

func configFor(name string, org MemOrg) Config {
	if IsMicrobenchmark(name) {
		return MicroConfig(org)
	}
	return AppConfig(org)
}
