package stash

import (
	"fmt"
	"strings"

	"stash/internal/energy"
)

// Feature is one row of the paper's qualitative comparisons (Tables 1
// and 4).
type Feature struct {
	Name    string
	Benefit string
	// Support maps a design name to "yes", "no", or a qualified answer.
	Support map[string]string
}

// FeatureMatrix reproduces Table 1: the cache / scratchpad / stash
// feature comparison.
func FeatureMatrix() []Feature {
	row := func(name, benefit, cache, scratch, st string) Feature {
		return Feature{Name: name, Benefit: benefit, Support: map[string]string{
			"Cache": cache, "Scratchpad": scratch, "Stash": st,
		}}
	}
	return []Feature{
		row("Directly addressed", "No address translation hardware access",
			"no (if physically tagged)", "yes", "yes (on hits)"),
		row("Directly addressed", "No tag access", "no", "yes", "yes (on hits)"),
		row("Directly addressed", "No conflict misses", "no", "yes", "yes"),
		row("Compact storage", "Efficient use of SRAM storage", "no", "yes", "yes"),
		row("Global addressing", "Implicit data movement from/to structure", "yes", "no", "yes"),
		row("Global addressing", "No pollution of other memories", "yes", "no", "yes"),
		row("Global addressing", "On-demand loads into structures", "yes", "no", "yes"),
		row("Global visibility", "Lazy writebacks to global AS", "yes", "no", "yes"),
		row("Global visibility", "Reuse across compute kernels and application phases", "yes", "no", "yes"),
	}
}

// RelatedWorkMatrix reproduces Table 4: stash versus prior techniques.
func RelatedWorkMatrix() []Feature {
	row := func(name, benefit string, support ...string) Feature {
		designs := []string{"Bypass L1", "Change Data Layout", "Elide Tag", "Virtual Private Memories", "DMAs", "Stash"}
		m := make(map[string]string, len(designs))
		for i, d := range designs {
			m[d] = support[i]
		}
		return Feature{Name: name, Benefit: benefit, Support: m}
	}
	return []Feature{
		row("Directly addressed", "No address translation HW access", "yes", "no", "no/yes", "yes", "yes", "yes (on hits)"),
		row("Directly addressed", "No tag access", "yes", "no", "yes (on hits)", "no", "yes", "yes (on hits)"),
		row("Directly addressed", "No conflict misses", "yes", "no", "no", "yes", "yes", "yes"),
		row("Compact storage", "Efficient use of SRAM storage", "yes", "yes", "no", "yes", "yes", "yes"),
		row("Global addressing", "Implicit data movement", "no", "yes", "yes", "no", "no", "yes"),
		row("Global addressing", "No pollution of other memories", "yes", "yes", "yes", "yes", "yes", "yes"),
		row("Global addressing", "On-demand loads into structure", "no", "yes", "yes", "no", "no", "yes"),
		row("Global visibility", "Lazy writebacks to global AS", "no", "yes", "yes", "no", "no", "yes"),
		row("Global visibility", "Reuse across kernels or phases", "no", "yes", "yes", "partial", "no", "yes"),
		row("Applied to GPU", "", "yes", "no/yes", "no", "no/no/no/yes", "yes", "yes"),
	}
}

// RenderFeatures formats a feature matrix as an aligned text table with
// the given design-column order.
func RenderFeatures(rows []Feature, designs []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-52s", "Benefit")
	for _, d := range designs {
		fmt.Fprintf(&b, " | %-24s", d)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 52+27*len(designs)) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-52s", r.Benefit)
		for _, d := range designs {
			fmt.Fprintf(&b, " | %-24s", r.Support[d])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// AccessEnergy is one row of Table 3.
type AccessEnergy struct {
	Unit         string
	HitPJ        float64
	MissPJ       float64 // 0 when not applicable
	HasMissEntry bool
}

// AccessEnergies reproduces Table 3: per-access energy of the hardware
// units, as configured in the simulator's energy model.
func AccessEnergies() []AccessEnergy {
	c := energy.DefaultCosts()
	return []AccessEnergy{
		{Unit: "Scratchpad", HitPJ: c[energy.ScratchAccess]},
		{Unit: "Stash", HitPJ: c[energy.StashHit], MissPJ: c[energy.StashMiss], HasMissEntry: true},
		{Unit: "L1 cache", HitPJ: c[energy.L1Hit], MissPJ: c[energy.L1Miss], HasMissEntry: true},
		{Unit: "TLB access", HitPJ: c[energy.TLBAccess], MissPJ: c[energy.TLBAccess], HasMissEntry: true},
	}
}
