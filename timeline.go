package stash

import (
	"encoding/json"
	"fmt"
	"io"

	"stash/internal/trace"
)

// TraceConfig enables the opt-in event-tracing and time-series
// subsystem for a run. When Config.Trace is nil (the default) every
// emit site in the simulator is a nil-check no-op: timing, energy and
// all counters are bit-identical to an untraced run and the hot paths
// allocate nothing. When set, the run's Result carries a Timeline.
type TraceConfig struct {
	// BucketCycles is the time-series window width in cycles. Zero
	// selects the default of 1024.
	BucketCycles uint64 `json:"bucket_cycles,omitempty"`
	// BufferEvents is the event staging-ring capacity. When the
	// simulator out-emits the periodic drain, the oldest staged events
	// are dropped (counted in Timeline.Dropped and the "trace.dropped"
	// counter) rather than growing without bound. Zero selects the
	// default of 65536.
	BufferEvents int `json:"buffer_events,omitempty"`
}

// maxTraceBucket bounds the time-series window width; a wider window
// than this holds fewer than one bucket per run at any plausible
// length and is a mis-specification.
const maxTraceBucket = 1 << 32

func (t *TraceConfig) validate() error {
	if t == nil {
		return nil
	}
	if t.BucketCycles > maxTraceBucket {
		return fmt.Errorf("stash: invalid Trace.BucketCycles %d: want at most %d", t.BucketCycles, uint64(maxTraceBucket))
	}
	if t.BufferEvents < 0 || t.BufferEvents > 1<<28 {
		return fmt.Errorf("stash: invalid Trace.BufferEvents %d: want 0 (default) to %d", t.BufferEvents, 1<<28)
	}
	return nil
}

func (t *TraceConfig) internal() *trace.Options {
	if t == nil {
		return nil
	}
	return &trace.Options{
		BucketCycles: t.BucketCycles,
		BufferEvents: t.BufferEvents,
	}
}

// Timeline is the completed trace of one run: typed component events,
// host-annotated phases, and per-bucket time-series. It is attached to
// Result.Timeline when the run's Config.Trace was set — including, for
// failed or canceled runs, the partial timeline up to the failure, so
// a crashed cell can still be visualized.
type Timeline struct {
	tl *trace.Timeline
}

// WriteChrome writes the timeline in Chrome/Perfetto trace_event JSON
// (load it at https://ui.perfetto.dev or chrome://tracing). Each
// component is one named track; phases span the top row; time-series
// render as counter tracks. One simulated cycle maps to 1 µs.
func (t *Timeline) WriteChrome(w io.Writer) error { return t.tl.WriteChrome(w) }

// WriteBinary writes the compact binary form (see DecodeTimeline).
func (t *Timeline) WriteBinary(w io.Writer) error { return t.tl.WriteBinary(w) }

// DecodeTimeline reads a timeline previously written by WriteBinary.
func DecodeTimeline(r io.Reader) (*Timeline, error) {
	tl, err := trace.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Timeline{tl: tl}, nil
}

// NumEvents reports how many events the timeline holds (after any
// ring-overflow drops).
func (t *Timeline) NumEvents() int { return t.tl.NumEvents() }

// Dropped reports how many events were lost to ring overflow.
func (t *Timeline) Dropped() uint64 { return t.tl.Dropped }

// EndCycle is the simulated time the timeline covers.
func (t *Timeline) EndCycle() uint64 { return t.tl.EndCycle }

// BucketCycles is the time-series window width in cycles.
func (t *Timeline) BucketCycles() uint64 { return t.tl.BucketCycles }

// Tracks lists the component tracks in display order.
func (t *Timeline) Tracks() []string { return t.tl.Tracks }

// TracePhase is one host-annotated span (kernel, cpu-phase, flush).
type TracePhase struct {
	Name  string `json:"name"`
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

// Phases lists the run's kernel/CPU-phase/flush spans in launch order.
func (t *Timeline) Phases() []TracePhase {
	out := make([]TracePhase, 0, len(t.tl.Phases))
	for _, p := range t.tl.Phases {
		out = append(out, TracePhase{Name: p.Name, Start: p.Start, End: p.End})
	}
	return out
}

// SeriesNames lists the time-series in registration order; names are
// track-qualified (e.g. "l1.gpu0.misses", "noc.link.5.+x.flits").
func (t *Timeline) SeriesNames() []string {
	out := make([]string, 0, len(t.tl.Series))
	for _, s := range t.tl.Series {
		out = append(out, s.Name)
	}
	return out
}

// Series returns the named time-series' per-bucket values, or false if
// no such series was recorded. Bucket i covers cycles
// [i*BucketCycles, (i+1)*BucketCycles).
func (t *Timeline) Series(name string) ([]uint64, bool) {
	for _, s := range t.tl.Series {
		if s.Name == name {
			return s.Vals, true
		}
	}
	return nil, false
}

// timelineSummary is the JSON shape of a Timeline: sweep outputs embed
// the summary, not the event payload (write that with WriteChrome or
// WriteBinary).
type timelineSummary struct {
	Events       int      `json:"events"`
	Dropped      uint64   `json:"dropped,omitempty"`
	EndCycle     uint64   `json:"end_cycle"`
	BucketCycles uint64   `json:"bucket_cycles"`
	Tracks       int      `json:"tracks"`
	Series       int      `json:"series"`
	Phases       []string `json:"phases,omitempty"`
}

// MarshalJSON encodes a compact summary (event/track/series counts and
// phase names), not the full event payload.
func (t *Timeline) MarshalJSON() ([]byte, error) {
	s := timelineSummary{
		Events:       t.tl.NumEvents(),
		Dropped:      t.tl.Dropped,
		EndCycle:     t.tl.EndCycle,
		BucketCycles: t.tl.BucketCycles,
		Tracks:       len(t.tl.Tracks),
		Series:       len(t.tl.Series),
	}
	for _, p := range t.tl.Phases {
		s.Phases = append(s.Phases, p.Name)
	}
	return json.Marshal(s)
}
