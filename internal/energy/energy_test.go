package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultCostsMatchPaperTable3(t *testing.T) {
	c := DefaultCosts()
	// Paper Table 3 values, exactly.
	cases := []struct {
		e    Event
		want float64
	}{
		{ScratchAccess, 55.3},
		{StashHit, 55.4},
		{StashMiss, 86.8},
		{L1Hit, 177.0},
		{L1Miss, 197.0},
		{TLBAccess, 14.1},
	}
	for _, tc := range cases {
		if c[tc.e] != tc.want {
			t.Errorf("cost[%v] = %v, want %v (paper Table 3)", tc.e, c[tc.e], tc.want)
		}
	}
}

func TestPaperEnergyRelations(t *testing.T) {
	c := DefaultCosts()
	// "scratchpad access energy is 29% of the L1 cache hit energy"
	if r := c[ScratchAccess] / c[L1Hit]; math.Abs(r-0.31) > 0.03 {
		t.Errorf("scratch/L1 hit ratio = %.2f, want ~0.31 (paper: 29%% incl. TLB)", r)
	}
	// "stash's miss energy is 41% of the L1 cache miss energy"
	if r := c[StashMiss] / c[L1Miss]; math.Abs(r-0.44) > 0.04 {
		t.Errorf("stash miss/L1 miss ratio = %.2f, want ~0.44", r)
	}
	// "Stash's hit energy is comparable to that of scratchpad."
	if math.Abs(c[StashHit]-c[ScratchAccess]) > 1.0 {
		t.Errorf("stash hit %.1f vs scratch %.1f: not comparable", c[StashHit], c[ScratchAccess])
	}
}

func TestEventComponentMapping(t *testing.T) {
	cases := map[Event]Component{
		GPUInst:       GPUCore,
		L1Hit:         L1,
		L1Miss:        L1,
		TLBAccess:     L1,
		ScratchAccess: ScratchStash,
		StashHit:      ScratchStash,
		StashMiss:     ScratchStash,
		L2Access:      L2,
		NoCFlitHop:    NoC,
		DRAMAccess:    DRAM,
	}
	for e, want := range cases {
		if got := ComponentOf(e); got != want {
			t.Errorf("ComponentOf(%v) = %v, want %v", e, got, want)
		}
	}
}

func TestAccountAccumulation(t *testing.T) {
	a := NewAccount(DefaultCosts())
	a.Add(StashHit, 10)
	a.Add(StashMiss, 2)
	if a.Count(StashHit) != 10 {
		t.Fatalf("Count = %d, want 10", a.Count(StashHit))
	}
	want := 10*55.4 + 2*86.8
	if got := a.TotalPJ(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TotalPJ = %v, want %v", got, want)
	}
	if got := a.ComponentPJ(ScratchStash); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ComponentPJ(ScratchStash) = %v, want %v", got, want)
	}
	if got := a.ComponentPJ(L2); got != 0 {
		t.Fatalf("ComponentPJ(L2) = %v, want 0", got)
	}
}

// Property: the component breakdown always sums to the total.
func TestBreakdownSumsToTotalProperty(t *testing.T) {
	f := func(counts [10]uint16) bool {
		a := NewAccount(DefaultCosts())
		for e := Event(0); e < numEvents; e++ {
			a.Add(e, uint64(counts[e]))
		}
		var sum float64
		for _, v := range a.Breakdown() {
			sum += v
		}
		return math.Abs(sum-a.TotalPJ()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventAndComponentNames(t *testing.T) {
	if StashHit.String() != "stash_hit" {
		t.Errorf("StashHit.String() = %q", StashHit.String())
	}
	if ScratchStash.String() != "Scratch/Stash" {
		t.Errorf("ScratchStash.String() = %q", ScratchStash.String())
	}
}
