package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultCostsMatchPaperTable3(t *testing.T) {
	c := DefaultCosts()
	// Paper Table 3 values, exactly.
	cases := []struct {
		e    Event
		want float64
	}{
		{ScratchAccess, 55.3},
		{StashHit, 55.4},
		{StashMiss, 86.8},
		{L1Hit, 177.0},
		{L1Miss, 197.0},
		{TLBAccess, 14.1},
	}
	for _, tc := range cases {
		if c[tc.e] != tc.want {
			t.Errorf("cost[%v] = %v, want %v (paper Table 3)", tc.e, c[tc.e], tc.want)
		}
	}
}

func TestPaperEnergyRelations(t *testing.T) {
	c := DefaultCosts()
	// "scratchpad access energy is 29% of the L1 cache hit energy"
	if r := c[ScratchAccess] / c[L1Hit]; math.Abs(r-0.31) > 0.03 {
		t.Errorf("scratch/L1 hit ratio = %.2f, want ~0.31 (paper: 29%% incl. TLB)", r)
	}
	// "stash's miss energy is 41% of the L1 cache miss energy"
	if r := c[StashMiss] / c[L1Miss]; math.Abs(r-0.44) > 0.04 {
		t.Errorf("stash miss/L1 miss ratio = %.2f, want ~0.44", r)
	}
	// "Stash's hit energy is comparable to that of scratchpad."
	if math.Abs(c[StashHit]-c[ScratchAccess]) > 1.0 {
		t.Errorf("stash hit %.1f vs scratch %.1f: not comparable", c[StashHit], c[ScratchAccess])
	}
}

func TestEventComponentMapping(t *testing.T) {
	cases := map[Event]Component{
		GPUInst:       GPUCore,
		L1Hit:         L1,
		L1Miss:        L1,
		TLBAccess:     L1,
		ScratchAccess: ScratchStash,
		StashHit:      ScratchStash,
		StashMiss:     ScratchStash,
		L2Access:      L2,
		NoCFlitHop:    NoC,
		DRAMAccess:    DRAM,
	}
	for e, want := range cases {
		if got := ComponentOf(e); got != want {
			t.Errorf("ComponentOf(%v) = %v, want %v", e, got, want)
		}
	}
}

func TestAccountAccumulation(t *testing.T) {
	a := NewAccount(DefaultCosts())
	a.Add(StashHit, 10)
	a.Add(StashMiss, 2)
	if a.Count(StashHit) != 10 {
		t.Fatalf("Count = %d, want 10", a.Count(StashHit))
	}
	want := 10*55.4 + 2*86.8
	if got := a.TotalPJ(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TotalPJ = %v, want %v", got, want)
	}
	if got := a.ComponentPJ(ScratchStash); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ComponentPJ(ScratchStash) = %v, want %v", got, want)
	}
	if got := a.ComponentPJ(L2); got != 0 {
		t.Fatalf("ComponentPJ(L2) = %v, want 0", got)
	}
}

// Property: the component breakdown always sums to the total.
func TestBreakdownSumsToTotalProperty(t *testing.T) {
	f := func(counts [numEvents]uint16) bool {
		a := NewAccount(DefaultCosts())
		for e := Event(0); e < numEvents; e++ {
			a.Add(e, uint64(counts[e]))
		}
		var sum float64
		for _, v := range a.Breakdown() {
			sum += v
		}
		return math.Abs(sum-a.TotalPJ()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventAndComponentNames(t *testing.T) {
	if StashHit.String() != "stash_hit" {
		t.Errorf("StashHit.String() = %q", StashHit.String())
	}
	if ScratchStash.String() != "Scratch/Stash" {
		t.Errorf("ScratchStash.String() = %q", ScratchStash.String())
	}
	seen := map[string]Event{}
	for e := Event(0); e < numEvents; e++ {
		name := e.String()
		if name == "" {
			t.Errorf("event %d has no name", e)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("events %d and %d share the name %q", prev, e, name)
		}
		seen[name] = e
	}
}

func TestSplitEventDefaults(t *testing.T) {
	c := DefaultCosts()
	// Split read/write variants default to the unified class: SRAM reads
	// and writes cost the same, so re-pricing a run through the splits is
	// energy-neutral until a technology rescales them.
	for _, pair := range [][2]Event{
		{StashRead, StashHit}, {StashWrite, StashHit},
		{L1ReadHit, L1Hit}, {L1WriteHit, L1Hit},
		{L1ReadMiss, L1Miss}, {L1WriteMiss, L1Miss},
		{L2Read, L2Access}, {L2Write, L2Access},
	} {
		if c[pair[0]] != c[pair[1]] {
			t.Errorf("default cost[%v] = %v, want unified cost[%v] = %v", pair[0], c[pair[0]], pair[1], c[pair[1]])
		}
	}
	// Splits attribute to the same stacked-bar component as the class
	// they refine, so Figure 5b/6b stacks stay well-formed under tech.
	for split, unified := range map[Event]Event{
		StashRead: StashHit, StashWrite: StashHit,
		L1ReadHit: L1Hit, L1WriteHit: L1Hit,
		L1ReadMiss: L1Miss, L1WriteMiss: L1Miss,
		L2Read: L2Access, L2Write: L2Access,
	} {
		if ComponentOf(split) != ComponentOf(unified) {
			t.Errorf("ComponentOf(%v) = %v, want %v's component %v", split, ComponentOf(split), unified, ComponentOf(unified))
		}
	}
}

// TestAccountCustomCosts prices the same counts under a non-default,
// write-asymmetric cost table (an STT-MRAM-like technology) and checks
// total, per-component attribution, and that untouched classes keep
// their unified pricing.
func TestAccountCustomCosts(t *testing.T) {
	costs := DefaultCosts()
	costs[StashRead] = 72.0   // 55.4 * 1.3, rounded for exactness
	costs[StashWrite] = 332.4 // 55.4 * 6
	costs[L2Read] = 100.5
	costs[L2Write] = 990.25
	a := NewAccount(costs)
	a.Add(StashRead, 7)
	a.Add(StashWrite, 3)
	a.Add(L2Read, 2)
	a.Add(L2Write, 1)
	a.Add(GPUInst, 5)
	a.Add(StashHit, 4) // legacy class still prices at Table 3

	wantStash := 7*72.0 + 3*332.4 + 4*55.4
	wantL2 := 2*100.5 + 1*990.25
	wantCore := 5 * 220.0
	if got := a.ComponentPJ(ScratchStash); math.Abs(got-wantStash) > 1e-9 {
		t.Errorf("ComponentPJ(ScratchStash) = %v, want %v", got, wantStash)
	}
	if got := a.ComponentPJ(L2); math.Abs(got-wantL2) > 1e-9 {
		t.Errorf("ComponentPJ(L2) = %v, want %v", got, wantL2)
	}
	if got := a.TotalPJ(); math.Abs(got-(wantStash+wantL2+wantCore)) > 1e-9 {
		t.Errorf("TotalPJ = %v, want %v", got, wantStash+wantL2+wantCore)
	}
	b := a.Breakdown()
	if math.Abs(b[ScratchStash]-wantStash) > 1e-9 || math.Abs(b[L2]-wantL2) > 1e-9 || math.Abs(b[GPUCore]-wantCore) > 1e-9 {
		t.Errorf("Breakdown = %v", b)
	}
}

func TestNonzeroCounts(t *testing.T) {
	a := NewAccount(DefaultCosts())
	if got := a.NonzeroCounts(); len(got) != 0 {
		t.Errorf("fresh account has nonzero counts: %v", got)
	}
	a.Add(StashRead, 3)
	a.Add(L2Write, 9)
	a.Add(GPUInst, 0) // explicit zero add stays omitted
	got := a.NonzeroCounts()
	if len(got) != 2 || got["stash_read"] != 3 || got["l2_write"] != 9 {
		t.Errorf("NonzeroCounts = %v", got)
	}
	// The map is a fresh copy: mutating it must not corrupt the account.
	got["stash_read"] = 999
	if a.Count(StashRead) != 3 {
		t.Errorf("NonzeroCounts aliases the account")
	}
}
