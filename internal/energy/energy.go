// Package energy implements the GPUWattch/McPAT-style dynamic energy
// model used by the paper's evaluation: dynamic energy is the sum over
// event classes of (event count x per-access energy).
//
// The per-access energies for the scratchpad, stash, L1 and TLB are the
// paper's Table 3 values. Energies the paper does not publish (L2 access,
// NoC flit-hop, GPU core energy per instruction) use documented constants
// in GPUWattch's reported range; they are identical across configurations
// so they rescale stacked-bar components without changing who wins.
//
// Following the paper (Section 5.2), CPU core and CPU L1 energy are not
// charged; CPU-induced network traffic is.
package energy

// Event identifies an energy-consuming event class.
type Event int

// Event classes. Each maps to exactly one Component.
const (
	GPUInst       Event = iota // one dynamic GPU instruction (core+, incl. fetch/RF/ALU)
	L1Hit                      // GPU L1 data cache hit (tag + data + TLB handled separately)
	L1Miss                     // GPU L1 data cache miss
	TLBAccess                  // address translation (charged as a hit; see paper fn. 8)
	ScratchAccess              // scratchpad bank access (no tags, no TLB)
	StashHit                   // stash hit: data + 2 state bits only
	StashMiss                  // stash miss: storage + stash-map + translation ALUs
	L2Access                   // shared L2/LLC bank access
	NoCFlitHop                 // one flit crossing one mesh link
	DRAMAccess                 // off-chip access (not in the paper's stacks; cost 0 by default)

	// Read/write-split variants, charged instead of the unified classes
	// above when a memory-technology profile is active (Config.StashTech
	// etc.). Non-volatile and eDRAM technologies have asymmetric read and
	// write energies, which the unified classes cannot express. Default
	// costs equal the corresponding unified class, and the default (SRAM)
	// path never charges them, so golden metrics are unaffected.
	StashRead   // stash array read (hit-path data read, writeback drain, remote serve)
	StashWrite  // stash array write (store data write, fill install, replication copy)
	L1ReadHit   // L1 load hit
	L1WriteHit  // L1 store hit
	L1ReadMiss  // L1 load miss
	L1WriteMiss // L1 store miss
	L2Read      // LLC bank read access (ReadReq)
	L2Write     // LLC bank write access (WriteReq/WBReq/RegReq)
	numEvents
)

var eventNames = [numEvents]string{
	"gpu_inst", "l1_hit", "l1_miss", "tlb_access", "scratch_access",
	"stash_hit", "stash_miss", "l2_access", "noc_flit_hop", "dram_access",
	"stash_read", "stash_write", "l1_read_hit", "l1_write_hit",
	"l1_read_miss", "l1_write_miss", "l2_read", "l2_write",
}

// String returns the event's snake_case name.
func (e Event) String() string { return eventNames[e] }

// Component identifies a stacked-bar component as drawn in the paper's
// Figures 5b and 6b.
type Component int

// Components in the paper's stacking order.
const (
	GPUCore      Component = iota // "GPU core+"
	L1                            // "L1 D$" (includes TLB energy)
	ScratchStash                  // "Scratch/Stash"
	L2                            // "L2 $"
	NoC                           // "N/W"
	DRAM                          // off-chip; zero-cost by default, kept for ablations
	NumComponents
)

var componentNames = [NumComponents]string{
	"GPU core+", "L1 D$", "Scratch/Stash", "L2 $", "N/W", "DRAM",
}

// String returns the component's display name as used in the figures.
func (c Component) String() string { return componentNames[c] }

var eventComponent = [numEvents]Component{
	GPUInst:       GPUCore,
	L1Hit:         L1,
	L1Miss:        L1,
	TLBAccess:     L1,
	ScratchAccess: ScratchStash,
	StashHit:      ScratchStash,
	StashMiss:     ScratchStash,
	L2Access:      L2,
	NoCFlitHop:    NoC,
	DRAMAccess:    DRAM,
	StashRead:     ScratchStash,
	StashWrite:    ScratchStash,
	L1ReadHit:     L1,
	L1WriteHit:    L1,
	L1ReadMiss:    L1,
	L1WriteMiss:   L1,
	L2Read:        L2,
	L2Write:       L2,
}

// ComponentOf returns the stacked-bar component an event belongs to.
func ComponentOf(e Event) Component { return eventComponent[e] }

// Costs holds the per-access energy of each event class in picojoules.
type Costs [numEvents]float64

// DefaultCosts returns the paper's Table 3 energies plus the documented
// constants for unpublished components (see package comment and DESIGN.md).
func DefaultCosts() Costs {
	var c Costs
	// One warp instruction activates fetch, decode, scheduling, the
	// register file and 32 lanes: GPUWattch puts a full-SM dynamic
	// instruction in the hundreds of pJ. 220 pJ reproduces the paper's
	// Figure 5b proportions, where "GPU core+" is the largest component.
	c[GPUInst] = 220.0
	c[L1Hit] = 177.0
	c[L1Miss] = 197.0
	c[TLBAccess] = 14.1
	c[ScratchAccess] = 55.3
	c[StashHit] = 55.4
	c[StashMiss] = 86.8
	c[L2Access] = 240.0
	c[NoCFlitHop] = 10.0
	c[DRAMAccess] = 0 // not part of the paper's dynamic-energy stacks
	// Split variants default to the unified value: for SRAM, reads and
	// writes cost the same. Technology profiles rescale these per axis.
	c[StashRead] = c[StashHit]
	c[StashWrite] = c[StashHit]
	c[L1ReadHit] = c[L1Hit]
	c[L1WriteHit] = c[L1Hit]
	c[L1ReadMiss] = c[L1Miss]
	c[L1WriteMiss] = c[L1Miss]
	c[L2Read] = c[L2Access]
	c[L2Write] = c[L2Access]
	return c
}

// Account accumulates event counts and converts them to energy.
// The zero value is unusable; call NewAccount.
type Account struct {
	costs  Costs
	counts [numEvents]uint64
}

// NewAccount returns an account using the given per-access costs.
func NewAccount(costs Costs) *Account { return &Account{costs: costs} }

// Add records n occurrences of event e.
func (a *Account) Add(e Event, n uint64) { a.counts[e] += n }

// Count returns the number of recorded occurrences of event e.
func (a *Account) Count(e Event) uint64 { return a.counts[e] }

// TotalPJ returns total dynamic energy in picojoules.
func (a *Account) TotalPJ() float64 {
	var total float64
	for e := Event(0); e < numEvents; e++ {
		total += float64(a.counts[e]) * a.costs[e]
	}
	return total
}

// ComponentPJ returns the dynamic energy attributed to component c.
func (a *Account) ComponentPJ(c Component) float64 {
	var total float64
	for e := Event(0); e < numEvents; e++ {
		if eventComponent[e] == c {
			total += float64(a.counts[e]) * a.costs[e]
		}
	}
	return total
}

// NonzeroCounts returns the recorded event counts keyed by event name,
// omitting events that never occurred. The returned map is freshly
// allocated and safe to retain.
func (a *Account) NonzeroCounts() map[string]uint64 {
	out := make(map[string]uint64)
	for e := Event(0); e < numEvents; e++ {
		if a.counts[e] != 0 {
			out[eventNames[e]] = a.counts[e]
		}
	}
	return out
}

// Breakdown returns per-component energy in the paper's stacking order.
func (a *Account) Breakdown() [NumComponents]float64 {
	var out [NumComponents]float64
	for e := Event(0); e < numEvents; e++ {
		out[eventComponent[e]] += float64(a.counts[e]) * a.costs[e]
	}
	return out
}
