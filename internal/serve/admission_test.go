package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"stash"
)

// waitMetric polls /metrics until name reaches want (or 5s pass).
func waitMetric(t *testing.T, ts *httptest.Server, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if metric(t, ts, name) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s never reached %g (now %g)", name, want, metric(t, ts, name))
}

// TestAdmissionShedsSweepsBeforeCells: past MaxQueue, sweeps shed with
// 429 + Retry-After while single cells ride the worker-pool headroom a
// while longer; past the headroom cells shed too, and a drained queue
// admits again.
func TestAdmissionShedsSweepsBeforeCells(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{}), started: make(chan string, 8)}
	_, ts := newTestServer(t, Config{Run: eng.run, Workers: 1, MaxQueue: 3, TenantSlots: -1})

	getCell := func(query string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/cell?" + query)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Fill: one cell in flight, two queued (depth 2 of 3).
	fillerDone := make(chan string, 1)
	go func() {
		_, body := postSweep(t, ts, `{"workloads":["implicit","reuse","pollution"],"orgs":["Stash"]}`)
		fillerDone <- body
	}()
	<-eng.started
	waitMetric(t, ts, "stashd_queue_depth", 2)

	// A 2-cell sweep would exceed MaxQueue: shed, with retry advice.
	resp, body := postSweep(t, ts, `{"workloads":["implicit","reuse"],"orgs":["Cache"]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload sweep: status %d: %s", resp.StatusCode, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	var e apiError
	if err := json.Unmarshal([]byte(body), &e); err != nil || !strings.Contains(e.Error, "overloaded") {
		t.Errorf("shed body not structured: %q", body)
	}
	if got := metric(t, ts, "stashd_shed_requests_total"); got != 1 {
		t.Errorf("shed requests = %g, want 1", got)
	}

	// A single cell still fits the headroom (MaxQueue + workers).
	admitted := make(chan int, 2)
	go func() { admitted <- getCell("workload=lud&org=Stash") }()
	waitMetric(t, ts, "stashd_queue_depth", 3)

	// At the same depth a multi-cell sweep still sheds — whole sweeps
	// go before single cells.
	if resp, _ := postSweep(t, ts, `{"workloads":["implicit","reuse"],"orgs":["Cache"]}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("2-cell sweep at depth 3: status %d, want 429", resp.StatusCode)
	}

	// One more cell exhausts the headroom; the next cell sheds too.
	go func() { admitted <- getCell("workload=surf&org=Stash") }()
	waitMetric(t, ts, "stashd_queue_depth", 4)
	if code := getCell("workload=nw&org=Stash"); code != http.StatusTooManyRequests {
		t.Errorf("over-headroom cell: status %d, want 429", code)
	}
	if got := metric(t, ts, "stashd_shed_requests_total"); got != 3 {
		t.Errorf("shed requests = %g, want 3", got)
	}

	// Drain; everything admitted completes, and admission resets.
	close(eng.gate)
	for i := 0; i < 2; i++ {
		if code := <-admitted; code != http.StatusOK {
			t.Errorf("admitted cell %d finished with %d", i, code)
		}
	}
	out := <-fillerDone
	if n := len(strings.Split(strings.TrimRight(out, "\n"), "\n")); n != 3 {
		t.Errorf("filler sweep returned %d lines, want 3", n)
	}
	if resp, _ := postSweep(t, ts, oneCellBody); resp.StatusCode != http.StatusOK {
		t.Errorf("post-drain sweep: status %d", resp.StatusCode)
	}
}

// TestDeadlineHeader: X-Stashd-Deadline bounds the request's
// simulation time — cells past it stream as structured canceled lines
// citing the deadline — and a malformed header is a 400.
func TestDeadlineHeader(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})} // never released: cells run until canceled
	_, ts := newTestServer(t, Config{Run: eng.run})

	req, err := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(oneCellBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Stashd-Deadline", "50ms")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: request took %v", elapsed)
	}
	var cell stash.SweepResult
	if err := json.Unmarshal(raw, &cell); err != nil {
		t.Fatalf("%v\n%s", err, raw)
	}
	if cell.Status() != stash.StatusCanceled {
		t.Errorf("status = %s, want canceled", cell.Status())
	}
	if cell.Err == nil || !strings.Contains(cell.Err.Error(), "deadline") {
		t.Errorf("cell error does not cite the deadline: %v", cell.Err)
	}

	badReq, err := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(oneCellBody))
	if err != nil {
		t.Fatal(err)
	}
	badReq.Header.Set("X-Stashd-Deadline", "soon")
	resp, err = http.DefaultClient.Do(badReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed deadline: status %d, want 400", resp.StatusCode)
	}
}

// TestMaxDeadlineClamp: the server-side cap applies both when the
// client asks for a longer budget and when it sends no header at all.
func TestMaxDeadlineClamp(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	_, ts := newTestServer(t, Config{Run: eng.run, MaxDeadline: 50 * time.Millisecond})

	for _, header := range []string{"", "10m"} {
		req, err := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(oneCellBody))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if header != "" {
			req.Header.Set("X-Stashd-Deadline", header)
		}
		start := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("header %q: clamp ignored (%v)", header, elapsed)
		}
		var cell stash.SweepResult
		if err := json.Unmarshal(raw, &cell); err != nil {
			t.Fatalf("header %q: %v\n%s", header, err, raw)
		}
		if cell.Status() != stash.StatusCanceled {
			t.Errorf("header %q: status = %s, want canceled", header, cell.Status())
		}
	}
}

// TestTenantFairness: with per-tenant slots below the worker count,
// one tenant's burst leaves capacity for another — the second tenant's
// cell starts while the first tenant's second cell is still waiting on
// its namespace slot.
func TestTenantFairness(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{}), started: make(chan string, 8)}
	_, ts := newTestServer(t, Config{Run: eng.run, Workers: 2, TenantSlots: 1})

	aDone := make(chan string, 1)
	go func() {
		_, body := postSweepAs(t, ts, "tenant-a", `{"workloads":["implicit","reuse"],"orgs":["Stash"]}`)
		aDone <- body
	}()
	first := <-eng.started // tenant A's first cell holds A's only slot

	bDone := make(chan string, 1)
	go func() {
		_, body := postSweepAs(t, ts, "tenant-b", `{"specs":[{"workload":"lud","config":{"org":"Stash","gpus":15,"cpus":1}}]}`)
		bDone <- body
	}()
	select {
	case second := <-eng.started:
		// A's second cell is parked on the tenant semaphore, so the
		// second simulation to start can only be B's.
		if second != "lud/Stash" {
			t.Errorf("second started cell = %q (first was %q), want tenant B's lud/Stash", second, first)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tenant B starved: its cell never started while tenant A held one slot")
	}
	if eng.calls.Load() != 2 {
		t.Errorf("engine calls = %d, want 2 (A's second cell must wait)", eng.calls.Load())
	}

	close(eng.gate)
	aBody := <-aDone
	if n := len(strings.Split(strings.TrimRight(aBody, "\n"), "\n")); n != 2 {
		t.Errorf("tenant A got %d lines, want 2", n)
	}
	var bCell stash.SweepResult
	if err := json.Unmarshal([]byte(<-bDone), &bCell); err != nil || bCell.Status() != stash.StatusOK {
		t.Errorf("tenant B cell = %s (%v)", bCell.Status(), err)
	}
}
