package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stash"
	"stash/internal/cellcache"
)

// fakeEngine is an injectable RunFunc: deterministic synthetic results,
// a call counter, and an optional gate that holds "simulations" open
// until released (or their context is canceled).
type fakeEngine struct {
	calls   atomic.Int64
	gate    chan struct{} // nil: return immediately
	started chan string   // non-nil: receives each started cell
	ctxErrs chan error    // non-nil: receives ctx's error at cell exit
}

func (f *fakeEngine) run(ctx context.Context, spec stash.RunSpec) stash.SweepResult {
	f.calls.Add(1)
	if f.started != nil {
		f.started <- spec.String()
	}
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			if f.ctxErrs != nil {
				f.ctxErrs <- ctx.Err()
			}
			return stash.SweepResult{Spec: spec, Wall: time.Nanosecond,
				Err: fmt.Errorf("stash: %s canceled: %w", spec, context.Cause(ctx))}
		}
	}
	return stash.SweepResult{
		Spec: spec,
		Result: stash.Result{
			Cycles:   1000 + uint64(len(spec.Workload)),
			EnergyPJ: 42.5,
			FlitHops: map[string]uint64{"read": 7},
		},
		Wall:     time.Millisecond,
		Attempts: 1,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Cache == nil {
		c, err := cellcache.New(cellcache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		cfg.Cache = c
	}
	s := New(cfg, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postSweep(t *testing.T, ts *httptest.Server, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func metric(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var n string
		var v float64
		if _, err := fmt.Sscanf(sc.Text(), "%s %g", &n, &v); err == nil && n == name {
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

const oneCellBody = `{"specs":[{"workload":"implicit","config":{"org":"Stash","gpus":1,"cpus":15}}]}`

// TestSweepCacheHitVsMiss: the first submission simulates, the repeat
// is a cache hit — zero additional engine runs, byte-identical body,
// hit counter incremented.
func TestSweepCacheHitVsMiss(t *testing.T) {
	eng := &fakeEngine{}
	_, ts := newTestServer(t, Config{Run: eng.run})

	resp1, body1 := postSweep(t, ts, oneCellBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, body1)
	}
	if ct := resp1.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	if eng.calls.Load() != 1 {
		t.Fatalf("first request ran the engine %d times", eng.calls.Load())
	}
	var cell stash.SweepResult
	if err := json.Unmarshal([]byte(body1), &cell); err != nil {
		t.Fatalf("body is not one SweepResult line: %v\n%s", err, body1)
	}
	if cell.Status() != stash.StatusOK || cell.Result.Cycles != 1008 {
		t.Errorf("decoded cell: status=%s cycles=%d", cell.Status(), cell.Result.Cycles)
	}

	hitsBefore := metric(t, ts, "stashd_cache_hits_total")
	_, body2 := postSweep(t, ts, oneCellBody)
	if eng.calls.Load() != 1 {
		t.Errorf("repeat submission re-ran the engine (%d calls)", eng.calls.Load())
	}
	if body2 != body1 {
		t.Errorf("repeat body differs:\n%q\n%q", body1, body2)
	}
	if hits := metric(t, ts, "stashd_cache_hits_total"); hits != hitsBefore+1 {
		t.Errorf("hits went %g -> %g, want +1", hitsBefore, hits)
	}
}

// TestSweepStreamsInSpecOrder: a grid request yields one NDJSON line
// per cell, in spec order, regardless of completion order.
func TestSweepStreamsInSpecOrder(t *testing.T) {
	eng := &fakeEngine{}
	_, ts := newTestServer(t, Config{Run: eng.run, Workers: 4})
	resp, body := postSweep(t, ts, `{"workloads":["implicit","reuse","lud"],"orgs":["Stash","Cache"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Stashd-Cells") != "6" {
		t.Errorf("X-Stashd-Cells = %q", resp.Header.Get("X-Stashd-Cells"))
	}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	want := []string{"implicit/Stash", "implicit/Cache", "reuse/Stash", "reuse/Cache", "lud/Stash", "lud/Cache"}
	for i, ln := range lines {
		var cell stash.SweepResult
		if err := json.Unmarshal([]byte(ln), &cell); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if cell.Spec.String() != want[i] {
			t.Errorf("line %d is %s, want %s", i, cell.Spec, want[i])
		}
	}
	// The grid shorthand picks the paper's machine per workload.
	var micro, app stash.SweepResult
	json.Unmarshal([]byte(lines[0]), &micro)
	json.Unmarshal([]byte(lines[4]), &app)
	if micro.Spec.Config.GPUs != 1 || app.Spec.Config.GPUs != 15 {
		t.Errorf("grid machines: micro GPUs=%d app GPUs=%d", micro.Spec.Config.GPUs, app.Spec.Config.GPUs)
	}
}

// TestSingleflightCollapse: N concurrent identical requests run one
// simulation; everyone gets the same bytes.
func TestSingleflightCollapse(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{}), started: make(chan string, 1)}
	_, ts := newTestServer(t, Config{Run: eng.run, Workers: 8})

	const n = 8
	bodies := make([]string, n)
	var wg sync.WaitGroup
	launch := func(i int) {
		defer wg.Done()
		_, bodies[i] = postSweep(t, ts, oneCellBody)
	}
	wg.Add(1)
	go launch(0)
	<-eng.started // the leader is inside the engine, holding the flight open
	for i := 1; i < n; i++ {
		wg.Add(1)
		go launch(i)
	}
	// Wait until every follower has either joined the flight or will
	// land on the filled cache, then release the leader.
	deadline := time.Now().Add(5 * time.Second)
	for metric(t, ts, "stashd_sweep_requests_total") < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(eng.gate)
	wg.Wait()

	if got := eng.calls.Load(); got != 1 {
		t.Errorf("%d concurrent identical requests ran the engine %d times, want 1", n, got)
	}
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("request %d body differs from leader's", i)
		}
	}
}

// TestClientDisconnectCancelsCell: dropping the request mid-sweep
// cancels the in-flight cell via its context, and the cancellation is
// not cached — the next identical request simulates afresh.
func TestClientDisconnectCancelsCell(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{}), started: make(chan string, 1), ctxErrs: make(chan error, 1)}
	_, ts := newTestServer(t, Config{Run: eng.run})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep", strings.NewReader(oneCellBody))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-eng.started
	cancel() // client walks away mid-simulation
	if err := <-errc; err == nil {
		t.Error("canceled request reported success")
	}
	select {
	case cerr := <-eng.ctxErrs:
		if !errors.Is(cerr, context.Canceled) {
			t.Errorf("cell context ended with %v, want cancellation", cerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cell context never canceled after client disconnect")
	}

	// The aborted run must not poison the cache.
	close(eng.gate)
	resp, body := postSweep(t, ts, oneCellBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cell stash.SweepResult
	if err := json.Unmarshal([]byte(body), &cell); err != nil {
		t.Fatal(err)
	}
	if cell.Status() != stash.StatusOK {
		t.Errorf("post-disconnect resubmission served %s, want ok", cell.Status())
	}
	if eng.calls.Load() != 2 {
		t.Errorf("engine ran %d times, want 2 (canceled + fresh)", eng.calls.Load())
	}
}

// TestMalformedRequests: every malformed or invalid request is a 400
// (or 413) with a structured JSON error body.
func TestMalformedRequests(t *testing.T) {
	eng := &fakeEngine{}
	_, ts := newTestServer(t, Config{Run: eng.run, MaxCells: 4})
	cases := []struct {
		name, body string
		code       int
		wantIndex  bool
	}{
		{"not json", `{"specs": [`, http.StatusBadRequest, false},
		{"unknown field", `{"spex": []}`, http.StatusBadRequest, false},
		{"empty", `{}`, http.StatusBadRequest, false},
		{"unknown workload", `{"specs":[{"workload":"nope","config":{"org":"Stash","gpus":1}}]}`, http.StatusBadRequest, true},
		{"unknown org", `{"workloads":["lud"],"orgs":["L3"]}`, http.StatusBadRequest, false},
		{"invalid config", `{"specs":[{"workload":"lud","config":{"org":"Stash","gpus":0}}]}`, http.StatusBadRequest, true},
		{"bad chunk words", `{"specs":[{"workload":"lud","config":{"org":"Stash","gpus":15,"cpus":1,"chunk_words":3}}]}`, http.StatusBadRequest, true},
		{"too many cells", `{"workloads":["implicit","reuse","lud"],"orgs":["Stash","Cache"]}`, http.StatusRequestEntityTooLarge, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postSweep(t, ts, tc.body)
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.code, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q", ct)
			}
			var e apiError
			if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
				t.Errorf("body is not a structured error: %q (%v)", body, err)
			}
			if tc.wantIndex && (json.Unmarshal([]byte(body), &e) != nil || e.Index == nil) {
				t.Errorf("per-cell failure missing index: %q", body)
			}
		})
	}
	if eng.calls.Load() != 0 {
		t.Errorf("invalid requests reached the engine %d times", eng.calls.Load())
	}
}

// TestCellEndpoint: GET /v1/cell builds the spec from query params,
// shares the sweep cache, and rejects unknown parameters.
func TestCellEndpoint(t *testing.T) {
	eng := &fakeEngine{}
	_, ts := newTestServer(t, Config{Run: eng.run})

	get := func(query string) (*http.Response, string) {
		resp, err := http.Get(ts.URL + "/v1/cell?" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}

	resp, body := get("workload=lud&org=Stash")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cell stash.SweepResult
	if err := json.Unmarshal([]byte(body), &cell); err != nil {
		t.Fatal(err)
	}
	if cell.Spec.Workload != "lud" || cell.Spec.Config.GPUs != 15 {
		t.Errorf("cell spec = %+v", cell.Spec)
	}

	// The same cell through /v1/sweep is a cache hit, not a re-run.
	postSweep(t, ts, `{"specs":[{"workload":"lud","config":{"org":"Stash","gpus":15,"cpus":1}}]}`)
	if eng.calls.Load() != 1 {
		t.Errorf("sweep after cell re-ran the engine (%d calls)", eng.calls.Load())
	}

	// Ablation knobs reach the config (different fingerprint: re-run).
	get("workload=lud&org=Stash&eager_writeback=true&chunk_words=4")
	if eng.calls.Load() != 2 {
		t.Errorf("ablation cell did not simulate (%d calls)", eng.calls.Load())
	}

	// Technology axes reach the config too.
	resp, body = get("workload=lud&org=Stash&stash_tech=stt-mram&stash_cap_kb=32&l1_tech=edram")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tech cell status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &cell); err != nil {
		t.Fatal(err)
	}
	if st := cell.Spec.Config.StashTech; st == nil || st.Profile != "stt-mram" || st.CapacityKB != 32 {
		t.Errorf("stash tech spec = %+v", cell.Spec.Config.StashTech)
	}
	if lt := cell.Spec.Config.L1Tech; lt == nil || lt.Profile != "edram" || lt.CapacityKB != 0 {
		t.Errorf("l1 tech spec = %+v", cell.Spec.Config.L1Tech)
	}
	if eng.calls.Load() != 3 {
		t.Errorf("tech cell did not simulate (%d calls)", eng.calls.Load())
	}

	for _, q := range []string{
		"workload=lud&org=Nope",
		"workload=nope&org=Stash",
		"workload=lud&org=Stash&typo=1",
		"workload=lud&org=Stash&gpus=banana",
		"workload=lud&org=Stash&gpus=0",
		"workload=lud&org=Stash&stash_tech=unobtainium",
		"workload=lud&org=Stash&stash_cap_kb=banana",
		"workload=lud&org=Stash&llc_cap_kb=-3",
	} {
		resp, body := get(q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", q, resp.StatusCode, body)
		}
		var e apiError
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("%s: body is not a structured error: %q", q, body)
		}
	}
}

// TestFailedCellNotCached: deterministic failures still produce a
// structured line but are re-attempted on the next submission.
func TestFailedCellNotCached(t *testing.T) {
	var calls atomic.Int64
	run := func(ctx context.Context, spec stash.RunSpec) stash.SweepResult {
		calls.Add(1)
		return stash.SweepResult{Spec: spec, Wall: time.Millisecond, Attempts: 1,
			Err: &stash.CellError{Workload: spec.Workload, Org: spec.Config.Org,
				Kind: stash.FailHang, Msg: "no progress", Diagnostic: "cycle=42"}}
	}
	_, ts := newTestServer(t, Config{Run: run})
	for want := int64(1); want <= 2; want++ {
		resp, body := postSweep(t, ts, oneCellBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var cell stash.SweepResult
		if err := json.Unmarshal([]byte(body), &cell); err != nil {
			t.Fatal(err)
		}
		if cell.Status() != stash.StatusHang {
			t.Errorf("status = %s, want hang", cell.Status())
		}
		var ce *stash.CellError
		if !errors.As(cell.Err, &ce) || ce.Diagnostic != "cycle=42" {
			t.Errorf("diagnostic lost: %v", cell.Err)
		}
		if calls.Load() != want {
			t.Errorf("engine calls = %d, want %d (failures must not be cached)", calls.Load(), want)
		}
	}
}

// TestHealthzAndDrain: healthy then draining.
func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Run: (&fakeEngine{}).run})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	s.Drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(b, []byte("draining")) {
		t.Errorf("draining healthz = %d %q", resp.StatusCode, b)
	}
}

// TestMetricsThroughput: fresh simulations feed the sim-cycles/sec
// gauge; cache hits do not.
func TestMetricsThroughput(t *testing.T) {
	eng := &fakeEngine{}
	_, ts := newTestServer(t, Config{Run: eng.run})
	postSweep(t, ts, oneCellBody)
	cycles := metric(t, ts, "stashd_sim_cycles_total")
	if cycles != 1008 {
		t.Errorf("sim cycles = %g, want 1008", cycles)
	}
	if metric(t, ts, "stashd_sim_cycles_per_sec") <= 0 {
		t.Error("cycles/sec not derived")
	}
	postSweep(t, ts, oneCellBody) // hit: no new cycles
	if got := metric(t, ts, "stashd_sim_cycles_total"); got != cycles {
		t.Errorf("cache hit advanced sim cycles: %g -> %g", cycles, got)
	}
	if metric(t, ts, "stashd_cells_simulated_total") != 1 {
		t.Error("cells_simulated should count fresh runs only")
	}
}

func postSweepAs(t *testing.T, ts *httptest.Server, token, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// TestNamespaceIsolation: cache entries are keyed by tenant. The same
// cell under two different bearer tokens simulates twice; a repeat
// under either token is a hit; anonymous requests share one "public"
// namespace. Each tenant appears in /metrics as a labeled series, and
// raw tokens never show up in the exposition.
func TestNamespaceIsolation(t *testing.T) {
	eng := &fakeEngine{}
	_, ts := newTestServer(t, Config{Run: eng.run})

	postSweepAs(t, ts, "alice-secret", oneCellBody)
	if eng.calls.Load() != 1 {
		t.Fatalf("first tenant request ran the engine %d times", eng.calls.Load())
	}
	postSweepAs(t, ts, "bob-secret", oneCellBody)
	if eng.calls.Load() != 2 {
		t.Errorf("second tenant should not see first tenant's entry (%d calls)", eng.calls.Load())
	}
	_, aliceRepeat := postSweepAs(t, ts, "alice-secret", oneCellBody)
	if eng.calls.Load() != 2 {
		t.Errorf("repeat under the same token re-ran the engine (%d calls)", eng.calls.Load())
	}
	_, aliceFirst := postSweepAs(t, ts, "alice-secret", oneCellBody)
	if aliceFirst != aliceRepeat {
		t.Error("tenant repeat not byte-identical")
	}

	// Anonymous requests share the public namespace.
	postSweep(t, ts, oneCellBody)
	if eng.calls.Load() != 3 {
		t.Errorf("anonymous request should miss tenant entries (%d calls)", eng.calls.Load())
	}
	postSweep(t, ts, oneCellBody)
	if eng.calls.Load() != 3 {
		t.Errorf("anonymous repeat re-ran the engine (%d calls)", eng.calls.Load())
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(b)
	if !strings.Contains(exposition, `stashd_ns_cache_hits_total{namespace="public"} 1`) {
		t.Errorf("public namespace series missing or wrong:\n%s", exposition)
	}
	if strings.Contains(exposition, "alice-secret") || strings.Contains(exposition, "bob-secret") {
		t.Error("raw bearer token leaked into /metrics")
	}
	if got := strings.Count(exposition, "stashd_ns_cache_hits_total{"); got != 3 {
		t.Errorf("want 3 namespace series (public + 2 tenants), got %d", got)
	}
}

// TestMetricsTiersAndCompression: a gzip pairtree cache reports
// per-tier hits and a compression ratio above 1 for the synthetic
// (JSON, highly compressible) results.
func TestMetricsTiersAndCompression(t *testing.T) {
	cache, err := cellcache.Open("pairtree://" + t.TempDir() + "?compress=gzip&entries=1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })
	eng := &fakeEngine{}
	_, ts := newTestServer(t, Config{Run: eng.run, Cache: cache})

	const otherCellBody = `{"specs":[{"workload":"reuse","config":{"org":"Stash","gpus":1,"cpus":15}}]}`
	postSweep(t, ts, oneCellBody)
	postSweep(t, ts, otherCellBody) // evicts the first cell from the 1-entry memory tier
	postSweep(t, ts, oneCellBody)   // store-tier hit: promoted back into memory
	postSweep(t, ts, oneCellBody)   // memory-tier hit

	if got := metric(t, ts, "stashd_cache_disk_hits_total"); got != 1 {
		t.Errorf("disk hits = %g, want 1", got)
	}
	if got := metric(t, ts, "stashd_cache_mem_hits_total"); got != 1 {
		t.Errorf("mem hits = %g, want 1", got)
	}
	if got := metric(t, ts, "stashd_cache_hits_total"); got != 2 {
		t.Errorf("total hits = %g, want 2", got)
	}
	if ratio := metric(t, ts, "stashd_cache_compression_ratio"); ratio <= 1 {
		t.Errorf("compression ratio = %g, want > 1 for JSON payloads", ratio)
	}
	if raw, stored := metric(t, ts, "stashd_cache_raw_bytes_total"), metric(t, ts, "stashd_cache_stored_bytes_total"); stored >= raw || stored == 0 {
		t.Errorf("stored bytes %g vs raw %g: gzip should shrink JSON", stored, raw)
	}
}
