package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stash"
	"stash/internal/cellcache"
)

// This file is stashd's chaos harness: storage faults, worker panics,
// disconnect storms, and drain-during-sweep, each asserting the
// resilience contract — no wedges, structured errors only, degraded
// service over failed service, and byte-identical replay after heal.

// TestDegradedServingOnPersistFailure: a simulation that computes fine
// but cannot be persisted is served (200, ok line), counted as
// degraded, and simply not cached — the disk being sick never fails a
// computation that succeeded.
func TestDegradedServingOnPersistFailure(t *testing.T) {
	cache, err := cellcache.Open("faulty+memory://?entries=-1&breaker=0&fault_put=1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })
	eng := &fakeEngine{}
	_, ts := newTestServer(t, Config{Run: eng.run, Cache: cache})

	for round := int64(1); round <= 2; round++ {
		resp, body := postSweep(t, ts, oneCellBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, body)
		}
		var cell stash.SweepResult
		if err := json.Unmarshal([]byte(body), &cell); err != nil {
			t.Fatalf("round %d: %v\n%s", round, err, body)
		}
		if cell.Status() != stash.StatusOK {
			t.Fatalf("round %d: served %s, want ok despite persist failure", round, cell.Status())
		}
		// Nothing was cached, so every round simulates afresh.
		if eng.calls.Load() != round {
			t.Errorf("round %d: engine calls = %d", round, eng.calls.Load())
		}
	}
	if got := metric(t, ts, "stashd_degraded_cells_total"); got != 2 {
		t.Errorf("degraded cells = %g, want 2", got)
	}
	if got := metric(t, ts, "stashd_cache_put_errors_total"); got != 2 {
		t.Errorf("cache put errors = %g, want 2", got)
	}
	if got := metric(t, ts, "stashd_cells_failed_total"); got != 0 {
		t.Errorf("degraded cells leaked into cells_failed (%g)", got)
	}
}

// TestStorageOutageDegradeHealReplay: a store that is down at boot
// trips the breaker (visible in /metrics and /healthz) while cells keep
// serving; once the engine heals and the backoff lapses, the same cell
// persists, and from then on replays byte-identically from cache.
func TestStorageOutageDegradeHealReplay(t *testing.T) {
	cache, err := cellcache.Open("faulty+pairtree://" + t.TempDir() +
		"?entries=-1&fault_down_first=2&breaker=1&breaker_backoff=1ms")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })
	eng := &fakeEngine{}
	_, ts := newTestServer(t, Config{Run: eng.run, Cache: cache})

	// Sick phase: lookup miss + failed persist consume the outage ops.
	resp, body1 := postSweep(t, ts, oneCellBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sick-phase status %d: %s", resp.StatusCode, body1)
	}
	if got := metric(t, ts, "stashd_cache_breaker_trips_total"); got != 1 {
		t.Errorf("breaker trips = %g, want 1", got)
	}
	if got := metric(t, ts, "stashd_degraded_cells_total"); got != 1 {
		t.Errorf("degraded cells = %g, want 1", got)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hb), "degraded") {
		t.Errorf("sick-phase healthz = %d %q, want 200 + degraded", hresp.StatusCode, hb)
	}

	// Healed phase: past the backoff, the half-open probe write lands.
	time.Sleep(20 * time.Millisecond)
	_, body2 := postSweep(t, ts, oneCellBody)
	if body2 != body1 {
		t.Errorf("healed rerun not byte-identical:\n%q\n%q", body1, body2)
	}
	if eng.calls.Load() != 2 {
		t.Fatalf("healed rerun: engine calls = %d, want 2", eng.calls.Load())
	}

	// Replay phase: cached now; the engine stays cold and the bytes are
	// exactly the sick-phase bytes.
	_, body3 := postSweep(t, ts, oneCellBody)
	if body3 != body1 {
		t.Errorf("post-heal replay not byte-identical:\n%q\n%q", body1, body3)
	}
	if eng.calls.Load() != 2 {
		t.Errorf("replay re-ran the engine (%d calls)", eng.calls.Load())
	}
	if got := metric(t, ts, "stashd_cache_breaker_state"); got != float64(cellcache.BreakerClosed) {
		t.Errorf("breaker state = %g after heal, want closed", got)
	}
	hresp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ = io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hb), `"ok"`) {
		t.Errorf("healed healthz = %d %q", hresp.StatusCode, hb)
	}
}

// TestWorkerPanicIsolated: a panic inside the engine costs exactly one
// cell — it surfaces as a structured panic line with the stack
// attached, the sweep's other cells are unaffected, the panic is never
// cached, and the daemon keeps serving.
func TestWorkerPanicIsolated(t *testing.T) {
	var calls atomic.Int64
	inner := &fakeEngine{}
	run := func(ctx context.Context, spec stash.RunSpec) stash.SweepResult {
		if spec.Workload == "lud" {
			calls.Add(1)
			panic(fmt.Sprintf("synthetic crash %d", calls.Load()))
		}
		return inner.run(ctx, spec)
	}
	_, ts := newTestServer(t, Config{Run: run, Workers: 2})

	body := `{"specs":[` +
		`{"workload":"lud","config":{"org":"Stash","gpus":15,"cpus":1}},` +
		`{"workload":"implicit","config":{"org":"Stash","gpus":1,"cpus":15}}]}`
	resp, out := postSweep(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	var crashed, fine stash.SweepResult
	if err := json.Unmarshal([]byte(lines[0]), &crashed); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &fine); err != nil {
		t.Fatal(err)
	}
	if crashed.Status() != stash.StatusPanic {
		t.Errorf("crashed cell status = %s, want panic", crashed.Status())
	}
	if crashed.Err == nil || !strings.Contains(crashed.Err.Error(), "synthetic crash") {
		t.Errorf("panic message lost: %v", crashed.Err)
	}
	if fine.Status() != stash.StatusOK {
		t.Errorf("bystander cell status = %s, want ok", fine.Status())
	}
	if got := metric(t, ts, "stashd_panic_cells_total"); got != 1 {
		t.Errorf("panic cells = %g, want 1", got)
	}

	// The panic is a fact about one run, not the cell: resubmission
	// re-attempts (and the daemon is still alive to do so).
	postSweep(t, ts, body)
	if calls.Load() != 2 {
		t.Errorf("panicking cell ran %d times across 2 submissions, want 2", calls.Load())
	}
}

// TestDisconnectStorm: a burst of clients that all vanish mid-flight
// must not wedge the daemon — gauges return to zero, and the next
// well-behaved request is served cleanly.
func TestDisconnectStorm(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	_, ts := newTestServer(t, Config{Run: eng.run, Workers: 2})

	const storm = 8
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			body := fmt.Sprintf(`{"specs":[{"workload":"implicit","config":{"org":"Stash","gpus":%d,"cpus":%d}}]}`, 1+i%4, 4-i%4)
			req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			go func() {
				time.Sleep(time.Duration(i) * time.Millisecond)
				cancel() // every client walks away
			}()
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	close(eng.gate)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if metric(t, ts, "stashd_inflight_cells") == 0 && metric(t, ts, "stashd_queue_depth") == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := metric(t, ts, "stashd_inflight_cells"); got != 0 {
		t.Errorf("in-flight cells stuck at %g after the storm", got)
	}
	if got := metric(t, ts, "stashd_queue_depth"); got != 0 {
		t.Errorf("queue depth stuck at %g after the storm", got)
	}

	resp, body := postSweep(t, ts, oneCellBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-storm request: status %d: %s", resp.StatusCode, body)
	}
	var cell stash.SweepResult
	if err := json.Unmarshal([]byte(body), &cell); err != nil || cell.Status() != stash.StatusOK {
		t.Errorf("post-storm cell = %s (%v)", cell.Status(), err)
	}
}

// TestSharedFlightDisconnect: client B joins client A's in-flight
// simulation; A disconnects. The foreign cancellation must not decide
// B's cell — B's request reruns it under its own context and succeeds —
// across every engine family (satellite of the mid-stream-disconnect
// robustness work).
func TestSharedFlightDisconnect(t *testing.T) {
	for _, tc := range []struct{ name, spec string }{
		{"memory", "memory://"},
		{"log", "log://{dir}"},
		{"pairtree-gzip", "pairtree://{dir}?compress=gzip"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cache, err := cellcache.Open(strings.Replace(tc.spec, "{dir}", t.TempDir(), 1))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cache.Close() })
			eng := &fakeEngine{gate: make(chan struct{}), started: make(chan string, 4)}
			_, ts := newTestServer(t, Config{Run: eng.run, Cache: cache, Workers: 2})

			// A leads the flight and holds it open inside the engine.
			actx, acancel := context.WithCancel(context.Background())
			defer acancel()
			areq, err := http.NewRequestWithContext(actx, "POST", ts.URL+"/v1/sweep", strings.NewReader(oneCellBody))
			if err != nil {
				t.Fatal(err)
			}
			aerr := make(chan error, 1)
			go func() {
				resp, err := http.DefaultClient.Do(areq)
				if err == nil {
					resp.Body.Close()
				}
				aerr <- err
			}()
			<-eng.started

			// B joins the same cell's flight.
			bBody := make(chan string, 1)
			go func() {
				_, body := postSweep(t, ts, oneCellBody)
				bBody <- body
			}()
			deadline := time.Now().Add(5 * time.Second)
			for metric(t, ts, "stashd_cache_singleflight_collapsed_total") < 1 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}

			// A vanishes; its cancellation fails the shared flight. B must
			// rerun rather than inherit the foreign cancellation.
			acancel()
			<-aerr
			select {
			case <-eng.started: // B's rerun reached the engine
			case <-time.After(5 * time.Second):
				t.Fatal("no rerun after the leader's disconnect")
			}
			close(eng.gate)

			var cell stash.SweepResult
			body := <-bBody
			if err := json.Unmarshal([]byte(body), &cell); err != nil {
				t.Fatalf("B's body: %v\n%s", err, body)
			}
			if cell.Status() != stash.StatusOK {
				t.Errorf("B got %s, want ok after rerun", cell.Status())
			}
			if eng.calls.Load() != 2 {
				t.Errorf("engine calls = %d, want 2 (canceled leader + rerun)", eng.calls.Load())
			}

			// The rerun's result was cached: replay is byte-identical, cold.
			_, replay := postSweep(t, ts, oneCellBody)
			if replay != body {
				t.Error("post-rerun replay not byte-identical")
			}
			if eng.calls.Load() != 2 {
				t.Errorf("replay re-ran the engine (%d calls)", eng.calls.Load())
			}
		})
	}
}

// TestDrainDuringSweep: closing the drain channel mid-sweep fails
// queued cells fast with structured not_started lines while the
// in-flight cell finishes — the stream stays whole, nothing wedges.
func TestDrainDuringSweep(t *testing.T) {
	cache, err := cellcache.New(cellcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })
	eng := &fakeEngine{gate: make(chan struct{}), started: make(chan string, 4)}
	done := make(chan struct{})
	s := New(Config{Run: eng.run, Cache: cache, Workers: 1}, done)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body := `{"workloads":["implicit","reuse","pollution"],"orgs":["Stash"]}`
	respc := make(chan string, 1)
	go func() {
		_, out := postSweep(t, ts, body)
		respc <- out
	}()
	// Whichever cell won the lone worker slot is the in-flight one;
	// the other two are queued.
	inFlight := <-eng.started
	close(done) // drain
	close(eng.gate)

	out := <-respc
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("drained sweep returned %d lines, want 3:\n%s", len(lines), out)
	}
	for i, ln := range lines {
		var cell stash.SweepResult
		if err := json.Unmarshal([]byte(ln), &cell); err != nil {
			t.Fatalf("line %d not structured: %v\n%s", i, err, ln)
		}
		want := stash.StatusNotStarted
		if cell.Spec.String() == inFlight {
			want = stash.StatusOK
		}
		if got := cell.Status(); got != want {
			t.Errorf("cell %s = %s, want %s", cell.Spec, got, want)
		}
	}
	if eng.calls.Load() != 1 {
		t.Errorf("drain let %d cells start, want 1", eng.calls.Load())
	}
}
