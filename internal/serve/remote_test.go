package serve

import (
	"net/http"
	"testing"

	"stash"
	"stash/internal/cellcache"
)

// TestRemoteTierPeerFill drives the remote+ cellcache tier through two
// real daemons: shard A simulates a cell; shard B, configured with
// remote+memory pointing at A, serves the same cell byte-identically
// with zero local simulation — one /v1/cellframe fetch instead.
func TestRemoteTierPeerFill(t *testing.T) {
	engA := &fakeEngine{}
	_, tsA := newTestServer(t, Config{Run: engA.run})

	engB := &fakeEngine{}
	cacheB, err := cellcache.Open("remote+memory://?peers=" + tsA.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cacheB.Close() })
	_, tsB := newTestServer(t, Config{Run: engB.run, Cache: cacheB})

	respA, bodyA := postSweep(t, tsA, oneCellBody)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("shard A sweep: HTTP %d", respA.StatusCode)
	}
	if engA.calls.Load() != 1 {
		t.Fatalf("shard A ran %d simulations, want 1", engA.calls.Load())
	}

	respB, bodyB := postSweep(t, tsB, oneCellBody)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("shard B sweep: HTTP %d", respB.StatusCode)
	}
	if bodyB != bodyA {
		t.Fatalf("peer-filled line differs:\nA: %s\nB: %s", bodyA, bodyB)
	}
	if engB.calls.Load() != 0 {
		t.Fatalf("shard B simulated %d cells, want 0 (peer fill)", engB.calls.Load())
	}
	if st := cacheB.Stats(); st.RemoteFills != 1 {
		t.Fatalf("shard B cache stats %+v, want RemoteFills=1", st)
	}
	if v := metric(t, tsB, "stashd_cache_remote_fills_total"); v != 1 {
		t.Errorf("stashd_cache_remote_fills_total = %g, want 1", v)
	}
	if v := metric(t, tsA, "stashd_cellframe_hits_total"); v != 1 {
		t.Errorf("shard A stashd_cellframe_hits_total = %g, want 1", v)
	}

	// A's daemon dying degrades B to local simulation — never an error.
	tsA.Close()
	const otherCell = `{"specs":[{"workload":"reuse","config":{"org":"Scratch","gpus":1,"cpus":15}}]}`
	respB2, _ := postSweep(t, tsB, otherCell)
	if respB2.StatusCode != http.StatusOK {
		t.Fatalf("sweep with dead peer: HTTP %d", respB2.StatusCode)
	}
	if engB.calls.Load() != 1 {
		t.Fatalf("shard B simulated %d cells after peer death, want exactly 1", engB.calls.Load())
	}
	if st := cacheB.Stats(); st.RemoteErrors == 0 {
		t.Errorf("dead peer fetch not counted: %+v", st)
	}
}

// TestCellFrameEndpoint pins the endpoint's contract: bad requests are
// 400, absent cells 404, present cells come back as the stored frame.
func TestCellFrameEndpoint(t *testing.T) {
	eng := &fakeEngine{}
	_, ts := newTestServer(t, Config{Run: eng.run})
	if resp, _ := http.Get(ts.URL + "/v1/cellframe"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing key: HTTP %d, want 400", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/cellframe?key=public:absent"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("absent key: HTTP %d, want 404", resp.StatusCode)
	}
	postSweep(t, ts, oneCellBody)
	fp := cellKeyOf(t)
	resp, err := http.Get(ts.URL + "/v1/cellframe?key=public:" + fp)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("present key: HTTP %d, want 200", resp.StatusCode)
	}
	if v := metric(t, ts, "stashd_cellframe_requests_total"); v != 3 {
		t.Errorf("stashd_cellframe_requests_total = %g, want 3", v)
	}
}

// cellKeyOf returns the fingerprint of oneCellBody's single cell,
// exactly as the server computed it from the decoded spec.
func cellKeyOf(t *testing.T) string {
	t.Helper()
	spec := stash.RunSpec{Workload: "implicit",
		Config: stash.Config{Org: stash.Stash, GPUs: 1, CPUs: 15}}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}
