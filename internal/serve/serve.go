// Package serve implements stashd's HTTP layer: request validation,
// a bounded worker pool over the simulation engine, per-request
// context and deadline propagation, and the content-addressed
// cell-result cache in front of it all (see DESIGN.md §12).
//
// Endpoints:
//
//	POST /v1/sweep   simulate a grid of cells, streamed as NDJSON
//	GET  /v1/cell    simulate (or replay) one cell
//	GET  /healthz    liveness and drain state
//	GET  /metrics    counters in Prometheus text format
//
// Every cell is keyed by stash.RunSpec.Fingerprint and served through
// cellcache: a repeated cell is a cache hit that replays the stored
// bytes verbatim — byte-identical JSON, zero engine cycles run — and
// concurrent identical cells collapse to one simulation (singleflight).
//
// Tenancy: the cache is namespaced by API token. A request carrying
// "Authorization: Bearer <token>" reads and fills only its own
// tenant's cells (the namespace is a digest of the token — raw tokens
// never reach cache keys or disk); requests without credentials share
// the "public" namespace. /metrics exposes per-namespace hit/miss and
// compression-ratio counters alongside the global ones.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stash"
	"stash/internal/cellcache"
)

// RunFunc simulates one cell under ctx. It is injectable for tests;
// the default runs the real engine with the server's per-cell timeout
// and retry policy via stash.Sweep, inheriting its crash isolation (a
// hung or panicking cell returns a structured *stash.CellError).
type RunFunc func(ctx context.Context, spec stash.RunSpec) stash.SweepResult

// Config configures a Server.
type Config struct {
	// Cache is the content-addressed result store. Required.
	Cache *cellcache.Cache
	// Workers bounds concurrently simulated cells across all requests.
	// Values below 1 select runtime.GOMAXPROCS(0).
	Workers int
	// MaxCells bounds the grid size of one /v1/sweep request. Zero
	// selects the default of 1024.
	MaxCells int
	// CellTimeout bounds each cell attempt's wall time (see
	// stash.SweepOptions.CellTimeout). Zero means unbounded.
	CellTimeout time.Duration
	// Retries re-runs a failed cell attempt (see
	// stash.SweepOptions.Retries).
	Retries int
	// MaxQueue bounds cells admitted but not yet holding a worker slot.
	// A request that would push the queue past it is shed with 429 and
	// a Retry-After estimate — whole sweeps are shed before single
	// cells (cells get the worker pool's extra headroom). Zero selects
	// 4x MaxCells; negative disables shedding.
	MaxQueue int
	// MaxDeadline caps each request's simulation budget. It clamps the
	// client's X-Stashd-Deadline header and applies on its own when the
	// header is absent. Zero means unbounded.
	MaxDeadline time.Duration
	// TenantSlots bounds one namespace's concurrently simulating cells,
	// so a single tenant's burst cannot monopolize the worker pool.
	// Zero selects max(1, Workers-1) — a lone tenant keeps nearly full
	// throughput while one slot always remains winnable by others.
	// Negative disables the per-tenant bound.
	TenantSlots int
	// Run overrides the engine (tests only). Nil selects the real one.
	Run RunFunc
}

const defaultMaxCells = 1024

// Server is the stashd request handler. Create with New, expose with
// Handler.
type Server struct {
	cfg  Config
	run  RunFunc
	sem  chan struct{} // worker-pool slots
	done <-chan struct{}

	draining   atomic.Bool
	queueDepth atomic.Int64 // cells admitted, waiting for a slot
	inFlight   atomic.Int64 // cells simulating right now

	tenantMu sync.Mutex
	tenants  map[string]chan struct{} // per-namespace simulation slots

	sweepReqs     atomic.Uint64
	cellReqs      atomic.Uint64
	frameReqs     atomic.Uint64 // peer GET /v1/cellframe lookups
	frameHits     atomic.Uint64 // the subset answered with a frame
	badReqs       atomic.Uint64
	shedReqs      atomic.Uint64 // requests refused by admission control
	cellsServed   atomic.Uint64
	cellsFailed   atomic.Uint64
	degradedCells atomic.Uint64 // cells served whose persist failed
	panicCells    atomic.Uint64 // cells isolated by the serve-layer recover
	simCycles     atomic.Uint64 // engine cycles actually simulated (fresh runs)
	simWallNanos  atomic.Int64  // host time spent simulating (fresh runs)
}

// New builds a Server. done, when non-nil, aborts cell scheduling
// during shutdown (cells waiting for a worker slot fail fast instead
// of racing the listener teardown).
func New(cfg Config, done <-chan struct{}) *Server {
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{cfg: cfg, sem: make(chan struct{}, workers), done: done,
		tenants: make(map[string]chan struct{})}
	if cfg.MaxCells == 0 {
		s.cfg.MaxCells = defaultMaxCells
	}
	if cfg.MaxQueue == 0 {
		// Deep enough that a handful of legitimate full-size grids queue
		// rather than shed on an otherwise idle server.
		s.cfg.MaxQueue = 4 * s.cfg.MaxCells
	}
	if cfg.TenantSlots == 0 {
		s.cfg.TenantSlots = max(1, workers-1)
	}
	s.run = cfg.Run
	if s.run == nil {
		s.run = func(ctx context.Context, spec stash.RunSpec) stash.SweepResult {
			rs, _ := stash.Sweep(ctx, []stash.RunSpec{spec}, stash.SweepOptions{
				Workers:     1,
				CellTimeout: s.cfg.CellTimeout,
				Retries:     s.cfg.Retries,
			})
			return rs[0]
		}
	}
	return s
}

// Handler routes the API surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/cell", s.handleCell)
	mux.HandleFunc("GET /v1/cellframe", s.handleCellFrame)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Drain flips the server into draining: /healthz starts answering 503
// so load balancers stop routing here while in-flight requests finish.
func (s *Server) Drain() { s.draining.Store(true) }

// PublicNamespace is the cache namespace shared by requests without
// credentials.
const PublicNamespace = "public"

// namespaceOf derives the request's cache namespace from its API
// token. The namespace is a short digest of the token, so equal tokens
// share a cache, different tokens are fully isolated, and the raw
// token never appears in cache keys, engine files, or metrics labels.
func namespaceOf(r *http.Request) string {
	auth := strings.TrimSpace(r.Header.Get("Authorization"))
	if auth == "" {
		return PublicNamespace
	}
	// Accept "Bearer <token>" (any scheme case) or a bare token.
	if i := strings.IndexByte(auth, ' '); i >= 0 && strings.EqualFold(auth[:i], "bearer") {
		auth = strings.TrimSpace(auth[i+1:])
	}
	sum := sha256.Sum256([]byte(auth))
	return "t-" + hex.EncodeToString(sum[:8])
}

// admit applies queue-depth admission control for a request wanting to
// schedule n cells. A request that would push the queue past MaxQueue
// is shed with 429 and a Retry-After estimate before any simulation
// state is touched — shedding early and whole is cheaper for both
// sides than timing out late and piecemeal. Single cells (n == 1) get
// the worker pool's extra headroom on top of MaxQueue, so whole sweeps
// are shed first and a probe cell still gets through while big grids
// are being refused.
func (s *Server) admit(w http.ResponseWriter, n int) bool {
	if s.cfg.MaxQueue < 0 {
		return true
	}
	limit := int64(s.cfg.MaxQueue)
	if n == 1 {
		limit += int64(cap(s.sem))
	}
	depth := s.queueDepth.Load()
	if depth+int64(n) <= limit {
		return true
	}
	s.shedReqs.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter(depth)))
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(apiError{Error: fmt.Sprintf(
		"server overloaded: %d cells queued, %d more would exceed the admission limit of %d; retry after the advertised delay",
		depth, n, limit)})
	return false
}

// retryAfter estimates (in whole seconds, clamped to [1, 60]) how long
// until the current queue drains, from the observed mean cell wall
// time and the worker-pool width.
func (s *Server) retryAfter(depth int64) int {
	avg := time.Second
	if served := s.cellsServed.Load(); served > 0 {
		if observed := time.Duration(s.simWallNanos.Load() / int64(served)); observed > 0 {
			avg = observed
		}
	}
	est := time.Duration((depth/int64(cap(s.sem)) + 1)) * avg
	return int(min(max(est/time.Second, 1), 60))
}

// deadlineHeader is the request header naming the client's simulation
// budget as a Go duration ("30s", "2m"); the server clamps it to
// Config.MaxDeadline.
const deadlineHeader = "X-Stashd-Deadline"

// requestContext derives the context simulations run under: the
// client's X-Stashd-Deadline clamped by MaxDeadline, or MaxDeadline
// alone when the header is absent. The returned context deliberately
// does not replace r.Context() for streaming decisions — a lapsed
// deadline cancels cells (which then stream as structured failures),
// while only a vanished client cuts the stream.
func (s *Server) requestContext(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	d := s.cfg.MaxDeadline
	if h := strings.TrimSpace(r.Header.Get(deadlineHeader)); h != "" {
		req, err := time.ParseDuration(h)
		if err != nil || req <= 0 {
			s.fail(w, http.StatusBadRequest, "invalid %s %q: want a positive Go duration like 30s", deadlineHeader, h)
			return nil, nil, false
		}
		if d == 0 || req < d {
			d = req
		}
	}
	if d <= 0 {
		return r.Context(), func() {}, true
	}
	// The cause wraps DeadlineExceeded so results classify as
	// canceled, not error, while the message names the budget.
	ctx, cancel := context.WithTimeoutCause(r.Context(), d,
		fmt.Errorf("request deadline %v exceeded: %w", d, context.DeadlineExceeded))
	return ctx, cancel, true
}

// apiError is the structured error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
	// Index is the offending cell's position for per-cell validation
	// failures of a sweep request.
	Index *int `json:"index,omitempty"`
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.failCell(w, code, nil, format, args...)
}

func (s *Server) failCell(w http.ResponseWriter, code int, index *int, format string, args ...any) {
	failWith(w, &s.badReqs, code, index, format, args...)
}

// failWith writes the structured error body, counting it against bad.
// Free-standing so the node Server and the cluster Coordinator share
// one error shape.
func failWith(w http.ResponseWriter, bad *atomic.Uint64, code int, index *int, format string, args ...any) {
	bad.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(apiError{Error: fmt.Sprintf(format, args...), Index: index})
}

// SweepRequest is the POST /v1/sweep body. Cells come from explicit
// specs, a workloads x orgs grid shorthand (each workload getting the
// paper's machine for it, as stash.Grid does), or both appended.
type SweepRequest struct {
	Specs     []stash.RunSpec `json:"specs,omitempty"`
	Workloads []string        `json:"workloads,omitempty"`
	Orgs      []string        `json:"orgs,omitempty"`
}

// maxRequestBytes bounds a request body; a full 6-org x 11-workload
// grid of explicit specs is ~50 KB, so 8 MiB is generous.
const maxRequestBytes = 8 << 20

// parseSweepRequest decodes and fully validates the request, returning
// the cell list or writing a structured 400/413. Free-standing so the
// cluster Coordinator validates grids identically to a node — a grid a
// shard would reject must be rejected before it is split and dispatched.
func parseSweepRequest(w http.ResponseWriter, r *http.Request, maxCells int, bad *atomic.Uint64) ([]stash.RunSpec, bool) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		failWith(w, bad, code, nil, "invalid sweep request: %v", err)
		return nil, false
	}
	specs := req.Specs
	if len(req.Workloads) > 0 || len(req.Orgs) > 0 {
		orgs := make([]stash.MemOrg, 0, len(req.Orgs))
		for _, name := range req.Orgs {
			org, err := stash.ParseMemOrg(name)
			if err != nil {
				failWith(w, bad, http.StatusBadRequest, nil, "%v", err)
				return nil, false
			}
			orgs = append(orgs, org)
		}
		specs = append(specs, stash.Grid(req.Workloads, orgs)...)
	}
	if len(specs) == 0 {
		failWith(w, bad, http.StatusBadRequest, nil, "empty sweep: give specs or workloads+orgs")
		return nil, false
	}
	if len(specs) > maxCells {
		failWith(w, bad, http.StatusRequestEntityTooLarge, nil, "sweep of %d cells exceeds the per-request limit of %d", len(specs), maxCells)
		return nil, false
	}
	for i, spec := range specs {
		i := i
		if !validWorkload(spec.Workload) {
			failWith(w, bad, http.StatusBadRequest, &i, "unknown workload %q (want one of %v)", spec.Workload, stash.Workloads())
			return nil, false
		}
		if err := spec.Config.Validate(); err != nil {
			failWith(w, bad, http.StatusBadRequest, &i, "cell %d (%s): %v", i, spec, err)
			return nil, false
		}
	}
	return specs, true
}

func validWorkload(name string) bool {
	for _, w := range stash.Workloads() {
		if w == name {
			return true
		}
	}
	return false
}

// handleSweep streams the grid's cells as NDJSON in spec order, each
// line one SweepResult JSON document, flushed as it completes. Cells
// are scheduled concurrently onto the worker pool; identical repeats
// and concurrent duplicates are served by the cache. Because every
// line is the cell's cached byte image, resubmitting an identical
// request yields a byte-identical body.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.sweepReqs.Add(1)
	specs, ok := parseSweepRequest(w, r, s.cfg.MaxCells, &s.badReqs)
	if !ok {
		return
	}
	if !s.admit(w, len(specs)) {
		return
	}
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	ns := namespaceOf(r)

	type outcome struct {
		line []byte
		err  error
	}
	outcomes := make([]chan outcome, len(specs))
	for i := range specs {
		outcomes[i] = make(chan outcome, 1)
		go func(i int) {
			line, err := s.cell(ctx, ns, specs[i])
			outcomes[i] <- outcome{line, err}
		}(i)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Stashd-Cells", strconv.Itoa(len(specs)))
	flusher, _ := w.(http.Flusher)
	for i := range outcomes {
		var out outcome
		select {
		case out = <-outcomes[i]:
		case <-r.Context().Done():
			// Only a vanished client cuts the stream. A lapsed deadline
			// cancels ctx instead, which resolves the remaining cells
			// into structured failure lines that still stream.
			return
		}
		if out.err != nil {
			// Headers are already sent; all we can do is cut the stream
			// short, which the client sees as a truncated body.
			return
		}
		// The line is the cache's shared slice: write the newline
		// separately rather than appending into its backing array.
		if _, err := w.Write(out.line); err != nil {
			return
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleCell simulates (or replays) a single cell described by query
// parameters and returns its SweepResult JSON document.
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	s.cellReqs.Add(1)
	spec, ok := parseCellQuery(w, r, &s.badReqs)
	if !ok {
		return
	}
	if !s.admit(w, 1) {
		return
	}
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	line, err := s.cell(ctx, namespaceOf(r), spec)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(line)
	io.WriteString(w, "\n")
}

// parseCellQuery builds a RunSpec from /v1/cell query parameters:
// workload and org select the cell (on the paper's machine for that
// workload); gpus, cpus and the ablation/hardening knobs override the
// corresponding Config fields. Unknown parameters are a 400 — a typoed
// knob must not silently simulate the default cell. Free-standing so
// the cluster Coordinator answers /v1/cell with node-identical
// validation.
func parseCellQuery(w http.ResponseWriter, r *http.Request, bad *atomic.Uint64) (stash.RunSpec, bool) {
	q := r.URL.Query()
	known := map[string]bool{
		"workload": true, "org": true, "gpus": true, "cpus": true,
		"disable_replication": true, "eager_writeback": true, "chunk_words": true,
		"check_invariants": true, "watchdog_budget": true,
		"stash_tech": true, "l1_tech": true, "llc_tech": true,
		"stash_cap_kb": true, "l1_cap_kb": true, "llc_cap_kb": true,
	}
	for k := range q {
		if !known[k] {
			failWith(w, bad, http.StatusBadRequest, nil, "unknown query parameter %q", k)
			return stash.RunSpec{}, false
		}
	}
	name := q.Get("workload")
	if !validWorkload(name) {
		failWith(w, bad, http.StatusBadRequest, nil, "unknown workload %q (want one of %v)", name, stash.Workloads())
		return stash.RunSpec{}, false
	}
	org, err := stash.ParseMemOrg(q.Get("org"))
	if err != nil {
		failWith(w, bad, http.StatusBadRequest, nil, "%v", err)
		return stash.RunSpec{}, false
	}
	cfg := stash.AppConfig(org)
	if stash.IsMicrobenchmark(name) {
		cfg = stash.MicroConfig(org)
	}
	intq := func(key string, dst *int) bool {
		if v := q.Get(key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				failWith(w, bad, http.StatusBadRequest, nil, "invalid %s %q: %v", key, v, err)
				return false
			}
			*dst = n
		}
		return true
	}
	boolq := func(key string, dst *bool) bool {
		if v := q.Get(key); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				failWith(w, bad, http.StatusBadRequest, nil, "invalid %s %q: %v", key, v, err)
				return false
			}
			*dst = b
		}
		return true
	}
	if !intq("gpus", &cfg.GPUs) || !intq("cpus", &cfg.CPUs) || !intq("chunk_words", &cfg.ChunkWords) ||
		!boolq("disable_replication", &cfg.DisableReplication) || !boolq("eager_writeback", &cfg.EagerWriteback) ||
		!boolq("check_invariants", &cfg.CheckInvariants) {
		return stash.RunSpec{}, false
	}
	if v := q.Get("watchdog_budget"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			failWith(w, bad, http.StatusBadRequest, nil, "invalid watchdog_budget %q: %v", v, err)
			return stash.RunSpec{}, false
		}
		cfg.WatchdogBudget = n
	}
	// Technology axes: <axis>_tech names a profile, <axis>_cap_kb resizes
	// the structure; either alone materializes the spec. Validation of
	// the profile name and bounds happens in cfg.Validate below.
	techq := func(techKey, capKey string, dst **stash.TechSpec) bool {
		profile := q.Get(techKey)
		capKB := 0
		if !intq(capKey, &capKB) {
			return false
		}
		if profile != "" || capKB != 0 {
			*dst = &stash.TechSpec{Profile: profile, CapacityKB: capKB}
		}
		return true
	}
	if !techq("stash_tech", "stash_cap_kb", &cfg.StashTech) ||
		!techq("l1_tech", "l1_cap_kb", &cfg.L1Tech) ||
		!techq("llc_tech", "llc_cap_kb", &cfg.LLCTech) {
		return stash.RunSpec{}, false
	}
	if err := cfg.Validate(); err != nil {
		failWith(w, bad, http.StatusBadRequest, nil, "%v", err)
		return stash.RunSpec{}, false
	}
	return stash.RunSpec{Workload: name, Config: cfg}, true
}

// handleCellFrame serves a stored cell frame verbatim by engine key —
// the shard-to-shard peer-fill protocol behind the remote+ cellcache
// tier (see cellcache.Remote). The key is the full engine key
// (namespace-prefixed for tenant cells): peers ask for exactly the key
// they missed on, so tenant isolation carries across the wire — a peer
// fills t-xxx:fp only into t-xxx's namespace. Lookups never simulate,
// never touch the asking shard's stats or TTL leases, and never
// cascade to further peers (PeekFrame reads local tiers only). Misses
// are a plain 404 with no body — the caller treats them as "simulate
// locally", not as errors.
func (s *Server) handleCellFrame(w http.ResponseWriter, r *http.Request) {
	s.frameReqs.Add(1)
	key := r.URL.Query().Get("key")
	if key == "" {
		s.fail(w, http.StatusBadRequest, "missing key parameter")
		return
	}
	frame, ok := s.cfg.Cache.PeekFrame(key)
	if !ok {
		http.Error(w, "no such cell", http.StatusNotFound)
		return
	}
	s.frameHits.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}

// cellFailed carries a failed cell's serialized line through the
// cache's error path, so failures reach every singleflight waiter but
// are never cached (a timeout or cancellation is a fact about one run,
// not about the cell).
type cellFailed struct {
	line   []byte
	status stash.CellStatus
	err    error
}

func (e *cellFailed) Error() string { return e.err.Error() }
func (e *cellFailed) Unwrap() error { return e.err }

// cell produces the cell's NDJSON line: from the tenant's cache
// namespace when the fingerprint is known, otherwise by scheduling one
// simulation on the worker pool (collapsing concurrent identical cells
// within the namespace). Failed cells yield their serialized failure
// line; only an encoding breakdown returns a non-nil error.
func (s *Server) cell(ctx context.Context, ns string, spec stash.RunSpec) ([]byte, error) {
	fp, err := spec.Fingerprint()
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		line, _, err := s.cfg.Cache.Do(ns, fp, func() ([]byte, error) {
			res := s.simulate(ctx, ns, spec)
			line, merr := json.Marshal(res)
			if merr != nil {
				return nil, fmt.Errorf("encoding %s: %w", spec, merr)
			}
			s.cellsServed.Add(1)
			if res.Err != nil {
				s.cellsFailed.Add(1)
				return nil, &cellFailed{line: line, status: res.Status(), err: res.Err}
			}
			return line, nil
		})
		if err == nil {
			return line, nil
		}
		// A result that simulated fine but could not be persisted (sick
		// store engine, open breaker) is degraded, not failed: the
		// client paid for the cycles and gets the bytes; only the next
		// identical request pays again.
		var pe *cellcache.PersistError
		if errors.As(err, &pe) {
			s.degradedCells.Add(1)
			return line, nil
		}
		var cf *cellFailed
		if !errors.As(err, &cf) {
			return nil, err
		}
		// A cancellation that is not ours — another request's client
		// disconnected while we shared its flight — must not decide this
		// cell's fate: rerun under our own context.
		shared := ctx.Err() == nil
		if shared && attempt == 0 &&
			(cf.status == stash.StatusCanceled || cf.status == stash.StatusNotStarted) {
			continue
		}
		return cf.line, nil
	}
}

// tenantSem returns (creating on first use) the namespace's
// simulation-slot semaphore, or nil when per-tenant fairness is off.
func (s *Server) tenantSem(ns string) chan struct{} {
	if s.cfg.TenantSlots < 0 {
		return nil
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	sem, ok := s.tenants[ns]
	if !ok {
		sem = make(chan struct{}, s.cfg.TenantSlots)
		s.tenants[ns] = sem
	}
	return sem
}

// simulate runs one engine simulation on the bounded pool, tracking
// queue depth and in-flight gauges and the simulated-cycle throughput
// counters. Admission is two-stage: a namespace slot first (so one
// tenant's burst cannot occupy every worker), then a global worker
// slot. Cells that never get a slot (client gone, deadline lapsed, or
// server draining) report as never-started cancellations.
func (s *Server) simulate(ctx context.Context, ns string, spec stash.RunSpec) stash.SweepResult {
	s.queueDepth.Add(1)
	dequeued := false
	dequeue := func() {
		if !dequeued {
			dequeued = true
			s.queueDepth.Add(-1)
		}
	}
	defer dequeue()
	notStarted := func(why string, cause error) stash.SweepResult {
		return stash.SweepResult{Spec: spec,
			Err: fmt.Errorf("stash: %s not started: %s%w", spec, why, cause)}
	}
	if tsem := s.tenantSem(ns); tsem != nil {
		select {
		case tsem <- struct{}{}:
			defer func() { <-tsem }()
		case <-ctx.Done():
			return notStarted("", context.Cause(ctx))
		case <-s.done:
			return notStarted("server draining: ", context.Canceled)
		}
	}
	select {
	case s.sem <- struct{}{}:
		// A slot freed by a finishing cell can race the drain signal
		// (select picks arbitrarily among ready cases); re-check so a
		// draining server never starts queued work late.
		select {
		case <-s.done:
			<-s.sem
			return notStarted("server draining: ", context.Canceled)
		default:
		}
		dequeue()
	case <-ctx.Done():
		return notStarted("", context.Cause(ctx))
	case <-s.done:
		return notStarted("server draining: ", context.Canceled)
	}
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		<-s.sem
	}()
	res := s.runIsolated(ctx, spec)
	if res.Err == nil {
		s.simCycles.Add(res.Result.Cycles)
	}
	s.simWallNanos.Add(int64(res.Wall))
	return res
}

// runIsolated invokes the engine with a last-line panic barrier. The
// engine has its own crash isolation, but an injected RunFunc or a bug
// outside stash.Sweep's recover must still cost one cell, not the
// daemon: the panic becomes a structured CellError with the stack
// attached, and Wall is forced positive so Status() reports panic
// rather than not_started (a started-and-crashed cell must not be
// mistaken for one that is safe to transparently rerun).
func (s *Server) runIsolated(ctx context.Context, spec stash.RunSpec) (res stash.SweepResult) {
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			s.panicCells.Add(1)
			res = stash.SweepResult{Spec: spec, Wall: max(time.Since(start), 1), Err: &stash.CellError{
				Workload: spec.Workload,
				Org:      spec.Config.Org,
				Kind:     stash.FailPanic,
				Msg:      fmt.Sprint(p),
				Stack:    string(debug.Stack()),
			}}
		}
	}()
	return s.run(ctx, spec)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	// A tripped store breaker is degraded, not down: simulation and the
	// memory tier still serve, so the answer stays 200 (load balancers
	// keep routing) while the body tells operators why persistence is
	// off.
	if cs := s.cfg.Cache.Stats(); cs.BreakerState != cellcache.BreakerClosed {
		fmt.Fprintf(w, "{\"status\":\"degraded\",\"breaker\":%q}\n", breakerStateName(cs.BreakerState))
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func breakerStateName(state int) string {
	switch state {
	case cellcache.BreakerOpen:
		return "open"
	case cellcache.BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// compressionRatio is raw-payload bytes over stored (framed,
// compressed) bytes: >1 means the codec is winning; 1 when nothing has
// been stored yet.
func compressionRatio(raw, stored uint64) float64 {
	if stored == 0 {
		return 1
	}
	return float64(raw) / float64(stored)
}

// handleMetrics renders the counters in Prometheus text exposition
// format. Global counters are unlabeled (scrapable and greppable);
// the per-tenant series carry a namespace label.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cfg.Cache.Stats()
	simWall := time.Duration(s.simWallNanos.Load()).Seconds()
	cyclesPerSec := 0.0
	if simWall > 0 {
		cyclesPerSec = float64(s.simCycles.Load()) / simWall
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, m := range []struct {
		name string
		val  any
	}{
		{"stashd_cache_hits_total", cs.Hits},
		{"stashd_cache_misses_total", cs.Misses},
		{"stashd_cache_mem_hits_total", cs.MemHits},
		{"stashd_cache_disk_hits_total", cs.StoreHits},
		{"stashd_cache_singleflight_collapsed_total", cs.Collapsed},
		{"stashd_cache_evictions_total", cs.Evictions},
		{"stashd_cache_expired_total", cs.Expired},
		{"stashd_cache_mem_entries", cs.MemEntries},
		{"stashd_cache_mem_bytes", cs.MemBytes},
		{"stashd_cache_disk_entries", cs.StoreEntries},
		{"stashd_cache_raw_bytes_total", cs.BytesRaw},
		{"stashd_cache_stored_bytes_total", cs.BytesStored},
		{"stashd_cache_compression_ratio", compressionRatio(cs.BytesRaw, cs.BytesStored)},
		{"stashd_cache_remote_fills_total", cs.RemoteFills},
		{"stashd_cache_remote_misses_total", cs.RemoteMisses},
		{"stashd_cache_remote_errors_total", cs.RemoteErrors},
		{"stashd_cellframe_requests_total", s.frameReqs.Load()},
		{"stashd_cellframe_hits_total", s.frameHits.Load()},
		{"stashd_cache_put_errors_total", cs.PutErrors},
		{"stashd_cache_breaker_trips_total", cs.BreakerTrips},
		{"stashd_cache_breaker_state", cs.BreakerState},
		{"stashd_inflight_cells", s.inFlight.Load()},
		{"stashd_queue_depth", s.queueDepth.Load()},
		{"stashd_worker_slots", cap(s.sem)},
		{"stashd_sweep_requests_total", s.sweepReqs.Load()},
		{"stashd_cell_requests_total", s.cellReqs.Load()},
		{"stashd_bad_requests_total", s.badReqs.Load()},
		{"stashd_shed_requests_total", s.shedReqs.Load()},
		{"stashd_cells_simulated_total", s.cellsServed.Load()},
		{"stashd_cells_failed_total", s.cellsFailed.Load()},
		{"stashd_degraded_cells_total", s.degradedCells.Load()},
		{"stashd_panic_cells_total", s.panicCells.Load()},
		{"stashd_sim_cycles_total", s.simCycles.Load()},
		{"stashd_sim_wall_seconds_total", simWall},
		{"stashd_sim_cycles_per_sec", cyclesPerSec},
	} {
		switch v := m.val.(type) {
		case float64:
			fmt.Fprintf(w, "%s %g\n", m.name, v)
		default:
			fmt.Fprintf(w, "%s %d\n", m.name, v)
		}
	}
	byNS := s.cfg.Cache.Namespaces()
	names := make([]string, 0, len(byNS))
	for ns := range byNS {
		names = append(names, ns)
	}
	sort.Strings(names) // deterministic exposition order
	for _, ns := range names {
		n := byNS[ns]
		fmt.Fprintf(w, "stashd_ns_cache_hits_total{namespace=%q} %d\n", ns, n.Hits)
		fmt.Fprintf(w, "stashd_ns_cache_misses_total{namespace=%q} %d\n", ns, n.Misses)
		fmt.Fprintf(w, "stashd_ns_cache_raw_bytes_total{namespace=%q} %d\n", ns, n.BytesRaw)
		fmt.Fprintf(w, "stashd_ns_cache_stored_bytes_total{namespace=%q} %d\n", ns, n.BytesStored)
		fmt.Fprintf(w, "stashd_ns_cache_compression_ratio{namespace=%q} %g\n", ns, compressionRatio(n.BytesRaw, n.BytesStored))
	}
}
