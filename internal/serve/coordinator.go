package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"stash"
	"stash/internal/cluster"
)

// CoordinatorConfig configures a cluster Coordinator front.
type CoordinatorConfig struct {
	// Cluster routes and dispatches cells over the shard ring. Required.
	Cluster *cluster.Coordinator
	// MaxCells bounds one sweep request's grid, exactly as on a node.
	// Zero selects the node default.
	MaxCells int
	// MaxDeadline clamps the X-Stashd-Deadline header forwarded to
	// shards (and is forwarded on its own when the header is absent).
	// Zero forwards the client's header unclamped.
	MaxDeadline time.Duration
}

// Coordinator is the cluster-mode request handler: the same API
// surface as a node Server (clients cannot tell them apart), but every
// cell is routed to the shard owning its fingerprint and the merged
// NDJSON stream comes back in spec order, byte-identical to a
// single-node run. The coordinator holds no cache and runs no
// simulations — shards do both; it only validates, routes, merges, and
// re-routes around failures (see cluster.Coordinator).
type Coordinator struct {
	cfg CoordinatorConfig

	draining  atomic.Bool
	sweepReqs atomic.Uint64
	cellReqs  atomic.Uint64
	badReqs   atomic.Uint64
}

// NewCoordinator builds the HTTP front over a cluster dispatcher.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.MaxCells == 0 {
		cfg.MaxCells = defaultMaxCells
	}
	return &Coordinator{cfg: cfg}
}

// Handler routes the coordinator's API surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	mux.HandleFunc("GET /v1/cell", c.handleCell)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

// Drain flips /healthz to 503 so load balancers stop routing here
// while in-flight dispatches finish.
func (c *Coordinator) Drain() { c.draining.Store(true) }

// forwardHeader assembles the headers every shard request carries: the
// client's Authorization token (tenant namespaces must mean the same
// thing on every shard) and the simulation budget — the client's
// X-Stashd-Deadline clamped by MaxDeadline, or MaxDeadline alone. The
// coordinator deliberately sets no local timeout: shards enforce the
// budget and resolve overruns into the same structured canceled lines
// a single node would stream, preserving byte identity.
func (c *Coordinator) forwardHeader(w http.ResponseWriter, r *http.Request) (http.Header, bool) {
	h := make(http.Header)
	if auth := r.Header.Get("Authorization"); auth != "" {
		h.Set("Authorization", auth)
	}
	d := c.cfg.MaxDeadline
	if v := strings.TrimSpace(r.Header.Get(deadlineHeader)); v != "" {
		req, err := time.ParseDuration(v)
		if err != nil || req <= 0 {
			failWith(w, &c.badReqs, http.StatusBadRequest, nil,
				"invalid %s %q: want a positive Go duration like 30s", deadlineHeader, v)
			return nil, false
		}
		if d == 0 || req < d {
			d = req
		}
	}
	if d > 0 {
		h.Set(deadlineHeader, d.String())
	}
	return h, true
}

// handleSweep validates the grid exactly as a node would, then streams
// the cluster-merged NDJSON body: one line per cell in spec order,
// flushed as each cell settles.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	c.sweepReqs.Add(1)
	specs, ok := parseSweepRequest(w, r, c.cfg.MaxCells, &c.badReqs)
	if !ok {
		return
	}
	header, ok := c.forwardHeader(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Stashd-Cells", strconv.Itoa(len(specs)))
	flusher, _ := w.(http.Flusher)
	// Dispatch under the request context: a vanished client cancels
	// every in-flight shard sub-sweep. Errors after the first byte can
	// only cut the stream short, exactly as on a node.
	c.cfg.Cluster.Dispatch(r.Context(), header, specs, func(_ int, line []byte) error { //nolint:errcheck
		if _, err := w.Write(line); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

// handleCell routes one cell to its owning shard and relays the line.
func (c *Coordinator) handleCell(w http.ResponseWriter, r *http.Request) {
	c.cellReqs.Add(1)
	spec, ok := parseCellQuery(w, r, &c.badReqs)
	if !ok {
		return
	}
	header, ok := c.forwardHeader(w, r)
	if !ok {
		return
	}
	var line []byte
	err := c.cfg.Cluster.Dispatch(r.Context(), header, []stash.RunSpec{spec},
		func(_ int, l []byte) error { line = l; return nil })
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		failWith(w, &c.badReqs, http.StatusInternalServerError, nil, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(line)
	io.WriteString(w, "\n")
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if c.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintf(w, "{\"status\":\"ok\",\"role\":\"coordinator\",\"shards\":%d}\n",
		len(c.cfg.Cluster.Ring().Members()))
}

// handleMetrics renders the coordinator's counters in Prometheus text
// format: dispatch volume, failure handling (hedges, re-dispatches,
// shard failures, backoffs), and first-dispatch routing per shard.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := c.cfg.Cluster.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, m := range []struct {
		name string
		val  uint64
	}{
		{"stashd_coord_sweep_requests_total", c.sweepReqs.Load()},
		{"stashd_coord_cell_requests_total", c.cellReqs.Load()},
		{"stashd_coord_bad_requests_total", c.badReqs.Load()},
		{"stashd_coord_cells_total", st.Cells},
		{"stashd_coord_hedged_cells_total", st.Hedged},
		{"stashd_coord_hedge_wins_total", st.HedgeWins},
		{"stashd_coord_redispatched_cells_total", st.Redispatched},
		{"stashd_coord_shard_failures_total", st.ShardFailures},
		{"stashd_coord_backoffs_total", st.Backoffs},
		{"stashd_coord_shards", uint64(len(st.Shards))},
	} {
		fmt.Fprintf(w, "%s %d\n", m.name, m.val)
	}
	for _, shard := range st.Shards { // ring order: deterministic exposition
		fmt.Fprintf(w, "stashd_coord_shard_cells_total{shard=%q} %d\n", shard, st.Routed[shard])
	}
}
