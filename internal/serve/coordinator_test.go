package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stash"
	"stash/internal/cluster"
)

// Shard health modes for the chaos wrapper in front of a test shard.
const (
	shardHealthy  = iota
	shardCutFirst // stream one line of the next sweep, then die
	shardDead     // every sweep answers 503
)

// testShard is one cluster member: a real node Server with an
// injectable engine, fronted by a wrapper that can simulate shard
// death mid-stream.
type testShard struct {
	eng  *fakeEngine
	ts   *httptest.Server
	mode atomic.Int32
}

// cutAfterLines aborts the response after limit NDJSON lines — a shard
// dying mid-stream, as the client sees it.
type cutAfterLines struct {
	http.ResponseWriter
	lines, limit int
}

func (c *cutAfterLines) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.lines += bytes.Count(p[:n], []byte("\n"))
	if c.lines >= c.limit {
		c.Flush()
		panic(http.ErrAbortHandler)
	}
	return n, err
}

func (c *cutAfterLines) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func newTestShard(t *testing.T, eng *fakeEngine) *testShard {
	t.Helper()
	sh := &testShard{eng: eng}
	_, inner := newTestServer(t, Config{Run: eng.run})
	h := inner.Config.Handler // httptest exposes the handler via Config
	sh.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == "POST" {
			switch sh.mode.Load() {
			case shardDead:
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, `{"error":"shard killed"}`)
				return
			case shardCutFirst:
				sh.mode.Store(shardDead)
				h.ServeHTTP(&cutAfterLines{ResponseWriter: w, limit: 1}, r)
				return
			}
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(sh.ts.Close)
	return sh
}

// newCluster boots n shards plus the coordinator front.
func newCluster(t *testing.T, n int, engs []*fakeEngine, opts cluster.Options) ([]*testShard, *cluster.Coordinator, *httptest.Server) {
	t.Helper()
	shards := make([]*testShard, n)
	urls := make([]string, n)
	for i := range shards {
		shards[i] = newTestShard(t, engs[i])
		urls[i] = shards[i].ts.URL
	}
	if opts.ShardAttempts == 0 {
		opts.ShardAttempts = 1
	}
	if opts.Backoff == 0 {
		opts.Backoff = 10 * time.Millisecond
	}
	coord, err := cluster.New(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewCoordinator(CoordinatorConfig{Cluster: coord}).Handler())
	t.Cleanup(front.Close)
	return shards, coord, front
}

const gridBody = `{"workloads":["lud","nw","sgemm","backprop","surf","pathfinder"],"orgs":["Scratch","Stash"]}`

func gridSpecs() []stash.RunSpec {
	return stash.Grid([]string{"lud", "nw", "sgemm", "backprop", "surf", "pathfinder"},
		[]stash.MemOrg{stash.Scratch, stash.Stash})
}

// singleNodeBody runs the grid on a fresh one-node server with the
// same deterministic engine — the byte-identity reference.
func singleNodeBody(t *testing.T, body string) string {
	t.Helper()
	_, ts := newTestServer(t, Config{Run: (&fakeEngine{}).run})
	resp, got := postSweep(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node sweep: HTTP %d: %s", resp.StatusCode, got)
	}
	return got
}

// TestClusterByteIdentity is the tentpole acceptance test: a 3-shard
// cluster's merged sweep stream is byte-identical to a single node's,
// in spec order; the repeat run is served entirely from shard caches
// (zero new simulations); and the coordinator metrics account every
// cell.
func TestClusterByteIdentity(t *testing.T) {
	engs := []*fakeEngine{{}, {}, {}}
	shards, coord, front := newCluster(t, 3, engs, cluster.Options{})

	want := singleNodeBody(t, gridBody)
	resp, got := postSweep(t, front, gridBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster sweep: HTTP %d: %s", resp.StatusCode, got)
	}
	if got != want {
		t.Fatalf("cluster stream is not byte-identical to single node:\ncluster:\n%s\nsingle:\n%s", got, want)
	}
	if n := resp.Header.Get("X-Stashd-Cells"); n != "12" {
		t.Errorf("X-Stashd-Cells = %q, want 12", n)
	}
	sims := int64(0)
	for _, sh := range shards {
		sims += sh.eng.calls.Load()
	}
	if sims != 12 {
		t.Errorf("%d simulations across shards, want exactly 12 (each cell on exactly one shard)", sims)
	}

	// Repeat: all shard cache hits, still byte-identical.
	_, got2 := postSweep(t, front, gridBody)
	if got2 != want {
		t.Fatal("repeat cluster sweep drifted from single-node bytes")
	}
	again := int64(0)
	for _, sh := range shards {
		again += sh.eng.calls.Load()
	}
	if again != sims {
		t.Errorf("repeat sweep ran %d new simulations, want 0 (cache replay)", again-sims)
	}

	st := coord.Stats()
	if st.Cells != 24 {
		t.Errorf("Stats.Cells = %d, want 24 across both sweeps", st.Cells)
	}
	routed := uint64(0)
	for _, n := range st.Routed {
		routed += n
	}
	if routed != 24 {
		t.Errorf("per-shard routed cells sum to %d, want 24", routed)
	}
	if st.Redispatched != 0 || st.Hedged != 0 {
		t.Errorf("healthy cluster reported failures: %+v", st)
	}
	if v := metric(t, front, "stashd_coord_cells_total"); v != 24 {
		t.Errorf("stashd_coord_cells_total = %g, want 24", v)
	}
	if v := metric(t, front, "stashd_coord_shards"); v != 3 {
		t.Errorf("stashd_coord_shards = %g, want 3", v)
	}
}

// TestClusterShardDeath kills one shard mid-stream (one line served,
// then connection cut, then 503s): every unfinished cell re-dispatches
// to its ring successor, the merged output stays complete and
// byte-identical, and the re-dispatch counters show the failover.
func TestClusterShardDeath(t *testing.T) {
	engs := []*fakeEngine{{}, {}, {}}
	shards, coord, front := newCluster(t, 3, engs, cluster.Options{})

	// Kill whichever shard owns the most cells, so the mid-stream cut
	// (one line, then dead) is guaranteed to strand at least one cell.
	ring := coord.Ring()
	byShard := make(map[string]int)
	for _, spec := range gridSpecs() {
		fp, err := spec.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		byShard[ring.Owner(fp)]++
	}
	victim, most := 0, 0
	for i, sh := range shards {
		if n := byShard[sh.ts.URL]; n > most {
			victim, most = i, n
		}
	}
	if most < 2 {
		t.Fatalf("no shard owns >= 2 of the 12 cells (distribution %v)", byShard)
	}
	shards[victim].mode.Store(shardCutFirst)

	want := singleNodeBody(t, gridBody)
	resp, got := postSweep(t, front, gridBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster sweep with dead shard: HTTP %d", resp.StatusCode)
	}
	if got != want {
		t.Fatalf("merged stream after shard death is not byte-identical:\ncluster:\n%s\nsingle:\n%s", got, want)
	}
	st := coord.Stats()
	if st.Redispatched == 0 || st.ShardFailures == 0 {
		t.Errorf("shard death left no failover trace: %+v", st)
	}
	if v := metric(t, front, "stashd_coord_redispatched_cells_total"); v == 0 {
		t.Error("stashd_coord_redispatched_cells_total = 0 after a shard died")
	}
}

// TestClusterAllShardsDead pins the worst case: with every shard down,
// the stream still carries one structured failure line per cell —
// complete, in order, never truncated.
func TestClusterAllShardsDead(t *testing.T) {
	engs := []*fakeEngine{{}, {}}
	shards, _, front := newCluster(t, 2, engs, cluster.Options{})
	for _, sh := range shards {
		sh.mode.Store(shardDead)
	}
	resp, got := postSweep(t, front, gridBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 12 {
		t.Fatalf("got %d lines, want 12 structured failures", len(lines))
	}
	for i, line := range lines {
		var res stash.SweepResult
		if err := res.UnmarshalJSON([]byte(line)); err != nil {
			t.Fatalf("line %d does not decode: %v", i, err)
		}
		if res.Err == nil {
			t.Fatalf("line %d reports success with every shard dead: %s", i, line)
		}
	}
}

// blockingEngine serves deterministic results except for specs it is
// told to straggle on, which hang until the request is canceled.
type blockingEngine struct {
	fakeEngine
	mu    sync.Mutex
	stuck map[string]bool
}

func (b *blockingEngine) run(ctx context.Context, spec stash.RunSpec) stash.SweepResult {
	b.mu.Lock()
	stuck := b.stuck[spec.String()]
	b.mu.Unlock()
	if stuck {
		<-ctx.Done()
		return stash.SweepResult{Spec: spec, Wall: time.Nanosecond,
			Err: fmt.Errorf("stash: %s canceled: %w", spec, context.Cause(ctx))}
	}
	return b.fakeEngine.run(ctx, spec)
}

// TestClusterHedging pins straggler handling: a shard that hangs on
// one cell gets hedged after HedgeAfter, the ring successor's result
// wins, the loser is canceled, and the merged output is still
// byte-identical to a single-node run.
func TestClusterHedging(t *testing.T) {
	blocker := &blockingEngine{stuck: make(map[string]bool)}
	clean := []*fakeEngine{{}, {}, {}}
	shards := make([]*testShard, 3)
	urls := make([]string, 3)
	for i := range shards {
		eng := clean[i].run
		if i == 0 {
			eng = blocker.run
		}
		sh := &testShard{}
		_, inner := newTestServer(t, Config{Run: eng})
		sh.ts = httptest.NewServer(inner.Config.Handler)
		t.Cleanup(sh.ts.Close)
		shards[i], urls[i] = sh, sh.ts.URL
	}
	coord, err := cluster.New(urls, cluster.Options{
		ShardAttempts: 1,
		HedgeAfter:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewCoordinator(CoordinatorConfig{Cluster: coord}).Handler())
	t.Cleanup(front.Close)

	// Straggle every cell shard 0 owns: its whole sub-sweep hangs, and
	// only hedges to the ring successors can complete those cells.
	ring := coord.Ring()
	strandable := 0
	for _, spec := range gridSpecs() {
		fp, err := spec.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(fp) == urls[0] {
			blocker.mu.Lock()
			blocker.stuck[spec.String()] = true
			blocker.mu.Unlock()
			strandable++
		}
	}
	if strandable == 0 {
		t.Skipf("shard 0 owns no cells of this grid (port-dependent routing); nothing to straggle")
	}

	want := singleNodeBody(t, gridBody)
	resp, got := postSweep(t, front, gridBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if got != want {
		t.Fatalf("hedged stream is not byte-identical:\ncluster:\n%s\nsingle:\n%s", got, want)
	}
	st := coord.Stats()
	if st.Hedged == 0 || st.HedgeWins == 0 {
		t.Errorf("straggling shard produced no hedges: %+v", st)
	}
	if v := metric(t, front, "stashd_coord_hedge_wins_total"); v == 0 {
		t.Error("stashd_coord_hedge_wins_total = 0 after hedged straggler")
	}
}

// TestCluster429Backoff pins Retry-After propagation: a shard that
// sheds with 429 makes the coordinator back off and resubmit rather
// than fail over or drop cells.
func TestCluster429Backoff(t *testing.T) {
	eng := &fakeEngine{}
	_, inner := newTestServer(t, Config{Run: eng.run})
	var shed atomic.Bool
	h := inner.Config.Handler
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == "POST" && shed.CompareAndSwap(false, true) {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"overloaded"}`)
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	coord, err := cluster.New([]string{ts.URL}, cluster.Options{ShardAttempts: 3, Backoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewCoordinator(CoordinatorConfig{Cluster: coord}).Handler())
	t.Cleanup(front.Close)

	want := singleNodeBody(t, gridBody)
	resp, got := postSweep(t, front, gridBody)
	if resp.StatusCode != http.StatusOK || got != want {
		t.Fatalf("sweep through shedding shard: HTTP %d, identical=%v", resp.StatusCode, got == want)
	}
	if st := coord.Stats(); st.Backoffs == 0 {
		t.Errorf("429 produced no coordinator backoff: %+v", st)
	}
}

// TestCoordinatorCellEndpoint pins that GET /v1/cell through the
// coordinator answers with node-identical bytes and node-identical
// validation.
func TestCoordinatorCellEndpoint(t *testing.T) {
	engs := []*fakeEngine{{}, {}}
	_, _, front := newCluster(t, 2, engs, cluster.Options{})
	_, node := newTestServer(t, Config{Run: (&fakeEngine{}).run})

	const q = "/v1/cell?workload=implicit&org=Stash"
	get := func(ts string) (int, string) {
		resp, err := http.Get(ts + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b := new(strings.Builder)
		if _, err := io.Copy(b, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b.String()
	}
	codeC, bodyC := get(front.URL)
	codeN, bodyN := get(node.URL)
	if codeC != http.StatusOK || codeN != http.StatusOK || bodyC != bodyN {
		t.Fatalf("coordinator cell (HTTP %d) differs from node (HTTP %d):\n%s\n%s", codeC, codeN, bodyC, bodyN)
	}

	resp, err := http.Get(front.URL + "/v1/cell?workload=nope&org=Stash")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid workload through coordinator: HTTP %d, want 400", resp.StatusCode)
	}
	if v := metric(t, front, "stashd_coord_bad_requests_total"); v == 0 {
		t.Error("stashd_coord_bad_requests_total = 0 after a 400")
	}
}

// TestCoordinatorForwardsDeadline pins the budget clamp: the client's
// X-Stashd-Deadline is forwarded to shards clamped by MaxDeadline, and
// an invalid header is a 400 before anything is dispatched.
func TestCoordinatorForwardsDeadline(t *testing.T) {
	var gotDeadline atomic.Value
	shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotDeadline.Store(r.Header.Get(deadlineHeader))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable) // no cells needed; header is the point
		fmt.Fprintln(w, `{"error":"nope"}`)
	}))
	t.Cleanup(shard.Close)
	coord, err := cluster.New([]string{shard.URL}, cluster.Options{ShardAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewCoordinator(CoordinatorConfig{
		Cluster: coord, MaxDeadline: 5 * time.Second,
	}).Handler())
	t.Cleanup(front.Close)

	req, _ := http.NewRequest("POST", front.URL+"/v1/sweep", strings.NewReader(oneCellBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(deadlineHeader, "1h") // above the clamp
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d, _ := gotDeadline.Load().(string); d != "5s" {
		t.Errorf("shard saw %s %q, want clamped 5s", deadlineHeader, d)
	}

	req, _ = http.NewRequest("POST", front.URL+"/v1/sweep", strings.NewReader(oneCellBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(deadlineHeader, "yesterday")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid deadline header: HTTP %d, want 400", resp.StatusCode)
	}
}
