package cliutil

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"stash"
)

// submitServer is a scripted stashd stand-in: each round's handler
// consumes one entry from script, and every decoded request body is
// recorded so tests can assert exactly which cells were resubmitted.
type submitServer struct {
	t      *testing.T
	mu     sync.Mutex
	rounds [][]stash.RunSpec
	script []func(w http.ResponseWriter, specs []stash.RunSpec)
}

func (s *submitServer) handler(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Specs []stash.RunSpec `json:"specs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.t.Errorf("bad request body: %v", err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.rounds = append(s.rounds, req.Specs)
	n := len(s.rounds) - 1
	s.mu.Unlock()
	if n >= len(s.script) {
		s.t.Errorf("unexpected round %d (script has %d)", n, len(s.script))
		http.Error(w, "off script", http.StatusInternalServerError)
		return
	}
	s.script[n](w, req.Specs)
}

func (s *submitServer) roundCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rounds)
}

func (s *submitServer) round(i int) []stash.RunSpec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds[i]
}

func okLine(t *testing.T, w http.ResponseWriter, spec stash.RunSpec) {
	t.Helper()
	res := stash.SweepResult{
		Spec:     spec,
		Result:   stash.Result{Cycles: 500 + uint64(len(spec.Workload))},
		Wall:     time.Millisecond,
		Attempts: 1,
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Error(err)
		panic(http.ErrAbortHandler)
	}
	w.Write(append(raw, '\n'))
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

func testSpecs() []stash.RunSpec {
	return []stash.RunSpec{
		{Workload: "implicit", Config: stash.Config{Org: stash.Stash, GPUs: 1, CPUs: 15}},
		{Workload: "reuse", Config: stash.Config{Org: stash.Stash, GPUs: 1, CPUs: 15}},
		{Workload: "lud", Config: stash.Config{Org: stash.Stash, GPUs: 1, CPUs: 15}},
	}
}

// recordedSleep returns a sleep hook that never sleeps but records
// every requested delay.
func recordedSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	var mu sync.Mutex
	return func(_ context.Context, d time.Duration) error {
		mu.Lock()
		defer mu.Unlock()
		*delays = append(*delays, d)
		return nil
	}
}

// TestSubmitSweepResumesAfterCut: the daemon drops the connection
// after streaming two of three cells; the client resubmits only the
// missing cell and assembles a complete, in-order result set.
func TestSubmitSweepResumesAfterCut(t *testing.T) {
	specs := testSpecs()
	srv := &submitServer{t: t}
	srv.script = []func(http.ResponseWriter, []stash.RunSpec){
		func(w http.ResponseWriter, got []stash.RunSpec) {
			if len(got) != 3 {
				t.Errorf("round 0 got %d specs, want 3", len(got))
			}
			okLine(t, w, got[0])
			okLine(t, w, got[1])
			panic(http.ErrAbortHandler) // cut mid-stream
		},
		func(w http.ResponseWriter, got []stash.RunSpec) {
			for _, sp := range got {
				okLine(t, w, sp)
			}
		},
	}
	ts := httptest.NewServer(http.HandlerFunc(srv.handler))
	defer ts.Close()

	var delays []time.Duration
	results, err := SubmitSweepOpts(context.Background(), ts.URL, specs, nil,
		SubmitOptions{sleep: recordedSleep(&delays)})
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	if srv.roundCount() != 2 {
		t.Fatalf("rounds = %d, want 2", srv.roundCount())
	}
	if resub := srv.round(1); len(resub) != 1 || resub[0].Workload != "lud" {
		t.Errorf("round 1 resubmitted %v, want just lud", resub)
	}
	if len(delays) != 1 {
		t.Errorf("slept %d times, want 1", len(delays))
	}
	for i, r := range results {
		if r.Status() != stash.StatusOK {
			t.Errorf("cell %d = %s, want ok", i, r.Status())
		}
		if r.Spec.Workload != specs[i].Workload {
			t.Errorf("cell %d is %s, want %s (order lost)", i, r.Spec, specs[i])
		}
	}
}

// TestSubmitSweepHonorsRetryAfter: a 429's Retry-After overrides the
// computed backoff for that round.
func TestSubmitSweepHonorsRetryAfter(t *testing.T) {
	specs := testSpecs()[:1]
	srv := &submitServer{t: t}
	srv.script = []func(http.ResponseWriter, []stash.RunSpec){
		func(w http.ResponseWriter, _ []stash.RunSpec) {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"server overloaded: 9 cells queued"}`)
		},
		func(w http.ResponseWriter, got []stash.RunSpec) {
			for _, sp := range got {
				okLine(t, w, sp)
			}
		},
	}
	ts := httptest.NewServer(http.HandlerFunc(srv.handler))
	defer ts.Close()

	var delays []time.Duration
	results, err := SubmitSweepOpts(context.Background(), ts.URL, specs, nil,
		SubmitOptions{sleep: recordedSleep(&delays)})
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	if len(delays) != 1 || delays[0] != 7*time.Second {
		t.Errorf("delays = %v, want exactly [7s]", delays)
	}
	if results[0].Status() != stash.StatusOK {
		t.Errorf("cell = %s, want ok", results[0].Status())
	}
}

// TestSubmitSweepPermanentError: a 4xx rejection is not retried — one
// request, immediate error carrying the daemon's message.
func TestSubmitSweepPermanentError(t *testing.T) {
	srv := &submitServer{t: t}
	srv.script = []func(http.ResponseWriter, []stash.RunSpec){
		func(w http.ResponseWriter, _ []stash.RunSpec) {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprintln(w, `{"error":"unknown workload \"nope\""}`)
		},
	}
	ts := httptest.NewServer(http.HandlerFunc(srv.handler))
	defer ts.Close()

	var delays []time.Duration
	_, err := SubmitSweepOpts(context.Background(), ts.URL, testSpecs(), nil,
		SubmitOptions{sleep: recordedSleep(&delays)})
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("err = %v, want the daemon's message", err)
	}
	if srv.roundCount() != 1 {
		t.Errorf("rounds = %d, want 1 (no retry on 400)", srv.roundCount())
	}
	if len(delays) != 0 {
		t.Errorf("slept %v before a permanent error", delays)
	}
}

// TestSubmitSweepGivesUpAfterAttempts: a daemon that serves one cell
// per connection before dropping it. Three attempts are enough to
// collect three cells (each round resumes where the last cut off);
// two attempts are not, and the unreceived cell carries a structured
// error naming the budget while received cells are kept.
func TestSubmitSweepGivesUpAfterAttempts(t *testing.T) {
	specs := testSpecs()
	cut := func(w http.ResponseWriter, got []stash.RunSpec) {
		okLine(t, w, got[0]) // always one cell, then drop
		panic(http.ErrAbortHandler)
	}

	srv := &submitServer{t: t}
	srv.script = []func(http.ResponseWriter, []stash.RunSpec){cut, cut, cut}
	ts := httptest.NewServer(http.HandlerFunc(srv.handler))
	defer ts.Close()
	var delays []time.Duration
	results, err := SubmitSweepOpts(context.Background(), ts.URL, specs, nil,
		SubmitOptions{Attempts: 3, sleep: recordedSleep(&delays)})
	if err != nil {
		t.Fatalf("three rounds of one cell each should assemble the sweep: %v", err)
	}
	if srv.roundCount() != 3 {
		t.Errorf("rounds = %d, want 3", srv.roundCount())
	}
	for i, r := range results {
		if r.Status() != stash.StatusOK {
			t.Errorf("cell %d = %s, want ok", i, r.Status())
		}
	}

	srv2 := &submitServer{t: t}
	srv2.script = []func(http.ResponseWriter, []stash.RunSpec){cut, cut}
	ts2 := httptest.NewServer(http.HandlerFunc(srv2.handler))
	defer ts2.Close()
	results, err = SubmitSweepOpts(context.Background(), ts2.URL, specs, nil,
		SubmitOptions{Attempts: 2, sleep: recordedSleep(&delays)})
	if err == nil || !strings.Contains(err.Error(), "not received after 2 attempts") {
		t.Fatalf("err = %v, want a not-received error naming the budget", err)
	}
	if results[0].Status() != stash.StatusOK || results[1].Status() != stash.StatusOK {
		t.Errorf("received cells lost: %s, %s", results[0].Status(), results[1].Status())
	}
	if results[2].Err == nil || !strings.Contains(results[2].Err.Error(), "not received") {
		t.Errorf("cell 2 error = %v, want not-received", results[2].Err)
	}
}

// TestSubmitSweepRerequestsNotStarted: cells a draining daemon reports
// as never started are re-requested while attempts remain — nothing
// ran, so a rerun cannot contradict anything observed.
func TestSubmitSweepRerequestsNotStarted(t *testing.T) {
	specs := testSpecs()
	srv := &submitServer{t: t}
	srv.script = []func(http.ResponseWriter, []stash.RunSpec){
		func(w http.ResponseWriter, got []stash.RunSpec) {
			okLine(t, w, got[0])
			// The daemon drained: remaining cells stream as structured
			// not_started lines, stream intact.
			for _, sp := range got[1:] {
				raw, err := json.Marshal(stash.SweepResult{Spec: sp,
					Err: fmt.Errorf("stash: %s not started: server draining: %w", sp, context.Canceled)})
				if err != nil {
					t.Error(err)
					panic(http.ErrAbortHandler)
				}
				w.Write(append(raw, '\n'))
			}
		},
		func(w http.ResponseWriter, got []stash.RunSpec) {
			for _, sp := range got {
				okLine(t, w, sp)
			}
		},
	}
	ts := httptest.NewServer(http.HandlerFunc(srv.handler))
	defer ts.Close()

	var delays []time.Duration
	results, err := SubmitSweepOpts(context.Background(), ts.URL, specs, nil,
		SubmitOptions{sleep: recordedSleep(&delays)})
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	if srv.roundCount() != 2 {
		t.Fatalf("rounds = %d, want 2", srv.roundCount())
	}
	if resub := srv.round(1); len(resub) != 2 ||
		resub[0].Workload != "reuse" || resub[1].Workload != "lud" {
		t.Errorf("round 1 resubmitted %v, want the two not-started cells", resub)
	}
	for i, r := range results {
		if r.Status() != stash.StatusOK {
			t.Errorf("cell %d = %s, want ok", i, r.Status())
		}
	}
}

// TestSubmitSweepProgressIndices: progress events carry original sweep
// indices and a monotonically complete done count even when cells
// arrive across resumed rounds.
func TestSubmitSweepProgressIndices(t *testing.T) {
	specs := testSpecs()
	srv := &submitServer{t: t}
	srv.script = []func(http.ResponseWriter, []stash.RunSpec){
		func(w http.ResponseWriter, got []stash.RunSpec) {
			okLine(t, w, got[0])
			okLine(t, w, got[1])
			panic(http.ErrAbortHandler)
		},
		func(w http.ResponseWriter, got []stash.RunSpec) {
			for _, sp := range got {
				okLine(t, w, sp)
			}
		},
	}
	ts := httptest.NewServer(http.HandlerFunc(srv.handler))
	defer ts.Close()

	var events []stash.SweepEvent
	var delays []time.Duration
	_, err := SubmitSweepOpts(context.Background(), ts.URL, specs,
		func(ev stash.SweepEvent) { events = append(events, ev) },
		SubmitOptions{sleep: recordedSleep(&delays)})
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d progress events, want 3", len(events))
	}
	wantIdx := []int{0, 1, 2}
	for i, ev := range events {
		if ev.Index != wantIdx[i] || ev.Done != i+1 || ev.Total != 3 {
			t.Errorf("event %d = index %d done %d/%d, want index %d done %d/3",
				i, ev.Index, ev.Done, ev.Total, wantIdx[i], i+1)
		}
	}
}
