// Package cliutil holds the flag plumbing shared by the repo's
// binaries: sweep execution flags (-j, -json, -server), workload/org
// list expansion, JSON and trace emission, and -version reporting —
// logic that used to be duplicated between cmd/stashsim and
// cmd/paperfigs.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"stash"
)

// Version renders the binary's build identity: module version when
// built from a tagged module, plus the VCS revision and dirty flag the
// Go toolchain stamps into the build info.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown (built without module support)"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = " (modified)"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		return fmt.Sprintf("%s %s%s %s", v, rev, modified, bi.GoVersion)
	}
	return fmt.Sprintf("%s %s", v, bi.GoVersion)
}

// VersionFlag registers -version on the default flag set. Call the
// returned function after flag.Parse: it prints and exits when the
// flag was given.
func VersionFlag() func() {
	show := flag.Bool("version", false, "print the build version and exit")
	return func() {
		if *show {
			fmt.Println(Version())
			os.Exit(0)
		}
	}
}

// SweepFlags is the sweep-execution flag block shared by stashsim and
// paperfigs: worker count, raw-JSON output, and the daemon submission
// mode.
type SweepFlags struct {
	Jobs    int
	JSONOut string
	Server  string
}

// Register installs the shared flags on the default flag set.
func (f *SweepFlags) Register() {
	flag.IntVar(&f.Jobs, "j", runtime.GOMAXPROCS(0), "concurrent simulations (1 = serial); ignored with -server")
	flag.StringVar(&f.JSONOut, "json", "", "also write raw sweep results as JSON to this file (\"-\" for stdout)")
	flag.StringVar(&f.Server, "server", "", "submit the sweep to a running stashd at this base URL (e.g. http://localhost:8341) instead of simulating locally")
}

// Run executes the sweep: locally over stash.Sweep, or — with -server —
// by submitting the specs to a stashd daemon, which serves repeated
// cells from its content-addressed cache without re-simulating. The
// result slice and error contract match stash.Sweep.
func (f *SweepFlags) Run(ctx context.Context, specs []stash.RunSpec, opts stash.SweepOptions) ([]stash.SweepResult, error) {
	if f.Server != "" {
		return SubmitSweep(ctx, f.Server, specs, opts.Progress)
	}
	opts.Workers = f.Jobs
	return stash.Sweep(ctx, specs, opts)
}

// ReportWall prints the standard per-sweep wall-time line to stderr.
func (f *SweepFlags) ReportWall(prefix string, cells int, elapsed time.Duration) {
	where := fmt.Sprintf("%d workers", f.Jobs)
	if f.Server != "" {
		where = f.Server
	}
	fmt.Fprintf(os.Stderr, "%s%d simulations on %s in %v\n",
		prefix, cells, where, elapsed.Round(time.Millisecond))
}

// WriteJSON writes results as one EncodeJSON document to path ("-" for
// stdout), exiting on I/O failure like the CLIs always have.
func WriteJSON(path string, results []stash.SweepResult) {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := stash.EncodeJSON(out, results); err != nil {
		log.Fatal(err)
	}
}

// WriteTimeline writes one cell's trace to path in the named format
// ("chrome" or "binary").
func WriteTimeline(path, format string, tl *stash.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if format == "binary" {
		err = tl.WriteBinary(f)
	} else {
		err = tl.WriteChrome(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing trace %s: %w", path, err)
	}
	return nil
}

// TraceExt maps a -trace-format value to its file extension, or exits
// with a usage error for an unknown format.
func TraceExt(format string) string {
	switch format {
	case "chrome":
		return ".json"
	case "binary":
		return ".trace"
	}
	fmt.Fprintf(os.Stderr, "unknown -trace-format %q (want chrome or binary)\n", format)
	os.Exit(2)
	return ""
}

// ExpandWorkloads expands a -workload argument: a comma-separated
// list, or the keywords all, micro, apps.
func ExpandWorkloads(arg string) []string {
	switch arg {
	case "all":
		return stash.Workloads()
	case "micro":
		return stash.Microbenchmarks()
	case "apps":
		return stash.Applications()
	}
	return strings.Split(arg, ",")
}

// ExpandOrgs expands a -org argument: a comma-separated list of
// organization names, or the keyword all.
func ExpandOrgs(arg string) ([]stash.MemOrg, error) {
	if arg == "all" {
		return stash.Orgs(), nil
	}
	var orgs []stash.MemOrg
	for _, name := range strings.Split(arg, ",") {
		org, err := stash.ParseMemOrg(name)
		if err != nil {
			return nil, err
		}
		orgs = append(orgs, org)
	}
	return orgs, nil
}
