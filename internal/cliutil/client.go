package cliutil

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"stash"
)

// SubmitOptions tunes SubmitSweep's resilience against a daemon that
// sheds, drains, or drops the connection mid-stream. The zero value
// selects the defaults.
type SubmitOptions struct {
	// Attempts is the total number of submission rounds, the first
	// included. Zero selects 4; 1 disables resumption.
	Attempts int
	// Backoff is the base delay between rounds, doubled per round and
	// jittered ±25%. Zero selects 500ms. A 429's Retry-After overrides
	// the computed delay for that round.
	Backoff time.Duration
	// Client overrides http.DefaultClient.
	Client *http.Client
	// Header is merged into every submission round's request headers —
	// how the cluster coordinator forwards a client's Authorization
	// token (tenant namespace) and clamped X-Stashd-Deadline budget to
	// the shards it dispatches to.
	Header http.Header
	// OnResult, when non-nil, observes every cell line as it is
	// received: index is the cell's position in the submitted spec
	// slice, res the decoded result, and line the verbatim NDJSON bytes
	// (the daemon's cached byte image — callers may retain the slice).
	// It can fire more than once for a cell when a never-started cell
	// is re-requested on a later round; it never fires for cells no
	// round ever received.
	OnResult func(index int, res stash.SweepResult, line []byte)
	// OnBackoff, when non-nil, observes each inter-round wait before it
	// starts: the delay about to be slept (a 429's Retry-After when the
	// daemon advertised one) and the error that caused the retry.
	OnBackoff func(wait time.Duration, cause error)

	// sleep is injectable for tests; nil sleeps on the real clock,
	// honoring ctx.
	sleep func(context.Context, time.Duration) error
}

// SubmitSweep posts the specs to a stashd daemon's /v1/sweep and
// decodes the NDJSON stream back into sweep results, preserving
// stash.Sweep's contract: one result per spec in spec order, and a
// joined error over the failed cells (nil when every cell succeeded).
// progress, when non-nil, fires once per received cell.
//
// Cells the daemon has served before come from its content-addressed
// cache: no simulation runs and the reported wall time is the original
// run's. Timelines do not cross the wire (the JSON form is a summary),
// so -trace flags require local simulation.
//
// The submission is resumable: if the daemon cuts the stream short
// (restart, drain, network drop) or sheds the request with 429, the
// client waits — honoring Retry-After when given — and resubmits only
// the cells it has no result for. Cells the daemon reported as never
// started are likewise re-requested while attempts remain: nothing ran,
// so a rerun cannot contradict anything observed. Completed cells are
// never resubmitted as work — on the wire they are resubmitted as
// fingerprints the daemon answers from cache.
func SubmitSweep(ctx context.Context, baseURL string, specs []stash.RunSpec, progress func(stash.SweepEvent)) ([]stash.SweepResult, error) {
	return SubmitSweepOpts(ctx, baseURL, specs, progress, SubmitOptions{})
}

// SubmitSweepOpts is SubmitSweep with explicit resilience options.
func SubmitSweepOpts(ctx context.Context, baseURL string, specs []stash.RunSpec, progress func(stash.SweepEvent), opts SubmitOptions) ([]stash.SweepResult, error) {
	attempts := opts.Attempts
	if attempts <= 0 {
		attempts = 4
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 500 * time.Millisecond
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	sleep := opts.sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return context.Cause(ctx)
			}
		}
	}

	results := make([]stash.SweepResult, len(specs))
	have := make([]bool, len(specs))
	done := 0
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		// The missing set: cells never received, plus (while retries
		// remain) cells the daemon reported as never started. Computed
		// before the backoff so a completed sweep never sleeps.
		var missing []int
		for i := range specs {
			if !have[i] || results[i].Status() == stash.StatusNotStarted {
				missing = append(missing, i)
			}
		}
		if len(missing) == 0 {
			break
		}
		if attempt > 0 {
			wait := time.Duration(float64(backoff) * (0.75 + 0.5*rand.Float64()))
			var ra *retryAfterError
			if errors.As(lastErr, &ra) && ra.after > 0 {
				wait = ra.after
			}
			if opts.OnBackoff != nil {
				opts.OnBackoff(wait, lastErr)
			}
			if err := sleep(ctx, wait); err != nil {
				return nil, err
			}
			backoff *= 2
		}
		lastErr = submitOnce(ctx, client, baseURL, specs, missing, results, have, &done, progress, opts)
		if lastErr == nil {
			continue // full round received; loop re-checks the missing set
		}
		var perm *permanentError
		if errors.As(lastErr, &perm) {
			return nil, perm.err
		}
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	var errs []error
	for i := range results {
		if !have[i] {
			if lastErr == nil {
				lastErr = fmt.Errorf("no result from %s", baseURL)
			}
			results[i] = stash.SweepResult{Spec: specs[i],
				Err: fmt.Errorf("stash: %s not received after %d attempts: %w", specs[i], attempts, lastErr)}
		}
		if results[i].Err != nil {
			errs = append(errs, results[i].Err)
		}
	}
	return results, errors.Join(errs...)
}

// permanentError marks a daemon rejection retrying cannot fix (400,
// 413, ...).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

// retryAfterError carries a 429's advertised delay.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }

// submitOnce runs one submission round over the missing cells, filling
// results/have in place. A nil return means the stream completed; the
// round may still have received structured failures.
func submitOnce(ctx context.Context, client *http.Client, baseURL string, specs []stash.RunSpec, missing []int, results []stash.SweepResult, have []bool, done *int, progress func(stash.SweepEvent), opts SubmitOptions) error {
	subset := make([]stash.RunSpec, len(missing))
	for i, idx := range missing {
		subset[i] = specs[idx]
	}
	body, err := json.Marshal(struct {
		Specs []stash.RunSpec `json:"specs"`
	}{subset})
	if err != nil {
		return &permanentError{fmt.Errorf("encoding sweep request: %w", err)}
	}
	url := strings.TrimSuffix(baseURL, "/") + "/v1/sweep"
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return &permanentError{fmt.Errorf("building sweep request: %w", err)}
	}
	req.Header.Set("Content-Type", "application/json")
	for key, vals := range opts.Header {
		for _, v := range vals {
			req.Header.Add(key, v)
		}
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("submitting sweep to %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusTooManyRequests:
		after, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return &retryAfterError{decodeServerError(resp), time.Duration(after) * time.Second}
	case resp.StatusCode == http.StatusServiceUnavailable:
		return decodeServerError(resp) // draining: retryable elsewhere
	default:
		return &permanentError{decodeServerError(resp)}
	}

	received := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() && received < len(missing) {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r stash.SweepResult
		if err := json.Unmarshal(line, &r); err != nil {
			return fmt.Errorf("decoding cell %d from %s: %w", received, baseURL, err)
		}
		idx := missing[received]
		// The daemon streams in spec order; hold it to that.
		if want := specs[idx]; r.Spec.Workload != want.Workload || r.Spec.Config.Org != want.Config.Org {
			return &permanentError{fmt.Errorf("daemon returned cell %s out of order (want %s)", r.Spec, want)}
		}
		if !have[idx] {
			*done++
		}
		results[idx], have[idx] = r, true
		received++
		if opts.OnResult != nil {
			opts.OnResult(idx, r, bytes.Clone(line))
		}
		if progress != nil {
			progress(stash.SweepEvent{
				Index: idx, Done: *done, Total: len(specs),
				Spec: r.Spec, Wall: r.Wall, Err: r.Err,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading sweep stream from %s: %w", baseURL, err)
	}
	if received < len(missing) {
		return fmt.Errorf("sweep stream from %s ended after %d of %d cells", baseURL, received, len(missing))
	}
	return nil
}

// decodeServerError turns a non-200 daemon response into an error
// carrying the structured body's message when there is one.
func decodeServerError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return fmt.Errorf("daemon rejected the sweep: %s (HTTP %s)", e.Error, resp.Status)
	}
	return fmt.Errorf("daemon rejected the sweep: HTTP %s: %s", resp.Status, bytes.TrimSpace(raw))
}
