package cliutil

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"stash"
)

// SubmitSweep posts the specs to a stashd daemon's /v1/sweep and
// decodes the NDJSON stream back into sweep results, preserving
// stash.Sweep's contract: one result per spec in spec order, and a
// joined error over the failed cells (nil when every cell succeeded).
// progress, when non-nil, fires once per received cell, in order.
//
// Cells the daemon has served before come from its content-addressed
// cache: no simulation runs and the reported wall time is the original
// run's. Timelines do not cross the wire (the JSON form is a summary),
// so -trace flags require local simulation.
func SubmitSweep(ctx context.Context, baseURL string, specs []stash.RunSpec, progress func(stash.SweepEvent)) ([]stash.SweepResult, error) {
	body, err := json.Marshal(struct {
		Specs []stash.RunSpec `json:"specs"`
	}{specs})
	if err != nil {
		return nil, fmt.Errorf("encoding sweep request: %w", err)
	}
	url := strings.TrimSuffix(baseURL, "/") + "/v1/sweep"
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("building sweep request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("submitting sweep to %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeServerError(resp)
	}

	results := make([]stash.SweepResult, len(specs))
	received := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() && received < len(specs) {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r stash.SweepResult
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, fmt.Errorf("decoding cell %d from %s: %w", received, baseURL, err)
		}
		// The daemon streams in spec order; hold it to that.
		if want := specs[received]; r.Spec.Workload != want.Workload || r.Spec.Config.Org != want.Config.Org {
			return nil, fmt.Errorf("daemon returned cell %s out of order (want %s)", r.Spec, want)
		}
		results[received] = r
		received++
		if progress != nil {
			progress(stash.SweepEvent{
				Index: received - 1, Done: received, Total: len(specs),
				Spec: r.Spec, Wall: r.Wall, Err: r.Err,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading sweep stream from %s: %w", baseURL, err)
	}
	if received < len(specs) {
		// The daemon cut the stream short (a cell hit an internal error).
		cut := fmt.Errorf("sweep stream from %s ended after %d of %d cells", baseURL, received, len(specs))
		for i := received; i < len(specs); i++ {
			results[i] = stash.SweepResult{Spec: specs[i], Err: cut}
		}
	}

	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return results, errors.Join(errs...)
}

// decodeServerError turns a non-200 daemon response into an error
// carrying the structured body's message when there is one.
func decodeServerError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return fmt.Errorf("daemon rejected the sweep: %s (HTTP %s)", e.Error, resp.Status)
	}
	return fmt.Errorf("daemon rejected the sweep: HTTP %s: %s", resp.Status, bytes.TrimSpace(raw))
}
