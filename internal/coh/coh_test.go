package coh

import (
	"testing"
	"testing/quick"

	"stash/internal/memdata"
	"stash/internal/noc"
)

func TestStatePredicates(t *testing.T) {
	if Invalid.Readable() {
		t.Error("Invalid should not be readable")
	}
	for _, s := range []State{Shared, Registered, PendingReg} {
		if !s.Readable() {
			t.Errorf("%v should be readable", s)
		}
	}
	if Shared.Owned() || Invalid.Owned() {
		t.Error("Shared/Invalid must not be owned")
	}
	if !Registered.Owned() || !PendingReg.Owned() {
		t.Error("Registered/PendingReg must be owned")
	}
}

func TestPacketPayloadBytes(t *testing.T) {
	p := &Packet{Type: DataResp, Mask: memdata.Bit(0) | memdata.Bit(5) | memdata.Bit(9)}
	if got := p.PayloadBytes(); got != 12 {
		t.Fatalf("DataResp payload = %d, want 12", got)
	}
	for _, typ := range []PacketType{ReadReq, RegReq, RegAck, WBAck, FwdReadReq, OwnerInv} {
		p := &Packet{Type: typ, Mask: memdata.MaskAll}
		if got := p.PayloadBytes(); got != 0 {
			t.Errorf("%v payload = %d, want 0 (control message)", typ, got)
		}
	}
}

func TestPacketClasses(t *testing.T) {
	cases := map[PacketType]noc.Class{
		ReadReq:    noc.Read,
		DataResp:   noc.Read,
		FwdReadReq: noc.Read,
		RegReq:     noc.Write,
		RegAck:     noc.Write,
		OwnerInv:   noc.Write,
		WBReq:      noc.Writeback,
		WriteReq:   noc.Writeback,
		WBAck:      noc.Writeback,
	}
	for typ, want := range cases {
		p := &Packet{Type: typ}
		if got := p.Class(); got != want {
			t.Errorf("Class(%v) = %v, want %v", typ, got, want)
		}
	}
}

func TestWBBufferLifecycle(t *testing.T) {
	b := NewWBBuffer()
	var vals [memdata.WordsPerLine]uint32
	vals[2], vals[3] = 22, 33
	b.Put(0x100, memdata.Bit(2)|memdata.Bit(3), vals)
	if !b.Busy(0x100) {
		t.Fatal("line should be busy")
	}
	mask, got := b.Lookup(0x100, memdata.MaskAll)
	if mask != memdata.Bit(2)|memdata.Bit(3) || got[2] != 22 || got[3] != 33 {
		t.Fatalf("Lookup mask=%v vals=%v", mask, got)
	}
	// Partial lookup intersects.
	mask, _ = b.Lookup(0x100, memdata.Bit(3)|memdata.Bit(4))
	if mask != memdata.Bit(3) {
		t.Fatalf("intersect mask = %v, want bit 3", mask)
	}
	b.Release(0x100, memdata.Bit(2))
	if !b.Busy(0x100) {
		t.Fatal("line should remain busy with word 3 pending")
	}
	b.Release(0x100, memdata.Bit(3))
	if b.Busy(0x100) || b.Len() != 0 {
		t.Fatal("line should be released")
	}
}

func TestWBBufferMerge(t *testing.T) {
	b := NewWBBuffer()
	var v1, v2 [memdata.WordsPerLine]uint32
	v1[0] = 1
	v2[1] = 2
	b.Put(0x40, memdata.Bit(0), v1)
	b.Put(0x40, memdata.Bit(1), v2)
	mask, vals := b.Lookup(0x40, memdata.MaskAll)
	if mask != memdata.Bit(0)|memdata.Bit(1) || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("merge failed: mask=%v vals=%v", mask, vals[:2])
	}
}

func TestRouterDispatch(t *testing.T) {
	r := NewRouter()
	var got []Component
	mk := func(c Component) Handler {
		return handlerFunc(func(p *Packet) { got = append(got, c) })
	}
	r.Attach(ToLLC, mk(ToLLC))
	r.Attach(ToStash, mk(ToStash))
	r.Deliver(&Packet{DstComp: ToStash})
	r.Deliver(&Packet{DstComp: ToLLC})
	if len(got) != 2 || got[0] != ToStash || got[1] != ToLLC {
		t.Fatalf("dispatch order = %v", got)
	}
}

func TestRouterUnattachedPanics(t *testing.T) {
	r := NewRouter()
	defer func() {
		if recover() == nil {
			t.Fatal("unattached component did not panic")
		}
	}()
	r.Deliver(&Packet{DstComp: ToL1})
}

type handlerFunc func(*Packet)

func (f handlerFunc) HandlePacket(p *Packet) { f(p) }

// Property: after any sequence of Puts and Releases, Lookup returns
// exactly the values of the most recent Put covering each still-pending
// word.
func TestWBBufferProperty(t *testing.T) {
	type op struct {
		Put  bool
		Mask memdata.WordMask
		Seed uint32
	}
	f := func(ops []op) bool {
		b := NewWBBuffer()
		want := make(map[int]uint32)
		for _, o := range ops {
			o.Mask &= memdata.MaskAll
			if o.Put {
				var vals [memdata.WordsPerLine]uint32
				for i := 0; i < memdata.WordsPerLine; i++ {
					if o.Mask.Has(i) {
						vals[i] = o.Seed + uint32(i)
						want[i] = vals[i]
					}
				}
				b.Put(0x80, o.Mask, vals)
			} else {
				b.Release(0x80, o.Mask)
				for i := 0; i < memdata.WordsPerLine; i++ {
					if o.Mask.Has(i) {
						delete(want, i)
					}
				}
			}
		}
		mask, vals := b.Lookup(0x80, memdata.MaskAll)
		for i := 0; i < memdata.WordsPerLine; i++ {
			wv, pending := want[i]
			if pending != mask.Has(i) {
				return false
			}
			if pending && vals[i] != wv {
				return false
			}
		}
		return b.Busy(0x80) == (len(want) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
