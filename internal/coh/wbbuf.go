package coh

import (
	"fmt"

	"stash/internal/memdata"
)

// WBBuffer holds dirty data for lines whose writeback is in flight.
// An owner (L1 or stash) moves registered words here when it evicts or
// lazily writes them back; the entry is released when the WBAck arrives.
// Forwarded remote reads that race with the writeback are served from
// this buffer, so a remote reader always observes the owned value.
type WBBuffer struct {
	pending map[memdata.PAddr]*wbEntry
	free    []*wbEntry // released entries, reused to keep writebacks allocation-free
}

type wbEntry struct {
	mask memdata.WordMask
	vals [memdata.WordsPerLine]uint32
}

// NewWBBuffer returns an empty buffer.
func NewWBBuffer() *WBBuffer {
	return &WBBuffer{pending: make(map[memdata.PAddr]*wbEntry)}
}

// Put records an in-flight writeback of the masked words of line.
// Multiple writebacks of the same line merge.
func (b *WBBuffer) Put(line memdata.PAddr, mask memdata.WordMask, vals [memdata.WordsPerLine]uint32) {
	e := b.pending[line]
	if e == nil {
		if n := len(b.free); n > 0 {
			e = b.free[n-1]
			b.free = b.free[:n-1]
			*e = wbEntry{}
		} else {
			e = &wbEntry{}
		}
		b.pending[line] = e
	}
	for i := 0; i < memdata.WordsPerLine; i++ {
		if mask.Has(i) {
			e.vals[i] = vals[i]
		}
	}
	e.mask |= mask
}

// Lookup returns the buffered words of line that intersect mask.
func (b *WBBuffer) Lookup(line memdata.PAddr, mask memdata.WordMask) (memdata.WordMask, [memdata.WordsPerLine]uint32) {
	e := b.pending[line]
	if e == nil {
		return 0, [memdata.WordsPerLine]uint32{}
	}
	return e.mask & mask, e.vals
}

// Release drops the masked words of line after their writeback is
// acknowledged; the entry disappears when no words remain.
func (b *WBBuffer) Release(line memdata.PAddr, mask memdata.WordMask) {
	e := b.pending[line]
	if e == nil {
		return
	}
	e.mask &^= mask
	if e.mask == 0 {
		delete(b.pending, line)
		b.free = append(b.free, e)
	}
}

// Busy reports whether any words of line are awaiting acknowledgement.
// The emptiness check makes the common no-writebacks-in-flight case
// (every eviction scan asks) free of map-lookup cost.
func (b *WBBuffer) Busy(line memdata.PAddr) bool {
	return len(b.pending) != 0 && b.pending[line] != nil
}

// CheckInvariants verifies conservation: every pending entry still
// holds words (an empty-mask entry is a leaked writeback whose release
// path lost it).
func (b *WBBuffer) CheckInvariants() error {
	for line, e := range b.pending {
		if e.mask == 0 {
			return fmt.Errorf("writeback buffer: line %#x pending with empty mask", line)
		}
	}
	return nil
}

// Len reports the number of lines with in-flight writebacks.
func (b *WBBuffer) Len() int { return len(b.pending) }

// Each calls fn for every line with an in-flight writeback, in no
// particular order. Invariant sweeps use it to audit caller-side
// mirrors of the buffer's occupancy.
func (b *WBBuffer) Each(fn func(line memdata.PAddr)) {
	for line := range b.pending {
		fn(line)
	}
}

// Handler consumes protocol packets addressed to one component.
type Handler interface {
	HandlePacket(p *Packet)
}

// Router dispatches packets arriving at a node to the right component.
// It is the node's single NoC delivery handler.
type Router struct {
	handlers [4]Handler // indexed by Component
}

// NewRouter returns an empty router.
func NewRouter() *Router { return &Router{} }

// Attach installs the handler for component c.
func (r *Router) Attach(c Component, h Handler) { r.handlers[c] = h }

// Deliver routes a packet to its destination component.
func (r *Router) Deliver(p *Packet) {
	h := r.handlers[p.DstComp]
	if h == nil {
		panic("coh: packet for unattached component " + p.Type.String())
	}
	h.HandlePacket(p)
}
