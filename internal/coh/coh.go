// Package coh defines the DeNovo-style coherence protocol the stash
// paper builds on (Section 4.3): word-granularity coherence state with
// line-granularity tags, registration (ownership) requests instead of
// writer-initiated invalidations, and self-invalidation of non-registered
// words at synchronization points (kernel boundaries).
//
// The package provides the protocol vocabulary shared by the L1 caches,
// the stash, the DMA engine, and the LLC registry: word states, packet
// types, message sizing/classing for the NoC, and the pending-writeback
// buffer that keeps dirty data addressable while a writeback is in
// flight (so forwarded remote reads never observe a torn line).
package coh

import (
	"stash/internal/memdata"
	"stash/internal/noc"
)

// State is the per-word DeNovo coherence state.
type State uint8

// Word states. PendingReg is local bookkeeping in the L1/stash MSHRs
// (the word's value is written and owned by an in-flight registration);
// the LLC never observes it, preserving DeNovo's no-transient-states
// directory property.
const (
	Invalid State = iota
	Shared
	Registered
	PendingReg
)

var stateNames = [...]string{"Invalid", "Shared", "Registered", "PendingReg"}

// String returns the state name.
func (s State) String() string { return stateNames[s] }

// Readable reports whether a local load may consume the word.
func (s State) Readable() bool { return s != Invalid }

// Owned reports whether the local structure owns the word's latest value.
func (s State) Owned() bool { return s == Registered || s == PendingReg }

// Component identifies the structure a packet addresses within a node.
type Component uint8

// Packet targets within a node.
const (
	ToLLC Component = iota
	ToL1
	ToStash
	ToDMA
)

// PacketType enumerates protocol messages.
type PacketType uint8

// Protocol message types.
const (
	ReadReq    PacketType = iota // request the masked words of a line
	RegReq                       // request registration (ownership) of masked words
	WBReq                        // write masked dirty words back to the LLC
	WriteReq                     // uncached write of masked words (DMA writeout)
	DataResp                     // data for masked words
	RegAck                       // registration granted
	WBAck                        // writeback (or uncached write) accepted
	FwdReadReq                   // LLC-forwarded read: owner must answer requester
	OwnerInv                     // old owner must drop its registration
)

var packetNames = [...]string{
	"ReadReq", "RegReq", "WBReq", "WriteReq", "DataResp",
	"RegAck", "WBAck", "FwdReadReq", "OwnerInv",
}

// String returns the packet type name.
func (t PacketType) String() string { return packetNames[t] }

// Packet is one protocol message. Line is always line-aligned and
// physical; Mask selects words within it; Vals carries word values for
// data-bearing packets (indexed by word position within the line).
type Packet struct {
	Type PacketType
	Line memdata.PAddr
	Mask memdata.WordMask
	Vals [memdata.WordsPerLine]uint32

	SrcNode int       // sending node
	SrcComp Component // sending component
	DstNode int
	DstComp Component

	// ReqNode/ReqComp identify the original requester for three-leg
	// transactions (LLC forwards, owner answers the requester directly).
	ReqNode int
	ReqComp Component

	// MapIdx is the stash-map index travelling with stash registrations
	// and forwarded requests (paper Section 4.3, feature 3). -1 for
	// cache traffic.
	MapIdx int
}

// PayloadBytes returns the number of data bytes the packet carries on
// the network (headers ride the head flit).
func (p *Packet) PayloadBytes() int {
	switch p.Type {
	case DataResp, WBReq, WriteReq:
		return p.Mask.Count() * memdata.WordBytes
	default:
		return 0
	}
}

// Class returns the Figure 5d traffic class of the packet.
func (p *Packet) Class() noc.Class {
	switch p.Type {
	case ReadReq, DataResp, FwdReadReq:
		return noc.Read
	case WBReq, WriteReq, WBAck:
		return noc.Writeback
	default: // RegReq, RegAck, OwnerInv
		return noc.Write
	}
}

// Send wraps the packet in a NoC message and injects it. The packet is
// copied into a pooled in-flight Packet (recycled via the network's
// payload pool), so the caller's Packet is not retained and may live on
// the stack. Consequently the *Packet a Handler receives is valid only
// for the duration of the HandlePacket call and must not be retained;
// copy out any fields (including Vals) needed later.
func Send(n *noc.Network, p *Packet) {
	n.TracePacket(uint8(p.Type), uint64(p.Line))
	pp, _ := n.AcquirePayload().(*Packet)
	if pp == nil {
		pp = new(Packet)
	}
	*pp = *p
	n.Send(&noc.Message{
		Src:     p.SrcNode,
		Dst:     p.DstNode,
		Class:   p.Class(),
		Bytes:   p.PayloadBytes(),
		Payload: pp,
	})
}

// Owner records who holds a word's registration in the LLC registry:
// the owning node, whether the owner is a stash or an L1, and — for
// stashes — the stash-map index needed to locate the word remotely.
// In hardware this is encoded in the LLC data word itself (DeNovo), so
// it costs no extra storage.
type Owner struct {
	Node   int
	Comp   Component
	MapIdx int
}
