package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Hex-digest-shaped keys, like RunSpec fingerprints.
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return keys
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://shard-%d:8080", i)
	}
	return out
}

// TestRingBalance pins the vnode count's load-spread guarantee: at
// DefaultVNodes the most- and least-loaded of 5 shards stay within
// 1.5x of each other over a realistic key population.
func TestRingBalance(t *testing.T) {
	r, err := NewRing(members(5), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	load := make(map[string]int)
	keys := testKeys(20000)
	for _, k := range keys {
		load[r.Owner(k)]++
	}
	if len(load) != 5 {
		t.Fatalf("only %d of 5 members own keys: %v", len(load), load)
	}
	min, max := len(keys), 0
	for _, n := range load {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if ratio := float64(max) / float64(min); ratio > 1.5 {
		t.Errorf("max/min member load = %d/%d = %.2f, want <= 1.5 (load %v)", max, min, ratio, load)
	}
}

// TestRingMinimalMovement pins the consistent-hashing property: adding
// (or removing) one member to an n-member ring moves only the keys
// adjacent to the new member's points — about K/n of them, never more
// than ~1.5x that.
func TestRingMinimalMovement(t *testing.T) {
	keys := testKeys(20000)
	for _, n := range []int{3, 5, 8} {
		before, err := NewRing(members(n), DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(members(n+1), DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		newcomer := fmt.Sprintf("http://shard-%d:8080", n)
		for _, k := range keys {
			a, b := before.Owner(k), after.Owner(k)
			if a != b {
				moved++
				if b != newcomer {
					t.Fatalf("n=%d: key %s moved %s -> %s, not to the new member", n, k[:8], a, b)
				}
			}
		}
		ideal := len(keys) / (n + 1)
		if float64(moved) > 1.5*float64(ideal) {
			t.Errorf("n=%d->%d: %d keys moved, want <= 1.5 * %d", n, n+1, moved, ideal)
		}
		if moved == 0 {
			t.Errorf("n=%d->%d: no keys moved to the new member", n, n+1)
		}
	}
}

// TestRingDeterministic pins assignment against golden vectors: the
// ring must route identically across processes, platforms, and Go
// versions (it is pure SHA-256 over member names and vnode indices),
// or a rolling restart would cold every shard's cache.
func TestRingDeterministic(t *testing.T) {
	r, err := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		"0000000000000000000000000000000000000000000000000000000000000000": "http://a:1",
		"6fd9b9b2e1b33fd5d13d8fec6597cdbef53a9610bf9d6c2310bb3f47f794e4c0": "http://c:1",
		"lud/Stash":     "http://c:1",
		"nw/Scratch":    "http://c:1",
		"sgemm/Stash":   "http://c:1",
		"backprop/DMA":  "http://a:1",
		"surf/Scratch":  "http://a:1",
		"pathfinder/x":  "http://a:1",
		"hotspot/Stash": "http://c:1",
	}
	for key, want := range golden {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %q, want %q (golden vector: deterministic routing broke)", key, got, want)
		}
	}
}

// Member order on the command line must not change routing.
func TestRingOrderIndependent(t *testing.T) {
	a, err := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://c:1", "http://a:1", "http://b:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("member listing order changed Owner(%q): %q vs %q", k, a.Owner(k), b.Owner(k))
		}
		if !reflect.DeepEqual(a.Sequence(k), b.Sequence(k)) {
			t.Fatalf("member listing order changed Sequence(%q)", k)
		}
	}
}

// TestRingSequence pins the failover chain's shape: the owner first,
// then every other member exactly once.
func TestRingSequence(t *testing.T) {
	ms := members(4)
	r, err := NewRing(ms, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(200) {
		seq := r.Sequence(k)
		if len(seq) != len(ms) {
			t.Fatalf("Sequence(%q) has %d members, want %d", k, len(seq), len(ms))
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("Sequence(%q)[0] = %q, want owner %q", k, seq[0], r.Owner(k))
		}
		seen := make(map[string]bool)
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("Sequence(%q) repeats member %q", k, m)
			}
			seen[m] = true
		}
	}
}

func TestRingSingleMember(t *testing.T) {
	r, err := NewRing([]string{"http://only:1"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owner("anything"); got != "http://only:1" {
		t.Fatalf("Owner = %q", got)
	}
	if seq := r.Sequence("anything"); len(seq) != 1 {
		t.Fatalf("Sequence = %v, want exactly the one member", seq)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"http://a:1", "http://a:1"}, 8); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRing([]string{""}, 8); err == nil {
		t.Error("empty member name accepted")
	}
}

func TestReadRingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ring")
	content := "# production ring\nhttp://a:8080\n\nhttp://b:8080\n  http://c:8080  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRingFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadRingFile = %v, want %v", got, want)
	}

	if err := os.WriteFile(path, []byte("http://a:8080 http://b:8080\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRingFile(path); err == nil {
		t.Error("two URLs on one line accepted")
	}
	if err := os.WriteFile(path, []byte("# only comments\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRingFile(path); err == nil {
		t.Error("empty ring file accepted")
	}
	if _, err := ReadRingFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing ring file accepted")
	}
}
