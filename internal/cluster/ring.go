// Package cluster turns a fleet of stashd nodes into one logical
// simulation service: a consistent-hash ring assigns every sweep cell
// to a shard by its content fingerprint (so each shard's
// content-addressed cache stays hot for the cells it owns), and a
// coordinator splits incoming sweep grids into per-shard sub-sweeps,
// dispatches them concurrently over the ordinary /v1/sweep NDJSON
// protocol, and streams the merged result back in spec order —
// byte-identical to what a single node would have produced.
//
// The package deliberately knows nothing about HTTP handlers or cache
// engines: internal/serve mounts the coordinator behind the API
// surface, and internal/cellcache reuses the Ring to pick which peer
// to fill from in its remote tier. This is the serving-layer analogue
// of the paper's stash — one logical store, many physical homes — and
// the DiStash blueprint from PAPERS.md: requests route to the stash
// that already holds the data.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// DefaultVNodes is the virtual-node count per member when a Ring is
// built with vnodes <= 0. 128 points per member keeps the max/min
// member load within ~1.3x for realistic key populations (pinned by
// TestRingBalance) while membership changes stay cheap to compute.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring: each member contributes
// vnodes pseudo-random points on a 64-bit circle, and a key belongs to
// the member owning the first point at or clockwise after the key's
// hash. Assignment depends only on the member names, the vnode count,
// and SHA-256 — never on process state or map iteration — so every
// node of a cluster (and every restart) computes identical routing.
// Adding or removing one member moves only the keys adjacent to its
// points (~K/n of them), leaving every other shard's cache hot.
type Ring struct {
	members []string
	points  []point
}

type point struct {
	hash   uint64
	member int32
}

// NewRing builds a ring over the member names (shard base URLs, in
// stashd's case). Members are deduplicated against exact repeats and
// sorted internally, so the ring is identical no matter the order the
// members were listed in. vnodes <= 0 selects DefaultVNodes.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sorted := make([]string, len(members))
	copy(sorted, members)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", m)
		}
	}
	r := &Ring{
		members: sorted,
		points:  make([]point, 0, len(sorted)*vnodes),
	}
	for mi, m := range sorted {
		for v := 0; v < vnodes; v++ {
			h := hash64(m + "\x00" + strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, member: int32(mi)})
		}
	}
	// Ties broken by member index: deterministic even if two members'
	// vnode points collide (astronomically unlikely, but cheap to pin).
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// hash64 is the ring's hash: the first 8 bytes of SHA-256, big endian.
// SHA-256 keeps assignment identical across processes, architectures,
// and Go versions — no seeded or runtime-varying hashing.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members returns the ring's member names in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// locate returns the index of the first ring point at or clockwise
// after key's hash.
func (r *Ring) locate(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member that owns key.
func (r *Ring) Owner(key string) string {
	return r.members[r.points[r.locate(key)].member]
}

// Sequence returns every member ordered by ring distance from key: the
// owner first, then each distinct successor in clockwise order. It is
// the failover chain for the key — a dead owner's work re-dispatches
// to Sequence(key)[1], and so on.
func (r *Ring) Sequence(key string) []string {
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	start := r.locate(key)
	for n := 0; n < len(r.points) && len(out) < len(r.members); n++ {
		p := r.points[(start+n)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// ReadRingFile reads a static ring membership file: one shard base URL
// per line, blank lines and #-comments ignored. It is the -ring
// alternative to listing shards on the stashd command line.
func ReadRingFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading ring file: %w", err)
	}
	var members []string
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.ContainsAny(line, " \t") {
			return nil, fmt.Errorf("cluster: ring file %s line %d: %q is not a single shard URL", path, ln+1, line)
		}
		members = append(members, line)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring file %s lists no shards", path)
	}
	return members, nil
}
