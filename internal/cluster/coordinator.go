package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"stash"
	"stash/internal/cliutil"
)

// Options tunes a Coordinator. The zero value selects the defaults.
type Options struct {
	// VNodes is the virtual-node count per shard on the ring. Zero
	// selects DefaultVNodes.
	VNodes int
	// Client overrides http.DefaultClient for shard requests.
	Client *http.Client
	// HedgeAfter, when positive, arms straggler hedging: a cell still
	// unfinished this long after dispatch is duplicated to its ring
	// successor, the first result wins, and the loser's request is
	// canceled. Zero disables hedging.
	HedgeAfter time.Duration
	// ShardAttempts is how many submission rounds cliutil.SubmitSweep
	// gives one shard (resuming across cut streams, honoring 429
	// Retry-After) before the coordinator declares the shard failed and
	// re-dispatches the unfinished cells to the ring successor. Zero
	// selects 2.
	ShardAttempts int
	// Backoff is the base inter-round delay for shard submissions
	// (doubled per round, jittered; a shard's Retry-After overrides
	// it). Zero selects 250ms.
	Backoff time.Duration
}

// Coordinator fans sweep grids out over a shard ring and merges the
// per-shard NDJSON streams back into one stream in spec order. Every
// cell routes to the shard that owns its fingerprint, so each shard's
// content-addressed cache accumulates exactly the cells it will be
// asked for again. All methods are safe for concurrent use; one
// Coordinator serves every request of a coordinator daemon.
type Coordinator struct {
	ring *Ring
	opts Options

	cells         atomic.Uint64 // cells dispatched across all sweeps
	hedged        atomic.Uint64 // hedge requests issued
	hedgeWins     atomic.Uint64 // cells whose hedge beat the primary
	redispatched  atomic.Uint64 // cells moved to a ring successor
	shardFailures atomic.Uint64 // shard submissions that left cells unfinished
	backoffs      atomic.Uint64 // inter-round waits (incl. 429 Retry-After)

	routedMu sync.Mutex
	routed   map[string]uint64 // cells routed per shard (first dispatch only)
}

// New builds a Coordinator over the shard base URLs.
func New(shards []string, opts Options) (*Coordinator, error) {
	ring, err := NewRing(shards, opts.VNodes)
	if err != nil {
		return nil, err
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.ShardAttempts <= 0 {
		opts.ShardAttempts = 2
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 250 * time.Millisecond
	}
	return &Coordinator{ring: ring, opts: opts, routed: make(map[string]uint64)}, nil
}

// Ring exposes the coordinator's shard ring (read-only).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Stats is a point-in-time snapshot of the coordinator's counters,
// rendered into /metrics by internal/serve.
type Stats struct {
	// Shards is the ring membership in sorted order.
	Shards []string
	// Cells counts cells dispatched across all sweeps; Routed splits
	// the first-dispatch routing per shard (re-dispatches and hedges
	// are counted separately, not re-attributed).
	Cells  uint64
	Routed map[string]uint64
	// Hedged counts duplicate straggler requests issued; HedgeWins the
	// subset whose duplicate delivered the cell's winning line.
	Hedged, HedgeWins uint64
	// Redispatched counts cells moved to a ring successor after their
	// shard failed; ShardFailures the shard submissions that caused it.
	Redispatched, ShardFailures uint64
	// Backoffs counts inter-round waits against shards, including 429
	// Retry-After honors.
	Backoffs uint64
}

// Stats snapshots the counters.
func (c *Coordinator) Stats() Stats {
	s := Stats{
		Shards:        c.ring.Members(),
		Cells:         c.cells.Load(),
		Hedged:        c.hedged.Load(),
		HedgeWins:     c.hedgeWins.Load(),
		Redispatched:  c.redispatched.Load(),
		ShardFailures: c.shardFailures.Load(),
		Backoffs:      c.backoffs.Load(),
		Routed:        make(map[string]uint64),
	}
	c.routedMu.Lock()
	for shard, n := range c.routed {
		s.Routed[shard] = n
	}
	c.routedMu.Unlock()
	return s
}

func (c *Coordinator) addRouted(shard string, n int) {
	c.routedMu.Lock()
	c.routed[shard] += uint64(n)
	c.routedMu.Unlock()
}

// dispatch is the per-sweep state shared by the shard submitters, the
// hedger, and the in-order emitter.
type dispatch struct {
	specs  []stash.RunSpec
	seqs   [][]string // per-cell failover chain: owner, then successors
	header http.Header
	done   []chan struct{} // done[i] closes when lines[i] is final

	mu          sync.Mutex
	lines       [][]byte // the winning NDJSON line per cell
	provisional [][]byte // last not-started line, kept as a fallback
	hedged      []bool
}

// finish records cell i's final line if none won yet, reporting
// whether this call was the winner.
func (d *dispatch) finish(i int, line []byte) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lines[i] != nil {
		return false
	}
	d.lines[i] = line
	close(d.done[i])
	return true
}

// keepProvisional remembers a structured not-started line for cell i:
// not final (a retry or failover may still produce the real result),
// but better than a synthesized error if every candidate shard fails.
func (d *dispatch) keepProvisional(i int, line []byte) {
	d.mu.Lock()
	if d.lines[i] == nil {
		d.provisional[i] = line
	}
	d.mu.Unlock()
}

// unfinished filters idxs down to cells with no final line yet.
func (d *dispatch) unfinished(idxs []int) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []int
	for _, i := range idxs {
		if d.lines[i] == nil {
			out = append(out, i)
		}
	}
	return out
}

// finishExhausted settles a cell every candidate shard failed to
// serve: its provisional not-started line when one was received,
// otherwise a synthesized structured failure — the stream always
// carries one line per spec, even with the whole cluster down.
func (d *dispatch) finishExhausted(i int) {
	d.mu.Lock()
	line := d.provisional[i]
	d.mu.Unlock()
	if line == nil {
		res := stash.SweepResult{Spec: d.specs[i],
			Err: fmt.Errorf("stash: %s: no shard served this cell (every ring candidate failed)", d.specs[i])}
		line, _ = json.Marshal(res)
	}
	d.finish(i, line)
}

// Dispatch routes each spec to the shard owning its fingerprint,
// submits the per-shard sub-sweeps concurrently, and calls emit once
// per cell in spec order with the cell's NDJSON line — each line the
// shard's cached byte image, so the merged stream is byte-identical to
// a single node serving the same grid. header (may be nil) is
// forwarded to every shard request.
//
// Failure handling: a shard whose submission rounds leave cells
// unfinished has those cells re-dispatched to each cell's ring
// successor (then its successor, until the ring is exhausted);
// stragglers are optionally hedged (Options.HedgeAfter) with the first
// result winning and the loser canceled; a shard's 429 Retry-After
// propagates into the submission backoff via cliutil.SubmitSweep.
// Dispatch returns an error only when ctx ends or emit fails — a cell
// that could not be served anywhere still emits a structured failure
// line.
func (c *Coordinator) Dispatch(ctx context.Context, header http.Header, specs []stash.RunSpec, emit func(i int, line []byte) error) error {
	if len(specs) == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	d := &dispatch{
		specs:       specs,
		seqs:        make([][]string, len(specs)),
		header:      header,
		done:        make([]chan struct{}, len(specs)),
		lines:       make([][]byte, len(specs)),
		provisional: make([][]byte, len(specs)),
		hedged:      make([]bool, len(specs)),
	}
	groups := make(map[string][]int)
	for i, spec := range specs {
		fp, err := spec.Fingerprint()
		if err != nil {
			return err
		}
		d.seqs[i] = c.ring.Sequence(fp)
		d.done[i] = make(chan struct{})
		groups[d.seqs[i][0]] = append(groups[d.seqs[i][0]], i)
	}
	c.cells.Add(uint64(len(specs)))

	var wg sync.WaitGroup
	for shard, idxs := range groups {
		c.addRouted(shard, len(idxs))
		wg.Add(1)
		go func(shard string, idxs []int) {
			defer wg.Done()
			c.runGroup(ctx, d, shard, idxs, 0)
		}(shard, idxs)
	}
	if c.opts.HedgeAfter > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.hedge(ctx, d)
		}()
	}

	var err error
	for i := range specs {
		select {
		case <-d.done[i]:
		case <-ctx.Done():
			err = context.Cause(ctx)
		}
		if err != nil {
			break
		}
		if err = emit(i, d.lines[i]); err != nil {
			break
		}
	}
	// Cancel before waiting: losing hedges and still-streaming shard
	// submissions unwind promptly once the merged stream is settled.
	cancel()
	wg.Wait()
	return err
}

// retryable reports whether a received line may be superseded by a
// failover attempt. Only never-started cells qualify: nothing ran, so
// a rerun cannot contradict anything observed. Every other disposition
// — success, error, timeout, hang, cancellation — is the shard's
// answer and streams as-is, exactly as a single node would stream it.
func retryable(res stash.SweepResult) bool {
	return res.Err != nil && res.Status() == stash.StatusNotStarted
}

// runGroup submits one shard's cells and walks the failover chain for
// whatever the shard leaves unfinished. hop indexes into each cell's
// ring sequence; every cell in idxs has seqs[i][hop] == shard.
func (c *Coordinator) runGroup(ctx context.Context, d *dispatch, shard string, idxs []int, hop int) {
	subset := make([]stash.RunSpec, len(idxs))
	for j, i := range idxs {
		subset[j] = d.specs[i]
	}
	opts := cliutil.SubmitOptions{
		Attempts: c.opts.ShardAttempts,
		Backoff:  c.opts.Backoff,
		Client:   c.opts.Client,
		Header:   d.header,
		OnResult: func(j int, res stash.SweepResult, line []byte) {
			i := idxs[j]
			if retryable(res) {
				d.keepProvisional(i, line)
				return
			}
			d.finish(i, line)
		},
		OnBackoff: func(time.Duration, error) { c.backoffs.Add(1) },
	}
	cliutil.SubmitSweepOpts(ctx, shard, subset, nil, opts) //nolint:errcheck // per-cell outcomes drive the failover below
	remaining := d.unfinished(idxs)
	if len(remaining) == 0 || ctx.Err() != nil {
		return
	}
	c.shardFailures.Add(1)
	// Re-dispatch each unfinished cell one hop down its own failover
	// chain. Chains differ per key (the successor is the next member
	// clockwise of the key's owning point), so the remainder regroups.
	next := make(map[string][]int)
	for _, i := range remaining {
		if hop+1 < len(d.seqs[i]) {
			nxt := d.seqs[i][hop+1]
			next[nxt] = append(next[nxt], i)
		} else {
			d.finishExhausted(i)
		}
	}
	var wg sync.WaitGroup
	for nxt, nidxs := range next {
		c.redispatched.Add(uint64(len(nidxs)))
		wg.Add(1)
		go func(shard string, idxs []int) {
			defer wg.Done()
			c.runGroup(ctx, d, shard, idxs, hop+1)
		}(nxt, nidxs)
	}
	wg.Wait()
}

// hedge fires once, HedgeAfter into the dispatch: every cell still
// unfinished is a straggler and gets one duplicate request to its ring
// successor. First result wins; the loser is canceled.
func (c *Coordinator) hedge(ctx context.Context, d *dispatch) {
	t := time.NewTimer(c.opts.HedgeAfter)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return
	case <-t.C:
	}
	for i := range d.specs {
		if len(d.seqs[i]) < 2 {
			continue // nowhere to hedge to
		}
		d.mu.Lock()
		straggling := d.lines[i] == nil && !d.hedged[i]
		if straggling {
			d.hedged[i] = true
		}
		d.mu.Unlock()
		if !straggling {
			continue
		}
		c.hedged.Add(1)
		go c.hedgeCell(ctx, d, i, d.seqs[i][1])
	}
}

// hedgeCell runs one duplicate single-cell submission against shard.
// Its context is canceled the moment the primary delivers the cell, so
// the losing request never occupies the successor for long.
func (c *Coordinator) hedgeCell(ctx context.Context, d *dispatch, i int, shard string) {
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	go func() {
		select {
		case <-d.done[i]:
			hcancel() // primary won: cancel the loser
		case <-hctx.Done():
		}
	}()
	opts := cliutil.SubmitOptions{
		Attempts: 1,
		Client:   c.opts.Client,
		Header:   d.header,
		OnResult: func(_ int, res stash.SweepResult, line []byte) {
			if retryable(res) {
				return
			}
			if d.finish(i, line) {
				c.hedgeWins.Add(1)
			}
		},
	}
	cliutil.SubmitSweepOpts(hctx, shard, []stash.RunSpec{d.specs[i]}, nil, opts) //nolint:errcheck // a failed hedge leaves the primary in charge
}
