package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	s := NewSet()
	c := s.Counter("l1.hits")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	if c.Name() != "l1.hits" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestCounterIdentity(t *testing.T) {
	s := NewSet()
	a := s.Counter("x")
	b := s.Counter("x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counters with same name do not share state")
	}
}

func TestSumPrefix(t *testing.T) {
	s := NewSet()
	s.Counter("l1.0.hits").Add(3)
	s.Counter("l1.1.hits").Add(4)
	s.Counter("l2.hits").Add(100)
	if got := s.Sum("l1."); got != 7 {
		t.Fatalf("Sum(l1.) = %d, want 7", got)
	}
	if got := s.Sum(""); got != 107 {
		t.Fatalf("Sum(\"\") = %d, want 107", got)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := NewSet()
	s.Counter("a").Add(1)
	snap := s.Snapshot()
	s.Counter("a").Add(1)
	if snap["a"] != 1 {
		t.Fatal("snapshot mutated by later Add")
	}
}

func TestStringSortedNonZero(t *testing.T) {
	s := NewSet()
	s.Counter("zebra").Add(1)
	s.Counter("alpha").Add(2)
	s.Counter("silent") // zero: excluded
	out := s.String()
	if strings.Contains(out, "silent") {
		t.Fatal("zero counter rendered")
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zebra") {
		t.Fatal("output not sorted")
	}
}

// Property: Sum over the empty prefix equals the sum of every snapshot value.
func TestSumMatchesSnapshotProperty(t *testing.T) {
	f := func(adds []uint8) bool {
		s := NewSet()
		names := []string{"a.x", "a.y", "b.x"}
		for i, v := range adds {
			s.Counter(names[i%len(names)]).Add(uint64(v))
		}
		var total uint64
		for _, v := range s.Snapshot() {
			total += v
		}
		return s.Sum("") == total && s.Sum("a.")+s.Sum("b.") == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
