package stats_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestCounterLookupsOnlyInConstructors guards the hot paths against
// reintroducing per-access stats map lookups. Set.Counter resolves a
// name through a map; every component therefore hoists its counters to
// *Counter fields at construction and bumps those on the hot path.
// This audit parses every internal package and fails if a .Counter(...)
// call appears outside a constructor (a function named New*): such a
// call is almost certainly a map lookup on a per-access path.
func TestCounterLookupsOnlyInConstructors(t *testing.T) {
	fset := token.NewFileSet()
	err := filepath.WalkDir("../..", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "stats", "testdata", ".git":
				// The stats package is the Counter implementation itself.
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Counter" {
					return true
				}
				if !strings.HasPrefix(fd.Name.Name, "New") {
					t.Errorf("%s: .Counter(...) lookup in %s: hoist the counter to a field in the constructor",
						fset.Position(call.Pos()), fd.Name.Name)
				}
				return true
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
