// Package stats provides a small named-counter registry used by every
// simulator component to expose event counts (hits, misses, writebacks,
// flit-crossings, instructions) to the results layer.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count. Components hold a
// *Counter and call Add on the hot path; the registry only matters when
// snapshotting results.
type Counter struct {
	name string
	n    uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.n += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Set is a registry of named counters. The zero value is not usable;
// call NewSet.
type Set struct {
	counters map[string]*Counter
}

// NewSet returns an empty counter registry.
func NewSet() *Set { return &Set{counters: make(map[string]*Counter)} }

// Counter returns the counter registered under name, creating it at zero
// on first use. Names are hierarchical by convention, e.g. "l1.0.hits".
func (s *Set) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	s.counters[name] = c
	return c
}

// Sum returns the total of all counters whose name has the given prefix.
func (s *Set) Sum(prefix string) uint64 {
	var total uint64
	for name, c := range s.counters {
		if strings.HasPrefix(name, prefix) {
			total += c.n
		}
	}
	return total
}

// Snapshot returns a copy of all counter values.
func (s *Set) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for name, c := range s.counters {
		out[name] = c.n
	}
	return out
}

// String renders all non-zero counters, sorted by name, one per line.
func (s *Set) String() string {
	names := make([]string, 0, len(s.counters))
	for name, c := range s.counters {
		if c.n != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-40s %12d\n", name, s.counters[name].n)
	}
	return b.String()
}
