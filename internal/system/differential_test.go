package system

import (
	"testing"

	"stash/internal/core"
	"stash/internal/gpu"
	"stash/internal/isa"
	"stash/internal/memdata"
)

// TestCrossConfigDifferential runs the same computation — a strided
// AoS-field update with a data-dependent branch — on every memory
// organization and over several shapes, and requires every
// configuration to produce the exact same memory image as a plain Go
// reference. This is the strongest end-to-end check that the
// scratchpad copies, DMA transfers, stash implicit movement, and
// coherence protocol all implement the same semantics.
func TestCrossConfigDifferential(t *testing.T) {
	type shape struct {
		n, objWords, blockDim, period int
	}
	shapes := []shape{
		{n: 256, objWords: 1, blockDim: 32, period: 2},
		{n: 512, objWords: 4, blockDim: 64, period: 3},
		{n: 384, objWords: 8, blockDim: 128, period: 1},
		{n: 1024, objWords: 2, blockDim: 256, period: 5},
	}
	orgs := []MemOrg{Scratch, ScratchG, ScratchGD, CacheOnly, StashOrg, StashG}
	for _, sh := range shapes {
		ref := make([]uint32, sh.n)
		for i := range ref {
			v := uint32(i * 3)
			if i%sh.period == 0 {
				v = v*5 + 11
			}
			ref[i] = v
		}
		for _, org := range orgs {
			s := New(MicrobenchConfig(org))
			base := s.Alloc(sh.n*sh.objWords, func(i int) uint32 {
				if i%sh.objWords == 0 {
					return uint32(i / sh.objWords * 3)
				}
				return 0x5a5a
			})
			s.RunKernel(fieldUpdateKernel(org, base, sh.n, sh.objWords, sh.blockDim, sh.period))
			s.FlushForVerify()
			for i := 0; i < sh.n; i++ {
				got := s.ReadGlobal(base + memdata.VAddr(i*sh.objWords*4))
				if got != ref[i] {
					t.Fatalf("%v shape=%+v: field %d = %d, want %d", org, sh, i, got, ref[i])
				}
				if sh.objWords > 1 {
					if pad := s.ReadGlobal(base + memdata.VAddr((i*sh.objWords+1)*4)); pad != 0x5a5a {
						t.Fatalf("%v shape=%+v: untouched field %d clobbered (%#x)", org, sh, i, pad)
					}
				}
			}
		}
	}
}

// fieldUpdateKernel builds the per-organization kernel: each thread
// conditionally transforms its element's first field.
func fieldUpdateKernel(org MemOrg, base memdata.VAddr, n, objWords, blockDim, period int) *gpu.Kernel {
	b := isa.NewBuilder()
	objBytes := objWords * 4
	grid := (n + blockDim - 1) / blockDim
	tid, gtid, sbase, gbase, v, cond, tmp := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Special(tid, isa.SpecTid)
	b.Special(gtid, isa.SpecCtaid)
	b.MulImm(gtid, gtid, int64(blockDim))
	b.Add(gtid, gtid, tid)
	b.MovImm(sbase, 0)
	b.MulImm(gbase, gtid, int64(objBytes))
	b.AddImm(gbase, gbase, int64(base))
	inRange := b.Reg()
	b.SetLtImm(inRange, gtid, int64(n))
	b.ModImm(cond, gtid, int64(period))
	b.SetEqImm(cond, cond, 0)
	b.And(cond, cond, inRange)

	shape := core.MapParams{FieldBytes: 4, ObjectBytes: objBytes, RowElems: 1, NumRows: 1, Coherent: true}
	local := 0
	loadV := func() { b.LdGlobal(v, gbase, 0) }
	storeV := func() { b.StGlobal(gbase, 0, v) }
	switch {
	case org.HasStash():
		// Per-thread single-element mapping exercises many small maps.
		// Use a per-block tile instead: one AddMap per block.
		shape.RowElems = blockDim
		blockBase := b.Reg()
		b.Special(blockBase, isa.SpecCtaid)
		b.MulImm(blockBase, blockBase, int64(blockDim*objBytes))
		b.AddImm(blockBase, blockBase, int64(base))
		b.AddMapReg(0, shape, sbase, blockBase)
		b.Barrier()
		loadV = func() { b.LdStash(v, tid, 0, 0) }
		storeV = func() { b.StStash(tid, 0, v, 0) }
		local = core.ChunkWords * ((blockDim + core.ChunkWords - 1) / core.ChunkWords)
	case org.HasDMA():
		shape.RowElems = blockDim
		blockBase := b.Reg()
		b.Special(blockBase, isa.SpecCtaid)
		b.MulImm(blockBase, blockBase, int64(blockDim*objBytes))
		b.AddImm(blockBase, blockBase, int64(base))
		b.DMALoadReg(shape, sbase, blockBase)
		b.Barrier()
		loadV = func() { b.LdShared(v, tid, 0) }
		storeV = func() { b.StShared(tid, 0, v) }
		local = core.ChunkWords * ((blockDim + core.ChunkWords - 1) / core.ChunkWords)
	case org.HasScratchpad():
		// Explicit copy-in of the thread's field.
		b.If(inRange)
		b.LdGlobal(tmp, gbase, 0)
		b.StShared(tid, 0, tmp)
		b.EndIf()
		b.Barrier()
		loadV = func() { b.LdShared(v, tid, 0) }
		storeV = func() { b.StShared(tid, 0, v) }
		local = core.ChunkWords * ((blockDim + core.ChunkWords - 1) / core.ChunkWords)
	}

	b.If(cond)
	loadV()
	b.MulImm(v, v, 5)
	b.AddImm(v, v, 11)
	storeV()
	b.EndIf()

	// Scratchpad configurations copy the whole tile back explicitly.
	if org.HasScratchpad() && !org.HasDMA() {
		b.Barrier()
		b.If(inRange)
		b.LdShared(tmp, tid, 0)
		b.StGlobal(gbase, 0, tmp)
		b.EndIf()
	}
	if org.HasDMA() {
		b.Barrier()
		blockBase := b.Reg()
		b.Special(blockBase, isa.SpecCtaid)
		b.MulImm(blockBase, blockBase, int64(blockDim*objBytes))
		b.AddImm(blockBase, blockBase, int64(base))
		b.DMAStoreReg(shape, sbase, blockBase)
	}
	return &gpu.Kernel{Prog: b.MustBuild(), BlockDim: blockDim, GridDim: grid, LocalWordsPerBlock: local}
}
