// Package system assembles the simulated machine of the paper's
// Figure 4: a 4x4 mesh whose nodes carry GPU CUs (with L1 +
// scratchpad, stash, or cache-only SRAM per the evaluated memory
// organization) and CPU cores (with L1s), one shared-LLC bank per
// node, a unified virtual address space, and the DeNovo coherence
// protocol throughout.
package system

import (
	"fmt"

	"stash/internal/cache"
	"stash/internal/coh"
	"stash/internal/core"
	"stash/internal/cpu"
	"stash/internal/dma"
	"stash/internal/energy"
	"stash/internal/gpu"
	"stash/internal/isa"
	"stash/internal/llc"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/scratch"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/vm"
)

// MemOrg selects one of the six simulated memory configurations
// (paper Section 5.3). Scratch/ScratchG and Stash/StashG differ only
// in the kernels the workloads generate; the hardware is the same.
type MemOrg int

// Memory organizations.
const (
	Scratch   MemOrg = iota // 16 KB scratchpad + 32 KB L1
	ScratchG                // Scratch, global accesses converted to scratchpad
	ScratchGD               // ScratchG + DMA engine
	CacheOnly               // 32 KB L1 only
	StashOrg                // 16 KB stash + 32 KB L1
	StashG                  // Stash, global accesses converted to stash
)

var orgNames = [...]string{"Scratch", "ScratchG", "ScratchGD", "Cache", "Stash", "StashG"}

// String returns the configuration name as used in the paper's figures.
func (o MemOrg) String() string { return orgNames[o] }

// HasScratchpad reports whether the organization includes a scratchpad.
func (o MemOrg) HasScratchpad() bool { return o == Scratch || o == ScratchG || o == ScratchGD }

// HasStash reports whether the organization includes a stash.
func (o MemOrg) HasStash() bool { return o == StashOrg || o == StashG }

// HasDMA reports whether the organization includes a DMA engine.
func (o MemOrg) HasDMA() bool { return o == ScratchGD }

// Config parameterizes a System.
type Config struct {
	MeshW, MeshH int
	GPUNodes     []int // mesh nodes hosting CUs
	CPUNodes     []int // mesh nodes hosting CPU cores
	Org          MemOrg
	L1           cache.Params
	L2           llc.Params
	Stash        core.Params
	Scratch      scratch.Params
	DMA          dma.Params
	CU           gpu.Params
	Costs        energy.Costs
}

// MicrobenchConfig returns the paper's microbenchmark machine: 1 GPU CU
// and 15 CPU cores (Table 2).
func MicrobenchConfig(org MemOrg) Config {
	cfg := baseConfig(org)
	cfg.GPUNodes = []int{0}
	for n := 1; n < 16; n++ {
		cfg.CPUNodes = append(cfg.CPUNodes, n)
	}
	return cfg
}

// AppConfig returns the paper's application machine: 15 GPU CUs and 1
// CPU core (Table 2).
func AppConfig(org MemOrg) Config {
	cfg := baseConfig(org)
	for n := 0; n < 15; n++ {
		cfg.GPUNodes = append(cfg.GPUNodes, n)
	}
	cfg.CPUNodes = []int{15}
	return cfg
}

func baseConfig(org MemOrg) Config {
	return Config{
		MeshW:   4,
		MeshH:   4,
		Org:     org,
		L1:      cache.DefaultParams(),
		L2:      llc.DefaultParams(),
		Stash:   core.DefaultParams(),
		Scratch: scratch.DefaultParams(),
		DMA:     dma.DefaultParams(),
		CU:      gpu.DefaultParams(),
		Costs:   energy.DefaultCosts(),
	}
}

// System is one assembled machine.
type System struct {
	Cfg   Config
	Eng   *sim.Engine
	Net   *noc.Network
	Mem   *memdata.Memory
	AS    *vm.AddressSpace
	Acct  *energy.Account
	Stats *stats.Set
	CUs   []*gpu.CU
	CPUs  []*cpu.Core

	banks []*llc.Bank
}

// New builds the machine described by cfg.
func New(cfg Config) *System {
	eng := sim.NewEngine()
	acct := energy.NewAccount(cfg.Costs)
	set := stats.NewSet()
	net := noc.New(eng, cfg.MeshW, cfg.MeshH, acct, set)
	mem := memdata.NewMemory()
	as := vm.NewAddressSpace()
	s := &System{Cfg: cfg, Eng: eng, Net: net, Mem: mem, AS: as, Acct: acct, Stats: set}

	gpuAt := make(map[int]bool)
	for _, n := range cfg.GPUNodes {
		gpuAt[n] = true
	}
	cpuAt := make(map[int]bool)
	for _, n := range cfg.CPUNodes {
		cpuAt[n] = true
	}

	for n := 0; n < net.Nodes(); n++ {
		router := coh.NewRouter()
		bank := llc.NewBank(eng, net, n, cfg.L2, mem, acct, set)
		s.banks = append(s.banks, bank)
		router.Attach(coh.ToLLC, bank)

		switch {
		case gpuAt[n]:
			name := fmt.Sprintf("gpu%d", n)
			l1p := cfg.L1
			l1p.ChargeEnergy = true
			l1 := cache.New(eng, net, n, name, l1p, acct, set)
			router.Attach(coh.ToL1, l1)
			var sp *scratch.Scratchpad
			var st *core.Stash
			var dm *dma.Engine
			if cfg.Org.HasScratchpad() {
				sp = scratch.New(name, cfg.Scratch, acct, set)
			}
			if cfg.Org.HasStash() {
				st = core.New(eng, net, n, name, cfg.Stash, as, acct, set)
				router.Attach(coh.ToStash, st)
			}
			if cfg.Org.HasDMA() {
				dm = dma.New(eng, net, n, name, cfg.DMA, sp, as, set)
				router.Attach(coh.ToDMA, dm)
			}
			s.CUs = append(s.CUs, gpu.New(eng, n, name, cfg.CU, as, l1, sp, st, dm, acct, set))
		case cpuAt[n]:
			name := fmt.Sprintf("cpu%d", n)
			l1p := cfg.L1
			l1p.ChargeEnergy = false // paper: CPU L1 energy not measured
			l1 := cache.New(eng, net, n, name, l1p, acct, set)
			router.Attach(coh.ToL1, l1)
			s.CPUs = append(s.CPUs, cpu.New(eng, n, name, as, l1, set))
		}
		// Packets are pooled by coh.Send: once the router has dispatched
		// one (handlers consume it synchronously), recycle it.
		net.Register(n, func(m *noc.Message) {
			p := m.Payload.(*coh.Packet)
			router.Deliver(p)
			net.ReleasePayload(p)
		})
	}
	return s
}

// Alloc reserves n words of global memory initialized by gen (gen may
// be nil for zeros) and returns the virtual base address.
func (s *System) Alloc(nwords int, gen func(i int) uint32) memdata.VAddr {
	base := s.AS.Alloc(nwords * memdata.WordBytes)
	if gen != nil {
		for i := 0; i < nwords; i++ {
			s.Mem.StoreWord(s.AS.Translate(base+memdata.VAddr(i*memdata.WordBytes)), gen(i))
		}
	}
	return base
}

// ReadGlobal returns the coherent value of the word at va: the owner's
// copy if registered, else the LLC's, else DRAM. Used by verification
// after the simulation has quiesced and all owners flushed.
func (s *System) ReadGlobal(va memdata.VAddr) uint32 {
	pa := s.AS.Translate(va)
	bank := s.banks[llc.BankOf(memdata.LineOf(pa), s.Cfg.L2.NumBanks)]
	if v, owner, ok := bank.Peek(pa); ok {
		if owner != nil {
			panic(fmt.Sprintf("system: ReadGlobal(%#x) while word is still registered to node %d; flush first",
				uint64(va), owner.Node))
		}
		return v
	}
	return s.Mem.LoadWord(pa)
}

// RunKernel launches k across all CUs (grid blocks split contiguously),
// runs the simulation until the kernel completes and drains, applies
// the kernel-boundary self-invalidations, and returns.
func (s *System) RunKernel(k *gpu.Kernel) {
	if len(s.CUs) == 0 {
		panic("system: no CUs configured")
	}
	remaining := 0
	per := (k.GridDim + len(s.CUs) - 1) / len(s.CUs)
	next := 0
	for _, cu := range s.CUs {
		n := per
		if next+n > k.GridDim {
			n = k.GridDim - next
		}
		if n <= 0 {
			break
		}
		remaining++
		cu.Launch(k, next, n, func() { remaining-- })
		next += n
	}
	s.Eng.Run()
	if remaining != 0 {
		panic("system: kernel did not complete (deadlock)")
	}
	for _, cu := range s.CUs {
		cu.SelfInvalidate()
	}
}

// RunCPUPhase runs prog as numThreads logical threads spread across the
// CPU cores (each core runs its share sequentially), returning when all
// complete. Each core self-invalidates at phase start (acquire).
func (s *System) RunCPUPhase(prog *isa.Program, numThreads int) {
	if len(s.CPUs) == 0 {
		panic("system: no CPU cores configured")
	}
	for c := 0; c < len(s.CPUs) && c < numThreads; c++ {
		core := s.CPUs[c]
		first := c
		var runNext func(tid int)
		runNext = func(tid int) {
			core.Run(prog, tid, numThreads, func() {
				nt := tid + len(s.CPUs)
				if nt < numThreads {
					runNext(nt)
				}
			})
		}
		runNext(first)
	}
	s.Eng.Run()
}

// FlushForVerify writes every owned word back to the LLC so ReadGlobal
// can observe final values. Call only after measurement snapshots.
func (s *System) FlushForVerify() {
	for _, cu := range s.CUs {
		if st := cu.Stash(); st != nil {
			st.WritebackAll()
		}
		cu.L1().WritebackAll()
	}
	for _, c := range s.CPUs {
		c.L1().WritebackAll()
	}
	s.Eng.Run()
}

// Cycles returns the current simulated time.
func (s *System) Cycles() sim.Cycle { return s.Eng.Now() }
