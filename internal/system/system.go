// Package system assembles the simulated machine of the paper's
// Figure 4: a 4x4 mesh whose nodes carry GPU CUs (with L1 +
// scratchpad, stash, or cache-only SRAM per the evaluated memory
// organization) and CPU cores (with L1s), one shared-LLC bank per
// node, a unified virtual address space, and the DeNovo coherence
// protocol throughout.
package system

import (
	"fmt"

	"stash/internal/cache"
	"stash/internal/check"
	"stash/internal/coh"
	"stash/internal/core"
	"stash/internal/cpu"
	"stash/internal/dma"
	"stash/internal/energy"
	"stash/internal/faults"
	"stash/internal/gpu"
	"stash/internal/isa"
	"stash/internal/llc"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/scratch"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/trace"
	"stash/internal/vm"
)

// MemOrg selects one of the six simulated memory configurations
// (paper Section 5.3). Scratch/ScratchG and Stash/StashG differ only
// in the kernels the workloads generate; the hardware is the same.
type MemOrg int

// Memory organizations.
const (
	Scratch   MemOrg = iota // 16 KB scratchpad + 32 KB L1
	ScratchG                // Scratch, global accesses converted to scratchpad
	ScratchGD               // ScratchG + DMA engine
	CacheOnly               // 32 KB L1 only
	StashOrg                // 16 KB stash + 32 KB L1
	StashG                  // Stash, global accesses converted to stash
)

var orgNames = [...]string{"Scratch", "ScratchG", "ScratchGD", "Cache", "Stash", "StashG"}

// String returns the configuration name as used in the paper's figures.
func (o MemOrg) String() string { return orgNames[o] }

// HasScratchpad reports whether the organization includes a scratchpad.
func (o MemOrg) HasScratchpad() bool { return o == Scratch || o == ScratchG || o == ScratchGD }

// HasStash reports whether the organization includes a stash.
func (o MemOrg) HasStash() bool { return o == StashOrg || o == StashG }

// HasDMA reports whether the organization includes a DMA engine.
func (o MemOrg) HasDMA() bool { return o == ScratchGD }

// Config parameterizes a System.
type Config struct {
	MeshW, MeshH int
	GPUNodes     []int // mesh nodes hosting CUs
	CPUNodes     []int // mesh nodes hosting CPU cores
	Org          MemOrg
	L1           cache.Params
	L2           llc.Params
	Stash        core.Params
	Scratch      scratch.Params
	DMA          dma.Params
	CU           gpu.Params
	Costs        energy.Costs
	// Check configures the self-checking layer (watchdog + invariant
	// sweeps). The zero value disables it, leaving the hot paths with
	// only a nil comparison per protocol completion.
	Check check.Params
	// Faults, when non-nil and non-empty, injects the described timing
	// perturbations and component faults deterministically.
	Faults *faults.Schedule
	// Trace, when non-nil, attaches the event-tracing collector to every
	// component. Nil (the default) leaves each emit site a nil-check
	// no-op, preserving bit-identical timing and zero allocations.
	Trace *trace.Options
	// Static holds leakage power expressed as picojoules per simulated
	// cycle, per technology-profiled structure group, summed over all
	// instances of that structure in the machine. The public Config
	// lowering computes it from the selected technology profiles; the
	// measurement layer multiplies by elapsed cycles. Zero values (the
	// default) report no static energy — static power is deliberately
	// kept out of the dynamic-energy account so the paper's Figure 5b/6b
	// stacks stay comparable.
	Static StaticEnergy
}

// StaticEnergy is per-cycle leakage energy (pJ/cycle) by structure
// group. It never influences timing; it only scales with cycle count
// at measurement time.
type StaticEnergy struct {
	StashPJPerCycle float64
	L1PJPerCycle    float64
	LLCPJPerCycle   float64
}

// Any reports whether any structure has nonzero leakage configured.
func (s StaticEnergy) Any() bool {
	return s.StashPJPerCycle != 0 || s.L1PJPerCycle != 0 || s.LLCPJPerCycle != 0
}

// MicrobenchConfig returns the paper's microbenchmark machine: 1 GPU CU
// and 15 CPU cores (Table 2).
func MicrobenchConfig(org MemOrg) Config {
	cfg := baseConfig(org)
	cfg.GPUNodes = []int{0}
	for n := 1; n < 16; n++ {
		cfg.CPUNodes = append(cfg.CPUNodes, n)
	}
	return cfg
}

// AppConfig returns the paper's application machine: 15 GPU CUs and 1
// CPU core (Table 2).
func AppConfig(org MemOrg) Config {
	cfg := baseConfig(org)
	for n := 0; n < 15; n++ {
		cfg.GPUNodes = append(cfg.GPUNodes, n)
	}
	cfg.CPUNodes = []int{15}
	return cfg
}

func baseConfig(org MemOrg) Config {
	return Config{
		MeshW:   4,
		MeshH:   4,
		Org:     org,
		L1:      cache.DefaultParams(),
		L2:      llc.DefaultParams(),
		Stash:   core.DefaultParams(),
		Scratch: scratch.DefaultParams(),
		DMA:     dma.DefaultParams(),
		CU:      gpu.DefaultParams(),
		Costs:   energy.DefaultCosts(),
	}
}

// System is one assembled machine.
type System struct {
	Cfg   Config
	Eng   *sim.Engine
	Net   *noc.Network
	Mem   *memdata.Memory
	AS    *vm.AddressSpace
	Acct  *energy.Account
	Stats *stats.Set
	CUs   []*gpu.CU
	CPUs  []*cpu.Core

	// Checker is non-nil when cfg.Check enabled any self-checking; Inj
	// is non-nil when cfg.Faults injects anything; Trace is non-nil when
	// cfg.Trace enabled event tracing.
	Checker *check.Checker
	Inj     *faults.Injector
	Trace   *trace.Collector

	banks    []*llc.Bank
	l1s      []*cache.Cache  // per mesh node; nil where no L1 lives
	stashs   []*core.Stash   // per mesh node; nil where no stash lives
	probes   []check.Probe   // built unconditionally, for failure dumps
	timeline *trace.Timeline // cached FinishTrace result
}

// New builds the machine described by cfg.
func New(cfg Config) *System {
	eng := sim.NewEngine()
	acct := energy.NewAccount(cfg.Costs)
	set := stats.NewSet()
	net := noc.New(eng, cfg.MeshW, cfg.MeshH, acct, set)
	mem := memdata.NewMemory()
	as := vm.NewAddressSpace()
	s := &System{Cfg: cfg, Eng: eng, Net: net, Mem: mem, AS: as, Acct: acct, Stats: set}
	s.l1s = make([]*cache.Cache, net.Nodes())
	s.stashs = make([]*core.Stash, net.Nodes())

	if cfg.Faults.Enabled() {
		s.Inj = faults.NewInjector(*cfg.Faults)
		if cfg.Faults.NoCJitterMax > 0 {
			net.SetPerturb(s.Inj.Jitter)
		}
	}

	gpuAt := make(map[int]bool)
	for _, n := range cfg.GPUNodes {
		gpuAt[n] = true
	}
	cpuAt := make(map[int]bool)
	for _, n := range cfg.CPUNodes {
		cpuAt[n] = true
	}

	dmas := make([]*dma.Engine, net.Nodes())
	for n := 0; n < net.Nodes(); n++ {
		router := coh.NewRouter()
		bank := llc.NewBank(eng, net, n, cfg.L2, mem, acct, set)
		s.banks = append(s.banks, bank)
		router.Attach(coh.ToLLC, bank)
		if s.Inj != nil && len(cfg.Faults.BankStalls) > 0 {
			node := n
			bank.SetStall(func(now sim.Cycle) (sim.Cycle, bool) {
				return s.Inj.BankStall(node, now)
			})
		}

		switch {
		case gpuAt[n]:
			name := fmt.Sprintf("gpu%d", n)
			l1p := cfg.L1
			l1p.ChargeEnergy = true
			l1 := cache.New(eng, net, n, name, l1p, acct, set)
			router.Attach(coh.ToL1, l1)
			var sp *scratch.Scratchpad
			var st *core.Stash
			var dm *dma.Engine
			if cfg.Org.HasScratchpad() {
				sp = scratch.New(name, cfg.Scratch, acct, set)
			}
			if cfg.Org.HasStash() {
				st = core.New(eng, net, n, name, cfg.Stash, as, acct, set)
				router.Attach(coh.ToStash, st)
			}
			if cfg.Org.HasDMA() {
				dm = dma.New(eng, net, n, name, cfg.DMA, sp, as, set)
				router.Attach(coh.ToDMA, dm)
				if s.Inj != nil && cfg.Faults.DMAExtraDelay > 0 {
					dm.SetExtraDelay(s.Inj.DMAExtraDelay())
				}
			}
			s.l1s[n], s.stashs[n], dmas[n] = l1, st, dm
			s.CUs = append(s.CUs, gpu.New(eng, n, name, cfg.CU, as, l1, sp, st, dm, acct, set))
		case cpuAt[n]:
			name := fmt.Sprintf("cpu%d", n)
			l1p := cfg.L1
			l1p.ChargeEnergy = false // paper: CPU L1 energy not measured
			// The technology axes model the GPU-side storage hierarchy
			// (plus the shared LLC); CPU L1s stay at the SRAM baseline.
			l1p.ReadExtra, l1p.WriteExtra, l1p.TechEnergy = 0, 0, false
			l1 := cache.New(eng, net, n, name, l1p, acct, set)
			router.Attach(coh.ToL1, l1)
			s.l1s[n] = l1
			s.CPUs = append(s.CPUs, cpu.New(eng, n, name, as, l1, set))
		}
		// Packets are pooled by coh.Send: once the router has dispatched
		// one (handlers consume it synchronously), recycle it.
		net.Register(n, func(m *noc.Message) {
			p := m.Payload.(*coh.Packet)
			router.Deliver(p)
			net.ReleasePayload(p)
		})
	}

	if cfg.Trace != nil {
		tc := trace.NewCollector(*cfg.Trace, set)
		s.Trace = tc
		// Attach sinks in deterministic order: the network first, then
		// per node the LLC bank and whatever the node hosts. Track order
		// fixes the Chrome-export row order.
		net.SetTrace(tc.Sink("noc"))
		cuIdx, cpuIdx := 0, 0
		for n := 0; n < net.Nodes(); n++ {
			s.banks[n].SetTrace(tc.Sink(fmt.Sprintf("llc.%d", n)))
			switch {
			case gpuAt[n]:
				name := fmt.Sprintf("gpu%d", n)
				s.l1s[n].SetTrace(tc.Sink("l1." + name))
				if st := s.stashs[n]; st != nil {
					st.SetTrace(tc.Sink("stash." + name))
				}
				if dmas[n] != nil {
					dmas[n].SetTrace(tc.Sink("dma." + name))
				}
				s.CUs[cuIdx].SetTrace(tc.Sink("cu." + name))
				cuIdx++
			case cpuAt[n]:
				name := fmt.Sprintf("cpu%d", n)
				s.l1s[n].SetTrace(tc.Sink("l1." + name))
				s.CPUs[cpuIdx].SetTrace(tc.Sink("cpu." + name))
				cpuIdx++
			}
		}
		// Drain the event ring periodically so long runs spill to the
		// compact encoding instead of dropping; probes never advance the
		// clock, so timing is untouched.
		eng.AddProbe(tc.FlushEvery(), tc.Flush)
	}

	s.buildProbes(dmas)
	if cfg.Check.Enabled() {
		s.Checker = check.New(eng, cfg.Check)
		for _, p := range s.probes {
			s.Checker.Register(p)
		}
		for n := 0; n < net.Nodes(); n++ {
			s.banks[n].SetChecker(s.Checker)
			if s.l1s[n] != nil {
				s.l1s[n].SetChecker(s.Checker)
			}
			if s.stashs[n] != nil {
				s.stashs[n].SetChecker(s.Checker)
			}
			if dmas[n] != nil {
				dmas[n].SetChecker(s.Checker)
			}
		}
		s.Checker.Install()
	}
	return s
}

// buildProbes assembles the per-component inspection probes in
// deterministic node order. They are built whether or not a Checker is
// armed: Diagnose uses them to dump a crashed run too. The MSHR age
// bound is tied to the watchdog budget — an entry outliving the budget
// while the rest of the system makes progress is per-entry starvation
// the global watchdog cannot see.
func (s *System) buildProbes(dmas []*dma.Engine) {
	ageBound := s.Cfg.Check.WatchdogBudget
	for n := 0; n < s.Net.Nodes(); n++ {
		if bank := s.banks[n]; bank != nil {
			bank := bank
			s.probes = append(s.probes, check.Probe{
				Name:        fmt.Sprintf("llc[%d]", n),
				Outstanding: bank.Outstanding,
				Dump:        bank.DebugString,
				Invariants:  bank.CheckInvariants,
				Quiescent: func() error {
					if k := bank.Outstanding(); k != 0 {
						return fmt.Errorf("%d requests still in flight", k)
					}
					return nil
				},
			})
		}
		if l1 := s.l1s[n]; l1 != nil {
			l1 := l1
			s.probes = append(s.probes, check.Probe{
				Name:        fmt.Sprintf("l1[%d]", n),
				Outstanding: l1.Outstanding,
				Dump:        l1.DebugString,
				Invariants:  func() error { return l1.CheckInvariants(s.Eng.Now(), ageBound) },
				Quiescent:   l1.CheckQuiescent,
			})
		}
		if st := s.stashs[n]; st != nil {
			st := st
			s.probes = append(s.probes, check.Probe{
				Name:        fmt.Sprintf("stash[%d]", n),
				Outstanding: st.Outstanding,
				Dump:        st.DebugString,
				Invariants:  func() error { return st.CheckInvariants(s.Eng.Now(), ageBound) },
				Quiescent:   st.CheckQuiescent,
			})
		}
		if dm := dmas[n]; dm != nil {
			dm := dm
			s.probes = append(s.probes, check.Probe{
				Name:        fmt.Sprintf("dma[%d]", n),
				Outstanding: dm.Outstanding,
				Dump:        dm.DebugString,
				Quiescent:   dm.CheckQuiescent,
			})
		}
	}
	// Cross-structure single-owner audit: every word the LLC registry
	// records as owned must be held in an owned state by exactly the
	// component the registry names. Runs only at quiescent boundaries
	// (all traffic drained), when both sides must agree. The stash side
	// is conservative: a word the audit cannot locate (reverse
	// translation not resident, entry re-mapped) is inconclusive, not a
	// violation — but a located word that is NOT owned is.
	s.probes = append(s.probes, check.Probe{
		Name: "registry",
		Quiescent: func() error {
			var err error
			for bn := range s.banks {
				if err != nil {
					break
				}
				s.banks[bn].ForEachOwned(func(addr memdata.PAddr, word int, own coh.Owner) {
					if err != nil {
						return
					}
					pa := addr + memdata.PAddr(word*memdata.WordBytes)
					switch own.Comp {
					case coh.ToL1:
						l1 := s.l1s[own.Node]
						if l1 == nil {
							err = fmt.Errorf("llc[%d]: word %#x registered to node %d which has no L1", bn, uint64(pa), own.Node)
						} else if !l1.OwnsWord(pa) {
							err = fmt.Errorf("llc[%d]: word %#x registered to l1[%d] which does not own it", bn, uint64(pa), own.Node)
						}
					case coh.ToStash:
						st := s.stashs[own.Node]
						if st == nil {
							err = fmt.Errorf("llc[%d]: word %#x registered to node %d which has no stash", bn, uint64(pa), own.Node)
						} else if found, owned := st.OwnsPA(pa, own.MapIdx); found && !owned {
							err = fmt.Errorf("llc[%d]: word %#x registered to stash[%d] map %d which does not own it", bn, uint64(pa), own.Node, own.MapIdx)
						}
					}
				})
			}
			return err
		},
	})
}

// Diagnose renders a deterministic snapshot of the whole machine's
// transient state (event queue, per-unit occupancy, watchdog state),
// for failure dumps. It works with or without an armed Checker.
func (s *System) Diagnose() string {
	if s.Checker != nil {
		return s.Checker.Dump()
	}
	return check.DumpState(s.Eng, s.probes)
}

// Alloc reserves n words of global memory initialized by gen (gen may
// be nil for zeros) and returns the virtual base address.
func (s *System) Alloc(nwords int, gen func(i int) uint32) memdata.VAddr {
	base := s.AS.Alloc(nwords * memdata.WordBytes)
	if gen != nil {
		for i := 0; i < nwords; i++ {
			s.Mem.StoreWord(s.AS.Translate(base+memdata.VAddr(i*memdata.WordBytes)), gen(i))
		}
	}
	return base
}

// ReadGlobal returns the coherent value of the word at va: the owner's
// copy if registered, else the LLC's, else DRAM. Used by verification
// after the simulation has quiesced and all owners flushed.
func (s *System) ReadGlobal(va memdata.VAddr) uint32 {
	pa := s.AS.Translate(va)
	bank := s.banks[llc.BankOf(memdata.LineOf(pa), s.Cfg.L2.NumBanks)]
	if v, owner, ok := bank.Peek(pa); ok {
		if owner != nil {
			panic(fmt.Sprintf("system: ReadGlobal(%#x) while word is still registered to node %d; flush first",
				uint64(va), owner.Node))
		}
		return v
	}
	return s.Mem.LoadWord(pa)
}

// RunKernel launches k across all CUs (grid blocks split contiguously),
// runs the simulation until the kernel completes and drains, applies
// the kernel-boundary self-invalidations, and returns.
func (s *System) RunKernel(k *gpu.Kernel) {
	if len(s.CUs) == 0 {
		panic("system: no CUs configured")
	}
	s.Trace.PhaseBegin("kernel", uint64(s.Eng.Now()))
	remaining := 0
	per := (k.GridDim + len(s.CUs) - 1) / len(s.CUs)
	next := 0
	for _, cu := range s.CUs {
		n := per
		if next+n > k.GridDim {
			n = k.GridDim - next
		}
		if n <= 0 {
			break
		}
		remaining++
		cu.Launch(k, next, n, func() { remaining-- })
		next += n
	}
	s.Eng.Run()
	if remaining != 0 {
		// The event queue drained with blocks unfinished: a lost wakeup.
		// Time stands still, so only this boundary check can see it.
		panic(&check.DeadlockError{Phase: "kernel", Dump: s.Diagnose()})
	}
	for _, cu := range s.CUs {
		cu.SelfInvalidate()
	}
	s.Trace.PhaseEnd(uint64(s.Eng.Now()))
	s.Checker.Boundary("kernel")
}

// RunCPUPhase runs prog as numThreads logical threads spread across the
// CPU cores (each core runs its share sequentially), returning when all
// complete. Each core self-invalidates at phase start (acquire).
func (s *System) RunCPUPhase(prog *isa.Program, numThreads int) {
	if len(s.CPUs) == 0 {
		panic("system: no CPU cores configured")
	}
	s.Trace.PhaseBegin("cpu-phase", uint64(s.Eng.Now()))
	active := 0
	for c := 0; c < len(s.CPUs) && c < numThreads; c++ {
		core := s.CPUs[c]
		first := c
		active++
		var runNext func(tid int)
		runNext = func(tid int) {
			core.Run(prog, tid, numThreads, func() {
				nt := tid + len(s.CPUs)
				if nt < numThreads {
					runNext(nt)
				} else {
					active--
				}
			})
		}
		runNext(first)
	}
	s.Eng.Run()
	if active != 0 {
		panic(&check.DeadlockError{Phase: "cpu-phase", Dump: s.Diagnose()})
	}
	s.Trace.PhaseEnd(uint64(s.Eng.Now()))
	s.Checker.Boundary("cpu-phase")
}

// FlushForVerify writes every owned word back to the LLC so ReadGlobal
// can observe final values. Call only after measurement snapshots.
func (s *System) FlushForVerify() {
	s.Trace.PhaseBegin("flush", uint64(s.Eng.Now()))
	for _, cu := range s.CUs {
		if st := cu.Stash(); st != nil {
			st.WritebackAll()
		}
		cu.L1().WritebackAll()
	}
	for _, c := range s.CPUs {
		c.L1().WritebackAll()
	}
	s.Eng.Run()
	s.Trace.PhaseEnd(uint64(s.Eng.Now()))
	s.Checker.Boundary("flush")
}

// Cycles returns the current simulated time.
func (s *System) Cycles() sim.Cycle { return s.Eng.Now() }

// FinishTrace completes and returns the run's timeline, or nil when
// tracing was not configured. The first call snapshots at the current
// cycle; later calls return the same timeline, so measuring a system
// more than once is safe.
func (s *System) FinishTrace() *trace.Timeline {
	if s.Trace == nil {
		return nil
	}
	if s.timeline == nil {
		s.timeline = s.Trace.Finish(uint64(s.Eng.Now()))
	}
	return s.timeline
}
