package system

import (
	"testing"

	"stash/internal/core"
	"stash/internal/gpu"
	"stash/internal/isa"
	"stash/internal/memdata"
)

const (
	nElems   = 256
	blockDim = 32
	grid     = nElems / blockDim
)

// gtidInto emits code computing the global thread id into rd.
func gtidInto(b *isa.Builder, rd int) {
	tid, ctaid, ntid := b.Reg(), b.Reg(), b.Reg()
	b.Special(tid, isa.SpecTid)
	b.Special(ctaid, isa.SpecCtaid)
	b.Special(ntid, isa.SpecNtid)
	b.Mul(rd, ctaid, ntid)
	b.Add(rd, rd, tid)
}

// incKernelCache: A[gtid] += 1 through the L1.
func incKernelCache(base memdata.VAddr) *gpu.Kernel {
	b := isa.NewBuilder()
	g, addr, v := b.Reg(), b.Reg(), b.Reg()
	gtidInto(b, g)
	b.MulImm(addr, g, 4)
	b.AddImm(addr, addr, int64(base))
	b.LdGlobal(v, addr, 0)
	b.AddImm(v, v, 1)
	b.StGlobal(addr, 0, v)
	return &gpu.Kernel{Prog: b.MustBuild(), BlockDim: blockDim, GridDim: grid}
}

// incKernelScratch: the Figure 1a pattern — explicit copy into the
// scratchpad through the L1 and registers, compute, explicit copy back.
func incKernelScratch(base memdata.VAddr) *gpu.Kernel {
	b := isa.NewBuilder()
	g, tid, addr, v := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	gtidInto(b, g)
	b.Special(tid, isa.SpecTid)
	b.MulImm(addr, g, 4)
	b.AddImm(addr, addr, int64(base))
	// Explicit global load + scratchpad store.
	b.LdGlobal(v, addr, 0)
	b.StShared(tid, 0, v)
	b.Barrier()
	// Compute on the scratchpad copy.
	b.LdShared(v, tid, 0)
	b.AddImm(v, v, 1)
	b.StShared(tid, 0, v)
	b.Barrier()
	// Explicit scratchpad load + global store.
	b.LdShared(v, tid, 0)
	b.StGlobal(addr, 0, v)
	return &gpu.Kernel{Prog: b.MustBuild(), BlockDim: blockDim, GridDim: grid, LocalWordsPerBlock: core.ChunkWords * 2}
}

// incKernelStash: the Figure 1b pattern — AddMap, then direct stash
// access with implicit data movement.
func incKernelStash(base memdata.VAddr) *gpu.Kernel {
	b := isa.NewBuilder()
	tid, ctaid, sbase, gbase, v := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Special(tid, isa.SpecTid)
	b.Special(ctaid, isa.SpecCtaid)
	b.MovImm(sbase, 0)
	b.MulImm(gbase, ctaid, blockDim*4)
	b.AddImm(gbase, gbase, int64(base))
	shape := core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: blockDim, NumRows: 1, Coherent: true}
	b.AddMapReg(0, shape, sbase, gbase)
	b.Barrier()
	b.LdStash(v, tid, 0, 0)
	b.AddImm(v, v, 1)
	b.StStash(tid, 0, v, 0)
	return &gpu.Kernel{Prog: b.MustBuild(), BlockDim: blockDim, GridDim: grid, LocalWordsPerBlock: core.ChunkWords * 2}
}

// incKernelDMA: ScratchGD — DMA preload, compute in scratchpad, DMA out.
func incKernelDMA(base memdata.VAddr) *gpu.Kernel {
	b := isa.NewBuilder()
	tid, ctaid, sbase, gbase, v := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Special(tid, isa.SpecTid)
	b.Special(ctaid, isa.SpecCtaid)
	b.MovImm(sbase, 0)
	b.MulImm(gbase, ctaid, blockDim*4)
	b.AddImm(gbase, gbase, int64(base))
	shape := core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: blockDim, NumRows: 1, Coherent: true}
	b.DMALoadReg(shape, sbase, gbase)
	b.Barrier()
	b.LdShared(v, tid, 0)
	b.AddImm(v, v, 1)
	b.StShared(tid, 0, v)
	b.Barrier()
	b.DMAStoreReg(shape, sbase, gbase)
	return &gpu.Kernel{Prog: b.MustBuild(), BlockDim: blockDim, GridDim: grid, LocalWordsPerBlock: core.ChunkWords * 2}
}

func kernelFor(org MemOrg, base memdata.VAddr) *gpu.Kernel {
	switch {
	case org.HasDMA():
		return incKernelDMA(base)
	case org.HasScratchpad():
		return incKernelScratch(base)
	case org.HasStash():
		return incKernelStash(base)
	default:
		return incKernelCache(base)
	}
}

func TestIncrementKernelAllOrgs(t *testing.T) {
	for _, org := range []MemOrg{Scratch, ScratchGD, CacheOnly, StashOrg} {
		t.Run(org.String(), func(t *testing.T) {
			s := New(MicrobenchConfig(org))
			base := s.Alloc(nElems, func(i int) uint32 { return uint32(10 * i) })
			s.RunKernel(kernelFor(org, base))
			s.FlushForVerify()
			for i := 0; i < nElems; i++ {
				want := uint32(10*i + 1)
				if got := s.ReadGlobal(base + memdata.VAddr(4*i)); got != want {
					t.Fatalf("%v: A[%d] = %d, want %d", org, i, got, want)
				}
			}
			if s.Cycles() == 0 {
				t.Fatal("no time elapsed")
			}
		})
	}
}

func TestMultiCUAppConfig(t *testing.T) {
	for _, org := range []MemOrg{Scratch, StashOrg} {
		t.Run(org.String(), func(t *testing.T) {
			s := New(AppConfig(org))
			base := s.Alloc(nElems, func(i int) uint32 { return uint32(i) })
			s.RunKernel(kernelFor(org, base))
			s.FlushForVerify()
			for i := 0; i < nElems; i++ {
				if got := s.ReadGlobal(base + memdata.VAddr(4*i)); got != uint32(i+1) {
					t.Fatalf("%v: A[%d] = %d, want %d", org, i, got, i+1)
				}
			}
		})
	}
}

// cpuSumProg: each CPU thread reads its slice of A and writes partial
// sums into B[thread].
func cpuCopyProg(src, dst memdata.VAddr, n, threads int) *isa.Program {
	b := isa.NewBuilder()
	id, nth, i, idx, addr, v := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Special(id, isa.SpecCtaid)
	b.Special(nth, isa.SpecNctaid)
	per := (n + threads - 1) / threads
	b.For(i, int64(per))
	b.Mul(idx, id, nth) // placeholder to keep idx fresh each iteration
	b.MulImm(idx, id, int64(per))
	b.Add(idx, idx, i)
	cond := b.Reg()
	b.SetLtImm(cond, idx, int64(n))
	b.If(cond)
	b.MulImm(addr, idx, 4)
	b.AddImm(addr, addr, int64(src))
	b.LdGlobal(v, addr, 0)
	b.MulImm(addr, idx, 4)
	b.AddImm(addr, addr, int64(dst))
	b.StGlobal(addr, 0, v)
	b.EndIf()
	b.EndFor()
	return b.MustBuild()
}

func TestGPUToCPUCommunicationThroughStash(t *testing.T) {
	// The Implicit microbenchmark flow: GPU updates data through the
	// stash, CPU cores then read it (remote stash hits via RTLB).
	s := New(MicrobenchConfig(StashOrg))
	base := s.Alloc(nElems, func(i int) uint32 { return uint32(i) })
	dst := s.Alloc(nElems, nil)
	s.RunKernel(incKernelStash(base))
	s.RunCPUPhase(cpuCopyProg(base, dst, nElems, 15), 15)
	s.FlushForVerify()
	for i := 0; i < nElems; i++ {
		if got := s.ReadGlobal(dst + memdata.VAddr(4*i)); got != uint32(i+1) {
			t.Fatalf("B[%d] = %d, want %d", i, got, i+1)
		}
	}
	// The CPU must have pulled at least some data straight out of the
	// GPU stash (remote stash hits), not via DRAM.
	if s.Stats.Sum("stash.gpu0.remote_hits") == 0 {
		t.Fatal("no remote stash hits: CPU reads did not forward to the stash")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		s := New(MicrobenchConfig(StashOrg))
		base := s.Alloc(nElems, func(i int) uint32 { return uint32(i) })
		s.RunKernel(incKernelStash(base))
		return uint64(s.Cycles()), s.Acct.TotalPJ()
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Fatalf("non-deterministic: run1=(%d, %f) run2=(%d, %f)", c1, e1, c2, e2)
	}
}

func TestOccupancyLimitedByLocalMemory(t *testing.T) {
	s := New(MicrobenchConfig(StashOrg))
	base := s.Alloc(nElems, func(i int) uint32 { return uint32(i) })
	k := incKernelStash(base)
	// A block allocation of half the stash allows only 2 resident blocks;
	// the kernel must still complete correctly.
	k.LocalWordsPerBlock = s.Cfg.Stash.SizeBytes / 4 / 2
	s.RunKernel(k)
	s.FlushForVerify()
	for i := 0; i < nElems; i++ {
		if got := s.ReadGlobal(base + memdata.VAddr(4*i)); got != uint32(i+1) {
			t.Fatalf("A[%d] = %d, want %d", i, got, i+1)
		}
	}
}

func TestScratchVsStashInstructionCount(t *testing.T) {
	// The stash version of the same computation must execute fewer GPU
	// instructions: no explicit copy loops (paper: Implicit, -40%).
	run := func(org MemOrg) uint64 {
		s := New(MicrobenchConfig(org))
		base := s.Alloc(nElems, func(i int) uint32 { return uint32(i) })
		s.RunKernel(kernelFor(org, base))
		return s.Stats.Sum("cu.gpu0.instructions")
	}
	scratch := run(Scratch)
	stash := run(StashOrg)
	if stash >= scratch {
		t.Fatalf("stash instructions (%d) not below scratch (%d)", stash, scratch)
	}
}
