package system

import (
	"strings"
	"testing"

	"stash/internal/check"
	"stash/internal/faults"
	"stash/internal/memdata"
	"stash/internal/sim"
)

// runRecover runs the engine and returns the recovered panic value.
func runRecover(fn func()) (v any) {
	defer func() { v = recover() }()
	fn()
	return nil
}

// bank0Lines returns n distinct physical line addresses that all map
// to LLC bank 0, allocated fresh in s.
func bank0Lines(t *testing.T, s *System, n int) []memdata.PAddr {
	t.Helper()
	base := s.Alloc((n+2)*16*16, nil) // n+2 KiB: one bank-0 line per KiB
	var lines []memdata.PAddr
	for off := 0; off < (n+2)*16*16 && len(lines) < n; off += memdata.WordsPerLine {
		pa := s.AS.Translate(base + memdata.VAddr(off*memdata.WordBytes))
		line := memdata.LineOf(pa)
		if line%1024 == 0 && (len(lines) == 0 || lines[len(lines)-1] != line) {
			lines = append(lines, line)
		}
	}
	if len(lines) < n {
		t.Fatalf("found only %d bank-0 lines, need %d", len(lines), n)
	}
	return lines
}

// A dead LLC bank swallows its requests. With all 16 MSHRs parked on
// it, a 17th load replays every few cycles forever — simulated time
// runs away while nothing completes. The watchdog must convert that
// livelock into a structured error within the cycle budget.
func TestWatchdogCatchesStalledBankLivelock(t *testing.T) {
	cfg := MicrobenchConfig(CacheOnly)
	cfg.Check = check.Params{Invariants: true, WatchdogBudget: 20_000, ProbeEvery: 64}
	cfg.Faults = &faults.Schedule{BankStalls: []faults.BankStall{{Bank: 0, From: 0}}} // dead forever
	s := New(cfg)

	lines := bank0Lines(t, s, s.Cfg.L1.MSHRs+1)
	l1 := s.l1s[0]
	for _, line := range lines {
		l1.Load(line, memdata.Bit(0), func([memdata.WordsPerLine]uint32) {})
	}

	v := runRecover(s.Eng.Run)
	he, ok := v.(*check.HangError)
	if !ok {
		t.Fatalf("recovered %T (%v), want *check.HangError", v, v)
	}
	// Detection within the budget plus probe quantization: replays are
	// one event per 4 cycles and the probe runs every 64 events.
	if slack := he.Now - he.LastProgress; slack > 20_000+64*4 {
		t.Errorf("hang detected after %d stalled cycles, want <= %d", slack, 20_000+64*4)
	}
	if he.Outstanding == 0 {
		t.Error("HangError reports no outstanding work")
	}
	if !strings.Contains(he.Dump, "l1[0]") || !strings.Contains(he.Dump, "mshr") {
		t.Errorf("dump does not locate the wedged L1:\n%s", he.Dump)
	}
	if s.banks[0].Dropped() == 0 {
		t.Error("dead bank dropped nothing; fault was not injected")
	}
}

// A single lost request with no replay pressure drains the event queue
// with the kernel unfinished: time stands still, so only the boundary
// check can see it. RunKernel must panic with a DeadlockError carrying
// a usable dump.
func TestKernelBoundaryDetectsDeadlock(t *testing.T) {
	cfg := MicrobenchConfig(CacheOnly)
	cfg.Check = check.Params{Invariants: true, WatchdogBudget: 1 << 30}
	cfg.Faults = &faults.Schedule{BankStalls: []faults.BankStall{{Bank: 0, From: 0}}}
	s := New(cfg)
	base := s.Alloc(nElems, func(i int) uint32 { return uint32(i) })

	v := runRecover(func() { s.RunKernel(incKernelCache(base)) })
	de, ok := v.(*check.DeadlockError)
	if !ok {
		t.Fatalf("recovered %T (%v), want *check.DeadlockError", v, v)
	}
	if de.Phase != "kernel" {
		t.Errorf("Phase = %q, want kernel", de.Phase)
	}
	if !strings.Contains(de.Dump, "mshr") {
		t.Errorf("dump does not show the stranded miss:\n%s", de.Dump)
	}
	if s.banks[0].Dropped() == 0 {
		t.Error("dead bank dropped nothing; fault was not injected")
	}
}

// Arming the checker (watchdog + invariant sweeps) must not change a
// single metric: the probe never advances the clock.
func TestChecksAreMetricNeutral(t *testing.T) {
	for _, org := range []MemOrg{StashOrg, CacheOnly} {
		t.Run(org.String(), func(t *testing.T) {
			run := func(checked bool) (sim.Cycle, float64) {
				cfg := MicrobenchConfig(org)
				if checked {
					cfg.Check = check.Params{Invariants: true, WatchdogBudget: 1 << 20, ProbeEvery: 128, InvariantEvery: 4}
				}
				s := New(cfg)
				base := s.Alloc(nElems, func(i int) uint32 { return uint32(i) })
				s.RunKernel(kernelFor(org, base))
				s.FlushForVerify()
				return s.Cycles(), s.Acct.TotalPJ()
			}
			c0, e0 := run(false)
			c1, e1 := run(true)
			if c0 != c1 || e0 != e1 {
				t.Fatalf("checker perturbed the run: cycles %d vs %d, energy %v vs %v", c0, c1, e0, e1)
			}
		})
	}
}

// Timing perturbation the protocol must tolerate: bounded NoC jitter
// (per-flow FIFO preserved) and a finite bank stall change cycle
// counts but never correctness, and equal seeds reproduce bit-equal
// runs.
func TestProtocolToleratesTimingFaults(t *testing.T) {
	run := func(sched *faults.Schedule) sim.Cycle {
		cfg := MicrobenchConfig(StashOrg)
		cfg.Check = check.Params{Invariants: true, WatchdogBudget: 1 << 20}
		cfg.Faults = sched
		s := New(cfg)
		base := s.Alloc(nElems, func(i int) uint32 { return uint32(10 * i) })
		s.RunKernel(incKernelStash(base))
		s.FlushForVerify()
		for i := 0; i < nElems; i++ {
			if got := s.ReadGlobal(base + memdata.VAddr(4*i)); got != uint32(10*i+1) {
				t.Fatalf("A[%d] = %d, want %d", i, got, 10*i+1)
			}
		}
		return s.Cycles()
	}

	baseline := run(nil)
	jitterA := run(&faults.Schedule{Seed: 7, NoCJitterMax: 6})
	jitterB := run(&faults.Schedule{Seed: 7, NoCJitterMax: 6})
	if jitterA != jitterB {
		t.Errorf("equal seeds diverged: %d vs %d cycles", jitterA, jitterB)
	}
	if jitterA <= baseline {
		t.Errorf("jitter did not slow the run: %d vs baseline %d", jitterA, baseline)
	}
	stalled := run(&faults.Schedule{BankStalls: []faults.BankStall{{Bank: 0, From: 0, For: 2000}}})
	if stalled <= baseline {
		t.Errorf("finite bank stall did not slow the run: %d vs baseline %d", stalled, baseline)
	}
}

// An interrupt unwinds the run at an arbitrary event, but the engine
// and every pooled structure stay consistent: clearing the interrupt
// and draining completes the kernel with no leaked pooled objects.
func TestInterruptMidRunLeavesSystemReusable(t *testing.T) {
	cfg := MicrobenchConfig(StashOrg)
	cfg.Check = check.Params{Invariants: true, WatchdogBudget: 1 << 20}
	s := New(cfg)
	base := s.Alloc(nElems, func(i int) uint32 { return uint32(i) })

	fired := false
	s.Eng.SetInterrupt(50, func() bool {
		if !fired {
			fired = true
			return true
		}
		return false
	})
	v := runRecover(func() { s.RunKernel(incKernelStash(base)) })
	if _, ok := v.(sim.Interrupted); !ok {
		t.Fatalf("recovered %T, want sim.Interrupted", v)
	}
	if s.Eng.Pending() == 0 {
		t.Fatal("interrupt fired after the kernel already finished; lower the poll period")
	}

	// Resume: drain the remaining events, then verify the machine is
	// fully quiescent — no leaked waiters, plans, or value buffers.
	s.Eng.SetInterrupt(1, nil)
	s.Eng.Run()
	st := s.stashs[0]
	if err := st.CheckQuiescent(); err != nil {
		t.Fatalf("stash not quiescent after resumed drain: %v", err)
	}
	if w, p, vl := st.PoolCounters(); w != 0 || p != 0 || vl != 0 {
		t.Fatalf("pooled objects leaked: waiters=%d plans=%d vals=%d", w, p, vl)
	}
	s.Checker.Boundary("resume")

	// The machine stays usable: flush and verify the kernel's effect.
	for _, cu := range s.CUs {
		cu.SelfInvalidate()
	}
	s.FlushForVerify()
	for i := 0; i < nElems; i++ {
		if got := s.ReadGlobal(base + memdata.VAddr(4*i)); got != uint32(i+1) {
			t.Fatalf("A[%d] = %d, want %d", i, got, i+1)
		}
	}
}
