// Package sim provides a deterministic discrete-event simulation engine.
//
// All timing in the simulator is expressed in GPU core cycles (700 MHz in
// the paper's configuration). Components schedule closures at absolute or
// relative cycle times; events scheduled for the same cycle run in the
// order they were scheduled, which makes every simulation fully
// deterministic and therefore exactly reproducible in tests.
package sim

import "container/heap"

// Cycle is a point in (or duration of) simulated time, measured in cycles.
type Cycle uint64

type event struct {
	at  Cycle
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Interrupted is the panic value Step uses to unwind the simulation
// when an interrupt poll (see SetInterrupt) fires. Runners recover it
// at the simulation boundary and translate it into an error; it never
// escapes a correctly written driver.
type Interrupted struct{}

func (Interrupted) Error() string { return "sim: run interrupted" }

// Engine is a single-threaded discrete-event simulator.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
	steps  uint64

	interrupt  func() bool
	interruptN uint64 // poll period in executed events
	untilintr  uint64 // events left until the next poll
}

// NewEngine returns an engine with the clock at cycle 0 and no events.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// Steps reports the total number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Schedule runs fn after delay cycles (delay 0 runs it later in the
// current cycle, after all previously scheduled same-cycle events).
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at absolute cycle t. Scheduling in the past panics: it is
// always a component bug, never a recoverable condition.
func (e *Engine) At(t Cycle, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.events.pushEvent(event{at: t, seq: e.seq, fn: fn})
}

// SetInterrupt installs a poll function that Step consults once every
// `every` executed events (every < 1 is treated as 1). When the poll
// returns true the engine panics with Interrupted{}, unwinding the
// in-progress Run through all nested component callbacks; the caller
// that owns the simulation recovers it and reports cancellation as an
// error. A nil poll removes the interrupt.
func (e *Engine) SetInterrupt(every uint64, poll func() bool) {
	if every < 1 {
		every = 1
	}
	e.interrupt = poll
	e.interruptN = every
	e.untilintr = every
}

// Step executes the single earliest pending event.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.interrupt != nil {
		e.untilintr--
		if e.untilintr == 0 {
			e.untilintr = e.interruptN
			if e.interrupt() {
				panic(Interrupted{})
			}
		}
	}
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.popEvent()
	e.now = ev.at
	e.steps++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t if it has not already passed it.
func (e *Engine) RunUntil(t Cycle) {
	for len(e.events) > 0 && e.events.peek().at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d cycles past the current time.
func (e *Engine) RunFor(d Cycle) { e.RunUntil(e.now + d) }
