// Package sim provides a deterministic discrete-event simulation engine.
//
// All timing in the simulator is expressed in GPU core cycles (700 MHz in
// the paper's configuration). Components schedule closures at absolute or
// relative cycle times; events scheduled for the same cycle run in the
// order they were scheduled, which makes every simulation fully
// deterministic and therefore exactly reproducible in tests.
//
// The scheduler is allocation-free in steady state. Nearly all simulator
// events are scheduled a handful of cycles ahead (SRAM latencies, link
// traversals, pipelined replays), so the engine keeps a ring of
// ringWindow per-cycle buckets covering [now, now+ringWindow): those
// events append to a reused slice in O(1) and drain in FIFO order, which
// is exactly (cycle, seq) order within a bucket. Events beyond the
// window go to a hand-rolled binary heap of event values — no
// container/heap, whose interface methods box every event through an
// `any` allocation. Both structures reuse their backing storage across
// Run calls, so steady-state scheduling and dispatch allocate nothing.
//
// Ordering across the two structures needs no merging logic beyond the
// (at, seq) comparison: the clock never moves backwards, so for any
// cycle t every event that was pushed while t was outside the window
// (far heap) carries a smaller seq than every event pushed while t was
// inside it (ring), and draining the far heap first at equal timestamps
// preserves global FIFO order.
package sim

import "math/bits"

// Cycle is a point in (or duration of) simulated time, measured in cycles.
type Cycle uint64

type event struct {
	at  Cycle
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  func()
}

// ringWindow is the number of future cycles covered by the bucket ring.
// It must be a power of two; 64 lets the occupancy set live in one word.
const ringWindow = 64

// bucket holds the events of one absolute cycle in FIFO order. head
// indexes the next event to run; the slice keeps its capacity when the
// bucket empties, so a warmed-up ring schedules without allocating.
type bucket struct {
	at     Cycle
	head   int
	events []event
}

// Interrupted is the panic value Step uses to unwind the simulation
// when an interrupt poll (see SetInterrupt) fires. Runners recover it
// at the simulation boundary and translate it into an error; it never
// escapes a correctly written driver.
type Interrupted struct{}

func (Interrupted) Error() string { return "sim: run interrupted" }

// Engine is a single-threaded discrete-event simulator.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now   Cycle
	seq   uint64
	steps uint64

	ring    [ringWindow]bucket
	occ     uint64 // bit b set: ring[b] has unexecuted events
	far     []event
	pending int

	interrupt  func() bool
	interruptN uint64 // poll period in executed events
	untilintr  uint64 // events left until the next poll

	probes []probeEntry
}

// probeEntry is one installed host-side probe (see AddProbe).
type probeEntry struct {
	fn    func()
	every uint64 // probe period in executed events
	until uint64 // events left until the next firing
}

// NewEngine returns an engine with the clock at cycle 0 and no events.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return e.pending }

// Steps reports the total number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Schedule runs fn after delay cycles (delay 0 runs it later in the
// current cycle, after all previously scheduled same-cycle events).
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at absolute cycle t. Scheduling in the past panics: it is
// always a component bug, never a recoverable condition.
func (e *Engine) At(t Cycle, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.pending++
	if t-e.now < ringWindow {
		b := &e.ring[t&(ringWindow-1)]
		// The window is exactly ringWindow cycles wide, so each bucket
		// can hold at most one distinct cycle's events at a time.
		b.at = t
		b.events = append(b.events, event{at: t, seq: e.seq, fn: fn})
		e.occ |= 1 << (t & (ringWindow - 1))
		return
	}
	e.farPush(event{at: t, seq: e.seq, fn: fn})
}

// nextRing returns the ring bucket holding the earliest pending near
// event, or nil when the ring is empty. All ring events lie in
// [now, now+ringWindow), so rotating the occupancy set by now's bucket
// index turns "earliest cycle" into "lowest set bit".
func (e *Engine) nextRing() *bucket {
	if e.occ == 0 {
		return nil
	}
	r := uint(e.now & (ringWindow - 1))
	rot := bits.RotateLeft64(e.occ, -int(r))
	i := (r + uint(bits.TrailingZeros64(rot))) & (ringWindow - 1)
	return &e.ring[i]
}

// PeekNext reports the timestamp of the earliest pending event. ok is
// false when no events are pending; the engine never inspects an empty
// queue, making "peek on empty" a state every caller must handle rather
// than a panic.
func (e *Engine) PeekNext() (Cycle, bool) {
	if e.pending == 0 {
		return 0, false
	}
	b := e.nextRing()
	if b == nil {
		return e.far[0].at, true
	}
	if len(e.far) > 0 && e.far[0].at <= b.at {
		return e.far[0].at, true
	}
	return b.at, true
}

// SetInterrupt installs a poll function that Step consults once every
// `every` executed events (every < 1 is treated as 1). When the poll
// returns true the engine panics with Interrupted{}, unwinding the
// in-progress Run through all nested component callbacks; the caller
// that owns the simulation recovers it and reports cancellation as an
// error. A nil poll removes the interrupt.
func (e *Engine) SetInterrupt(every uint64, poll func() bool) {
	if every < 1 {
		every = 1
	}
	e.interrupt = poll
	e.interruptN = every
	e.untilintr = every
}

// AddProbe installs a host-side hook that Step calls once every
// `every` executed events (every < 1 is treated as 1). Unlike an
// engine event, a probe never advances the clock and schedules
// nothing, so installing one cannot perturb simulated timing — this is
// what the deadlock watchdog, the invariant checker, and the trace
// flusher hang off. A probe may panic (with a typed error) to unwind a
// wedged simulation; the runner that owns the simulation recovers it
// at the boundary. Probes fire in installation order.
func (e *Engine) AddProbe(every uint64, fn func()) {
	if every < 1 {
		every = 1
	}
	e.probes = append(e.probes, probeEntry{fn: fn, every: every, until: every})
}

// SetProbe removes every installed probe and, with a non-nil fn,
// installs it as the sole probe. Kept for callers that owned the
// single probe slot before AddProbe existed.
func (e *Engine) SetProbe(every uint64, fn func()) {
	e.probes = e.probes[:0]
	if fn != nil {
		e.AddProbe(every, fn)
	}
}

// Step executes the single earliest pending event.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for i := range e.probes {
		p := &e.probes[i]
		p.until--
		if p.until == 0 {
			p.until = p.every
			p.fn()
		}
	}
	if e.interrupt != nil {
		e.untilintr--
		if e.untilintr == 0 {
			e.untilintr = e.interruptN
			if e.interrupt() {
				panic(Interrupted{})
			}
		}
	}
	if e.pending == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.steps++
	e.pending--
	ev.fn()
	return true
}

// pop removes and returns the earliest pending event. At equal
// timestamps the far heap drains before the ring bucket: its events
// were pushed while the cycle was still outside the window, i.e. with
// strictly smaller seq (see the package comment).
func (e *Engine) pop() event {
	b := e.nextRing()
	if b == nil || (len(e.far) > 0 && e.far[0].at <= b.at) {
		return e.farPop()
	}
	ev := b.events[b.head]
	b.events[b.head].fn = nil // release the closure promptly
	b.head++
	if b.head == len(b.events) {
		b.head = 0
		b.events = b.events[:0]
		e.occ &^= 1 << (b.at & (ringWindow - 1))
	}
	return ev
}

// --- far heap: a hand-rolled binary min-heap ordered by (at, seq) ---

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) farPush(ev event) {
	h := append(e.far, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.far = h
}

func (e *Engine) farPop() event {
	h := e.far
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n].fn = nil // release the closure promptly
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && eventLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < n && eventLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	e.far = h
	return top
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t if it has not already passed it.
func (e *Engine) RunUntil(t Cycle) {
	for {
		at, ok := e.PeekNext()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d cycles past the current time.
func (e *Engine) RunFor(d Cycle) { e.RunUntil(e.now + d) }
