// Package sim provides a deterministic discrete-event simulation engine.
//
// All timing in the simulator is expressed in GPU core cycles (700 MHz in
// the paper's configuration). Components schedule closures at absolute or
// relative cycle times; events scheduled for the same cycle run in the
// order they were scheduled, which makes every simulation fully
// deterministic and therefore exactly reproducible in tests.
//
// The scheduler is allocation-free in steady state. Nearly all simulator
// events are scheduled a handful of cycles ahead (SRAM latencies, link
// traversals, pipelined replays), so the engine keeps a ring of
// ringWindow per-cycle buckets covering [now, now+ringWindow): those
// events append to a reused slice in O(1) and drain in FIFO order, which
// is exactly (cycle, seq) order within a bucket. Events beyond the
// window go to a hand-rolled binary heap of event values — no
// container/heap, whose interface methods box every event through an
// `any` allocation. Both structures reuse their backing storage across
// Run calls, so steady-state scheduling and dispatch allocate nothing.
//
// Ordering across the two structures needs no merging logic beyond the
// (at, seq) comparison: the clock never moves backwards, so for any
// cycle t every event that was pushed while t was outside the window
// (far heap) carries a smaller seq than every event pushed while t was
// inside it (ring), and draining the far heap first at equal timestamps
// preserves global FIFO order.
package sim

import "math/bits"

// Cycle is a point in (or duration of) simulated time, measured in cycles.
type Cycle uint64

type event struct {
	at  Cycle
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  func()
}

// ringWindow is the number of future cycles covered by the bucket ring.
// It must be a power of two and a multiple of 64 (the occupancy set is
// an array of words). 256 covers every common component latency —
// SRAM hits, link traversals, replays, and the 170-cycle DRAM fill —
// so in steady state the far heap sees almost no traffic.
const ringWindow = 256

// occWords is the length of the occupancy bit-set. nextRing's
// empty-ring fast path is unrolled for exactly this many words.
const occWords = ringWindow / 64

var _ [1]struct{} = [occWords - 3]struct{}{} // static: occWords == 4

// bucket holds the events of one absolute cycle in FIFO order. head
// indexes the next event to run; the slice keeps its capacity when the
// bucket empties, so a warmed-up ring schedules without allocating.
type bucket struct {
	at     Cycle
	head   int
	events []event
}

// Interrupted is the panic value Step uses to unwind the simulation
// when an interrupt poll (see SetInterrupt) fires. Runners recover it
// at the simulation boundary and translate it into an error; it never
// escapes a correctly written driver.
type Interrupted struct{}

func (Interrupted) Error() string { return "sim: run interrupted" }

// Engine is a single-threaded discrete-event simulator.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now   Cycle
	seq   uint64
	steps uint64

	ring    [ringWindow]bucket
	occ     [occWords]uint64 // bit b set: ring[b] has unexecuted events
	far     []event
	pending int

	interrupt  func() bool
	interruptN uint64 // poll period in executed events
	untilintr  uint64 // events left until the next poll

	probes []probeEntry

	// untilHook is the merged countdown to the earliest due hook (probe
	// or interrupt poll); sinceHook+1 is the stride slowTick credits to
	// every per-hook counter when untilHook reaches zero. Together they
	// let tick touch one word per event instead of every hook's counter.
	untilHook uint64
	sinceHook uint64
}

// probeEntry is one installed host-side probe (see AddProbe).
type probeEntry struct {
	fn    func()
	every uint64 // probe period in executed events
	until uint64 // events left until the next firing
}

// NewEngine returns an engine with the clock at cycle 0 and no events.
func NewEngine() *Engine {
	e := &Engine{}
	e.rearmHooks()
	return e
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return e.pending }

// Steps reports the total number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Schedule runs fn after delay cycles (delay 0 runs it later in the
// current cycle, after all previously scheduled same-cycle events).
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at absolute cycle t. Scheduling in the past panics: it is
// always a component bug, never a recoverable condition.
func (e *Engine) At(t Cycle, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.pending++
	if t-e.now < ringWindow {
		i := t & (ringWindow - 1)
		b := &e.ring[i]
		// The window is exactly ringWindow cycles wide, so each bucket
		// can hold at most one distinct cycle's events at a time.
		b.at = t
		b.events = append(b.events, event{at: t, seq: e.seq, fn: fn})
		e.occ[i>>6] |= 1 << (i & 63)
		return
	}
	e.farPush(event{at: t, seq: e.seq, fn: fn})
}

// nextRing returns the ring bucket holding the earliest pending near
// event, or nil when the ring is empty. All ring events lie in
// [now, now+ringWindow), so the scan walks the occupancy words
// cyclically from now's bucket index: the first set bit it meets is
// the earliest cycle.
func (e *Engine) nextRing() *bucket {
	if e.occ[0]|e.occ[1]|e.occ[2]|e.occ[3] == 0 {
		return nil
	}
	r := uint(e.now & (ringWindow - 1))
	w := r >> 6
	if m := e.occ[w] &^ (1<<(r&63) - 1); m != 0 {
		return &e.ring[w<<6+uint(bits.TrailingZeros64(m))]
	}
	for k := uint(1); k <= occWords; k++ {
		ww := (w + k) & (occWords - 1)
		m := e.occ[ww]
		if ww == w {
			m &= 1<<(r&63) - 1 // wrapped: only bits before now's slot
		}
		if m != 0 {
			return &e.ring[ww<<6+uint(bits.TrailingZeros64(m))]
		}
	}
	return nil
}

// PeekNext reports the timestamp of the earliest pending event. ok is
// false when no events are pending; the engine never inspects an empty
// queue, making "peek on empty" a state every caller must handle rather
// than a panic.
func (e *Engine) PeekNext() (Cycle, bool) {
	if e.pending == 0 {
		return 0, false
	}
	b := e.nextRing()
	if b == nil {
		return e.far[0].at, true
	}
	if len(e.far) > 0 && e.far[0].at <= b.at {
		return e.far[0].at, true
	}
	return b.at, true
}

// SetInterrupt installs a poll function that Step consults once every
// `every` executed events (every < 1 is treated as 1). When the poll
// returns true the engine panics with Interrupted{}, unwinding the
// in-progress Run through all nested component callbacks; the caller
// that owns the simulation recovers it and reports cancellation as an
// error. A nil poll removes the interrupt.
func (e *Engine) SetInterrupt(every uint64, poll func() bool) {
	if every < 1 {
		every = 1
	}
	e.settleHooks()
	e.interrupt = poll
	e.interruptN = every
	e.untilintr = every
	e.rearmHooks()
}

// AddProbe installs a host-side hook that Step calls once every
// `every` executed events (every < 1 is treated as 1). Unlike an
// engine event, a probe never advances the clock and schedules
// nothing, so installing one cannot perturb simulated timing — this is
// what the deadlock watchdog, the invariant checker, and the trace
// flusher hang off. A probe may panic (with a typed error) to unwind a
// wedged simulation; the runner that owns the simulation recovers it
// at the boundary. Probes fire in installation order.
func (e *Engine) AddProbe(every uint64, fn func()) {
	if every < 1 {
		every = 1
	}
	e.settleHooks()
	e.probes = append(e.probes, probeEntry{fn: fn, every: every, until: every})
	e.rearmHooks()
}

// SetProbe removes every installed probe and, with a non-nil fn,
// installs it as the sole probe. Kept for callers that owned the
// single probe slot before AddProbe existed.
func (e *Engine) SetProbe(every uint64, fn func()) {
	e.settleHooks()
	e.probes = e.probes[:0]
	e.rearmHooks()
	if fn != nil {
		e.AddProbe(every, fn)
	}
}

// tick runs the per-executed-event host hooks: probes in installation
// order, then the interrupt poll. Step calls it before popping an
// event; Run's batched drain calls it once per event it executes, so
// probe and interrupt cadence is identical on both paths. The merged
// untilHook countdown makes the common nothing-due event one decrement
// and one branch instead of a walk over every installed hook.
func (e *Engine) tick() {
	e.untilHook--
	if e.untilHook == 0 {
		e.slowTick()
	}
}

// slowTick fires the due hooks and recomputes the merged countdown.
func (e *Engine) slowTick() {
	fired := e.sinceHook + 1
	// Degenerate re-arm first: a hook may panic (watchdog, invariant
	// checker, interrupt), skipping rearmHooks below. Per-event ticking
	// is then still correct should the engine keep running.
	e.untilHook = 1
	e.sinceHook = 0
	for i := range e.probes {
		p := &e.probes[i]
		p.until -= fired
		if p.until == 0 {
			p.until = p.every
			p.fn()
		}
	}
	if e.interrupt != nil {
		e.untilintr -= fired
		if e.untilintr == 0 {
			e.untilintr = e.interruptN
			if e.interrupt() {
				panic(Interrupted{})
			}
		}
	}
	e.rearmHooks()
}

// rearmHooks recomputes the merged countdown to the earliest due hook.
// With no hooks installed it re-arms to a large stride so tick stays a
// single decrement; sinceHook carries the elapsed events forward so
// hook cadence is exact across re-arms.
func (e *Engine) rearmHooks() {
	next := uint64(1) << 32
	for i := range e.probes {
		if u := e.probes[i].until; u < next {
			next = u
		}
	}
	if e.interrupt != nil && e.untilintr < next {
		next = e.untilintr
	}
	e.untilHook = next
	e.sinceHook = next - 1
}

// settleHooks charges the events elapsed since the last re-arm to every
// per-hook counter, so a hook installed mid-stride starts its period
// from the current event rather than the stride boundary. No counter
// can reach zero here: the elapsed count is strictly less than the
// stride, which is the minimum of all counters at re-arm time.
func (e *Engine) settleHooks() {
	elapsed := e.sinceHook + 1 - e.untilHook
	if elapsed == 0 {
		return
	}
	for i := range e.probes {
		e.probes[i].until -= elapsed
	}
	if e.interrupt != nil {
		e.untilintr -= elapsed
	}
}

// Step executes the single earliest pending event.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	e.tick()
	if e.pending == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.steps++
	e.pending--
	ev.fn()
	return true
}

// pop removes and returns the earliest pending event. At equal
// timestamps the far heap drains before the ring bucket: its events
// were pushed while the cycle was still outside the window, i.e. with
// strictly smaller seq (see the package comment).
func (e *Engine) pop() event {
	b := e.nextRing()
	if b == nil || (len(e.far) > 0 && e.far[0].at <= b.at) {
		return e.farPop()
	}
	ev := b.events[b.head]
	b.events[b.head].fn = nil // release the closure promptly
	b.head++
	if b.head == len(b.events) {
		b.head = 0
		b.events = b.events[:0]
		i := b.at & (ringWindow - 1)
		e.occ[i>>6] &^= 1 << (i & 63)
	}
	return ev
}

// --- far heap: a hand-rolled binary min-heap ordered by (at, seq) ---

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) farPush(ev event) {
	h := append(e.far, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.far = h
}

func (e *Engine) farPop() event {
	h := e.far
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n].fn = nil // release the closure promptly
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && eventLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < n && eventLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	e.far = h
	return top
}

// Run executes events until none remain.
//
// Run drains the earliest ring bucket in one batch instead of paying
// the occupancy-set rotation in nextRing for every event: once the
// earliest bucket is located and no far event is due at or before its
// cycle, none can become due mid-drain (pre-existing far events are
// strictly later, and a far push from inside the drain lands at least
// ringWindow cycles out), so the whole FIFO — including same-cycle
// events appended during the drain — executes with one cheap
// head/len check per event. Probe and interrupt cadence, event order,
// and panic-time engine state are identical to repeated Step calls.
func (e *Engine) Run() {
	for e.pending > 0 {
		b := e.nextRing()
		if b == nil || (len(e.far) > 0 && e.far[0].at <= b.at) {
			e.Step() // a far event is due first: take the slow path
			continue
		}
		for b.head < len(b.events) {
			e.tick()
			ev := b.events[b.head]
			b.events[b.head].fn = nil // release the closure promptly
			b.head++
			if b.head == len(b.events) {
				b.head = 0
				b.events = b.events[:0]
				i := b.at & (ringWindow - 1)
				e.occ[i>>6] &^= 1 << (i & 63)
			}
			e.now = ev.at
			e.steps++
			e.pending--
			ev.fn()
		}
	}
	// The equivalent Step loop ends with one empty call that still runs
	// the probes and the interrupt poll; keep that visible cadence.
	e.tick()
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t if it has not already passed it.
func (e *Engine) RunUntil(t Cycle) {
	for {
		at, ok := e.PeekNext()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d cycles past the current time.
func (e *Engine) RunFor(d Cycle) { e.RunUntil(e.now + d) }
