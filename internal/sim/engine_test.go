package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	e := NewEngine()
	var fired Cycle
	e.Schedule(10, func() { fired = e.Now() })
	e.Run()
	if fired != 10 {
		t.Fatalf("event fired at %d, want 10", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Cycle
	e.Schedule(5, func() {
		trace = append(trace, e.Now())
		e.Schedule(3, func() { trace = append(trace, e.Now()) })
		e.Schedule(0, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	want := []Cycle{5, 5, 8}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(3, func() {})
	})
	e.Run()
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	for _, d := range []Cycle{2, 4, 6, 8} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 2 and 4 only", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %d, want 5", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4", fired)
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := NewEngine()
	e.Schedule(3, func() {})
	e.Run()
	e.RunFor(10)
	if e.Now() != 13 {
		t.Fatalf("Now() = %d, want 13", e.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step() on empty engine returned true")
	}
	e.Schedule(1, func() {})
	if !e.Step() {
		t.Fatal("Step() with pending event returned false")
	}
	if e.Steps() != 1 {
		t.Fatalf("Steps() = %d, want 1", e.Steps())
	}
}

func TestInterruptUnwindsRun(t *testing.T) {
	e := NewEngine()
	var spawn func()
	executed := 0
	spawn = func() {
		executed++
		e.Schedule(1, spawn)
	}
	e.Schedule(1, spawn)

	polls := 0
	e.SetInterrupt(10, func() bool {
		polls++
		return polls >= 3
	})
	func() {
		defer func() {
			if _, ok := recover().(Interrupted); !ok {
				t.Fatal("Run did not panic with Interrupted")
			}
		}()
		e.Run()
		t.Fatal("self-rescheduling event chain terminated without interrupt")
	}()
	if executed < 20 || executed > 30 {
		t.Fatalf("executed %d events before the third poll, want ~30", executed)
	}

	// Removing the interrupt lets the engine run again (the pending
	// event chain is still there; poll it away after a bounded prefix).
	e.SetInterrupt(1, func() bool { return executed >= 40 })
	func() {
		defer func() { recover() }()
		e.Run()
	}()
	e.SetInterrupt(0, nil)
}

func TestProbeFiresEveryN(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 100; i++ {
		e.Schedule(Cycle(i), fn)
	}
	probes := 0
	var atSteps []uint64
	e.SetProbe(10, func() {
		probes++
		atSteps = append(atSteps, e.Steps())
	})
	e.Run()
	if probes != 10 {
		t.Fatalf("probe fired %d times over 100 events with period 10, want 10", probes)
	}
	// The probe fires at the top of every 10th Step call, before that
	// call's event executes, so the k-th firing sees 10k-1 steps.
	for i, s := range atSteps {
		if want := uint64(i*10 + 9); s != want {
			t.Fatalf("probe %d saw Steps()=%d, want %d", i, s, want)
		}
	}
}

// A probe never advances the clock or perturbs event order: a run with
// a probe installed produces the identical trace as one without.
func TestProbeIsTimingNeutral(t *testing.T) {
	run := func(withProbe bool) []Cycle {
		e := NewEngine()
		if withProbe {
			e.SetProbe(3, func() {})
		}
		var trace []Cycle
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, e.Now())
			if depth < 4 {
				e.Schedule(Cycle(depth+1), func() { spawn(depth + 1) })
				e.Schedule(70, func() { spawn(depth + 1) })
			}
		}
		e.Schedule(0, func() { spawn(0) })
		e.Run()
		return trace
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("probe changed event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe changed trace at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// A probe may panic to unwind a wedged run (the watchdog does this);
// the engine must stay fully usable afterwards: no event was half
// executed, the pending queue is intact, and the run can be resumed to
// completion.
func TestEngineReusableAfterProbePanic(t *testing.T) {
	e := NewEngine()
	executed := 0
	var spawn func()
	n := 0
	spawn = func() {
		executed++
		if n++; n < 50 {
			e.Schedule(1, spawn)
		}
	}
	e.Schedule(1, spawn)

	type wedged struct{}
	fired := false
	e.SetProbe(10, func() {
		if !fired && e.Steps() >= 20 {
			fired = true
			panic(wedged{})
		}
	})
	func() {
		defer func() {
			if _, ok := recover().(wedged); !ok {
				t.Fatal("Run did not panic with the probe's value")
			}
		}()
		e.Run()
	}()
	if e.Pending() == 0 {
		t.Fatal("probe panic drained the queue")
	}
	// Resume: the remaining chain plus a fresh event drain normally.
	done := false
	e.Schedule(100, func() { done = true })
	e.Run()
	if executed != 50 || !done || e.Pending() != 0 {
		t.Fatalf("after resume: executed=%d done=%v pending=%d, want 50/true/0", executed, done, e.Pending())
	}
	e.SetProbe(0, nil)
	e.Schedule(1, func() {})
	e.Run()
}

// Property: regardless of insertion order, events execute in
// non-decreasing timestamp order, and same-timestamp events execute in
// insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%64) + 1
		type rec struct {
			at  Cycle
			seq int
		}
		var got []rec
		for i := 0; i < count; i++ {
			at := Cycle(rng.Intn(16))
			i := i
			e.Schedule(at, func() { got = append(got, rec{e.Now(), i}) })
		}
		e.Run()
		if len(got) != count {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: randomized At/Schedule calls with delays spanning the
// near-future bucket ring AND the far heap (including delays straddling
// the window boundary, and nested scheduling from running events) drain
// in strict (cycle, seq) order. This is the scheduler's core contract:
// an event bound for the far heap at push time must still interleave
// correctly with ring events that arrive at the same cycle later.
func TestScheduleDrainOrderAcrossStructures(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n)%96 + 8
		seq := 0
		type rec struct {
			at  Cycle
			seq int
		}
		var got []rec
		note := func(s int) { got = append(got, rec{e.Now(), s}) }
		var delays = []Cycle{0, 1, 2, 3, 62, 63, 64, 65, 100, 1000}
		for i := 0; i < count; i++ {
			d := delays[rng.Intn(len(delays))]
			s := seq
			seq++
			nest := rng.Intn(4) == 0
			e.Schedule(d, func() {
				note(s)
				if nest {
					d2 := delays[rng.Intn(len(delays))]
					s2 := seq
					seq++
					e.Schedule(d2, func() { note(s2) })
				}
			})
		}
		e.Run()
		if e.Pending() != 0 {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
		}
		// Same-cycle events must run in schedule order. Events scheduled
		// from inside a callback at the current cycle have larger seq and
		// must run later within the cycle, which the seq check covers.
		for i := 1; i < len(got); i++ {
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekNext(t *testing.T) {
	e := NewEngine()
	if _, ok := e.PeekNext(); ok {
		t.Fatal("PeekNext on empty engine reported an event")
	}
	e.Schedule(100, func() {}) // far heap
	if at, ok := e.PeekNext(); !ok || at != 100 {
		t.Fatalf("PeekNext = %d,%v; want 100,true", at, ok)
	}
	e.Schedule(5, func() {}) // ring
	if at, ok := e.PeekNext(); !ok || at != 5 {
		t.Fatalf("PeekNext = %d,%v; want 5,true", at, ok)
	}
	e.Run()
	if _, ok := e.PeekNext(); ok {
		t.Fatal("PeekNext after Run reported an event")
	}
}

// RunUntil on an empty engine must not inspect an empty queue: the old
// implementation peeked unconditionally and relied on the caller's
// length guard; PeekNext makes the empty case an engine invariant.
func TestRunUntilEmptyEngine(t *testing.T) {
	e := NewEngine()
	e.RunUntil(50)
	if e.Now() != 50 {
		t.Fatalf("Now() = %d, want 50", e.Now())
	}
	e.RunFor(25)
	if e.Now() != 75 {
		t.Fatalf("Now() = %d, want 75", e.Now())
	}
}

func TestRunUntilExactBoundaryAndFarEvents(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	for _, d := range []Cycle{10, 200, 300} { // ring, far, far
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(200) // inclusive boundary: the far event at 200 runs
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 200 {
		t.Fatalf("fired %v, want [10 200]", fired)
	}
	if e.Now() != 200 {
		t.Fatalf("Now() = %d, want 200", e.Now())
	}
	e.RunUntil(299) // stops short of the event at 300
	if len(fired) != 2 {
		t.Fatalf("fired %v, want no event before 300", fired)
	}
	if e.Now() != 299 {
		t.Fatalf("Now() = %d, want 299", e.Now())
	}
	// Events scheduled after a clock bump land relative to the new now.
	e.Schedule(2, func() { fired = append(fired, e.Now()) })
	e.Run()
	if len(fired) != 4 || fired[2] != 300 || fired[3] != 301 {
		t.Fatalf("fired %v, want [... 300 301]", fired)
	}
}

func TestRunUntilDoesNotMoveClockBackwards(t *testing.T) {
	e := NewEngine()
	e.Schedule(40, func() {})
	e.Run()
	e.RunUntil(10) // in the past: no-op
	if e.Now() != 40 {
		t.Fatalf("Now() = %d, want 40", e.Now())
	}
}

// Steady-state scheduling and dispatch must not allocate: once the ring
// buckets and far heap have grown their backing storage, a
// schedule/execute cycle reuses it. The closure passed to Schedule is
// hoisted out of the measured function so the test pins the engine's
// own cost, not the caller's closure.
func TestZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm up every ring bucket and the far-heap capacity.
	for i := 0; i < 2000; i++ {
		e.Schedule(Cycle(i%(ringWindow+16)), fn)
	}
	e.Run()
	if avg := testing.AllocsPerRun(100, func() {
		for d := Cycle(0); d < ringWindow+16; d += 3 { // spans ring and far heap
			e.Schedule(d, fn)
		}
		e.Run()
	}); avg != 0 {
		t.Fatalf("steady-state schedule+dispatch allocates %v allocs/run, want 0", avg)
	}
}

// Property: the engine is deterministic — two identical runs produce an
// identical execution trace.
func TestDeterminismProperty(t *testing.T) {
	run := func(seed int64) []Cycle {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var trace []Cycle
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, e.Now())
			if depth < 3 {
				k := rng.Intn(3)
				for i := 0; i < k; i++ {
					e.Schedule(Cycle(rng.Intn(5)), func() { spawn(depth + 1) })
				}
			}
		}
		for i := 0; i < 8; i++ {
			e.Schedule(Cycle(rng.Intn(10)), func() { spawn(0) })
		}
		e.Run()
		return trace
	}
	f := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
