// Package faults is a seeded, deterministic fault-injection harness
// for the simulator. A Schedule describes which timing perturbations
// and component faults to apply; an Injector evaluates that schedule
// with a splitmix64-derived pseudo-random stream, so the same seed
// always produces the same fault pattern and every failure a fault
// uncovers is exactly reproducible.
//
// Faults come in two flavors:
//
//   - Timing perturbation (NoC jitter, DMA pacing delay, finite bank
//     stalls): legal reorderings/slowdowns the protocol must tolerate.
//     Runs complete and verify; only cycle counts change.
//
//   - Induced failures (a bank stalled forever swallows its packets —
//     a lost wakeup): the run cannot complete, and the watchdog layer
//     (internal/check) must convert the hang into a structured error.
//
// The injector is wired into components through plain closures
// (noc.Network.SetPerturb, llc.Bank.SetStall, dma.Engine.SetExtraDelay)
// so the component packages never import this one.
package faults

import (
	"fmt"

	"stash/internal/sim"
)

// BankStall describes one LLC-bank stall window. For == 0 means the
// bank is dead from From onward: packets that arrive during a dead
// window are silently dropped, which is exactly a lost wakeup.
type BankStall struct {
	Bank int       // bank (mesh node) index
	From sim.Cycle // first stalled cycle
	For  sim.Cycle // window length; 0 = forever (drop packets)
}

// Schedule is a config-driven description of the faults to inject.
// The zero value injects nothing.
type Schedule struct {
	// Seed selects the pseudo-random stream for jitter. Two runs with
	// equal schedules are identical.
	Seed uint64
	// NoCJitterMax adds [0, NoCJitterMax] extra cycles to each remote
	// packet delivery. Per-(src,dst) delivery order is preserved by
	// the network, so jitter never reorders a flow.
	NoCJitterMax sim.Cycle
	// BankStalls lists LLC-bank stall windows.
	BankStalls []BankStall
	// DMAExtraDelay stretches the DMA engine's issue pacing by this
	// many cycles per element.
	DMAExtraDelay sim.Cycle
}

// Enabled reports whether the schedule injects any fault at all.
func (s *Schedule) Enabled() bool {
	return s != nil && (s.NoCJitterMax > 0 || len(s.BankStalls) > 0 || s.DMAExtraDelay > 0)
}

// Injector evaluates a Schedule deterministically.
type Injector struct {
	sched   Schedule
	rng     uint64 // splitmix64 state
	dropped int
}

// NewInjector returns an injector for the schedule.
func NewInjector(s Schedule) *Injector {
	return &Injector{sched: s, rng: s.Seed}
}

// splitmix64 advances the stream and returns the next value. The
// constants are the reference splitmix64 increments.
func (in *Injector) splitmix64() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Jitter returns the extra delivery latency for one remote packet on
// the src→dst flow. Draws are consumed in packet-send order, which the
// engine makes deterministic.
func (in *Injector) Jitter(src, dst int) sim.Cycle {
	m := in.sched.NoCJitterMax
	if m == 0 {
		return 0
	}
	// Mix the flow into the draw so distinct flows decorrelate even
	// under interleaving changes, while staying fully deterministic.
	in.rng += uint64(src*1021+dst) * 0x9e3779b97f4a7c15
	return sim.Cycle(in.splitmix64() % uint64(m+1))
}

// BankStall reports how a packet arriving at bank at cycle now is
// perturbed: delayed until the end of a finite stall window, or
// dropped entirely inside a dead (For == 0) window. Drops are counted.
func (in *Injector) BankStall(bank int, now sim.Cycle) (delay sim.Cycle, drop bool) {
	for i := range in.sched.BankStalls {
		st := &in.sched.BankStalls[i]
		if st.Bank != bank || now < st.From {
			continue
		}
		if st.For == 0 {
			in.dropped++
			return 0, true
		}
		if end := st.From + st.For; now < end {
			delay += end - now
		}
	}
	return delay, false
}

// DMAExtraDelay returns the per-element pacing stretch.
func (in *Injector) DMAExtraDelay() sim.Cycle { return in.sched.DMAExtraDelay }

// Dropped reports how many packets dead banks have swallowed.
func (in *Injector) Dropped() int { return in.dropped }

// String summarizes the schedule for diagnostics.
func (in *Injector) String() string {
	return fmt.Sprintf("faults: seed=%d jitter<=%d stalls=%d dma+%d dropped=%d",
		in.sched.Seed, in.sched.NoCJitterMax, len(in.sched.BankStalls), in.sched.DMAExtraDelay, in.dropped)
}
