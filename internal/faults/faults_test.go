package faults

import (
	"testing"

	"stash/internal/sim"
)

func TestScheduleEnabled(t *testing.T) {
	var nilSched *Schedule
	if nilSched.Enabled() {
		t.Error("nil schedule reports enabled")
	}
	if (&Schedule{Seed: 7}).Enabled() {
		t.Error("seed-only schedule reports enabled")
	}
	for _, s := range []Schedule{
		{NoCJitterMax: 1},
		{BankStalls: []BankStall{{Bank: 0}}},
		{DMAExtraDelay: 3},
	} {
		if !s.Enabled() {
			t.Errorf("schedule %+v reports disabled", s)
		}
	}
}

// Same seed, same draw sequence — bit-for-bit.
func TestJitterDeterministic(t *testing.T) {
	draw := func(seed uint64) []sim.Cycle {
		in := NewInjector(Schedule{Seed: seed, NoCJitterMax: 9})
		var out []sim.Cycle
		for i := 0; i < 200; i++ {
			out = append(out, in.Jitter(i%16, (i*7)%16))
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jitter streams")
	}
}

func TestJitterBounded(t *testing.T) {
	in := NewInjector(Schedule{Seed: 1, NoCJitterMax: 5})
	for i := 0; i < 1000; i++ {
		if j := in.Jitter(i%16, i%3); j > 5 {
			t.Fatalf("jitter %d exceeds max 5", j)
		}
	}
	zero := NewInjector(Schedule{Seed: 1})
	if j := zero.Jitter(0, 1); j != 0 {
		t.Errorf("jitter without NoCJitterMax = %d, want 0", j)
	}
}

func TestBankStallWindows(t *testing.T) {
	in := NewInjector(Schedule{BankStalls: []BankStall{
		{Bank: 3, From: 100, For: 50}, // finite: delay to cycle 150
		{Bank: 5, From: 200},          // dead: drop forever
	}})

	if d, drop := in.BankStall(3, 50); d != 0 || drop {
		t.Errorf("before window: delay=%d drop=%v", d, drop)
	}
	if d, drop := in.BankStall(3, 120); d != 30 || drop {
		t.Errorf("inside finite window: delay=%d drop=%v, want 30,false", d, drop)
	}
	if d, drop := in.BankStall(3, 150); d != 0 || drop {
		t.Errorf("at window end: delay=%d drop=%v", d, drop)
	}
	if _, drop := in.BankStall(5, 199); drop {
		t.Error("dropped before dead window opened")
	}
	if _, drop := in.BankStall(5, 200); !drop {
		t.Error("dead window did not drop")
	}
	if _, drop := in.BankStall(5, 1_000_000); !drop {
		t.Error("dead window is not forever")
	}
	if _, drop := in.BankStall(4, 500); drop {
		t.Error("unlisted bank dropped a packet")
	}
	if got := in.Dropped(); got != 2 {
		t.Errorf("Dropped() = %d, want 2", got)
	}
}
