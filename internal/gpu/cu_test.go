package gpu

import (
	"testing"

	"stash/internal/cache"
	"stash/internal/coh"
	"stash/internal/core"
	"stash/internal/energy"
	"stash/internal/isa"
	"stash/internal/llc"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/scratch"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/vm"
)

type rig struct {
	eng   *sim.Engine
	mem   *memdata.Memory
	as    *vm.AddressSpace
	cu    *CU
	set   *stats.Set
	acct  *energy.Account
	banks []*llc.Bank
}

// read returns the coherent value of va: the LLC copy if resident,
// else DRAM. Callers flush owners first.
func (r *rig) read(va memdata.VAddr) uint32 {
	pa := r.as.Translate(va)
	b := r.banks[llc.BankOf(memdata.LineOf(pa), 16)]
	if v, owner, ok := b.Peek(pa); ok {
		if owner != nil {
			panic("rig.read: word still registered")
		}
		return v
	}
	return r.mem.LoadWord(pa)
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	net := noc.New(eng, 4, 4, acct, set)
	mem := memdata.NewMemory()
	as := vm.NewAddressSpace()
	r := &rig{eng: eng, mem: mem, as: as, set: set, acct: acct}
	for n := 0; n < 16; n++ {
		router := coh.NewRouter()
		bank := llc.NewBank(eng, net, n, llc.DefaultParams(), mem, acct, set)
		r.banks = append(r.banks, bank)
		router.Attach(coh.ToLLC, bank)
		if n == 0 {
			l1 := cache.New(eng, net, n, "cu", cache.DefaultParams(), acct, set)
			router.Attach(coh.ToL1, l1)
			sp := scratch.New("cu", scratch.DefaultParams(), acct, set)
			st := core.New(eng, net, n, "cu", core.DefaultParams(), as, acct, set)
			router.Attach(coh.ToStash, st)
			r.cu = New(eng, n, "cu", DefaultParams(), as, l1, sp, st, nil, acct, set)
		}
		net.Register(n, func(m *noc.Message) { router.Deliver(m.Payload.(*coh.Packet)) })
	}
	return r
}

func (r *rig) alloc(n int, gen func(i int) uint32) memdata.VAddr {
	base := r.as.Alloc(n * 4)
	if gen != nil {
		for i := 0; i < n; i++ {
			r.mem.StoreWord(r.as.Translate(base+memdata.VAddr(4*i)), gen(i))
		}
	}
	return base
}

func (r *rig) run(k *Kernel, blocks int) {
	done := false
	r.cu.Launch(k, 0, blocks, func() { done = true })
	r.eng.Run()
	if !done {
		panic("kernel did not complete")
	}
}

func TestCoalescingGroupsLanesIntoLines(t *testing.T) {
	r := newRig(t)
	base := r.alloc(64, func(i int) uint32 { return uint32(i) })
	b := isa.NewBuilder()
	tid, addr, v := b.Reg(), b.Reg(), b.Reg()
	b.Special(tid, isa.SpecTid)
	b.MulImm(addr, tid, 4)
	b.AddImm(addr, addr, int64(base))
	b.LdGlobal(v, addr, 0)
	k := &Kernel{Prog: b.MustBuild(), BlockDim: 32, GridDim: 1}
	r.run(k, 1)
	// 32 consecutive words = 2 cache-line transactions, not 32.
	if got := r.set.Sum("cu.cu.global_transactions"); got != 2 {
		t.Fatalf("transactions = %d, want 2", got)
	}
}

func TestBarrierOrdersScratchpadPhases(t *testing.T) {
	r := newRig(t)
	out := r.alloc(64, nil)
	// Thread i writes scratch[i]; after the barrier thread i reads
	// scratch[63-i] — correct only if the barrier separates the phases.
	b := isa.NewBuilder()
	tid, rev, v, addr := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Special(tid, isa.SpecTid)
	b.AddImm(v, tid, 1000)
	b.StShared(tid, 0, v)
	b.Barrier()
	b.MovImm(rev, 63)
	b.Sub(rev, rev, tid)
	b.LdShared(v, rev, 0)
	b.MulImm(addr, tid, 4)
	b.AddImm(addr, addr, int64(out))
	b.StGlobal(addr, 0, v)
	k := &Kernel{Prog: b.MustBuild(), BlockDim: 64, GridDim: 1, LocalWordsPerBlock: 64}
	r.run(k, 1)
	r.cu.L1().WritebackAll()
	r.eng.Run()
	for i := 0; i < 64; i++ {
		want := uint32(1000 + 63 - i)
		if got := r.read(out + memdata.VAddr(4*i)); got != want {
			t.Fatalf("out[%d] = %d, want %d (barrier not enforced)", i, got, want)
		}
	}
}

func TestMultipleWarpsInterleave(t *testing.T) {
	r := newRig(t)
	base := r.alloc(256, func(i int) uint32 { return 1 })
	b := isa.NewBuilder()
	tid, addr, v := b.Reg(), b.Reg(), b.Reg()
	b.Special(tid, isa.SpecTid)
	b.MulImm(addr, tid, 4)
	b.AddImm(addr, addr, int64(base))
	b.LdGlobal(v, addr, 0)
	b.AddImm(v, v, 1)
	b.StGlobal(addr, 0, v)
	k := &Kernel{Prog: b.MustBuild(), BlockDim: 256, GridDim: 1}
	r.run(k, 1)
	r.cu.L1().WritebackAll()
	r.eng.Run()
	for i := 0; i < 256; i++ {
		if got := r.read(base + memdata.VAddr(4*i)); got != 2 {
			t.Fatalf("A[%d] = %d, want 2", i, got)
		}
	}
}

func TestLatencyHidingAcrossWarps(t *testing.T) {
	// With 8 warps each issuing an independent global load, total time
	// must be far less than 8x a single warp's time (memory overlap).
	r := newRig(t)
	base := r.alloc(4096, func(i int) uint32 { return 0 })
	mk := func(blockDim int) *Kernel {
		b := isa.NewBuilder()
		tid, addr, v := b.Reg(), b.Reg(), b.Reg()
		b.Special(tid, isa.SpecTid)
		b.MulImm(addr, tid, 4)
		b.AddImm(addr, addr, int64(base))
		b.LdGlobal(v, addr, 0)
		return &Kernel{Prog: b.MustBuild(), BlockDim: blockDim, GridDim: 1}
	}
	r.run(mk(32), 1)
	t1 := r.eng.Now()
	r2 := newRig(t)
	base2 := r2.alloc(4096, func(i int) uint32 { return 0 })
	_ = base2
	r2.run(mk(256), 1)
	t8 := r2.eng.Now()
	if t8 >= t1*4 {
		t.Fatalf("8 warps took %d cycles vs 1 warp %d: no latency hiding", t8, t1)
	}
}

func TestIntrinsicOncePerBlock(t *testing.T) {
	r := newRig(t)
	base := r.alloc(64, func(i int) uint32 { return uint32(i) })
	b := isa.NewBuilder()
	tid, v := b.Reg(), b.Reg()
	b.Special(tid, isa.SpecTid)
	b.AddMap(0, core.MapParams{
		StashBase: 0, GlobalBase: base,
		FieldBytes: 4, ObjectBytes: 4, RowElems: 64, NumRows: 1, Coherent: true,
	})
	b.Barrier()
	b.LdStash(v, tid, 0, 0)
	k := &Kernel{Prog: b.MustBuild(), BlockDim: 64, GridDim: 1, LocalWordsPerBlock: 64}
	r.run(k, 1)
	// Two warps executed the AddMap instruction, but only one AddMap
	// reached the stash.
	if got := r.set.Sum("stash.cu.addmaps"); got != 1 {
		t.Fatalf("addmaps = %d, want 1 (once per thread block)", got)
	}
}

func TestInstructionAndEnergyCounting(t *testing.T) {
	r := newRig(t)
	b := isa.NewBuilder()
	x := b.Reg()
	b.MovImm(x, 1)
	b.AddImm(x, x, 1)
	b.AddImm(x, x, 1)
	k := &Kernel{Prog: b.MustBuild(), BlockDim: 32, GridDim: 1}
	r.run(k, 1)
	if got := r.set.Sum("cu.cu.instructions"); got != 3 {
		t.Fatalf("instructions = %d, want 3", got)
	}
	if got := r.acct.Count(energy.GPUInst); got != 3 {
		t.Fatalf("GPU inst energy events = %d, want 3", got)
	}
}
