// Package gpu models a GPU compute unit (CU, analogous to an NVIDIA
// SM): resident thread blocks, 32-lane warps in lockstep, a round-robin
// single-issue warp scheduler, a memory coalescer that groups lane
// accesses into line transactions, block-wide barriers, and the
// AddMap/ChgMap/DMA intrinsics wired to the node's stash, scratchpad
// and DMA engine.
package gpu

import (
	"fmt"

	"stash/internal/cache"
	"stash/internal/core"
	"stash/internal/dma"
	"stash/internal/energy"
	"stash/internal/isa"
	"stash/internal/memdata"
	"stash/internal/scratch"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/trace"
	"stash/internal/vm"
)

// Params configures a CU.
type Params struct {
	WarpSize  int // lanes per warp
	MaxBlocks int // resident thread blocks (Table 2 discussion: up to 8)
}

// DefaultParams returns the paper's CU configuration.
func DefaultParams() Params { return Params{WarpSize: 32, MaxBlocks: 8} }

// Kernel is a launched grid: every thread block runs Prog.
//
// LocalWordsPerBlock is the scratchpad/stash allocation of one thread
// block in words. As on real GPUs, the runtime assigns each resident
// block a slot in the local SRAM and rebases the program's block-
// relative local addresses (and AddMap/DMA stash bases) onto it; the
// number of concurrently resident blocks is limited by the allocation
// (occupancy), exactly like CUDA shared-memory pressure.
type Kernel struct {
	Prog               *isa.Program
	BlockDim           int // threads per block
	GridDim            int // total blocks in the grid (across all CUs)
	LocalWordsPerBlock int
}

type warpState int

const (
	wReady warpState = iota
	wBlocked
	wBarrier
	wDone
)

type warpCtx struct {
	warp  *isa.Warp
	state warpState
	block *blockCtx
	pend  *isa.Pending // in-flight access awaiting a bound callback

	// tid is a deterministic warp identity (block id and warp index)
	// pairing stall/resume trace spans; stalled marks an open span.
	tid     uint64
	stalled bool

	// Bound once when the warpCtx is created (contexts are pooled with
	// their block), so blocking and local-memory completions never
	// allocate closures.
	unblockFn     func()
	stashLoadDone func(vals []uint32)
}

type blockCtx struct {
	id        int // global block id (CTAID)
	slot      int // resident slot: selects the block's local SRAM region
	localBase int // first local word of the block's allocation
	warps     []*warpCtx
	alive     int // warps not yet done
	waiting   int // warps at the current barrier
}

// CU is one GPU compute unit.
type CU struct {
	eng  *sim.Engine
	node int
	p    Params
	as   *vm.AddressSpace
	acct *energy.Account

	l1     *cache.Cache
	sp     *scratch.Scratchpad
	stash  *core.Stash
	dmaEng *dma.Engine

	kernel      *Kernel
	pending     []int // block ids still to dispatch
	resident    []*blockCtx
	warpList    []*warpCtx // flattened resident warps (scheduler view)
	maxResident int        // MaxBlocks clamped by local-memory occupancy
	freeSlots   []int      // available local SRAM slots
	rrCursor    int
	dmaBlocked  bool
	scheduled   bool
	kernelDone  func()

	accessFree []*gmemAccess // pooled in-flight coalesced accesses
	lineOpFree []*lineOp     // pooled per-line L1 completion callbacks
	blockFree  []*blockCtx   // retired block contexts, warps included
	offScratch []int         // reused local-offset buffer
	tickFn     func()        // c.tick, bound once
	dmaResume  func()        // DMA-unblock callback, bound once

	instrs     *stats.Counter
	cycles     *stats.Counter
	coalesced  *stats.Counter
	blocksDone *stats.Counter

	tsnk       *trace.Sink
	trInstrs   *trace.Series
	trResident *trace.Series
}

// New builds a CU. sp, stash and dmaEng may each be nil when the
// simulated configuration lacks that structure; executing an
// instruction that needs a missing structure panics, which is always a
// workload/configuration mismatch.
func New(eng *sim.Engine, node int, name string, p Params, as *vm.AddressSpace,
	l1 *cache.Cache, sp *scratch.Scratchpad, st *core.Stash, dmaEng *dma.Engine,
	acct *energy.Account, set *stats.Set) *CU {
	c := &CU{
		eng:        eng,
		node:       node,
		p:          p,
		as:         as,
		acct:       acct,
		l1:         l1,
		sp:         sp,
		stash:      st,
		dmaEng:     dmaEng,
		instrs:     set.Counter(fmt.Sprintf("cu.%s.instructions", name)),
		cycles:     set.Counter(fmt.Sprintf("cu.%s.issue_cycles", name)),
		coalesced:  set.Counter(fmt.Sprintf("cu.%s.global_transactions", name)),
		blocksDone: set.Counter(fmt.Sprintf("cu.%s.blocks", name)),
	}
	c.tickFn = c.tick
	c.dmaResume = func() {
		c.dmaBlocked = false
		c.wake()
	}
	return c
}

// Stash returns the CU's stash (nil if the configuration has none).
func (c *CU) Stash() *core.Stash { return c.stash }

// Scratchpad returns the CU's scratchpad (nil if none).
func (c *CU) Scratchpad() *scratch.Scratchpad { return c.sp }

// L1 returns the CU's L1 cache.
func (c *CU) L1() *cache.Cache { return c.l1 }

// DMA returns the CU's DMA engine (nil if none).
func (c *CU) DMA() *dma.Engine { return c.dmaEng }

// Launch runs blocks [firstBlock, firstBlock+numBlocks) of kernel k on
// this CU and calls done when every block has finished and the L1 and
// stash have drained their outstanding protocol transactions.
func (c *CU) Launch(k *Kernel, firstBlock, numBlocks int, done func()) {
	if c.kernel != nil {
		panic("gpu: CU already running a kernel")
	}
	c.kernel = k
	c.kernelDone = done
	c.maxResident = c.p.MaxBlocks
	if k.LocalWordsPerBlock > 0 {
		localWords := 0
		if c.stash != nil {
			localWords = c.stash.Words()
		} else if c.sp != nil {
			localWords = c.sp.Words()
		}
		if localWords > 0 {
			if k.LocalWordsPerBlock > localWords {
				panic(fmt.Sprintf("gpu: block needs %d local words, SRAM has %d", k.LocalWordsPerBlock, localWords))
			}
			if byOcc := localWords / k.LocalWordsPerBlock; byOcc < c.maxResident {
				c.maxResident = byOcc
			}
		}
	}
	c.freeSlots = c.freeSlots[:0]
	for s := c.maxResident - 1; s >= 0; s-- {
		c.freeSlots = append(c.freeSlots, s) // pop order: slot 0 first
	}
	c.pending = c.pending[:0]
	for b := 0; b < numBlocks; b++ {
		c.pending = append(c.pending, firstBlock+b)
	}
	c.fillResident()
	if len(c.resident) == 0 {
		// Empty launch.
		c.finishKernel()
		return
	}
	c.wake()
}

func (c *CU) fillResident() {
	changed := false
	for len(c.resident) < c.maxResident && len(c.pending) > 0 {
		id := c.pending[0]
		c.pending = c.pending[1:]
		c.resident = append(c.resident, c.newBlock(id))
		changed = true
	}
	if changed {
		c.rebuildWarpList()
		c.trResident.Set(uint64(c.eng.Now()), uint64(len(c.resident)))
	}
}

// newBlock builds (or reuses, from the block pool) a resident block
// context: block launches in steady state reuse prior blocks' warp
// contexts, warps and register files in place.
func (c *CU) newBlock(id int) *blockCtx {
	k := c.kernel
	slot := c.freeSlots[len(c.freeSlots)-1]
	c.freeSlots = c.freeSlots[:len(c.freeSlots)-1]
	numWarps := (k.BlockDim + c.p.WarpSize - 1) / c.p.WarpSize
	var b *blockCtx
	if n := len(c.blockFree); n > 0 {
		b = c.blockFree[n-1]
		c.blockFree = c.blockFree[:n-1]
	} else {
		b = &blockCtx{}
	}
	b.id, b.slot, b.localBase = id, slot, slot*k.LocalWordsPerBlock
	b.alive, b.waiting = numWarps, 0
	b.warps = b.warps[:0]
	for wi := 0; wi < numWarps; wi++ {
		cfg := isa.WarpConfig{
			Width:       c.p.WarpSize,
			BlockDim:    k.BlockDim,
			BlockID:     id,
			GridDim:     k.GridDim,
			WarpID:      wi,
			FirstThread: wi * c.p.WarpSize,
		}
		var wc *warpCtx
		if len(b.warps) < cap(b.warps) {
			b.warps = b.warps[:len(b.warps)+1]
			wc = b.warps[wi]
		}
		if wc == nil {
			wc = &warpCtx{block: b}
			wc.unblockFn = func() { c.unblock(wc) }
			wc.stashLoadDone = func(vals []uint32) {
				wc.warp.CompleteLoad(wc.pend, vals)
				c.unblock(wc)
			}
			if wi < len(b.warps) {
				b.warps[wi] = wc
			} else {
				b.warps = append(b.warps, wc)
			}
		}
		wc.block = b
		wc.state = wReady
		wc.pend = nil
		wc.tid = uint64(id)<<8 | uint64(wi)
		wc.stalled = false
		if wc.warp == nil {
			wc.warp = isa.NewWarp(k.Prog, cfg)
		} else {
			wc.warp.Reset(k.Prog, cfg)
		}
	}
	return b
}

// SetTrace attaches an event sink; a nil sink (the default) keeps the
// issue path a nil-check no-op.
func (c *CU) SetTrace(snk *trace.Sink) {
	c.tsnk = snk
	c.trInstrs = snk.Series("instructions")
	c.trResident = snk.Gauge("resident_blocks")
}

// wake schedules an issue slot if one is not already scheduled.
func (c *CU) wake() {
	if c.scheduled || c.kernel == nil {
		return
	}
	c.scheduled = true
	c.eng.Schedule(1, c.tickFn)
}

func (c *CU) rebuildWarpList() {
	c.warpList = c.warpList[:0]
	for _, b := range c.resident {
		c.warpList = append(c.warpList, b.warps...)
	}
	c.rrCursor = 0
}

func (c *CU) nextReady() *warpCtx {
	n := len(c.warpList)
	for i := 0; i < n; i++ {
		w := c.warpList[(c.rrCursor+i)%n]
		if w.state == wReady {
			c.rrCursor = (c.rrCursor + i + 1) % n
			return w
		}
	}
	return nil
}

// tick issues at most one instruction from one ready warp.
func (c *CU) tick() {
	c.scheduled = false
	if c.kernel == nil || c.dmaBlocked {
		return
	}
	wc := c.nextReady()
	if wc == nil {
		return // a completion callback will wake us
	}
	c.cycles.Inc()
	p := wc.warp.Step()
	if p.Kind != isa.PendDone {
		// GPU warps run with FuseALU off (per-cycle warp interleaving
		// makes fusion timing-visible), so Fused is 1; counting it keeps
		// the instruction accounting exact if that ever changes.
		c.instrs.Add(uint64(p.Fused))
		c.trInstrs.Add(uint64(c.eng.Now()), uint64(p.Fused))
		c.acct.Add(energy.GPUInst, uint64(p.Fused))
	}
	switch p.Kind {
	case isa.PendALU:
		if p.Cycles > 1 {
			wc.state = wBlocked
			c.eng.Schedule(sim.Cycle(p.Cycles), wc.unblockFn)
		}
	case isa.PendLoad:
		c.issueLoad(wc, p)
	case isa.PendStore:
		c.issueStore(wc, p)
	case isa.PendBarrier:
		c.barrier(wc)
	case isa.PendAddMap, isa.PendChgMap:
		c.mapIntrinsic(wc, p)
	case isa.PendDMALoad, isa.PendDMAStore:
		c.dmaIntrinsic(wc, p)
	case isa.PendDone:
		c.warpDone(wc)
	}
	c.wake()
}

func (c *CU) unblock(wc *warpCtx) {
	if wc.state == wBlocked {
		wc.state = wReady
		if wc.stalled {
			wc.stalled = false
			c.tsnk.Event(uint64(c.eng.Now()), trace.KWarpResume, wc.tid, 0)
		}
	}
	c.wake()
}

// traceStall opens a stall span for a warp blocking on memory. The
// span closes in unblock; the stalled flag is only ever set with
// tracing enabled, so pairs always match.
func (c *CU) traceStall(wc *warpCtx) {
	if c.tsnk == nil {
		return
	}
	wc.stalled = true
	c.tsnk.Event(uint64(c.eng.Now()), trace.KWarpStall, wc.tid, 0)
}

// --- memory ---

type laneTarget struct {
	lane int
	line memdata.PAddr
	word int
}

// gmemAccess is the in-flight state of one coalesced global warp
// access: line transactions sorted by address, per-line data, and the
// per-lane targets. Accesses are pooled on the CU — several warps'
// accesses are typically outstanding at once — and every slice keeps
// its capacity across reuses, so coalescing allocates nothing in steady
// state.
type gmemAccess struct {
	lines     []memdata.PAddr
	masks     []memdata.WordMask
	vals      [][memdata.WordsPerLine]uint32 // load results / store data per line
	targets   []laneTarget
	out       []uint32 // load completion buffer
	remaining int
	wc        *warpCtx     // issuing warp, unblocked on completion
	pend      *isa.Pending // warp access completed when remaining hits 0
}

// lineOp is the pooled completion callback for one line transaction of
// a coalesced access: load and store callbacks are bound once when the
// op is created, so issuing a line to the L1 allocates nothing.
type lineOp struct {
	a     *gmemAccess
	li    int
	load  func(vals [memdata.WordsPerLine]uint32)
	store func()
}

func (c *CU) newLineOp(a *gmemAccess, li int) *lineOp {
	var op *lineOp
	if n := len(c.lineOpFree); n > 0 {
		op = c.lineOpFree[n-1]
		c.lineOpFree = c.lineOpFree[:n-1]
	} else {
		op = &lineOp{}
		op.load = func(vals [memdata.WordsPerLine]uint32) { c.lineLoaded(op, vals) }
		op.store = func() { c.lineStored(op) }
	}
	op.a, op.li = a, li
	return op
}

func (c *CU) lineLoaded(op *lineOp, vals [memdata.WordsPerLine]uint32) {
	a, li := op.a, op.li
	op.a = nil
	c.lineOpFree = append(c.lineOpFree, op)
	a.vals[li] = vals
	a.remaining--
	if a.remaining > 0 {
		return
	}
	out := a.out[:0]
	for _, tg := range a.targets {
		out = append(out, a.vals[a.findLine(tg.line)][tg.word])
	}
	a.out = out
	wc, p := a.wc, a.pend
	wc.warp.CompleteLoad(p, out)
	c.releaseAccess(a)
	c.unblock(wc)
}

func (c *CU) lineStored(op *lineOp) {
	a := op.a
	op.a = nil
	c.lineOpFree = append(c.lineOpFree, op)
	a.remaining--
	if a.remaining == 0 {
		wc := a.wc
		c.releaseAccess(a)
		c.unblock(wc)
	}
}

// lineIndex returns line's index, inserting it in sorted position if
// new. Sorted issue order replaces the old sorted-map-keys pass.
func (a *gmemAccess) lineIndex(line memdata.PAddr) int {
	pos := len(a.lines)
	for i, l := range a.lines {
		if l == line {
			return i
		}
		if line < l {
			pos = i
			break
		}
	}
	a.lines = append(a.lines, 0)
	a.masks = append(a.masks, 0)
	a.vals = append(a.vals, [memdata.WordsPerLine]uint32{})
	copy(a.lines[pos+1:], a.lines[pos:len(a.lines)-1])
	copy(a.masks[pos+1:], a.masks[pos:len(a.masks)-1])
	copy(a.vals[pos+1:], a.vals[pos:len(a.vals)-1])
	a.lines[pos] = line
	a.masks[pos] = 0
	a.vals[pos] = [memdata.WordsPerLine]uint32{}
	return pos
}

func (a *gmemAccess) findLine(line memdata.PAddr) int {
	for i, l := range a.lines {
		if l == line {
			return i
		}
	}
	panic("gpu: lane target line missing from coalesced access")
}

func (c *CU) acquireAccess() *gmemAccess {
	if n := len(c.accessFree); n > 0 {
		a := c.accessFree[n-1]
		c.accessFree = c.accessFree[:n-1]
		return a
	}
	return &gmemAccess{}
}

func (c *CU) releaseAccess(a *gmemAccess) {
	a.lines = a.lines[:0]
	a.masks = a.masks[:0]
	a.vals = a.vals[:0]
	a.targets = a.targets[:0]
	a.wc, a.pend = nil, nil
	c.accessFree = append(c.accessFree, a)
}

// coalesceGlobal translates and groups the lanes' byte addresses into
// line transactions, keeping the lines sorted by address.
func (c *CU) coalesceGlobal(p *isa.Pending) *gmemAccess {
	a := c.acquireAccess()
	for i, addr := range p.Addrs {
		pa := c.as.Translate(memdata.VAddr(addr))
		line := memdata.LineOf(pa)
		w := memdata.WordIndex(pa)
		a.masks[a.lineIndex(line)] |= memdata.Bit(w)
		a.targets = append(a.targets, laneTarget{lane: p.Lanes[i], line: line, word: w})
	}
	return a
}

func (c *CU) issueLoad(wc *warpCtx, p *isa.Pending) {
	switch p.Space {
	case isa.Global:
		a := c.coalesceGlobal(p)
		a.wc, a.pend = wc, p
		wc.state = wBlocked
		c.traceStall(wc)
		a.remaining = len(a.lines)
		// Transactions issue in address order (the access keeps its
		// lines sorted): any other order would leak into MSHR allocation
		// and bank timing, making cycle counts vary across runs of the
		// same deterministic simulation.
		for li := range a.lines {
			c.coalesced.Inc()
			op := c.newLineOp(a, li)
			c.l1.Load(a.lines[li], a.masks[li], op.load)
		}
	case isa.Shared:
		offsets := c.intOffsets(p.Addrs, wc.block.localBase)
		vals, lat := c.sp.Load(offsets)
		wc.warp.CompleteLoad(p, vals)
		if lat > 1 {
			wc.state = wBlocked
			c.eng.Schedule(lat, wc.unblockFn)
		}
	case isa.Stash:
		wc.state = wBlocked
		c.traceStall(wc)
		wc.pend = p
		c.stash.Load(wc.block.id, p.Slot, c.intOffsets(p.Addrs, wc.block.localBase), wc.stashLoadDone)
	}
}

func (c *CU) issueStore(wc *warpCtx, p *isa.Pending) {
	switch p.Space {
	case isa.Global:
		a := c.coalesceGlobal(p)
		a.wc = wc
		for i, tg := range a.targets {
			a.vals[a.findLine(tg.line)][tg.word] = p.Vals[i]
		}
		// The warp blocks until the L1 accepts every transaction (it
		// may replay under MSHR/store-buffer pressure); acceptance
		// order preserves the warp's same-address store ordering.
		wc.state = wBlocked
		c.traceStall(wc)
		a.remaining = len(a.lines)
		for li := range a.lines {
			c.coalesced.Inc()
			op := c.newLineOp(a, li)
			c.l1.Store(a.lines[li], a.masks[li], a.vals[li], op.store)
		}
	case isa.Shared:
		lat := c.sp.Store(c.intOffsets(p.Addrs, wc.block.localBase), p.Vals)
		if lat > 1 {
			wc.state = wBlocked
			c.eng.Schedule(lat, wc.unblockFn)
		}
	case isa.Stash:
		c.stash.Store(wc.block.id, p.Slot, c.intOffsets(p.Addrs, wc.block.localBase), p.Vals, noopDone)
	}
}

// noopDone is the shared no-op completion for stash stores: the warp
// does not block on them.
var noopDone = func() {}

// intOffsets rebases block-relative local word offsets onto the block's
// SRAM slot (the runtime address mapping of paper Section 4). The
// result is the CU's reused scratch buffer: neither the scratchpad nor
// the stash retains it past the call it is passed to.
func (c *CU) intOffsets(addrs []uint64, localBase int) []int {
	out := c.offScratch[:0]
	for _, a := range addrs {
		out = append(out, int(a)+localBase)
	}
	c.offScratch = out
	return out
}

// --- control ---

func (c *CU) barrier(wc *warpCtx) {
	b := wc.block
	wc.state = wBarrier
	b.waiting++
	if b.waiting < b.alive {
		return
	}
	b.waiting = 0
	for _, w := range b.warps {
		if w.state == wBarrier {
			w.state = wReady
		}
	}
}

func (c *CU) mapIntrinsic(wc *warpCtx, p *isa.Pending) {
	// Executed once per thread block, by warp 0 (other warps treat the
	// instruction as a NOP so every warp sees the same program).
	if wc.warp != wc.block.warps[0].warp {
		return
	}
	if c.stash == nil {
		panic("gpu: AddMap/ChgMap without a stash in this configuration")
	}
	m := p.Map
	m.StashBase += wc.block.localBase
	if p.Kind == isa.PendAddMap {
		c.stash.AddMap(wc.block.id, p.Slot, m)
	} else {
		c.stash.ChgMap(wc.block.id, p.Slot, m)
	}
}

func (c *CU) dmaIntrinsic(wc *warpCtx, p *isa.Pending) {
	if wc.warp != wc.block.warps[0].warp {
		return
	}
	if c.dmaEng == nil {
		panic("gpu: DMA instruction without a DMA engine in this configuration")
	}
	// D2MA-style: the transfer blocks the CU at core granularity.
	c.dmaBlocked = true
	resume := c.dmaResume
	m := p.Map
	m.StashBase += wc.block.localBase
	if p.Kind == isa.PendDMALoad {
		c.dmaEng.Load(m, resume)
	} else {
		c.dmaEng.Store(m, resume)
	}
}

func (c *CU) warpDone(wc *warpCtx) {
	if wc.state == wDone {
		return
	}
	wc.state = wDone
	b := wc.block
	b.alive--
	// A barrier may now be satisfiable.
	if b.alive > 0 && b.waiting == b.alive {
		b.waiting = 0
		for _, w := range b.warps {
			if w.state == wBarrier {
				w.state = wReady
			}
		}
	}
	if b.alive > 0 {
		return
	}
	// Block complete: arm lazy writebacks and release its stash table.
	if c.stash != nil {
		c.stash.EndThreadBlock(b.id)
	}
	c.blocksDone.Inc()
	c.freeSlots = append(c.freeSlots, b.slot)
	for i, rb := range c.resident {
		if rb == b {
			c.resident = append(c.resident[:i], c.resident[i+1:]...)
			break
		}
	}
	c.blockFree = append(c.blockFree, b)
	c.rebuildWarpList()
	c.trResident.Set(uint64(c.eng.Now()), uint64(len(c.resident)))
	c.fillResident()
	if len(c.resident) == 0 && len(c.pending) == 0 {
		c.finishKernel()
	}
}

func (c *CU) finishKernel() {
	done := c.kernelDone
	c.kernel = nil
	c.kernelDone = nil
	// Drain outstanding registrations and writebacks before reporting
	// kernel completion (the kernel's stores must be globally ordered
	// before the next phase begins).
	remaining := 1 // guard released below, after all drains registered
	finish := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
	if c.stash != nil {
		remaining++
		c.stash.Drain(finish)
	}
	remaining++
	c.l1.Drain(finish)
	finish()
}

// DebugString reports the CU's scheduling state, for diagnosing hangs.
func (c *CU) DebugString() string {
	if c.kernel == nil {
		return "idle"
	}
	s := fmt.Sprintf("dmaBlocked=%v scheduled=%v pending=%d resident=%d [", c.dmaBlocked, c.scheduled, len(c.pending), len(c.resident))
	for _, b := range c.resident {
		s += fmt.Sprintf("blk%d(slot%d alive%d wait%d:", b.id, b.slot, b.alive, b.waiting)
		for _, w := range b.warps {
			s += fmt.Sprintf(" %d@pc%d", w.state, w.warp.PC())
		}
		s += ") "
	}
	return s + "]"
}

// SelfInvalidate applies the kernel-boundary self-invalidation to the
// CU's L1 and stash (DeNovo synchronization; Section 4.3).
func (c *CU) SelfInvalidate() {
	c.l1.SelfInvalidate()
	if c.stash != nil {
		c.stash.SelfInvalidate()
	}
}
