package check

import (
	"errors"
	"strings"
	"testing"

	"stash/internal/sim"
)

// runRecover runs the engine and returns the recovered panic value.
func runRecover(e *sim.Engine) (v any) {
	defer func() { v = recover() }()
	e.Run()
	return nil
}

// A self-rescheduling replay loop with outstanding work must trip the
// watchdog within the budget (plus probe quantization).
func TestWatchdogCatchesLivelock(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Params{WatchdogBudget: 1000, ProbeEvery: 8})
	c.Register(Probe{
		Name:        "unit",
		Outstanding: func() int { return 1 },
		Dump:        func() string { return "stuck=1" },
	})
	c.Install()

	var replay func()
	replay = func() { eng.Schedule(4, replay) } // advances time, never completes
	eng.Schedule(0, replay)

	v := runRecover(eng)
	he, ok := v.(*HangError)
	if !ok {
		t.Fatalf("recovered %T (%v), want *HangError", v, v)
	}
	if he.Outstanding != 1 {
		t.Errorf("Outstanding = %d, want 1", he.Outstanding)
	}
	// Probe quantization: the hang is detected within one probe period
	// past the budget. Each event advances 4 cycles and the probe runs
	// every 8 events, so slack is 8*4 cycles.
	if got := he.Now - he.LastProgress; got > 1000+8*4 {
		t.Errorf("fired after %d cycles of stall, want <= %d", got, 1000+8*4)
	}
	if !strings.Contains(he.Dump, "stuck=1") {
		t.Errorf("dump missing component state:\n%s", he.Dump)
	}
	if !strings.Contains(he.Error(), "no forward progress") {
		t.Errorf("unexpected message: %s", he.Error())
	}
}

// Progress marks hold the watchdog off; once they stop, it fires.
func TestWatchdogResetByProgress(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Params{WatchdogBudget: 100, ProbeEvery: 1})
	c.Register(Probe{Name: "unit", Outstanding: func() int { return 1 }})
	c.Install()

	n := 0
	var tick func()
	tick = func() {
		if n++; n <= 50 {
			c.Progress() // completions for the first 50 ticks only
		}
		eng.Schedule(10, tick)
	}
	eng.Schedule(0, tick)

	v := runRecover(eng)
	he, ok := v.(*HangError)
	if !ok {
		t.Fatalf("recovered %T, want *HangError", v)
	}
	// Progress was marked until cycle ~500; the budget must have been
	// measured from there, not from cycle 0.
	if he.LastProgress < 400 {
		t.Errorf("LastProgress = %d; progress marks did not reset the watchdog", he.LastProgress)
	}
}

// With no outstanding work, arbitrarily long event chains never trip
// the watchdog: compute-only stretches are not hangs.
func TestWatchdogIgnoresIdleStretch(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Params{WatchdogBudget: 50, ProbeEvery: 1})
	c.Register(Probe{Name: "unit", Outstanding: func() int { return 0 }})
	c.Install()

	n := 0
	var tick func()
	tick = func() {
		if n++; n < 200 {
			eng.Schedule(100, tick) // 100 cycles per event >> budget
		}
	}
	eng.Schedule(0, tick)

	if v := runRecover(eng); v != nil {
		t.Fatalf("watchdog fired on an idle stretch: %v", v)
	}
}

// The periodic sweep surfaces an invariant violation as a typed panic
// carrying the probe name and the dump.
func TestPeriodicInvariantSweep(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Params{Invariants: true, ProbeEvery: 1, InvariantEvery: 1})
	broken := errors.New("mshr leak")
	c.Register(Probe{
		Name:       "l1[0]",
		Invariants: func() error { return broken },
		Dump:       func() string { return "mshrs=1" },
	})
	c.Install()
	for i := 0; i < 5; i++ {
		eng.Schedule(sim.Cycle(i), func() {})
	}

	v := runRecover(eng)
	ie, ok := v.(*InvariantError)
	if !ok {
		t.Fatalf("recovered %T, want *InvariantError", v)
	}
	if ie.Probe != "l1[0]" || !errors.Is(ie, broken) {
		t.Errorf("got probe %q err %v", ie.Probe, ie.Err)
	}
	if !strings.Contains(ie.Dump, "mshrs=1") {
		t.Errorf("dump missing component state:\n%s", ie.Dump)
	}
}

// Boundary runs Quiescent checks and wraps failures with the phase.
func TestBoundaryQuiescentCheck(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Params{Invariants: true})
	c.Register(Probe{
		Name:      "stash[2]",
		Quiescent: func() error { return errors.New("wbuf not empty") },
	})

	var v any
	func() {
		defer func() { v = recover() }()
		c.Boundary("kernel")
	}()
	ie, ok := v.(*InvariantError)
	if !ok {
		t.Fatalf("recovered %T, want *InvariantError", v)
	}
	if !strings.Contains(ie.Err.Error(), "kernel boundary") {
		t.Errorf("error not phase-tagged: %v", ie.Err)
	}
}

// A nil Checker is inert: every method is a safe no-op.
func TestNilCheckerIsInert(t *testing.T) {
	var c *Checker
	c.Progress()
	c.Register(Probe{Name: "x"})
	c.Install()
	c.Boundary("kernel")
	if d := c.Dump(); d != "" {
		t.Errorf("nil dump = %q, want empty", d)
	}
}

// Checking must be timing-neutral: the same event chain produces the
// same final cycle and step count with and without a checker installed.
func TestCheckerIsTimingNeutral(t *testing.T) {
	run := func(withChecker bool) (sim.Cycle, uint64) {
		eng := sim.NewEngine()
		if withChecker {
			c := New(eng, Params{Invariants: true, WatchdogBudget: 1 << 20, ProbeEvery: 2, InvariantEvery: 2})
			c.Register(Probe{
				Name:        "unit",
				Outstanding: func() int { return 1 },
				Invariants:  func() error { return nil },
			})
			c.Install()
		}
		n := 0
		var tick func()
		tick = func() {
			if n++; n < 100 {
				eng.Schedule(7, tick)
			}
		}
		eng.Schedule(0, tick)
		eng.Run()
		return eng.Now(), eng.Steps()
	}
	c0, s0 := run(false)
	c1, s1 := run(true)
	if c0 != c1 || s0 != s1 {
		t.Fatalf("checker perturbed the run: (%d,%d) vs (%d,%d)", c0, s0, c1, s1)
	}
}

// The dump leads with busy components and indents their state.
func TestDumpOrdersBusyFirst(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Params{Invariants: true})
	c.Register(Probe{Name: "idle", Outstanding: func() int { return 0 }, Dump: func() string { return "ok" }})
	c.Register(Probe{Name: "busy", Outstanding: func() int { return 3 }, Dump: func() string { return "mshrs=3" }})
	d := c.Dump()
	bi, ii := strings.Index(d, "busy:"), strings.Index(d, "idle:")
	if bi < 0 || ii < 0 || bi > ii {
		t.Errorf("busy component does not lead the dump:\n%s", d)
	}
	if !strings.HasPrefix(d, "watchdog:") || !strings.Contains(d, "engine:") {
		t.Errorf("dump missing watchdog/engine header:\n%s", d)
	}
}
