// Package check is the simulator's self-checking layer: a cycle-budget
// deadlock/livelock watchdog plus opt-in structural invariant sweeps
// over the coherence machinery.
//
// The Checker installs itself as a host-side probe on the engine (see
// sim.Engine.AddProbe), so it observes the simulation without ever
// advancing the clock or scheduling events: runs with the checker
// enabled are bit-identical in every metric to runs without it. When a
// check fails the probe panics with a typed error (*HangError,
// *InvariantError); the runner that owns the simulation recovers it at
// the boundary and converts it into a structured per-cell failure.
//
// Components register a Probe describing how to inspect them. All
// inspection callbacks must be read-only: in particular they must not
// touch LRU state or pooled free lists, since that would perturb a
// subsequent run's behavior.
//
// The watchdog distinguishes the two ways a simulation wedges:
//
//   - Livelock: events keep retiring (replays rescheduling themselves)
//     but no protocol transaction ever completes, so simulated time
//     runs away. The watchdog fires when no progress mark has been
//     recorded for WatchdogBudget cycles while some probe still
//     reports outstanding work. Components mark progress only on real
//     completions (fills, registration acks, writeback acks) — never
//     on replays, which are exactly the livelock vector.
//
//   - Quiescence deadlock: the event queue drains while work is still
//     pending (a lost wakeup). No event retires, so time stands still
//     and the probe-based watchdog cannot fire; instead the runner
//     calls Boundary at every kernel/phase end, which consults each
//     probe's Quiescent check and reports what was left behind.
package check

import (
	"fmt"
	"sort"
	"strings"

	"stash/internal/sim"
)

// Params configures a Checker. The zero value disables everything.
type Params struct {
	// Invariants enables periodic and boundary structural checks.
	Invariants bool
	// WatchdogBudget is the number of cycles the watchdog allows
	// without a progress mark while work is outstanding. Zero disables
	// the watchdog.
	WatchdogBudget sim.Cycle
	// ProbeEvery is the probe period in executed events (default 4096).
	ProbeEvery uint64
	// InvariantEvery runs the invariant sweep once per this many probe
	// firings (default 16), keeping the sweep cheap enough for CI.
	InvariantEvery uint64
}

// Enabled reports whether the params ask for any checking at all.
func (p Params) Enabled() bool { return p.Invariants || p.WatchdogBudget > 0 }

// Probe describes how the checker inspects one component. Any field
// may be nil; nil callbacks are skipped.
type Probe struct {
	// Name identifies the component in dumps and errors, e.g. "l1[3]".
	Name string
	// Outstanding reports in-flight transactions the component is
	// waiting on. The watchdog only fires while some probe reports a
	// nonzero count, so pure-compute stretches never trip it.
	Outstanding func() int
	// Dump returns a one-line-per-fact diagnostic snapshot. It must be
	// deterministic (sort any map iteration).
	Dump func() string
	// Invariants checks structural invariants that must hold at any
	// event boundary. It runs periodically during the simulation.
	Invariants func() error
	// Quiescent checks invariants that hold only when the component
	// has fully drained. It runs at kernel/phase boundaries.
	Quiescent func() error
}

// Checker drives the watchdog and invariant sweeps for one system.
// A nil *Checker is valid and inert: all methods are no-ops, so
// components can call chk.Progress() unconditionally.
type Checker struct {
	eng    *sim.Engine
	par    Params
	probes []Probe
	last   sim.Cycle // cycle of the most recent progress mark
	polls  uint64    // probe firings, for InvariantEvery pacing
}

// New builds a Checker for eng. Call Register for each component, then
// Install to arm the engine probe.
func New(eng *sim.Engine, par Params) *Checker {
	if par.ProbeEvery == 0 {
		par.ProbeEvery = 4096
	}
	if par.InvariantEvery == 0 {
		par.InvariantEvery = 16
	}
	return &Checker{eng: eng, par: par}
}

// Register adds a component probe. Registration order is the dump
// order, so callers must register deterministically.
func (c *Checker) Register(p Probe) {
	if c == nil {
		return
	}
	c.probes = append(c.probes, p)
}

// Install arms the engine's probe hook. Without a watchdog budget and
// without invariants there is nothing to poll, and the engine keeps
// its probe-free fast path.
func (c *Checker) Install() {
	if c == nil || !c.par.Enabled() {
		return
	}
	c.last = c.eng.Now()
	c.eng.AddProbe(c.par.ProbeEvery, c.poll)
}

// Progress records that a protocol transaction completed. Components
// call it on fills, registration acks, and writeback acks — never on
// replays. Safe on a nil Checker.
func (c *Checker) Progress() {
	if c == nil {
		return
	}
	c.last = c.eng.Now()
}

// poll is the engine probe: watchdog first, then the periodic
// invariant sweep.
func (c *Checker) poll() {
	if b := c.par.WatchdogBudget; b > 0 && c.eng.Now()-c.last > b {
		out := c.outstanding()
		if out > 0 {
			panic(&HangError{
				Now:          c.eng.Now(),
				LastProgress: c.last,
				Budget:       b,
				Outstanding:  out,
				Dump:         c.Dump(),
			})
		}
		// Nothing outstanding: a long pure-compute stretch. Reset so
		// the budget restarts when work next appears.
		c.last = c.eng.Now()
	}
	if c.par.Invariants {
		if c.polls++; c.polls%c.par.InvariantEvery == 0 {
			c.sweep()
		}
	}
}

func (c *Checker) outstanding() int {
	n := 0
	for i := range c.probes {
		if f := c.probes[i].Outstanding; f != nil {
			n += f()
		}
	}
	return n
}

func (c *Checker) sweep() {
	for i := range c.probes {
		if f := c.probes[i].Invariants; f != nil {
			if err := f(); err != nil {
				panic(&InvariantError{Probe: c.probes[i].Name, Err: err, Dump: c.Dump()})
			}
		}
	}
}

// Boundary runs the full invariant sweep plus every probe's Quiescent
// check. Runners call it at kernel and CPU-phase ends, when all
// traffic should have drained. Safe on a nil Checker.
func (c *Checker) Boundary(phase string) {
	if c == nil || !c.par.Invariants {
		return
	}
	c.sweep()
	for i := range c.probes {
		if f := c.probes[i].Quiescent; f != nil {
			if err := f(); err != nil {
				panic(&InvariantError{
					Probe: c.probes[i].Name,
					Err:   fmt.Errorf("at %s boundary: %w", phase, err),
					Dump:  c.Dump(),
				})
			}
		}
	}
}

// Dump renders every probe's diagnostic snapshot, prefixed with the
// engine and watchdog state. Safe on a nil Checker (returns "").
func (c *Checker) Dump() string {
	if c == nil {
		return ""
	}
	return fmt.Sprintf("watchdog: last-progress=%d budget=%d\n", c.last, c.par.WatchdogBudget) +
		DumpState(c.eng, c.probes)
}

// DumpState renders the probes' diagnostic snapshots prefixed with the
// engine state. It is the failure-dump backbone, usable with or
// without an armed Checker (a panicking run still wants a dump).
func DumpState(eng *sim.Engine, probes []Probe) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "engine: now=%d pending=%d steps=%d\n",
		eng.Now(), eng.Pending(), eng.Steps())
	// Components with outstanding work first, then the rest, each
	// group in registration order — the interesting units lead.
	idx := make([]int, len(probes))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return probeBusy(probes[idx[a]]) && !probeBusy(probes[idx[b]])
	})
	for _, i := range idx {
		p := probes[i]
		if p.Dump == nil {
			continue
		}
		s := strings.TrimRight(p.Dump(), "\n")
		if s == "" {
			continue
		}
		fmt.Fprintf(&sb, "%s:\n", p.Name)
		for _, ln := range strings.Split(s, "\n") {
			sb.WriteString("  ")
			sb.WriteString(ln)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func probeBusy(p Probe) bool { return p.Outstanding != nil && p.Outstanding() > 0 }

// HangError reports a watchdog firing: simulated time kept advancing
// but no protocol transaction completed for longer than the budget
// while work was outstanding (a livelock, e.g. an MSHR replay storm
// against a dead bank).
type HangError struct {
	Now          sim.Cycle
	LastProgress sim.Cycle
	Budget       sim.Cycle
	Outstanding  int
	Dump         string
}

func (e *HangError) Error() string {
	return fmt.Sprintf("check: no forward progress for %d cycles (budget %d, cycle %d, last progress %d, %d transactions outstanding)",
		e.Now-e.LastProgress, e.Budget, e.Now, e.LastProgress, e.Outstanding)
}

// DeadlockError reports a quiescence deadlock: the event queue drained
// while work was still pending (a lost wakeup), detected at a phase
// boundary by the runner.
type DeadlockError struct {
	Phase string
	Dump  string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("check: %s did not complete: event queue drained with work pending (deadlock)", e.Phase)
}

// InvariantError reports a structural invariant violation in one
// component.
type InvariantError struct {
	Probe string
	Err   error
	Dump  string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("check: invariant violated in %s: %v", e.Probe, e.Err)
}

func (e *InvariantError) Unwrap() error { return e.Err }
