package isa

import (
	"fmt"

	"stash/internal/core"
	"stash/internal/memdata"
)

// WarpConfig positions a warp within its grid and selects execution
// options.
type WarpConfig struct {
	Width       int // lanes per warp (32 on the GPU, 1 on a CPU core)
	BlockDim    int // threads per block
	BlockID     int
	GridDim     int
	WarpID      int // warp index within the block
	FirstThread int // block-relative thread index of lane 0

	// FuseALU lets Step execute a maximal straight-line run of
	// single-cycle ALU instructions as one fused superinstruction: a
	// single PendALU with Cycles and Fused equal to the run length.
	// This is timing-exact only for cores that retire ALU work
	// in-order with nothing else contending for the issue slot (the
	// CPU cores); a GPU CU interleaves warps per-cycle, so fusing
	// there would change the issue schedule.
	FuseALU bool
}

// PendKind classifies what a Step produced.
type PendKind int

// Step results.
const (
	PendALU      PendKind = iota // executed inline; costs Cycles (>=1)
	PendLoad                     // memory load awaiting data
	PendStore                    // memory store to issue
	PendBarrier                  // block-wide synchronization point
	PendAddMap                   // stash AddMap intrinsic
	PendChgMap                   // stash ChgMap intrinsic
	PendDMALoad                  // blocking DMA preload
	PendDMAStore                 // blocking DMA writeout
	PendDone                     // program finished
)

// Pending describes the work a Step handed to the core model.
//
// Aliasing contract: the Pending returned by Step is the warp's own
// reused buffer. It — including the Lanes/Addrs/Vals slices — is valid
// only until the next Step (or Reset) on the same warp; callers that
// need the data longer must copy it out. CompleteLoad may be called
// with the same aliased Pending before the next Step.
type Pending struct {
	Kind   PendKind
	Space  Space
	Slot   int
	Lanes  []int    // active lane indices
	Addrs  []uint64 // per active lane: global byte address, or space word offset
	Vals   []uint32 // per active lane: store values
	DstReg int      // load destination register
	Map    core.MapParams
	Cycles int // ALU occupancy (1 for simple ops, Imm for Flops, run length when fused)
	Fused  int // instructions retired by this Step (1, or run length when fused)
}

type ifFrame struct {
	saved      []bool
	cond       []bool
	savedCount int // activeCount to restore at EndIf
}

type forFrame struct {
	start int // index of the OpFor
	iter  int64
	count int64
}

// Warp interprets a program over Width lanes in lockstep with
// structured divergence. Arithmetic is 32-bit; comparisons are signed.
//
// By default a warp dispatches through the program's compiled execution
// plan (see compile.go); UseReference switches it to the original
// switch-based decode-per-step interpreter, kept as the behavioral
// reference for differential testing.
type Warp struct {
	prog        *Program
	plan        *plan
	cfg         WarpConfig
	pc          int
	regs        []uint32 // lane l's register r is regs[l*stride+r]
	stride      int
	active      []bool
	activeCount int // number of true entries in active, maintained O(1)
	fuse        bool
	ref         bool // dispatch through the reference interpreter
	ifs         []ifFrame
	fors        []forFrame
	done        bool
	pend        Pending // reused Step result; valid until the next Step
}

// NewWarp creates a warp at the start of prog. Lanes whose thread index
// falls outside the block are permanently inactive.
func NewWarp(prog *Program, cfg WarpConfig) *Warp {
	w := &Warp{}
	w.Reset(prog, cfg)
	return w
}

// Reset reinitializes the warp in place for a new program position,
// reusing its register file and frame stacks; cores pool warps across
// block launches through it.
func (w *Warp) Reset(prog *Program, cfg WarpConfig) {
	w.prog = prog
	w.plan = prog.mustPlan()
	w.cfg = cfg
	w.fuse = cfg.FuseALU
	w.pc = 0
	w.done = false
	w.stride = prog.Regs
	need := cfg.Width * prog.Regs
	if cap(w.regs) < need {
		w.regs = make([]uint32, need)
	} else {
		w.regs = w.regs[:need]
		clear(w.regs)
	}
	if cap(w.active) < cfg.Width {
		w.active = make([]bool, cfg.Width)
	} else {
		w.active = w.active[:cfg.Width]
	}
	n := 0
	for l := 0; l < cfg.Width; l++ {
		a := cfg.FirstThread+l < cfg.BlockDim
		w.active[l] = a
		if a {
			n++
		}
	}
	w.activeCount = n
	w.ifs = w.ifs[:0]
	w.fors = w.fors[:0]
}

// UseReference switches the warp between the compiled dispatch path
// (false, the default) and the switch-based reference interpreter
// (true). Both paths share all warp state, so a warp may be switched
// between steps.
func (w *Warp) UseReference(ref bool) { w.ref = ref }

func (w *Warp) lane(l int) []uint32 {
	return w.regs[l*w.stride : (l+1)*w.stride]
}

// fullyActive reports whether every lane is active, in O(1).
func (w *Warp) fullyActive() bool { return w.activeCount == len(w.active) }

// pushIf grows the if-frame stack by one, reusing the frame's lane
// slices from an earlier push when the capacity is already there.
func (w *Warp) pushIf() *ifFrame {
	if len(w.ifs) < cap(w.ifs) {
		w.ifs = w.ifs[:len(w.ifs)+1]
	} else {
		w.ifs = append(w.ifs, ifFrame{})
	}
	fr := &w.ifs[len(w.ifs)-1]
	if cap(fr.saved) < w.cfg.Width {
		fr.saved = make([]bool, w.cfg.Width)
		fr.cond = make([]bool, w.cfg.Width)
	} else {
		fr.saved = fr.saved[:w.cfg.Width]
		fr.cond = fr.cond[:w.cfg.Width]
	}
	return fr
}

// newPend resets and returns the warp's reusable Pending.
func (w *Warp) newPend(kind PendKind) *Pending {
	p := &w.pend
	*p = Pending{Kind: kind, Lanes: p.Lanes[:0], Addrs: p.Addrs[:0], Vals: p.Vals[:0], Fused: 1}
	return p
}

// aluPend is the common inline-ALU Step result.
func (w *Warp) aluPend(cycles int) *Pending {
	p := w.newPend(PendALU)
	p.Cycles = cycles
	return p
}

// Done reports whether the warp has finished its program.
func (w *Warp) Done() bool { return w.done }

// PC returns the current program counter, for debugging.
func (w *Warp) PC() int { return w.pc }

func (w *Warp) special(s Spec, lane int) uint32 {
	switch s {
	case SpecTid:
		return uint32(w.cfg.FirstThread + lane)
	case SpecNtid:
		return uint32(w.cfg.BlockDim)
	case SpecCtaid:
		return uint32(w.cfg.BlockID)
	case SpecNctaid:
		return uint32(w.cfg.GridDim)
	case SpecLane:
		return uint32(lane)
	case SpecWarpID:
		return uint32(w.cfg.WarpID)
	}
	panic("isa: unknown special register")
}

func (w *Warp) firstActive() int {
	if w.activeCount == 0 {
		return -1
	}
	if w.fullyActive() {
		return 0
	}
	for l, a := range w.active {
		if a {
			return l
		}
	}
	return -1
}

func (w *Warp) anyActive() bool { return w.activeCount > 0 }

// countActive recounts the active mask; the reference interpreter uses
// it to keep activeCount exact without fast-path bookkeeping.
func (w *Warp) countActive() int {
	n := 0
	for _, a := range w.active {
		if a {
			n++
		}
	}
	return n
}

// Step executes one instruction (or, with FuseALU, one fused run of
// ALU instructions) and reports what happened. For memory and
// intrinsic operations the caller performs the work; loads must be
// completed with CompleteLoad before the warp steps again.
//
// The returned Pending is the warp's own reused buffer — see the
// aliasing contract on Pending. It is valid only until the next Step.
func (w *Warp) Step() *Pending {
	if w.ref {
		return w.stepReference()
	}
	if w.done {
		return w.newPend(PendDone)
	}
	u := &w.plan.ops[w.pc]
	switch u.kind {
	case opALU:
		if w.fuse && u.fuseLen > 1 {
			run := w.plan.ops[w.pc : w.pc+u.fuseLen]
			for i := range run {
				v := &run[i]
				v.apply(w, v)
			}
			w.pc += len(run)
			p := w.aluPend(len(run))
			p.Fused = len(run)
			return p
		}
		u.apply(w, u)
		w.pc++
		return w.aluPend(1)

	case opFlops:
		w.pc++
		return w.aluPend(u.cycles)

	case opLoad:
		p := w.planMem(u, false)
		w.pc++
		return p

	case opStore:
		p := w.planMem(u, true)
		w.pc++
		return p

	case opIf:
		fr := w.pushIf()
		copy(fr.saved, w.active)
		fr.savedCount = w.activeCount
		n := 0
		if w.fullyActive() {
			for l := range w.active {
				c := w.lane(l)[u.ra] != 0
				fr.cond[l] = c
				if c {
					n++
				}
			}
		} else {
			for l := range w.active {
				c := w.active[l] && w.lane(l)[u.ra] != 0
				fr.cond[l] = c
				if c {
					n++
				}
			}
		}
		copy(w.active, fr.cond)
		w.activeCount = n
		if n > 0 {
			w.pc++
		} else {
			w.pc = u.target // skip straight to Else/EndIf
		}
		return w.aluPend(1)

	case opElse:
		fr := &w.ifs[len(w.ifs)-1]
		n := 0
		for l := range w.active {
			a := fr.saved[l] && !fr.cond[l]
			w.active[l] = a
			if a {
				n++
			}
		}
		w.activeCount = n
		if n > 0 {
			w.pc++
		} else {
			w.pc = u.target // skip to EndIf
		}
		return w.aluPend(1)

	case opEndIf:
		fr := &w.ifs[len(w.ifs)-1]
		copy(w.active, fr.saved)
		w.activeCount = fr.savedCount
		w.ifs = w.ifs[:len(w.ifs)-1]
		w.pc++
		return w.aluPend(1)

	case opFor:
		count := u.imm
		if u.ra >= 0 {
			l := w.firstActive()
			if l < 0 {
				count = 0
			} else {
				count = int64(int32(w.lane(l)[u.ra]))
			}
		}
		if count <= 0 || w.activeCount == 0 {
			w.pc = u.target + 1 // skip the loop entirely
			return w.aluPend(1)
		}
		if w.fullyActive() {
			for b, s := 0, w.stride; b < len(w.regs); b += s {
				w.regs[b+u.rd] = 0
			}
		} else {
			for l, a := range w.active {
				if a {
					w.lane(l)[u.rd] = 0
				}
			}
		}
		w.fors = append(w.fors, forFrame{start: w.pc, count: count})
		w.pc++
		return w.aluPend(1)

	case opEndFor:
		fr := &w.fors[len(w.fors)-1]
		fr.iter++
		if fr.iter < fr.count {
			rd := w.plan.ops[fr.start].rd
			iter := uint32(fr.iter)
			if w.fullyActive() {
				for b, s := 0, w.stride; b < len(w.regs); b += s {
					w.regs[b+rd] = iter
				}
			} else {
				for l, a := range w.active {
					if a {
						w.lane(l)[rd] = iter
					}
				}
			}
			w.pc = fr.start + 1
		} else {
			w.fors = w.fors[:len(w.fors)-1]
			w.pc++
		}
		return w.aluPend(1)

	case opBarrier:
		w.pc++
		p := w.newPend(PendBarrier)
		p.Cycles = 1
		return p

	case opIntrin:
		m := w.prog.Code[w.pc].Map
		if u.useRegBase {
			if l := w.firstActive(); l >= 0 {
				r := w.lane(l)
				m.StashBase = int(r[u.ra])
				m.GlobalBase = memdata.VAddr(r[u.rb])
			}
		}
		w.pc++
		p := w.newPend(u.pend)
		p.Slot = u.slot
		p.Map = m
		p.Cycles = 1
		return p

	default: // opExit
		w.done = true
		return w.newPend(PendDone)
	}
}

// planMem builds the memory-op Pending from a pre-decoded plan op. The
// fully-active fast path walks the register file by stride with no
// per-lane mask test; compile-time register validation makes the lane
// slicing safe without re-checks.
func (w *Warp) planMem(u *planOp, store bool) *Pending {
	var p *Pending
	if store {
		p = w.newPend(PendStore)
	} else {
		p = w.newPend(PendLoad)
	}
	p.Slot = u.slot
	p.DstReg = u.rd
	p.Space = u.space
	p.Cycles = 1
	imm := uint64(u.imm)
	if w.fullyActive() {
		lanes, addrs := p.Lanes, p.Addrs
		l := 0
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			lanes = append(lanes, l)
			addrs = append(addrs, uint64(w.regs[b+u.ra])+imm)
			l++
		}
		p.Lanes, p.Addrs = lanes, addrs
		if store {
			vals := p.Vals
			for b, s := 0, w.stride; b < len(w.regs); b += s {
				vals = append(vals, w.regs[b+u.rb])
			}
			p.Vals = vals
		}
		return p
	}
	for l, a := range w.active {
		if !a {
			continue
		}
		r := w.lane(l)
		p.Lanes = append(p.Lanes, l)
		p.Addrs = append(p.Addrs, uint64(r[u.ra])+imm)
		if store {
			p.Vals = append(p.Vals, r[u.rb])
		}
	}
	return p
}

// stepReference is the original switch-based interpreter: it re-decodes
// the Instr on every step. It is retained as the behavioral reference
// for the compiled dispatch path (differential tests and the fuzz
// target run both and compare); simulations never use it.
func (w *Warp) stepReference() *Pending {
	if w.done {
		return w.newPend(PendDone)
	}
	ins := &w.prog.Code[w.pc]
	switch ins.Op {
	case OpExit:
		w.done = true
		return w.newPend(PendDone)

	case OpIf:
		fr := w.pushIf()
		copy(fr.saved, w.active)
		fr.savedCount = w.activeCount
		any := false
		for l := range w.active {
			fr.cond[l] = w.active[l] && w.lane(l)[ins.Ra] != 0
			any = any || fr.cond[l]
		}
		copy(w.active, fr.cond)
		w.activeCount = w.countActive()
		if any {
			w.pc++
		} else {
			w.pc = ins.Target // skip straight to Else/EndIf
		}
		return w.aluPend(1)

	case OpElse:
		fr := &w.ifs[len(w.ifs)-1]
		any := false
		for l := range w.active {
			w.active[l] = fr.saved[l] && !fr.cond[l]
			any = any || w.active[l]
		}
		w.activeCount = w.countActive()
		if any {
			w.pc++
		} else {
			w.pc = ins.Target // skip to EndIf
		}
		return w.aluPend(1)

	case OpEndIf:
		fr := &w.ifs[len(w.ifs)-1]
		copy(w.active, fr.saved)
		w.activeCount = fr.savedCount
		w.ifs = w.ifs[:len(w.ifs)-1]
		w.pc++
		return w.aluPend(1)

	case OpFor:
		count := ins.Imm
		if ins.Ra >= 0 {
			l := w.firstActive()
			if l < 0 {
				count = 0
			} else {
				count = int64(int32(w.lane(l)[ins.Ra]))
			}
		}
		if count <= 0 || !w.anyActive() {
			w.pc = ins.Target + 1 // skip the loop entirely
			return w.aluPend(1)
		}
		for l := range w.active {
			if w.active[l] {
				w.lane(l)[ins.Rd] = 0
			}
		}
		w.fors = append(w.fors, forFrame{start: w.pc, count: count})
		w.pc++
		return w.aluPend(1)

	case OpEndFor:
		fr := &w.fors[len(w.fors)-1]
		fr.iter++
		forIns := &w.prog.Code[fr.start]
		if fr.iter < fr.count {
			for l := range w.active {
				if w.active[l] {
					w.lane(l)[forIns.Rd] = uint32(fr.iter)
				}
			}
			w.pc = fr.start + 1
		} else {
			w.fors = w.fors[:len(w.fors)-1]
			w.pc++
		}
		return w.aluPend(1)

	case OpBarrier:
		w.pc++
		p := w.newPend(PendBarrier)
		p.Cycles = 1
		return p

	case OpFlops:
		w.pc++
		c := int(ins.Imm)
		if c < 1 {
			c = 1
		}
		return w.aluPend(c)

	case OpLdGlobal, OpLdShared, OpLdStash:
		p := w.memPending(ins, false)
		w.pc++
		return p

	case OpStGlobal, OpStShared, OpStStash:
		p := w.memPending(ins, true)
		w.pc++
		return p

	case OpAddMap, OpChgMap, OpDMALoad, OpDMAStore:
		m := ins.Map
		if ins.UseRegBase {
			if l := w.firstActive(); l >= 0 {
				m.StashBase = int(w.lane(l)[ins.Ra])
				m.GlobalBase = memdata.VAddr(w.lane(l)[ins.Rb])
			}
		}
		var kind PendKind
		switch ins.Op {
		case OpAddMap:
			kind = PendAddMap
		case OpChgMap:
			kind = PendChgMap
		case OpDMALoad:
			kind = PendDMALoad
		default:
			kind = PendDMAStore
		}
		w.pc++
		p := w.newPend(kind)
		p.Slot = ins.Slot
		p.Map = m
		p.Cycles = 1
		return p

	default:
		w.alu(ins)
		w.pc++
		return w.aluPend(1)
	}
}

func (w *Warp) memPending(ins *Instr, store bool) *Pending {
	var p *Pending
	if store {
		p = w.newPend(PendStore)
	} else {
		p = w.newPend(PendLoad)
	}
	p.Slot = ins.Slot
	p.DstReg = ins.Rd
	p.Cycles = 1
	switch ins.Op {
	case OpLdGlobal, OpStGlobal:
		p.Space = Global
	case OpLdShared, OpStShared:
		p.Space = Shared
	case OpLdStash, OpStStash:
		p.Space = Stash
	}
	for l := range w.active {
		if !w.active[l] {
			continue
		}
		r := w.lane(l)
		p.Lanes = append(p.Lanes, l)
		addr := uint64(r[ins.Ra]) + uint64(ins.Imm)
		p.Addrs = append(p.Addrs, addr)
		if store {
			p.Vals = append(p.Vals, r[ins.Rb])
		}
	}
	return p
}

// CompleteLoad writes loaded values (one per active lane of p, in lane
// order) into the destination register.
func (w *Warp) CompleteLoad(p *Pending, vals []uint32) {
	if len(vals) != len(p.Lanes) {
		panic(fmt.Sprintf("isa: CompleteLoad got %d values for %d lanes", len(vals), len(p.Lanes)))
	}
	for i, l := range p.Lanes {
		w.lane(l)[p.DstReg] = vals[i]
	}
}

func (w *Warp) alu(ins *Instr) {
	for l := range w.active {
		if !w.active[l] {
			continue
		}
		r := w.lane(l)
		a := r[ins.Ra]
		var bv uint32
		if ins.Op != OpMovImm && ins.Op != OpMovSpec {
			bv = r[ins.Rb]
		}
		switch ins.Op {
		case OpNop:
		case OpMovImm:
			r[ins.Rd] = uint32(ins.Imm)
		case OpMovSpec:
			r[ins.Rd] = w.special(ins.Spec, l)
		case OpMov:
			r[ins.Rd] = a
		case OpAdd:
			r[ins.Rd] = a + bv
		case OpSub:
			r[ins.Rd] = a - bv
		case OpMul:
			r[ins.Rd] = a * bv
		case OpDiv:
			r[ins.Rd] = a / nonzero(bv)
		case OpMod:
			r[ins.Rd] = a % nonzero(bv)
		case OpAnd:
			r[ins.Rd] = a & bv
		case OpOr:
			r[ins.Rd] = a | bv
		case OpXor:
			r[ins.Rd] = a ^ bv
		case OpShl:
			r[ins.Rd] = a << (bv & 31)
		case OpShr:
			r[ins.Rd] = a >> (bv & 31)
		case OpAddImm:
			r[ins.Rd] = a + uint32(ins.Imm)
		case OpMulImm:
			r[ins.Rd] = a * uint32(ins.Imm)
		case OpDivImm:
			r[ins.Rd] = a / nonzero(uint32(ins.Imm))
		case OpModImm:
			r[ins.Rd] = a % nonzero(uint32(ins.Imm))
		case OpAndImm:
			r[ins.Rd] = a & uint32(ins.Imm)
		case OpShlImm:
			r[ins.Rd] = a << (uint32(ins.Imm) & 31)
		case OpShrImm:
			r[ins.Rd] = a >> (uint32(ins.Imm) & 31)
		case OpSetLt:
			r[ins.Rd] = boolToU32(int32(a) < int32(bv))
		case OpSetGe:
			r[ins.Rd] = boolToU32(int32(a) >= int32(bv))
		case OpSetEq:
			r[ins.Rd] = boolToU32(a == bv)
		case OpSetNe:
			r[ins.Rd] = boolToU32(a != bv)
		case OpSetLtImm:
			r[ins.Rd] = boolToU32(int32(a) < int32(ins.Imm))
		case OpSetEqImm:
			r[ins.Rd] = boolToU32(a == uint32(ins.Imm))
		case OpSelect:
			if a != 0 {
				r[ins.Rd] = r[ins.Rb]
			} else {
				r[ins.Rd] = r[ins.Rc]
			}
		case OpMadImm:
			r[ins.Rd] = a*uint32(ins.Imm) + bv
		default:
			panic(fmt.Sprintf("isa: unhandled opcode %d", ins.Op))
		}
	}
}

func nonzero(v uint32) uint32 {
	if v == 0 {
		panic("isa: division by zero")
	}
	return v
}

func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Reg returns a lane's register value, for tests.
func (w *Warp) Reg(lane, reg int) uint32 { return w.lane(lane)[reg] }
