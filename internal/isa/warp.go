package isa

import (
	"fmt"

	"stash/internal/core"
	"stash/internal/memdata"
)

// WarpConfig positions a warp within its grid.
type WarpConfig struct {
	Width       int // lanes per warp (32 on the GPU, 1 on a CPU core)
	BlockDim    int // threads per block
	BlockID     int
	GridDim     int
	WarpID      int // warp index within the block
	FirstThread int // block-relative thread index of lane 0
}

// PendKind classifies what a Step produced.
type PendKind int

// Step results.
const (
	PendALU      PendKind = iota // executed inline; costs Cycles (>=1)
	PendLoad                     // memory load awaiting data
	PendStore                    // memory store to issue
	PendBarrier                  // block-wide synchronization point
	PendAddMap                   // stash AddMap intrinsic
	PendChgMap                   // stash ChgMap intrinsic
	PendDMALoad                  // blocking DMA preload
	PendDMAStore                 // blocking DMA writeout
	PendDone                     // program finished
)

// Pending describes the work a Step handed to the core model.
type Pending struct {
	Kind   PendKind
	Space  Space
	Slot   int
	Lanes  []int    // active lane indices
	Addrs  []uint64 // per active lane: global byte address, or space word offset
	Vals   []uint32 // per active lane: store values
	DstReg int      // load destination register
	Map    core.MapParams
	Cycles int // ALU occupancy (1 for simple ops, Imm for Flops)
}

type ifFrame struct {
	saved []bool
	cond  []bool
}

type forFrame struct {
	start int // index of the OpFor
	iter  int64
	count int64
}

// Warp interprets a program over Width lanes in lockstep with
// structured divergence. Arithmetic is 32-bit; comparisons are signed.
type Warp struct {
	prog   *Program
	cfg    WarpConfig
	pc     int
	regs   [][]uint32 // [lane][reg]
	active []bool
	ifs    []ifFrame
	fors   []forFrame
	done   bool
}

// NewWarp creates a warp at the start of prog. Lanes whose thread index
// falls outside the block are permanently inactive.
func NewWarp(prog *Program, cfg WarpConfig) *Warp {
	w := &Warp{prog: prog, cfg: cfg}
	w.regs = make([][]uint32, cfg.Width)
	w.active = make([]bool, cfg.Width)
	for l := 0; l < cfg.Width; l++ {
		w.regs[l] = make([]uint32, prog.Regs)
		w.active[l] = cfg.FirstThread+l < cfg.BlockDim
	}
	return w
}

// Done reports whether the warp has finished its program.
func (w *Warp) Done() bool { return w.done }

// PC returns the current program counter, for debugging.
func (w *Warp) PC() int { return w.pc }

func (w *Warp) special(s Spec, lane int) uint32 {
	switch s {
	case SpecTid:
		return uint32(w.cfg.FirstThread + lane)
	case SpecNtid:
		return uint32(w.cfg.BlockDim)
	case SpecCtaid:
		return uint32(w.cfg.BlockID)
	case SpecNctaid:
		return uint32(w.cfg.GridDim)
	case SpecLane:
		return uint32(lane)
	case SpecWarpID:
		return uint32(w.cfg.WarpID)
	}
	panic("isa: unknown special register")
}

func (w *Warp) firstActive() int {
	for l, a := range w.active {
		if a {
			return l
		}
	}
	return -1
}

func (w *Warp) anyActive() bool { return w.firstActive() >= 0 }

// Step executes one instruction and reports what happened. For memory
// and intrinsic operations the caller performs the work; loads must be
// completed with CompleteLoad before the warp steps again.
func (w *Warp) Step() *Pending {
	if w.done {
		return &Pending{Kind: PendDone}
	}
	ins := &w.prog.Code[w.pc]
	switch ins.Op {
	case OpExit:
		w.done = true
		return &Pending{Kind: PendDone}

	case OpIf:
		fr := ifFrame{saved: append([]bool(nil), w.active...), cond: make([]bool, w.cfg.Width)}
		any := false
		for l := range w.active {
			if w.active[l] && w.regs[l][ins.Ra] != 0 {
				fr.cond[l] = true
				any = true
			}
		}
		w.ifs = append(w.ifs, fr)
		copy(w.active, fr.cond)
		if any {
			w.pc++
		} else {
			w.pc = ins.Target // skip straight to Else/EndIf
		}
		return &Pending{Kind: PendALU, Cycles: 1}

	case OpElse:
		fr := &w.ifs[len(w.ifs)-1]
		any := false
		for l := range w.active {
			w.active[l] = fr.saved[l] && !fr.cond[l]
			any = any || w.active[l]
		}
		if any {
			w.pc++
		} else {
			w.pc = ins.Target // skip to EndIf
		}
		return &Pending{Kind: PendALU, Cycles: 1}

	case OpEndIf:
		fr := w.ifs[len(w.ifs)-1]
		w.ifs = w.ifs[:len(w.ifs)-1]
		copy(w.active, fr.saved)
		w.pc++
		return &Pending{Kind: PendALU, Cycles: 1}

	case OpFor:
		count := ins.Imm
		if ins.Ra >= 0 {
			l := w.firstActive()
			if l < 0 {
				count = 0
			} else {
				count = int64(int32(w.regs[l][ins.Ra]))
			}
		}
		if count <= 0 || !w.anyActive() {
			w.pc = ins.Target + 1 // skip the loop entirely
			return &Pending{Kind: PendALU, Cycles: 1}
		}
		for l := range w.active {
			if w.active[l] {
				w.regs[l][ins.Rd] = 0
			}
		}
		w.fors = append(w.fors, forFrame{start: w.pc, count: count})
		w.pc++
		return &Pending{Kind: PendALU, Cycles: 1}

	case OpEndFor:
		fr := &w.fors[len(w.fors)-1]
		fr.iter++
		forIns := &w.prog.Code[fr.start]
		if fr.iter < fr.count {
			for l := range w.active {
				if w.active[l] {
					w.regs[l][forIns.Rd] = uint32(fr.iter)
				}
			}
			w.pc = fr.start + 1
		} else {
			w.fors = w.fors[:len(w.fors)-1]
			w.pc++
		}
		return &Pending{Kind: PendALU, Cycles: 1}

	case OpBarrier:
		w.pc++
		return &Pending{Kind: PendBarrier, Cycles: 1}

	case OpFlops:
		w.pc++
		c := int(ins.Imm)
		if c < 1 {
			c = 1
		}
		return &Pending{Kind: PendALU, Cycles: c}

	case OpLdGlobal, OpLdShared, OpLdStash:
		p := w.memPending(ins, false)
		w.pc++
		return p

	case OpStGlobal, OpStShared, OpStStash:
		p := w.memPending(ins, true)
		w.pc++
		return p

	case OpAddMap, OpChgMap, OpDMALoad, OpDMAStore:
		m := ins.Map
		if ins.UseRegBase {
			if l := w.firstActive(); l >= 0 {
				m.StashBase = int(w.regs[l][ins.Ra])
				m.GlobalBase = memdata.VAddr(w.regs[l][ins.Rb])
			}
		}
		kind := map[Op]PendKind{
			OpAddMap: PendAddMap, OpChgMap: PendChgMap,
			OpDMALoad: PendDMALoad, OpDMAStore: PendDMAStore,
		}[ins.Op]
		w.pc++
		return &Pending{Kind: kind, Slot: ins.Slot, Map: m, Cycles: 1}

	default:
		w.alu(ins)
		w.pc++
		return &Pending{Kind: PendALU, Cycles: 1}
	}
}

func (w *Warp) memPending(ins *Instr, store bool) *Pending {
	p := &Pending{Slot: ins.Slot, DstReg: ins.Rd, Cycles: 1}
	switch ins.Op {
	case OpLdGlobal, OpStGlobal:
		p.Space = Global
	case OpLdShared, OpStShared:
		p.Space = Shared
	case OpLdStash, OpStStash:
		p.Space = Stash
	}
	if store {
		p.Kind = PendStore
	} else {
		p.Kind = PendLoad
	}
	for l := range w.active {
		if !w.active[l] {
			continue
		}
		p.Lanes = append(p.Lanes, l)
		addr := uint64(w.regs[l][ins.Ra]) + uint64(ins.Imm)
		p.Addrs = append(p.Addrs, addr)
		if store {
			p.Vals = append(p.Vals, w.regs[l][ins.Rb])
		}
	}
	return p
}

// CompleteLoad writes loaded values (one per active lane of p, in lane
// order) into the destination register.
func (w *Warp) CompleteLoad(p *Pending, vals []uint32) {
	if len(vals) != len(p.Lanes) {
		panic(fmt.Sprintf("isa: CompleteLoad got %d values for %d lanes", len(vals), len(p.Lanes)))
	}
	for i, l := range p.Lanes {
		w.regs[l][p.DstReg] = vals[i]
	}
}

func (w *Warp) alu(ins *Instr) {
	for l := range w.active {
		if !w.active[l] {
			continue
		}
		r := w.regs[l]
		a := r[ins.Ra]
		var bv uint32
		if ins.Op != OpMovImm && ins.Op != OpMovSpec {
			bv = r[ins.Rb]
		}
		switch ins.Op {
		case OpNop:
		case OpMovImm:
			r[ins.Rd] = uint32(ins.Imm)
		case OpMovSpec:
			r[ins.Rd] = w.special(ins.Spec, l)
		case OpMov:
			r[ins.Rd] = a
		case OpAdd:
			r[ins.Rd] = a + bv
		case OpSub:
			r[ins.Rd] = a - bv
		case OpMul:
			r[ins.Rd] = a * bv
		case OpDiv:
			r[ins.Rd] = a / nonzero(bv)
		case OpMod:
			r[ins.Rd] = a % nonzero(bv)
		case OpAnd:
			r[ins.Rd] = a & bv
		case OpOr:
			r[ins.Rd] = a | bv
		case OpXor:
			r[ins.Rd] = a ^ bv
		case OpShl:
			r[ins.Rd] = a << (bv & 31)
		case OpShr:
			r[ins.Rd] = a >> (bv & 31)
		case OpAddImm:
			r[ins.Rd] = a + uint32(ins.Imm)
		case OpMulImm:
			r[ins.Rd] = a * uint32(ins.Imm)
		case OpDivImm:
			r[ins.Rd] = a / nonzero(uint32(ins.Imm))
		case OpModImm:
			r[ins.Rd] = a % nonzero(uint32(ins.Imm))
		case OpAndImm:
			r[ins.Rd] = a & uint32(ins.Imm)
		case OpShlImm:
			r[ins.Rd] = a << (uint32(ins.Imm) & 31)
		case OpShrImm:
			r[ins.Rd] = a >> (uint32(ins.Imm) & 31)
		case OpSetLt:
			r[ins.Rd] = boolToU32(int32(a) < int32(bv))
		case OpSetGe:
			r[ins.Rd] = boolToU32(int32(a) >= int32(bv))
		case OpSetEq:
			r[ins.Rd] = boolToU32(a == bv)
		case OpSetNe:
			r[ins.Rd] = boolToU32(a != bv)
		case OpSetLtImm:
			r[ins.Rd] = boolToU32(int32(a) < int32(ins.Imm))
		case OpSetEqImm:
			r[ins.Rd] = boolToU32(a == uint32(ins.Imm))
		case OpSelect:
			if a != 0 {
				r[ins.Rd] = r[ins.Rb]
			} else {
				r[ins.Rd] = r[ins.Rc]
			}
		case OpMadImm:
			r[ins.Rd] = a*uint32(ins.Imm) + bv
		default:
			panic(fmt.Sprintf("isa: unhandled opcode %d", ins.Op))
		}
	}
}

func nonzero(v uint32) uint32 {
	if v == 0 {
		panic("isa: division by zero")
	}
	return v
}

func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Reg returns a lane's register value, for tests.
func (w *Warp) Reg(lane, reg int) uint32 { return w.regs[lane][reg] }
