package isa

import "testing"

// dispatchKernel is the interpreter micro-benchmark workload: a counted
// loop whose body mixes a fusable straight-line ALU run, divergent
// control flow, and a scratchpad load, so every dispatch path (fused
// run, divergence masks, planMem) is on the hot loop — with no memory
// system behind it, the benchmark isolates dispatch from the memory
// model.
func dispatchKernel() *Program {
	b := NewBuilder()
	lane, x, y, z, c, i := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Special(lane, SpecLane)
	b.MovImm(x, 1)
	b.MovImm(y, 2)
	b.For(i, 64)
	{
		// Straight-line ALU run (fusable as one superinstruction).
		b.Add(x, x, y)
		b.Xor(y, x, lane)
		b.MulImm(z, x, 3)
		b.MadImm(x, z, 5, y)
		b.SetLt(c, x, y)
		b.Select(z, c, x, y)
		// Divergent branch.
		b.AndImm(c, lane, 1)
		b.If(c)
		b.AddImm(x, x, 7)
		b.Else()
		b.AddImm(y, y, 9)
		b.EndIf()
		// Scratchpad load through planMem.
		b.AndImm(z, z, 0xff)
		b.LdShared(z, z, 4)
	}
	b.EndFor()
	return b.MustBuild()
}

// runDispatch executes prog once on w, completing loads from a
// synthetic flat memory, and returns the instructions retired.
func runDispatch(w *Warp, prog *Program, cfg WarpConfig, vals []uint32) int {
	w.Reset(prog, cfg)
	instrs := 0
	for {
		p := w.Step()
		switch p.Kind {
		case PendDone:
			return instrs
		case PendLoad:
			v := vals[:len(p.Lanes)]
			for i, a := range p.Addrs {
				v[i] = uint32(a) * 2654435761
			}
			w.CompleteLoad(p, v)
		}
		instrs += p.Fused
	}
}

// BenchmarkWarpStep compares the three dispatch paths on one kernel
// execution per op: the switch-based reference interpreter, the
// compiled plan, and the compiled plan with ALU fusion.
func BenchmarkWarpStep(b *testing.B) {
	prog := dispatchKernel()
	for _, bc := range []struct {
		name string
		ref  bool
		fuse bool
	}{
		{"reference", true, false},
		{"compiled", false, false},
		{"compiled-fused", false, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := WarpConfig{Width: 32, BlockDim: 32, GridDim: 1, FuseALU: bc.fuse}
			w := NewWarp(prog, cfg)
			w.UseReference(bc.ref)
			vals := make([]uint32, cfg.Width)
			instrs := runDispatch(w, prog, cfg, vals) // warm the warp's buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runDispatch(w, prog, cfg, vals)
			}
			b.ReportMetric(float64(instrs), "instrs")
			b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
		})
	}
}

// BenchmarkCompiledDispatch is the headline dispatch number: the
// compiled fused path, full warp, steady state. It must run at zero
// allocations per op (see TestCompiledDispatchZeroAlloc for the hard
// assertion).
func BenchmarkCompiledDispatch(b *testing.B) {
	prog := dispatchKernel()
	cfg := WarpConfig{Width: 32, BlockDim: 32, GridDim: 1, FuseALU: true}
	w := NewWarp(prog, cfg)
	vals := make([]uint32, cfg.Width)
	instrs := runDispatch(w, prog, cfg, vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runDispatch(w, prog, cfg, vals)
	}
	b.ReportMetric(float64(instrs), "instrs")
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// TestCompiledDispatchZeroAlloc pins the steady-state allocation rate
// of the compiled dispatch loop at zero: after the first execution has
// sized the warp's reused buffers, stepping a program end to end —
// fused and unfused — must not allocate.
func TestCompiledDispatchZeroAlloc(t *testing.T) {
	prog := dispatchKernel()
	for _, fuse := range []bool{false, true} {
		cfg := WarpConfig{Width: 32, BlockDim: 32, GridDim: 1, FuseALU: fuse}
		w := NewWarp(prog, cfg)
		vals := make([]uint32, cfg.Width)
		runDispatch(w, prog, cfg, vals) // size every reused buffer
		if n := testing.AllocsPerRun(10, func() {
			runDispatch(w, prog, cfg, vals)
		}); n != 0 {
			t.Errorf("FuseALU=%v: steady-state dispatch allocates %.0f allocs/op, want 0", fuse, n)
		}
	}
}
