package isa

import "fmt"

// This file is the kernel compiler: at Program build time the
// instruction slice is lowered once into a flat, pre-decoded execution
// plan that the warp interpreter dispatches through instead of
// re-decoding every Instr through the opcode switch on every step.
//
// The plan buys three things over direct interpretation:
//
//   - decode once: operand registers, immediates, memory spaces, and
//     structured-control-flow targets are resolved and validated at
//     compile time, so Step never touches an Instr again;
//   - threaded dispatch: every ALU opcode is lowered to a pre-bound
//     apply function whose lane loop is specialized per opcode (the
//     reference interpreter re-selects the opcode inside the per-lane
//     loop) with a hoisted fully-active fast path that skips the
//     divergence-mask test on every lane;
//   - fusion metadata: maximal straight-line runs of single-cycle ALU
//     instructions between control-flow/memory boundaries are marked so
//     a warp in fused mode (see WarpConfig.FuseALU) can execute the
//     whole run as one superinstruction returning a single PendALU with
//     Cycles == run length.
//
// Compile-time register validation is what makes the fast paths safe:
// every register index is checked against Program.Regs once, so the
// per-lane inner loops never re-validate and the lane slice can be
// taken with a single bounded slice expression per lane.

// opKind is the dense dispatch class of a compiled operation.
type opKind uint8

const (
	opALU     opKind = iota // single-cycle register op; apply is non-nil
	opFlops                 // occupy the lanes for cycles
	opLoad                  // memory load (space pre-decoded)
	opStore                 // memory store (space pre-decoded)
	opIf                    // push mask, intersect with condition
	opElse                  // flip within the pushed mask
	opEndIf                 // pop mask
	opFor                   // open counted loop
	opEndFor                // close counted loop / back-edge
	opBarrier               // block-wide barrier
	opIntrin                // AddMap/ChgMap/DMA (pend kind pre-decoded)
	opExit                  // program end
)

// applyFn mutates the register file for one ALU op. The plan binds one
// per opcode; operands come pre-decoded from the planOp.
type applyFn func(w *Warp, u *planOp)

// planOp is one pre-decoded operation of the execution plan.
type planOp struct {
	kind  opKind
	apply applyFn // ALU register-file mutation (opALU only)
	op    Op      // source opcode, for diagnostics

	rd, ra, rb, rc int
	imm            int64
	u32            uint32 // uint32(imm), converted once
	spec           Spec
	slot           int
	space          Space
	target         int
	pend           PendKind // intrinsic result kind (opIntrin)
	useRegBase     bool
	cycles         int // flops occupancy, pre-clamped to >= 1

	// fuseLen is the length of the maximal straight-line run of opALU
	// operations starting here (1 for a lone ALU op, 0 for non-ALU).
	// Branch targets only ever land on control boundaries, so a run is
	// always entered at its head and can execute atomically.
	fuseLen int
}

// plan is a compiled program: one planOp per source instruction, in
// source order (pc values are shared with the Instr slice).
type plan struct {
	ops []planOp
}

// compileError reports an invalid instruction found at compile time.
func compileError(pc int, ins *Instr, format string, args ...any) error {
	return fmt.Errorf("isa: instruction %d (%s): %s", pc, opName(ins.Op), fmt.Sprintf(format, args...))
}

var opNames = map[Op]string{
	OpNop: "Nop", OpMovImm: "MovImm", OpMovSpec: "MovSpec", OpMov: "Mov",
	OpAdd: "Add", OpSub: "Sub", OpMul: "Mul", OpDiv: "Div", OpMod: "Mod",
	OpAnd: "And", OpOr: "Or", OpXor: "Xor", OpShl: "Shl", OpShr: "Shr",
	OpAddImm: "AddImm", OpMulImm: "MulImm", OpDivImm: "DivImm", OpModImm: "ModImm",
	OpAndImm: "AndImm", OpShlImm: "ShlImm", OpShrImm: "ShrImm",
	OpSetLt: "SetLt", OpSetGe: "SetGe", OpSetEq: "SetEq", OpSetNe: "SetNe",
	OpSetLtImm: "SetLtImm", OpSetEqImm: "SetEqImm", OpSelect: "Select",
	OpMadImm: "MadImm", OpFlops: "Flops",
	OpLdGlobal: "LdGlobal", OpStGlobal: "StGlobal", OpLdShared: "LdShared",
	OpStShared: "StShared", OpLdStash: "LdStash", OpStStash: "StStash",
	OpAddMap: "AddMap", OpChgMap: "ChgMap", OpDMALoad: "DMALoad", OpDMAStore: "DMAStore",
	OpBarrier: "Barrier", OpIf: "If", OpElse: "Else", OpEndIf: "EndIf",
	OpFor: "For", OpEndFor: "EndFor", OpExit: "Exit",
}

func opName(op Op) string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op%d", int(op))
}

// compile lowers prog.Code into an execution plan, validating every
// register index, control-flow target, and special-register selector.
func compile(prog *Program) (*plan, error) {
	ops := make([]planOp, len(prog.Code))
	regs := prog.Regs
	checkReg := func(pc int, ins *Instr, name string, r int) error {
		if r < 0 || r >= regs {
			return compileError(pc, ins, "register %s=%d out of range [0,%d)", name, r, regs)
		}
		return nil
	}
	for pc := range prog.Code {
		ins := &prog.Code[pc]
		u := &ops[pc]
		u.op = ins.Op
		u.rd, u.ra, u.rb, u.rc = ins.Rd, ins.Ra, ins.Rb, ins.Rc
		u.imm = ins.Imm
		u.u32 = uint32(ins.Imm)
		u.spec = ins.Spec
		u.slot = ins.Slot
		u.target = ins.Target
		u.useRegBase = ins.UseRegBase

		// needs lists the register operands this opcode actually reads
		// or writes; everything listed is validated once, here.
		var needs []regUse
		switch ins.Op {
		case OpNop, OpFlops, OpBarrier, OpElse, OpEndIf, OpEndFor, OpExit:
			// no register operands
		case OpMovImm:
			needs = []regUse{{"Rd", ins.Rd}}
		case OpMovSpec:
			if ins.Spec < SpecTid || ins.Spec > SpecWarpID {
				return nil, compileError(pc, ins, "unknown special register %d", ins.Spec)
			}
			needs = []regUse{{"Rd", ins.Rd}}
		case OpMov:
			needs = []regUse{{"Rd", ins.Rd}, {"Ra", ins.Ra}}
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr,
			OpSetLt, OpSetGe, OpSetEq, OpSetNe, OpMadImm:
			needs = []regUse{{"Rd", ins.Rd}, {"Ra", ins.Ra}, {"Rb", ins.Rb}}
		case OpAddImm, OpMulImm, OpDivImm, OpModImm, OpAndImm, OpShlImm, OpShrImm,
			OpSetLtImm, OpSetEqImm:
			needs = []regUse{{"Rd", ins.Rd}, {"Ra", ins.Ra}}
		case OpSelect:
			needs = []regUse{{"Rd", ins.Rd}, {"Ra", ins.Ra}, {"Rb", ins.Rb}, {"Rc", ins.Rc}}
		case OpLdGlobal, OpLdShared, OpLdStash:
			needs = []regUse{{"Rd", ins.Rd}, {"Ra", ins.Ra}}
		case OpStGlobal, OpStShared, OpStStash:
			needs = []regUse{{"Ra", ins.Ra}, {"Rb", ins.Rb}}
		case OpAddMap, OpChgMap, OpDMALoad, OpDMAStore:
			if ins.UseRegBase {
				needs = []regUse{{"Ra", ins.Ra}, {"Rb", ins.Rb}}
			}
		case OpIf:
			needs = []regUse{{"Ra", ins.Ra}}
		case OpFor:
			needs = []regUse{{"Rd", ins.Rd}}
			if ins.Ra >= 0 {
				needs = append(needs, regUse{"Ra", ins.Ra})
			}
		default:
			return nil, compileError(pc, ins, "unknown opcode")
		}
		for _, n := range needs {
			if err := checkReg(pc, ins, n.name, n.reg); err != nil {
				return nil, err
			}
		}

		switch ins.Op {
		case OpFlops:
			u.kind = opFlops
			u.cycles = int(ins.Imm)
			if u.cycles < 1 {
				u.cycles = 1
			}
		case OpLdGlobal, OpLdShared, OpLdStash:
			u.kind = opLoad
			u.space = spaceOf(ins.Op)
		case OpStGlobal, OpStShared, OpStStash:
			u.kind = opStore
			u.space = spaceOf(ins.Op)
		case OpAddMap, OpChgMap, OpDMALoad, OpDMAStore:
			u.kind = opIntrin
			switch ins.Op {
			case OpAddMap:
				u.pend = PendAddMap
			case OpChgMap:
				u.pend = PendChgMap
			case OpDMALoad:
				u.pend = PendDMALoad
			default:
				u.pend = PendDMAStore
			}
		case OpBarrier:
			u.kind = opBarrier
		case OpIf:
			u.kind = opIf
			if err := checkTarget(prog, pc, ins, OpElse, OpEndIf); err != nil {
				return nil, err
			}
		case OpElse:
			u.kind = opElse
			if err := checkTarget(prog, pc, ins, OpEndIf, OpEndIf); err != nil {
				return nil, err
			}
		case OpEndIf:
			u.kind = opEndIf
		case OpFor:
			u.kind = opFor
			u.ra = ins.Ra // may legitimately be -1 (immediate trip count)
			if err := checkTarget(prog, pc, ins, OpEndFor, OpEndFor); err != nil {
				return nil, err
			}
		case OpEndFor:
			u.kind = opEndFor
			if ins.Target < 0 || ins.Target >= pc || prog.Code[ins.Target].Op != OpFor {
				return nil, compileError(pc, ins, "back-edge target %d is not an earlier For", ins.Target)
			}
		case OpExit:
			u.kind = opExit
		default:
			u.kind = opALU
			u.apply = aluApply[ins.Op]
			if u.apply == nil {
				return nil, compileError(pc, ins, "no ALU lowering")
			}
		}
	}

	// Fusion metadata: mark each maximal straight-line opALU run with
	// its length at the head (and every later member, so a warp that
	// single-steps into a run — fusion disabled — still sees fuseLen
	// for the remainder; entry mid-run cannot happen in fused mode
	// because branch targets always land on control boundaries).
	for pc := len(ops) - 1; pc >= 0; pc-- {
		if ops[pc].kind != opALU {
			continue
		}
		ops[pc].fuseLen = 1
		if pc+1 < len(ops) && ops[pc+1].kind == opALU {
			ops[pc].fuseLen = ops[pc+1].fuseLen + 1
		}
	}
	return &plan{ops: ops}, nil
}

type regUse struct {
	name string
	reg  int
}

func spaceOf(op Op) Space {
	switch op {
	case OpLdGlobal, OpStGlobal:
		return Global
	case OpLdShared, OpStShared:
		return Shared
	default:
		return Stash
	}
}

// checkTarget validates a forward structured-control-flow target.
func checkTarget(prog *Program, pc int, ins *Instr, want1, want2 Op) error {
	t := ins.Target
	if t <= pc || t >= len(prog.Code) {
		return compileError(pc, ins, "target %d outside (%d,%d)", t, pc, len(prog.Code))
	}
	if got := prog.Code[t].Op; got != want1 && got != want2 {
		return compileError(pc, ins, "target %d is %s, want %s or %s", t, opName(got), opName(want1), opName(want2))
	}
	return nil
}

// --- per-opcode ALU lowering ---
//
// Each apply function owns its lane loop, with the opcode selected
// once (threaded dispatch) instead of per lane, and a fully-active
// fast path — tracked by the warp's O(1) activeCount — that iterates
// the register file by stride with no per-lane mask test.

var aluApply [OpFlops + 1]applyFn

func init() {
	aluApply[OpNop] = applyNop
	aluApply[OpMovImm] = applyMovImm
	aluApply[OpMovSpec] = applyMovSpec
	aluApply[OpMov] = applyMov
	aluApply[OpAdd] = applyAdd
	aluApply[OpSub] = applySub
	aluApply[OpMul] = applyMul
	aluApply[OpDiv] = applyDiv
	aluApply[OpMod] = applyMod
	aluApply[OpAnd] = applyAnd
	aluApply[OpOr] = applyOr
	aluApply[OpXor] = applyXor
	aluApply[OpShl] = applyShl
	aluApply[OpShr] = applyShr
	aluApply[OpAddImm] = applyAddImm
	aluApply[OpMulImm] = applyMulImm
	aluApply[OpDivImm] = applyDivImm
	aluApply[OpModImm] = applyModImm
	aluApply[OpAndImm] = applyAndImm
	aluApply[OpShlImm] = applyShlImm
	aluApply[OpShrImm] = applyShrImm
	aluApply[OpSetLt] = applySetLt
	aluApply[OpSetGe] = applySetGe
	aluApply[OpSetEq] = applySetEq
	aluApply[OpSetNe] = applySetNe
	aluApply[OpSetLtImm] = applySetLtImm
	aluApply[OpSetEqImm] = applySetEqImm
	aluApply[OpSelect] = applySelect
	aluApply[OpMadImm] = applyMadImm
}

func applyNop(w *Warp, u *planOp) {}

func applyMovImm(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			w.regs[b+u.rd] = u.u32
		}
		return
	}
	for l, a := range w.active {
		if a {
			w.lane(l)[u.rd] = u.u32
		}
	}
}

func applyMovSpec(w *Warp, u *planOp) {
	switch u.spec {
	case SpecTid, SpecLane:
		base := 0
		if u.spec == SpecTid {
			base = w.cfg.FirstThread
		}
		if w.fullyActive() {
			l := 0
			for b, s := 0, w.stride; b < len(w.regs); b += s {
				w.regs[b+u.rd] = uint32(base + l)
				l++
			}
			return
		}
		for l, a := range w.active {
			if a {
				w.lane(l)[u.rd] = uint32(base + l)
			}
		}
	default:
		v := w.special(u.spec, 0) // lane-uniform
		if w.fullyActive() {
			for b, s := 0, w.stride; b < len(w.regs); b += s {
				w.regs[b+u.rd] = v
			}
			return
		}
		for l, a := range w.active {
			if a {
				w.lane(l)[u.rd] = v
			}
		}
	}
}

func applyMov(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra]
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra]
		}
	}
}

func applyAdd(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] + r[u.rb]
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] + r[u.rb]
		}
	}
}

func applySub(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] - r[u.rb]
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] - r[u.rb]
		}
	}
}

func applyMul(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] * r[u.rb]
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] * r[u.rb]
		}
	}
}

func applyDiv(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] / nonzero(r[u.rb])
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] / nonzero(r[u.rb])
		}
	}
}

func applyMod(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] % nonzero(r[u.rb])
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] % nonzero(r[u.rb])
		}
	}
}

func applyAnd(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] & r[u.rb]
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] & r[u.rb]
		}
	}
}

func applyOr(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] | r[u.rb]
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] | r[u.rb]
		}
	}
}

func applyXor(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] ^ r[u.rb]
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] ^ r[u.rb]
		}
	}
}

func applyShl(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] << (r[u.rb] & 31)
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] << (r[u.rb] & 31)
		}
	}
}

func applyShr(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] >> (r[u.rb] & 31)
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] >> (r[u.rb] & 31)
		}
	}
}

func applyAddImm(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] + u.u32
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] + u.u32
		}
	}
}

func applyMulImm(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] * u.u32
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] * u.u32
		}
	}
}

func applyDivImm(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] / nonzero(u.u32)
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] / nonzero(u.u32)
		}
	}
}

func applyModImm(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] % nonzero(u.u32)
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] % nonzero(u.u32)
		}
	}
}

func applyAndImm(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] & u.u32
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] & u.u32
		}
	}
}

func applyShlImm(w *Warp, u *planOp) {
	sh := u.u32 & 31
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] << sh
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] << sh
		}
	}
}

func applyShrImm(w *Warp, u *planOp) {
	sh := u.u32 & 31
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra] >> sh
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra] >> sh
		}
	}
}

func applySetLt(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = boolToU32(int32(r[u.ra]) < int32(r[u.rb]))
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = boolToU32(int32(r[u.ra]) < int32(r[u.rb]))
		}
	}
}

func applySetGe(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = boolToU32(int32(r[u.ra]) >= int32(r[u.rb]))
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = boolToU32(int32(r[u.ra]) >= int32(r[u.rb]))
		}
	}
}

func applySetEq(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = boolToU32(r[u.ra] == r[u.rb])
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = boolToU32(r[u.ra] == r[u.rb])
		}
	}
}

func applySetNe(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = boolToU32(r[u.ra] != r[u.rb])
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = boolToU32(r[u.ra] != r[u.rb])
		}
	}
}

func applySetLtImm(w *Warp, u *planOp) {
	imm := int32(u.imm)
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = boolToU32(int32(r[u.ra]) < imm)
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = boolToU32(int32(r[u.ra]) < imm)
		}
	}
}

func applySetEqImm(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = boolToU32(r[u.ra] == u.u32)
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = boolToU32(r[u.ra] == u.u32)
		}
	}
}

func applySelect(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			if r[u.ra] != 0 {
				r[u.rd] = r[u.rb]
			} else {
				r[u.rd] = r[u.rc]
			}
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			if r[u.ra] != 0 {
				r[u.rd] = r[u.rb]
			} else {
				r[u.rd] = r[u.rc]
			}
		}
	}
}

func applyMadImm(w *Warp, u *planOp) {
	if w.fullyActive() {
		for b, s := 0, w.stride; b < len(w.regs); b += s {
			r := w.regs[b : b+s : b+s]
			r[u.rd] = r[u.ra]*u.u32 + r[u.rb]
		}
		return
	}
	for l, a := range w.active {
		if a {
			r := w.lane(l)
			r[u.rd] = r[u.ra]*u.u32 + r[u.rb]
		}
	}
}
