package isa

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"stash/internal/core"
)

// This file differentially tests the compiled dispatch path against the
// switch-based reference interpreter: seeded random-but-valid builder
// programs run on both, and the Pending streams and final register
// files must be identical. With FuseALU on, the compiled warp retires
// straight-line ALU runs as one superinstruction, so ALU pendings are
// compared as accumulated cycle/instruction totals between non-ALU
// boundary pendings instead of step by step.

// synthVal is the deterministic value a differential load returns for
// an address: both warps see the same data without a memory model.
func synthVal(space Space, addr uint64) uint32 {
	return uint32(addr*2654435761) ^ uint32(space)*0x9e3779b9
}

// progGen emits random valid kernels. Every program it builds must pass
// Build; loops are bounded so every program terminates.
type progGen struct {
	rng   *rand.Rand
	b     *Builder
	regs  []int
	depth int
	left  int // statement budget
}

func (g *progGen) reg() int { return g.regs[g.rng.Intn(len(g.regs))] }

// boundedAddr masks a register into a small address range so load and
// store offsets stay well-defined in both interpreters.
func (g *progGen) boundedAddr() int {
	a := g.reg()
	t := g.reg()
	g.b.AndImm(t, a, 0xff)
	return t
}

func (g *progGen) stmt() {
	g.left--
	b, rng := g.b, g.rng
	switch rng.Intn(20) {
	case 0:
		b.MovImm(g.reg(), int64(int32(rng.Uint32())))
	case 1:
		b.Special(g.reg(), Spec(rng.Intn(int(SpecWarpID)+1)))
	case 2:
		b.Add(g.reg(), g.reg(), g.reg())
	case 3:
		b.Sub(g.reg(), g.reg(), g.reg())
	case 4:
		b.Mul(g.reg(), g.reg(), g.reg())
	case 5:
		// Division with a divisor forced nonzero.
		d := g.reg()
		b.AndImm(d, g.reg(), 7)
		b.AddImm(d, d, 1)
		if rng.Intn(2) == 0 {
			b.Div(g.reg(), g.reg(), d)
		} else {
			b.Mod(g.reg(), g.reg(), d)
		}
	case 6:
		b.Xor(g.reg(), g.reg(), g.reg())
	case 7:
		b.ShlImm(g.reg(), g.reg(), int64(rng.Intn(32)))
	case 8:
		b.SetLt(g.reg(), g.reg(), g.reg())
	case 9:
		b.Select(g.reg(), g.reg(), g.reg(), g.reg())
	case 10:
		b.MadImm(g.reg(), g.reg(), int64(rng.Intn(64)), g.reg())
	case 11:
		b.Flops(1 + rng.Intn(5))
	case 12:
		b.Barrier()
	case 13:
		off := int64(rng.Intn(16))
		switch rng.Intn(3) {
		case 0:
			b.LdGlobal(g.reg(), g.boundedAddr(), off)
		case 1:
			b.LdShared(g.reg(), g.boundedAddr(), off)
		default:
			b.LdStash(g.reg(), g.boundedAddr(), off, rng.Intn(4))
		}
	case 14:
		off := int64(rng.Intn(16))
		switch rng.Intn(3) {
		case 0:
			b.StGlobal(g.boundedAddr(), off, g.reg())
		case 1:
			b.StShared(g.boundedAddr(), off, g.reg())
		default:
			b.StStash(g.boundedAddr(), off, g.reg(), rng.Intn(4))
		}
	case 15:
		m := core.MapParams{
			StashBase: rng.Intn(256), GlobalBase: 0x1000,
			FieldBytes: 4, ObjectBytes: 4, RowElems: 4, StrideBytes: 16, NumRows: 2,
		}
		switch rng.Intn(4) {
		case 0:
			b.AddMap(rng.Intn(4), m)
		case 1:
			b.AddMapReg(rng.Intn(4), m, g.reg(), g.reg())
		case 2:
			b.ChgMap(rng.Intn(4), m)
		default:
			b.DMALoadReg(m, g.reg(), g.reg())
		}
	case 16, 17:
		if g.depth >= 3 {
			b.Mov(g.reg(), g.reg())
			return
		}
		g.depth++
		b.If(g.reg())
		g.block(rng.Intn(4))
		if rng.Intn(2) == 0 {
			b.Else()
			g.block(rng.Intn(4))
		}
		b.EndIf()
		g.depth--
	case 18, 19:
		if g.depth >= 3 {
			b.AddImm(g.reg(), g.reg(), 1)
			return
		}
		g.depth++
		i := g.reg()
		if rng.Intn(3) == 0 {
			n := g.reg()
			b.AndImm(n, g.reg(), 3)
			b.ForReg(i, n)
		} else {
			b.For(i, int64(1+rng.Intn(3)))
		}
		g.block(1 + rng.Intn(3))
		b.EndFor()
		g.depth--
	}
}

func (g *progGen) block(n int) {
	for i := 0; i < n && g.left > 0; i++ {
		g.stmt()
	}
}

// genProgram builds a random valid program from rng.
func genProgram(rng *rand.Rand) *Program {
	g := &progGen{rng: rng, b: NewBuilder(), left: 30 + rng.Intn(30)}
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		g.regs = append(g.regs, g.b.Reg())
	}
	for i, r := range g.regs {
		switch i % 3 {
		case 0:
			g.b.Special(r, SpecTid)
		case 1:
			g.b.Special(r, SpecLane)
		default:
			g.b.MovImm(r, int64(rng.Intn(1<<16)))
		}
	}
	for g.left > 0 {
		g.stmt()
	}
	return g.b.MustBuild()
}

// pendSnapshot is a comparable copy of a Pending (the live one is the
// warp's reused buffer).
type pendSnapshot struct {
	Kind   PendKind
	Space  Space
	Slot   int
	Lanes  []int
	Addrs  []uint64
	Vals   []uint32
	DstReg int
	Map    core.MapParams
	Cycles int
	Fused  int
}

func snapshot(p *Pending) pendSnapshot {
	return pendSnapshot{
		Kind: p.Kind, Space: p.Space, Slot: p.Slot,
		Lanes:  append([]int(nil), p.Lanes...),
		Addrs:  append([]uint64(nil), p.Addrs...),
		Vals:   append([]uint32(nil), p.Vals...),
		DstReg: p.DstReg, Map: p.Map, Cycles: p.Cycles, Fused: p.Fused,
	}
}

// nextBoundary steps w until it produces a non-ALU pending, returning
// that pending plus the ALU cycles and instructions retired on the way.
func nextBoundary(t testing.TB, w *Warp) (*Pending, int, int) {
	cycles, instrs := 0, 0
	for steps := 0; ; steps++ {
		if steps > 1_000_000 {
			t.Fatal("program did not terminate")
		}
		p := w.Step()
		if p.Kind == PendALU {
			cycles += p.Cycles
			instrs += p.Fused
			continue
		}
		return p, cycles, instrs
	}
}

// runDiff executes prog on a compiled warp (cfg as given) and a
// reference warp, comparing the Pending streams between ALU boundaries
// and the final register files. Loads are completed with synthVal on
// both sides so the register files stay in lockstep.
func runDiff(t testing.TB, prog *Program, cfg WarpConfig) {
	wc := NewWarp(prog, cfg)
	refCfg := cfg
	refCfg.FuseALU = false
	wr := NewWarp(prog, refCfg)
	wr.UseReference(true)

	for round := 0; ; round++ {
		pc, cycC, insC := nextBoundary(t, wc)
		pr, cycR, insR := nextBoundary(t, wr)
		if cycC != cycR || insC != insR {
			t.Fatalf("round %d: ALU run mismatch: compiled %d cycles/%d instrs, reference %d cycles/%d instrs",
				round, cycC, insC, cycR, insR)
		}
		sc, sr := snapshot(pc), snapshot(pr)
		if !reflect.DeepEqual(sc, sr) {
			t.Fatalf("round %d: pending mismatch\ncompiled:  %+v\nreference: %+v", round, sc, sr)
		}
		switch pc.Kind {
		case PendDone:
			for l := 0; l < cfg.Width; l++ {
				for r := 0; r < prog.Regs; r++ {
					if a, b := wc.Reg(l, r), wr.Reg(l, r); a != b {
						t.Fatalf("final lane %d reg %d: compiled %d, reference %d", l, r, a, b)
					}
				}
			}
			return
		case PendLoad:
			vals := make([]uint32, len(sc.Lanes))
			for i, a := range sc.Addrs {
				vals[i] = synthVal(sc.Space, a)
			}
			wc.CompleteLoad(pc, vals)
			wr.CompleteLoad(pr, vals)
		}
	}
}

// diffConfigs are the warp shapes every differential program runs
// under: full warps, a single-lane CPU-style warp, and a partial last
// warp with inactive lanes, each with fusion on and off.
func diffConfigs() []WarpConfig {
	var cfgs []WarpConfig
	for _, fuse := range []bool{false, true} {
		cfgs = append(cfgs,
			WarpConfig{Width: 32, BlockDim: 32, GridDim: 2, BlockID: 1, FuseALU: fuse},
			WarpConfig{Width: 1, BlockDim: 1, GridDim: 1, FuseALU: fuse},
			WarpConfig{Width: 32, BlockDim: 52, GridDim: 1, WarpID: 1, FirstThread: 32, FuseALU: fuse},
		)
	}
	return cfgs
}

// TestCompiledVsReference runs seeded random programs through the
// compiled and reference interpreters and requires identical behavior.
func TestCompiledVsReference(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		prog := genProgram(rand.New(rand.NewSource(seed)))
		for _, cfg := range diffConfigs() {
			cfg := cfg
			t.Run(fmt.Sprintf("seed%d/w%d.b%d.fuse%v", seed, cfg.Width, cfg.BlockDim, cfg.FuseALU), func(t *testing.T) {
				runDiff(t, prog, cfg)
			})
		}
	}
}

// FuzzCompiledVsReference explores the program and warp-shape space:
// any divergence between the compiled dispatch path and the reference
// interpreter is a bug in the compiler or the fast paths.
func FuzzCompiledVsReference(f *testing.F) {
	f.Add(int64(1), uint8(32), uint8(32), false)
	f.Add(int64(2), uint8(32), uint8(20), true)
	f.Add(int64(3), uint8(1), uint8(1), true)
	f.Add(int64(4), uint8(8), uint8(13), false)
	f.Fuzz(func(t *testing.T, seed int64, width, blockDim uint8, fuse bool) {
		w := 1 + int(width)%32
		bd := 1 + int(blockDim)%(2*w)
		prog := genProgram(rand.New(rand.NewSource(seed)))
		runDiff(t, prog, WarpConfig{
			Width: w, BlockDim: bd, GridDim: 2, BlockID: 1, FuseALU: fuse,
		})
	})
}

// TestCompileRejectsInvalid checks that hand-assembled programs with
// out-of-range registers or broken control-flow targets fail at
// Compile time rather than panicking mid-simulation.
func TestCompileRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		code []Instr
	}{
		{"reg out of range", []Instr{{Op: OpAdd, Rd: 0, Ra: 1, Rb: 9}, {Op: OpExit}}},
		{"negative reg", []Instr{{Op: OpMov, Rd: -1, Ra: 0}, {Op: OpExit}}},
		{"bad special", []Instr{{Op: OpMovSpec, Rd: 0, Spec: Spec(99)}, {Op: OpExit}}},
		{"if target not else/endif", []Instr{{Op: OpIf, Ra: 0, Target: 1}, {Op: OpNop}, {Op: OpEndIf}, {Op: OpExit}}},
		{"endfor target not for", []Instr{{Op: OpNop}, {Op: OpEndFor, Target: 0}, {Op: OpExit}}},
		{"load reg out of range", []Instr{{Op: OpLdShared, Rd: 3, Ra: 0}, {Op: OpExit}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Program{Code: tc.code, Regs: 3}
			if err := p.Compile(); err == nil {
				t.Fatalf("Compile accepted invalid program %q", tc.name)
			} else {
				t.Logf("rejected: %v", err)
			}
		})
	}
}
