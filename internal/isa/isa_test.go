package isa

import (
	"testing"
	"testing/quick"
)

// run executes a program to completion on one warp, servicing memory
// against a trivial flat memory, and returns the warp.
func run(t *testing.T, prog *Program, cfg WarpConfig, mem map[uint64]uint32) *Warp {
	t.Helper()
	w := NewWarp(prog, cfg)
	for steps := 0; ; steps++ {
		if steps > 1_000_000 {
			t.Fatal("program did not terminate")
		}
		p := w.Step()
		switch p.Kind {
		case PendDone:
			return w
		case PendLoad:
			vals := make([]uint32, len(p.Lanes))
			for i, a := range p.Addrs {
				vals[i] = mem[a]
			}
			w.CompleteLoad(p, vals)
		case PendStore:
			for i, a := range p.Addrs {
				mem[a] = p.Vals[i]
			}
		}
	}
}

func cfg1() WarpConfig  { return WarpConfig{Width: 1, BlockDim: 1, GridDim: 1} }
func cfg32() WarpConfig { return WarpConfig{Width: 32, BlockDim: 32, GridDim: 1} }

func TestALUBasics(t *testing.T) {
	b := NewBuilder()
	a, c, d := b.Reg(), b.Reg(), b.Reg()
	b.MovImm(a, 6)
	b.MovImm(c, 7)
	b.Mul(d, a, c)
	b.AddImm(d, d, 8)
	w := run(t, b.MustBuild(), cfg1(), nil)
	if got := w.Reg(0, d); got != 50 {
		t.Fatalf("result = %d, want 50", got)
	}
}

func TestSpecialRegisters(t *testing.T) {
	b := NewBuilder()
	tid, ctaid := b.Reg(), b.Reg()
	b.Special(tid, SpecTid)
	b.Special(ctaid, SpecCtaid)
	cfg := WarpConfig{Width: 32, BlockDim: 64, BlockID: 3, GridDim: 8, WarpID: 1, FirstThread: 32}
	w := run(t, b.MustBuild(), cfg, nil)
	if w.Reg(5, tid) != 37 {
		t.Fatalf("tid lane5 = %d, want 37", w.Reg(5, tid))
	}
	if w.Reg(0, ctaid) != 3 {
		t.Fatalf("ctaid = %d, want 3", w.Reg(0, ctaid))
	}
}

func TestForLoopSum(t *testing.T) {
	b := NewBuilder()
	i, sum := b.Reg(), b.Reg()
	b.MovImm(sum, 0)
	b.For(i, 10)
	b.Add(sum, sum, i)
	b.EndFor()
	w := run(t, b.MustBuild(), cfg1(), nil)
	if got := w.Reg(0, sum); got != 45 {
		t.Fatalf("sum 0..9 = %d, want 45", got)
	}
}

func TestForZeroTripSkips(t *testing.T) {
	b := NewBuilder()
	i, x := b.Reg(), b.Reg()
	b.MovImm(x, 1)
	b.For(i, 0)
	b.MovImm(x, 99)
	b.EndFor()
	w := run(t, b.MustBuild(), cfg1(), nil)
	if got := w.Reg(0, x); got != 1 {
		t.Fatalf("x = %d, want 1 (zero-trip loop body executed)", got)
	}
}

func TestForRegTripCount(t *testing.T) {
	b := NewBuilder()
	n, i, c := b.Reg(), b.Reg(), b.Reg()
	b.MovImm(n, 5)
	b.MovImm(c, 0)
	b.ForReg(i, n)
	b.AddImm(c, c, 1)
	b.EndFor()
	w := run(t, b.MustBuild(), cfg1(), nil)
	if got := w.Reg(0, c); got != 5 {
		t.Fatalf("iterations = %d, want 5", got)
	}
}

func TestIfElseDivergence(t *testing.T) {
	// Even lanes get 10, odd lanes get 20.
	b := NewBuilder()
	lane, even, out := b.Reg(), b.Reg(), b.Reg()
	b.Special(lane, SpecLane)
	b.AndImm(even, lane, 1)
	b.SetEqImm(even, even, 0)
	b.If(even)
	b.MovImm(out, 10)
	b.Else()
	b.MovImm(out, 20)
	b.EndIf()
	w := run(t, b.MustBuild(), cfg32(), nil)
	for l := 0; l < 32; l++ {
		want := uint32(10)
		if l%2 == 1 {
			want = 20
		}
		if got := w.Reg(l, out); got != want {
			t.Fatalf("lane %d = %d, want %d", l, got, want)
		}
	}
}

func TestNestedIf(t *testing.T) {
	b := NewBuilder()
	lane, c1, c2, out := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Special(lane, SpecLane)
	b.SetLtImm(c1, lane, 16)
	b.SetLtImm(c2, lane, 8)
	b.MovImm(out, 0)
	b.If(c1)
	b.MovImm(out, 1)
	b.If(c2)
	b.MovImm(out, 2)
	b.EndIf()
	b.EndIf()
	w := run(t, b.MustBuild(), cfg32(), nil)
	for l := 0; l < 32; l++ {
		want := uint32(0)
		switch {
		case l < 8:
			want = 2
		case l < 16:
			want = 1
		}
		if got := w.Reg(l, out); got != want {
			t.Fatalf("lane %d = %d, want %d", l, got, want)
		}
	}
}

func TestEmptyBranchSkips(t *testing.T) {
	// If no lane takes the branch, the body must not cost steps.
	b := NewBuilder()
	zero, x := b.Reg(), b.Reg()
	b.MovImm(zero, 0)
	b.If(zero)
	for i := 0; i < 100; i++ {
		b.AddImm(x, x, 1)
	}
	b.EndIf()
	prog := b.MustBuild()
	w := NewWarp(prog, cfg1())
	steps := 0
	for w.Step().Kind != PendDone {
		steps++
		if steps > 50 {
			t.Fatal("untaken branch body was executed")
		}
	}
}

func TestGlobalLoadStore(t *testing.T) {
	b := NewBuilder()
	lane, addr, v := b.Reg(), b.Reg(), b.Reg()
	b.Special(lane, SpecLane)
	b.MulImm(addr, lane, 4)
	b.AddImm(addr, addr, 0x1000)
	b.LdGlobal(v, addr, 0)
	b.AddImm(v, v, 1)
	b.StGlobal(addr, 128, v)
	mem := make(map[uint64]uint32)
	for l := 0; l < 32; l++ {
		mem[uint64(0x1000+4*l)] = uint32(l * 10)
	}
	run(t, b.MustBuild(), cfg32(), mem)
	for l := 0; l < 32; l++ {
		want := uint32(l*10 + 1)
		if got := mem[uint64(0x1000+128+4*l)]; got != want {
			t.Fatalf("mem[%d] = %d, want %d", l, got, want)
		}
	}
}

func TestPartialLastWarpMasksLanes(t *testing.T) {
	b := NewBuilder()
	lane, addr := b.Reg(), b.Reg()
	b.Special(lane, SpecTid)
	b.MulImm(addr, lane, 4)
	b.StGlobal(addr, 0, lane)
	mem := make(map[uint64]uint32)
	// Block of 20 threads: lanes 20..31 inactive.
	cfg := WarpConfig{Width: 32, BlockDim: 20, GridDim: 1}
	run(t, b.MustBuild(), cfg, mem)
	if len(mem) != 20 {
		t.Fatalf("stores = %d, want 20", len(mem))
	}
}

func TestBuilderRejectsMisnesting(t *testing.T) {
	b := NewBuilder()
	r := b.Reg()
	b.If(r)
	b.EndFor()
	if _, err := b.Build(); err == nil {
		t.Fatal("misnested EndFor accepted")
	}
	b2 := NewBuilder()
	b2.If(b2.Reg())
	if _, err := b2.Build(); err == nil {
		t.Fatal("unclosed If accepted")
	}
}

func TestSelect(t *testing.T) {
	b := NewBuilder()
	lane, c, a1, a2, out := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Special(lane, SpecLane)
	b.SetLtImm(c, lane, 4)
	b.MovImm(a1, 100)
	b.MovImm(a2, 200)
	b.Select(out, c, a1, a2)
	w := run(t, b.MustBuild(), cfg32(), nil)
	if w.Reg(0, out) != 100 || w.Reg(10, out) != 200 {
		t.Fatal("select wrong")
	}
}

func TestFlopsOccupancy(t *testing.T) {
	b := NewBuilder()
	b.Flops(17)
	w := NewWarp(b.MustBuild(), cfg1())
	p := w.Step()
	if p.Kind != PendALU || p.Cycles != 17 {
		t.Fatalf("Flops pending = %+v", p)
	}
}

func TestBarrierPending(t *testing.T) {
	b := NewBuilder()
	b.Barrier()
	w := NewWarp(b.MustBuild(), cfg1())
	if p := w.Step(); p.Kind != PendBarrier {
		t.Fatalf("barrier kind = %v", p.Kind)
	}
}

// Property: a generated chain of ALU ops computes the same result as a
// direct Go evaluation.
func TestALUProperty(t *testing.T) {
	type step struct {
		Op  uint8
		Imm int16
	}
	f := func(init uint32, steps []step) bool {
		b := NewBuilder()
		r := b.Reg()
		b.MovImm(r, int64(init))
		want := init
		for _, s := range steps {
			imm := int64(s.Imm)
			switch s.Op % 5 {
			case 0:
				b.AddImm(r, r, imm)
				want += uint32(imm)
			case 1:
				b.MulImm(r, r, imm)
				want *= uint32(imm)
			case 2:
				b.AndImm(r, r, imm)
				want &= uint32(imm)
			case 3:
				b.ShlImm(r, r, 3)
				want <<= 3
			case 4:
				b.ShrImm(r, r, 2)
				want >>= 2
			}
		}
		w := run(t, b.MustBuild(), cfg1(), nil)
		return w.Reg(0, r) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: nested uniform For loops execute exactly n*m iterations.
func TestNestedForProperty(t *testing.T) {
	f := func(n, m uint8) bool {
		nn, mm := int64(n%10), int64(m%10)
		b := NewBuilder()
		i, j, c := b.Reg(), b.Reg(), b.Reg()
		b.MovImm(c, 0)
		b.For(i, nn)
		b.For(j, mm)
		b.AddImm(c, c, 1)
		b.EndFor()
		b.EndFor()
		w := run(t, b.MustBuild(), cfg1(), nil)
		return w.Reg(0, c) == uint32(nn*mm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
