package isa

import (
	"fmt"

	"stash/internal/core"
)

// Builder assembles a Program with structured control flow. Misnested
// If/For blocks are caught at Build time.
type Builder struct {
	code   []Instr
	regs   int
	blocks []block // open structured blocks
	err    error
}

type block struct {
	kind  Op // OpIf or OpFor
	start int
	elseI int // index of OpElse, -1 if none yet
}

// NewBuilder returns an empty kernel builder.
func NewBuilder() *Builder { return &Builder{} }

// Reg allocates a fresh virtual register.
func (b *Builder) Reg() int {
	r := b.regs
	b.regs++
	return r
}

func (b *Builder) emit(i Instr) int {
	b.code = append(b.code, i)
	return len(b.code) - 1
}

// --- ALU ---

// MovImm sets rd to an immediate.
func (b *Builder) MovImm(rd int, v int64) { b.emit(Instr{Op: OpMovImm, Rd: rd, Imm: v}) }

// Special reads a special register.
func (b *Builder) Special(rd int, s Spec) { b.emit(Instr{Op: OpMovSpec, Rd: rd, Spec: s}) }

// Mov copies ra to rd.
func (b *Builder) Mov(rd, ra int) { b.emit(Instr{Op: OpMov, Rd: rd, Ra: ra}) }

// Add emits rd = ra + rb; the other two-operand helpers follow suit.
func (b *Builder) Add(rd, ra, rb int) { b.emit(Instr{Op: OpAdd, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Sub(rd, ra, rb int) { b.emit(Instr{Op: OpSub, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Mul(rd, ra, rb int) { b.emit(Instr{Op: OpMul, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Div(rd, ra, rb int) { b.emit(Instr{Op: OpDiv, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Mod(rd, ra, rb int) { b.emit(Instr{Op: OpMod, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) And(rd, ra, rb int) { b.emit(Instr{Op: OpAnd, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Or(rd, ra, rb int)  { b.emit(Instr{Op: OpOr, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Xor(rd, ra, rb int) { b.emit(Instr{Op: OpXor, Rd: rd, Ra: ra, Rb: rb}) }

// AddImm emits rd = ra + v; the other immediate helpers follow suit.
func (b *Builder) AddImm(rd, ra int, v int64) { b.emit(Instr{Op: OpAddImm, Rd: rd, Ra: ra, Imm: v}) }
func (b *Builder) MulImm(rd, ra int, v int64) { b.emit(Instr{Op: OpMulImm, Rd: rd, Ra: ra, Imm: v}) }
func (b *Builder) DivImm(rd, ra int, v int64) { b.emit(Instr{Op: OpDivImm, Rd: rd, Ra: ra, Imm: v}) }
func (b *Builder) ModImm(rd, ra int, v int64) { b.emit(Instr{Op: OpModImm, Rd: rd, Ra: ra, Imm: v}) }
func (b *Builder) AndImm(rd, ra int, v int64) { b.emit(Instr{Op: OpAndImm, Rd: rd, Ra: ra, Imm: v}) }
func (b *Builder) ShlImm(rd, ra int, v int64) { b.emit(Instr{Op: OpShlImm, Rd: rd, Ra: ra, Imm: v}) }
func (b *Builder) ShrImm(rd, ra int, v int64) { b.emit(Instr{Op: OpShrImm, Rd: rd, Ra: ra, Imm: v}) }

// SetLt emits rd = (ra < rb); the other comparison helpers follow suit.
func (b *Builder) SetLt(rd, ra, rb int) { b.emit(Instr{Op: OpSetLt, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) SetGe(rd, ra, rb int) { b.emit(Instr{Op: OpSetGe, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) SetEq(rd, ra, rb int) { b.emit(Instr{Op: OpSetEq, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) SetNe(rd, ra, rb int) { b.emit(Instr{Op: OpSetNe, Rd: rd, Ra: ra, Rb: rb}) }

// SetLtImm emits rd = (ra < v).
func (b *Builder) SetLtImm(rd, ra int, v int64) {
	b.emit(Instr{Op: OpSetLtImm, Rd: rd, Ra: ra, Imm: v})
}

// SetEqImm emits rd = (ra == v).
func (b *Builder) SetEqImm(rd, ra int, v int64) {
	b.emit(Instr{Op: OpSetEqImm, Rd: rd, Ra: ra, Imm: v})
}

// Select emits rd = ra != 0 ? rb : rc.
func (b *Builder) Select(rd, ra, rb, rc int) {
	b.emit(Instr{Op: OpSelect, Rd: rd, Ra: ra, Rb: rb, Rc: rc})
}

// MadImm emits rd = ra*v + rb (one integer multiply-add, as GPU address
// units provide).
func (b *Builder) MadImm(rd, ra int, v int64, rb int) {
	b.emit(Instr{Op: OpMadImm, Rd: rd, Ra: ra, Rb: rb, Imm: v})
}

// Flops models n cycles of floating-point work on the active lanes.
func (b *Builder) Flops(n int) { b.emit(Instr{Op: OpFlops, Imm: int64(n)}) }

// --- memory ---

// LdGlobal emits rd = global[ra + off] (byte address).
func (b *Builder) LdGlobal(rd, ra int, off int64) {
	b.emit(Instr{Op: OpLdGlobal, Rd: rd, Ra: ra, Imm: off})
}

// StGlobal emits global[ra + off] = rb.
func (b *Builder) StGlobal(ra int, off int64, rb int) {
	b.emit(Instr{Op: OpStGlobal, Ra: ra, Rb: rb, Imm: off})
}

// LdShared emits rd = scratch[ra + off] (word offset).
func (b *Builder) LdShared(rd, ra int, off int64) {
	b.emit(Instr{Op: OpLdShared, Rd: rd, Ra: ra, Imm: off})
}

// StShared emits scratch[ra + off] = rb.
func (b *Builder) StShared(ra int, off int64, rb int) {
	b.emit(Instr{Op: OpStShared, Ra: ra, Rb: rb, Imm: off})
}

// LdStash emits rd = stash[ra + off] under map index table slot.
func (b *Builder) LdStash(rd, ra int, off int64, slot int) {
	b.emit(Instr{Op: OpLdStash, Rd: rd, Ra: ra, Imm: off, Slot: slot})
}

// StStash emits stash[ra + off] = rb under map index table slot.
func (b *Builder) StStash(ra int, off int64, rb, slot int) {
	b.emit(Instr{Op: OpStStash, Ra: ra, Rb: rb, Imm: off, Slot: slot})
}

// --- intrinsics ---

// AddMap emits the AddMap intrinsic with a static tile.
func (b *Builder) AddMap(slot int, m core.MapParams) {
	b.emit(Instr{Op: OpAddMap, Slot: slot, Map: m})
}

// AddMapReg emits AddMap taking the stash base from register ra and the
// global base from register rb (lane-0 values), with the static shape m.
func (b *Builder) AddMapReg(slot int, m core.MapParams, ra, rb int) {
	b.emit(Instr{Op: OpAddMap, Slot: slot, Map: m, Ra: ra, Rb: rb, UseRegBase: true})
}

// ChgMap emits the ChgMap intrinsic.
func (b *Builder) ChgMap(slot int, m core.MapParams) {
	b.emit(Instr{Op: OpChgMap, Slot: slot, Map: m})
}

// DMALoad emits a blocking DMA preload of the tile into the scratchpad.
func (b *Builder) DMALoad(m core.MapParams) { b.emit(Instr{Op: OpDMALoad, Map: m}) }

// DMALoadReg is DMALoad with register bases like AddMapReg.
func (b *Builder) DMALoadReg(m core.MapParams, ra, rb int) {
	b.emit(Instr{Op: OpDMALoad, Map: m, Ra: ra, Rb: rb, UseRegBase: true})
}

// DMAStore emits a blocking DMA writeout of the tile from the scratchpad.
func (b *Builder) DMAStore(m core.MapParams) { b.emit(Instr{Op: OpDMAStore, Map: m}) }

// DMAStoreReg is DMAStore with register bases.
func (b *Builder) DMAStoreReg(m core.MapParams, ra, rb int) {
	b.emit(Instr{Op: OpDMAStore, Map: m, Ra: ra, Rb: rb, UseRegBase: true})
}

// --- control flow ---

// Barrier synchronizes all warps of the thread block.
func (b *Builder) Barrier() { b.emit(Instr{Op: OpBarrier}) }

// If opens a divergent region executing where ra != 0.
func (b *Builder) If(ra int) {
	idx := b.emit(Instr{Op: OpIf, Ra: ra})
	b.blocks = append(b.blocks, block{kind: OpIf, start: idx, elseI: -1})
}

// Else flips the current If region.
func (b *Builder) Else() {
	if len(b.blocks) == 0 || b.blocks[len(b.blocks)-1].kind != OpIf {
		b.fail("Else outside If")
		return
	}
	idx := b.emit(Instr{Op: OpElse})
	b.blocks[len(b.blocks)-1].elseI = idx
}

// EndIf closes the innermost If.
func (b *Builder) EndIf() {
	if len(b.blocks) == 0 || b.blocks[len(b.blocks)-1].kind != OpIf {
		b.fail("EndIf outside If")
		return
	}
	blk := b.blocks[len(b.blocks)-1]
	b.blocks = b.blocks[:len(b.blocks)-1]
	idx := b.emit(Instr{Op: OpEndIf})
	if blk.elseI >= 0 {
		b.code[blk.start].Target = blk.elseI
		b.code[blk.elseI].Target = idx
	} else {
		b.code[blk.start].Target = idx
	}
}

// For opens a counted loop: counter runs 0..n-1 in register rd. The trip
// count must be warp-uniform.
func (b *Builder) For(rd int, n int64) {
	idx := b.emit(Instr{Op: OpFor, Rd: rd, Imm: n, Ra: -1})
	b.blocks = append(b.blocks, block{kind: OpFor, start: idx})
}

// ForReg opens a counted loop whose trip count comes from register ra
// (lane-0 value; must be warp-uniform).
func (b *Builder) ForReg(rd, ra int) {
	idx := b.emit(Instr{Op: OpFor, Rd: rd, Ra: ra})
	b.blocks = append(b.blocks, block{kind: OpFor, start: idx})
}

// EndFor closes the innermost For.
func (b *Builder) EndFor() {
	if len(b.blocks) == 0 || b.blocks[len(b.blocks)-1].kind != OpFor {
		b.fail("EndFor outside For")
		return
	}
	blk := b.blocks[len(b.blocks)-1]
	b.blocks = b.blocks[:len(b.blocks)-1]
	idx := b.emit(Instr{Op: OpEndFor, Target: blk.start})
	b.code[blk.start].Target = idx
}

func (b *Builder) fail(msg string) {
	if b.err == nil {
		b.err = fmt.Errorf("isa: %s at instruction %d", msg, len(b.code))
	}
}

// Build finalizes the program, validating structure and register use,
// and compiles it into its pre-decoded execution plan. Register-index
// and control-flow-target errors surface here, at build time, rather
// than mid-simulation.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.blocks) != 0 {
		return nil, fmt.Errorf("isa: %d unclosed control blocks", len(b.blocks))
	}
	code := append([]Instr(nil), b.code...)
	code = append(code, Instr{Op: OpExit})
	regs := b.regs
	if regs == 0 {
		regs = 1
	}
	p := &Program{Code: code, Regs: regs}
	if err := p.Compile(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for statically correct kernels.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
