// Package isa defines the mini SIMT instruction set the simulated GPU
// compute units and CPU cores execute, a builder for writing kernels in
// Go, and the warp-level interpreter with structured control-flow
// divergence (mask stacks).
//
// The ISA stands in for CUDA 3.1 in the paper's methodology: kernels
// are register programs with ALU ops, structured IF/ELSE/ENDIF and FOR
// loops, barriers, and loads/stores to three spaces — global memory
// (byte-addressed, through the L1), scratchpad "shared memory"
// (word-offset addressed), and the stash (word-offset addressed, with a
// map-index-table slot carried by the instruction exactly as Section
// 3.2 describes). AddMap/ChgMap and DMA transfers are intrinsics.
package isa

import (
	"sync"

	"stash/internal/core"
)

// Op enumerates instruction opcodes.
type Op int

// Opcodes.
const (
	OpNop Op = iota

	// ALU: Rd = Ra <op> Rb (or immediate forms).
	OpMovImm  // Rd = Imm
	OpMovSpec // Rd = special register Spec
	OpMov     // Rd = Ra
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpAddImm
	OpMulImm
	OpDivImm
	OpModImm
	OpAndImm
	OpShlImm
	OpShrImm
	OpSetLt // Rd = Ra < Rb
	OpSetGe
	OpSetEq
	OpSetNe
	OpSetLtImm
	OpSetEqImm
	OpSelect // Rd = Ra != 0 ? Rb : Rc (third operand in the Rc field)
	OpMadImm // Rd = Ra*Imm + Rb (integer multiply-add, for addressing)
	OpFlops  // placeholder FP work: occupies the lane for Imm cycles

	// Memory.
	OpLdGlobal // Rd = global[Ra + Imm]      (byte address)
	OpStGlobal // global[Ra + Imm] = Rb
	OpLdShared // Rd = scratch[Ra + Imm]     (word offset)
	OpStShared // scratch[Ra + Imm] = Rb
	OpLdStash  // Rd = stash[Ra + Imm], map slot Slot (word offset)
	OpStStash  // stash[Ra + Imm] = Rb, map slot Slot

	// Intrinsics (executed once per thread block, by warp 0).
	OpAddMap   // install Map (bases resolved from Ra=stash base, Rb=global base)
	OpChgMap   // change mapping in Slot
	OpDMALoad  // DMA the Map tile into the scratchpad (blocks the CU)
	OpDMAStore // DMA the Map tile out of the scratchpad (blocks the CU)

	// Control flow (structured; Target indices resolved by the builder).
	OpBarrier
	OpIf    // push mask; active &= (Ra != 0); Target = matching Else/EndIf
	OpElse  // flip within pushed mask; Target = matching EndIf
	OpEndIf // pop mask
	OpFor   // Rd = loop counter; trip count = Ra's lane-0 value or Imm; Target = matching EndFor
	OpEndFor
	OpExit
)

// Spec selects a special register for OpMovSpec.
type Spec int

// Special registers.
const (
	SpecTid    Spec = iota // thread index within the block
	SpecNtid               // block dimension (threads per block)
	SpecCtaid              // block index within the grid
	SpecNctaid             // grid dimension (number of blocks)
	SpecLane               // lane index within the warp
	SpecWarpID             // warp index within the block
)

// Instr is one instruction. Fields are used as each opcode requires.
type Instr struct {
	Op         Op
	Rd, Ra, Rb int
	Rc         int   // OpSelect's third operand
	Imm        int64 // immediate / trip count / flop cycles
	Spec       Spec
	Slot       int            // stash map index table slot for LdStash/StStash/AddMap/ChgMap
	Map        core.MapParams // tile shape for AddMap/ChgMap/DMA (bases may be overridden by registers)
	UseRegBase bool           // AddMap/DMA: take StashBase from Ra and GlobalBase from Rb (lane 0)
	Target     int            // matching structured-control-flow index
}

// Space identifies a memory space.
type Space int

// Memory spaces.
const (
	Global Space = iota
	Shared
	Stash
)

// Program is a validated instruction sequence plus its register needs.
// Programs are compiled once into a pre-decoded execution plan (see
// compile.go) that every warp dispatches through; Builder.Build
// compiles eagerly, hand-assembled Programs compile lazily on first
// warp Reset. A Program must not be copied after first use.
type Program struct {
	Code []Instr
	Regs int

	compileOnce sync.Once
	plan        *plan
	compileErr  error
}

// Compile lowers the program into its execution plan, validating every
// register index and control-flow target. It is idempotent and safe
// for concurrent use; the plan is cached on the Program.
func (p *Program) Compile() error {
	p.compileOnce.Do(func() {
		p.plan, p.compileErr = compile(p)
	})
	return p.compileErr
}

// mustPlan returns the compiled plan, panicking on an invalid program
// — interpreting an instruction stream that fails validation was
// always a panic, it just used to happen one instruction at a time.
func (p *Program) mustPlan() *plan {
	if err := p.Compile(); err != nil {
		panic(err.Error())
	}
	return p.plan
}
