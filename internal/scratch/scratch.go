// Package scratch implements the classic GPU scratchpad (CUDA "shared
// memory"): a banked, directly addressed SRAM in a private address
// space. It has no tags, no TLB, no misses and no coherence — all data
// movement is explicit software loads and stores through the core's
// registers and L1 (paper Section 1.2), or a DMA engine (Section 5.3).
package scratch

import (
	"fmt"

	"stash/internal/energy"
	"stash/internal/sim"
	"stash/internal/stats"
)

// Params configures a scratchpad.
type Params struct {
	SizeBytes int
	Banks     int
	AccessLat sim.Cycle
}

// DefaultParams returns the paper's Table 2 scratchpad: 16 KB, 32 banks,
// 1-cycle access.
func DefaultParams() Params {
	return Params{SizeBytes: 16 << 10, Banks: 32, AccessLat: 1}
}

// Scratchpad is one CU's scratchpad.
type Scratchpad struct {
	p     Params
	words []uint32
	acct  *energy.Account

	out         []uint32 // reused Load result buffer
	bankCnt     []int    // per-bank distinct-offset count, zeroed between calls
	bankTouched []int

	accesses  *stats.Counter
	conflicts *stats.Counter
}

// New builds a scratchpad charging accesses to acct.
func New(name string, p Params, acct *energy.Account, set *stats.Set) *Scratchpad {
	return &Scratchpad{
		p:         p,
		words:     make([]uint32, p.SizeBytes/4),
		acct:      acct,
		bankCnt:   make([]int, p.Banks),
		accesses:  set.Counter(fmt.Sprintf("scratch.%s.accesses", name)),
		conflicts: set.Counter(fmt.Sprintf("scratch.%s.conflict_rounds", name)),
	}
}

// Words returns the scratchpad capacity in words.
func (s *Scratchpad) Words() int { return len(s.words) }

// conflictRounds returns the number of serialized bank rounds a warp
// access needs: the maximum number of distinct word offsets mapping to
// the same bank (same-offset lanes broadcast for free). Distinct
// offsets are deduplicated by a quadratic scan — a warp has at most
// warpSize offsets — and counted in a reusable per-bank array.
func (s *Scratchpad) conflictRounds(offsets []int) int {
	rounds := 1
outer:
	for i, off := range offsets {
		for _, prev := range offsets[:i] {
			if prev == off {
				continue outer
			}
		}
		b := off % s.p.Banks
		if s.bankCnt[b] == 0 {
			s.bankTouched = append(s.bankTouched, b)
		}
		s.bankCnt[b]++
		if s.bankCnt[b] > rounds {
			rounds = s.bankCnt[b]
		}
	}
	for _, b := range s.bankTouched {
		s.bankCnt[b] = 0
	}
	s.bankTouched = s.bankTouched[:0]
	return rounds
}

// Load reads the words at the given word offsets (one per active lane)
// and returns their values plus the access latency in cycles. The
// returned slice is a reused buffer, valid only until the next Load.
func (s *Scratchpad) Load(offsets []int) ([]uint32, sim.Cycle) {
	rounds := s.account(offsets)
	out := s.out[:0]
	for _, off := range offsets {
		out = append(out, s.words[off])
	}
	s.out = out
	return out, s.p.AccessLat * sim.Cycle(rounds)
}

// Store writes vals at the given word offsets and returns the latency.
func (s *Scratchpad) Store(offsets []int, vals []uint32) sim.Cycle {
	if len(vals) != len(offsets) {
		panic("scratch: offsets/vals length mismatch")
	}
	rounds := s.account(offsets)
	for i, off := range offsets {
		s.words[off] = vals[i]
	}
	return s.p.AccessLat * sim.Cycle(rounds)
}

func (s *Scratchpad) account(offsets []int) int {
	if len(offsets) == 0 {
		return 1
	}
	for _, off := range offsets {
		if off < 0 || off >= len(s.words) {
			panic(fmt.Sprintf("scratch: offset %d out of range (%d words)", off, len(s.words)))
		}
	}
	rounds := s.conflictRounds(offsets)
	s.accesses.Inc()
	if rounds > 1 {
		s.conflicts.Add(uint64(rounds - 1))
	}
	// One structure activation per serialized round.
	s.acct.Add(energy.ScratchAccess, uint64(rounds))
	return rounds
}

// Peek returns the word at offset, for tests and the DMA engine.
func (s *Scratchpad) Peek(offset int) uint32 { return s.words[offset] }

// Poke writes the word at offset without charging energy or latency;
// used only by tests.
func (s *Scratchpad) Poke(offset int, v uint32) { s.words[offset] = v }
