package scratch

import (
	"testing"
	"testing/quick"

	"stash/internal/energy"
	"stash/internal/stats"
)

func newPad() (*Scratchpad, *energy.Account, *stats.Set) {
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	return New("t", DefaultParams(), acct, set), acct, set
}

func TestStoreLoadRoundTrip(t *testing.T) {
	sp, _, _ := newPad()
	offsets := []int{0, 1, 2, 3}
	vals := []uint32{10, 11, 12, 13}
	sp.Store(offsets, vals)
	got, lat := sp.Load(offsets)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("load[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
	if lat != 1 {
		t.Fatalf("conflict-free latency = %d, want 1", lat)
	}
}

func TestBankConflicts(t *testing.T) {
	sp, _, set := newPad()
	// Offsets 0, 32, 64 all map to bank 0 with 32 banks: 3 rounds.
	_, lat := sp.Load([]int{0, 32, 64})
	if lat != 3 {
		t.Fatalf("3-way conflict latency = %d, want 3", lat)
	}
	if set.Sum("scratch.t.conflict_rounds") != 2 {
		t.Fatalf("conflict rounds = %d, want 2 extra", set.Sum("scratch.t.conflict_rounds"))
	}
}

func TestBroadcastIsFree(t *testing.T) {
	sp, _, _ := newPad()
	// All lanes reading the same word: broadcast, one round.
	_, lat := sp.Load([]int{5, 5, 5, 5})
	if lat != 1 {
		t.Fatalf("broadcast latency = %d, want 1", lat)
	}
}

func TestEnergyPerActivationRound(t *testing.T) {
	sp, acct, _ := newPad()
	sp.Load([]int{0, 1, 2, 3}) // 1 round
	sp.Load([]int{0, 32})      // 2 rounds
	if got := acct.Count(energy.ScratchAccess); got != 3 {
		t.Fatalf("scratch activations = %d, want 3", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	sp, _, _ := newPad()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range offset did not panic")
		}
	}()
	sp.Load([]int{sp.Words()})
}

func TestMismatchedStorePanics(t *testing.T) {
	sp, _, _ := newPad()
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched store did not panic")
		}
	}()
	sp.Store([]int{0, 1}, []uint32{7})
}

// Property: distinct offsets within one bank-width stride are always
// conflict-free; values written are read back exactly.
func TestScratchpadProperty(t *testing.T) {
	f := func(base uint16, vals []uint32) bool {
		sp, _, _ := newPad()
		if len(vals) > 32 {
			vals = vals[:32]
		}
		if len(vals) == 0 {
			return true
		}
		start := int(base) % (sp.Words() - 32)
		offsets := make([]int, len(vals))
		for i := range vals {
			offsets[i] = start + i
		}
		lat := sp.Store(offsets, vals)
		if lat != 1 {
			return false
		}
		got, _ := sp.Load(offsets)
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
