package vm

import (
	"testing"
	"testing/quick"

	"stash/internal/memdata"
)

func TestAllocReturnsLineAligned(t *testing.T) {
	as := NewAddressSpace()
	for i := 0; i < 5; i++ {
		base := as.Alloc(100)
		if uint64(base)%memdata.LineBytes != 0 {
			t.Fatalf("Alloc returned unaligned base %#x", uint64(base))
		}
	}
}

func TestAllocationsDoNotShareLines(t *testing.T) {
	as := NewAddressSpace()
	a := as.Alloc(100)
	b := as.Alloc(100)
	endA := a + 100
	if memdata.VLineOf(b) <= memdata.VLineOf(endA) {
		t.Fatalf("allocations share a line: a=[%#x,%#x) b=%#x", uint64(a), uint64(endA), uint64(b))
	}
}

func TestTranslateRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc(3 * PageBytes)
	for off := 0; off < 3*PageBytes; off += 512 {
		va := v + memdata.VAddr(off)
		pa := as.Translate(va)
		back, ok := as.Reverse(pa)
		if !ok || back != va {
			t.Fatalf("Reverse(Translate(%#x)) = %#x, ok=%v", uint64(va), uint64(back), ok)
		}
	}
}

func TestTranslatePreservesPageOffset(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc(PageBytes)
	va := v + 123*memdata.WordBytes
	pa := as.Translate(va)
	if uint64(pa)%PageBytes != uint64(va)%PageBytes {
		t.Fatalf("offset not preserved: va=%#x pa=%#x", uint64(va), uint64(pa))
	}
}

func TestUnmappedPanics(t *testing.T) {
	as := NewAddressSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("Translate on unmapped page did not panic")
		}
	}()
	as.Translate(0xdead0000)
}

func TestReverseUnmapped(t *testing.T) {
	as := NewAddressSpace()
	if _, ok := as.Reverse(0xdead0000); ok {
		t.Fatal("Reverse of unmapped frame reported ok")
	}
}

func TestDistinctPagesGetDistinctFrames(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc(8 * PageBytes)
	seen := make(map[memdata.PAddr]bool)
	for i := 0; i < 8; i++ {
		frame := PPageOf(as.Translate(v + memdata.VAddr(i*PageBytes)))
		if seen[frame] {
			t.Fatalf("frame %#x mapped twice", uint64(frame))
		}
		seen[frame] = true
	}
	if as.PageCount() < 8 {
		t.Fatalf("PageCount = %d, want >= 8", as.PageCount())
	}
}

// Property: for any in-bounds offset of any allocation, translation round
// trips and preserves the page offset.
func TestTranslationProperty(t *testing.T) {
	f := func(sizes []uint16, pick uint16, off uint32) bool {
		if len(sizes) == 0 {
			return true
		}
		as := NewAddressSpace()
		bases := make([]memdata.VAddr, 0, len(sizes))
		szs := make([]int, 0, len(sizes))
		for _, s := range sizes {
			size := int(s)%20000 + 4
			bases = append(bases, as.Alloc(size))
			szs = append(szs, size)
		}
		i := int(pick) % len(bases)
		va := bases[i] + memdata.VAddr(int(off)%szs[i])
		va = memdata.VAddr(memdata.WordOf(memdata.PAddr(va)))
		pa := as.Translate(va)
		back, ok := as.Reverse(pa)
		return ok && back == va && uint64(pa)%PageBytes == uint64(va)%PageBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
