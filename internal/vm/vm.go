// Package vm implements the simulator's virtual memory: a 4 KB page
// table with forward (TLB) and reverse (RTLB) translation, and a simple
// virtual-address-space allocator used by workloads to place their data
// structures.
//
// The paper does not model TLB misses (footnote 8): every translation is
// charged as a TLB hit by the energy model. The page table here still
// tracks real mappings so that the stash's VP-map (forward translation on
// stash misses and writebacks, reverse translation on remote requests)
// operates on genuine virtual/physical pairs.
package vm

import (
	"fmt"

	"stash/internal/memdata"
)

// PageBytes is the page size.
const PageBytes = 4096

// PageOf returns the page-aligned base of a virtual address.
func PageOf(v memdata.VAddr) memdata.VAddr { return v &^ (PageBytes - 1) }

// PPageOf returns the page-aligned base of a physical address.
func PPageOf(p memdata.PAddr) memdata.PAddr { return p &^ (PageBytes - 1) }

// virtBase and frameBase anchor the allocator: virtual allocations
// start above the null page, physical frames at a non-identity offset
// so reverse translation is a real computation. Both being non-zero is
// what lets the page tables use 0 as their unmapped sentinel.
const (
	virtBase  memdata.VAddr = 0x1000_0000
	frameBase memdata.PAddr = 0x0020_0000
)

// AddressSpace is a process address space: an allocator plus a page table.
//
// Both translation directions are dense slices indexed by page number
// relative to the allocator bases — the allocator only ever hands out
// pages upward from virtBase/frameBase, so the tables stay compact and
// a translation is two bounds checks and an indexed load instead of a
// map lookup on every memory access.
type AddressSpace struct {
	nextVirt  memdata.VAddr
	nextFrame memdata.PAddr
	vToP      []memdata.PAddr // index (vpage-virtBase)/PageBytes; 0 = unmapped
	pToV      []memdata.VAddr // index (ppage-frameBase)/PageBytes; 0 = unmapped
	mapped    int
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{
		nextVirt:  virtBase,
		nextFrame: frameBase,
	}
}

// Alloc reserves size bytes of virtual address space, maps every page it
// covers, and returns the (line-aligned) base virtual address.
func (as *AddressSpace) Alloc(size int) memdata.VAddr {
	if size <= 0 {
		panic("vm: Alloc of non-positive size")
	}
	base := as.nextVirt
	// Keep allocations line-aligned and separated by at least a line so
	// distinct arrays never share a cache line (the paper's chunked
	// writeback requires chunk-aligned structures, Section 4.2).
	end := base + memdata.VAddr(size)
	as.nextVirt = (end + 2*memdata.LineBytes - 1) &^ (memdata.LineBytes - 1)
	for p := PageOf(base); p < end; p += PageBytes {
		as.ensureMapped(p)
	}
	return base
}

func (as *AddressSpace) ensureMapped(vpage memdata.VAddr) {
	idx := int((vpage - virtBase) / PageBytes)
	for idx >= len(as.vToP) {
		as.vToP = append(as.vToP, 0)
	}
	if as.vToP[idx] != 0 {
		return
	}
	frame := as.nextFrame
	as.nextFrame += PageBytes
	as.vToP[idx] = frame
	as.mapped++
	pidx := int((frame - frameBase) / PageBytes)
	for pidx >= len(as.pToV) {
		as.pToV = append(as.pToV, 0)
	}
	as.pToV[pidx] = vpage
}

// Translate returns the physical address of virtual address v.
// The page must have been allocated; a fault panics, because workloads
// only ever touch memory they allocated.
func (as *AddressSpace) Translate(v memdata.VAddr) memdata.PAddr {
	if v >= virtBase {
		idx := int((v - virtBase) / PageBytes)
		if idx < len(as.vToP) {
			if frame := as.vToP[idx]; frame != 0 {
				return frame + memdata.PAddr(v&(PageBytes-1))
			}
		}
	}
	panic(fmt.Sprintf("vm: page fault at %#x", uint64(v)))
}

// Reverse returns the virtual address mapped to physical address p and
// whether such a mapping exists.
func (as *AddressSpace) Reverse(p memdata.PAddr) (memdata.VAddr, bool) {
	if p < frameBase {
		return 0, false
	}
	idx := int((p - frameBase) / PageBytes)
	if idx >= len(as.pToV) {
		return 0, false
	}
	vpage := as.pToV[idx]
	if vpage == 0 {
		return 0, false
	}
	return vpage + memdata.VAddr(p&(PageBytes-1)), true
}

// Mapped reports whether virtual address v has a page mapping.
func (as *AddressSpace) Mapped(v memdata.VAddr) bool {
	if v < virtBase {
		return false
	}
	idx := int((v - virtBase) / PageBytes)
	return idx < len(as.vToP) && as.vToP[idx] != 0
}

// PageCount reports the number of mapped pages.
func (as *AddressSpace) PageCount() int { return as.mapped }
