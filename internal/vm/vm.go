// Package vm implements the simulator's virtual memory: a 4 KB page
// table with forward (TLB) and reverse (RTLB) translation, and a simple
// virtual-address-space allocator used by workloads to place their data
// structures.
//
// The paper does not model TLB misses (footnote 8): every translation is
// charged as a TLB hit by the energy model. The page table here still
// tracks real mappings so that the stash's VP-map (forward translation on
// stash misses and writebacks, reverse translation on remote requests)
// operates on genuine virtual/physical pairs.
package vm

import (
	"fmt"

	"stash/internal/memdata"
)

// PageBytes is the page size.
const PageBytes = 4096

// PageOf returns the page-aligned base of a virtual address.
func PageOf(v memdata.VAddr) memdata.VAddr { return v &^ (PageBytes - 1) }

// PPageOf returns the page-aligned base of a physical address.
func PPageOf(p memdata.PAddr) memdata.PAddr { return p &^ (PageBytes - 1) }

// AddressSpace is a process address space: an allocator plus a page table.
type AddressSpace struct {
	nextVirt  memdata.VAddr
	nextFrame memdata.PAddr
	vToP      map[memdata.VAddr]memdata.PAddr // page-aligned virtual -> physical
	pToV      map[memdata.PAddr]memdata.VAddr // page-aligned physical -> virtual
}

// NewAddressSpace returns an empty address space. Virtual allocations
// start above the null page; physical frames are interleaved across a
// non-identity layout so reverse translation is a real computation.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{
		nextVirt:  0x1000_0000,
		nextFrame: 0x0020_0000,
		vToP:      make(map[memdata.VAddr]memdata.PAddr),
		pToV:      make(map[memdata.PAddr]memdata.VAddr),
	}
}

// Alloc reserves size bytes of virtual address space, maps every page it
// covers, and returns the (line-aligned) base virtual address.
func (as *AddressSpace) Alloc(size int) memdata.VAddr {
	if size <= 0 {
		panic("vm: Alloc of non-positive size")
	}
	base := as.nextVirt
	// Keep allocations line-aligned and separated by at least a line so
	// distinct arrays never share a cache line (the paper's chunked
	// writeback requires chunk-aligned structures, Section 4.2).
	end := base + memdata.VAddr(size)
	as.nextVirt = (end + 2*memdata.LineBytes - 1) &^ (memdata.LineBytes - 1)
	for p := PageOf(base); p < end; p += PageBytes {
		as.ensureMapped(p)
	}
	return base
}

func (as *AddressSpace) ensureMapped(vpage memdata.VAddr) {
	if _, ok := as.vToP[vpage]; ok {
		return
	}
	frame := as.nextFrame
	as.nextFrame += PageBytes
	as.vToP[vpage] = frame
	as.pToV[frame] = vpage
}

// Translate returns the physical address of virtual address v.
// The page must have been allocated; a fault panics, because workloads
// only ever touch memory they allocated.
func (as *AddressSpace) Translate(v memdata.VAddr) memdata.PAddr {
	frame, ok := as.vToP[PageOf(v)]
	if !ok {
		panic(fmt.Sprintf("vm: page fault at %#x", uint64(v)))
	}
	return frame + memdata.PAddr(v-PageOf(v))
}

// Reverse returns the virtual address mapped to physical address p and
// whether such a mapping exists.
func (as *AddressSpace) Reverse(p memdata.PAddr) (memdata.VAddr, bool) {
	vpage, ok := as.pToV[PPageOf(p)]
	if !ok {
		return 0, false
	}
	return vpage + memdata.VAddr(p-PPageOf(p)), true
}

// Mapped reports whether virtual address v has a page mapping.
func (as *AddressSpace) Mapped(v memdata.VAddr) bool {
	_, ok := as.vToP[PageOf(v)]
	return ok
}

// PageCount reports the number of mapped pages.
func (as *AddressSpace) PageCount() int { return len(as.vToP) }
