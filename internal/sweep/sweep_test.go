package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAllJobsOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 37
		var counts [n]atomic.Int32
		_, err := Run(context.Background(), n, Options{Workers: workers},
			func(_ context.Context, i int) error {
				counts[i].Add(1)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 4
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	_, err := Run(context.Background(), 64, Options{Workers: workers},
		func(_ context.Context, i int) error {
			cur := inFlight.Add(1)
			mu.Lock()
			if cur > peak.Load() {
				peak.Store(cur)
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", p, workers)
	}
}

func TestRunCollectAllJoinsInIndexOrder(t *testing.T) {
	errs, err := Run(context.Background(), 10, Options{Workers: 4},
		func(_ context.Context, i int) error {
			if i%3 == 0 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
	if err == nil {
		t.Fatal("collect-all sweep with failures returned nil")
	}
	for i := range errs {
		if (i%3 == 0) != (errs[i] != nil) {
			t.Fatalf("errs[%d] = %v", i, errs[i])
		}
	}
	// Joined message lists failures in job index order.
	msg := err.Error()
	prev := -1
	for _, i := range []int{0, 3, 6, 9} {
		pos := strings.Index(msg, fmt.Sprintf("job %d failed", i))
		if pos < 0 || pos < prev {
			t.Fatalf("join order wrong in %q", msg)
		}
		prev = pos
	}
}

func TestRunFailFastSkipsRemaining(t *testing.T) {
	boom := errors.New("boom")
	started := 0 // single worker: no races
	errs, err := Run(context.Background(), 100, Options{Workers: 1, FailFast: true},
		func(_ context.Context, i int) error {
			started++
			if i == 4 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if started != 5 {
		t.Fatalf("started %d jobs, want 5", started)
	}
	for i := 5; i < 100; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("errs[%d] = %v, want context.Canceled marker", i, errs[i])
		}
	}
}

func TestRunParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	_, err := Run(ctx, 50, Options{Workers: 2},
		func(ctx context.Context, i int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 50 {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}
}

func TestRunEmpty(t *testing.T) {
	errs, err := Run(context.Background(), 0, Options{}, func(context.Context, int) error {
		t.Fatal("job called for empty sweep")
		return nil
	})
	if err != nil || len(errs) != 0 {
		t.Fatalf("empty sweep: errs=%v err=%v", errs, err)
	}
}
