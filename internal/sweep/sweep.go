// Package sweep provides the bounded worker pool behind the public
// stash.Sweep API: it fans a fixed set of independent jobs out over a
// configurable number of goroutines while keeping every observable
// output — result slots, error order — deterministic with respect to
// the job indices, so a parallel sweep is indistinguishable from a
// serial one except in wall time.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Options configures a Run.
type Options struct {
	// Workers is the pool size. Values below 1 run the jobs serially on
	// a single worker; values above the job count are clamped to it.
	Workers int
	// FailFast cancels the jobs that have not started yet as soon as any
	// job returns a non-nil error. Jobs already in flight observe the
	// cancellation through their context. Without FailFast every job
	// runs and all errors are collected.
	FailFast bool
}

// Run executes jobs 0..n-1 over a bounded worker pool. It returns one
// error slot per job — the job's own error, or the cancellation error
// for jobs that were never started — plus a summary error: the
// triggering error in fail-fast mode, or every job error joined in job
// index order in collect-all mode (nil when all jobs succeeded). The
// per-slot slice makes it possible to tell exactly which jobs ran,
// regardless of how the pool interleaved them.
func Run(ctx context.Context, n int, opts Options, job func(ctx context.Context, i int) error) ([]error, error) {
	errs := make([]error, n)
	if n <= 0 {
		return errs, ctx.Err()
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		firstErr error
		once     sync.Once
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runCtx.Err(); err != nil {
					errs[i] = err // never started
					continue
				}
				if err := runJob(runCtx, i, job); err != nil {
					errs[i] = err
					once.Do(func() {
						firstErr = err
						if opts.FailFast {
							cancel()
						}
					})
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// The caller's context died: that, not any individual job error,
		// is the headline failure.
		return errs, err
	}
	if opts.FailFast {
		return errs, firstErr
	}
	var joined []error
	for _, err := range errs {
		if err != nil {
			joined = append(joined, err)
		}
	}
	return errs, errors.Join(joined...)
}

// runJob isolates one job invocation: a panicking job becomes that
// job's error instead of tearing down the pool and the process. The
// public API converts simulator panics itself (with richer diagnosis);
// this guard is the last line of defense for panics escaping anywhere
// else in a job.
func runJob(ctx context.Context, i int, job func(context.Context, int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: job %d panicked: %v", i, r)
		}
	}()
	return job(ctx, i)
}
