package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"stash/internal/stats"
)

func TestSeriesBucketAtCycleZero(t *testing.T) {
	c := NewCollector(Options{BucketCycles: 100}, nil)
	s := c.SeriesByName("x")
	s.Add(0, 1)
	s.Add(99, 2)
	s.Add(100, 5)
	tl := c.Finish(100)
	if got := tl.Series[0].Vals; !reflect.DeepEqual(got, []uint64{3, 5}) {
		t.Fatalf("vals = %v, want [3 5]", got)
	}
}

func TestSeriesFinalPartialBucket(t *testing.T) {
	c := NewCollector(Options{BucketCycles: 100}, nil)
	s := c.SeriesByName("x")
	s.Add(250, 7)
	tl := c.Finish(250)
	if nb := tl.numBuckets(); nb != 3 {
		t.Fatalf("numBuckets = %d, want 3 (two full + final partial)", nb)
	}
	if got := tl.Series[0].Vals; !reflect.DeepEqual(got, []uint64{0, 0, 7}) {
		t.Fatalf("vals = %v, want [0 0 7]", got)
	}
}

func TestSeriesBucketLargerThanRun(t *testing.T) {
	c := NewCollector(Options{BucketCycles: 1 << 20}, nil)
	s := c.SeriesByName("x")
	s.Add(42, 1)
	tl := c.Finish(250)
	if nb := tl.numBuckets(); nb != 1 {
		t.Fatalf("numBuckets = %d, want 1", nb)
	}
	if got := tl.Series[0].Vals; !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("vals = %v, want [1]", got)
	}
}

func TestGaugeLastSampleWins(t *testing.T) {
	c := NewCollector(Options{BucketCycles: 100}, nil)
	g := c.Sink("comp").Gauge("occ")
	g.Set(10, 3)
	g.Set(90, 8)
	g.Set(150, 2)
	tl := c.Finish(200)
	if got := tl.Series[0].Vals; !reflect.DeepEqual(got, []uint64{8, 2}) {
		t.Fatalf("vals = %v, want [8 2]", got)
	}
	if !tl.Series[0].Gauge {
		t.Fatal("series not marked as gauge")
	}
}

// TestRingOverflowDropsOldest fills a 4-slot ring with 10 events and
// requires the newest 4 to survive, the drop count to reach 6, and the
// trace.dropped counter to mirror it.
func TestRingOverflowDropsOldest(t *testing.T) {
	set := stats.NewSet()
	c := NewCollector(Options{BufferEvents: 4}, set)
	snk := c.Sink("comp")
	for i := uint64(0); i < 10; i++ {
		snk.Event(i, KMiss, i, 0)
	}
	tl := c.Finish(10)
	if tl.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", tl.Dropped)
	}
	if got := set.Counter("trace.dropped").Value(); got != 6 {
		t.Fatalf("trace.dropped counter = %d, want 6", got)
	}
	evs := tl.Events()
	if len(evs) != 4 {
		t.Fatalf("kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Arg != want || ev.Cycle != want {
			t.Fatalf("event %d = %+v, want arg/cycle %d (oldest must drop)", i, ev, want)
		}
	}
}

// TestFlushPreservesDrainedEvents proves an intermediate Flush moves
// staged events out of overwrite range: a later overflow only drops
// still-staged events.
func TestFlushPreservesDrainedEvents(t *testing.T) {
	c := NewCollector(Options{BufferEvents: 4}, nil)
	snk := c.Sink("comp")
	for i := uint64(0); i < 4; i++ {
		snk.Event(i, KMiss, i, 0)
	}
	c.Flush()
	for i := uint64(4); i < 10; i++ {
		snk.Event(i, KMiss, i, 0)
	}
	tl := c.Finish(10)
	if tl.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", tl.Dropped)
	}
	evs := tl.Events()
	if len(evs) != 8 {
		t.Fatalf("kept %d events, want 8", len(evs))
	}
	want := []uint64{0, 1, 2, 3, 6, 7, 8, 9}
	for i, ev := range evs {
		if ev.Arg != want[i] {
			t.Fatalf("event %d arg = %d, want %d", i, ev.Arg, want[i])
		}
	}
}

func TestPhasesCloseAtFinish(t *testing.T) {
	c := NewCollector(Options{}, nil)
	c.PhaseBegin("kernel", 10)
	c.PhaseEnd(50)
	c.PhaseBegin("cpu-phase", 60) // left open: a crashed cell
	tl := c.Finish(80)
	want := []Phase{{"kernel", 10, 50}, {"cpu-phase", 60, 80}}
	if !reflect.DeepEqual(tl.Phases, want) {
		t.Fatalf("phases = %+v, want %+v", tl.Phases, want)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	set := stats.NewSet()
	c := NewCollector(Options{BucketCycles: 64, BufferEvents: 8}, set)
	snk := c.Sink("l1.gpu0")
	snk2 := c.Sink("noc")
	sr := snk.Series("misses")
	for i := uint64(0); i < 12; i++ { // overflows: exercises Dropped
		snk.Event(i*7, KMiss, 0x1000+i, 0)
		sr.Add(i*7, 1)
	}
	snk2.Event(100, KFlitHop, 3<<32|9, 42)
	c.PhaseBegin("kernel", 0)
	c.PhaseEnd(101)
	tl := c.Finish(101)

	var buf bytes.Buffer
	if err := tl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.BucketCycles != tl.BucketCycles || got.EndCycle != tl.EndCycle ||
		got.Dropped != tl.Dropped || got.NEvents != tl.NEvents {
		t.Fatalf("header mismatch: got %+v want %+v", got, tl)
	}
	if !reflect.DeepEqual(got.Tracks, tl.Tracks) {
		t.Fatalf("tracks = %v, want %v", got.Tracks, tl.Tracks)
	}
	if !reflect.DeepEqual(got.Phases, tl.Phases) {
		t.Fatalf("phases = %v, want %v", got.Phases, tl.Phases)
	}
	if !reflect.DeepEqual(got.Series, tl.Series) {
		t.Fatalf("series = %v, want %v", got.Series, tl.Series)
	}
	if !reflect.DeepEqual(got.Events(), tl.Events()) {
		t.Fatal("event spill did not round-trip")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("Decode accepted garbage")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("Decode accepted empty input")
	}
}

// TestChromeExportShape validates the trace_event JSON against the
// format's structural requirements: a traceEvents array whose entries
// all carry ph/pid/ts (or are metadata), with one thread_name metadata
// record per track plus one for the phase track.
func TestChromeExportShape(t *testing.T) {
	c := NewCollector(Options{BucketCycles: 50}, nil)
	snk := c.Sink("l1.gpu0")
	snk.Event(5, KMiss, 0x40, 0)
	snk.Event(10, KAccessBegin, 0x40, 0)
	snk.Event(30, KAccessEnd, 0x40, 0)
	snk.Series("misses").Add(5, 1)
	c.PhaseBegin("kernel", 0)
	c.PhaseEnd(40)
	tl := c.Finish(40)

	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	meta, counters, spans := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event missing ph: %v", ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
		switch ph {
		case "M":
			meta++
		case "C":
			counters++
		case "X", "b", "e", "i":
			spans++
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("event missing ts: %v", ev)
			}
		default:
			t.Fatalf("unexpected phase type %q", ph)
		}
	}
	if meta != 2 { // "phases" + "l1.gpu0"
		t.Fatalf("thread_name metadata count = %d, want 2", meta)
	}
	if spans != 4 { // phase X + miss i + access b/e
		t.Fatalf("span/instant count = %d, want 4", spans)
	}
	if counters != 1 { // one 50-cycle bucket covers EndCycle 40
		t.Fatalf("counter sample count = %d, want 1", counters)
	}
}

// TestEmitNoAlloc pins the enabled-path emit cost: staging an event or
// bumping a series bucket in warmed storage never allocates.
func TestEmitNoAlloc(t *testing.T) {
	c := NewCollector(Options{BufferEvents: 16}, nil)
	snk := c.Sink("comp")
	sr := snk.Series("misses")
	sr.Add(0, 1) // warm bucket 0
	if n := testing.AllocsPerRun(100, func() {
		snk.Event(1, KMiss, 2, 3)
		sr.Add(1, 1)
	}); n != 0 {
		t.Fatalf("emit allocates %v allocs/op, want 0", n)
	}
}

// TestNilSinkNoAllocNoPanic pins the disabled path: every method on a
// nil sink, series, and collector is an allocation-free no-op.
func TestNilSinkNoAllocNoPanic(t *testing.T) {
	var snk *Sink
	var sr *Series
	var col *Collector
	if n := testing.AllocsPerRun(100, func() {
		snk.Event(1, KMiss, 2, 3)
		sr.Add(1, 1)
		sr.Set(1, 1)
		col.PhaseBegin("x", 0)
		col.PhaseEnd(1)
		_ = col.SeriesByName("x")
	}); n != 0 {
		t.Fatalf("nil-path allocates %v allocs/op, want 0", n)
	}
	if snk.Series("x") != nil || snk.Gauge("x") != nil || snk.Name() != "" {
		t.Fatal("nil sink must return zero values")
	}
}
