// Compact binary timeline format for large runs. Layout (all integers
// unsigned varints unless noted):
//
//	magic "STTR", version byte (1)
//	bucketCycles, endCycle, dropped
//	numTracks, then each track name (varint length + bytes)
//	numPhases, then each phase (name, start, end)
//	numSeries, then each series (name, gauge byte, bucket,
//	  numVals, vals...)
//	numEvents, spill byte length, then the spill verbatim
//	  (per event: delta-cycle, kind byte, track, arg, arg2)
//
// The event spill is stored exactly as the Collector encoded it, so
// writing a timeline never re-encodes events.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

var binaryMagic = [4]byte{'S', 'T', 'T', 'R'}

const binaryVersion = 1

// maxDecode bounds every length field read by Decode so a corrupt
// header cannot drive a huge allocation.
const maxDecode = 1 << 30

// WriteBinary writes the timeline in the compact binary format.
func (t *Timeline) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(binaryMagic[:])
	bw.WriteByte(binaryVersion)
	putUv(bw, t.BucketCycles)
	putUv(bw, t.EndCycle)
	putUv(bw, t.Dropped)
	putUv(bw, uint64(len(t.Tracks)))
	for _, name := range t.Tracks {
		putStr(bw, name)
	}
	putUv(bw, uint64(len(t.Phases)))
	for _, p := range t.Phases {
		putStr(bw, p.Name)
		putUv(bw, p.Start)
		putUv(bw, p.End)
	}
	putUv(bw, uint64(len(t.Series)))
	for _, s := range t.Series {
		putStr(bw, s.Name)
		g := byte(0)
		if s.Gauge {
			g = 1
		}
		bw.WriteByte(g)
		putUv(bw, s.Bucket)
		putUv(bw, uint64(len(s.Vals)))
		for _, v := range s.Vals {
			putUv(bw, v)
		}
	}
	putUv(bw, uint64(t.NEvents))
	putUv(bw, uint64(len(t.enc)))
	bw.Write(t.enc)
	return bw.Flush()
}

// Decode reads a timeline previously written by WriteBinary.
func Decode(r io.Reader) (*Timeline, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if !bytes.Equal(magic[:4], binaryMagic[:]) {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:4])
	}
	if magic[4] != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", magic[4])
	}
	t := &Timeline{}
	var err error
	get := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = binary.ReadUvarint(br)
		return v
	}
	getN := func(what string) int {
		n := get()
		if err == nil && n > maxDecode {
			err = fmt.Errorf("trace: %s count %d too large", what, n)
		}
		return int(n)
	}
	getStr := func() string {
		n := getN("string")
		if err != nil {
			return ""
		}
		b := make([]byte, n)
		if _, e := io.ReadFull(br, b); e != nil {
			err = e
			return ""
		}
		return string(b)
	}
	t.BucketCycles = get()
	t.EndCycle = get()
	t.Dropped = get()
	for i, n := 0, getN("track"); i < n && err == nil; i++ {
		t.Tracks = append(t.Tracks, getStr())
	}
	for i, n := 0, getN("phase"); i < n && err == nil; i++ {
		p := Phase{Name: getStr()}
		p.Start = get()
		p.End = get()
		t.Phases = append(t.Phases, p)
	}
	for i, n := 0, getN("series"); i < n && err == nil; i++ {
		s := SeriesData{Name: getStr()}
		if err == nil {
			g, e := br.ReadByte()
			err = e
			s.Gauge = g != 0
		}
		s.Bucket = get()
		for j, m := 0, getN("series value"); j < m && err == nil; j++ {
			s.Vals = append(s.Vals, get())
		}
		t.Series = append(t.Series, s)
	}
	t.NEvents = getN("event")
	encLen := getN("spill byte")
	if err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	t.enc = make([]byte, encLen)
	if _, e := io.ReadFull(br, t.enc); e != nil {
		return nil, fmt.Errorf("trace: reading event spill: %w", e)
	}
	return t, nil
}

func putUv(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putStr(w *bufio.Writer, s string) {
	putUv(w, uint64(len(s)))
	w.WriteString(s)
}
