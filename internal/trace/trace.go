// Package trace is the simulator's opt-in observability layer: typed
// per-component event tracing plus windowed time-series metrics, drained
// into a Timeline that exports as Chrome/Perfetto trace_event JSON or a
// compact binary stream.
//
// The design contract is timing neutrality. Every component holds a
// *Sink (and a few *Series); both types are nil-receiver-safe, so with
// tracing disabled an emit site costs one nil check and zero
// allocations, and every simulated metric is bit-identical to a run
// without the instrumentation (enforced by TestGoldenTraceNeutral).
// With tracing enabled, events are staged in a fixed-capacity ring
// buffer that a host-side engine probe (sim.Engine.AddProbe) drains
// into a varint-encoded spill; the probe never schedules events or
// advances the clock, so tracing on is also metric-neutral — it only
// spends host time and memory.
//
// Overflow policy: if the ring fills between flushes the oldest staged
// event is overwritten (drop-oldest) and the `trace.dropped` counter is
// incremented. Time-series buckets are updated at emit time, outside
// the ring, so a dropped event never corrupts the series; phases are
// recorded host-side and are never dropped.
package trace

import (
	"encoding/binary"

	"stash/internal/stats"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// KAccessBegin/KAccessEnd bracket an outstanding access (an MSHR
	// lifetime); Arg is the line address and pairs begin with end.
	KAccessBegin Kind = iota
	KAccessEnd
	// KMiss marks a demand miss; Arg is the line address.
	KMiss
	// KFill marks a fill response landing; Arg is the line address.
	KFill
	// KWriteback marks a dirty line leaving a component; Arg is the
	// line address.
	KWriteback
	// KFlitHop marks a message traversing the mesh; Arg packs
	// src<<32|dst node, Arg2 is flits*hops.
	KFlitHop
	// KPacket marks a coherence packet injection; Arg is the packet
	// type ordinal, Arg2 the line address.
	KPacket
	// KWarpStall/KWarpResume bracket a warp blocked on global memory;
	// Arg is a per-warp id stable across the pair.
	KWarpStall
	KWarpResume
	// KDMABegin/KDMAEnd bracket one DMA transfer; Arg is the transfer
	// id, Arg2 (on begin) the transfer's line count.
	KDMABegin
	KDMAEnd
	// KAddMap marks a stash-map entry allocation; Arg is the map index.
	KAddMap
	numKinds
)

var kindNames = [numKinds]string{
	KAccessBegin: "access",
	KAccessEnd:   "access",
	KMiss:        "miss",
	KFill:        "fill",
	KWriteback:   "writeback",
	KFlitHop:     "flit",
	KPacket:      "packet",
	KWarpStall:   "stall",
	KWarpResume:  "stall",
	KDMABegin:    "dma",
	KDMAEnd:      "dma",
	KAddMap:      "addmap",
}

// String returns the event-kind name used in exported traces.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace record. Events are value types staged in a fixed
// ring, so emitting one never allocates.
type Event struct {
	Cycle uint64
	Kind  Kind
	Track uint16
	Arg   uint64
	Arg2  uint64
}

// Phase is a host-annotated span (kernel, CPU phase, verify flush).
type Phase struct {
	Name  string `json:"name"`
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

// Options configures a Collector. Zero fields take defaults.
type Options struct {
	// BucketCycles is the time-series window width (default 1024).
	BucketCycles uint64
	// BufferEvents is the staging ring capacity (default 65536).
	BufferEvents int
	// FlushEvery is the engine-probe drain period in executed events
	// (default 4096).
	FlushEvery uint64
}

func (o Options) withDefaults() Options {
	if o.BucketCycles == 0 {
		o.BucketCycles = 1024
	}
	if o.BufferEvents <= 0 {
		o.BufferEvents = 1 << 16
	}
	if o.FlushEvery == 0 {
		o.FlushEvery = 4096
	}
	return o
}

// Series is one windowed time-series: event counts (or gauge samples)
// per BucketCycles-wide window. A nil *Series is valid and inert, so
// components update them unconditionally on hot paths.
type Series struct {
	name   string
	bucket uint64
	gauge  bool
	vals   []uint64
}

// Add accumulates n into the bucket containing cycle.
func (s *Series) Add(cycle, n uint64) {
	if s == nil {
		return
	}
	i := cycle / s.bucket
	for uint64(len(s.vals)) <= i {
		s.vals = append(s.vals, 0)
	}
	s.vals[i] += n
}

// Set records a gauge sample; the last sample in a bucket wins.
func (s *Series) Set(cycle, v uint64) {
	if s == nil {
		return
	}
	i := cycle / s.bucket
	for uint64(len(s.vals)) <= i {
		s.vals = append(s.vals, 0)
	}
	s.vals[i] = v
}

// Sink is a per-component event emitter. A nil *Sink is valid and
// inert: every method returns immediately, which is the entire
// disabled-path cost of an instrumented call site.
type Sink struct {
	c     *Collector
	track uint16
}

// Event stages one trace event.
func (s *Sink) Event(cycle uint64, k Kind, arg, arg2 uint64) {
	if s == nil {
		return
	}
	s.c.emit(Event{Cycle: cycle, Kind: k, Track: s.track, Arg: arg, Arg2: arg2})
}

// Series returns the counter series <track>.<name>, creating it on
// first use. Returns nil on a nil sink.
func (s *Sink) Series(name string) *Series {
	if s == nil {
		return nil
	}
	return s.c.series(s.c.tracks[s.track]+"."+name, false)
}

// Gauge returns the gauge series <track>.<name>, creating it on first
// use. Returns nil on a nil sink.
func (s *Sink) Gauge(name string) *Series {
	if s == nil {
		return nil
	}
	return s.c.series(s.c.tracks[s.track]+"."+name, true)
}

// Name returns the sink's track name.
func (s *Sink) Name() string {
	if s == nil {
		return ""
	}
	return s.c.tracks[s.track]
}

// Collector owns the staging ring, the encoded event spill, the
// time-series registry, and the phase list for one simulated system.
// It is not safe for concurrent use; each sweep cell builds its own.
type Collector struct {
	opts   Options
	tracks []string

	ring    []Event
	head, n int

	enc     []byte // varint event spill, cycles delta-encoded
	nEvents int
	lastCyc uint64

	dropped    uint64
	droppedCtr *stats.Counter

	seriesByName map[string]*Series
	seriesOrder  []*Series

	phases []Phase
	open   []int // indices of phases awaiting PhaseEnd (a stack)
}

// NewCollector builds a collector. set receives the `trace.dropped`
// counter; it may be nil in tests.
func NewCollector(opts Options, set *stats.Set) *Collector {
	opts = opts.withDefaults()
	c := &Collector{
		opts:         opts,
		ring:         make([]Event, opts.BufferEvents),
		seriesByName: make(map[string]*Series),
	}
	if set != nil {
		c.droppedCtr = set.Counter("trace.dropped")
	}
	return c
}

// Sink registers a new track and returns its emitter. Tracks must be
// registered before the simulation runs (registration order is the
// export order).
func (c *Collector) Sink(track string) *Sink {
	c.tracks = append(c.tracks, track)
	return &Sink{c: c, track: uint16(len(c.tracks) - 1)}
}

// SeriesByName returns the named counter series, creating it on first
// use. Safe on a nil collector.
func (c *Collector) SeriesByName(name string) *Series {
	if c == nil {
		return nil
	}
	return c.series(name, false)
}

func (c *Collector) series(name string, gauge bool) *Series {
	if s, ok := c.seriesByName[name]; ok {
		return s
	}
	s := &Series{name: name, bucket: c.opts.BucketCycles, gauge: gauge}
	c.seriesByName[name] = s
	c.seriesOrder = append(c.seriesOrder, s)
	return s
}

// BucketCycles reports the configured time-series window width.
func (c *Collector) BucketCycles() uint64 { return c.opts.BucketCycles }

// FlushEvery reports the configured probe drain period, for installing
// the flush probe via sim.Engine.AddProbe.
func (c *Collector) FlushEvery() uint64 { return c.opts.FlushEvery }

// emit stages one event, overwriting the oldest staged event when the
// ring is full (drop-oldest).
func (c *Collector) emit(ev Event) {
	if c.n == len(c.ring) {
		c.ring[c.head] = ev
		c.head++
		if c.head == len(c.ring) {
			c.head = 0
		}
		c.dropped++
		if c.droppedCtr != nil {
			c.droppedCtr.Inc()
		}
		return
	}
	i := c.head + c.n
	if i >= len(c.ring) {
		i -= len(c.ring)
	}
	c.ring[i] = ev
	c.n++
}

// Flush drains the staging ring into the encoded spill. It is the
// engine flush probe: host-side only, never schedules or advances the
// clock.
func (c *Collector) Flush() {
	for ; c.n > 0; c.n-- {
		ev := c.ring[c.head]
		c.head++
		if c.head == len(c.ring) {
			c.head = 0
		}
		c.encode(ev)
	}
}

// encode appends one event to the spill. Cycles are delta-encoded:
// events drain in emission order and the engine clock never moves
// backwards, so the delta is always non-negative.
func (c *Collector) encode(ev Event) {
	var buf [4*binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(buf[:], ev.Cycle-c.lastCyc)
	c.lastCyc = ev.Cycle
	buf[n] = byte(ev.Kind)
	n++
	n += binary.PutUvarint(buf[n:], uint64(ev.Track))
	n += binary.PutUvarint(buf[n:], ev.Arg)
	n += binary.PutUvarint(buf[n:], ev.Arg2)
	c.enc = append(c.enc, buf[:n]...)
	c.nEvents++
}

// PhaseBegin opens a host-annotated span. Safe on a nil collector.
func (c *Collector) PhaseBegin(name string, cycle uint64) {
	if c == nil {
		return
	}
	c.phases = append(c.phases, Phase{Name: name, Start: cycle, End: cycle})
	c.open = append(c.open, len(c.phases)-1)
}

// PhaseEnd closes the most recently opened span. Safe on a nil
// collector.
func (c *Collector) PhaseEnd(cycle uint64) {
	if c == nil || len(c.open) == 0 {
		return
	}
	i := c.open[len(c.open)-1]
	c.open = c.open[:len(c.open)-1]
	c.phases[i].End = cycle
}

// Dropped reports how many staged events were overwritten so far.
func (c *Collector) Dropped() uint64 { return c.dropped }

// Finish drains the ring one last time, closes any phases left open at
// endCycle (a crashed cell exits mid-phase), and returns the completed
// Timeline. The collector keeps no references to the returned data and
// must not be used afterwards.
func (c *Collector) Finish(endCycle uint64) *Timeline {
	c.Flush()
	for len(c.open) > 0 {
		c.PhaseEnd(endCycle)
	}
	tl := &Timeline{
		BucketCycles: c.opts.BucketCycles,
		EndCycle:     endCycle,
		Dropped:      c.dropped,
		Tracks:       c.tracks,
		Phases:       c.phases,
		Series:       make([]SeriesData, 0, len(c.seriesOrder)),
		NEvents:      c.nEvents,
		enc:          c.enc,
	}
	for _, s := range c.seriesOrder {
		tl.Series = append(tl.Series, SeriesData{
			Name: s.name, Bucket: s.bucket, Gauge: s.gauge, Vals: s.vals,
		})
	}
	return tl
}

// SeriesData is one exported time-series.
type SeriesData struct {
	Name   string   `json:"name"`
	Bucket uint64   `json:"bucket"`
	Gauge  bool     `json:"gauge,omitempty"`
	Vals   []uint64 `json:"vals"`
}

// Timeline is the completed trace of one run: the event spill plus the
// track, phase, and time-series tables needed to export it.
type Timeline struct {
	BucketCycles uint64
	EndCycle     uint64
	Dropped      uint64
	Tracks       []string
	Phases       []Phase
	Series       []SeriesData
	NEvents      int
	enc          []byte
}

// NumEvents reports how many events the timeline holds.
func (t *Timeline) NumEvents() int { return t.NEvents }

// numBuckets is how many time-series windows cover [0, EndCycle],
// including the final partial bucket. Always at least one, so a run
// shorter than one bucket still exports a window.
func (t *Timeline) numBuckets() uint64 {
	if t.BucketCycles == 0 {
		return 1
	}
	return t.EndCycle/t.BucketCycles + 1
}

// Events decodes the full event spill. It allocates; exports and tests
// only.
func (t *Timeline) Events() []Event {
	out := make([]Event, 0, t.NEvents)
	t.forEachEvent(func(ev Event) { out = append(out, ev) })
	return out
}

func (t *Timeline) forEachEvent(fn func(Event)) {
	p := t.enc
	var cyc uint64
	for i := 0; i < t.NEvents; i++ {
		d, n := binary.Uvarint(p)
		p = p[n:]
		cyc += d
		k := Kind(p[0])
		p = p[1:]
		tr, n := binary.Uvarint(p)
		p = p[n:]
		arg, n := binary.Uvarint(p)
		p = p[n:]
		arg2, n := binary.Uvarint(p)
		p = p[n:]
		fn(Event{Cycle: cyc, Kind: k, Track: uint16(tr), Arg: arg, Arg2: arg2})
	}
}
