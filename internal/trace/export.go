// Chrome/Perfetto trace_event JSON export. The output is the "JSON
// Array Format" that chrome://tracing and ui.perfetto.dev both load:
// one process per run, one named thread (track) per component, "X"
// complete events for host-annotated phases, "b"/"e" async spans for
// paired begin/end events (MSHR lifetimes, warp stalls, DMA
// transfers), "i" instants for point events, and "C" counter events
// for every time-series bucket. Timestamps map one simulated cycle to
// one microsecond, so the viewer's time axis reads directly in cycles.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Track ids in the exported process: tid 0 carries the phase spans,
// component tracks follow at tid = index+1.
const phaseTID = 0

// WriteChrome writes the timeline as trace_event JSON.
func (t *Timeline) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	first := true
	sep := func() {
		if first {
			first = false
			return
		}
		bw.WriteString(",\n")
	}
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")

	// Track name metadata.
	sep()
	writeMeta(bw, phaseTID, "phases")
	for i, name := range t.Tracks {
		sep()
		writeMeta(bw, i+1, name)
	}

	// Phase spans.
	for _, p := range t.Phases {
		sep()
		fmt.Fprintf(bw, `{"name":%s,"ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d}`,
			jstr(p.Name), p.Start, p.End-p.Start, phaseTID)
	}

	// Component events.
	t.forEachEvent(func(ev Event) {
		sep()
		tid := int(ev.Track) + 1
		name := ev.Kind.String()
		switch ev.Kind {
		case KAccessBegin, KWarpStall, KDMABegin:
			fmt.Fprintf(bw, `{"name":%s,"cat":%s,"ph":"b","id":%d,"ts":%d,"pid":1,"tid":%d,"args":{"arg":%d}}`,
				jstr(name), jstr(name), ev.Arg, ev.Cycle, tid, ev.Arg2)
		case KAccessEnd, KWarpResume, KDMAEnd:
			fmt.Fprintf(bw, `{"name":%s,"cat":%s,"ph":"e","id":%d,"ts":%d,"pid":1,"tid":%d}`,
				jstr(name), jstr(name), ev.Arg, ev.Cycle, tid)
		default:
			fmt.Fprintf(bw, `{"name":%s,"ph":"i","s":"t","ts":%d,"pid":1,"tid":%d,"args":{"arg":%d,"arg2":%d}}`,
				jstr(name), ev.Cycle, tid, ev.Arg, ev.Arg2)
		}
	})

	// Time-series as counter events, one sample per bucket over the
	// whole run. Counters report 0 for buckets past their last sample;
	// gauges carry the last sample forward.
	nb := t.numBuckets()
	for _, s := range t.Series {
		var last uint64
		for b := uint64(0); b < nb; b++ {
			v := uint64(0)
			if b < uint64(len(s.Vals)) {
				v = s.Vals[b]
			} else if s.Gauge {
				v = last
			}
			last = v
			sep()
			fmt.Fprintf(bw, `{"name":%s,"ph":"C","ts":%d,"pid":1,"args":{"value":%d}}`,
				jstr(s.Name), b*s.Bucket, v)
		}
	}

	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

func writeMeta(w io.Writer, tid int, name string) {
	fmt.Fprintf(w, `{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
		tid, jstr(name))
}

// jstr JSON-quotes a string (names come from workload tables and are
// arbitrary).
func jstr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
