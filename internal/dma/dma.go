// Package dma implements a D2MA-style DMA engine for scratchpads
// (paper Section 5.3): it preloads strided global tiles directly into
// the scratchpad (bypassing the L1 and the core's registers) and writes
// dirty tiles back out at kernel end.
//
// Following the paper's implementation: transfers block the compute
// unit at core granularity (all warps wait until the whole DMA
// completes), stores are supported in addition to loads, and the engine
// itself is conservatively charged no energy — only its scratchpad
// accesses and network traffic are. Unlike the stash, the engine must
// move the entire mapped tile whether or not the program touches it,
// and it cannot exploit reuse across kernels because the scratchpad is
// not globally visible.
package dma

import (
	"fmt"
	"sort"
	"strings"

	"stash/internal/check"
	"stash/internal/coh"
	"stash/internal/core"
	"stash/internal/llc"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/scratch"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/trace"
	"stash/internal/vm"
)

// Params configures the engine.
type Params struct {
	NumLLCBanks int
	// IssueGap is the pacing between successive line requests; the
	// burstiness of DMA traffic is a paper-observed artifact, so the
	// default keeps it at one request per cycle.
	IssueGap sim.Cycle
}

// DefaultParams returns the default engine configuration.
func DefaultParams() Params { return Params{NumLLCBanks: 16, IssueGap: 1} }

// transfer is one whole-tile Load or Store; it completes when every
// line it split into has finished. Pooled on the engine.
type transfer struct {
	remaining int
	done      func()
	tid       uint64 // pairs the begin/end trace span
}

// tileLine is one global line of a tile plan: soff[w] is the
// scratchpad word offset backing word w of the line, or -1.
type tileLine struct {
	line memdata.PAddr
	soff [memdata.WordsPerLine]int32
}

// tilePlan groups a tile's words by global line, kept sorted by line
// address. It replaces the old map-of-maps grouping: the engine reuses
// one plan per call, so planning a transfer allocates nothing in steady
// state.
type tilePlan struct {
	lines []tileLine
}

// getOrInsert returns the plan entry for line, inserting it in sorted
// position (with all scratchpad offsets reset) if absent.
func (p *tilePlan) getOrInsert(line memdata.PAddr) *tileLine {
	lo, hi := 0, len(p.lines)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.lines[mid].line < line {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.lines) && p.lines[lo].line == line {
		return &p.lines[lo]
	}
	if len(p.lines) < cap(p.lines) {
		p.lines = p.lines[:len(p.lines)+1]
	} else {
		p.lines = append(p.lines, tileLine{})
	}
	copy(p.lines[lo+1:], p.lines[lo:len(p.lines)-1])
	tl := &p.lines[lo]
	tl.line = line
	for i := range tl.soff {
		tl.soff[i] = -1
	}
	return tl
}

// transferRef is one line's share of a transfer. For loads, soff maps
// line words to scratchpad offsets and pending tracks words still to
// arrive; stores wait for a single WBAck. Pooled on the engine.
type transferRef struct {
	id      uint64
	t       *transfer
	isStore bool
	soff    [memdata.WordsPerLine]int32
	pending memdata.WordMask
}

// sendOp is a pooled deferred line request: its run closure is bound
// once, so pacing line packets onto the network allocates nothing.
type sendOp struct {
	e       *Engine
	isWrite bool
	line    memdata.PAddr
	mask    memdata.WordMask
	vals    [memdata.WordsPerLine]uint32
	run     func()
}

func (o *sendOp) fire() {
	e := o.e
	typ := coh.ReadReq
	if o.isWrite {
		typ = coh.WriteReq
	}
	p := &coh.Packet{
		Type: typ, Line: o.line, Mask: o.mask, Vals: o.vals,
		SrcNode: e.node, SrcComp: coh.ToDMA,
		DstNode: llc.BankOf(o.line, e.p.NumLLCBanks), DstComp: coh.ToLLC,
		MapIdx: -1,
	}
	e.sendFree = append(e.sendFree, o)
	coh.Send(e.net, p)
}

// Engine is one CU's DMA engine, attached to the node router as
// coh.ToDMA.
type Engine struct {
	eng  *sim.Engine
	net  *noc.Network
	node int
	p    Params
	sp   *scratch.Scratchpad
	as   *vm.AddressSpace

	nextID uint64
	// transfers holds, per line, the waiting per-line refs in ascending
	// id (issue) order, so responses complete oldest-first.
	transfers map[memdata.PAddr][]*transferRef

	plan       tilePlan // reused per-call grouping scratch
	refFree    []*transferRef
	refsFree   [][]*transferRef // retired per-line lists, capacity reused
	tFree      []*transfer
	sendFree   []*sendOp
	offScratch []int
	valScratch []uint32

	chk     *check.Checker
	refsOut int       // per-line refs issued but not yet finished
	extra   sim.Cycle // fault injection: added pacing per line

	loads  *stats.Counter
	stores *stats.Counter
	lines  *stats.Counter

	tsnk    *trace.Sink
	trLines *trace.Series
	nextTID uint64
}

// New builds a DMA engine serving the scratchpad sp.
func New(eng *sim.Engine, net *noc.Network, node int, name string, p Params, sp *scratch.Scratchpad, as *vm.AddressSpace, set *stats.Set) *Engine {
	return &Engine{
		eng:       eng,
		net:       net,
		node:      node,
		p:         p,
		sp:        sp,
		as:        as,
		transfers: make(map[memdata.PAddr][]*transferRef),
		loads:     set.Counter(fmt.Sprintf("dma.%s.loads", name)),
		stores:    set.Counter(fmt.Sprintf("dma.%s.stores", name)),
		lines:     set.Counter(fmt.Sprintf("dma.%s.lines", name)),
	}
}

// SetChecker attaches the self-check layer; a nil checker (the
// default) costs one nil comparison per completed line.
func (e *Engine) SetChecker(chk *check.Checker) { e.chk = chk }

// SetTrace attaches an event sink; a nil sink (the default) keeps
// transfer tracing a nil-check no-op.
func (e *Engine) SetTrace(snk *trace.Sink) {
	e.tsnk = snk
	e.trLines = snk.Series("lines")
}

// traceBegin opens a transfer span and records its line count in the
// time-series; traceEnd in finish closes it by the same transfer id.
func (e *Engine) traceBegin(t *transfer, nLines int) {
	if e.tsnk == nil {
		return
	}
	t.tid = e.nextTID
	e.nextTID++
	now := uint64(e.eng.Now())
	e.tsnk.Event(now, trace.KDMABegin, t.tid, uint64(nLines))
	e.trLines.Add(now, uint64(nLines))
}

// SetExtraDelay stretches the issue pacing by d extra cycles per line
// (fault injection). Zero restores the exact configured pacing.
func (e *Engine) SetExtraDelay(d sim.Cycle) { e.extra = d }

// Outstanding reports line transfers issued but not yet completed, for
// the watchdog's work-pending gate.
func (e *Engine) Outstanding() int { return e.refsOut }

// CheckQuiescent verifies the engine has fully drained: no per-line
// transfer refs checked out of the pool. It runs at phase boundaries.
func (e *Engine) CheckQuiescent() error {
	if e.refsOut != 0 {
		return fmt.Errorf("%d line transfers still outstanding", e.refsOut)
	}
	if n := len(e.transfers); n != 0 {
		return fmt.Errorf("%d lines still awaiting responses", n)
	}
	return nil
}

// DebugString renders in-flight transfer state for failure dumps.
// Map iteration is sorted so the dump is deterministic.
func (e *Engine) DebugString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "refs-out=%d lines-waiting=%d", e.refsOut, len(e.transfers))
	lines := make([]memdata.PAddr, 0, len(e.transfers))
	for line := range e.transfers {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		refs := e.transfers[line]
		fmt.Fprintf(&sb, "\nline %#x refs=%d", uint64(line), len(refs))
		for _, r := range refs {
			fmt.Fprintf(&sb, " [id=%d store=%v pending=%016b]", r.id, r.isStore, r.pending)
		}
	}
	return sb.String()
}

// planTile walks the tile and groups its words by global line in the
// engine's reused plan. The scratchpad destination of tile word i is
// region.StashBase+i.
func (e *Engine) planTile(region core.MapParams) *tilePlan {
	e.plan.lines = e.plan.lines[:0]
	for i := 0; i < region.Words(); i++ {
		va := region.VirtAddrOf(i)
		pa := e.as.Translate(va)
		tl := e.plan.getOrInsert(memdata.LineOf(pa))
		tl.soff[memdata.WordIndex(pa)] = int32(region.StashBase + i)
	}
	return &e.plan
}

func (e *Engine) newRef(t *transfer) *transferRef {
	var r *transferRef
	if n := len(e.refFree); n > 0 {
		r = e.refFree[n-1]
		e.refFree = e.refFree[:n-1]
	} else {
		r = &transferRef{}
	}
	r.id = e.nextID
	e.nextID++
	r.t = t
	r.isStore = false
	r.pending = 0
	e.refsOut++
	return r
}

func (e *Engine) newTransfer(remaining int, done func()) *transfer {
	var t *transfer
	if n := len(e.tFree); n > 0 {
		t = e.tFree[n-1]
		e.tFree = e.tFree[:n-1]
	} else {
		t = &transfer{}
	}
	t.remaining = remaining
	t.done = done
	return t
}

func (e *Engine) newSend() *sendOp {
	if n := len(e.sendFree); n > 0 {
		o := e.sendFree[n-1]
		e.sendFree = e.sendFree[:n-1]
		o.vals = [memdata.WordsPerLine]uint32{}
		return o
	}
	o := &sendOp{e: e}
	o.run = o.fire
	return o
}

// addRef appends ref to line's waiter list, reviving a retired list's
// capacity when the line has no list yet.
func (e *Engine) addRef(line memdata.PAddr, ref *transferRef) {
	lst, ok := e.transfers[line]
	if !ok {
		if n := len(e.refsFree); n > 0 {
			lst = e.refsFree[n-1][:0]
			e.refsFree = e.refsFree[:n-1]
		}
	}
	e.transfers[line] = append(lst, ref)
}

// Load preloads the whole tile into the scratchpad and calls done when
// every word has arrived. The entire tile is transferred regardless of
// what the kernel will touch.
func (e *Engine) Load(region core.MapParams, done func()) {
	e.loads.Inc()
	plan := e.planTile(region)
	if len(plan.lines) == 0 {
		e.eng.Schedule(1, done)
		return
	}
	t := e.newTransfer(len(plan.lines), done)
	e.traceBegin(t, len(plan.lines))
	gap := sim.Cycle(0)
	// Lines issue in address order (the plan is sorted); the pacing gap
	// would otherwise hand each line a different injection cycle from
	// run to run.
	for i := range plan.lines {
		tl := &plan.lines[i]
		e.lines.Inc()
		ref := e.newRef(t)
		ref.soff = tl.soff
		mask := memdata.WordMask(0)
		for wi, soff := range tl.soff {
			if soff >= 0 {
				mask |= memdata.Bit(wi)
			}
		}
		ref.pending = mask
		e.addRef(tl.line, ref)
		o := e.newSend()
		o.isWrite = false
		o.line, o.mask = tl.line, mask
		e.eng.Schedule(gap, o.run)
		gap += e.p.IssueGap + e.extra
	}
}

// Store writes the whole tile from the scratchpad out to global memory
// and calls done once every line is acknowledged.
func (e *Engine) Store(region core.MapParams, done func()) {
	e.stores.Inc()
	plan := e.planTile(region)
	if len(plan.lines) == 0 {
		e.eng.Schedule(1, done)
		return
	}
	t := e.newTransfer(len(plan.lines), done)
	e.traceBegin(t, len(plan.lines))
	gap := sim.Cycle(0)
	for i := range plan.lines {
		tl := &plan.lines[i]
		e.lines.Inc()
		ref := e.newRef(t)
		ref.isStore = true
		e.addRef(tl.line, ref)
		o := e.newSend()
		o.isWrite = true
		o.line = tl.line
		o.mask = 0
		// Read the words out of the scratchpad (charged like any
		// access), in word order within the line.
		spOffsets := e.offScratch[:0]
		for wi, soff := range tl.soff {
			if soff < 0 {
				continue
			}
			o.mask |= memdata.Bit(wi)
			spOffsets = append(spOffsets, int(soff))
		}
		e.offScratch = spOffsets[:0]
		read, _ := e.sp.Load(spOffsets)
		k := 0
		for wi, soff := range tl.soff {
			if soff < 0 {
				continue
			}
			o.vals[wi] = read[k]
			k++
		}
		e.eng.Schedule(gap, o.run)
		gap += e.p.IssueGap + e.extra
	}
}

// HandlePacket implements coh.Handler for the engine's responses.
// A line's data may arrive split across several DataResps (part from
// the LLC, part forwarded from a remote owner), so loads track a
// pending word mask per transfer.
func (e *Engine) HandlePacket(p *coh.Packet) {
	refs := e.transfers[p.Line]
	switch p.Type {
	case coh.DataResp:
		// A response may be redundant: when two transfers request the
		// same line, the first response can satisfy both, leaving the
		// second with nothing to fill. Fills apply oldest-first (the
		// per-line list is in issue order) so completion order is
		// reproducible.
		keep := refs[:0]
		for _, ref := range refs {
			got := ref.pending & p.Mask
			if got == 0 {
				keep = append(keep, ref)
				continue
			}
			offsets := e.offScratch[:0]
			vals := e.valScratch[:0]
			for wi := 0; wi < memdata.WordsPerLine; wi++ {
				if got.Has(wi) {
					offsets = append(offsets, int(ref.soff[wi]))
					vals = append(vals, p.Vals[wi])
				}
			}
			e.offScratch, e.valScratch = offsets[:0], vals[:0]
			e.sp.Store(offsets, vals)
			ref.pending &^= got
			if ref.pending == 0 {
				e.finish(ref)
			} else {
				keep = append(keep, ref)
			}
		}
		refs = keep
	case coh.WBAck:
		// One ack completes the oldest outstanding store to this line.
		idx := -1
		for i, ref := range refs {
			if ref.isStore {
				idx = i
				break
			}
		}
		if idx < 0 {
			panic(fmt.Sprintf("dma: WBAck for line %#x with no outstanding store", uint64(p.Line)))
		}
		ref := refs[idx]
		refs = append(refs[:idx], refs[idx+1:]...)
		e.finish(ref)
	default:
		panic("dma: unexpected packet " + p.Type.String())
	}
	if len(refs) == 0 {
		delete(e.transfers, p.Line)
		e.refsFree = append(e.refsFree, refs)
	} else {
		e.transfers[p.Line] = refs
	}
}

func (e *Engine) finish(ref *transferRef) {
	e.chk.Progress() // a DMA line transfer completed
	e.refsOut--
	t := ref.t
	ref.t = nil
	e.refFree = append(e.refFree, ref)
	t.remaining--
	if t.remaining == 0 {
		e.tsnk.Event(uint64(e.eng.Now()), trace.KDMAEnd, t.tid, 0)
		e.eng.Schedule(0, t.done)
		t.done = nil
		e.tFree = append(e.tFree, t)
	}
}
