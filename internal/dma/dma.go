// Package dma implements a D2MA-style DMA engine for scratchpads
// (paper Section 5.3): it preloads strided global tiles directly into
// the scratchpad (bypassing the L1 and the core's registers) and writes
// dirty tiles back out at kernel end.
//
// Following the paper's implementation: transfers block the compute
// unit at core granularity (all warps wait until the whole DMA
// completes), stores are supported in addition to loads, and the engine
// itself is conservatively charged no energy — only its scratchpad
// accesses and network traffic are. Unlike the stash, the engine must
// move the entire mapped tile whether or not the program touches it,
// and it cannot exploit reuse across kernels because the scratchpad is
// not globally visible.
package dma

import (
	"fmt"
	"maps"
	"slices"

	"stash/internal/coh"
	"stash/internal/core"
	"stash/internal/llc"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/scratch"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/vm"
)

// Params configures the engine.
type Params struct {
	NumLLCBanks int
	// IssueGap is the pacing between successive line requests; the
	// burstiness of DMA traffic is a paper-observed artifact, so the
	// default keeps it at one request per cycle.
	IssueGap sim.Cycle
}

// DefaultParams returns the default engine configuration.
func DefaultParams() Params { return Params{NumLLCBanks: 16, IssueGap: 1} }

type transfer struct {
	remaining int
	done      func()
}

// Engine is one CU's DMA engine, attached to the node router as
// coh.ToDMA.
type Engine struct {
	eng  *sim.Engine
	net  *noc.Network
	node int
	p    Params
	sp   *scratch.Scratchpad
	as   *vm.AddressSpace

	nextID    uint64
	transfers map[memdata.PAddr]map[uint64]*transferRef // line -> waiting transfers
	loads     *stats.Counter
	stores    *stats.Counter
	lines     *stats.Counter
}

type transferRef struct {
	t       *transfer
	offsets map[int]int      // word index in line -> scratchpad word offset
	pending memdata.WordMask // words still to arrive (loads) / one-shot ack (stores: 0)
}

// New builds a DMA engine serving the scratchpad sp.
func New(eng *sim.Engine, net *noc.Network, node int, name string, p Params, sp *scratch.Scratchpad, as *vm.AddressSpace, set *stats.Set) *Engine {
	return &Engine{
		eng:       eng,
		net:       net,
		node:      node,
		p:         p,
		sp:        sp,
		as:        as,
		transfers: make(map[memdata.PAddr]map[uint64]*transferRef),
		loads:     set.Counter(fmt.Sprintf("dma.%s.loads", name)),
		stores:    set.Counter(fmt.Sprintf("dma.%s.stores", name)),
		lines:     set.Counter(fmt.Sprintf("dma.%s.lines", name)),
	}
}

// lineGroups walks the tile and groups its words by global line.
// The scratchpad destination of tile word i is region.StashBase+i.
func (e *Engine) lineGroups(region core.MapParams) map[memdata.PAddr]map[int]int {
	groups := make(map[memdata.PAddr]map[int]int)
	for i := 0; i < region.Words(); i++ {
		va := region.VirtAddrOf(i)
		pa := e.as.Translate(va)
		line := memdata.LineOf(pa)
		if groups[line] == nil {
			groups[line] = make(map[int]int)
		}
		groups[line][memdata.WordIndex(pa)] = region.StashBase + i
	}
	return groups
}

// Load preloads the whole tile into the scratchpad and calls done when
// every word has arrived. The entire tile is transferred regardless of
// what the kernel will touch.
func (e *Engine) Load(region core.MapParams, done func()) {
	e.loads.Inc()
	groups := e.lineGroups(region)
	t := &transfer{remaining: len(groups), done: done}
	if t.remaining == 0 {
		e.eng.Schedule(1, done)
		return
	}
	gap := sim.Cycle(0)
	// Lines issue in address order; the pacing gap would otherwise hand
	// each line a different injection cycle from run to run.
	for _, line := range slices.Sorted(maps.Keys(groups)) {
		line, offsets := line, groups[line]
		e.lines.Inc()
		id := e.nextID
		e.nextID++
		if e.transfers[line] == nil {
			e.transfers[line] = make(map[uint64]*transferRef)
		}
		mask := memdata.WordMask(0)
		for wi := range offsets {
			mask |= memdata.Bit(wi)
		}
		e.transfers[line][id] = &transferRef{t: t, offsets: offsets, pending: mask}
		e.eng.Schedule(gap, func() {
			coh.Send(e.net, &coh.Packet{
				Type: coh.ReadReq, Line: line, Mask: mask,
				SrcNode: e.node, SrcComp: coh.ToDMA,
				DstNode: llc.BankOf(line, e.p.NumLLCBanks), DstComp: coh.ToLLC,
				MapIdx: -1,
			})
		})
		gap += e.p.IssueGap
	}
}

// Store writes the whole tile from the scratchpad out to global memory
// and calls done once every line is acknowledged.
func (e *Engine) Store(region core.MapParams, done func()) {
	e.stores.Inc()
	groups := e.lineGroups(region)
	t := &transfer{remaining: len(groups), done: done}
	if t.remaining == 0 {
		e.eng.Schedule(1, done)
		return
	}
	gap := sim.Cycle(0)
	for _, line := range slices.Sorted(maps.Keys(groups)) {
		line, offsets := line, groups[line]
		e.lines.Inc()
		id := e.nextID
		e.nextID++
		if e.transfers[line] == nil {
			e.transfers[line] = make(map[uint64]*transferRef)
		}
		e.transfers[line][id] = &transferRef{t: t}
		var mask memdata.WordMask
		var vals [memdata.WordsPerLine]uint32
		spOffsets := make([]int, 0, len(offsets))
		order := make([]int, 0, len(offsets))
		for wi, soff := range offsets {
			mask |= memdata.Bit(wi)
			spOffsets = append(spOffsets, soff)
			order = append(order, wi)
		}
		// Read the words out of the scratchpad (charged like any access).
		read, _ := e.sp.Load(spOffsets)
		for k, wi := range order {
			vals[wi] = read[k]
		}
		e.eng.Schedule(gap, func() {
			coh.Send(e.net, &coh.Packet{
				Type: coh.WriteReq, Line: line, Mask: mask, Vals: vals,
				SrcNode: e.node, SrcComp: coh.ToDMA,
				DstNode: llc.BankOf(line, e.p.NumLLCBanks), DstComp: coh.ToLLC,
				MapIdx: -1,
			})
		})
		gap += e.p.IssueGap
	}
}

// HandlePacket implements coh.Handler for the engine's responses.
// A line's data may arrive split across several DataResps (part from
// the LLC, part forwarded from a remote owner), so loads track a
// pending word mask per transfer.
func (e *Engine) HandlePacket(p *coh.Packet) {
	refs := e.transfers[p.Line]
	switch p.Type {
	case coh.DataResp:
		// A response may be redundant: when two transfers request the
		// same line, the first response can satisfy both, leaving the
		// second with nothing to fill. Fills apply oldest-first so
		// completion order is reproducible.
		for _, id := range slices.Sorted(maps.Keys(refs)) {
			ref := refs[id]
			got := ref.pending & p.Mask
			if got == 0 {
				continue
			}
			offsets := make([]int, 0, got.Count())
			vals := make([]uint32, 0, got.Count())
			for wi, soff := range ref.offsets {
				if got.Has(wi) {
					offsets = append(offsets, soff)
					vals = append(vals, p.Vals[wi])
				}
			}
			e.sp.Store(offsets, vals)
			ref.pending &^= got
			if ref.pending == 0 {
				delete(refs, id)
				e.finish(ref)
			}
		}
	case coh.WBAck:
		// One ack completes the oldest outstanding store to this line.
		var oldest uint64
		first := true
		for id, ref := range refs {
			if ref.offsets != nil {
				continue // a load, not a store
			}
			if first || id < oldest {
				oldest, first = id, false
			}
		}
		if first {
			panic(fmt.Sprintf("dma: WBAck for line %#x with no outstanding store", uint64(p.Line)))
		}
		ref := refs[oldest]
		delete(refs, oldest)
		e.finish(ref)
	default:
		panic("dma: unexpected packet " + p.Type.String())
	}
	if len(refs) == 0 {
		delete(e.transfers, p.Line)
	}
}

func (e *Engine) finish(ref *transferRef) {
	ref.t.remaining--
	if ref.t.remaining == 0 {
		e.eng.Schedule(0, ref.t.done)
	}
}
