package dma

import (
	"testing"

	"stash/internal/cache"
	"stash/internal/coh"
	"stash/internal/core"
	"stash/internal/energy"
	"stash/internal/llc"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/scratch"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/vm"
)

type rig struct {
	eng  *sim.Engine
	net  *noc.Network
	mem  *memdata.Memory
	as   *vm.AddressSpace
	sp   *scratch.Scratchpad
	dma  *Engine
	l1   *cache.Cache
	acct *energy.Account
	set  *stats.Set
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	net := noc.New(eng, 4, 4, acct, set)
	mem := memdata.NewMemory()
	as := vm.NewAddressSpace()
	r := &rig{eng: eng, net: net, mem: mem, as: as, acct: acct, set: set}
	r.sp = scratch.New("d", scratch.DefaultParams(), acct, set)
	for n := 0; n < 16; n++ {
		router := coh.NewRouter()
		router.Attach(coh.ToLLC, llc.NewBank(eng, net, n, llc.DefaultParams(), mem, acct, set))
		switch n {
		case 1:
			r.dma = New(eng, net, n, "d", DefaultParams(), r.sp, as, set)
			router.Attach(coh.ToDMA, r.dma)
		case 2:
			r.l1 = cache.New(eng, net, n, "peer", cache.DefaultParams(), acct, set)
			router.Attach(coh.ToL1, r.l1)
		}
		net.Register(n, func(m *noc.Message) { router.Deliver(m.Payload.(*coh.Packet)) })
	}
	return r
}

func (r *rig) region(base memdata.VAddr, n, spBase int) core.MapParams {
	return core.MapParams{
		StashBase:   spBase,
		GlobalBase:  base,
		FieldBytes:  4,
		ObjectBytes: 4,
		RowElems:    n,
		NumRows:     1,
		Coherent:    true,
	}
}

func TestDMALoadFillsScratchpad(t *testing.T) {
	r := newRig(t)
	base := r.as.Alloc(32 * 4)
	for i := 0; i < 32; i++ {
		r.mem.StoreWord(r.as.Translate(base+memdata.VAddr(4*i)), uint32(200+i))
	}
	done := false
	r.dma.Load(r.region(base, 32, 0), func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("DMA load never completed")
	}
	for i := 0; i < 32; i++ {
		if got := r.sp.Peek(i); got != uint32(200+i) {
			t.Fatalf("scratch[%d] = %d, want %d", i, got, 200+i)
		}
	}
	if r.set.Sum("dma.d.lines") != 2 {
		t.Fatalf("DMA lines = %d, want 2", r.set.Sum("dma.d.lines"))
	}
}

func TestDMAStoreWritesGlobal(t *testing.T) {
	r := newRig(t)
	base := r.as.Alloc(16 * 4)
	for i := 0; i < 16; i++ {
		r.sp.Poke(i, uint32(300+i))
	}
	done := false
	r.dma.Store(r.region(base, 16, 0), func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("DMA store never completed")
	}
	// The data must be visible to a peer through the coherent hierarchy.
	pa := r.as.Translate(base + 4)
	line := memdata.LineOf(pa)
	var got uint32
	r.l1.Load(line, memdata.Bit(1), func(vals [memdata.WordsPerLine]uint32) { got = vals[1] })
	r.eng.Run()
	if got != 301 {
		t.Fatalf("peer read after DMA store = %d, want 301", got)
	}
}

func TestDMALoadForwardsFromOwner(t *testing.T) {
	r := newRig(t)
	base := r.as.Alloc(16 * 4)
	// Peer L1 owns word 0 with value 42.
	pa := r.as.Translate(base)
	var vals [memdata.WordsPerLine]uint32
	vals[0] = 42
	r.l1.Store(memdata.LineOf(pa), memdata.Bit(0), vals, func() {})
	r.eng.Run()
	done := false
	r.dma.Load(r.region(base, 16, 0), func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("DMA load with remote owner never completed")
	}
	if got := r.sp.Peek(0); got != 42 {
		t.Fatalf("scratch[0] = %d, want 42 (forwarded from owner)", got)
	}
}

func TestDMAChargesScratchpadEnergy(t *testing.T) {
	r := newRig(t)
	base := r.as.Alloc(16 * 4)
	r.dma.Load(r.region(base, 16, 0), func() {})
	r.eng.Run()
	if r.acct.Count(energy.ScratchAccess) == 0 {
		t.Fatal("DMA fill did not charge scratchpad accesses")
	}
	if r.acct.Count(energy.L1Hit)+r.acct.Count(energy.L1Miss) != 0 {
		t.Fatal("DMA transfer went through the L1")
	}
}

func TestDMAStridedAoSTransfersOnlyField(t *testing.T) {
	r := newRig(t)
	n := 8
	base := r.as.Alloc(n * 64)
	for i := 0; i < n; i++ {
		r.mem.StoreWord(r.as.Translate(base+memdata.VAddr(64*i)), uint32(i))
	}
	region := core.MapParams{
		StashBase: 0, GlobalBase: base,
		FieldBytes: 4, ObjectBytes: 64,
		RowElems: n, NumRows: 1, Coherent: true,
	}
	done := false
	r.dma.Load(region, func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("strided DMA never completed")
	}
	for i := 0; i < n; i++ {
		if got := r.sp.Peek(i); got != uint32(i) {
			t.Fatalf("scratch[%d] = %d, want %d", i, got, i)
		}
	}
	// Only one word per line is requested; read traffic carries 8
	// single-word responses.
	if r.set.Sum("dma.d.lines") != uint64(n) {
		t.Fatalf("lines = %d, want %d", r.set.Sum("dma.d.lines"), n)
	}
}

func TestConcurrentTransfersSameLine(t *testing.T) {
	r := newRig(t)
	base := r.as.Alloc(16 * 4)
	for i := 0; i < 16; i++ {
		r.mem.StoreWord(r.as.Translate(base+memdata.VAddr(4*i)), uint32(i))
	}
	doneCount := 0
	r.dma.Load(r.region(base, 16, 0), func() { doneCount++ })
	r.dma.Load(r.region(base, 16, 64), func() { doneCount++ })
	r.eng.Run()
	if doneCount != 2 {
		t.Fatalf("completed transfers = %d, want 2", doneCount)
	}
	if r.sp.Peek(64+5) != 5 {
		t.Fatalf("second copy wrong: %d", r.sp.Peek(64+5))
	}
}
