package frontier

import (
	"reflect"
	"testing"
)

func TestDominates(t *testing.T) {
	for _, tc := range []struct {
		name string
		a, b []float64
		want bool
	}{
		{"strictly better everywhere", []float64{1, 1}, []float64{2, 2}, true},
		{"better on one equal on other", []float64{1, 2}, []float64{2, 2}, true},
		{"equal vectors", []float64{2, 2}, []float64{2, 2}, false},
		{"trade-off", []float64{1, 3}, []float64{3, 1}, false},
		{"worse", []float64{3, 3}, []float64{1, 1}, false},
	} {
		if got := Dominates(Point{Metrics: tc.a}, Point{Metrics: tc.b}); got != tc.want {
			t.Errorf("%s: Dominates(%v, %v) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestExtract(t *testing.T) {
	pts := []Point{
		{ID: "a", Metrics: []float64{1, 5, 3}},
		{ID: "b", Metrics: []float64{2, 2, 2}},
		{ID: "c", Metrics: []float64{3, 3, 3}}, // dominated by b
		{ID: "d", Metrics: []float64{5, 1, 4}},
		{ID: "e", Metrics: []float64{2, 2, 2}}, // duplicate of b: both kept
	}
	front, err := Extract(pts)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, p := range front {
		ids = append(ids, p.ID)
	}
	if want := []string{"a", "b", "d", "e"}; !reflect.DeepEqual(ids, want) {
		t.Errorf("frontier = %v, want %v (input order, duplicates kept)", ids, want)
	}
}

func TestExtractEmptyAndErrors(t *testing.T) {
	if front, err := Extract(nil); err != nil || front != nil {
		t.Errorf("Extract(nil) = %v, %v; want nil, nil", front, err)
	}
	if _, err := Extract([]Point{{ID: "x"}}); err == nil {
		t.Error("empty objective vector accepted")
	}
	if _, err := Extract([]Point{
		{ID: "x", Metrics: []float64{1}},
		{ID: "y", Metrics: []float64{1, 2}},
	}); err == nil {
		t.Error("ragged objective vectors accepted")
	}
}

// TestExtractDifferential checks Extract against a direct
// definition-based oracle on a deterministic pseudo-random cloud.
func TestExtractDifferential(t *testing.T) {
	// xorshift-style deterministic generator; no time or global RNG.
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1000) / 1000
	}
	var pts []Point
	for i := 0; i < 200; i++ {
		pts = append(pts, Point{
			ID:      string(rune('A' + i%26)),
			Metrics: []float64{next(), next(), next()},
		})
	}
	front, err := Extract(pts)
	if err != nil {
		t.Fatal(err)
	}
	inFront := make(map[int]bool)
	k := 0
	for i, p := range pts {
		if k < len(front) && front[k].ID == p.ID && reflect.DeepEqual(front[k].Metrics, p.Metrics) {
			inFront[i] = true
			k++
		}
	}
	if k != len(front) {
		t.Fatalf("frontier is not an ordered subsequence of the input")
	}
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if dominated == inFront[i] {
			t.Errorf("point %d (%v): dominated=%v but inFront=%v", i, p.Metrics, dominated, inFront[i])
		}
	}
	if len(front) == 0 || len(front) == len(pts) {
		t.Fatalf("degenerate frontier size %d of %d", len(front), len(pts))
	}
}
