// Package frontier extracts Pareto frontiers from design-space
// exploration results. It is metric-agnostic: every point carries a
// vector of objectives, all minimized (negate a metric to maximize it),
// and extraction keeps exactly the points no other point strictly
// dominates.
package frontier

import "fmt"

// Point is one design-space cell: an opaque identifier plus its
// objective vector. All objectives are minimized.
type Point struct {
	// ID names the cell (e.g. "reuse/Stash/stt-mram/32KB"); frontier
	// never interprets it.
	ID string
	// Metrics is the objective vector. Every point in one Extract call
	// must have the same length.
	Metrics []float64
}

// Dominates reports whether a is at least as good as b on every
// objective and strictly better on at least one. Equal vectors do not
// dominate each other, so duplicated designs both survive extraction.
func Dominates(a, b Point) bool {
	better := false
	for i, m := range a.Metrics {
		if m > b.Metrics[i] {
			return false
		}
		if m < b.Metrics[i] {
			better = true
		}
	}
	return better
}

// Extract returns the Pareto-optimal subset of points: those not
// strictly dominated by any other point. The result preserves input
// order, so extraction is deterministic for a deterministic grid. It
// errors if the objective vectors are empty or ragged.
func Extract(points []Point) ([]Point, error) {
	if len(points) == 0 {
		return nil, nil
	}
	dim := len(points[0].Metrics)
	if dim == 0 {
		return nil, fmt.Errorf("frontier: point %q has no objectives", points[0].ID)
	}
	for _, p := range points {
		if len(p.Metrics) != dim {
			return nil, fmt.Errorf("frontier: point %q has %d objectives, want %d", p.ID, len(p.Metrics), dim)
		}
	}
	var front []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front, nil
}
