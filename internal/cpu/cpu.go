// Package cpu models a simple in-order CPU core executing width-1
// programs of the shared mini ISA through a coherent L1. Per the
// paper's methodology (Section 5.2), CPU core and CPU L1 energies are
// not measured — only the network traffic the CPU induces is — so CPU
// L1s are built with energy charging disabled.
package cpu

import (
	"fmt"

	"stash/internal/cache"
	"stash/internal/isa"
	"stash/internal/memdata"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/trace"
	"stash/internal/vm"
)

// Core is one CPU core. It is strictly in-order with at most one
// outstanding memory access, so its step and completion callbacks are
// bound once at construction and the access path never allocates.
type Core struct {
	eng  *sim.Engine
	node int
	as   *vm.AddressSpace
	l1   *cache.Cache

	warp     *isa.Warp
	warpPool *isa.Warp // reused across Run calls
	done     func()

	stepFn    func()
	storeDone func()
	loadDone  func(vals [memdata.WordsPerLine]uint32)
	loadPend  *isa.Pending // in-flight load awaiting its L1 callback
	loadWord  int          // word index the in-flight load reads
	loadBuf   [1]uint32

	instrs   *stats.Counter
	trInstrs *trace.Series
}

// New builds a core over the given (CPU) L1.
func New(eng *sim.Engine, node int, name string, as *vm.AddressSpace, l1 *cache.Cache, set *stats.Set) *Core {
	c := &Core{
		eng:    eng,
		node:   node,
		as:     as,
		l1:     l1,
		instrs: set.Counter(fmt.Sprintf("cpu.%s.instructions", name)),
	}
	c.stepFn = c.step
	c.storeDone = func() { c.eng.Schedule(0, c.stepFn) }
	c.loadDone = func(vals [memdata.WordsPerLine]uint32) {
		p := c.loadPend
		c.loadPend = nil
		c.loadBuf[0] = vals[c.loadWord]
		c.warp.CompleteLoad(p, c.loadBuf[:])
		c.eng.Schedule(1, c.stepFn)
	}
	return c
}

// L1 returns the core's cache.
func (c *Core) L1() *cache.Cache { return c.l1 }

// SetTrace attaches an event sink; a nil sink (the default) keeps the
// step path a nil-check no-op.
func (c *Core) SetTrace(snk *trace.Sink) { c.trInstrs = snk.Series("instructions") }

// Run executes prog as thread threadID of numThreads (the program reads
// its identity from SpecCtaid/SpecNctaid) and calls done when the
// program has finished and the L1 has drained. The core self-invalidates
// first: starting a phase is an acquire under DeNovo.
func (c *Core) Run(prog *isa.Program, threadID, numThreads int, done func()) {
	if c.warp != nil {
		panic("cpu: core already running")
	}
	c.l1.SelfInvalidate()
	cfg := isa.WarpConfig{
		Width:    1,
		BlockDim: 1,
		BlockID:  threadID,
		GridDim:  numThreads,
		// A width-1 in-order core retires back-to-back single-cycle ALU
		// ops with nothing contending for the issue slot, so executing a
		// straight-line run as one fused superinstruction (Cycles = run
		// length) is timing-exact.
		FuseALU: true,
	}
	if c.warpPool == nil {
		c.warpPool = isa.NewWarp(prog, cfg)
	} else {
		c.warpPool.Reset(prog, cfg)
	}
	c.warp = c.warpPool
	c.done = done
	c.eng.Schedule(1, c.stepFn)
}

func (c *Core) step() {
	p := c.warp.Step()
	if p.Kind != isa.PendDone {
		// A fused ALU run retires p.Fused instructions in one Step.
		c.instrs.Add(uint64(p.Fused))
		c.trInstrs.Add(uint64(c.eng.Now()), uint64(p.Fused))
	}
	switch p.Kind {
	case isa.PendDone:
		c.finish()
	case isa.PendALU:
		c.eng.Schedule(sim.Cycle(p.Cycles), c.stepFn)
	case isa.PendLoad:
		c.load(p)
	case isa.PendStore:
		c.store(p)
	default:
		panic(fmt.Sprintf("cpu: unsupported operation kind %d on a CPU core", p.Kind))
	}
}

func (c *Core) load(p *isa.Pending) {
	if p.Space != isa.Global {
		panic("cpu: CPU cores have no scratchpad or stash")
	}
	if len(p.Lanes) == 0 {
		c.eng.Schedule(1, c.stepFn)
		return
	}
	pa := c.as.Translate(memdata.VAddr(p.Addrs[0]))
	line := memdata.LineOf(pa)
	w := memdata.WordIndex(pa)
	c.loadPend = p
	c.loadWord = w
	c.l1.Load(line, memdata.Bit(w), c.loadDone)
}

func (c *Core) store(p *isa.Pending) {
	if p.Space != isa.Global {
		panic("cpu: CPU cores have no scratchpad or stash")
	}
	if len(p.Lanes) == 0 {
		c.eng.Schedule(1, c.stepFn)
		return
	}
	pa := c.as.Translate(memdata.VAddr(p.Addrs[0]))
	line := memdata.LineOf(pa)
	w := memdata.WordIndex(pa)
	var vals [memdata.WordsPerLine]uint32
	vals[w] = p.Vals[0]
	// Continue once the L1 accepts the store (it may replay under
	// store-buffer pressure), preserving same-address store order.
	c.l1.Store(line, memdata.Bit(w), vals, c.storeDone)
}

func (c *Core) finish() {
	done := c.done
	c.warp = nil
	c.done = nil
	c.l1.Drain(done)
}
