package cpu

import (
	"testing"

	"stash/internal/cache"
	"stash/internal/coh"
	"stash/internal/energy"
	"stash/internal/isa"
	"stash/internal/llc"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/vm"
)

type rig struct {
	eng   *sim.Engine
	mem   *memdata.Memory
	as    *vm.AddressSpace
	core  *Core
	set   *stats.Set
	banks []*llc.Bank
	nw    *noc.Network
}

type sink struct{}

func (sink) HandlePacket(*coh.Packet) {}

// read returns the coherent value of va (LLC copy if resident, else DRAM).
func (r *rig) read(va memdata.VAddr) uint32 {
	pa := r.as.Translate(va)
	b := r.banks[llc.BankOf(memdata.LineOf(pa), 16)]
	if v, owner, ok := b.Peek(pa); ok {
		if owner != nil {
			panic("rig.read: word still registered")
		}
		return v
	}
	return r.mem.LoadWord(pa)
}

// write deposits a value as another core's acknowledged write would:
// straight into DRAM, evicting any LLC copy is unnecessary because the
// tests write lines the LLC has not cached dirty.
func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	net := noc.New(eng, 4, 4, acct, set)
	mem := memdata.NewMemory()
	as := vm.NewAddressSpace()
	r := &rig{eng: eng, mem: mem, as: as, set: set, nw: net}
	for n := 0; n < 16; n++ {
		router := coh.NewRouter()
		bank := llc.NewBank(eng, net, n, llc.DefaultParams(), mem, acct, set)
		r.banks = append(r.banks, bank)
		router.Attach(coh.ToLLC, bank)
		if n == 3 {
			router.Attach(coh.ToDMA, sink{}) // ack target for test writes
		}
		if n == 1 {
			p := cache.DefaultParams()
			p.ChargeEnergy = false
			l1 := cache.New(eng, net, n, "cpu1", p, acct, set)
			router.Attach(coh.ToL1, l1)
			r.core = New(eng, n, "cpu1", as, l1, set)
		}
		net.Register(n, func(m *noc.Message) { router.Deliver(m.Payload.(*coh.Packet)) })
	}
	return r
}

func TestCoreRunsProgram(t *testing.T) {
	r := newRig(t)
	eng, mem, as, c, set := r.eng, r.mem, r.as, r.core, r.set
	base := as.Alloc(16 * 4)
	for i := 0; i < 16; i++ {
		mem.StoreWord(as.Translate(base+memdata.VAddr(4*i)), uint32(i))
	}
	b := isa.NewBuilder()
	i, addr, v, sum, sumAddr := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.MovImm(sum, 0)
	b.For(i, 16)
	b.MulImm(addr, i, 4)
	b.AddImm(addr, addr, int64(base))
	b.LdGlobal(v, addr, 0)
	b.Add(sum, sum, v)
	b.EndFor()
	out := as.Alloc(4)
	b.MovImm(sumAddr, int64(out))
	b.StGlobal(sumAddr, 0, sum)
	finished := false
	c.Run(b.MustBuild(), 0, 1, func() { finished = true })
	eng.Run()
	if !finished {
		t.Fatal("program did not finish")
	}
	c.L1().WritebackAll()
	eng.Run()
	if got := r.read(out); got != 120 {
		t.Fatalf("sum = %d, want 120", got)
	}
	if set.Sum("cpu.cpu1.instructions") == 0 {
		t.Fatal("no instructions counted")
	}
}

func TestCoreThreadIdentity(t *testing.T) {
	r := newRig(t)
	eng, as, c := r.eng, r.as, r.core
	out := as.Alloc(4)
	b := isa.NewBuilder()
	id, addr := b.Reg(), b.Reg()
	b.Special(id, isa.SpecCtaid)
	b.MovImm(addr, int64(out))
	b.StGlobal(addr, 0, id)
	c.Run(b.MustBuild(), 7, 15, func() {})
	eng.Run()
	c.L1().WritebackAll()
	eng.Run()
	if got := r.read(out); got != 7 {
		t.Fatalf("thread id = %d, want 7", got)
	}
}

func TestCoreSelfInvalidatesOnRun(t *testing.T) {
	r := newRig(t)
	eng, mem, as, c := r.eng, r.mem, r.as, r.core
	base := as.Alloc(4)
	mem.StoreWord(as.Translate(base), 1)
	// A producer L1 on another node writes through the protocol.
	// (Registered by node 2; the CPU's read must forward to it, which
	// only happens if the CPU drops its stale Shared copy at Run.)
	read := func() uint32 {
		out := as.Alloc(4)
		b := isa.NewBuilder()
		addr, v, oaddr := b.Reg(), b.Reg(), b.Reg()
		b.MovImm(addr, int64(base))
		b.LdGlobal(v, addr, 0)
		b.MovImm(oaddr, int64(out))
		b.StGlobal(oaddr, 0, v)
		c.Run(b.MustBuild(), 0, 1, func() {})
		eng.Run()
		c.L1().WritebackAll()
		eng.Run()
		return r.read(out)
	}
	if got := read(); got != 1 {
		t.Fatalf("first read = %d, want 1", got)
	}
	// Another core's write lands at the LLC (via an uncached write).
	var vals [memdata.WordsPerLine]uint32
	pa := as.Translate(base)
	vals[memdata.WordIndex(pa)] = 2
	coh.Send(r.nw, &coh.Packet{
		Type: coh.WriteReq, Line: memdata.LineOf(pa),
		Mask: memdata.Bit(memdata.WordIndex(pa)), Vals: vals,
		SrcNode: 3, SrcComp: coh.ToDMA,
		DstNode: llc.BankOf(memdata.LineOf(pa), 16), DstComp: coh.ToLLC, MapIdx: -1,
	})
	eng.Run()
	// Cached copy must not be reused across Run boundaries (acquire).
	if got := read(); got != 2 {
		t.Fatalf("second read = %d, want 2 (stale cache not self-invalidated)", got)
	}
}

func TestRejectsLocalMemoryOps(t *testing.T) {
	r := newRig(t)
	eng, c := r.eng, r.core
	b := isa.NewBuilder()
	v := b.Reg()
	b.LdShared(v, v, 0)
	c.Run(b.MustBuild(), 0, 1, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("scratchpad op on CPU did not panic")
		}
	}()
	eng.Run()
}
