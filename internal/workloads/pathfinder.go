package workloads

import (
	"stash/internal/core"
	"stash/internal/gpu"
	"stash/internal/memdata"
	"stash/internal/system"
)

// Pathfinder is the Rodinia dynamic-programming grid walk: row r's cost
// is cost[r][c] = wall[r][c] + min(prev[c-1], prev[c], prev[c+1]).
// The paper runs 10 x 100K; we run 10 x 16K columns (the per-row kernel
// structure, halo'd scratchpad row tiles, and ping-pong reuse are
// unchanged; only the column count is scaled for simulation time —
// recorded in DESIGN.md). The previous-row slice is the application's
// scratchpad tile; the wall row is read globally (tiled in the G
// configurations).
func Pathfinder() *Workload {
	const (
		cols     = 16384
		rows     = 10
		blockDim = 256
		grid     = cols / blockDim
		pad      = 1
		width    = cols + 2*pad
		inf      = uint32(1) << 30
	)
	var wall memdata.VAddr
	var rowBuf [2]memdata.VAddr
	var wallRef []uint32
	w := &Workload{Name: "pathfinder", Micro: false}

	buildRow := func(org system.MemOrg, r int, src, dst memdata.VAddr) *gpu.Kernel {
		rowTile := func(base memdata.VAddr, in, out bool) TileSpec {
			return TileSpec{
				Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: blockDim, NumRows: 1},
				GBase: func(e *Env) int {
					reg := e.B.Reg()
					e.B.MulImm(reg, e.Ctaid(), blockDim*4)
					e.B.AddImm(reg, reg, int64(base+pad*4))
					return reg
				},
				In: in, Out: out,
			}
		}
		wallTile := TileSpec{ // wall row slice: global in the original application
			Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: blockDim, NumRows: 1},
			GBase: func(e *Env) int {
				reg := e.B.Reg()
				e.B.MulImm(reg, e.Ctaid(), blockDim*4)
				e.B.AddImm(reg, reg, int64(wall)+int64(r*cols*4))
				return reg
			},
			In: true, GOnly: true,
		}
		// Ping-pong local placement: this kernel's input tile occupies
		// exactly the allocation the previous kernel's output tile used,
		// with the same global mapping, so the stash's replication
		// detection (Section 4.5) reuses the registered entry and the
		// data hits without any global traffic. The two halo words are
		// read globally.
		var tiles []TileSpec
		srcIdx, dstIdx := 0, 1
		if r%2 == 0 {
			tiles = []TileSpec{rowTile(src, true, false), rowTile(dst, false, true), wallTile}
		} else {
			tiles = []TileSpec{rowTile(dst, false, true), rowTile(src, true, false), wallTile}
			srcIdx, dstIdx = 1, 0
		}
		return BuildKernel(org, blockDim, grid, tiles, func(e *Env) {
			b := e.B
			t := e.Tid()
			left, mid, right, best, cond, wv, off, gaddr := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			e.LdTile(mid, srcIdx, t)
			// Left neighbor: tile word t-1, or the block's left halo word
			// via a global access for thread 0.
			b.SetEqImm(cond, t, 0)
			b.If(cond)
			b.MulImm(gaddr, e.Ctaid(), blockDim*4)
			b.AddImm(gaddr, gaddr, int64(src+pad*4-4))
			b.LdGlobal(left, gaddr, 0)
			b.Else()
			b.AddImm(off, t, -1)
			e.LdTile(left, srcIdx, off)
			b.EndIf()
			// Right neighbor: tile word t+1, or the right halo word.
			b.SetEqImm(cond, t, blockDim-1)
			b.If(cond)
			b.MulImm(gaddr, e.Ctaid(), blockDim*4)
			b.AddImm(gaddr, gaddr, int64(src+pad*4+blockDim*4))
			b.LdGlobal(right, gaddr, 0)
			b.Else()
			b.AddImm(off, t, 1)
			e.LdTile(right, srcIdx, off)
			b.EndIf()
			b.SetLt(cond, left, mid)
			b.Select(best, cond, left, mid)
			b.SetLt(cond, right, best)
			b.Select(best, cond, right, best)
			e.LdTile(wv, 2, t)
			b.Add(best, best, wv)
			e.StTile(dstIdx, t, best)
		})
	}

	w.Run = func(s *system.System, org system.MemOrg) {
		wallRef = make([]uint32, rows*cols)
		for i := range wallRef {
			wallRef[i] = uint32((i*13)%17 + 1)
		}
		wall = s.Alloc(len(wallRef), func(i int) uint32 { return wallRef[i] })
		edge := func(i int) uint32 {
			if i < pad || i >= pad+cols {
				return inf
			}
			return 0
		}
		rowBuf[0] = s.Alloc(width, edge)
		rowBuf[1] = s.Alloc(width, edge)
		src, dst := rowBuf[0], rowBuf[1]
		for r := 0; r < rows; r++ {
			s.RunKernel(buildRow(org, r, src, dst))
			src, dst = dst, src
		}
	}
	w.Verify = func(s *system.System) error {
		s.FlushForVerify()
		prev := make([]uint32, cols)
		cur := make([]uint32, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				best := prev[c]
				if c > 0 && prev[c-1] < best {
					best = prev[c-1]
				}
				if c < cols-1 && prev[c+1] < best {
					best = prev[c+1]
				}
				cur[c] = wallRef[r*cols+c] + best
			}
			prev, cur = cur, prev
		}
		final := rowBuf[rows%2]
		return verifyWords(s, w.Name, final+pad*4, prev)
	}
	return w
}
