package workloads

import (
	"stash/internal/core"
	"stash/internal/memdata"
	"stash/internal/system"
)

// SGEMM is the Parboil dense matrix multiply, C = A x B, at the paper's
// problem size (A: 128x96, B: 96x160). Each thread block computes one
// 16x16 tile of C; the block's A row-strip and B column-strip are
// staged in local memory (the application's scratchpad tiles), and C is
// written globally (converted to a local tile in the G configurations).
// Arithmetic is 32-bit integer modulo 2^32, matching the Go reference.
func SGEMM() *Workload {
	const (
		m, kdim, ndim = 128, 96, 160
		tile          = 16
		blockDim      = tile * tile
		gridY         = m / tile
		gridX         = ndim / tile
	)
	var aBase, bBase, cBase memdata.VAddr
	var aRef, bRef []uint32
	w := &Workload{Name: "sgemm", Micro: false}
	w.Run = func(s *system.System, org system.MemOrg) {
		aRef = make([]uint32, m*kdim)
		for i := range aRef {
			aRef[i] = uint32(i%7 + 1)
		}
		bRef = make([]uint32, kdim*ndim)
		for i := range bRef {
			bRef[i] = uint32(i%5 + 1)
		}
		aBase = s.Alloc(len(aRef), func(i int) uint32 { return aRef[i] })
		bBase = s.Alloc(len(bRef), func(i int) uint32 { return bRef[i] })
		cBase = s.Alloc(m*ndim, nil)

		tiles := []TileSpec{
			{ // A row-strip: 16 rows x 96 columns.
				Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: kdim, StrideBytes: kdim * 4, NumRows: tile},
				GBase: func(e *Env) int {
					by := e.B.Reg()
					e.B.DivImm(by, e.Ctaid(), gridX)
					e.B.MulImm(by, by, int64(tile*kdim*4))
					e.B.AddImm(by, by, int64(aBase))
					return by
				},
				In: true,
			},
			{ // B column-strip: 96 rows x 16 columns.
				Shape: core.MapParams{FieldBytes: 4 * tile, ObjectBytes: 4 * tile, RowElems: 1, StrideBytes: ndim * 4, NumRows: kdim},
				GBase: func(e *Env) int {
					bx := e.B.Reg()
					e.B.ModImm(bx, e.Ctaid(), gridX)
					e.B.MulImm(bx, bx, int64(tile*4))
					e.B.AddImm(bx, bx, int64(bBase))
					return bx
				},
				In: true,
			},
			{ // C tile: written once per thread; global in the original.
				Shape: core.MapParams{FieldBytes: 4 * tile, ObjectBytes: 4 * tile, RowElems: 1, StrideBytes: ndim * 4, NumRows: tile},
				GBase: func(e *Env) int {
					b := e.B
					by, bx, r := b.Reg(), b.Reg(), b.Reg()
					b.DivImm(by, e.Ctaid(), gridX)
					b.ModImm(bx, e.Ctaid(), gridX)
					b.MulImm(r, by, int64(tile*ndim*4))
					b.MulImm(bx, bx, int64(tile*4))
					b.Add(r, r, bx)
					b.AddImm(r, r, int64(cBase))
					return r
				},
				Out: true, GOnly: true,
			},
		}
		k := BuildKernel(org, blockDim, gridY*gridX, tiles, func(e *Env) {
			b := e.B
			ty, tx, kk, acc, av, bv, aOff, bOff, cOff := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.DivImm(ty, e.Tid(), tile)
			b.ModImm(tx, e.Tid(), tile)
			b.MovImm(acc, 0)
			b.For(kk, kdim)
			b.MulImm(aOff, ty, kdim)
			b.Add(aOff, aOff, kk)
			e.LdTile(av, 0, aOff)
			b.MulImm(bOff, kk, tile)
			b.Add(bOff, bOff, tx)
			e.LdTile(bv, 1, bOff)
			b.Mul(av, av, bv)
			b.Add(acc, acc, av)
			b.Flops(1)
			b.EndFor()
			b.MulImm(cOff, ty, tile)
			b.Add(cOff, cOff, tx)
			e.StTile(2, cOff, acc)
		})
		s.RunKernel(k)
	}
	w.Verify = func(s *system.System) error {
		s.FlushForVerify()
		want := make([]uint32, m*ndim)
		for i := 0; i < m; i++ {
			for j := 0; j < ndim; j++ {
				var acc uint32
				for kk := 0; kk < kdim; kk++ {
					acc += aRef[i*kdim+kk] * bRef[kk*ndim+j]
				}
				want[i*ndim+j] = acc
			}
		}
		return verifyWords(s, w.Name, cBase, want)
	}
	return w
}
