package workloads

import (
	"fmt"

	"stash/internal/core"
	"stash/internal/isa"
	"stash/internal/memdata"
	"stash/internal/system"
)

// The microbenchmarks of Section 5.4.1. Each uses an array of AoS
// elements whose mapped field the GPU kernel updates and 15 CPU cores
// subsequently read (exercising CPU<->GPU communication through the
// coherent hierarchy). One GPU CU is used, per Table 2.

// cpuStride is the CPU phase's sampling stride: each CPU thread reads
// every fourth field of its slice. The paper's 2 GHz out-of-order CPUs
// consume the data far faster than our in-order 1-load-at-a-time model;
// sampling keeps the (configuration-independent) CPU phase from
// dominating execution time, which is also why the paper spreads it
// over 15 cores.
const cpuStride = 4

// cpuChecksum builds a CPU program: thread t reads the mapped field of
// every cpuStride-th element in [t*per, (t+1)*per) and stores their sum
// to out[t].
func cpuChecksum(base memdata.VAddr, objBytes, n int, out memdata.VAddr, threads int) *isa.Program {
	b := isa.NewBuilder()
	per := (n + threads - 1) / threads
	id, i, idx, addr, v, sum, cond := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Special(id, isa.SpecCtaid)
	b.MovImm(sum, 0)
	b.For(i, int64((per+cpuStride-1)/cpuStride))
	b.MulImm(idx, i, cpuStride)
	tmp := b.Reg()
	b.MulImm(tmp, id, int64(per))
	b.Add(idx, idx, tmp)
	b.SetLtImm(cond, idx, int64(n))
	b.If(cond)
	b.MulImm(addr, idx, int64(objBytes))
	b.AddImm(addr, addr, int64(base))
	b.LdGlobal(v, addr, 0)
	b.Add(sum, sum, v)
	b.EndIf()
	b.EndFor()
	b.MulImm(addr, id, memdata.WordBytes)
	b.AddImm(addr, addr, int64(out))
	b.StGlobal(addr, 0, sum)
	return b.MustBuild()
}

func checksumRef(fields []uint32, threads int) []uint32 {
	per := (len(fields) + threads - 1) / threads
	out := make([]uint32, threads)
	for t := 0; t < threads; t++ {
		for i := t * per; i < (t+1)*per && i < len(fields); i += cpuStride {
			out[t] += fields[i]
		}
	}
	return out
}

// Implicit highlights implicit loads and lazy writebacks: the kernel
// updates one field of each AoS element; the stash needs no explicit
// copy instructions where the scratchpad needs three loops (Fig. 1).
func Implicit() *Workload {
	const (
		n        = 4096
		objBytes = 16
		blockDim = 128
		grid     = n / blockDim
		cpuN     = 15
	)
	var base, out memdata.VAddr
	w := &Workload{Name: "implicit", Micro: true}
	w.Run = func(s *system.System, org system.MemOrg) {
		base = s.Alloc(n*objBytes/4, func(i int) uint32 {
			if i%(objBytes/4) == 0 {
				return uint32(i / (objBytes / 4)) // fieldX = element index
			}
			return 0xabcd // other fields, untouched
		})
		out = s.Alloc(cpuN, nil)
		tile := TileSpec{
			Shape: core.MapParams{FieldBytes: 4, ObjectBytes: objBytes, RowElems: blockDim, NumRows: 1},
			GBase: func(e *Env) int {
				r := e.B.Reg()
				e.B.MulImm(r, e.Ctaid(), int64(blockDim*objBytes))
				e.B.AddImm(r, r, int64(base))
				return r
			},
			In: true, Out: true,
		}
		k := BuildKernel(org, blockDim, grid, []TileSpec{tile}, func(e *Env) {
			b := e.B
			v := b.Reg()
			e.LdTile(v, 0, e.Tid())
			b.Flops(4)
			b.MulImm(v, v, 3)
			b.AddImm(v, v, 7)
			e.StTile(0, e.Tid(), v)
		})
		s.RunKernel(k)
		s.RunCPUPhase(cpuChecksum(base, objBytes, n, out, cpuN), cpuN)
	}
	w.Verify = func(s *system.System) error {
		s.FlushForVerify()
		want := make([]uint32, n)
		for i := range want {
			want[i] = uint32(i)*3 + 7
		}
		if err := verifyFields(s, w.Name, base, objBytes, want); err != nil {
			return err
		}
		return verifyWords(s, w.Name+".cpu", out, checksumRef(want, cpuN))
	}
	return w
}

// Pollution highlights cache-pollution avoidance: array A streams
// through local memory while array B lives in the cache. The explicit
// scratchpad copies (and cache-config accesses) of A evict B; the
// stash's implicit loads bypass the L1, so B stays resident.
func Pollution() *Workload {
	const (
		aN        = 8192 // streamed elements
		bN        = 400  // cache-resident elements (25 KB of lines: fits the L1 alone)
		objBytes  = 16
		bObjBytes = 64 // one line per B element
		blockDim  = 128
		grid      = aN / blockDim
		cpuN      = 15
	)
	var aBase, bBase, out memdata.VAddr
	w := &Workload{Name: "pollution", Micro: true}
	w.Run = func(s *system.System, org system.MemOrg) {
		aBase = s.Alloc(aN*objBytes/4, func(i int) uint32 {
			if i%(objBytes/4) == 0 {
				return uint32(i / (objBytes / 4))
			}
			return 0
		})
		bBase = s.Alloc(bN*bObjBytes/4, func(i int) uint32 {
			if i%(bObjBytes/4) == 0 {
				return 5
			}
			return 0
		})
		out = s.Alloc(cpuN, nil)
		tile := TileSpec{
			Shape: core.MapParams{FieldBytes: 4, ObjectBytes: objBytes, RowElems: blockDim, NumRows: 1},
			GBase: func(e *Env) int {
				r := e.B.Reg()
				e.B.MulImm(r, e.Ctaid(), int64(blockDim*objBytes))
				e.B.AddImm(r, r, int64(aBase))
				return r
			},
			In: true, Out: true,
		}
		k := BuildKernel(org, blockDim, grid, []TileSpec{tile}, func(e *Env) {
			b := e.B
			v, gtid, bidx, baddr, bv := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			// Update the streamed A element via local memory.
			e.LdTile(v, 0, e.Tid())
			b.AddImm(v, v, 1)
			e.StTile(0, e.Tid(), v)
			// Read a B element through the cache. Each B line is
			// revisited by later blocks, so it hits again only if the A
			// tile movement in between did not pollute the L1.
			b.Special(gtid, isa.SpecCtaid)
			b.MulImm(gtid, gtid, blockDim)
			b.Add(gtid, gtid, e.Tid())
			b.ModImm(bidx, gtid, bN)
			b.MulImm(baddr, bidx, bObjBytes)
			b.AddImm(baddr, baddr, int64(bBase))
			b.LdGlobal(bv, baddr, 0)
			b.Flops(2)
		})
		s.RunKernel(k)
		s.RunCPUPhase(cpuChecksum(aBase, objBytes, aN, out, cpuN), cpuN)
	}
	w.Verify = func(s *system.System) error {
		s.FlushForVerify()
		want := make([]uint32, aN)
		for i := range want {
			want[i] = uint32(i) + 1
		}
		if err := verifyFields(s, w.Name, aBase, objBytes, want); err != nil {
			return err
		}
		return verifyWords(s, w.Name+".cpu", out, checksumRef(want, cpuN))
	}
	return w
}

// OnDemand highlights on-demand transfer: only one element in 32 is
// accessed, chosen by a runtime condition read from a selector array.
// Scratchpad configurations (including DMA) must conservatively move
// the whole tile; the stash and cache touch only what the program does.
func OnDemand() *Workload {
	const (
		n        = 4096
		objBytes = 32
		blockDim = 128
		grid     = n / blockDim
		period   = 32
		cpuN     = 15
	)
	var base, sel, out memdata.VAddr
	w := &Workload{Name: "on-demand", Micro: true}
	w.Run = func(s *system.System, org system.MemOrg) {
		base = s.Alloc(n*objBytes/4, func(i int) uint32 {
			if i%(objBytes/4) == 0 {
				return uint32(i / (objBytes / 4))
			}
			return 0
		})
		sel = s.Alloc(n, func(i int) uint32 {
			if (i*7)%period == 0 { // data-dependent, 1-in-32
				return 1
			}
			return 0
		})
		out = s.Alloc(cpuN, nil)
		tile := TileSpec{
			Shape: core.MapParams{FieldBytes: 4, ObjectBytes: objBytes, RowElems: blockDim, NumRows: 1},
			GBase: func(e *Env) int {
				r := e.B.Reg()
				e.B.MulImm(r, e.Ctaid(), int64(blockDim*objBytes))
				e.B.AddImm(r, r, int64(base))
				return r
			},
			In: true, Out: true,
		}
		k := BuildKernel(org, blockDim, grid, []TileSpec{tile}, func(e *Env) {
			b := e.B
			gtid, saddr, cond, v := b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.Special(gtid, isa.SpecCtaid)
			b.MulImm(gtid, gtid, blockDim)
			b.Add(gtid, gtid, e.Tid())
			b.MulImm(saddr, gtid, memdata.WordBytes)
			b.AddImm(saddr, saddr, int64(sel))
			b.LdGlobal(cond, saddr, 0)
			b.If(cond)
			e.LdTile(v, 0, e.Tid())
			b.Flops(4)
			b.MulImm(v, v, 3)
			b.AddImm(v, v, 7)
			e.StTile(0, e.Tid(), v)
			b.EndIf()
		})
		s.RunKernel(k)
		s.RunCPUPhase(cpuChecksum(base, objBytes, n, out, cpuN), cpuN)
	}
	w.Verify = func(s *system.System) error {
		s.FlushForVerify()
		want := make([]uint32, n)
		for i := range want {
			if (i*7)%period == 0 {
				want[i] = uint32(i)*3 + 7
			} else {
				want[i] = uint32(i)
			}
		}
		if err := verifyFields(s, w.Name, base, objBytes, want); err != nil {
			return err
		}
		return verifyWords(s, w.Name+".cpu", out, checksumRef(want, cpuN))
	}
	return w
}

// Reuse highlights compact storage plus cross-kernel reuse: the mapped
// fields of the array fit in the stash (but, uncompacted, not in the
// cache), and consecutive kernels reuse data a scratchpad would reload
// and a cache would have evicted.
func Reuse() *Workload {
	const (
		n        = 3072
		objBytes = 64 // one full line per element: compaction matters
		blockDim = 256
		grid     = 8
		perBlock = n / grid // 384 fields per block
		kernels  = 2
		cpuN     = 15
	)
	var base, out memdata.VAddr
	w := &Workload{Name: "reuse", Micro: true}
	w.Run = func(s *system.System, org system.MemOrg) {
		base = s.Alloc(n*objBytes/4, func(i int) uint32 {
			if i%(objBytes/4) == 0 {
				return uint32(i / (objBytes / 4))
			}
			return 0
		})
		out = s.Alloc(cpuN, nil)
		tile := TileSpec{
			Shape: core.MapParams{FieldBytes: 4, ObjectBytes: objBytes, RowElems: perBlock, NumRows: 1},
			GBase: func(e *Env) int {
				r := e.B.Reg()
				e.B.MulImm(r, e.Ctaid(), int64(perBlock*objBytes))
				e.B.AddImm(r, r, int64(base))
				return r
			},
			In: true, Out: true,
		}
		k := BuildKernel(org, blockDim, grid, []TileSpec{tile}, func(e *Env) {
			b := e.B
			i, off, v, cond := b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.For(i, int64((perBlock+blockDim-1)/blockDim))
			b.MulImm(off, i, blockDim)
			b.Add(off, off, e.Tid())
			b.SetLtImm(cond, off, perBlock)
			b.If(cond)
			e.LdTile(v, 0, off)
			b.Flops(48) // compute(local[i]): the kernel is compute-heavy
			b.AddImm(v, v, 1)
			e.StTile(0, off, v)
			b.EndIf()
			b.EndFor()
		})
		for i := 0; i < kernels; i++ {
			s.RunKernel(k)
		}
		s.RunCPUPhase(cpuChecksum(base, objBytes, n, out, cpuN), cpuN)
	}
	w.Verify = func(s *system.System) error {
		s.FlushForVerify()
		want := make([]uint32, n)
		for i := range want {
			want[i] = uint32(i) + kernels
		}
		if err := verifyFields(s, w.Name, base, objBytes, want); err != nil {
			return err
		}
		return verifyWords(s, w.Name+".cpu", out, checksumRef(want, cpuN))
	}
	return w
}

// Microbenchmarks returns fresh instances of the four microbenchmarks
// in the paper's order.
func Microbenchmarks() []*Workload {
	return []*Workload{Implicit(), Pollution(), OnDemand(), Reuse()}
}

// ByName returns a fresh instance of the named workload.
func ByName(name string) (*Workload, error) {
	ctors := map[string]func() *Workload{
		"implicit":   Implicit,
		"pollution":  Pollution,
		"on-demand":  OnDemand,
		"reuse":      Reuse,
		"lud":        LUD,
		"backprop":   Backprop,
		"nw":         NW,
		"pathfinder": Pathfinder,
		"sgemm":      SGEMM,
		"stencil":    Stencil,
		"surf":       SURF,
	}
	ctor, ok := ctors[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return ctor(), nil
}
