package workloads

import (
	"testing"

	"stash/internal/system"
)

// runOne builds the right machine for the workload, runs it on org, and
// verifies functional correctness against the Go reference.
func runOne(t *testing.T, mk func() *Workload, org system.MemOrg) *system.System {
	t.Helper()
	w := mk()
	var cfg system.Config
	if w.Micro {
		cfg = system.MicrobenchConfig(org)
	} else {
		cfg = system.AppConfig(org)
	}
	s := system.New(cfg)
	w.Run(s, org)
	if err := w.Verify(s); err != nil {
		t.Fatalf("%s on %v: %v", w.Name, org, err)
	}
	return s
}

var microCtors = map[string]func() *Workload{
	"implicit":  Implicit,
	"pollution": Pollution,
	"on-demand": OnDemand,
	"reuse":     Reuse,
}

var appCtors = map[string]func() *Workload{
	"lud":        LUD,
	"backprop":   Backprop,
	"nw":         NW,
	"pathfinder": Pathfinder,
	"sgemm":      SGEMM,
	"stencil":    Stencil,
	"surf":       SURF,
}

// Microbenchmarks run on the four configurations of Figure 5.
func TestMicrobenchmarksAllConfigs(t *testing.T) {
	orgs := []system.MemOrg{system.Scratch, system.ScratchGD, system.CacheOnly, system.StashOrg}
	for name, mk := range microCtors {
		for _, org := range orgs {
			t.Run(name+"/"+org.String(), func(t *testing.T) {
				runOne(t, mk, org)
			})
		}
	}
}

// Applications run on the five configurations of Figure 6 (plus
// ScratchGD, which the paper measured but plotted separately).
func TestApplicationsAllConfigs(t *testing.T) {
	orgs := []system.MemOrg{
		system.Scratch, system.ScratchG, system.ScratchGD,
		system.CacheOnly, system.StashOrg, system.StashG,
	}
	if testing.Short() {
		orgs = []system.MemOrg{system.Scratch, system.StashOrg}
	}
	for name, mk := range appCtors {
		for _, org := range orgs {
			t.Run(name+"/"+org.String(), func(t *testing.T) {
				runOne(t, mk, org)
			})
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"implicit", "pollution", "on-demand", "reuse",
		"lud", "backprop", "nw", "pathfinder", "sgemm", "stencil", "surf"} {
		w, err := ByName(name)
		if err != nil || w == nil || w.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, w, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// The stash must beat the scratchpad on instruction count for the
// Implicit microbenchmark (the paper's headline -40%).
func TestImplicitInstructionReduction(t *testing.T) {
	sScratch := runOne(t, Implicit, system.Scratch)
	sStash := runOne(t, Implicit, system.StashOrg)
	ni := sScratch.Stats.Sum("cu.gpu0.instructions")
	nj := sStash.Stats.Sum("cu.gpu0.instructions")
	if nj >= ni {
		t.Fatalf("stash instructions %d >= scratch %d", nj, ni)
	}
	reduction := 1 - float64(nj)/float64(ni)
	if reduction < 0.25 {
		t.Fatalf("instruction reduction %.0f%% too small (paper: ~40%%)", reduction*100)
	}
}

// Cross-kernel reuse: the stash's second and later kernels must produce
// far less read traffic than the scratchpad configuration.
func TestReuseTrafficReduction(t *testing.T) {
	sScratch := runOne(t, Reuse, system.Scratch)
	sStash := runOne(t, Reuse, system.StashOrg)
	tScratch := sScratch.Stats.Sum("noc.flit_hops.")
	tStash := sStash.Stats.Sum("noc.flit_hops.")
	if tStash >= tScratch {
		t.Fatalf("stash traffic %d >= scratch %d", tStash, tScratch)
	}
}
