package workloads

import (
	"stash/internal/core"
	"stash/internal/gpu"
	"stash/internal/memdata"
	"stash/internal/system"
)

// Stencil is the Parboil iterative stencil at the paper's 128x128x4
// footprint, reproduced as four Jacobi iterations of a 5-point stencil
// over a 128x128 grid with ping-pong input/output arrays (the depth-4
// third dimension becomes the four iterations; the tiling, halo
// staging and reuse structure are identical). Each block stages an
// 8-row strip plus two halo rows in local memory and writes its strip
// back; grid-boundary cells are copied through unchanged.
func Stencil() *Workload {
	const (
		n        = 128
		rows     = 8
		iters    = 4
		blockDim = n
		grid     = n / rows
		c0, c1   = 5, 3 // integer stencil coefficients
	)
	// Buffers are padded with one zero row above and below so halo
	// tiles never leave the allocation: padded row p holds data row p-1.
	const padWords = (n + 2) * n
	var bufA, bufB memdata.VAddr
	var initial []uint32
	w := &Workload{Name: "stencil", Micro: false}

	buildIter := func(org system.MemOrg, it int, src, dst memdata.VAddr) *gpu.Kernel {
		strip := func(base memdata.VAddr, nrows int, in, out bool) TileSpec {
			return TileSpec{
				Shape: core.MapParams{FieldBytes: 4 * n, ObjectBytes: 4 * n, RowElems: 1, StrideBytes: n * 4, NumRows: nrows},
				GBase: func(e *Env) int {
					r := e.B.Reg()
					e.B.MulImm(r, e.Ctaid(), int64(rows*n*4))
					e.B.AddImm(r, r, int64(base))
					return r
				},
				In: in, Out: out,
			}
		}
		// Ping-pong local placement: this iteration's input core strip
		// occupies exactly the allocation the previous iteration's
		// output strip used, with the same global mapping, so the
		// stash's replication detection (Section 4.5) reuses the
		// registered entry (the rows hit without global traffic). The
		// halo rows are separate single-row tiles.
		coreIn := strip(src+n*4, rows, true, false)
		top := strip(src, 1, true, false)
		bottom := strip(src+memdata.VAddr((rows+1)*n*4), 1, true, false)
		out := strip(dst+n*4, rows, false, true)
		var tiles []TileSpec
		var coreIdx, topIdx, bottomIdx, outIdx int
		if it%2 == 0 {
			tiles = []TileSpec{coreIn, top, bottom, out}
			coreIdx, topIdx, bottomIdx, outIdx = 0, 1, 2, 3
		} else {
			tiles = []TileSpec{out, top, bottom, coreIn}
			outIdx, topIdx, bottomIdx, coreIdx = 0, 1, 2, 3
		}
		return BuildKernel(org, blockDim, grid, tiles, func(e *Env) {
			b := e.B
			x := e.Tid()
			ry, d, in, off, v, acc, t, cond, edge := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.For(ry, rows)
			// Data row d = ctaid*rows + ry.
			b.MulImm(d, e.Ctaid(), rows)
			b.Add(d, d, ry)
			// edge = (d == 0) | (d == n-1) | (x == 0) | (x == n-1)
			b.SetEqImm(edge, d, 0)
			b.SetEqImm(cond, d, n-1)
			b.Or(edge, edge, cond)
			b.SetEqImm(cond, x, 0)
			b.Or(edge, edge, cond)
			b.SetEqImm(cond, x, n-1)
			b.Or(edge, edge, cond)
			// Center input word: core row ry.
			b.MulImm(in, ry, n)
			b.Add(in, in, x)
			e.LdTile(v, coreIdx, in)
			b.If(edge)
			b.Mov(acc, v)
			b.Else()
			b.MulImm(acc, v, c0)
			// South: core row ry+1, or the bottom halo for the last row.
			b.SetEqImm(cond, ry, rows-1)
			b.If(cond)
			e.LdTile(v, bottomIdx, x)
			b.Else()
			b.AddImm(t, in, n)
			e.LdTile(v, coreIdx, t)
			b.EndIf()
			b.MulImm(v, v, c1)
			b.Add(acc, acc, v)
			// North: core row ry-1, or the top halo for the first row.
			b.SetEqImm(cond, ry, 0)
			b.If(cond)
			e.LdTile(v, topIdx, x)
			b.Else()
			b.AddImm(t, in, -n)
			e.LdTile(v, coreIdx, t)
			b.EndIf()
			b.MulImm(v, v, c1)
			b.Add(acc, acc, v)
			b.AddImm(t, in, 1) // east
			e.LdTile(v, coreIdx, t)
			b.MulImm(v, v, c1)
			b.Add(acc, acc, v)
			b.AddImm(t, in, -1) // west
			e.LdTile(v, coreIdx, t)
			b.MulImm(v, v, c1)
			b.Add(acc, acc, v)
			b.Flops(2)
			b.EndIf()
			b.MulImm(off, ry, n)
			b.Add(off, off, x)
			e.StTile(outIdx, off, acc)
			b.EndFor()
		})
	}

	w.Run = func(s *system.System, org system.MemOrg) {
		initial = make([]uint32, n*n)
		for i := range initial {
			initial[i] = uint32(i%11 + 1)
		}
		pad := func(i int) uint32 {
			row := i / n
			if row == 0 || row == n+1 {
				return 0
			}
			return initial[(row-1)*n+i%n]
		}
		bufA = s.Alloc(padWords, pad)
		bufB = s.Alloc(padWords, pad)
		src, dst := bufA, bufB
		for it := 0; it < iters; it++ {
			s.RunKernel(buildIter(org, it, src, dst))
			src, dst = dst, src
		}
	}
	w.Verify = func(s *system.System) error {
		s.FlushForVerify()
		cur := append([]uint32(nil), initial...)
		next := make([]uint32, n*n)
		for it := 0; it < iters; it++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					i := y*n + x
					if y == 0 || y == n-1 || x == 0 || x == n-1 {
						next[i] = cur[i]
						continue
					}
					next[i] = c0*cur[i] + c1*(cur[i-n]+cur[i+n]+cur[i-1]+cur[i+1])
				}
			}
			cur, next = next, cur
		}
		final := bufA
		if iters%2 == 1 {
			final = bufB
		}
		// Compare data rows (skip the padding rows).
		for y := 0; y < n; y++ {
			row := final + memdata.VAddr((y+1)*n*4)
			if err := verifyWords(s, w.Name, row, cur[y*n:(y+1)*n]); err != nil {
				return err
			}
		}
		return nil
	}
	return w
}
