package workloads

import (
	"stash/internal/core"
	"stash/internal/gpu"
	"stash/internal/memdata"
	"stash/internal/system"
)

// Backprop is the Rodinia neural-network training step at the paper's
// 32 KB input size: an 8192-unit input layer and a 16-unit hidden
// layer. The forward kernel computes per-block partial sums of
// input x weight products with a shared-memory tree reduction (the
// product matrix is a temporary tile: scratchpad temporary mode /
// stash Mapped Non-coherent); the update kernel adjusts every weight
// by delta[h] * input[i].
func Backprop() *Workload {
	const (
		inputs   = 8192
		hidden   = 16
		perBlock = 16 // input units per block
		blockDim = perBlock * hidden
		grid     = inputs / perBlock
	)
	var inBase, wBase, deltaBase, partialBase memdata.VAddr
	var inRef, wRef, deltaRef []uint32
	w := &Workload{Name: "backprop", Micro: false}

	inputTile := func() TileSpec {
		return TileSpec{
			Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: perBlock, NumRows: 1},
			GBase: func(e *Env) int {
				r := e.B.Reg()
				e.B.MulImm(r, e.Ctaid(), perBlock*4)
				e.B.AddImm(r, r, int64(inBase))
				return r
			},
			In: true,
		}
	}
	weightTile := func(out bool) TileSpec {
		return TileSpec{
			Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: perBlock * hidden, NumRows: 1},
			GBase: func(e *Env) int {
				r := e.B.Reg()
				e.B.MulImm(r, e.Ctaid(), perBlock*hidden*4)
				e.B.AddImm(r, r, int64(wBase))
				return r
			},
			In: true, Out: out,
		}
	}

	buildForward := func(org system.MemOrg) *gpu.Kernel {
		tiles := []TileSpec{
			inputTile(),
			weightTile(false),
			{ // product matrix: a pure temporary
				Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: blockDim, NumRows: 1},
				GBase: func(e *Env) int {
					// Temporaries still name a (scratch) global range so
					// the mapped modes have an address; it is never
					// transferred (NonCoherent, neither In nor Out).
					r := e.B.Reg()
					e.B.MulImm(r, e.Ctaid(), blockDim*4)
					e.B.AddImm(r, r, int64(partialBase)+int64(grid*hidden*4))
					return r
				},
				NonCoherent: true,
			},
			{ // partial sums out: partial[block*16 + h]
				Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: hidden, NumRows: 1},
				GBase: func(e *Env) int {
					r := e.B.Reg()
					e.B.MulImm(r, e.Ctaid(), hidden*4)
					e.B.AddImm(r, r, int64(partialBase))
					return r
				},
				Out: true, GOnly: true,
			},
		}
		return BuildKernel(org, blockDim, grid, tiles, func(e *Env) {
			b := e.B
			ii, h, off, x, wv, s, cond, v2 := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.DivImm(ii, e.Tid(), hidden)
			b.ModImm(h, e.Tid(), hidden)
			e.LdTile(x, 0, ii)
			e.LdTile(wv, 1, e.Tid())
			b.Mul(x, x, wv)
			b.Flops(1)
			e.StTile(2, e.Tid(), x)
			b.Barrier()
			// Tree reduction over the input dimension.
			for stride := perBlock / 2; stride >= 1; stride /= 2 {
				b.SetLtImm(cond, ii, int64(stride))
				b.If(cond)
				e.LdTile(x, 2, e.Tid())
				b.AddImm(off, e.Tid(), int64(stride*hidden))
				e.LdTile(v2, 2, off)
				b.Add(x, x, v2)
				e.StTile(2, e.Tid(), x)
				b.EndIf()
				b.Barrier()
			}
			b.SetEqImm(cond, ii, 0)
			b.If(cond)
			e.LdTile(x, 2, h)
			e.StTile(3, h, x)
			b.EndIf()
			_ = s
		})
	}

	buildUpdate := func(org system.MemOrg) *gpu.Kernel {
		tiles := []TileSpec{
			inputTile(),
			weightTile(true),
			{ // delta: one 16-word vector shared by all blocks (global)
				Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: hidden, NumRows: 1},
				GBase: func(e *Env) int {
					r := e.B.Reg()
					e.B.MovImm(r, int64(deltaBase))
					return r
				},
				In: true, GOnly: true,
			},
		}
		return BuildKernel(org, blockDim, grid, tiles, func(e *Env) {
			b := e.B
			ii, h, x, d, wv := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.DivImm(ii, e.Tid(), hidden)
			b.ModImm(h, e.Tid(), hidden)
			e.LdTile(x, 0, ii)
			e.LdTile(d, 2, h)
			b.Mul(x, x, d)
			e.LdTile(wv, 1, e.Tid())
			b.Add(wv, wv, x)
			b.Flops(1)
			e.StTile(1, e.Tid(), wv)
		})
	}

	w.Run = func(s *system.System, org system.MemOrg) {
		inRef = make([]uint32, inputs)
		for i := range inRef {
			inRef[i] = uint32(i%9 + 1)
		}
		wRef = make([]uint32, inputs*hidden)
		for i := range wRef {
			wRef[i] = uint32(i%7 + 1)
		}
		deltaRef = make([]uint32, hidden)
		for i := range deltaRef {
			deltaRef[i] = uint32(i + 1)
		}
		inBase = s.Alloc(inputs, func(i int) uint32 { return inRef[i] })
		wBase = s.Alloc(len(wRef), func(i int) uint32 { return wRef[i] })
		deltaBase = s.Alloc(hidden, func(i int) uint32 { return deltaRef[i] })
		// partial sums plus a scratch-address region for the temporary.
		partialBase = s.Alloc(grid*hidden+grid*blockDim, nil)
		s.RunKernel(buildForward(org))
		s.RunKernel(buildUpdate(org))
	}
	w.Verify = func(s *system.System) error {
		s.FlushForVerify()
		// Partial sums from the forward pass (pre-update weights).
		for blk := 0; blk < grid; blk++ {
			for h := 0; h < hidden; h++ {
				var want uint32
				for ii := 0; ii < perBlock; ii++ {
					i := blk*perBlock + ii
					want += inRef[i] * wRef[i*hidden+h]
				}
				got := s.ReadGlobal(partialBase + memdata.VAddr((blk*hidden+h)*4))
				if got != want {
					return errf("backprop: partial[%d][%d] = %d, want %d", blk, h, got, want)
				}
			}
		}
		// Updated weights.
		for i := 0; i < inputs; i++ {
			for h := 0; h < hidden; h++ {
				want := wRef[i*hidden+h] + inRef[i]*deltaRef[h]
				got := s.ReadGlobal(wBase + memdata.VAddr((i*hidden+h)*4))
				if got != want {
					return errf("backprop: w[%d][%d] = %d, want %d", i, h, got, want)
				}
			}
		}
		return nil
	}
	return w
}
