// Package workloads implements the paper's evaluation programs: the
// four microbenchmarks of Section 5.4.1 (Implicit, Pollution,
// On-demand, Reuse) and the seven applications of Section 5.4.2 (LUD,
// Backprop, NW, Pathfinder, SGEMM, Stencil, SURF), each generated for
// all six memory configurations.
//
// The tiling environment in this file captures the structural
// difference between the configurations once, so every workload states
// its tiles and compute body a single time:
//
//   - Scratch:    explicit copy-in loops (global->register->scratchpad,
//     polluting the L1), compute on the scratchpad, explicit
//     copy-out loops — the Figure 1a pattern;
//   - ScratchG:   like Scratch, with the workload's remaining global
//     accesses also converted to scratchpad tiles;
//   - ScratchGD:  like ScratchG, but tiles move via the DMA engine;
//   - Cache:      tile accesses become global accesses with explicit
//     index arithmetic, through the L1;
//   - Stash:      AddMap + direct stash access, implicit movement —
//     the Figure 1b pattern;
//   - StashG:     like Stash, with remaining global accesses also
//     mapped to the stash.
package workloads

import (
	"fmt"

	"stash/internal/core"
	"stash/internal/gpu"
	"stash/internal/isa"
	"stash/internal/memdata"
	"stash/internal/system"
)

// TileSpec declares one per-block tile of a global data structure.
type TileSpec struct {
	// Shape describes the tile: FieldBytes/ObjectBytes/RowElems/
	// StrideBytes/NumRows (StashBase is assigned by the environment;
	// GlobalBase is computed per block by GBase).
	Shape core.MapParams
	// GBase emits code computing the block's global base address for
	// this tile into a register (may use e.Ctaid()).
	GBase func(e *Env) int
	// In: the kernel reads pre-existing global data from the tile.
	// Out: the kernel's writes must become globally visible.
	In, Out bool
	// GOnly marks data the original application accesses globally; it
	// is tiled into local memory only in the "G" configurations.
	GOnly bool
	// NonCoherent maps the tile in Mapped Non-coherent mode (stash) /
	// skips the copy-out (scratchpad): for temporaries.
	NonCoherent bool
}

func (t TileSpec) words() int { return t.Shape.Words() }

// tileState is the per-build state of one tile.
type tileState struct {
	spec      TileSpec
	slot      int
	localBase int // block-relative local word offset
	gbaseReg  int
	local     bool // accessed via scratchpad/stash (vs global)
}

// Env is passed to a workload's compute-body generator. It provides
// configuration-independent tile access.
type Env struct {
	B    *isa.Builder
	org  system.MemOrg
	tile []*tileState

	ctaidReg int
	tidReg   int
}

// Ctaid returns a register holding the block index.
func (e *Env) Ctaid() int { return e.ctaidReg }

// Tid returns a register holding the thread index within the block.
func (e *Env) Tid() int { return e.tidReg }

// Org returns the memory organization the kernel is being built for.
func (e *Env) Org() system.MemOrg { return e.org }

// isG reports whether the configuration converts global accesses to
// local ones.
func isG(org system.MemOrg) bool {
	return org == system.ScratchG || org == system.ScratchGD || org == system.StashG
}

// addrFromTileOffset emits the index arithmetic translating a tile word
// offset into a global byte address — the computation the stash-map
// performs in hardware and the core must perform for cache accesses
// (paper Section 6.3). Divisions by powers of two strength-reduce to
// shifts/masks and multiply-adds fuse, as the CUDA compiler would.
func (e *Env) addrFromTileOffset(t *tileState, offReg int) int {
	b := e.B
	s := t.spec.Shape
	fieldWords := s.FieldBytes / memdata.WordBytes
	addr := b.Reg()
	if s.ObjectBytes == s.FieldBytes && s.NumRows == 1 {
		// Dense linear tile: addr = off*4 + gbase.
		b.MadImm(addr, offReg, memdata.WordBytes, t.gbaseReg)
		return addr
	}
	rowWords := s.RowElems * fieldWords
	if s.ObjectBytes == s.FieldBytes {
		// Dense rows of a strided matrix:
		// addr = (off/rowW)*stride + (off%rowW)*4 + gbase.
		row, col := b.Reg(), b.Reg()
		e.divmod(row, col, offReg, rowWords)
		b.MadImm(addr, row, int64(s.StrideBytes), t.gbaseReg)
		b.MadImm(addr, col, memdata.WordBytes, addr)
		return addr
	}
	// General AoS tile.
	elem, w, row, col := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	e.divmod(elem, w, offReg, fieldWords)
	e.divmod(row, col, elem, s.RowElems)
	b.MadImm(addr, row, int64(s.StrideBytes), t.gbaseReg)
	b.MadImm(addr, col, int64(s.ObjectBytes), addr)
	b.MadImm(addr, w, memdata.WordBytes, addr)
	return addr
}

// divmod emits q = a/n, r = a%n, using shift/mask when n is a power of
// two (and nothing at all when n is 1).
func (e *Env) divmod(q, r, a, n int) {
	b := e.B
	if n == 1 {
		b.Mov(q, a)
		b.MovImm(r, 0)
		return
	}
	if n&(n-1) == 0 {
		sh := 0
		for 1<<sh < n {
			sh++
		}
		b.ShrImm(q, a, int64(sh))
		b.AndImm(r, a, int64(n-1))
		return
	}
	b.DivImm(q, a, int64(n))
	b.ModImm(r, a, int64(n))
}

// LdTile emits a load of tile word [offReg] into dst.
func (e *Env) LdTile(dst, tile, offReg int) {
	t := e.tile[tile]
	b := e.B
	if !t.local {
		b.LdGlobal(dst, e.addrFromTileOffset(t, offReg), 0)
		return
	}
	local := b.Reg()
	b.AddImm(local, offReg, int64(t.localBase))
	switch {
	case e.org.HasStash():
		b.LdStash(dst, local, 0, t.slot)
	default:
		b.LdShared(dst, local, 0)
	}
}

// StTile emits a store of src into tile word [offReg].
func (e *Env) StTile(tile, offReg, src int) {
	t := e.tile[tile]
	b := e.B
	if !t.local {
		b.StGlobal(e.addrFromTileOffset(t, offReg), 0, src)
		return
	}
	local := b.Reg()
	b.AddImm(local, offReg, int64(t.localBase))
	switch {
	case e.org.HasStash():
		b.StStash(local, 0, src, t.slot)
	default:
		b.StShared(local, 0, src)
	}
}

// chunkAlign rounds n up to the stash chunk granularity.
func chunkAlign(n int) int {
	return (n + core.ChunkWords - 1) &^ (core.ChunkWords - 1)
}

// BuildKernel generates the kernel for org from the tile declarations
// and compute body. blockDim is threads per block; grid is the number
// of blocks.
func BuildKernel(org system.MemOrg, blockDim, grid int, tiles []TileSpec, body func(e *Env)) *gpu.Kernel {
	if len(tiles) > 4 {
		panic(fmt.Sprintf("workloads: %d tiles exceed the 4 map-index-table slots per block", len(tiles)))
	}
	b := isa.NewBuilder()
	e := &Env{B: b, org: org, ctaidReg: b.Reg(), tidReg: b.Reg()}
	b.Special(e.ctaidReg, isa.SpecCtaid)
	b.Special(e.tidReg, isa.SpecTid)

	localWords := 0
	for slot, spec := range tiles {
		t := &tileState{spec: spec, slot: slot}
		t.local = !spec.GOnly || isG(org)
		if org == system.CacheOnly {
			t.local = false
		}
		t.gbaseReg = spec.GBase(e)
		if t.local {
			t.localBase = localWords
			localWords += chunkAlign(spec.words())
		}
		e.tile = append(e.tile, t)
	}

	// Prologue: bring tiles in.
	switch {
	case org.HasStash():
		for _, t := range e.tile {
			if !t.local {
				continue
			}
			shape := t.spec.Shape
			shape.Coherent = !t.spec.NonCoherent
			sbase := b.Reg()
			b.MovImm(sbase, int64(t.localBase))
			b.AddMapReg(t.slot, shape, sbase, t.gbaseReg)
		}
		b.Barrier()
	case org == system.ScratchGD:
		for _, t := range e.tile {
			if !t.local || !t.spec.In {
				continue
			}
			shape := t.spec.Shape
			sbase := b.Reg()
			b.MovImm(sbase, int64(t.localBase))
			b.DMALoadReg(shape, sbase, t.gbaseReg)
		}
		b.Barrier()
	case org.HasScratchpad():
		for _, t := range e.tile {
			if !t.local || !t.spec.In {
				continue
			}
			emitCopyLoop(e, t, blockDim, true)
		}
		b.Barrier()
	}

	body(e)

	// Epilogue: write tiles out. The stash needs nothing: writebacks
	// are implicit and lazy.
	switch {
	case org == system.ScratchGD:
		b.Barrier()
		for _, t := range e.tile {
			if !t.local || !t.spec.Out || t.spec.NonCoherent {
				continue
			}
			shape := t.spec.Shape
			sbase := b.Reg()
			b.MovImm(sbase, int64(t.localBase))
			b.DMAStoreReg(shape, sbase, t.gbaseReg)
		}
	case org.HasScratchpad():
		b.Barrier()
		for _, t := range e.tile {
			if !t.local || !t.spec.Out || t.spec.NonCoherent {
				continue
			}
			emitCopyLoop(e, t, blockDim, false)
		}
	}

	return &gpu.Kernel{
		Prog:               b.MustBuild(),
		BlockDim:           blockDim,
		GridDim:            grid,
		LocalWordsPerBlock: localWords,
	}
}

// emitCopyLoop generates the explicit scratchpad copy loop of Figure
// 1a: each thread strides over the tile words; data moves through the
// L1 and the register file.
func emitCopyLoop(e *Env, t *tileState, blockDim int, in bool) {
	b := e.B
	words := t.spec.words()
	iters := (words + blockDim - 1) / blockDim
	i, off, v, local, cond := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.For(i, int64(iters))
	b.MulImm(off, i, int64(blockDim))
	b.Add(off, off, e.tidReg)
	b.SetLtImm(cond, off, int64(words))
	b.If(cond)
	b.AddImm(local, off, int64(t.localBase))
	if in {
		b.LdGlobal(v, e.addrFromTileOffset(t, off), 0)
		b.StShared(local, 0, v)
	} else {
		b.LdShared(v, local, 0)
		b.StGlobal(e.addrFromTileOffset(t, off), 0, v)
	}
	b.EndIf()
	b.EndFor()
}

// Workload is one runnable experiment. Run executes the measured
// phases; Verify (called after metrics are snapshotted) flushes the
// hierarchy and checks functional correctness against a Go reference.
// Instances are single-use: build a fresh one per run.
type Workload struct {
	Name   string
	Micro  bool // microbenchmark machine (1 CU + 15 CPUs) vs app machine
	Run    func(s *system.System, org system.MemOrg)
	Verify func(s *system.System) error
}

// verifyWords compares n consecutive global words at base against want.
func verifyWords(s *system.System, name string, base memdata.VAddr, want []uint32) error {
	for i, w := range want {
		if got := s.ReadGlobal(base + memdata.VAddr(i*memdata.WordBytes)); got != w {
			return fmt.Errorf("%s: word %d = %d, want %d", name, i, got, w)
		}
	}
	return nil
}

// throttle caps a kernel's resident blocks per CU by padding its local
// allocation — the CUDA shared-memory occupancy trick. Kernels whose
// tiles span many virtual pages use it to keep all active mappings
// within the 64-entry VP-map (paper Section 4.1.4: "the compiler or
// programmer is aware of this requirement").
func throttle(k *gpu.Kernel, maxBlocks int) *gpu.Kernel {
	if k.LocalWordsPerBlock == 0 {
		return k // cache-only configuration: no local memory in use
	}
	words := core.DefaultParams().SizeBytes / memdata.WordBytes / maxBlocks
	words &^= core.ChunkWords - 1 // keep slot bases chunk-aligned
	if k.LocalWordsPerBlock < words {
		k.LocalWordsPerBlock = words
	}
	return k
}

// errf is fmt.Errorf, short enough to keep verification code readable.
func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// fieldAddr returns the virtual address of element i's mapped field in
// an AoS array laid out from base.
func fieldAddr(base memdata.VAddr, objBytes, i int) memdata.VAddr {
	return base + memdata.VAddr(i*objBytes)
}

// verifyFields checks the mapped field of each AoS element.
func verifyFields(s *system.System, name string, base memdata.VAddr, objBytes int, want []uint32) error {
	for i, w := range want {
		if got := s.ReadGlobal(fieldAddr(base, objBytes, i)); got != w {
			return fmt.Errorf("%s: field %d = %d, want %d", name, i, got, w)
		}
	}
	return nil
}
