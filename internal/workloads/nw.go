package workloads

import (
	"stash/internal/core"
	"stash/internal/gpu"
	"stash/internal/memdata"
	"stash/internal/system"
)

// NW is the Rodinia Needleman-Wunsch sequence alignment at the paper's
// 512x512 size. The (n+1)x(n+1) score matrix is filled in 16x16 tiles
// processed along anti-diagonals of blocks (one kernel launch per
// block diagonal); each block stages its 17x17 score tile (with top and
// left halo from neighbouring blocks) and 16x16 reference tile in local
// memory and sweeps 31 intra-tile diagonals. Arithmetic is 32-bit
// two's-complement with signed comparisons, matching the Go reference.
func NW() *Workload {
	const (
		n        = 512
		tile     = 16
		nb       = n / tile
		dim      = n + 1
		gap      = 3
		blockDim = tile
	)
	var refBase, scoreBase memdata.VAddr
	var refVals []uint32
	w := &Workload{Name: "nw", Micro: false}

	buildDiag := func(org system.MemOrg, d int) *gpu.Kernel {
		lo := 0
		if d > nb-1 {
			lo = d - (nb - 1)
		}
		hi := d
		if hi > nb-1 {
			hi = nb - 1
		}
		grid := hi - lo + 1
		// bi = lo + ctaid; bj = d - bi.
		biOf := func(e *Env) (bi, bj int) {
			b := e.B
			bi = b.Reg()
			bj = b.Reg()
			b.AddImm(bi, e.Ctaid(), int64(lo))
			b.MovImm(bj, int64(d))
			b.Sub(bj, bj, bi)
			return
		}
		tiles := []TileSpec{
			{ // 17x17 score tile including top/left halo
				Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: tile + 1, StrideBytes: dim * 4, NumRows: tile + 1},
				GBase: func(e *Env) int {
					b := e.B
					bi, bj := biOf(e)
					r := b.Reg()
					b.MulImm(r, bi, int64(tile*dim*4))
					b.MulImm(bj, bj, int64(tile*4))
					b.Add(r, r, bj)
					b.AddImm(r, r, int64(scoreBase))
					return r
				},
				In: true, Out: true,
			},
			{ // 16x16 reference tile
				Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: tile, StrideBytes: n * 4, NumRows: tile},
				GBase: func(e *Env) int {
					b := e.B
					bi, bj := biOf(e)
					r := b.Reg()
					b.MulImm(r, bi, int64(tile*n*4))
					b.MulImm(bj, bj, int64(tile*4))
					b.Add(r, r, bj)
					b.AddImm(r, r, int64(refBase))
					return r
				},
				In: true,
			},
		}
		return BuildKernel(org, blockDim, grid, tiles, func(e *Env) {
			b := e.B
			j := e.Tid() // thread j owns tile column j
			dd, i, active, cond := b.Reg(), b.Reg(), b.Reg(), b.Reg()
			nw, west, north, rv, best, off, t := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.For(dd, 2*tile-1)
			// Cell (i, j) with i = dd - j, valid when 0 <= i < tile.
			b.Sub(i, dd, j)
			b.SetLtImm(active, i, tile)
			b.SetLtImm(cond, i, 0)
			b.SetEqImm(cond, cond, 0) // i >= 0
			b.And(active, active, cond)
			b.If(active)
			// Score-tile coordinates are shifted by the halo: cell (i,j)
			// lives at tile position (i+1, j+1).
			b.MulImm(off, i, tile+1)
			b.Add(off, off, j) // (i, j) -> nw neighbour (i, j) in tile coords
			e.LdTile(nw, 0, off)
			b.AddImm(t, off, 1) // (i, j+1): north
			e.LdTile(north, 0, t)
			b.AddImm(t, off, tile+1) // (i+1, j): west
			e.LdTile(west, 0, t)
			b.MulImm(t, i, tile)
			b.Add(t, t, j)
			e.LdTile(rv, 1, t)
			b.Add(nw, nw, rv)
			b.AddImm(west, west, -gap)
			b.AddImm(north, north, -gap)
			b.SetLt(cond, nw, west)
			b.Select(best, cond, west, nw)
			b.SetLt(cond, best, north)
			b.Select(best, cond, north, best)
			b.AddImm(t, off, tile+2) // (i+1, j+1): the cell itself
			e.StTile(0, t, best)
			b.EndIf()
			b.Barrier()
			b.EndFor()
		})
	}

	w.Run = func(s *system.System, org system.MemOrg) {
		refVals = make([]uint32, n*n)
		for i := range refVals {
			refVals[i] = uint32((i*11)%10) - 4 // scores in [-4, 5]
		}
		refBase = s.Alloc(len(refVals), func(i int) uint32 { return refVals[i] })
		scoreBase = s.Alloc(dim*dim, func(i int) uint32 {
			row, col := i/dim, i%dim
			switch {
			case row == 0:
				return uint32(-col * gap)
			case col == 0:
				return uint32(-row * gap)
			}
			return 0
		})
		for d := 0; d < 2*nb-1; d++ {
			// The 17x17 strided score tiles span ~19 pages per block;
			// three resident blocks keep active mappings within the VP-map.
			s.RunKernel(throttle(buildDiag(org, d), 3))
		}
	}
	w.Verify = func(s *system.System) error {
		s.FlushForVerify()
		score := make([]int64, dim*dim)
		for i := 0; i <= n; i++ {
			score[i] = int64(-i * gap)
			score[i*dim] = int64(-i * gap)
		}
		max := func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		}
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				r := int64(int32(refVals[(i-1)*n+(j-1)]))
				v := max(score[(i-1)*dim+j-1]+r,
					max(score[i*dim+j-1]-gap, score[(i-1)*dim+j]-gap))
				score[i*dim+j] = v
			}
		}
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				got := int32(s.ReadGlobal(scoreBase + memdata.VAddr((i*dim+j)*4)))
				if int64(got) != score[i*dim+j] {
					return errf("nw: score[%d][%d] = %d, want %d", i, j, got, score[i*dim+j])
				}
			}
		}
		return nil
	}
	return w
}
