package workloads

import (
	"stash/internal/core"
	"stash/internal/gpu"
	"stash/internal/memdata"
	"stash/internal/system"
)

// LUD is the Rodinia blocked LU decomposition at the paper's 256x256
// size: for each step k, a diagonal kernel factorizes tile (k,k), a
// perimeter kernel updates row tiles (k,j) and column tiles (i,k), and
// an internal kernel applies the rank-16 update to the trailing
// submatrix. Tiles are staged in local memory exactly as Rodinia's
// shared-memory version does.
//
// The input is constructed as A = L*U with unit diagonals, making all
// eliminations exact in 32-bit integer arithmetic (divisions are by 1),
// so the in-place result must equal L below the diagonal and U on and
// above it.
func LUD() *Workload {
	const (
		n  = 256
		t  = 16
		nb = n / t
		tw = t * t // words per tile
	)
	var aBase memdata.VAddr
	var lRef, uRef []uint32
	w := &Workload{Name: "lud", Micro: false}

	// tileSpec builds a 16x16 tile of the matrix whose block coordinates
	// are produced by coords (emitting registers for blockRow, blockCol).
	tileSpec := func(in, out bool, coords func(e *Env) (br, bc int)) TileSpec {
		return TileSpec{
			Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: t, StrideBytes: n * 4, NumRows: t},
			GBase: func(e *Env) int {
				b := e.B
				br, bc := coords(e)
				r := b.Reg()
				b.MulImm(r, br, int64(t*n*4))
				b.MulImm(bc, bc, int64(t*4))
				b.Add(r, r, bc)
				b.AddImm(r, r, int64(aBase))
				return r
			},
			In: in, Out: out,
		}
	}
	constCoords := func(br, bc int) func(e *Env) (int, int) {
		return func(e *Env) (int, int) {
			b := e.B
			r, c := b.Reg(), b.Reg()
			b.MovImm(r, int64(br))
			b.MovImm(c, int64(bc))
			return r, c
		}
	}

	// Diagonal kernel: in-place LU of tile (k,k). 16 threads; thread j
	// owns column j.
	buildDiag := func(org system.MemOrg, k int) *gpu.Kernel {
		tiles := []TileSpec{tileSpec(true, true, constCoords(k, k))}
		return BuildKernel(org, t, 1, tiles, func(e *Env) {
			b := e.B
			j := e.Tid()
			p, r, off, v, d, cond, pivot := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.For(p, t)
			// Thread p scales column p below the pivot.
			b.SetEq(cond, j, p)
			b.If(cond)
			b.MulImm(off, p, t)
			b.Add(off, off, p)
			e.LdTile(pivot, 0, off)
			b.For(r, t)
			b.SetLt(cond, p, r) // r > p
			b.If(cond)
			b.MulImm(off, r, t)
			b.Add(off, off, p)
			e.LdTile(v, 0, off)
			b.Div(v, v, pivot)
			e.StTile(0, off, v)
			b.EndIf()
			b.EndFor()
			b.EndIf()
			b.Barrier()
			// All threads with column j > p update the trailing block.
			b.SetLt(cond, p, j)
			b.If(cond)
			b.MulImm(off, p, t)
			b.Add(off, off, j)
			e.LdTile(d, 0, off) // D[p][j]
			b.For(r, t)
			b.SetLt(cond, p, r)
			b.If(cond)
			b.MulImm(off, r, t)
			b.Add(off, off, p)
			e.LdTile(v, 0, off) // D[r][p]
			b.Mul(v, v, d)
			b.MulImm(off, r, t)
			b.Add(off, off, j)
			e.LdTile(pivot, 0, off)
			b.Sub(pivot, pivot, v)
			e.StTile(0, off, pivot)
			b.EndIf()
			b.EndFor()
			b.EndIf()
			b.Barrier()
			b.EndFor()
		})
	}

	// Perimeter kernel: the first half of the grid updates row tiles
	// (k, k+1+c), the second half column tiles (k+1+c, k). 16 threads.
	buildPerimeter := func(org system.MemOrg, k int) *gpu.Kernel {
		half := nb - 1 - k
		tiles := []TileSpec{
			tileSpec(true, false, constCoords(k, k)), // factorized diagonal tile
			tileSpec(true, true, func(e *Env) (int, int) { // own tile
				b := e.B
				br, bc, isRow, c := b.Reg(), b.Reg(), b.Reg(), b.Reg()
				b.SetLtImm(isRow, e.Ctaid(), int64(half))
				b.ModImm(c, e.Ctaid(), int64(half))
				b.AddImm(c, c, int64(k+1))
				kreg := b.Reg()
				b.MovImm(kreg, int64(k))
				b.Select(br, isRow, kreg, c)
				b.Select(bc, isRow, c, kreg)
				return br, bc
			}),
		}
		return BuildKernel(org, t, 2*half, tiles, func(e *Env) {
			b := e.B
			tid := e.Tid()
			isRow, p, off, v, d, x, cond := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.SetLtImm(isRow, e.Ctaid(), int64(half))
			b.If(isRow)
			// Row tile: forward substitution; thread owns column tid.
			b.For(p, t)
			b.MulImm(off, p, t)
			b.Add(off, off, tid)
			e.LdTile(x, 1, off) // Row[p][tid]
			rr := b.Reg()
			b.For(rr, t)
			b.SetLt(cond, p, rr)
			b.If(cond)
			b.MulImm(off, rr, t)
			b.Add(off, off, p)
			e.LdTile(d, 0, off) // D[r][p]
			b.Mul(d, d, x)
			b.MulImm(off, rr, t)
			b.Add(off, off, tid)
			e.LdTile(v, 1, off)
			b.Sub(v, v, d)
			e.StTile(1, off, v)
			b.EndIf()
			b.EndFor()
			b.EndFor()
			b.Else()
			// Column tile: backward substitution against U; thread owns
			// row tid.
			b.For(p, t)
			b.MulImm(off, p, t)
			b.Add(off, off, p)
			e.LdTile(d, 0, off) // D[p][p]
			b.MulImm(off, tid, t)
			b.Add(off, off, p)
			e.LdTile(x, 1, off)
			b.Div(x, x, d)
			e.StTile(1, off, x)
			cc := b.Reg()
			b.For(cc, t)
			b.SetLt(cond, p, cc)
			b.If(cond)
			b.MulImm(off, p, t)
			b.Add(off, off, cc)
			e.LdTile(d, 0, off) // D[p][c]
			b.Mul(d, d, x)
			b.MulImm(off, tid, t)
			b.Add(off, off, cc)
			e.LdTile(v, 1, off)
			b.Sub(v, v, d)
			e.StTile(1, off, v)
			b.EndIf()
			b.EndFor()
			b.EndFor()
			b.EndIf()
		})
	}

	// Internal kernel: block (i, j) does A[i][j] -= Col(i,k) x Row(k,j).
	// 256 threads, one per element.
	buildInternal := func(org system.MemOrg, k int) *gpu.Kernel {
		side := nb - 1 - k
		tiles := []TileSpec{
			tileSpec(true, false, func(e *Env) (int, int) { // Col tile (i, k)
				b := e.B
				br, bc := b.Reg(), b.Reg()
				b.DivImm(br, e.Ctaid(), int64(side))
				b.AddImm(br, br, int64(k+1))
				b.MovImm(bc, int64(k))
				return br, bc
			}),
			tileSpec(true, false, func(e *Env) (int, int) { // Row tile (k, j)
				b := e.B
				br, bc := b.Reg(), b.Reg()
				b.MovImm(br, int64(k))
				b.ModImm(bc, e.Ctaid(), int64(side))
				b.AddImm(bc, bc, int64(k+1))
				return br, bc
			}),
			tileSpec(true, true, func(e *Env) (int, int) { // own tile (i, j)
				b := e.B
				br, bc := b.Reg(), b.Reg()
				b.DivImm(br, e.Ctaid(), int64(side))
				b.AddImm(br, br, int64(k+1))
				b.ModImm(bc, e.Ctaid(), int64(side))
				b.AddImm(bc, bc, int64(k+1))
				return br, bc
			}),
		}
		return BuildKernel(org, tw, side*side, tiles, func(e *Env) {
			b := e.B
			r, c, p, off, acc, lv, uv := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.DivImm(r, e.Tid(), t)
			b.ModImm(c, e.Tid(), t)
			e.LdTile(acc, 2, e.Tid())
			b.For(p, t)
			b.MulImm(off, r, t)
			b.Add(off, off, p)
			e.LdTile(lv, 0, off)
			b.MulImm(off, p, t)
			b.Add(off, off, c)
			e.LdTile(uv, 1, off)
			b.Mul(lv, lv, uv)
			b.Sub(acc, acc, lv)
			b.Flops(1)
			b.EndFor()
			e.StTile(2, e.Tid(), acc)
		})
	}

	w.Run = func(s *system.System, org system.MemOrg) {
		lRef = make([]uint32, n*n)
		uRef = make([]uint32, n*n)
		for i := 0; i < n; i++ {
			lRef[i*n+i] = 1
			uRef[i*n+i] = 1
			for j := 0; j < i; j++ {
				lRef[i*n+j] = uint32((i*7 + j*3) % 4)
			}
			for j := i + 1; j < n; j++ {
				uRef[i*n+j] = uint32((i*5 + j) % 4)
			}
		}
		aBase = s.Alloc(n*n, func(idx int) uint32 {
			i, j := idx/n, idx%n
			var acc uint32
			for p := 0; p <= i && p <= j; p++ {
				acc += lRef[i*n+p] * uRef[p*n+j]
			}
			return acc
		})
		for k := 0; k < nb; k++ {
			s.RunKernel(buildDiag(org, k))
			if k < nb-1 {
				// Matrix tiles span ~5 pages each; four resident blocks
				// keep the active mappings within the VP-map.
				s.RunKernel(throttle(buildPerimeter(org, k), 4))
				s.RunKernel(throttle(buildInternal(org, k), 4))
			}
		}
	}
	w.Verify = func(s *system.System) error {
		s.FlushForVerify()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := uRef[i*n+j]
				if i > j {
					want = lRef[i*n+j]
				}
				got := s.ReadGlobal(aBase + memdata.VAddr((i*n+j)*4))
				if got != want {
					return errf("lud: M[%d][%d] = %d, want %d", i, j, got, want)
				}
			}
		}
		return nil
	}
	return w
}
