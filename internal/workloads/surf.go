package workloads

import (
	"stash/internal/core"
	"stash/internal/gpu"
	"stash/internal/memdata"
	"stash/internal/system"
)

// SURF is the computer-vision interest-point detector evaluated at the
// paper's 66 KB image size (we use a 128x128 single-channel image,
// 64 KB). Three kernels reproduce the detector's memory structure:
// per-row inclusive prefix sums (shared-memory Hillis-Steele scan),
// per-column prefix sums (completing the integral image), and a
// difference-of-boxes response computed per 16x16 pixel tile from a
// 25x25 integral-image patch staged in local memory.
func SURF() *Workload {
	const (
		n        = 128
		tile     = 16
		halo     = 5                 // box lookups reach from -5 to +4
		patch    = tile + 2*halo - 1 // 25
		interior = n/tile - 2        // tiles away from the border: 6
		blockDim = tile * tile
	)
	var imgBase, integBase, respBase memdata.VAddr
	var imgRef []uint32
	w := &Workload{Name: "surf", Micro: false}

	// scanKernel builds a per-row or per-column inclusive prefix scan.
	scanKernel := func(org system.MemOrg, byRow bool) *gpu.Kernel {
		shape := core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: n, NumRows: 1}
		stridePerBlock := int64(n * 4)
		if !byRow {
			shape = core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: 1, StrideBytes: n * 4, NumRows: n}
			stridePerBlock = 4
		}
		tiles := []TileSpec{{
			Shape: shape,
			GBase: func(e *Env) int {
				r := e.B.Reg()
				e.B.MulImm(r, e.Ctaid(), stridePerBlock)
				e.B.AddImm(r, r, int64(integBase))
				return r
			},
			In: true, Out: true,
		}}
		return BuildKernel(org, n, n, tiles, func(e *Env) {
			b := e.B
			t := e.Tid()
			x, y, off, cond := b.Reg(), b.Reg(), b.Reg(), b.Reg()
			for d := 1; d < n; d *= 2 {
				e.LdTile(x, 0, t)
				b.SetLtImm(cond, t, int64(d))
				b.SetEqImm(cond, cond, 0) // t >= d
				b.If(cond)
				b.AddImm(off, t, int64(-d))
				e.LdTile(y, 0, off)
				b.Add(x, x, y)
				b.EndIf()
				b.Barrier()
				e.StTile(0, t, x)
				b.Barrier()
			}
		})
	}

	// responseKernel computes resp = 9*small - big for interior pixels,
	// where small and big are box sums over the integral image.
	responseKernel := func(org system.MemOrg) *gpu.Kernel {
		tiles := []TileSpec{
			{ // 25x25 integral patch, offset (-5, -5) from the pixel tile
				Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: patch, StrideBytes: n * 4, NumRows: patch},
				GBase: func(e *Env) int {
					b := e.B
					by, bx, r := b.Reg(), b.Reg(), b.Reg()
					b.DivImm(by, e.Ctaid(), interior)
					b.AddImm(by, by, 1)
					b.ModImm(bx, e.Ctaid(), interior)
					b.AddImm(bx, bx, 1)
					b.MulImm(r, by, int64(tile*n*4))
					b.MulImm(bx, bx, int64(tile*4))
					b.Add(r, r, bx)
					b.AddImm(r, r, int64(integBase)-int64(halo*(n+1)*4))
					return r
				},
				In: true,
			},
			{ // 16x16 response tile
				Shape: core.MapParams{FieldBytes: 4, ObjectBytes: 4, RowElems: tile, StrideBytes: n * 4, NumRows: tile},
				GBase: func(e *Env) int {
					b := e.B
					by, bx, r := b.Reg(), b.Reg(), b.Reg()
					b.DivImm(by, e.Ctaid(), interior)
					b.AddImm(by, by, 1)
					b.ModImm(bx, e.Ctaid(), interior)
					b.AddImm(bx, bx, 1)
					b.MulImm(r, by, int64(tile*n*4))
					b.MulImm(bx, bx, int64(tile*4))
					b.Add(r, r, bx)
					b.AddImm(r, r, int64(respBase))
					return r
				},
				Out: true,
			},
		}
		return BuildKernel(org, blockDim, interior*interior, tiles, func(e *Env) {
			b := e.B
			py, px := b.Reg(), b.Reg()
			b.DivImm(py, e.Tid(), tile)
			b.ModImm(px, e.Tid(), tile)
			// Patch coordinates of the pixel: (py+halo, px+halo).
			// rect(dy0,dx0,dy1,dx1) relative to the pixel, using the
			// inclusive-prefix identity.
			acc := b.Reg()
			rect := func(dst int, dy0, dx0, dy1, dx1 int) {
				corner := func(out int, dy, dx int) {
					off := b.Reg()
					b.AddImm(off, py, int64(halo+dy))
					b.MulImm(off, off, patch)
					t := b.Reg()
					b.AddImm(t, px, int64(halo+dx))
					b.Add(off, off, t)
					e.LdTile(out, 0, off)
				}
				c1, c2, c3 := b.Reg(), b.Reg(), b.Reg()
				corner(dst, dy1, dx1)
				corner(c1, dy0-1, dx1)
				corner(c2, dy1, dx0-1)
				corner(c3, dy0-1, dx0-1)
				b.Sub(dst, dst, c1)
				b.Sub(dst, dst, c2)
				b.Add(dst, dst, c3)
			}
			big, small := b.Reg(), b.Reg()
			rect(big, -4, -4, 4, 4)
			rect(small, -2, -2, 2, 2)
			b.MulImm(small, small, 9)
			b.Sub(acc, small, big)
			b.Flops(2)
			e.StTile(1, e.Tid(), acc)
		})
	}

	w.Run = func(s *system.System, org system.MemOrg) {
		imgRef = make([]uint32, n*n)
		for i := range imgRef {
			imgRef[i] = uint32((i*31)%16 + 1)
		}
		imgBase = s.Alloc(n*n, func(i int) uint32 { return imgRef[i] })
		integBase = s.Alloc(n*n, func(i int) uint32 { return imgRef[i] }) // scanned in place
		respBase = s.Alloc(n*n, nil)
		_ = imgBase
		s.RunKernel(scanKernel(org, true))
		// A column tile touches one page per 8 rows (16 pages); three
		// resident blocks keep the active mappings within the VP-map.
		s.RunKernel(throttle(scanKernel(org, false), 3))
		s.RunKernel(responseKernel(org))
	}
	w.Verify = func(s *system.System) error {
		s.FlushForVerify()
		// Reference integral image.
		integ := make([]uint32, n*n)
		copy(integ, imgRef)
		for y := 0; y < n; y++ {
			for x := 1; x < n; x++ {
				integ[y*n+x] += integ[y*n+x-1]
			}
		}
		for x := 0; x < n; x++ {
			for y := 1; y < n; y++ {
				integ[y*n+x] += integ[(y-1)*n+x]
			}
		}
		at := func(y, x int) uint32 { return integ[y*n+x] }
		rect := func(y, x, dy0, dx0, dy1, dx1 int) uint32 {
			return at(y+dy1, x+dx1) - at(y+dy0-1, x+dx1) - at(y+dy1, x+dx0-1) + at(y+dy0-1, x+dx0-1)
		}
		for by := 1; by <= interior; by++ {
			for bx := 1; bx <= interior; bx++ {
				for py := 0; py < tile; py++ {
					for px := 0; px < tile; px++ {
						y, x := by*tile+py, bx*tile+px
						want := 9*rect(y, x, -2, -2, 2, 2) - rect(y, x, -4, -4, 4, 4)
						got := s.ReadGlobal(respBase + memdata.VAddr((y*n+x)*4))
						if got != want {
							return errf("surf: resp[%d][%d] = %d, want %d", y, x, got, want)
						}
					}
				}
			}
		}
		return nil
	}
	return w
}

// Applications returns fresh instances of the seven applications in the
// paper's Figure 6 order.
func Applications() []*Workload {
	return []*Workload{LUD(), SURF(), Backprop(), NW(), Pathfinder(), SGEMM(), Stencil()}
}
