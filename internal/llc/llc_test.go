package llc

import (
	"testing"

	"stash/internal/coh"
	"stash/internal/energy"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/sim"
	"stash/internal/stats"
)

// capture is a test component that records every packet it receives.
type capture struct {
	got []*coh.Packet
}

func (c *capture) HandlePacket(p *coh.Packet) { c.got = append(c.got, p) }

func (c *capture) byType(t coh.PacketType) []*coh.Packet {
	var out []*coh.Packet
	for _, p := range c.got {
		if p.Type == t {
			out = append(out, p)
		}
	}
	return out
}

type rig struct {
	eng   *sim.Engine
	net   *noc.Network
	mem   *memdata.Memory
	bank  *Bank
	acct  *energy.Account
	set   *stats.Set
	nodes []*coh.Router
	caps  map[[2]int]*capture // (node, comp) -> capture
}

// newRig builds a 4x4 mesh with one LLC bank at node 0 and capture
// components for L1 and stash at every node.
func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	net := noc.New(eng, 4, 4, acct, set)
	mem := memdata.NewMemory()
	p := DefaultParams()
	bank := NewBank(eng, net, 0, p, mem, acct, set)
	r := &rig{eng: eng, net: net, mem: mem, bank: bank, acct: acct, set: set,
		caps: make(map[[2]int]*capture)}
	for n := 0; n < 16; n++ {
		router := coh.NewRouter()
		if n == 0 {
			router.Attach(coh.ToLLC, bank)
		}
		for _, comp := range []coh.Component{coh.ToL1, coh.ToStash, coh.ToDMA} {
			c := &capture{}
			r.caps[[2]int{n, int(comp)}] = c
			router.Attach(comp, c)
		}
		net.Register(n, func(m *noc.Message) { router.Deliver(m.Payload.(*coh.Packet)) })
		r.nodes = append(r.nodes, router)
	}
	return r
}

func (r *rig) cap(node int, comp coh.Component) *capture { return r.caps[[2]int{node, int(comp)}] }

func (r *rig) send(p *coh.Packet) {
	p.DstNode = 0
	p.DstComp = coh.ToLLC
	coh.Send(r.net, p)
}

func TestReadMissFetchesFromDRAM(t *testing.T) {
	r := newRig(t)
	r.mem.StoreWord(0x40, 77)
	r.send(&coh.Packet{Type: coh.ReadReq, Line: 0x40, Mask: memdata.Bit(0),
		SrcNode: 5, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	resp := r.cap(5, coh.ToL1).byType(coh.DataResp)
	if len(resp) != 1 {
		t.Fatalf("got %d DataResps, want 1", len(resp))
	}
	if resp[0].Vals[0] != 77 || resp[0].Mask != memdata.Bit(0) {
		t.Fatalf("resp vals[0]=%d mask=%v", resp[0].Vals[0], resp[0].Mask)
	}
	if r.acct.Count(energy.DRAMAccess) != 1 {
		t.Fatalf("DRAM accesses = %d, want 1", r.acct.Count(energy.DRAMAccess))
	}
}

func TestReadHitAfterFill(t *testing.T) {
	r := newRig(t)
	r.mem.StoreWord(0x40, 77)
	r.send(&coh.Packet{Type: coh.ReadReq, Line: 0x40, Mask: memdata.Bit(0),
		SrcNode: 5, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	first := r.eng.Now()
	r.send(&coh.Packet{Type: coh.ReadReq, Line: 0x40, Mask: memdata.Bit(0),
		SrcNode: 5, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	second := r.eng.Now() - first
	if second >= first {
		t.Fatalf("hit (%d cycles) not faster than miss (%d cycles)", second, first)
	}
	if r.set.Sum("llc.0.hits") != 1 || r.set.Sum("llc.0.misses") != 1 {
		t.Fatalf("hit/miss counters wrong: %v", r.set.Snapshot())
	}
}

func TestRegistrationThenForwardedRead(t *testing.T) {
	r := newRig(t)
	// Node 3's stash registers word 2 of line 0x80 with map index 7.
	r.send(&coh.Packet{Type: coh.RegReq, Line: 0x80, Mask: memdata.Bit(2),
		SrcNode: 3, SrcComp: coh.ToStash, MapIdx: 7})
	r.eng.Run()
	acks := r.cap(3, coh.ToStash).byType(coh.RegAck)
	if len(acks) != 1 {
		t.Fatalf("got %d RegAcks, want 1", len(acks))
	}
	// Node 9's L1 reads words 2 and 3: word 3 answered directly, word 2
	// forwarded to the stash owner with the recorded map index.
	r.send(&coh.Packet{Type: coh.ReadReq, Line: 0x80, Mask: memdata.Bit(2) | memdata.Bit(3),
		SrcNode: 9, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	direct := r.cap(9, coh.ToL1).byType(coh.DataResp)
	if len(direct) != 1 || direct[0].Mask != memdata.Bit(3) {
		t.Fatalf("direct resp = %+v", direct)
	}
	fwd := r.cap(3, coh.ToStash).byType(coh.FwdReadReq)
	if len(fwd) != 1 {
		t.Fatalf("got %d FwdReadReqs, want 1", len(fwd))
	}
	if fwd[0].Mask != memdata.Bit(2) || fwd[0].ReqNode != 9 || fwd[0].ReqComp != coh.ToL1 || fwd[0].MapIdx != 7 {
		t.Fatalf("forward = %+v", fwd[0])
	}
}

func TestReRegistrationInvalidatesOldOwner(t *testing.T) {
	r := newRig(t)
	r.send(&coh.Packet{Type: coh.RegReq, Line: 0x80, Mask: memdata.Bit(1),
		SrcNode: 3, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	r.send(&coh.Packet{Type: coh.RegReq, Line: 0x80, Mask: memdata.Bit(1),
		SrcNode: 4, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	inv := r.cap(3, coh.ToL1).byType(coh.OwnerInv)
	if len(inv) != 1 || inv[0].Mask != memdata.Bit(1) {
		t.Fatalf("old owner invalidations = %+v", inv)
	}
	// A read now forwards to the new owner only.
	r.send(&coh.Packet{Type: coh.ReadReq, Line: 0x80, Mask: memdata.Bit(1),
		SrcNode: 9, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	if fwd := r.cap(4, coh.ToL1).byType(coh.FwdReadReq); len(fwd) != 1 {
		t.Fatalf("forwards to new owner = %d, want 1", len(fwd))
	}
	if fwd := r.cap(3, coh.ToL1).byType(coh.FwdReadReq); len(fwd) != 0 {
		t.Fatalf("forwards to old owner = %d, want 0", len(fwd))
	}
}

func TestWritebackClearsRegistration(t *testing.T) {
	r := newRig(t)
	r.send(&coh.Packet{Type: coh.RegReq, Line: 0xc0, Mask: memdata.Bit(0),
		SrcNode: 3, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	var vals [memdata.WordsPerLine]uint32
	vals[0] = 1234
	r.send(&coh.Packet{Type: coh.WBReq, Line: 0xc0, Mask: memdata.Bit(0), Vals: vals,
		SrcNode: 3, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	if acks := r.cap(3, coh.ToL1).byType(coh.WBAck); len(acks) != 1 {
		t.Fatalf("WBAcks = %d, want 1", len(acks))
	}
	v, owner, ok := r.bank.Peek(0xc0)
	if !ok || owner != nil || v != 1234 {
		t.Fatalf("Peek = (%d, %v, %v), want (1234, nil, true)", v, owner, ok)
	}
	// A read is now answered directly.
	r.send(&coh.Packet{Type: coh.ReadReq, Line: 0xc0, Mask: memdata.Bit(0),
		SrcNode: 9, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	resp := r.cap(9, coh.ToL1).byType(coh.DataResp)
	if len(resp) != 1 || resp[0].Vals[0] != 1234 {
		t.Fatalf("read after WB = %+v", resp)
	}
}

func TestStaleWritebackDropped(t *testing.T) {
	r := newRig(t)
	// Node 3 registers, then node 4 re-registers (stealing ownership),
	// then node 3's (now stale) writeback arrives.
	r.send(&coh.Packet{Type: coh.RegReq, Line: 0xc0, Mask: memdata.Bit(0),
		SrcNode: 3, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	r.send(&coh.Packet{Type: coh.RegReq, Line: 0xc0, Mask: memdata.Bit(0),
		SrcNode: 4, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	var vals [memdata.WordsPerLine]uint32
	vals[0] = 999
	r.send(&coh.Packet{Type: coh.WBReq, Line: 0xc0, Mask: memdata.Bit(0), Vals: vals,
		SrcNode: 3, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	_, owner, ok := r.bank.Peek(0xc0)
	if !ok || owner == nil || owner.Node != 4 {
		t.Fatalf("ownership lost: owner=%v ok=%v", owner, ok)
	}
}

func TestUncachedWriteDisplacesOwner(t *testing.T) {
	r := newRig(t)
	r.send(&coh.Packet{Type: coh.RegReq, Line: 0x100, Mask: memdata.Bit(5),
		SrcNode: 3, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	var vals [memdata.WordsPerLine]uint32
	vals[5] = 55
	r.send(&coh.Packet{Type: coh.WriteReq, Line: 0x100, Mask: memdata.Bit(5), Vals: vals,
		SrcNode: 7, SrcComp: coh.ToDMA, MapIdx: -1})
	r.eng.Run()
	if inv := r.cap(3, coh.ToL1).byType(coh.OwnerInv); len(inv) != 1 {
		t.Fatalf("OwnerInvs = %d, want 1", len(inv))
	}
	v, owner, ok := r.bank.Peek(0x100 + 5*memdata.WordBytes)
	if !ok || owner != nil || v != 55 {
		t.Fatalf("Peek = (%d, %v, %v)", v, owner, ok)
	}
}

func TestEvictionWritesDirtyToDRAM(t *testing.T) {
	r := newRig(t)
	p := DefaultParams()
	// Fill one set beyond capacity. Lines mapping to set 0 of bank 0 are
	// spaced LineBytes*NumBanks*numSets apart.
	numSets := (p.BankBytes / memdata.LineBytes) / p.Ways
	stride := memdata.PAddr(memdata.LineBytes * p.NumBanks * numSets)
	// Dirty the first line via an uncached write.
	var vals [memdata.WordsPerLine]uint32
	vals[0] = 4242
	r.send(&coh.Packet{Type: coh.WriteReq, Line: 0, Mask: memdata.Bit(0), Vals: vals,
		SrcNode: 7, SrcComp: coh.ToDMA, MapIdx: -1})
	r.eng.Run()
	for i := 1; i <= p.Ways; i++ {
		r.send(&coh.Packet{Type: coh.ReadReq, Line: memdata.PAddr(i) * stride, Mask: memdata.Bit(0),
			SrcNode: 5, SrcComp: coh.ToL1, MapIdx: -1})
		r.eng.Run()
	}
	if r.set.Sum("llc.0.evictions") == 0 {
		t.Fatal("no evictions occurred")
	}
	if got := r.mem.LoadWord(0); got != 4242 {
		t.Fatalf("DRAM word 0 = %d, want 4242 (dirty eviction lost)", got)
	}
}

func TestPinnedLinesSurviveEviction(t *testing.T) {
	r := newRig(t)
	p := DefaultParams()
	numSets := (p.BankBytes / memdata.LineBytes) / p.Ways
	stride := memdata.PAddr(memdata.LineBytes * p.NumBanks * numSets)
	// Register line 0 (pins it), then stream the set.
	r.send(&coh.Packet{Type: coh.RegReq, Line: 0, Mask: memdata.Bit(0),
		SrcNode: 3, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	for i := 1; i <= 2*p.Ways; i++ {
		r.send(&coh.Packet{Type: coh.ReadReq, Line: memdata.PAddr(i) * stride, Mask: memdata.Bit(0),
			SrcNode: 5, SrcComp: coh.ToL1, MapIdx: -1})
		r.eng.Run()
	}
	_, owner, ok := r.bank.Peek(0)
	if !ok || owner == nil || owner.Node != 3 {
		t.Fatalf("pinned registration evicted: owner=%v ok=%v", owner, ok)
	}
}

func TestBankOfInterleaving(t *testing.T) {
	if BankOf(0, 16) != 0 || BankOf(64, 16) != 1 || BankOf(64*16, 16) != 0 {
		t.Fatal("BankOf interleaving wrong")
	}
}

func TestL2EnergyCharged(t *testing.T) {
	r := newRig(t)
	r.send(&coh.Packet{Type: coh.ReadReq, Line: 0x40, Mask: memdata.Bit(0),
		SrcNode: 5, SrcComp: coh.ToL1, MapIdx: -1})
	r.eng.Run()
	if r.acct.Count(energy.L2Access) != 1 {
		t.Fatalf("L2 accesses = %d, want 1", r.acct.Count(energy.L2Access))
	}
}
