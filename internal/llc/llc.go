// Package llc implements the shared last-level cache: 16 NUCA banks
// (one per mesh node) that together act as the DeNovo registry.
//
// Each word of a cached line is either backed by data at the LLC or
// registered to exactly one owner (an L1 or a stash). Registrations for
// stash words also record the owner's stash-map index so a remote
// request can locate the word inside the owner's stash (paper
// Section 4.3, extension 3). In hardware the owner record lives in the
// LLC data word itself, so it adds no storage; here it is a parallel
// array for clarity.
package llc

import (
	"cmp"
	"fmt"
	"maps"
	"slices"

	"stash/internal/coh"
	"stash/internal/energy"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/sim"
	"stash/internal/stats"
)

// Params configures an LLC bank.
type Params struct {
	BankBytes int       // capacity of this bank
	Ways      int       // set associativity
	AccessLat sim.Cycle // tag+data access latency
	OccupyLat sim.Cycle // bank busy time per access (throughput)
	DRAMLat   sim.Cycle // additional latency for a fill from memory
	NumBanks  int       // banks in the system (for address interleaving)
}

// DefaultParams returns the paper's Table 2 L2 configuration: 4 MB
// across 16 banks, 16-way, with latencies that land L2 hits in the
// 29-61 cycle range and memory accesses in the 197-261 range once NoC
// traversal is added.
func DefaultParams() Params {
	return Params{
		BankBytes: 256 << 10,
		Ways:      16,
		AccessLat: 24,
		OccupyLat: 2,
		DRAMLat:   170,
		NumBanks:  16,
	}
}

// BankOf returns the bank index that caches the given line under
// line-interleaved NUCA mapping.
func BankOf(line memdata.PAddr, numBanks int) int {
	return int(line/memdata.LineBytes) % numBanks
}

type line struct {
	addr  memdata.PAddr
	vals  [memdata.WordsPerLine]uint32
	owner [memdata.WordsPerLine]*coh.Owner
	dirty memdata.WordMask // words newer than DRAM
	live  bool
}

func (l *line) pinned() bool {
	for _, o := range l.owner {
		if o != nil {
			return true
		}
	}
	return false
}

type cacheSet struct {
	lines []*line // LRU order: front = most recent
}

// Bank is one LLC bank, attached to a node's router as coh.ToLLC.
type Bank struct {
	eng  *sim.Engine
	net  *noc.Network
	node int
	p    Params
	mem  *memdata.Memory
	acct *energy.Account

	sets     []cacheSet
	nextFree sim.Cycle

	hits      *stats.Counter
	misses    *stats.Counter
	forwards  *stats.Counter
	regs      *stats.Counter
	wbs       *stats.Counter
	evictions *stats.Counter
}

// NewBank builds the bank resident at node, using mem as backing DRAM.
func NewBank(eng *sim.Engine, net *noc.Network, node int, p Params, mem *memdata.Memory, acct *energy.Account, set *stats.Set) *Bank {
	numLines := p.BankBytes / memdata.LineBytes
	numSets := numLines / p.Ways
	if numSets == 0 {
		panic("llc: bank too small for associativity")
	}
	b := &Bank{
		eng:       eng,
		net:       net,
		node:      node,
		p:         p,
		mem:       mem,
		acct:      acct,
		sets:      make([]cacheSet, numSets),
		hits:      set.Counter(fmt.Sprintf("llc.%d.hits", node)),
		misses:    set.Counter(fmt.Sprintf("llc.%d.misses", node)),
		forwards:  set.Counter(fmt.Sprintf("llc.%d.forwards", node)),
		regs:      set.Counter(fmt.Sprintf("llc.%d.registrations", node)),
		wbs:       set.Counter(fmt.Sprintf("llc.%d.writebacks", node)),
		evictions: set.Counter(fmt.Sprintf("llc.%d.evictions", node)),
	}
	return b
}

func (b *Bank) setIndex(addr memdata.PAddr) int {
	return int(addr/(memdata.LineBytes*memdata.PAddr(b.p.NumBanks))) % len(b.sets)
}

// lookup returns the resident line for addr, refreshing LRU, or nil.
func (b *Bank) lookup(addr memdata.PAddr) *line {
	s := &b.sets[b.setIndex(addr)]
	for i, l := range s.lines {
		if l.addr == addr && l.live {
			copy(s.lines[1:i+1], s.lines[:i])
			s.lines[0] = l
			return l
		}
	}
	return nil
}

// fetch ensures addr's line is resident, filling from DRAM if needed.
// It reports whether a DRAM fill occurred.
func (b *Bank) fetch(addr memdata.PAddr) (*line, bool) {
	if l := b.lookup(addr); l != nil {
		return l, false
	}
	s := &b.sets[b.setIndex(addr)]
	l := &line{addr: addr, vals: b.mem.LoadLine(addr), live: true}
	b.acct.Add(energy.DRAMAccess, 1)
	if len(s.lines) < b.p.Ways {
		s.lines = append([]*line{l}, s.lines...)
		return l, true
	}
	// Evict the least recently used non-pinned line. Registered words pin
	// a line: the registry entry must survive until written back.
	victim := -1
	for i := len(s.lines) - 1; i >= 0; i-- {
		if !s.lines[i].pinned() {
			victim = i
			break
		}
	}
	if victim < 0 {
		panic(fmt.Sprintf("llc: all ways pinned in set %d (bank %d); increase capacity", b.setIndex(addr), b.node))
	}
	v := s.lines[victim]
	if v.dirty != 0 {
		b.mem.StoreMasked(v.addr, v.dirty, v.vals)
		b.acct.Add(energy.DRAMAccess, 1)
	}
	b.evictions.Inc()
	copy(s.lines[1:victim+1], s.lines[:victim])
	s.lines[0] = l
	return l, true
}

// HandlePacket implements coh.Handler. Requests are serialized through
// the bank with OccupyLat throughput and answered after AccessLat
// (plus DRAMLat on a fill).
func (b *Bank) HandlePacket(p *coh.Packet) {
	start := b.eng.Now()
	if b.nextFree > start {
		start = b.nextFree
	}
	b.nextFree = start + b.p.OccupyLat
	b.acct.Add(energy.L2Access, 1)
	b.eng.At(start+b.p.AccessLat, func() { b.process(p) })
}

func (b *Bank) process(p *coh.Packet) {
	switch p.Type {
	case coh.ReadReq:
		b.read(p)
	case coh.RegReq:
		b.register(p)
	case coh.WBReq:
		b.writeback(p)
	case coh.WriteReq:
		b.write(p)
	default:
		panic("llc: unexpected packet " + p.Type.String())
	}
}

// respond finishes a transaction, adding DRAM latency if the line was
// just filled.
func (b *Bank) respond(filled bool, send func()) {
	if filled {
		b.eng.Schedule(b.p.DRAMLat, send)
	} else {
		b.eng.Schedule(0, send)
	}
}

func (b *Bank) read(p *coh.Packet) {
	l, filled := b.fetch(p.Line)
	if filled {
		b.misses.Inc()
	} else {
		b.hits.Inc()
	}
	direct := memdata.WordMask(0)
	fwd := make(map[coh.Owner]memdata.WordMask)
	for i := 0; i < memdata.WordsPerLine; i++ {
		if !p.Mask.Has(i) {
			continue
		}
		if o := l.owner[i]; o != nil {
			fwd[*o] |= memdata.Bit(i)
		} else {
			direct |= memdata.Bit(i)
		}
	}
	b.respond(filled, func() {
		if direct != 0 {
			coh.Send(b.net, &coh.Packet{
				Type: coh.DataResp, Line: p.Line, Mask: direct, Vals: l.vals,
				SrcNode: b.node, SrcComp: coh.ToLLC,
				DstNode: p.SrcNode, DstComp: p.SrcComp,
			})
		}
		for _, o := range sortedOwners(fwd) {
			m := fwd[o]
			b.forwards.Inc()
			coh.Send(b.net, &coh.Packet{
				Type: coh.FwdReadReq, Line: p.Line, Mask: m,
				SrcNode: b.node, SrcComp: coh.ToLLC,
				DstNode: o.Node, DstComp: o.Comp,
				ReqNode: p.SrcNode, ReqComp: p.SrcComp,
				MapIdx: o.MapIdx,
			})
		}
	})
}

// sortedOwners fixes the send order of per-owner forwards and
// invalidations: map iteration order would make packet injection — and
// therefore cycle counts — vary between runs of the same simulation.
func sortedOwners(m map[coh.Owner]memdata.WordMask) []coh.Owner {
	return slices.SortedFunc(maps.Keys(m), func(a, b coh.Owner) int {
		if c := cmp.Compare(a.Node, b.Node); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Comp, b.Comp); c != 0 {
			return c
		}
		return cmp.Compare(a.MapIdx, b.MapIdx)
	})
}

func (b *Bank) register(p *coh.Packet) {
	l, filled := b.fetch(p.Line)
	b.regs.Inc()
	newOwner := coh.Owner{Node: p.SrcNode, Comp: p.SrcComp, MapIdx: p.MapIdx}
	inv := make(map[coh.Owner]memdata.WordMask)
	for i := 0; i < memdata.WordsPerLine; i++ {
		if !p.Mask.Has(i) {
			continue
		}
		if o := l.owner[i]; o != nil && *o != newOwner {
			inv[*o] |= memdata.Bit(i)
		}
		o := newOwner
		l.owner[i] = &o
	}
	b.respond(filled, func() {
		for _, o := range sortedOwners(inv) {
			coh.Send(b.net, &coh.Packet{
				Type: coh.OwnerInv, Line: p.Line, Mask: inv[o],
				SrcNode: b.node, SrcComp: coh.ToLLC,
				DstNode: o.Node, DstComp: o.Comp,
				MapIdx: o.MapIdx,
			})
		}
		coh.Send(b.net, &coh.Packet{
			Type: coh.RegAck, Line: p.Line, Mask: p.Mask,
			SrcNode: b.node, SrcComp: coh.ToLLC,
			DstNode: p.SrcNode, DstComp: p.SrcComp,
			MapIdx: p.MapIdx,
		})
	})
}

func (b *Bank) writeback(p *coh.Packet) {
	l, filled := b.fetch(p.Line)
	b.wbs.Inc()
	sender := coh.Owner{Node: p.SrcNode, Comp: p.SrcComp, MapIdx: p.MapIdx}
	for i := 0; i < memdata.WordsPerLine; i++ {
		if !p.Mask.Has(i) {
			continue
		}
		o := l.owner[i]
		if o == nil || o.Node != sender.Node || o.Comp != sender.Comp {
			// The word was re-registered (or never owned by the sender):
			// the incoming value is stale; the current owner is
			// authoritative. Drop it.
			continue
		}
		l.vals[i] = p.Vals[i]
		l.owner[i] = nil
		l.dirty |= memdata.Bit(i)
	}
	b.respond(filled, func() {
		coh.Send(b.net, &coh.Packet{
			Type: coh.WBAck, Line: p.Line, Mask: p.Mask,
			SrcNode: b.node, SrcComp: coh.ToLLC,
			DstNode: p.SrcNode, DstComp: p.SrcComp,
		})
	})
}

// write handles uncached writes (DMA scratchpad writeout): the data is
// deposited at the LLC, displacing any stale registration.
func (b *Bank) write(p *coh.Packet) {
	l, filled := b.fetch(p.Line)
	b.wbs.Inc()
	inv := make(map[coh.Owner]memdata.WordMask)
	for i := 0; i < memdata.WordsPerLine; i++ {
		if !p.Mask.Has(i) {
			continue
		}
		if o := l.owner[i]; o != nil {
			inv[*o] |= memdata.Bit(i)
			l.owner[i] = nil
		}
		l.vals[i] = p.Vals[i]
		l.dirty |= memdata.Bit(i)
	}
	b.respond(filled, func() {
		for _, o := range sortedOwners(inv) {
			coh.Send(b.net, &coh.Packet{
				Type: coh.OwnerInv, Line: p.Line, Mask: inv[o],
				SrcNode: b.node, SrcComp: coh.ToLLC,
				DstNode: o.Node, DstComp: o.Comp,
				MapIdx: o.MapIdx,
			})
		}
		coh.Send(b.net, &coh.Packet{
			Type: coh.WBAck, Line: p.Line, Mask: p.Mask,
			SrcNode: b.node, SrcComp: coh.ToLLC,
			DstNode: p.SrcNode, DstComp: p.SrcComp,
		})
	})
}

// Peek returns the word's value and owner as seen by the registry,
// for tests and end-of-run verification. The second result is nil when
// the LLC itself holds the data; ok is false when the line is not
// resident (the value then lives in DRAM).
func (b *Bank) Peek(addr memdata.PAddr) (val uint32, owner *coh.Owner, ok bool) {
	lineAddr := memdata.LineOf(addr)
	s := &b.sets[b.setIndex(lineAddr)]
	for _, l := range s.lines {
		if l.live && l.addr == lineAddr {
			w := memdata.WordIndex(addr)
			return l.vals[w], l.owner[w], true
		}
	}
	return 0, nil, false
}
