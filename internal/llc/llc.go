// Package llc implements the shared last-level cache: 16 NUCA banks
// (one per mesh node) that together act as the DeNovo registry.
//
// Each word of a cached line is either backed by data at the LLC or
// registered to exactly one owner (an L1 or a stash). Registrations for
// stash words also record the owner's stash-map index so a remote
// request can locate the word inside the owner's stash (paper
// Section 4.3, extension 3). In hardware the owner record lives in the
// LLC data word itself, so it adds no storage; here it is a parallel
// array for clarity.
package llc

import (
	"fmt"
	"strings"

	"stash/internal/check"
	"stash/internal/coh"
	"stash/internal/energy"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/trace"
)

// Params configures an LLC bank.
type Params struct {
	BankBytes int       // capacity of this bank
	Ways      int       // set associativity
	AccessLat sim.Cycle // tag+data access latency
	OccupyLat sim.Cycle // bank busy time per access (throughput)
	DRAMLat   sim.Cycle // additional latency for a fill from memory
	NumBanks  int       // banks in the system (for address interleaving)
	// ReadExtra and WriteExtra add technology-dependent cycles to a
	// bank's service time: ReadExtra on ReadReq, WriteExtra on the
	// write-class requests (RegReq, WBReq, WriteReq). The extra cycles
	// extend both the access latency and the bank occupancy, so requests
	// are still processed strictly in arrival order — per-type latency
	// can never reorder directory updates. Zero (the SRAM baseline) is
	// bit-identical to the pre-technology timing model.
	ReadExtra  sim.Cycle
	WriteExtra sim.Cycle
	// TechEnergy switches energy charging from the unified L2Access
	// class to the read/write-split classes (L2Read/L2Write). Off by
	// default, keeping the default energy total bit-identical.
	TechEnergy bool
}

// DefaultParams returns the paper's Table 2 L2 configuration: 4 MB
// across 16 banks, 16-way, with latencies that land L2 hits in the
// 29-61 cycle range and memory accesses in the 197-261 range once NoC
// traversal is added.
func DefaultParams() Params {
	return Params{
		BankBytes: 256 << 10,
		Ways:      16,
		AccessLat: 24,
		OccupyLat: 2,
		DRAMLat:   170,
		NumBanks:  16,
	}
}

// BankOf returns the bank index that caches the given line under
// line-interleaved NUCA mapping.
func BankOf(line memdata.PAddr, numBanks int) int {
	return int(line/memdata.LineBytes) % numBanks
}

// line is one resident LLC line. Owners are stored by value with a
// validity mask: the old per-word *coh.Owner representation allocated
// an Owner on every registration, which is the hottest directory
// operation.
type line struct {
	addr  memdata.PAddr
	vals  [memdata.WordsPerLine]uint32
	owner [memdata.WordsPerLine]coh.Owner
	owned memdata.WordMask // words registered to owner[i]
	dirty memdata.WordMask // words newer than DRAM
}

func (l *line) pinned() bool { return l.owned != 0 }

// cacheSet is one associativity set. Ways do not move: recency lives
// in a per-way LRU stamp rather than physical list order, so a hit
// refreshes recency with one word write and an eviction replaces a
// way in place. The tag array is parallel to lines so the hot lookup
// scan never dereferences a line pointer; within len both arrays
// always describe live lines.
type cacheSet struct {
	addrs []memdata.PAddr
	lines []*line
	stamp []uint64
}

// ownerGroups collects the per-owner word masks of one directory
// operation (the forwards of a read, the invalidations of a register or
// write). Owners are kept sorted by (Node, Comp, MapIdx), so iterating
// by index sends packets in exactly the order the old sorted-map-keys
// code did — determinism by construction, with the groups reused from a
// pool instead of a fresh map per request.
type ownerGroups struct {
	owners []coh.Owner
	masks  []memdata.WordMask
}

func (g *ownerGroups) add(o coh.Owner, bit memdata.WordMask) {
	pos := len(g.owners)
	for i, have := range g.owners {
		if have == o {
			g.masks[i] |= bit
			return
		}
		if ownerLess(o, have) {
			pos = i
			break
		}
	}
	g.owners = append(g.owners, coh.Owner{})
	g.masks = append(g.masks, 0)
	copy(g.owners[pos+1:], g.owners[pos:])
	copy(g.masks[pos+1:], g.masks[pos:])
	g.owners[pos] = o
	g.masks[pos] = bit
}

func ownerLess(a, b coh.Owner) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Comp != b.Comp {
		return a.Comp < b.Comp
	}
	return a.MapIdx < b.MapIdx
}

// bankOp is a pooled two-stage bank operation: arrival (after the tag
// access latency) then response (after the optional DRAM fill latency).
// Its run closure is bound once at creation, so serving a request
// schedules no new closures. The response's addressing fields are
// copied out of the request packet during the arrival stage; the packet
// is not retained past it.
type bankOp struct {
	b       *Bank
	respond bool // false: arrival stage; true: response stage
	// pkt is a private copy of the arriving packet: the *coh.Packet
	// handed to HandlePacket is pooled and only valid during that call,
	// while the bank needs it AccessLat cycles later.
	pkt     coh.Packet
	kind    coh.PacketType
	line    *line            // read(): data source at response time
	direct  memdata.WordMask // read(): words answered by the LLC itself
	groups  *ownerGroups     // read(): forwards; register()/write(): invalidations
	reqLine memdata.PAddr
	reqMask memdata.WordMask
	reqNode int
	reqComp coh.Component
	reqMap  int
	run     func()
}

// Bank is one LLC bank, attached to a node's router as coh.ToLLC.
type Bank struct {
	eng  *sim.Engine
	net  *noc.Network
	node int
	p    Params
	mem  *memdata.Memory
	acct *energy.Account

	sets     []cacheSet
	stampN   uint64 // LRU stamp issuer: larger = more recently used
	nextFree sim.Cycle
	ogFree   []*ownerGroups // reusable owner-group scratch (in flight until the response sends)
	opFree   []*bankOp

	chk      *check.Checker
	inFlight int // requests accepted but not yet answered
	// stall, when set, perturbs each arriving request (fault injection):
	// a returned delay pushes the access out, drop swallows the packet
	// entirely — an induced lost wakeup the watchdog must catch.
	stall   func(now sim.Cycle) (delay sim.Cycle, drop bool)
	dropped int

	hits      *stats.Counter
	misses    *stats.Counter
	forwards  *stats.Counter
	regs      *stats.Counter
	wbs       *stats.Counter
	evictions *stats.Counter

	tsnk       *trace.Sink
	trRequests *trace.Series
	trMisses   *trace.Series
}

// NewBank builds the bank resident at node, using mem as backing DRAM.
func NewBank(eng *sim.Engine, net *noc.Network, node int, p Params, mem *memdata.Memory, acct *energy.Account, set *stats.Set) *Bank {
	numLines := p.BankBytes / memdata.LineBytes
	numSets := numLines / p.Ways
	if numSets == 0 {
		panic("llc: bank too small for associativity")
	}
	b := &Bank{
		eng:       eng,
		net:       net,
		node:      node,
		p:         p,
		mem:       mem,
		acct:      acct,
		sets:      make([]cacheSet, numSets),
		hits:      set.Counter(fmt.Sprintf("llc.%d.hits", node)),
		misses:    set.Counter(fmt.Sprintf("llc.%d.misses", node)),
		forwards:  set.Counter(fmt.Sprintf("llc.%d.forwards", node)),
		regs:      set.Counter(fmt.Sprintf("llc.%d.registrations", node)),
		wbs:       set.Counter(fmt.Sprintf("llc.%d.writebacks", node)),
		evictions: set.Counter(fmt.Sprintf("llc.%d.evictions", node)),
	}
	ptrs := make([]*line, numLines)
	tags := make([]memdata.PAddr, numLines)
	stamps := make([]uint64, numLines)
	for i := range b.sets {
		b.sets[i] = cacheSet{
			addrs: tags[i*p.Ways : i*p.Ways : (i+1)*p.Ways],
			lines: ptrs[i*p.Ways : i*p.Ways : (i+1)*p.Ways],
			stamp: stamps[i*p.Ways : i*p.Ways : (i+1)*p.Ways],
		}
	}
	return b
}

// acquireGroups takes an owner-group scratch from the pool. It is
// released by the response closure once its packets have been sent.
func (b *Bank) acquireGroups() *ownerGroups {
	if n := len(b.ogFree); n > 0 {
		g := b.ogFree[n-1]
		b.ogFree = b.ogFree[:n-1]
		return g
	}
	return &ownerGroups{}
}

func (b *Bank) releaseGroups(g *ownerGroups) {
	g.owners = g.owners[:0]
	g.masks = g.masks[:0]
	b.ogFree = append(b.ogFree, g)
}

func (b *Bank) setIndex(addr memdata.PAddr) int {
	return int(addr/(memdata.LineBytes*memdata.PAddr(b.p.NumBanks))) % len(b.sets)
}

// lookup returns the resident line for addr, refreshing LRU, or nil.
func (b *Bank) lookup(addr memdata.PAddr) *line {
	s := &b.sets[b.setIndex(addr)]
	for i, a := range s.addrs {
		if a == addr {
			b.stampN++
			s.stamp[i] = b.stampN
			return s.lines[i]
		}
	}
	return nil
}

// fetch ensures addr's line is resident, filling from DRAM if needed.
// It reports whether a DRAM fill occurred.
func (b *Bank) fetch(addr memdata.PAddr) (*line, bool) {
	if l := b.lookup(addr); l != nil {
		return l, false
	}
	s := &b.sets[b.setIndex(addr)]
	// The line struct is allocated fresh (not pooled): an in-flight
	// response closure holds the previous occupant until it sends, and
	// reusing its storage would let a racing fill clobber the values the
	// response is about to serve. Fills are DRAM-latency rare; only the
	// set slices are reused.
	l := &line{addr: addr, vals: b.mem.LoadLine(addr)}
	b.acct.Add(energy.DRAMAccess, 1)
	if n := len(s.lines); n < cap(s.lines) {
		s.lines = s.lines[:n+1]
		s.addrs = s.addrs[:n+1]
		s.stamp = s.stamp[:n+1]
		return l, b.install(s, l, addr, n)
	}
	// Evict the least recently used non-pinned line (minimum stamp).
	// Registered words pin a line: the registry entry must survive
	// until written back.
	victim := -1
	var oldest uint64
	for i, cand := range s.lines {
		if !cand.pinned() && (victim < 0 || s.stamp[i] < oldest) {
			victim = i
			oldest = s.stamp[i]
		}
	}
	if victim < 0 {
		panic(fmt.Sprintf("llc: all ways pinned in set %d (bank %d); increase capacity", b.setIndex(addr), b.node))
	}
	v := s.lines[victim]
	if v.dirty != 0 {
		b.mem.StoreMasked(v.addr, v.dirty, v.vals)
		b.acct.Add(energy.DRAMAccess, 1)
	}
	b.evictions.Inc()
	return l, b.install(s, l, addr, victim)
}

// install places l, the freshest line, at way w. It returns true so
// fetch's fill paths can tail-call it.
func (b *Bank) install(s *cacheSet, l *line, addr memdata.PAddr, w int) bool {
	s.lines[w] = l
	s.addrs[w] = addr
	b.stampN++
	s.stamp[w] = b.stampN
	return true
}

// SetChecker attaches the self-check layer; a nil checker (the
// default) costs one nil comparison per response.
func (b *Bank) SetChecker(c *check.Checker) { b.chk = c }

// SetTrace attaches an event sink. A nil sink (the default) leaves
// every instrumented site a nil-check no-op.
func (b *Bank) SetTrace(snk *trace.Sink) {
	b.tsnk = snk
	b.trRequests = snk.Series("requests")
	b.trMisses = snk.Series("misses")
}

// SetStall installs a fault-injection hook consulted on every arriving
// request. A nil fn removes it.
func (b *Bank) SetStall(fn func(now sim.Cycle) (delay sim.Cycle, drop bool)) {
	b.stall = fn
}

// Dropped reports how many requests the stall hook has swallowed.
func (b *Bank) Dropped() int { return b.dropped }

// HandlePacket implements coh.Handler. Requests are serialized through
// the bank with OccupyLat throughput and answered after AccessLat
// (plus DRAMLat on a fill).
func (b *Bank) HandlePacket(p *coh.Packet) {
	var stallBy sim.Cycle
	if b.stall != nil {
		delay, drop := b.stall(b.eng.Now())
		if drop {
			// Induced lost wakeup: the requester waits forever for a
			// response that never comes.
			b.dropped++
			return
		}
		stallBy = delay
	}
	b.inFlight++
	b.trRequests.Add(uint64(b.eng.Now()), 1)
	extra := b.p.WriteExtra
	if p.Type == coh.ReadReq {
		extra = b.p.ReadExtra
	}
	start := b.eng.Now() + stallBy
	if b.nextFree > start {
		start = b.nextFree
	}
	b.nextFree = start + b.p.OccupyLat + extra
	if b.p.TechEnergy {
		if p.Type == coh.ReadReq {
			b.acct.Add(energy.L2Read, 1)
		} else {
			b.acct.Add(energy.L2Write, 1)
		}
	} else {
		b.acct.Add(energy.L2Access, 1)
	}
	o := b.newOp()
	o.pkt = *p
	b.eng.At(start+b.p.AccessLat+extra, o.run)
}

func (b *Bank) newOp() *bankOp {
	if n := len(b.opFree); n > 0 {
		o := b.opFree[n-1]
		b.opFree = b.opFree[:n-1]
		return o
	}
	o := &bankOp{b: b}
	o.run = o.fire
	return o
}

// fire advances the op through its two stages: the arrival stage runs
// the directory update and arms the response; the response stage sends
// the reply packets and retires the op.
func (o *bankOp) fire() {
	b := o.b
	if !o.respond {
		o.respond = true
		b.process(&o.pkt, o)
		return
	}
	switch o.kind {
	case coh.ReadReq:
		if o.direct != 0 {
			coh.Send(b.net, &coh.Packet{
				Type: coh.DataResp, Line: o.reqLine, Mask: o.direct, Vals: o.line.vals,
				SrcNode: b.node, SrcComp: coh.ToLLC,
				DstNode: o.reqNode, DstComp: o.reqComp,
			})
		}
		for i, own := range o.groups.owners {
			b.forwards.Inc()
			coh.Send(b.net, &coh.Packet{
				Type: coh.FwdReadReq, Line: o.reqLine, Mask: o.groups.masks[i],
				SrcNode: b.node, SrcComp: coh.ToLLC,
				DstNode: own.Node, DstComp: own.Comp,
				ReqNode: o.reqNode, ReqComp: o.reqComp,
				MapIdx: own.MapIdx,
			})
		}
	case coh.RegReq:
		for i, own := range o.groups.owners {
			coh.Send(b.net, &coh.Packet{
				Type: coh.OwnerInv, Line: o.reqLine, Mask: o.groups.masks[i],
				SrcNode: b.node, SrcComp: coh.ToLLC,
				DstNode: own.Node, DstComp: own.Comp,
				MapIdx: own.MapIdx,
			})
		}
		coh.Send(b.net, &coh.Packet{
			Type: coh.RegAck, Line: o.reqLine, Mask: o.reqMask,
			SrcNode: b.node, SrcComp: coh.ToLLC,
			DstNode: o.reqNode, DstComp: o.reqComp,
			MapIdx: o.reqMap,
		})
	case coh.WBReq:
		coh.Send(b.net, &coh.Packet{
			Type: coh.WBAck, Line: o.reqLine, Mask: o.reqMask,
			SrcNode: b.node, SrcComp: coh.ToLLC,
			DstNode: o.reqNode, DstComp: o.reqComp,
		})
	case coh.WriteReq:
		for i, own := range o.groups.owners {
			coh.Send(b.net, &coh.Packet{
				Type: coh.OwnerInv, Line: o.reqLine, Mask: o.groups.masks[i],
				SrcNode: b.node, SrcComp: coh.ToLLC,
				DstNode: own.Node, DstComp: own.Comp,
				MapIdx: own.MapIdx,
			})
		}
		coh.Send(b.net, &coh.Packet{
			Type: coh.WBAck, Line: o.reqLine, Mask: o.reqMask,
			SrcNode: b.node, SrcComp: coh.ToLLC,
			DstNode: o.reqNode, DstComp: o.reqComp,
		})
	}
	if o.groups != nil {
		b.releaseGroups(o.groups)
		o.groups = nil
	}
	o.line = nil
	o.respond = false
	b.opFree = append(b.opFree, o)
	b.inFlight--
	b.chk.Progress() // a directory transaction completed
}

func (b *Bank) process(p *coh.Packet, o *bankOp) {
	o.kind = p.Type
	o.reqLine = p.Line
	o.reqMask = p.Mask
	o.reqNode = p.SrcNode
	o.reqComp = p.SrcComp
	o.reqMap = p.MapIdx
	switch p.Type {
	case coh.ReadReq:
		b.read(p, o)
	case coh.RegReq:
		b.register(p, o)
	case coh.WBReq:
		b.writeback(p, o)
	case coh.WriteReq:
		b.write(p, o)
	default:
		panic("llc: unexpected packet " + p.Type.String())
	}
}

// respondOp schedules the op's response stage, adding DRAM latency if
// the line was just filled.
func (b *Bank) respondOp(filled bool, o *bankOp) {
	if filled {
		b.eng.Schedule(b.p.DRAMLat, o.run)
	} else {
		b.eng.Schedule(0, o.run)
	}
}

func (b *Bank) read(p *coh.Packet, o *bankOp) {
	l, filled := b.fetch(p.Line)
	if filled {
		b.misses.Inc()
		b.tsnk.Event(uint64(b.eng.Now()), trace.KMiss, uint64(p.Line), 0)
		b.trMisses.Add(uint64(b.eng.Now()), 1)
	} else {
		b.hits.Inc()
	}
	direct := memdata.WordMask(0)
	fwd := b.acquireGroups()
	for i := 0; i < memdata.WordsPerLine; i++ {
		if !p.Mask.Has(i) {
			continue
		}
		if l.owned.Has(i) {
			fwd.add(l.owner[i], memdata.Bit(i))
		} else {
			direct |= memdata.Bit(i)
		}
	}
	o.line = l
	o.direct = direct
	o.groups = fwd
	b.respondOp(filled, o)
}

func (b *Bank) register(p *coh.Packet, o *bankOp) {
	l, filled := b.fetch(p.Line)
	b.regs.Inc()
	newOwner := coh.Owner{Node: p.SrcNode, Comp: p.SrcComp, MapIdx: p.MapIdx}
	inv := b.acquireGroups()
	for i := 0; i < memdata.WordsPerLine; i++ {
		if !p.Mask.Has(i) {
			continue
		}
		if l.owned.Has(i) && l.owner[i] != newOwner {
			inv.add(l.owner[i], memdata.Bit(i))
		}
		l.owner[i] = newOwner
		l.owned |= memdata.Bit(i)
	}
	o.groups = inv
	b.respondOp(filled, o)
}

func (b *Bank) writeback(p *coh.Packet, o *bankOp) {
	l, filled := b.fetch(p.Line)
	b.wbs.Inc()
	b.tsnk.Event(uint64(b.eng.Now()), trace.KWriteback, uint64(p.Line), 0)
	for i := 0; i < memdata.WordsPerLine; i++ {
		if !p.Mask.Has(i) {
			continue
		}
		if !l.owned.Has(i) || l.owner[i].Node != p.SrcNode || l.owner[i].Comp != p.SrcComp {
			// The word was re-registered (or never owned by the sender):
			// the incoming value is stale; the current owner is
			// authoritative. Drop it.
			continue
		}
		l.vals[i] = p.Vals[i]
		l.owned &^= memdata.Bit(i)
		l.dirty |= memdata.Bit(i)
	}
	b.respondOp(filled, o)
}

// write handles uncached writes (DMA scratchpad writeout): the data is
// deposited at the LLC, displacing any stale registration.
func (b *Bank) write(p *coh.Packet, o *bankOp) {
	l, filled := b.fetch(p.Line)
	b.wbs.Inc()
	b.tsnk.Event(uint64(b.eng.Now()), trace.KWriteback, uint64(p.Line), 0)
	inv := b.acquireGroups()
	for i := 0; i < memdata.WordsPerLine; i++ {
		if !p.Mask.Has(i) {
			continue
		}
		if l.owned.Has(i) {
			inv.add(l.owner[i], memdata.Bit(i))
			l.owned &^= memdata.Bit(i)
		}
		l.vals[i] = p.Vals[i]
		l.dirty |= memdata.Bit(i)
	}
	o.groups = inv
	b.respondOp(filled, o)
}

// Outstanding reports requests accepted but not yet answered, for the
// watchdog's work-pending gate.
func (b *Bank) Outstanding() int { return b.inFlight }

// CheckInvariants verifies the bank's structural invariants without
// touching LRU order or any pooled state:
//
//   - owner sanity: a registered word's owner carries a stash-map index
//     exactly when the owner is a stash;
//   - no duplicate live lines within a set.
func (b *Bank) CheckInvariants() error {
	for si := range b.sets {
		s := &b.sets[si]
		for i, l := range s.lines {
			if l.addr != s.addrs[i] {
				return fmt.Errorf("set %d way %d: tag array %#x disagrees with line %#x", si, i, s.addrs[i], l.addr)
			}
			for j := i + 1; j < len(s.lines); j++ {
				if s.addrs[j] == l.addr {
					return fmt.Errorf("set %d: line %#x resident twice", si, l.addr)
				}
			}
			for w := 0; w < memdata.WordsPerLine; w++ {
				if !l.owned.Has(w) {
					continue
				}
				own := l.owner[w]
				if (own.Comp == coh.ToStash) != (own.MapIdx >= 0) {
					return fmt.Errorf("line %#x word %d: owner %v has inconsistent map index", l.addr, w, own)
				}
			}
		}
	}
	return nil
}

// ForEachOwned calls fn for every registered word in the bank, for
// cross-structure ownership audits at quiescent boundaries.
func (b *Bank) ForEachOwned(fn func(addr memdata.PAddr, word int, own coh.Owner)) {
	for si := range b.sets {
		for _, l := range b.sets[si].lines {
			if l.owned == 0 {
				continue
			}
			for w := 0; w < memdata.WordsPerLine; w++ {
				if l.owned.Has(w) {
					fn(l.addr, w, l.owner[w])
				}
			}
		}
	}
}

// DebugString renders the bank's state for failure dumps: occupancy,
// in-flight count, and every line with live registrations.
func (b *Bank) DebugString() string {
	var sb strings.Builder
	live, owned := 0, 0
	for si := range b.sets {
		for _, l := range b.sets[si].lines {
			live++
			if l.owned != 0 {
				owned++
			}
		}
	}
	fmt.Fprintf(&sb, "in-flight=%d lines=%d owned-lines=%d dropped=%d next-free=%d",
		b.inFlight, live, owned, b.dropped, b.nextFree)
	for si := range b.sets {
		for _, l := range b.sets[si].lines {
			if l.owned != 0 {
				fmt.Fprintf(&sb, "\nline %#x owned=%016b", l.addr, l.owned)
			}
		}
	}
	return sb.String()
}

// Peek returns the word's value and owner as seen by the registry,
// for tests and end-of-run verification. The second result is nil when
// the LLC itself holds the data; ok is false when the line is not
// resident (the value then lives in DRAM).
func (b *Bank) Peek(addr memdata.PAddr) (val uint32, owner *coh.Owner, ok bool) {
	lineAddr := memdata.LineOf(addr)
	s := &b.sets[b.setIndex(lineAddr)]
	for i, a := range s.addrs {
		if a == lineAddr {
			l := s.lines[i]
			w := memdata.WordIndex(addr)
			if l.owned.Has(w) {
				return l.vals[w], &l.owner[w], true
			}
			return l.vals[w], nil, true
		}
	}
	return 0, nil, false
}
