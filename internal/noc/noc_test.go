package noc

import (
	"testing"
	"testing/quick"

	"stash/internal/energy"
	"stash/internal/sim"
	"stash/internal/stats"
)

func newTestNet() (*sim.Engine, *Network, *energy.Account, *stats.Set) {
	eng := sim.NewEngine()
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	n := New(eng, 4, 4, acct, set)
	for i := 0; i < 16; i++ {
		n.Register(i, func(*Message) {})
	}
	return eng, n, acct, set
}

func TestFlits(t *testing.T) {
	cases := []struct{ bytes, want int }{
		{0, 1}, {1, 2}, {16, 2}, {17, 3}, {64, 5},
	}
	for _, c := range cases {
		if got := Flits(c.bytes); got != c.want {
			t.Errorf("Flits(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestHopsXY(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 4, 4, energy.NewAccount(energy.DefaultCosts()), stats.NewSet())
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 15, 6}, // corner to corner on 4x4
		{5, 10, 2},
	}
	for _, c := range cases {
		if got := n.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestLocalDelivery(t *testing.T) {
	eng := sim.NewEngine()
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	n := New(eng, 4, 4, acct, set)
	var at sim.Cycle
	delivered := false
	n.Register(3, func(m *Message) { delivered = true; at = eng.Now() })
	for i := 0; i < 16; i++ {
		if i != 3 {
			n.Register(i, func(*Message) {})
		}
	}
	n.Send(&Message{Src: 3, Dst: 3, Class: Read, Bytes: 64})
	eng.Run()
	if !delivered || at != LocalLatency {
		t.Fatalf("local delivery at %d (delivered=%v), want cycle %d", at, delivered, LocalLatency)
	}
	if set.Sum("noc.flit_hops.") != 0 {
		t.Fatal("local delivery crossed links")
	}
	if acct.Count(energy.NoCFlitHop) != 0 {
		t.Fatal("local delivery charged NoC energy")
	}
}

func TestRemoteLatencyUncontended(t *testing.T) {
	eng := sim.NewEngine()
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	n := New(eng, 4, 4, acct, set)
	var at sim.Cycle
	n.Register(15, func(m *Message) { at = eng.Now() })
	for i := 0; i < 15; i++ {
		n.Register(i, func(*Message) {})
	}
	// 0 -> 15: 6 hops. Control message, 0 payload -> 1 flit.
	n.Send(&Message{Src: 0, Dst: 15, Class: Write, Bytes: 0})
	eng.Run()
	want := sim.Cycle(6 * RouterLatency)
	if at != want {
		t.Fatalf("delivery at %d, want %d", at, want)
	}
}

func TestSerializationLatency(t *testing.T) {
	eng := sim.NewEngine()
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	n := New(eng, 4, 4, acct, set)
	var at sim.Cycle
	n.Register(1, func(m *Message) { at = eng.Now() })
	for i := 0; i < 16; i++ {
		if i != 1 {
			n.Register(i, func(*Message) {})
		}
	}
	n.Send(&Message{Src: 0, Dst: 1, Class: Read, Bytes: 64}) // 5 flits
	eng.Run()
	want := sim.Cycle(1*RouterLatency + 5 - 1)
	if at != want {
		t.Fatalf("delivery at %d, want %d", at, want)
	}
}

func TestFlitHopAccounting(t *testing.T) {
	eng, n, acct, set := newTestNet()
	n.Send(&Message{Src: 0, Dst: 15, Class: Writeback, Bytes: 64}) // 5 flits x 6 hops
	eng.Run()
	if got := set.Sum("noc.flit_hops.writeback"); got != 30 {
		t.Fatalf("writeback flit-hops = %d, want 30", got)
	}
	if got := acct.Count(energy.NoCFlitHop); got != 30 {
		t.Fatalf("NoC energy events = %d, want 30", got)
	}
}

func TestClassSeparation(t *testing.T) {
	eng, n, _, set := newTestNet()
	n.Send(&Message{Src: 0, Dst: 1, Class: Read, Bytes: 0})
	n.Send(&Message{Src: 0, Dst: 1, Class: Write, Bytes: 0})
	eng.Run()
	if set.Sum("noc.flit_hops.read") != 1 || set.Sum("noc.flit_hops.write") != 1 {
		t.Fatalf("class accounting wrong: %v", set.Snapshot())
	}
	if set.Sum("noc.messages") != 2 {
		t.Fatalf("messages = %d, want 2", set.Sum("noc.messages"))
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	eng := sim.NewEngine()
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	n := New(eng, 4, 4, acct, set)
	var arrivals []sim.Cycle
	n.Register(1, func(m *Message) { arrivals = append(arrivals, eng.Now()) })
	for i := 0; i < 16; i++ {
		if i != 1 {
			n.Register(i, func(*Message) {})
		}
	}
	// Two 5-flit messages over the same single link, same cycle.
	n.Send(&Message{Src: 0, Dst: 1, Class: Read, Bytes: 64})
	n.Send(&Message{Src: 0, Dst: 1, Class: Read, Bytes: 64})
	eng.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[1] <= arrivals[0] {
		t.Fatalf("contended messages arrived together: %v", arrivals)
	}
	// Second head flit cannot enter the link until the first's tail left.
	if arrivals[1]-arrivals[0] < 4 {
		t.Fatalf("contention gap %d too small for 5-flit message", arrivals[1]-arrivals[0])
	}
}

func TestUnregisteredDestinationPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 2, 2, energy.NewAccount(energy.DefaultCosts()), stats.NewSet())
	n.Register(0, func(*Message) {})
	n.Send(&Message{Src: 0, Dst: 1, Class: Read, Bytes: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("delivery to unregistered node did not panic")
		}
	}()
	eng.Run()
}

func TestDoubleRegisterPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 2, 2, energy.NewAccount(energy.DefaultCosts()), stats.NewSet())
	n.Register(0, func(*Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("double Register did not panic")
		}
	}()
	n.Register(0, func(*Message) {})
}

// Property: flit-hop accounting equals Flits(bytes) * Hops(src,dst) for
// any single message, and total energy events match total flit-hops.
func TestFlitHopProperty(t *testing.T) {
	f := func(src, dst uint8, bytes uint16, cls uint8) bool {
		s, d := int(src%16), int(dst%16)
		b := int(bytes % 256)
		c := Class(cls % uint8(NumClasses))
		eng := sim.NewEngine()
		acct := energy.NewAccount(energy.DefaultCosts())
		set := stats.NewSet()
		n := New(eng, 4, 4, acct, set)
		for i := 0; i < 16; i++ {
			n.Register(i, func(*Message) {})
		}
		n.Send(&Message{Src: s, Dst: d, Class: c, Bytes: b})
		eng.Run()
		want := uint64(0)
		if s != d {
			want = uint64(Flits(b) * n.Hops(s, d))
		}
		return set.Sum("noc.flit_hops.") == want && acct.Count(energy.NoCFlitHop) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
