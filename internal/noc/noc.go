// Package noc models the on-chip interconnect: a Garnet-like 2D mesh
// (4x4 in the paper's configuration, Figure 4) with XY dimension-order
// routing, wormhole-style latency, per-link contention, and
// flit-crossing accounting by message class (the metric of Figure 5d).
package noc

import (
	"fmt"

	"stash/internal/energy"
	"stash/internal/sim"
	"stash/internal/stats"
)

// Class categorizes traffic the way the paper's Figure 5d does.
type Class int

// Message classes.
const (
	Read      Class = iota // load requests and their data responses
	Write                  // stores, registrations, invalidations, acks
	Writeback              // dirty data written back toward the LLC
	NumClasses
)

var classNames = [NumClasses]string{"read", "write", "writeback"}

// String returns the class name used in stats and figure output.
func (c Class) String() string { return classNames[c] }

// Message is one network transaction. Payload is opaque to the network.
type Message struct {
	Src, Dst int
	Class    Class
	Bytes    int // payload bytes, excluding the header flit
	Payload  any
}

// Network geometry and timing parameters.
const (
	FlitBytes     = 16 // data carried per flit; the header rides the first flit
	RouterLatency = 3  // cycles per hop (router pipeline + link traversal)
	LocalLatency  = 1  // cycles for a node to reach its own L2 bank
)

// Flits returns the number of flits needed for a message with the given
// payload size: one head flit (header + first 8 payload bytes' worth of
// headroom) plus payload flits.
func Flits(payloadBytes int) int {
	if payloadBytes < 0 {
		panic("noc: negative payload")
	}
	return 1 + (payloadBytes+FlitBytes-1)/FlitBytes
}

type link struct {
	nextFree sim.Cycle
}

// Network is a W x H mesh. Node IDs are y*W + x.
type Network struct {
	eng      *sim.Engine
	w, h     int
	handlers []func(*Message)
	// links[from][dir]: 0=+x, 1=-x, 2=+y, 3=-y
	links map[[2]int]*link
	acct  *energy.Account

	flitHops [NumClasses]*stats.Counter
	messages *stats.Counter
}

// New returns a w x h mesh attached to the engine, charging flit-hop
// energy to acct and counting flit-crossings in set.
func New(eng *sim.Engine, w, h int, acct *energy.Account, set *stats.Set) *Network {
	n := &Network{
		eng:      eng,
		w:        w,
		h:        h,
		handlers: make([]func(*Message), w*h),
		links:    make(map[[2]int]*link),
		acct:     acct,
		messages: set.Counter("noc.messages"),
	}
	for c := Class(0); c < NumClasses; c++ {
		n.flitHops[c] = set.Counter("noc.flit_hops." + c.String())
	}
	return n
}

// Nodes returns the number of nodes in the mesh.
func (n *Network) Nodes() int { return n.w * n.h }

// Register installs the delivery handler for a node. Each node must be
// registered exactly once before any message addressed to it arrives.
func (n *Network) Register(node int, h func(*Message)) {
	if n.handlers[node] != nil {
		panic(fmt.Sprintf("noc: node %d registered twice", node))
	}
	n.handlers[node] = h
}

func (n *Network) coords(node int) (x, y int) { return node % n.w, node / n.w }

// Hops returns the XY-routing hop count between two nodes.
func (n *Network) Hops(src, dst int) int {
	sx, sy := n.coords(src)
	dx, dy := n.coords(dst)
	return abs(dx-sx) + abs(dy-sy)
}

// path returns the ordered list of directed links (from-node, to-node)
// the message traverses under XY routing.
func (n *Network) path(src, dst int) [][2]int {
	sx, sy := n.coords(src)
	dx, dy := n.coords(dst)
	var out [][2]int
	x, y := sx, sy
	for x != dx {
		nx := x + sign(dx-x)
		out = append(out, [2]int{y*n.w + x, y*n.w + nx})
		x = nx
	}
	for y != dy {
		ny := y + sign(dy-y)
		out = append(out, [2]int{y*n.w + x, ny*n.w + x})
		y = ny
	}
	return out
}

// Send injects the message and schedules its delivery at the destination
// node. Messages between a node and itself (a core and its colocated L2
// bank) take LocalLatency and cross no links.
func (n *Network) Send(m *Message) {
	n.messages.Inc()
	if m.Src == m.Dst {
		n.eng.Schedule(LocalLatency, func() { n.deliver(m) })
		return
	}
	flits := Flits(m.Bytes)
	path := n.path(m.Src, m.Dst)
	t := n.eng.Now()
	for _, key := range path {
		lk := n.links[key]
		if lk == nil {
			lk = &link{}
			n.links[key] = lk
		}
		start := t
		if lk.nextFree > start {
			start = lk.nextFree
		}
		t = start + RouterLatency
		lk.nextFree = t + sim.Cycle(flits-1)
	}
	hops := len(path)
	n.flitHops[m.Class].Add(uint64(flits * hops))
	n.acct.Add(energy.NoCFlitHop, uint64(flits*hops))
	arrival := t + sim.Cycle(flits-1)
	n.eng.At(arrival, func() { n.deliver(m) })
}

func (n *Network) deliver(m *Message) {
	h := n.handlers[m.Dst]
	if h == nil {
		panic(fmt.Sprintf("noc: message to unregistered node %d", m.Dst))
	}
	h(m)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}
