// Package noc models the on-chip interconnect: a Garnet-like 2D mesh
// (4x4 in the paper's configuration, Figure 4) with XY dimension-order
// routing, wormhole-style latency, per-link contention, and
// flit-crossing accounting by message class (the metric of Figure 5d).
package noc

import (
	"fmt"

	"stash/internal/energy"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/trace"
)

// Class categorizes traffic the way the paper's Figure 5d does.
type Class int

// Message classes.
const (
	Read      Class = iota // load requests and their data responses
	Write                  // stores, registrations, invalidations, acks
	Writeback              // dirty data written back toward the LLC
	NumClasses
)

var classNames = [NumClasses]string{"read", "write", "writeback"}

// String returns the class name used in stats and figure output.
func (c Class) String() string { return classNames[c] }

// Message is one network transaction. Payload is opaque to the network.
type Message struct {
	Src, Dst int
	Class    Class
	Bytes    int // payload bytes, excluding the header flit
	Payload  any
}

// Network geometry and timing parameters.
const (
	FlitBytes     = 16 // data carried per flit; the header rides the first flit
	RouterLatency = 3  // cycles per hop (router pipeline + link traversal)
	LocalLatency  = 1  // cycles for a node to reach its own L2 bank
)

// Flits returns the number of flits needed for a message with the given
// payload size: one head flit (header + first 8 payload bytes' worth of
// headroom) plus payload flits.
func Flits(payloadBytes int) int {
	if payloadBytes < 0 {
		panic("noc: negative payload")
	}
	return 1 + (payloadBytes+FlitBytes-1)/FlitBytes
}

// delivery is a pooled in-flight message. Its run closure is bound once
// at creation, so sending a message schedules no new closures; the
// Message itself lives inside the delivery and is reused, which is why
// handlers must not retain the *Message past the handler call.
type delivery struct {
	n   *Network
	m   Message
	run func()
}

func (d *delivery) fire() {
	d.n.deliver(&d.m)
	d.m = Message{}
	d.n.deliveryFree = append(d.n.deliveryFree, d)
}

// Network is a W x H mesh. Node IDs are y*W + x.
type Network struct {
	eng      *sim.Engine
	w, h     int
	handlers []func(*Message)
	// linkFree[node*4+dir] is the cycle the directed link out of node in
	// direction dir (0=+x, 1=-x, 2=+y, 3=-y) is next free.
	linkFree     []sim.Cycle
	deliveryFree []*delivery
	payloadFree  []any
	acct         *energy.Account

	// perturb, when set, returns extra delivery latency for each remote
	// message (fault injection). lastArrival[src*nodes+dst] is the most
	// recent perturbed arrival on that flow: arrivals are clamped to it
	// so jitter can delay but never reorder a point-to-point flow —
	// the coherence protocol relies on per-flow FIFO delivery (e.g. a
	// WBReq must not overtake the RegReq that precedes it).
	perturb     func(src, dst int) sim.Cycle
	lastArrival []sim.Cycle

	flitHops [NumClasses]*stats.Counter
	messages *stats.Counter

	tsnk *trace.Sink
	// linkSeries[node*4+dir] is the per-link flit time-series (the
	// congestion heatmap); non-nil exactly when tsnk is.
	linkSeries []*trace.Series
}

// New returns a w x h mesh attached to the engine, charging flit-hop
// energy to acct and counting flit-crossings in set.
func New(eng *sim.Engine, w, h int, acct *energy.Account, set *stats.Set) *Network {
	n := &Network{
		eng:      eng,
		w:        w,
		h:        h,
		handlers: make([]func(*Message), w*h),
		linkFree: make([]sim.Cycle, w*h*4),
		acct:     acct,
		messages: set.Counter("noc.messages"),
	}
	for c := Class(0); c < NumClasses; c++ {
		n.flitHops[c] = set.Counter("noc.flit_hops." + c.String())
	}
	return n
}

func (n *Network) newDelivery() *delivery {
	if k := len(n.deliveryFree); k > 0 {
		d := n.deliveryFree[k-1]
		n.deliveryFree = n.deliveryFree[:k-1]
		return d
	}
	d := &delivery{n: n}
	d.run = d.fire
	return d
}

// Nodes returns the number of nodes in the mesh.
func (n *Network) Nodes() int { return n.w * n.h }

// AcquirePayload pops a payload previously returned via ReleasePayload,
// or nil if none is available. Senders that copy their payload into a
// pooled object use this (with ReleasePayload called by the receiving
// side once the payload is consumed) to keep steady-state sends
// allocation-free. The network never calls these itself, so payloads
// sent without the pool are unaffected.
func (n *Network) AcquirePayload() any {
	if k := len(n.payloadFree); k > 0 {
		v := n.payloadFree[k-1]
		n.payloadFree[k-1] = nil
		n.payloadFree = n.payloadFree[:k-1]
		return v
	}
	return nil
}

// ReleasePayload returns a delivered payload to the pool for reuse by a
// later AcquirePayload.
func (n *Network) ReleasePayload(v any) {
	n.payloadFree = append(n.payloadFree, v)
}

// SetPerturb installs a fault-injection hook adding extra latency to
// each remote delivery. Per-(src,dst) delivery order is still
// preserved: a perturbed arrival never lands before an earlier message
// on the same flow. A nil fn removes the hook and restores the exact
// unperturbed timing.
func (n *Network) SetPerturb(fn func(src, dst int) sim.Cycle) {
	n.perturb = fn
	if fn != nil && n.lastArrival == nil {
		n.lastArrival = make([]sim.Cycle, n.w*n.h*n.w*n.h)
	}
}

// Register installs the delivery handler for a node. Each node must be
// registered exactly once before any message addressed to it arrives.
// The *Message passed to the handler is reused after the handler
// returns and must not be retained (its Payload may be).
func (n *Network) Register(node int, h func(*Message)) {
	if n.handlers[node] != nil {
		panic(fmt.Sprintf("noc: node %d registered twice", node))
	}
	n.handlers[node] = h
}

func (n *Network) coords(node int) (x, y int) { return node % n.w, node / n.w }

// Hops returns the XY-routing hop count between two nodes.
func (n *Network) Hops(src, dst int) int {
	sx, sy := n.coords(src)
	dx, dy := n.coords(dst)
	return abs(dx-sx) + abs(dy-sy)
}

// crossLink advances the wormhole head time t across the directed link
// out of node in direction dir, honouring the link's busy window.
func (n *Network) crossLink(node, dir int, t sim.Cycle, flits int) sim.Cycle {
	lk := &n.linkFree[node*4+dir]
	start := t
	if *lk > start {
		start = *lk
	}
	if n.linkSeries != nil {
		n.linkSeries[node*4+dir].Add(uint64(start), uint64(flits))
	}
	t = start + RouterLatency
	*lk = t + sim.Cycle(flits-1)
	return t
}

// Send injects the message and schedules its delivery at the destination
// node. The message is copied into a pooled in-flight slot: the *Message
// the handler eventually receives is valid only for the duration of the
// handler call. Messages between a node and itself (a core and its
// colocated L2 bank) take LocalLatency and cross no links.
func (n *Network) Send(m *Message) {
	n.messages.Inc()
	d := n.newDelivery()
	d.m = *m
	if m.Src == m.Dst {
		n.eng.Schedule(LocalLatency, d.run)
		return
	}
	flits := Flits(m.Bytes)
	// Walk the XY route link by link without materializing the path.
	sx, sy := n.coords(m.Src)
	dx, dy := n.coords(m.Dst)
	t := n.eng.Now()
	hops := 0
	x, y := sx, sy
	for x != dx {
		s := sign(dx - x)
		dir := 0
		if s < 0 {
			dir = 1
		}
		t = n.crossLink(y*n.w+x, dir, t, flits)
		x += s
		hops++
	}
	for y != dy {
		s := sign(dy - y)
		dir := 2
		if s < 0 {
			dir = 3
		}
		t = n.crossLink(y*n.w+x, dir, t, flits)
		y += s
		hops++
	}
	n.flitHops[m.Class].Add(uint64(flits * hops))
	n.tsnk.Event(uint64(n.eng.Now()), trace.KFlitHop,
		uint64(m.Src)<<32|uint64(m.Dst), uint64(flits*hops))
	n.acct.Add(energy.NoCFlitHop, uint64(flits*hops))
	arrival := t + sim.Cycle(flits-1)
	if n.perturb != nil {
		arrival += n.perturb(m.Src, m.Dst)
		// Clamp to the flow's previous arrival so jitter cannot
		// reorder same-flow messages.
		last := &n.lastArrival[m.Src*n.w*n.h+m.Dst]
		if arrival < *last {
			arrival = *last
		}
		*last = arrival
	}
	n.eng.At(arrival, d.run)
}

// SetTrace attaches an event sink and builds the per-link flit
// time-series (one per directed mesh link, the congestion heatmap). A
// nil sink (the default) keeps every send and link crossing a
// nil-check no-op.
func (n *Network) SetTrace(snk *trace.Sink) {
	n.tsnk = snk
	if snk == nil {
		n.linkSeries = nil
		return
	}
	dirs := [4]string{"+x", "-x", "+y", "-y"}
	n.linkSeries = make([]*trace.Series, n.w*n.h*4)
	for node := 0; node < n.w*n.h; node++ {
		for dir := 0; dir < 4; dir++ {
			n.linkSeries[node*4+dir] = snk.Series(fmt.Sprintf("link.%d.%s.flits", node, dirs[dir]))
		}
	}
}

// TracePacket records a protocol-packet injection (called by coh.Send,
// which owns the packet type ordinal and line address). A nil-sink
// network makes this a nil-check no-op.
func (n *Network) TracePacket(ptype uint8, line uint64) {
	n.tsnk.Event(uint64(n.eng.Now()), trace.KPacket, uint64(ptype), line)
}

func (n *Network) deliver(m *Message) {
	h := n.handlers[m.Dst]
	if h == nil {
		panic(fmt.Sprintf("noc: message to unregistered node %d", m.Dst))
	}
	h(m)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}
