package core

import (
	"testing"

	"stash/internal/cache"
	"stash/internal/coh"
	"stash/internal/energy"
	"stash/internal/llc"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/vm"
)

// rig wires a stash (node 1) and a peer L1 (node 2) to LLC banks on a
// 4x4 mesh.
type rig struct {
	eng   *sim.Engine
	net   *noc.Network
	mem   *memdata.Memory
	as    *vm.AddressSpace
	stash *Stash
	l1    *cache.Cache
	acct  *energy.Account
	set   *stats.Set
}

func newRig(t *testing.T, p Params) *rig {
	t.Helper()
	eng := sim.NewEngine()
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	net := noc.New(eng, 4, 4, acct, set)
	mem := memdata.NewMemory()
	as := vm.NewAddressSpace()
	r := &rig{eng: eng, net: net, mem: mem, as: as, acct: acct, set: set}
	for n := 0; n < 16; n++ {
		router := coh.NewRouter()
		router.Attach(coh.ToLLC, llc.NewBank(eng, net, n, llc.DefaultParams(), mem, acct, set))
		switch n {
		case 1:
			r.stash = New(eng, net, n, "s", p, as, acct, set)
			router.Attach(coh.ToStash, r.stash)
		case 2:
			r.l1 = cache.New(eng, net, n, "peer", cache.DefaultParams(), acct, set)
			router.Attach(coh.ToL1, r.l1)
		}
		net.Register(n, func(m *noc.Message) { router.Deliver(m.Payload.(*coh.Packet)) })
	}
	return r
}

// alloc allocates a global array of n words, fills it with vals via
// DRAM, and returns the virtual base.
func (r *rig) alloc(n int, gen func(i int) uint32) memdata.VAddr {
	base := r.as.Alloc(n * 4)
	for i := 0; i < n; i++ {
		pa := r.as.Translate(base + memdata.VAddr(4*i))
		r.mem.StoreWord(pa, gen(i))
	}
	return base
}

func (r *rig) load(tb, slot int, offsets []int) []uint32 {
	var out []uint32
	// vals is a pooled buffer only valid during the callback: copy it.
	r.stash.Load(tb, slot, offsets, func(vals []uint32) { out = append([]uint32(nil), vals...) })
	r.eng.Run()
	if out == nil {
		panic("stash load never completed")
	}
	return out
}

func (r *rig) store(tb, slot int, offsets []int, vals []uint32) {
	r.stash.Store(tb, slot, offsets, vals, func() {})
	r.eng.Run()
}

// l1Read loads one word through the peer L1 (simulating another CU/CPU).
func (r *rig) l1Read(va memdata.VAddr) uint32 {
	pa := r.as.Translate(va)
	line := memdata.LineOf(pa)
	w := memdata.WordIndex(pa)
	var out uint32
	r.l1.Load(line, memdata.Bit(w), func(vals [memdata.WordsPerLine]uint32) { out = vals[w] })
	r.eng.Run()
	return out
}

func (r *rig) l1Write(va memdata.VAddr, v uint32) {
	pa := r.as.Translate(va)
	line := memdata.LineOf(pa)
	w := memdata.WordIndex(pa)
	var vals [memdata.WordsPerLine]uint32
	vals[w] = v
	r.l1.Store(line, memdata.Bit(w), vals, func() {})
	r.eng.Run()
}

func TestImplicitLoadMissThenHit(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(16, func(i int) uint32 { return uint32(100 + i) })
	r.stash.AddMap(0, 0, linearMap(0, base, 16))
	got := r.load(0, 0, []int{0, 1, 2, 3})
	for i, v := range got {
		if v != uint32(100+i) {
			t.Fatalf("load[%d] = %d, want %d", i, v, 100+i)
		}
	}
	if r.set.Sum("stash.s.misses") != 1 {
		t.Fatalf("misses = %d, want 1", r.set.Sum("stash.s.misses"))
	}
	// Second access: pure hit, no further miss traffic.
	before := r.set.Sum("stash.s.miss_lines")
	r.load(0, 0, []int{0, 1, 2, 3})
	if r.set.Sum("stash.s.hits") != 1 {
		t.Fatalf("hits = %d, want 1", r.set.Sum("stash.s.hits"))
	}
	if r.set.Sum("stash.s.miss_lines") != before {
		t.Fatal("hit generated miss traffic")
	}
}

func TestCompactFillOfDenseLine(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(16, func(i int) uint32 { return uint32(i) })
	r.stash.AddMap(0, 0, linearMap(0, base, 16))
	// One word misses; the whole global line's mapped words fill.
	r.load(0, 0, []int{0})
	if got := r.set.Sum("stash.s.miss_lines"); got != 1 {
		t.Fatalf("miss lines = %d, want 1", got)
	}
	for i := 0; i < 16; i++ {
		v, st := r.stash.Peek(i)
		if st != coh.Shared || v != uint32(i) {
			t.Fatalf("word %d = (%d,%v), want (%d,Shared)", i, v, st, i)
		}
	}
}

func TestAoSCompactStorageTraffic(t *testing.T) {
	// Paper Figure 1/2: only fieldX of each 64-byte object is mapped.
	// Each miss line response carries exactly one useful word.
	r := newRig(t, DefaultParams())
	n := 8
	base := r.as.Alloc(n * 64)
	for i := 0; i < n; i++ {
		r.mem.StoreWord(r.as.Translate(base+memdata.VAddr(64*i)), uint32(1000+i))
	}
	r.stash.AddMap(0, 0, aosFieldMap(0, base, 64, n))
	got := r.load(0, 0, []int{0, 1, 2, 3, 4, 5, 6, 7})
	for i, v := range got {
		if v != uint32(1000+i) {
			t.Fatalf("field[%d] = %d, want %d", i, v, 1000+i)
		}
	}
	// 8 objects on 8 distinct lines: 8 one-word responses rather than
	// 8 full-line fills; read traffic stays small and the stash holds
	// the fields compactly in 8 words.
	if got := r.set.Sum("stash.s.miss_lines"); got != 8 {
		t.Fatalf("miss lines = %d, want 8", got)
	}
	if v, st := r.stash.Peek(7); v != 1007 || st != coh.Shared {
		t.Fatalf("compact word 7 = (%d,%v)", v, st)
	}
}

func TestStoreRegistersAtLLCAndRemoteReadForwards(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(16, func(i int) uint32 { return 0 })
	r.stash.AddMap(0, 0, linearMap(0, base, 16))
	r.store(0, 0, []int{3}, []uint32{333})
	if _, st := r.stash.Peek(3); st != coh.Registered {
		t.Fatalf("state after store+ack = %v, want Registered", st)
	}
	// A remote reader gets the value forwarded from the stash via the
	// RTLB + stash-map reverse translation.
	if got := r.l1Read(base + 12); got != 333 {
		t.Fatalf("remote read = %d, want 333", got)
	}
	if r.set.Sum("stash.s.remote_hits") != 1 {
		t.Fatalf("remote hits = %d, want 1", r.set.Sum("stash.s.remote_hits"))
	}
}

func TestLazyWritebackOnReallocation(t *testing.T) {
	r := newRig(t, DefaultParams())
	baseA := r.alloc(16, func(i int) uint32 { return 0 })
	baseB := r.alloc(16, func(i int) uint32 { return uint32(50 + i) })
	// TB 0 writes array A through the stash, then completes.
	r.stash.AddMap(0, 0, linearMap(0, baseA, 16))
	r.store(0, 0, []int{0, 1}, []uint32{11, 22})
	r.stash.EndThreadBlock(0)
	r.stash.SelfInvalidate()
	if r.set.Sum("stash.s.writebacks") != 0 {
		t.Fatal("writeback happened eagerly at thread-block end")
	}
	// TB 1 maps array B over the same stash space: the first touch
	// triggers the lazy writeback of A's dirty chunk.
	r.stash.AddMap(1, 0, linearMap(0, baseB, 16))
	got := r.load(1, 0, []int{0, 1})
	if got[0] != 50 || got[1] != 51 {
		t.Fatalf("B load = %v, want [50 51]", got)
	}
	if r.set.Sum("stash.s.writebacks") == 0 {
		t.Fatal("no lazy writeback on reallocation")
	}
	// A's values are now globally visible.
	if v := r.l1Read(baseA); v != 11 {
		t.Fatalf("A[0] after lazy WB = %d, want 11", v)
	}
	if v := r.l1Read(baseA + 4); v != 22 {
		t.Fatalf("A[1] after lazy WB = %d, want 22", v)
	}
}

func TestCrossKernelReuseHitsWithoutTraffic(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(32, func(i int) uint32 { return uint32(i) })
	// Kernel 1, TB 0: load and update the data.
	r.stash.AddMap(0, 0, linearMap(0, base, 32))
	r.load(0, 0, []int{0, 1, 2, 3})
	r.store(0, 0, []int{0, 1, 2, 3}, []uint32{9, 8, 7, 6})
	r.stash.EndThreadBlock(0)
	r.stash.SelfInvalidate()
	missLines := r.set.Sum("stash.s.miss_lines")

	// Kernel 2, TB 1: same mapping. Replication detection reuses the
	// entry; registered data is still resident -> all hits, no traffic.
	r.stash.AddMap(1, 0, linearMap(0, base, 32))
	got := r.load(1, 0, []int{0, 1, 2, 3})
	if got[0] != 9 || got[3] != 6 {
		t.Fatalf("reuse load = %v", got)
	}
	if r.set.Sum("stash.s.miss_lines") != missLines {
		t.Fatal("cross-kernel reuse generated new global traffic")
	}
	if r.set.Sum("stash.s.map_reuse") != 1 {
		t.Fatalf("map_reuse = %d, want 1", r.set.Sum("stash.s.map_reuse"))
	}
}

func TestReplicationDisabledForcesRefetch(t *testing.T) {
	p := DefaultParams()
	p.EnableReplication = false
	r := newRig(t, p)
	base := r.alloc(32, func(i int) uint32 { return uint32(i) })
	r.stash.AddMap(0, 0, linearMap(0, base, 32))
	r.load(0, 0, []int{0, 1, 2, 3})
	r.stash.EndThreadBlock(0)
	r.stash.SelfInvalidate()
	missLines := r.set.Sum("stash.s.miss_lines")
	r.stash.AddMap(1, 0, linearMap(0, base, 32))
	r.load(1, 0, []int{0, 1, 2, 3})
	if r.set.Sum("stash.s.miss_lines") <= missLines {
		t.Fatal("with replication off, remapping must refetch")
	}
}

func TestReplicationCopyAcrossAllocations(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(16, func(i int) uint32 { return uint32(600 + i) })
	// TB 0 maps the data at stash 0 and loads it.
	r.stash.AddMap(0, 0, linearMap(0, base, 16))
	r.load(0, 0, []int{0, 1, 2, 3})
	// TB 1 maps the same global data at a different stash allocation:
	// load misses are satisfied by intra-stash copies, not the network.
	before := r.set.Sum("stash.s.miss_lines")
	r.stash.AddMap(1, 0, linearMap(64, base, 16))
	got := r.load(1, 0, []int{64, 65})
	if got[0] != 600 || got[1] != 601 {
		t.Fatalf("replicated load = %v", got)
	}
	if r.set.Sum("stash.s.miss_lines") != before {
		t.Fatal("replication copy still went to the network")
	}
	if r.set.Sum("stash.s.replication_copies") != 2 {
		t.Fatalf("replication copies = %d, want 2", r.set.Sum("stash.s.replication_copies"))
	}
}

func TestNonCoherentStoresStayLocal(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(16, func(i int) uint32 { return uint32(i) })
	m := linearMap(0, base, 16)
	m.Coherent = false
	r.stash.AddMap(0, 0, m)
	r.store(0, 0, []int{0}, []uint32{777})
	// No registration traffic, and the global copy is unchanged.
	if r.set.Sum("noc.flit_hops.write") != 0 {
		t.Fatal("non-coherent store produced registration traffic")
	}
	r.stash.EndThreadBlock(0)
	r.stash.WritebackAll()
	r.eng.Run()
	if got := r.l1Read(base); got != 0 {
		t.Fatalf("global copy = %d, want 0 (non-coherent writes invisible)", got)
	}
}

func TestChgMapCoherentToNonCoherentWritesBack(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(16, func(i int) uint32 { return 0 })
	m := linearMap(0, base, 16)
	r.stash.AddMap(0, 0, m)
	r.store(0, 0, []int{0}, []uint32{42})
	m.Coherent = false
	r.stash.ChgMap(0, 0, m)
	r.eng.Run()
	if got := r.l1Read(base); got != 42 {
		t.Fatalf("value after coherent->non-coherent ChgMap = %d, want 42", got)
	}
}

func TestChgMapNonCoherentToCoherentRegisters(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(16, func(i int) uint32 { return 0 })
	m := linearMap(0, base, 16)
	m.Coherent = false
	r.stash.AddMap(0, 0, m)
	r.store(0, 0, []int{2}, []uint32{55})
	m.Coherent = true
	r.stash.ChgMap(0, 0, m)
	r.eng.Run()
	// The locally dirty word is now registered: remote reads see it.
	if got := r.l1Read(base + 8); got != 55 {
		t.Fatalf("remote read after non-coherent->coherent = %d, want 55", got)
	}
}

func TestEagerWritebackAblation(t *testing.T) {
	p := DefaultParams()
	p.EagerWriteback = true
	r := newRig(t, p)
	base := r.alloc(16, func(i int) uint32 { return 0 })
	r.stash.AddMap(0, 0, linearMap(0, base, 16))
	r.store(0, 0, []int{0}, []uint32{5})
	r.stash.EndThreadBlock(0)
	r.stash.SelfInvalidate() // eager mode: flushes now
	r.eng.Run()
	if r.set.Sum("stash.s.writebacks") == 0 {
		t.Fatal("eager mode did not write back at kernel end")
	}
}

func TestDirtyDataCounterAndEntryInvalidation(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(32, func(i int) uint32 { return 0 })
	idx := r.stash.AddMap(0, 0, linearMap(0, base, 32))
	r.store(0, 0, []int{0, 16}, []uint32{1, 2}) // two distinct chunks
	if _, dd := r.stash.MapEntryInfo(idx); dd != 2 {
		t.Fatalf("#DirtyData = %d, want 2", dd)
	}
	r.stash.EndThreadBlock(0)
	r.stash.WritebackAll()
	r.eng.Run()
	valid, dd := r.stash.MapEntryInfo(idx)
	if dd != 0 {
		t.Fatalf("#DirtyData after flush = %d, want 0", dd)
	}
	if valid {
		t.Fatal("entry still valid after all dirty data written back (paper: marked invalid)")
	}
}

func TestOwnerInvFromPeerWrite(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(16, func(i int) uint32 { return 0 })
	r.stash.AddMap(0, 0, linearMap(0, base, 16))
	r.store(0, 0, []int{0}, []uint32{10})
	r.stash.EndThreadBlock(0)
	// Peer core writes the same word in the next phase: the stash's
	// registration is stolen and its copy invalidated.
	r.l1Write(base, 20)
	r.l1.Drain(func() {})
	r.eng.Run()
	if _, st := r.stash.Peek(0); st != coh.Invalid {
		t.Fatalf("stash word state after peer registration = %v, want Invalid", st)
	}
}

func TestMixedHitMissLoad(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(64, func(i int) uint32 { return uint32(i) })
	r.stash.AddMap(0, 0, linearMap(0, base, 64))
	r.load(0, 0, []int{0}) // fills line 0 words
	got := r.load(0, 0, []int{1, 20})
	if got[0] != 1 || got[1] != 20 {
		t.Fatalf("mixed load = %v, want [1 20]", got)
	}
}

func TestBankConflictLatency(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(128, func(i int) uint32 { return uint32(i) })
	r.stash.AddMap(0, 0, linearMap(0, base, 128))
	r.load(0, 0, []int{0}) // warm line 0
	r.load(0, 0, []int{64})
	start := r.eng.Now()
	var doneAt sim.Cycle
	// Offsets 0, 32, 64 share bank 0 (32 banks): 3 rounds.
	r.stash.Load(0, 0, []int{0, 32, 64}, func([]uint32) { doneAt = r.eng.Now() })
	r.eng.Run()
	if doneAt-start < 3 {
		t.Fatalf("3-way conflict completed in %d cycles, want >= 3", doneAt-start)
	}
	_ = start
}

func TestDrainWaitsForRegistrations(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(16, func(i int) uint32 { return 0 })
	r.stash.AddMap(0, 0, linearMap(0, base, 16))
	drained := false
	r.stash.Store(0, 0, []int{0}, []uint32{1}, func() {})
	r.stash.Drain(func() { drained = true })
	if drained {
		t.Fatal("drained before registration completed")
	}
	r.eng.Run()
	if !drained {
		t.Fatal("never drained")
	}
}

func TestMapIndexTableLimit(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(16, func(i int) uint32 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("slot beyond SlotsPerTB did not panic")
		}
	}()
	r.stash.AddMap(0, 4, linearMap(0, base, 16))
}

func TestUnalignedStashBasePanics(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(16, func(i int) uint32 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned stash base did not panic")
		}
	}()
	r.stash.AddMap(0, 0, linearMap(3, base, 8))
}

func TestStashMapCircularReplacementFlushesOldDirty(t *testing.T) {
	p := DefaultParams()
	p.MapEntries = 2 // force rapid wraparound
	p.EnableReplication = false
	r := newRig(t, p)
	baseA := r.alloc(16, func(i int) uint32 { return 0 })
	baseB := r.alloc(16, func(i int) uint32 { return 0 })
	baseC := r.alloc(16, func(i int) uint32 { return 0 })
	r.stash.AddMap(0, 0, linearMap(0, baseA, 16))
	r.store(0, 0, []int{0}, []uint32{71})
	r.stash.EndThreadBlock(0)
	// Two more AddMaps wrap the 2-entry circular buffer; A's entry is
	// replaced, so its dirty data must be written back (Section 4.2).
	r.stash.AddMap(1, 0, linearMap(64, baseB, 16))
	r.stash.AddMap(1, 1, linearMap(128, baseC, 16))
	r.eng.Run()
	if got := r.l1Read(baseA); got != 71 {
		t.Fatalf("A[0] after stash-map replacement = %d, want 71", got)
	}
}

func TestEnergyEvents(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(16, func(i int) uint32 { return uint32(i) })
	r.stash.AddMap(0, 0, linearMap(0, base, 16))
	r.load(0, 0, []int{0, 1})
	if r.acct.Count(energy.StashMiss) != 1 {
		t.Fatalf("stash miss events = %d, want 1", r.acct.Count(energy.StashMiss))
	}
	r.load(0, 0, []int{0, 1})
	if r.acct.Count(energy.StashHit) == 0 {
		t.Fatal("no stash hit energy charged")
	}
	// Hits never touch the TLB (direct addressing) — only the single
	// miss line did.
	if r.acct.Count(energy.TLBAccess) != 1 {
		t.Fatalf("TLB events = %d, want 1 (miss only)", r.acct.Count(energy.TLBAccess))
	}
}
