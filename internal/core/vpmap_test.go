package core

import (
	"testing"

	"stash/internal/coh"
	"stash/internal/memdata"
)

// A tiny VP-map forces capacity pressure: translations must be
// re-acquired (refilled) rather than lost, and remote requests must
// still reverse-translate correctly.
func TestVPMapPressureRefills(t *testing.T) {
	p := DefaultParams()
	p.VPEntries = 2 // absurdly small: every mapping fights for entries
	r := newRig(t, p)
	// Two mappings spanning several pages each.
	baseA := r.alloc(2048, func(i int) uint32 { return uint32(i) })
	baseB := r.alloc(2048, func(i int) uint32 { return uint32(9000 + i) })
	r.stash.AddMap(0, 0, linearMap(0, baseA, 1024))
	r.stash.AddMap(0, 1, linearMap(1024, baseB, 1024))
	got := r.load(0, 0, []int{0, 600})
	if got[0] != 0 || got[1] != 600 {
		t.Fatalf("A loads = %v", got)
	}
	got = r.load(0, 1, []int{1024, 1024 + 1023})
	if got[0] != 9000 || got[1] != 10023 {
		t.Fatalf("B loads = %v", got)
	}
	if r.stash.vp.refills == 0 {
		t.Fatal("capacity pressure produced no refills (VP-map larger than configured?)")
	}
	// Stores + remote reads exercise the reverse (RTLB) refill path.
	r.store(0, 0, []int{5}, []uint32{777})
	if v := r.l1Read(baseA + 20); v != 777 {
		t.Fatalf("remote read under VP pressure = %d, want 777", v)
	}
}

// Mapped Non-coherent tiles still load their data implicitly from the
// global space; only stores stay private (Section 3.3).
func TestNonCoherentLoadsFetchGlobally(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(32, func(i int) uint32 { return uint32(100 + i) })
	m := linearMap(0, base, 32)
	m.Coherent = false
	r.stash.AddMap(0, 0, m)
	got := r.load(0, 0, []int{0, 31})
	if got[0] != 100 || got[1] != 131 {
		t.Fatalf("non-coherent load = %v, want [100 131]", got)
	}
}

// After a perfect-match reuse, the entry's map index stays stable and
// its data remains owned, so MapEntryInfo reflects a live entry.
func TestMapEntryReuseKeepsIndex(t *testing.T) {
	r := newRig(t, DefaultParams())
	base := r.alloc(32, func(i int) uint32 { return uint32(i) })
	idx1 := r.stash.AddMap(0, 0, linearMap(0, base, 32))
	r.store(0, 0, []int{0}, []uint32{1})
	r.stash.EndThreadBlock(0)
	r.stash.SelfInvalidate()
	idx2 := r.stash.AddMap(1, 0, linearMap(0, base, 32))
	if idx1 != idx2 {
		t.Fatalf("reused mapping changed index: %d -> %d", idx1, idx2)
	}
	valid, dirty := r.stash.MapEntryInfo(idx2)
	if !valid || dirty == 0 {
		t.Fatalf("reused entry valid=%v dirty=%d, want live with dirty data", valid, dirty)
	}
	if _, st := r.stash.Peek(0); st != coh.Registered {
		t.Fatalf("reused word state = %v, want Registered", st)
	}
}

// An AddMap whose range overlaps a *running* thread block's mapping is
// a programming error the stash rejects loudly.
func TestOverlappingActiveMappingPanics(t *testing.T) {
	r := newRig(t, DefaultParams())
	baseA := r.alloc(32, func(i int) uint32 { return 0 })
	baseB := r.alloc(32, func(i int) uint32 { return 0 })
	r.stash.AddMap(0, 0, linearMap(0, baseA, 32))
	defer func() {
		if recover() == nil {
			t.Fatal("overlap with active mapping did not panic")
		}
	}()
	r.stash.AddMap(1, 0, linearMap(ChunkWords, baseB, 32))
}

var _ = memdata.WordBytes
