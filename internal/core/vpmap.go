package core

import (
	"fmt"

	"stash/internal/memdata"
	"stash/internal/vm"
)

// vpMap models the VP-map of Figure 3: the virtual-to-physical (TLB)
// and physical-to-virtual (RTLB) translations needed by the active
// stash-map entries. Each entry carries a back-pointer to the latest
// stash-map entry requiring it; entries whose stash-map entry has been
// replaced are reclaimable. Sizing the VP-map to cover all active
// mappings guarantees remote requests never miss in the RTLB
// (Section 4.1.4).
type vpMap struct {
	capacity int
	as       *vm.AddressSpace
	// Both directions are kept; a real design may merge them (paper fn. 3).
	tlb  map[memdata.VAddr]*vpEntry // by virtual page
	rtlb map[memdata.PAddr]*vpEntry // by physical page
	// refills counts translations re-acquired after their entry was
	// reclaimed (the paper: "the physical translation is acquired at
	// the subsequent stash miss"). A well-sized VP-map keeps this near
	// zero; it is exported through MapEntryInfo-style introspection.
	refills uint64
}

type vpEntry struct {
	vpage    memdata.VAddr
	ppage    memdata.PAddr
	lastUser int // stash-map index that most recently required this page
}

func newVPMap(capacity int, as *vm.AddressSpace) *vpMap {
	return &vpMap{
		capacity: capacity,
		as:       as,
		tlb:      make(map[memdata.VAddr]*vpEntry),
		rtlb:     make(map[memdata.PAddr]*vpEntry),
	}
}

// install ensures a translation for vpage exists and stamps it with the
// using stash-map entry. It reports whether there was room; the caller
// (AddMap) must free stash-map entries and retry when full.
func (v *vpMap) install(vpage memdata.VAddr, mapIdx int) bool {
	if e, ok := v.tlb[vpage]; ok {
		e.lastUser = mapIdx
		return true
	}
	if len(v.tlb) >= v.capacity {
		return false
	}
	ppage := vm.PPageOf(v.as.Translate(vpage))
	e := &vpEntry{vpage: vpage, ppage: ppage, lastUser: mapIdx}
	v.tlb[vpage] = e
	v.rtlb[ppage] = e
	return true
}

// translate returns the physical address for va. Translations are
// normally resident from AddMap time; one evicted under capacity
// pressure is re-acquired from the page table (a TLB refill).
func (v *vpMap) translate(va memdata.VAddr) memdata.PAddr {
	vpage := vm.PageOf(va)
	e, ok := v.tlb[vpage]
	if !ok {
		e = v.refill(vpage)
	}
	return e.ppage + memdata.PAddr(va-vpage)
}

// reverse returns the virtual address for pa using the RTLB. The paper
// guarantees remote requests never miss here when the VP-map is sized
// for all active mappings (Section 4.2); under pressure the entry is
// re-acquired like a TLB refill and counted.
func (v *vpMap) reverse(pa memdata.PAddr) memdata.VAddr {
	ppage := vm.PPageOf(pa)
	e, ok := v.rtlb[ppage]
	if !ok {
		va, found := v.as.Reverse(pa)
		if !found {
			panic(fmt.Sprintf("core: remote request for unmapped physical page %#x", uint64(pa)))
		}
		e = v.refill(vm.PageOf(va))
	}
	return e.vpage + memdata.VAddr(pa-ppage)
}

// reversePeek is a side-effect-free reverse: it consults only the
// resident RTLB, never refilling. Invariant checks use it so an audit
// cannot perturb the translation state a later run depends on.
func (v *vpMap) reversePeek(pa memdata.PAddr) (memdata.VAddr, bool) {
	ppage := vm.PPageOf(pa)
	e, ok := v.rtlb[ppage]
	if !ok {
		return 0, false
	}
	return e.vpage + memdata.VAddr(pa-ppage), true
}

func (v *vpMap) refill(vpage memdata.VAddr) *vpEntry {
	v.refills++
	ppage := vm.PPageOf(v.as.Translate(vpage))
	e := &vpEntry{vpage: vpage, ppage: ppage, lastUser: -1}
	v.tlb[vpage] = e
	v.rtlb[ppage] = e
	return e
}

// reclaim removes entries whose back-pointer references a stash-map
// entry that is no longer valid, returning the number reclaimed.
func (v *vpMap) reclaim(isLive func(mapIdx int) bool) int {
	n := 0
	for vpage, e := range v.tlb {
		if !isLive(e.lastUser) {
			delete(v.tlb, vpage)
			delete(v.rtlb, e.ppage)
			n++
		}
	}
	return n
}

// dropUser clears entries stamped by mapIdx that no other live mapping
// re-stamped (called when a stash-map entry is invalidated).
func (v *vpMap) dropUser(mapIdx int) {
	for vpage, e := range v.tlb {
		if e.lastUser == mapIdx {
			delete(v.tlb, vpage)
			delete(v.rtlb, e.ppage)
		}
	}
}

func (v *vpMap) len() int { return len(v.tlb) }
