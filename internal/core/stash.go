package core

import (
	"fmt"
	"sort"
	"strings"

	"stash/internal/check"
	"stash/internal/coh"
	"stash/internal/energy"
	"stash/internal/llc"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/trace"
	"stash/internal/vm"
)

// Params configures a stash.
type Params struct {
	SizeBytes    int
	Banks        int
	HitLat       sim.Cycle
	TranslateLat sim.Cycle // stash address translation on a miss (Table 2: 10 cycles)
	MapEntries   int       // stash-map size (Table 2: 64)
	VPEntries    int       // VP-map TLB/RTLB size (Table 2: 64)
	SlotsPerTB   int       // map index table entries per thread block (4)
	NumLLCBanks  int
	// EnableReplication turns on the data-replication optimization of
	// Section 4.5 (on by default; the ablation benchmark disables it).
	EnableReplication bool
	// EagerWriteback forces scratchpad-style writeback of all dirty data
	// at every kernel boundary instead of lazy writeback. Off in the real
	// design; exists for the ablation study.
	EagerWriteback bool
	// ChunkWords is the lazy-writeback chunk granularity in words. Zero
	// selects the paper's 64 B (= ChunkWords const) default. Must be a
	// power of two no larger than the default: every kernel aligns its
	// stash allocations to the default granularity, so any divisor of it
	// keeps the per-chunk stash-map index unambiguous.
	ChunkWords int
	// ReadExtra and WriteExtra add technology-dependent cycles to the
	// demand access path: ReadExtra on load/fill completions, WriteExtra
	// on store accepts. Background writeback drains charge technology
	// energy but no extra latency — their WBReq injection times carry
	// the registration-before-writeback ordering invariant and are never
	// perturbed. Zero (the SRAM baseline) is bit-identical to the
	// pre-technology timing model.
	ReadExtra  sim.Cycle
	WriteExtra sim.Cycle
	// TechEnergy switches energy charging from the unified StashHit
	// class to the read/write-split classes (StashRead/StashWrite). Off
	// by default, keeping the default energy total bit-identical.
	TechEnergy bool
}

// DefaultParams returns the paper's Table 2 stash configuration.
func DefaultParams() Params {
	return Params{
		SizeBytes:         16 << 10,
		Banks:             32,
		HitLat:            1,
		TranslateLat:      10,
		MapEntries:        64,
		VPEntries:         64,
		SlotsPerTB:        4,
		NumLLCBanks:       16,
		EnableReplication: true,
	}
}

// ChunkWords is the writeback chunk granularity (64 B, Section 4.2).
const ChunkWords = memdata.WordsPerLine

// readMSHR tracks an outstanding fill of one global line. fills may
// hold several stash destinations per word: two thread blocks can map
// the same global data into different stash allocations concurrently
// (the replication scenario of Section 4.5). MSHRs are pooled: the
// per-word fill lists and the waiter list keep their capacity across
// reuses, so a warmed-up stash misses without allocating.
type readMSHR struct {
	line      memdata.PAddr // the global line this MSHR tracks
	requested memdata.WordMask
	fills     [memdata.WordsPerLine][]int32 // per line word: stash word offsets
	waiters   []*stashWaiter
	inPurge   bool      // already on the purge-candidate list
	born      sim.Cycle // cycle the entry was allocated, for age checks
}

// stashWaiter is one warp load waiting for fills. A load that misses in
// several global lines is attached to every line's MSHR; fired ensures
// it completes exactly once. attached counts the MSHR waiter lists
// still referencing it, so a fired waiter returns to the pool only once
// every list has dropped it.
type stashWaiter struct {
	offsets  []int // waiter-owned copy of the access's stash offsets
	done     func(vals []uint32)
	fired    bool
	attached int
}

// fillLine records, for one global line of a fill or registration plan,
// the stash word offset each line word targets (-1 = none).
type fillLine struct {
	line memdata.PAddr
	soff [memdata.WordsPerLine]int32
}

// fillPlan groups one access's misses (or registrations) by global
// line. Lines are kept sorted by address, so iterating the plan issues
// requests in the same deterministic order the old sorted-map-keys code
// produced; plans are pooled because a load's plan lives until its
// translation-delayed issue closure runs.
type fillPlan struct {
	lines []fillLine
}

func (p *fillPlan) lookup(line memdata.PAddr) *fillLine {
	for i := range p.lines {
		if p.lines[i].line == line {
			return &p.lines[i]
		}
	}
	return nil
}

func (p *fillPlan) insert(line memdata.PAddr) *fillLine {
	pos := len(p.lines)
	for i := range p.lines {
		if line < p.lines[i].line {
			pos = i
			break
		}
	}
	p.lines = append(p.lines, fillLine{})
	copy(p.lines[pos+1:], p.lines[pos:len(p.lines)-1])
	fl := &p.lines[pos]
	fl.line = line
	for i := range fl.soff {
		fl.soff[i] = -1
	}
	return fl
}

func (p *fillPlan) getOrInsert(line memdata.PAddr) *fillLine {
	if fl := p.lookup(line); fl != nil {
		return fl
	}
	return p.insert(line)
}

// regPend tracks stash offsets awaiting a RegAck for one global line,
// per line word. present marks words with a non-empty list (the map-
// free equivalent of the old per-word map keys).
type regPend struct {
	present memdata.WordMask
	lists   [memdata.WordsPerLine][]int32
}

// wbLine is one global line of a chunk writeback.
type wbLine struct {
	line memdata.PAddr
	mask memdata.WordMask
	vals [memdata.WordsPerLine]uint32
}

// wbPlan groups a chunk flush by global line, sorted by address (same
// determinism argument as fillPlan). It is used synchronously, so one
// scratch instance per stash suffices.
type wbPlan struct {
	lines []wbLine
}

func (p *wbPlan) getOrInsert(line memdata.PAddr) *wbLine {
	pos := len(p.lines)
	for i := range p.lines {
		if p.lines[i].line == line {
			return &p.lines[i]
		}
		if line < p.lines[i].line {
			pos = i
			break
		}
	}
	p.lines = append(p.lines, wbLine{})
	copy(p.lines[pos+1:], p.lines[pos:len(p.lines)-1])
	wl := &p.lines[pos]
	*wl = wbLine{line: line}
	return wl
}

// Stash is one CU's stash (Figure 3). It attaches to the node's router
// as coh.ToStash.
type Stash struct {
	eng  *sim.Engine
	net  *noc.Network
	node int
	p    Params
	as   *vm.AddressSpace
	acct *energy.Account

	words []uint32
	state []coh.State

	chunkMap   []int // stash-map index last stored into the chunk
	chunkDirty []bool
	chunkWB    []bool

	maps []mapEntry
	tail int
	gen  uint64

	vp     *vpMap
	tables map[int][]int // thread block -> map index table

	chunk int // writeback chunk granularity in words (Params.ChunkWords)

	mshrs      map[memdata.PAddr]*readMSHR
	pendingReg map[memdata.PAddr]*regPend
	wbuf       *coh.WBBuffer

	outstanding int
	drainWait   []func()
	chk         *check.Checker
	// Pool conservation counters: objects acquired but not yet released.
	// They must all read zero at a quiescent boundary; a nonzero count
	// after a drain is a leaked pooled object.
	waitersOut int
	plansOut   int
	valsOut    int
	// purgeCand lists MSHRs whose requested mask has dropped to zero;
	// only these can be left holding fired waiters (fired through a
	// sibling line's MSHR), so drain checks scan this list instead of
	// the whole MSHR map.
	purgeCand []*readMSHR
	// waiterFired is set when a waiter fires and cleared after a purge
	// sweep. A candidate's waiter list can only lose entries when some
	// waiter fires, so while the flag is clear the sweep skips the
	// per-waiter scans entirely — without it, every ack re-walked every
	// candidate's unfired waiters, which is quadratic during bursts of
	// same-line loads.
	waiterFired bool

	// Free lists and scratch buffers for the access hot path. All are
	// bounded by the steady-state transaction concurrency and reuse
	// their capacity, so warmed-up accesses allocate nothing.
	mshrFree    []*readMSHR
	waiterFree  []*stashWaiter
	regPendFree []*regPend
	planFree    []*fillPlan
	valsFree    [][]uint32
	tableFree   [][]int
	wbScratch   wbPlan
	missScratch []int
	bankCnt     []int // per-bank distinct-offset count, zeroed between calls
	bankTouched []int
	blkOwned    []bool // per-map-entry flag scratch for EndThreadBlock

	hits        *stats.Counter
	misses      *stats.Counter
	missLines   *stats.Counter
	remote      *stats.Counter
	writebacks  *stats.Counter
	addmaps     *stats.Counter
	reuseHits   *stats.Counter
	replCopies  *stats.Counter
	lazyFlushes *stats.Counter

	tsnk         *trace.Sink
	trMisses     *trace.Series
	trWritebacks *trace.Series
	trMapOcc     *trace.Series
}

// New builds a stash for the CU at node, translating through as.
func New(eng *sim.Engine, net *noc.Network, node int, name string, p Params, as *vm.AddressSpace, acct *energy.Account, set *stats.Set) *Stash {
	nwords := p.SizeBytes / memdata.WordBytes
	chunk := p.ChunkWords
	if chunk == 0 {
		chunk = ChunkWords
	}
	if chunk < 1 || chunk > ChunkWords || chunk&(chunk-1) != 0 {
		panic(fmt.Sprintf("core: chunk granularity %d words must be a power of two in [1,%d]", chunk, ChunkWords))
	}
	s := &Stash{
		eng:        eng,
		net:        net,
		node:       node,
		p:          p,
		as:         as,
		acct:       acct,
		chunk:      chunk,
		words:      make([]uint32, nwords),
		state:      make([]coh.State, nwords),
		chunkMap:   make([]int, nwords/chunk),
		chunkDirty: make([]bool, nwords/chunk),
		chunkWB:    make([]bool, nwords/chunk),
		maps:       make([]mapEntry, p.MapEntries),
		vp:         newVPMap(p.VPEntries, as),
		tables:     make(map[int][]int),
		mshrs:      make(map[memdata.PAddr]*readMSHR),
		pendingReg: make(map[memdata.PAddr]*regPend),
		wbuf:       coh.NewWBBuffer(),
		bankCnt:    make([]int, p.Banks),
		blkOwned:   make([]bool, p.MapEntries),

		hits:        set.Counter(fmt.Sprintf("stash.%s.hits", name)),
		misses:      set.Counter(fmt.Sprintf("stash.%s.misses", name)),
		missLines:   set.Counter(fmt.Sprintf("stash.%s.miss_lines", name)),
		remote:      set.Counter(fmt.Sprintf("stash.%s.remote_hits", name)),
		writebacks:  set.Counter(fmt.Sprintf("stash.%s.writebacks", name)),
		addmaps:     set.Counter(fmt.Sprintf("stash.%s.addmaps", name)),
		reuseHits:   set.Counter(fmt.Sprintf("stash.%s.map_reuse", name)),
		replCopies:  set.Counter(fmt.Sprintf("stash.%s.replication_copies", name)),
		lazyFlushes: set.Counter(fmt.Sprintf("stash.%s.lazy_writeback_chunks", name)),
	}
	for i := range s.maps {
		s.maps[i].reuseOf = -1
	}
	for i := range s.chunkMap {
		s.chunkMap[i] = -1
	}
	return s
}

// Words returns the stash capacity in words.
func (s *Stash) Words() int { return len(s.words) }

// --- free lists ---

func (s *Stash) acquireMSHR() *readMSHR {
	if n := len(s.mshrFree); n > 0 {
		m := s.mshrFree[n-1]
		s.mshrFree = s.mshrFree[:n-1]
		return m
	}
	return &readMSHR{}
}

func (s *Stash) retireMSHR(m *readMSHR) {
	m.requested = 0
	for i := range m.fills {
		m.fills[i] = m.fills[i][:0]
	}
	m.waiters = m.waiters[:0]
	m.inPurge = false
	s.mshrFree = append(s.mshrFree, m)
}

func (s *Stash) acquireWaiter(offsets []int, done func([]uint32)) *stashWaiter {
	var w *stashWaiter
	if n := len(s.waiterFree); n > 0 {
		w = s.waiterFree[n-1]
		s.waiterFree = s.waiterFree[:n-1]
	} else {
		w = &stashWaiter{}
	}
	w.offsets = append(w.offsets[:0], offsets...)
	w.done = done
	w.fired = false
	w.attached = 0
	s.waitersOut++
	return w
}

func (s *Stash) releaseWaiter(w *stashWaiter) {
	w.done = nil
	s.waitersOut--
	s.waiterFree = append(s.waiterFree, w)
}

func (s *Stash) acquirePlan() *fillPlan {
	s.plansOut++
	if n := len(s.planFree); n > 0 {
		p := s.planFree[n-1]
		s.planFree = s.planFree[:n-1]
		return p
	}
	return &fillPlan{}
}

func (s *Stash) releasePlan(p *fillPlan) {
	p.lines = p.lines[:0]
	s.plansOut--
	s.planFree = append(s.planFree, p)
}

func (s *Stash) acquireRegPend() *regPend {
	if n := len(s.regPendFree); n > 0 {
		p := s.regPendFree[n-1]
		s.regPendFree = s.regPendFree[:n-1]
		return p
	}
	return &regPend{}
}

// --- AddMap / ChgMap (Section 3.1, 4.2) ---

// AddMap installs a stash-to-global mapping for thread block tb in map
// index table slot, returning the stash-map index. Stash allocations
// must be chunk (by default 64 B) aligned so the per-chunk stash-map
// index is unambiguous (cf. the paper's chunk-alignment requirement,
// fn. 4).
func (s *Stash) AddMap(tb, slot int, m MapParams) int {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if m.StashBase%s.chunk != 0 {
		panic(fmt.Sprintf("core: stash base %d not chunk aligned", m.StashBase))
	}
	if m.StashBase+m.Words() > len(s.words) {
		panic(fmt.Sprintf("core: mapping of %d words at %d exceeds stash size %d",
			m.Words(), m.StashBase, len(s.words)))
	}
	if slot < 0 || slot >= s.p.SlotsPerTB {
		panic(fmt.Sprintf("core: map index table slot %d out of range (max %d per thread block)", slot, s.p.SlotsPerTB))
	}
	s.addmaps.Inc()

	table := s.tables[tb]
	if table == nil {
		if n := len(s.tableFree); n > 0 {
			table = s.tableFree[n-1]
			s.tableFree = s.tableFree[:n-1]
		} else {
			table = make([]int, s.p.SlotsPerTB)
		}
		for i := range table {
			table[i] = -1
		}
		s.tables[tb] = table
	}

	if s.p.EnableReplication {
		for i := range s.maps {
			e := &s.maps[i]
			if !e.valid || !e.MapParams.sameTile(m) {
				continue
			}
			if e.StashBase == m.StashBase && e.Coherent == m.Coherent {
				// Perfect match including the stash allocation: reuse the
				// entry; resident data and coherence state carry over, so
				// a later kernel hits where a scratchpad would reload.
				s.reuseHits.Inc()
				e.active = true
				table[slot] = i
				s.tsnk.Event(uint64(s.eng.Now()), trace.KAddMap, uint64(i), 0)
				s.traceMapOcc()
				return i
			}
		}
	}

	// The new allocation claims its stash range: any other valid entry
	// overlapping it is retired now (dirty chunks written back, data
	// invalidated), so stale entries can never serve replication copies
	// of someone else's data.
	for i := range s.maps {
		e := &s.maps[i]
		if !e.valid {
			continue
		}
		if e.StashBase < m.StashBase+m.Words() && m.StashBase < e.StashBase+e.Words() {
			if e.active {
				panic(fmt.Sprintf("core: AddMap range [%d,%d) overlaps active mapping %d",
					m.StashBase, m.StashBase+m.Words(), i))
			}
			s.retireEntry(i)
		}
	}

	// Data replication (Section 4.5): an older mapping of the same tile
	// at a different allocation lets load misses copy within the stash.
	reusePartial := -1
	if s.p.EnableReplication {
		for i := range s.maps {
			e := &s.maps[i]
			if e.valid && e.MapParams.sameTile(m) {
				reusePartial = i
				break
			}
		}
	}

	idx := s.allocEntry()
	e := &s.maps[idx]
	s.gen++
	*e = mapEntry{
		MapParams:  m,
		valid:      true,
		active:     true,
		fieldWords: m.FieldBytes / memdata.WordBytes,
		reuseOf:    reusePartial,
		generation: s.gen,
	}

	// Install the VP-map translations, reclaiming dead entries and, if
	// necessary, retiring further stash-map entries (Section 4.2). When
	// every entry belongs to an active mapping, the remaining pages are
	// acquired lazily at the subsequent misses (Section 4.1.4's
	// fallback) — the paper expects the programmer to size mappings so
	// this stays rare, and vp.refills counts it.
	s.installPages(e, idx)

	// Prepare the stash range: chunks with a pending writeback keep
	// their old data until first touch (lazy writeback); everything
	// else is invalidated for the new allocation.
	s.invalidateRangeExceptPendingWB(m.StashBase, m.Words())

	table[slot] = idx
	s.tsnk.Event(uint64(s.eng.Now()), trace.KAddMap, uint64(idx), 0)
	s.traceMapOcc()
	return idx
}

// ChgMap updates slot's existing mapping (Section 4.2). Dirty data of
// the old coherent mapping is written back when the global target or
// coherence mode changes; a non-coherent-to-coherent change issues
// registrations for locally dirty words.
func (s *Stash) ChgMap(tb, slot int, m MapParams) int {
	table := s.tables[tb]
	if table == nil || table[slot] < 0 {
		panic("core: ChgMap on empty map index table slot")
	}
	idx := table[slot]
	old := s.maps[idx]

	if old.Coherent && !old.MapParams.sameTile(m) {
		// New global addresses: write back old dirty data, invalidate.
		s.flushEntryChunks(idx)
	}
	switch {
	case old.Coherent && !m.Coherent:
		s.flushEntryChunks(idx)
	case !old.Coherent && m.Coherent && old.MapParams.sameTile(m):
		// Locally dirty words become globally visible: register them.
		s.registerLocalDirty(idx)
	}

	if err := m.Validate(); err != nil {
		panic(err)
	}
	e := &s.maps[idx]
	keep := e.generation
	s.gen++
	*e = mapEntry{MapParams: m, valid: true, active: true, fieldWords: m.FieldBytes / memdata.WordBytes, reuseOf: -1, generation: keep}
	s.installPages(e, idx)
	if !old.MapParams.sameTile(m) {
		s.invalidateRangeExceptPendingWB(m.StashBase, m.Words())
	}
	return idx
}

// MapIndex returns the stash-map index stored in tb's map index table.
func (s *Stash) MapIndex(tb, slot int) int {
	table := s.tables[tb]
	if table == nil || table[slot] < 0 {
		panic(fmt.Sprintf("core: no mapping in slot %d of thread block %d", slot, tb))
	}
	return table[slot]
}

func (s *Stash) allocEntry() int {
	for tries := 0; tries < len(s.maps); tries++ {
		idx := s.tail
		s.tail = (s.tail + 1) % len(s.maps)
		if old := &s.maps[idx]; old.valid {
			if old.active {
				continue // never replace a running thread block's mapping
			}
			// Replacing a valid entry with unwritten dirty data: initiate
			// its writebacks (the rare blocking case of Section 4.2).
			s.retireEntry(idx)
		}
		return idx
	}
	panic("core: stash-map full of active mappings; too many AddMaps per resident thread blocks")
}

// installPages fills the VP-map for entry idx, reclaiming dead entries
// and retiring inactive stash-map entries under pressure; pages that
// still do not fit are acquired lazily at the first miss needing them.
func (s *Stash) installPages(e *mapEntry, idx int) {
	for _, page := range e.pages() {
		for !s.vp.install(page, idx) {
			if s.vp.reclaim(func(i int) bool { return s.maps[i].valid }) > 0 {
				continue
			}
			victim := s.oldestValidEntry(idx)
			if victim < 0 {
				return // all entries active: fall back to lazy refills
			}
			s.retireEntry(victim)
		}
	}
}

func (s *Stash) oldestValidEntry(except int) int {
	best, bestGen := -1, uint64(0)
	for i := range s.maps {
		e := &s.maps[i]
		if !e.valid || e.active || i == except {
			continue
		}
		if best < 0 || e.generation < bestGen {
			best, bestGen = i, e.generation
		}
	}
	return best
}

// retireEntry writes back any dirty chunks of entry idx and invalidates
// it, releasing its VP-map translations.
func (s *Stash) retireEntry(idx int) {
	s.flushEntryChunks(idx)
	s.maps[idx].valid = false
	s.vp.dropUser(idx)
	s.traceMapOcc()
}

func (s *Stash) flushEntryChunks(idx int) {
	for c := range s.chunkMap {
		if s.chunkMap[c] == idx && (s.chunkDirty[c] || s.chunkWB[c]) {
			s.flushChunk(c)
		}
	}
}

func (s *Stash) invalidateRangeExceptPendingWB(base, nwords int) {
	for off := base; off < base+nwords; off++ {
		c := off / s.chunk
		if s.chunkWB[c] || s.chunkDirty[c] {
			continue // lazy writeback pending; first touch flushes it
		}
		s.state[off] = coh.Invalid
	}
}

// registerLocalDirty sends registration requests for every locally
// owned word of entry idx (the non-coherent-to-coherent ChgMap case).
func (s *Stash) registerLocalDirty(idx int) {
	e := &s.maps[idx]
	plan := s.acquirePlan()
	for off := e.StashBase; off < e.StashBase+e.Words(); off++ {
		if s.state[off] != coh.Registered {
			continue
		}
		va := e.stashToVirt(off)
		pa := s.vp.translate(va)
		fl := plan.getOrInsert(memdata.LineOf(pa))
		fl.soff[memdata.WordIndex(pa)] = int32(off)
		s.state[off] = coh.PendingReg
	}
	for i := range plan.lines {
		s.sendRegReq(&plan.lines[i], idx)
	}
	s.releasePlan(plan)
}

// --- access path ---

// chargeArray charges n stash array accesses: the unified StashHit
// class on the default path, or the read/write-split class when a
// technology profile is active.
func (s *Stash) chargeArray(write bool, n uint64) {
	if s.p.TechEnergy {
		if write {
			s.acct.Add(energy.StashWrite, n)
		} else {
			s.acct.Add(energy.StashRead, n)
		}
		return
	}
	s.acct.Add(energy.StashHit, n)
}

// conflictRounds returns the number of serialized bank rounds a warp
// access needs: the maximum number of distinct word offsets mapping to
// the same bank (same-offset lanes broadcast for free). Distinct
// offsets are deduplicated by a quadratic scan — a warp has at most
// warpSize offsets — and counted in a reusable per-bank array.
func (s *Stash) conflictRounds(offsets []int) int {
	rounds := 1
outer:
	for i, off := range offsets {
		for _, prev := range offsets[:i] {
			if prev == off {
				continue outer
			}
		}
		b := off % s.p.Banks
		if s.bankCnt[b] == 0 {
			s.bankTouched = append(s.bankTouched, b)
		}
		s.bankCnt[b]++
		if s.bankCnt[b] > rounds {
			rounds = s.bankCnt[b]
		}
	}
	for _, b := range s.bankTouched {
		s.bankCnt[b] = 0
	}
	s.bankTouched = s.bankTouched[:0]
	return rounds
}

func (s *Stash) checkOffsets(offsets []int) {
	for _, off := range offsets {
		if off < 0 || off >= len(s.words) {
			panic(fmt.Sprintf("core: stash offset %d out of range", off))
		}
	}
}

// touchChunk performs the per-access writeback-bit check (Section 4.2):
// an access by mapping idx to a chunk whose pending writeback belongs
// to an older mapping triggers the lazy writeback now.
func (s *Stash) touchChunk(off, idx int) {
	c := off / s.chunk
	if s.chunkWB[c] && s.chunkMap[c] != idx {
		s.flushChunk(c)
	}
}

// Load performs a warp load of the given absolute stash word offsets
// under thread block tb's mapping in table slot. done receives the
// values once every word is resident; hits complete after HitLat times
// the bank-conflict rounds. Both slices are owned by the caller: vals
// is a pooled buffer valid only during the done callback, and offsets
// is not retained past the Load call.
func (s *Stash) Load(tb, slot int, offsets []int, done func(vals []uint32)) {
	s.checkOffsets(offsets)
	idx := s.MapIndex(tb, slot)
	e := &s.maps[idx]
	for _, off := range offsets {
		s.touchChunk(off, idx)
	}

	missing := s.missScratch[:0]
	for _, off := range offsets {
		if s.state[off].Readable() {
			continue
		}
		// Data replication (Section 4.5): on a load miss with the reuse
		// bit set, first try to copy from the replicated old mapping.
		if e.reuseOf >= 0 {
			oldE := &s.maps[e.reuseOf]
			if oldE.valid && oldE.StashBase != e.StashBase {
				oldOff := oldE.StashBase + (off - e.StashBase)
				if oldOff >= 0 && oldOff < len(s.words) && s.state[oldOff].Readable() {
					s.words[off] = s.words[oldOff]
					s.state[off] = coh.Shared
					s.replCopies.Inc()
					if s.p.TechEnergy {
						// The intra-stash copy reads the old allocation and
						// writes the new one.
						s.acct.Add(energy.StashRead, 1)
						s.acct.Add(energy.StashWrite, 1)
					} else {
						s.acct.Add(energy.StashHit, 1) // intra-stash copy read
					}
					continue
				}
			}
		}
		missing = append(missing, off)
	}

	rounds := s.conflictRounds(offsets)
	if len(missing) == 0 {
		s.hits.Inc()
		s.chargeArray(false, uint64(rounds))
		vals := s.gather(offsets)
		s.eng.Schedule(s.p.HitLat*sim.Cycle(rounds)+s.p.ReadExtra, func() {
			done(vals)
			s.releaseVals(vals)
		})
		return
	}
	s.misses.Inc()
	s.tsnk.Event(uint64(s.eng.Now()), trace.KMiss, uint64(missing[0]), uint64(len(missing)))
	s.trMisses.Add(uint64(s.eng.Now()), 1)
	if len(missing) < len(offsets) {
		// The hit portion still activates the array.
		s.chargeArray(false, uint64(rounds))
	}

	// Miss: translate (six ALU ops through the stash-map plus a VP-map
	// TLB access), then request the missing global lines, compactly
	// filling every still-invalid stash word that maps to each line.
	plan := s.acquirePlan() // global line -> line word -> stash offset
	for _, off := range missing {
		va := e.stashToVirt(off)
		pa := s.vp.translate(va)
		line := memdata.LineOf(pa)
		if plan.lookup(line) != nil {
			continue // already planned by a sibling miss
		}
		fl := plan.insert(line)
		vline := memdata.VLineOf(va)
		for w := 0; w < memdata.WordsPerLine; w++ {
			wa := vline + memdata.VAddr(w*memdata.WordBytes)
			soff, ok := e.virtToStash(wa)
			if !ok || s.state[soff] != coh.Invalid {
				continue
			}
			fl.soff[w] = int32(soff)
		}
	}
	s.missScratch = missing[:0]
	waiter := s.acquireWaiter(offsets, done)
	s.eng.Schedule(s.p.TranslateLat, func() {
		attached := false
		// The plan is address-sorted, which keeps line-request issue
		// deterministic (map order would perturb downstream timing run
		// to run).
		for i := range plan.lines {
			if s.requestLine(&plan.lines[i], waiter) {
				attached = true
			}
		}
		s.releasePlan(plan)
		if !attached {
			// Everything arrived (or was filled by a racing request)
			// between planning and issue; answer from the array.
			s.completeIfReady(waiter)
			if waiter.fired && waiter.attached == 0 {
				s.releaseWaiter(waiter)
			}
		}
	})
}

// requestLine asks the LLC for the still-missing words of a global
// line, attaching the waiter to the line's MSHR. It reports whether the
// waiter was attached (i.e. the line has outstanding fills).
func (s *Stash) requestLine(fl *fillLine, w *stashWaiter) bool {
	line := fl.line
	need := memdata.WordMask(0)
	m := s.mshrs[line]
	for wi, soff := range fl.soff {
		if soff >= 0 && s.state[soff] == coh.Invalid {
			need |= memdata.Bit(wi)
		}
	}
	if m == nil && need == 0 {
		return false
	}
	if m == nil {
		m = s.acquireMSHR()
		m.line = line
		m.born = s.eng.Now()
		s.mshrs[line] = m
	}
	for wi, soff := range fl.soff {
		if soff >= 0 {
			m.fills[wi] = append(m.fills[wi], soff)
		}
	}
	if newNeed := need &^ m.requested; newNeed != 0 {
		m.requested |= newNeed
		s.missLines.Inc()
		s.acct.Add(energy.StashMiss, 1)
		s.acct.Add(energy.TLBAccess, 1)
		coh.Send(s.net, &coh.Packet{
			Type: coh.ReadReq, Line: line, Mask: newNeed,
			SrcNode: s.node, SrcComp: coh.ToStash,
			DstNode: llc.BankOf(line, s.p.NumLLCBanks), DstComp: coh.ToLLC,
			MapIdx: -1,
		})
	}
	if m.requested == 0 {
		// Nothing is in flight for this line (its fills landed between
		// this access's translation and issue): no future response will
		// recheck a waiter parked here, so do not attach one.
		return false
	}
	m.waiters = append(m.waiters, w)
	w.attached++
	return true
}

// gather reads the offsets' values into a pooled buffer; the caller
// returns it with releaseVals after the consuming callback has run.
func (s *Stash) gather(offsets []int) []uint32 {
	s.valsOut++
	var vals []uint32
	if n := len(s.valsFree); n > 0 {
		vals = s.valsFree[n-1][:0]
		s.valsFree = s.valsFree[:n-1]
	}
	for _, off := range offsets {
		vals = append(vals, s.words[off])
	}
	return vals
}

func (s *Stash) releaseVals(v []uint32) {
	s.valsOut--
	s.valsFree = append(s.valsFree, v)
}

// Store performs a warp store. Data is accepted immediately (the warp
// does not block); registration of newly owned words and the chunked
// dirty bookkeeping of Section 4.2 happen in the background.
func (s *Stash) Store(tb, slot int, offsets []int, vals []uint32, done func()) {
	if len(vals) != len(offsets) {
		panic("core: offsets/vals length mismatch")
	}
	s.checkOffsets(offsets)
	idx := s.MapIndex(tb, slot)
	e := &s.maps[idx]
	for _, off := range offsets {
		s.touchChunk(off, idx)
	}

	plan := s.acquirePlan()
	anyMiss := false
	for i, off := range offsets {
		s.words[off] = vals[i]
		if e.Coherent {
			s.noteStore(off, idx)
		}
		if s.state[off].Owned() {
			continue
		}
		if !e.Coherent {
			// Mapped Non-coherent: locally owned, never made visible.
			s.state[off] = coh.Registered
			continue
		}
		s.state[off] = coh.PendingReg
		anyMiss = true
		va := e.stashToVirt(off)
		pa := s.vp.translate(va)
		fl := plan.getOrInsert(memdata.LineOf(pa))
		fl.soff[memdata.WordIndex(pa)] = int32(off)
	}

	rounds := s.conflictRounds(offsets)
	lat := s.p.HitLat*sim.Cycle(rounds) + s.p.WriteExtra
	if !anyMiss {
		s.hits.Inc()
		s.chargeArray(true, uint64(rounds))
	} else {
		s.misses.Inc()
		s.chargeArray(true, uint64(rounds)) // array write itself
		// Registration requests are injected in program order, before
		// any later writeback of the same words can be sent: a WBReq
		// reaching the LLC ahead of its own RegReq would be dropped as
		// stale and strand the registration. The translation occupies
		// the store for TranslateLat instead.
		for i := range plan.lines {
			s.sendRegReq(&plan.lines[i], idx)
		}
		lat += s.p.TranslateLat
	}
	s.releasePlan(plan)
	s.eng.Schedule(lat, done)
}

// noteStore maintains the per-chunk dirty bit, stash-map index and the
// entry's #DirtyData counter (Section 4.2).
func (s *Stash) noteStore(off, idx int) {
	c := off / s.chunk
	if s.chunkDirty[c] && s.chunkMap[c] == idx {
		return
	}
	accounted := (s.chunkDirty[c] || s.chunkWB[c]) && s.chunkMap[c] == idx
	s.chunkDirty[c] = true
	s.chunkMap[c] = idx
	if !accounted {
		s.maps[idx].dirtyData++
	}
}

func (s *Stash) sendRegReq(fl *fillLine, idx int) {
	line := fl.line
	pend := s.pendingReg[line]
	if pend == nil {
		pend = s.acquireRegPend()
		s.pendingReg[line] = pend
	}
	mask := memdata.WordMask(0)
	for wi, soff := range fl.soff {
		if soff < 0 {
			continue
		}
		if len(pend.lists[wi]) == 0 {
			mask |= memdata.Bit(wi)
		}
		pend.lists[wi] = append(pend.lists[wi], soff)
		pend.present |= memdata.Bit(wi)
	}
	if mask == 0 {
		return
	}
	s.outstanding++
	s.acct.Add(energy.StashMiss, 1)
	s.acct.Add(energy.TLBAccess, 1)
	coh.Send(s.net, &coh.Packet{
		Type: coh.RegReq, Line: line, Mask: mask,
		SrcNode: s.node, SrcComp: coh.ToStash,
		DstNode: llc.BankOf(line, s.p.NumLLCBanks), DstComp: coh.ToLLC,
		MapIdx: idx,
	})
}

func (s *Stash) completeIfReady(w *stashWaiter) {
	if w.fired {
		return
	}
	for _, off := range w.offsets {
		if !s.state[off].Readable() {
			return
		}
	}
	w.fired = true
	s.waiterFired = true
	vals := s.gather(w.offsets)
	done := w.done
	s.eng.Schedule(s.p.HitLat+s.p.ReadExtra, func() {
		done(vals)
		s.releaseVals(vals)
	})
}

// --- chunked lazy writeback (Section 4.2) ---

// flushChunk writes back the owned words of a chunk through its
// recorded stash-map entry and invalidates the chunk.
func (s *Stash) flushChunk(c int) {
	idx := s.chunkMap[c]
	if idx < 0 {
		return
	}
	e := &s.maps[idx]
	s.lazyFlushes.Inc()
	wb := &s.wbScratch
	wb.lines = wb.lines[:0]
	base := c * s.chunk
	for off := base; off < base+s.chunk; off++ {
		if !s.state[off].Owned() {
			if s.state[off] == coh.Shared {
				s.state[off] = coh.Invalid
			}
			continue
		}
		if off < e.StashBase || off >= e.StashBase+e.Words() {
			s.state[off] = coh.Invalid
			continue
		}
		va := e.stashToVirt(off)
		pa := s.vp.translate(va)
		wl := wb.getOrInsert(memdata.LineOf(pa))
		wl.vals[memdata.WordIndex(pa)] = s.words[off]
		wl.mask |= memdata.Bit(memdata.WordIndex(pa))
		s.state[off] = coh.Invalid
	}
	for i := range wb.lines {
		wl := &wb.lines[i]
		s.writebacks.Inc()
		s.tsnk.Event(uint64(s.eng.Now()), trace.KWriteback, uint64(wl.line), 0)
		s.trWritebacks.Add(uint64(s.eng.Now()), 1)
		s.wbuf.Put(wl.line, wl.mask, wl.vals)
		s.outstanding++
		// Reading the words out of the array for the writeback.
		s.chargeArray(false, 1)
		coh.Send(s.net, &coh.Packet{
			Type: coh.WBReq, Line: wl.line, Mask: wl.mask, Vals: wl.vals,
			SrcNode: s.node, SrcComp: coh.ToStash,
			DstNode: llc.BankOf(wl.line, s.p.NumLLCBanks), DstComp: coh.ToLLC,
			MapIdx: idx,
		})
	}
	wasAccounted := s.chunkDirty[c] || s.chunkWB[c]
	s.chunkDirty[c] = false
	s.chunkWB[c] = false
	s.chunkMap[c] = -1
	if wasAccounted {
		e.dirtyData--
		if e.dirtyData == 0 && e.retired() {
			s.maps[idx].valid = false
		}
	}
}

func (e *mapEntry) retired() bool { return !e.active }

// --- kernel and thread-block boundaries ---

// EndThreadBlock implements the paper's thread-block completion action:
// per-chunk dirty bits of the block's mappings are cleared and their
// writeback bits set, arming lazy writeback; the block's map index
// table is released.
func (s *Stash) EndThreadBlock(tb int) {
	table := s.tables[tb]
	if table == nil {
		return
	}
	for _, idx := range table {
		if idx >= 0 {
			s.blkOwned[idx] = true
			s.maps[idx].active = false
		}
	}
	for c := range s.chunkDirty {
		if s.chunkDirty[c] && s.chunkMap[c] >= 0 && s.blkOwned[s.chunkMap[c]] {
			s.chunkDirty[c] = false
			s.chunkWB[c] = true
		}
	}
	for _, idx := range table {
		if idx >= 0 {
			s.blkOwned[idx] = false
		}
	}
	delete(s.tables, tb)
	s.tableFree = append(s.tableFree, table)
}

// SelfInvalidate implements the kernel-end action of Section 4.3: data
// registered by this stash is kept; everything else is invalidated.
// With EagerWriteback set (ablation), all dirty data is written back
// scratchpad-style instead.
func (s *Stash) SelfInvalidate() {
	if s.p.EagerWriteback {
		s.WritebackAll()
		return
	}
	for off := range s.state {
		if s.state[off] == coh.Shared {
			s.state[off] = coh.Invalid
		}
	}
}

// WritebackAll flushes every dirty or writeback-armed chunk.
func (s *Stash) WritebackAll() {
	for c := range s.chunkMap {
		if s.chunkDirty[c] || s.chunkWB[c] {
			s.flushChunk(c)
		}
	}
}

// Drain calls done once all outstanding fills, registrations, and
// writebacks have been acknowledged.
func (s *Stash) Drain(done func()) {
	s.drainWait = append(s.drainWait, done)
	s.checkDrained()
}

func (s *Stash) checkDrained() {
	// Purge MSHRs whose fills all arrived and whose waiters have fired
	// through a sibling line's MSHR. Only the purge candidates
	// (requested mask zero) can be in that state; scanning the whole
	// MSHR map here made every ack O(outstanding lines).
	if s.waiterFired {
		// A candidate's waiter list only shrinks when a waiter fires,
		// so with the flag clear no candidate can have become
		// collectible since the last sweep and the whole walk is
		// skipped. (A candidate resurrected by a later miss stays
		// listed until the next real sweep unlists it; it is still
		// inPurge, so fill will not double-list it.)
		s.waiterFired = false
		cand := s.purgeCand[:0]
		for _, m := range s.purgeCand {
			if m.requested != 0 {
				m.inPurge = false
				continue
			}
			live := m.waiters[:0]
			for _, w := range m.waiters {
				if !w.fired {
					live = append(live, w)
					continue
				}
				w.attached--
				if w.attached == 0 {
					s.releaseWaiter(w)
				}
			}
			m.waiters = live
			if len(m.waiters) == 0 {
				delete(s.mshrs, m.line)
				s.retireMSHR(m)
			} else {
				cand = append(cand, m)
			}
		}
		s.purgeCand = cand
	}
	if s.outstanding != 0 || len(s.mshrs) != 0 || len(s.drainWait) == 0 {
		return
	}
	w := s.drainWait
	s.drainWait = nil
	for _, fn := range w {
		s.eng.Schedule(0, fn)
	}
}

// --- protocol handling ---

// HandlePacket implements coh.Handler.
func (s *Stash) HandlePacket(p *coh.Packet) {
	switch p.Type {
	case coh.DataResp:
		s.fill(p)
	case coh.RegAck:
		s.regAck(p)
	case coh.WBAck:
		s.wbuf.Release(p.Line, p.Mask)
		s.outstanding--
		s.chk.Progress()
		s.checkDrained()
	case coh.FwdReadReq:
		s.serveRemote(p)
	case coh.OwnerInv:
		s.ownerInv(p)
	default:
		panic("core: unexpected packet " + p.Type.String())
	}
}

func (s *Stash) fill(p *coh.Packet) {
	s.chk.Progress()
	s.tsnk.Event(uint64(s.eng.Now()), trace.KFill, uint64(p.Line), 0)
	m := s.mshrs[p.Line]
	if m == nil {
		return
	}
	for wi := 0; wi < memdata.WordsPerLine; wi++ {
		if !p.Mask.Has(wi) {
			continue
		}
		for _, soff := range m.fills[wi] {
			if s.state[soff] == coh.Invalid {
				s.words[soff] = p.Vals[wi]
				s.state[soff] = coh.Shared
			}
		}
	}
	if s.p.TechEnergy {
		// The fill installs words into the array: one write access.
		s.acct.Add(energy.StashWrite, 1)
	}
	m.requested &^= p.Mask
	remaining := m.waiters[:0]
	for _, w := range m.waiters {
		s.completeIfReady(w)
		if !w.fired {
			remaining = append(remaining, w)
			continue
		}
		w.attached--
		if w.attached == 0 {
			s.releaseWaiter(w)
		}
	}
	m.waiters = remaining
	if m.requested == 0 {
		// The purge in checkDrained retires the MSHR (now, if its
		// waiters are all done, or later once siblings fire them).
		if !m.inPurge {
			m.inPurge = true
			s.purgeCand = append(s.purgeCand, m)
		}
		if len(m.waiters) == 0 {
			s.checkDrained()
		}
	}
}

func (s *Stash) regAck(p *coh.Packet) {
	s.chk.Progress()
	if pend := s.pendingReg[p.Line]; pend != nil {
		for wi := 0; wi < memdata.WordsPerLine; wi++ {
			if !p.Mask.Has(wi) {
				continue
			}
			for _, soff := range pend.lists[wi] {
				if s.state[soff] == coh.PendingReg {
					s.state[soff] = coh.Registered
				}
			}
			pend.lists[wi] = pend.lists[wi][:0]
			pend.present &^= memdata.Bit(wi)
		}
		if pend.present == 0 {
			delete(s.pendingReg, p.Line)
			s.regPendFree = append(s.regPendFree, pend)
		}
	}
	s.outstanding--
	s.checkDrained()
}

// serveRemote answers a forwarded read: the physical address is
// reverse-translated through the VP-map RTLB and located in the stash
// through the stash-map entry recorded at the directory (Section 4.3).
func (s *Stash) serveRemote(p *coh.Packet) {
	s.remote.Inc()
	var vals [memdata.WordsPerLine]uint32
	served := memdata.WordMask(0)

	// In-flight writebacks first (the data may have just left the array).
	bufMask, bufVals := s.wbuf.Lookup(p.Line, p.Mask)
	for wi := 0; wi < memdata.WordsPerLine; wi++ {
		if bufMask.Has(wi) {
			vals[wi] = bufVals[wi]
			served |= memdata.Bit(wi)
		}
	}
	if rem := p.Mask &^ served; rem != 0 {
		e := &s.maps[p.MapIdx]
		for wi := 0; wi < memdata.WordsPerLine; wi++ {
			if !rem.Has(wi) {
				continue
			}
			pa := p.Line + memdata.PAddr(wi*memdata.WordBytes)
			va := s.vp.reverse(pa)
			soff, ok := e.virtToStash(va)
			if !ok || !s.state[soff].Owned() {
				continue
			}
			vals[wi] = s.words[soff]
			served |= memdata.Bit(wi)
		}
	}
	if served != p.Mask {
		panic(fmt.Sprintf("core: stash %d cannot serve forwarded read (line %#x mask %v served %v)",
			s.node, uint64(p.Line), p.Mask, served))
	}
	s.chargeArray(false, 1)
	if s.p.ReadExtra > 0 {
		// Delay the response by the technology's read latency, copying
		// the pooled packet's addressing fields into the closure. All
		// traffic from this stash to the requester is DataResps delayed
		// by the same constant, so per-flow FIFO order is preserved.
		line, mask := p.Line, p.Mask
		reqNode, reqComp := p.ReqNode, p.ReqComp
		s.eng.Schedule(s.p.ReadExtra, func() {
			coh.Send(s.net, &coh.Packet{
				Type: coh.DataResp, Line: line, Mask: mask, Vals: vals,
				SrcNode: s.node, SrcComp: coh.ToStash,
				DstNode: reqNode, DstComp: reqComp,
			})
		})
		return
	}
	coh.Send(s.net, &coh.Packet{
		Type: coh.DataResp, Line: p.Line, Mask: p.Mask, Vals: vals,
		SrcNode: s.node, SrcComp: coh.ToStash,
		DstNode: p.ReqNode, DstComp: p.ReqComp,
	})
}

func (s *Stash) ownerInv(p *coh.Packet) {
	e := &s.maps[p.MapIdx]
	for wi := 0; wi < memdata.WordsPerLine; wi++ {
		if !p.Mask.Has(wi) {
			continue
		}
		pa := p.Line + memdata.PAddr(wi*memdata.WordBytes)
		va := s.vp.reverse(pa)
		if soff, ok := e.virtToStash(va); ok && s.state[soff] == coh.Registered {
			s.state[soff] = coh.Invalid
		}
	}
}

// Peek returns the value and state of a stash word, for tests.
func (s *Stash) Peek(off int) (uint32, coh.State) { return s.words[off], s.state[off] }

// DebugString reports outstanding transaction state, for diagnosing
// hangs. Map iterations are sorted so the dump is deterministic.
func (s *Stash) DebugString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "outstanding=%d mshrs=%d pendingReg=%d wbuf=%d pools(waiters=%d plans=%d vals=%d)",
		s.outstanding, len(s.mshrs), len(s.pendingReg), s.wbuf.Len(),
		s.waitersOut, s.plansOut, s.valsOut)
	lines := make([]memdata.PAddr, 0, len(s.mshrs))
	for line := range s.mshrs {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		m := s.mshrs[line]
		fmt.Fprintf(&sb, "\nmshr %#x req=%04x waiters=%d born=%d", uint64(line), uint16(m.requested), len(m.waiters), m.born)
		for _, w := range m.waiters {
			sb.WriteString(" unmet(")
			for _, off := range w.offsets {
				if !s.state[off].Readable() {
					fmt.Fprintf(&sb, " %d:%v", off, s.state[off])
				}
			}
			sb.WriteString(")")
		}
	}
	lines = lines[:0]
	for line := range s.pendingReg {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		fmt.Fprintf(&sb, "\npending-reg %#x present=%016b", uint64(line), s.pendingReg[line].present)
	}
	return sb.String()
}

// SetChecker attaches the self-check layer; a nil checker (the
// default) costs one nil comparison on each completion.
func (s *Stash) SetChecker(chk *check.Checker) { s.chk = chk }

// SetTrace attaches an event sink. A nil sink (the default) leaves
// every instrumented site a nil-check no-op.
func (s *Stash) SetTrace(snk *trace.Sink) {
	s.tsnk = snk
	s.trMisses = snk.Series("misses")
	s.trWritebacks = snk.Series("writebacks")
	s.trMapOcc = snk.Gauge("map_occupancy")
}

// traceMapOcc samples the stash-map occupancy gauge. The valid-entry
// scan only runs with tracing enabled.
func (s *Stash) traceMapOcc() {
	if s.tsnk == nil {
		return
	}
	n := uint64(0)
	for i := range s.maps {
		if s.maps[i].valid {
			n++
		}
	}
	s.trMapOcc.Set(uint64(s.eng.Now()), n)
}

// Outstanding reports in-flight transactions the stash is waiting on,
// for the watchdog's work-pending gate.
func (s *Stash) Outstanding() int { return s.outstanding + len(s.mshrs) }

// CheckInvariants verifies the stash's structural invariants without
// mutating anything (no LRU, no VP-map refills):
//
//   - a dirty or writeback-armed chunk records a valid stash-map entry;
//   - each entry's #DirtyData equals the number of chunks accounted to
//     it (the Section 4.2 counter that gates entry invalidation);
//   - pendingReg lists agree with their present mask and every listed
//     stash word is in PendingReg state;
//   - every MSHR holds work (requested fills or waiters), is on the
//     purge list once its requests drained, and is no older than
//     ageBound (0 disables the age check);
//   - the writeback buffer conserves its entries.
func (s *Stash) CheckInvariants(now, ageBound sim.Cycle) error {
	counted := make(map[int]int)
	for c := range s.chunkMap {
		if !s.chunkDirty[c] && !s.chunkWB[c] {
			continue
		}
		idx := s.chunkMap[c]
		if idx < 0 {
			return fmt.Errorf("chunk %d dirty/wb with no stash-map entry", c)
		}
		if !s.maps[idx].valid {
			return fmt.Errorf("chunk %d accounted to invalid stash-map entry %d", c, idx)
		}
		counted[idx]++
	}
	for idx := range s.maps {
		if !s.maps[idx].valid {
			continue
		}
		if got, want := s.maps[idx].dirtyData, counted[idx]; got != want {
			return fmt.Errorf("stash-map entry %d: #DirtyData=%d but %d chunks accounted", idx, got, want)
		}
	}
	for line, pend := range s.pendingReg {
		for wi := 0; wi < memdata.WordsPerLine; wi++ {
			if (len(pend.lists[wi]) > 0) != pend.present.Has(wi) {
				return fmt.Errorf("pendingReg %#x word %d: list/present-bit mismatch", uint64(line), wi)
			}
			for _, soff := range pend.lists[wi] {
				if s.state[soff] != coh.PendingReg {
					return fmt.Errorf("pendingReg %#x: stash word %d in state %v, want PendingReg", uint64(line), soff, s.state[soff])
				}
			}
		}
	}
	for line, m := range s.mshrs {
		hasWork := m.requested != 0 || len(m.waiters) > 0
		for wi := range m.fills {
			hasWork = hasWork || len(m.fills[wi]) > 0
		}
		if !hasWork {
			return fmt.Errorf("mshr %#x: no fills, requests, or waiters", uint64(line))
		}
		if m.requested == 0 && !m.inPurge {
			return fmt.Errorf("mshr %#x: requests drained but not on the purge list", uint64(line))
		}
		if ageBound > 0 && m.requested != 0 && now-m.born > ageBound {
			return fmt.Errorf("mshr %#x: age %d exceeds bound %d (requested %016b, %d waiters)",
				uint64(line), now-m.born, ageBound, m.requested, len(m.waiters))
		}
	}
	if s.wbuf.Len() > 0 && s.outstanding == 0 {
		return fmt.Errorf("writeback buffer holds %d lines with nothing outstanding", s.wbuf.Len())
	}
	return s.wbuf.CheckInvariants()
}

// CheckQuiescent verifies the stash has fully drained and conserved
// its pooled objects. It runs at kernel/phase boundaries.
func (s *Stash) CheckQuiescent() error {
	if s.outstanding != 0 {
		return fmt.Errorf("%d transactions still outstanding", s.outstanding)
	}
	if n := len(s.mshrs); n != 0 {
		return fmt.Errorf("%d mshrs still live", n)
	}
	if n := len(s.pendingReg); n != 0 {
		return fmt.Errorf("%d registrations still pending", n)
	}
	if n := s.wbuf.Len(); n != 0 {
		return fmt.Errorf("writeback buffer still holds %d lines", n)
	}
	if s.waitersOut != 0 || s.plansOut != 0 || s.valsOut != 0 {
		return fmt.Errorf("pooled objects leaked: waiters=%d plans=%d vals=%d",
			s.waitersOut, s.plansOut, s.valsOut)
	}
	return nil
}

// PoolCounters reports the pooled objects currently checked out
// (waiters, fill plans, value buffers), for conservation tests.
func (s *Stash) PoolCounters() (waiters, plans, vals int) {
	return s.waitersOut, s.plansOut, s.valsOut
}

// OwnsPA locates the stash word backing physical address pa through
// stash-map entry mapIdx without mutating any translation state.
// found is false when the address cannot be located (invalid entry,
// RTLB reverse-translation not resident, or address outside the
// mapping) — callers performing cross-structure audits must treat
// that as inconclusive, not as a violation; owned reports whether the
// located word is held in an owned state.
func (s *Stash) OwnsPA(pa memdata.PAddr, mapIdx int) (found, owned bool) {
	if mapIdx < 0 || mapIdx >= len(s.maps) || !s.maps[mapIdx].valid {
		return false, false
	}
	va, ok := s.vp.reversePeek(pa)
	if !ok {
		return false, false
	}
	soff, ok := s.maps[mapIdx].virtToStash(va)
	if !ok {
		return false, false
	}
	return true, s.state[soff].Owned()
}

// MapEntryInfo reports a stash-map entry's liveness and #DirtyData, for
// tests and introspection.
func (s *Stash) MapEntryInfo(idx int) (valid bool, dirtyData int) {
	return s.maps[idx].valid, s.maps[idx].dirtyData
}
