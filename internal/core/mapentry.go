// Package core implements the stash, the paper's primary contribution:
// an SRAM organization that is directly addressed and compactly stored
// like a scratchpad, yet globally addressable and visible like a cache.
//
// The hardware components follow Figure 3 of the paper:
//
//   - stash storage: data array plus per-word coherence state and
//     per-chunk (64 B) dirty/writeback bits and stash-map index;
//   - map index table: a small per-thread-block table translating the
//     map slot carried by stash instructions into a stash-map entry;
//   - stash-map: a 64-entry circular buffer of stash-to-global mappings
//     with precomputed translation factors and a #DirtyData counter;
//   - VP-map: TLB and RTLB entries with back-pointers to the last
//     stash-map entry requiring each translation.
package core

import (
	"fmt"

	"stash/internal/memdata"
)

// MapParams is the software-visible argument list of the AddMap
// intrinsic (paper Section 3.1, Figure 2):
//
//	AddMap(stashBase, globalBase, fieldSize, objectSize,
//	       rowSize, strideSize, numStrides, isCoherent)
//
// It maps a 1D or 2D (possibly strided) tile of a global array-of-
// structures field onto a dense range of stash words.
type MapParams struct {
	StashBase   int           // first stash word of the allocation
	GlobalBase  memdata.VAddr // virtual address of the field in the first object
	FieldBytes  int           // bytes of the mapped field (= object size for scalar arrays)
	ObjectBytes int           // bytes of one object in the AoS
	RowElems    int           // objects per row of the tile ("rowSize")
	StrideBytes int           // bytes between consecutive tile rows ("strideSize")
	NumRows     int           // rows in the tile ("numStrides")
	Coherent    bool          // Mapped Coherent vs Mapped Non-coherent (Section 3.3)
}

// Validate reports whether the parameters describe a well-formed tile.
func (m MapParams) Validate() error {
	switch {
	case m.FieldBytes <= 0 || m.FieldBytes%memdata.WordBytes != 0:
		return fmt.Errorf("core: field size %d must be a positive word multiple", m.FieldBytes)
	case m.ObjectBytes < m.FieldBytes:
		return fmt.Errorf("core: object size %d smaller than field size %d", m.ObjectBytes, m.FieldBytes)
	case m.RowElems <= 0 || m.NumRows <= 0:
		return fmt.Errorf("core: empty tile %dx%d", m.NumRows, m.RowElems)
	case m.NumRows > 1 && m.StrideBytes < m.RowElems*m.ObjectBytes:
		return fmt.Errorf("core: stride %d overlaps rows of %d objects", m.StrideBytes, m.RowElems)
	case m.StashBase < 0:
		return fmt.Errorf("core: negative stash base %d", m.StashBase)
	case m.GlobalBase%memdata.WordBytes != 0 || m.ObjectBytes%memdata.WordBytes != 0:
		return fmt.Errorf("core: global base and object size must be word aligned")
	}
	return nil
}

// Words returns the number of stash words the mapping occupies.
func (m MapParams) Words() int {
	return m.NumRows * m.RowElems * (m.FieldBytes / memdata.WordBytes)
}

// VirtAddrOf translates a relative word index (0..Words()) of the tile
// into its virtual address. This is the forward half of the stash-map
// translation; the DMA engine reuses it to walk the same tiles.
func (m MapParams) VirtAddrOf(i int) memdata.VAddr {
	fieldWords := m.FieldBytes / memdata.WordBytes
	if i < 0 || i >= m.Words() {
		panic(fmt.Sprintf("core: tile word %d outside [0,%d)", i, m.Words()))
	}
	elem := i / fieldWords
	w := i % fieldWords
	row := elem / m.RowElems
	col := elem % m.RowElems
	return m.GlobalBase +
		memdata.VAddr(row*m.StrideBytes) +
		memdata.VAddr(col*m.ObjectBytes) +
		memdata.VAddr(w*memdata.WordBytes)
}

// TileWordOf is the reverse translation: the relative word index
// holding virtual address va, or ok=false when va is outside the tile.
func (m MapParams) TileWordOf(va memdata.VAddr) (int, bool) {
	if va < m.GlobalBase {
		return 0, false
	}
	fieldWords := m.FieldBytes / memdata.WordBytes
	d := int(va - m.GlobalBase)
	row, rem := 0, d
	if m.NumRows > 1 {
		row = d / m.StrideBytes
		rem = d % m.StrideBytes
	}
	if row >= m.NumRows {
		return 0, false
	}
	col := rem / m.ObjectBytes
	inObj := rem % m.ObjectBytes
	if col >= m.RowElems || inObj >= m.FieldBytes {
		return 0, false
	}
	return (row*m.RowElems+col)*fieldWords + inObj/memdata.WordBytes, true
}

// mapEntry is one stash-map entry. The translation factors are
// precomputed at AddMap time; a miss then needs only the six arithmetic
// operations the paper cites (Section 4.1.3).
type mapEntry struct {
	MapParams
	valid      bool
	active     bool // a running thread block still uses the entry
	fieldWords int
	dirtyData  int // #DirtyData: dirty chunks not yet written back
	reuseOf    int // stash-map index of a replicated older mapping, or -1
	generation uint64
}

// stashToVirt translates a stash word offset (absolute, in words) into
// the virtual address it is mapped to.
func (e *mapEntry) stashToVirt(offset int) memdata.VAddr {
	off := offset - e.StashBase
	if off < 0 || off >= e.Words() {
		panic(fmt.Sprintf("core: stash offset %d outside mapping [%d,%d)",
			offset, e.StashBase, e.StashBase+e.Words()))
	}
	return e.MapParams.VirtAddrOf(off)
}

// virtToStash is the reverse translation used for remote requests: it
// returns the absolute stash word offset holding virtual address va,
// or ok=false when va is not part of the mapped tile (e.g. a different
// field of the same object).
func (e *mapEntry) virtToStash(va memdata.VAddr) (int, bool) {
	i, ok := e.MapParams.TileWordOf(va)
	if !ok {
		return 0, false
	}
	return e.StashBase + i, true
}

// sameTile reports whether two mappings describe the identical global
// tile (the replication-detection comparison of Section 4.5).
func (m MapParams) sameTile(o MapParams) bool {
	return m.GlobalBase == o.GlobalBase &&
		m.FieldBytes == o.FieldBytes &&
		m.ObjectBytes == o.ObjectBytes &&
		m.RowElems == o.RowElems &&
		m.StrideBytes == o.StrideBytes &&
		m.NumRows == o.NumRows
}

// pages returns the distinct virtual pages the mapping touches, in
// ascending order; this is what the VP-map must hold.
func (e *mapEntry) pages() []memdata.VAddr {
	seen := make(map[memdata.VAddr]bool)
	var out []memdata.VAddr
	total := e.Words()
	for off := 0; off < total; off += 1 {
		p := e.stashToVirt(e.StashBase+off) &^ 4095
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
