package core

import (
	"testing"
	"testing/quick"

	"stash/internal/memdata"
)

func linearMap(stashBase int, global memdata.VAddr, n int) MapParams {
	return MapParams{
		StashBase:   stashBase,
		GlobalBase:  global,
		FieldBytes:  4,
		ObjectBytes: 4,
		RowElems:    n,
		NumRows:     1,
		Coherent:    true,
	}
}

func aosFieldMap(stashBase int, global memdata.VAddr, objBytes, n int) MapParams {
	return MapParams{
		StashBase:   stashBase,
		GlobalBase:  global,
		FieldBytes:  4,
		ObjectBytes: objBytes,
		RowElems:    n,
		NumRows:     1,
		Coherent:    true,
	}
}

func tileMap(stashBase int, global memdata.VAddr, fieldB, objB, rowElems, strideB, rows int) MapParams {
	return MapParams{
		StashBase:   stashBase,
		GlobalBase:  global,
		FieldBytes:  fieldB,
		ObjectBytes: objB,
		RowElems:    rowElems,
		StrideBytes: strideB,
		NumRows:     rows,
		Coherent:    true,
	}
}

func entryOf(m MapParams) *mapEntry {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return &mapEntry{MapParams: m, valid: true, fieldWords: m.FieldBytes / memdata.WordBytes, reuseOf: -1}
}

func TestValidate(t *testing.T) {
	if err := linearMap(0, 0x1000, 16).Validate(); err != nil {
		t.Fatalf("valid linear map rejected: %v", err)
	}
	bad := []MapParams{
		{StashBase: 0, GlobalBase: 0, FieldBytes: 0, ObjectBytes: 4, RowElems: 1, NumRows: 1},
		{StashBase: 0, GlobalBase: 0, FieldBytes: 3, ObjectBytes: 4, RowElems: 1, NumRows: 1},
		{StashBase: 0, GlobalBase: 0, FieldBytes: 8, ObjectBytes: 4, RowElems: 1, NumRows: 1},
		{StashBase: 0, GlobalBase: 0, FieldBytes: 4, ObjectBytes: 4, RowElems: 0, NumRows: 1},
		{StashBase: -1, GlobalBase: 0, FieldBytes: 4, ObjectBytes: 4, RowElems: 1, NumRows: 1},
		{StashBase: 0, GlobalBase: 0, FieldBytes: 4, ObjectBytes: 8, RowElems: 4, NumRows: 2, StrideBytes: 16},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid map accepted: %+v", i, m)
		}
	}
}

func TestLinearTranslation(t *testing.T) {
	e := entryOf(linearMap(32, 0x1000, 8))
	for i := 0; i < 8; i++ {
		want := memdata.VAddr(0x1000 + 4*i)
		if got := e.stashToVirt(32 + i); got != want {
			t.Fatalf("stashToVirt(%d) = %#x, want %#x", 32+i, uint64(got), uint64(want))
		}
		soff, ok := e.virtToStash(want)
		if !ok || soff != 32+i {
			t.Fatalf("virtToStash(%#x) = (%d,%v), want (%d,true)", uint64(want), soff, ok, 32+i)
		}
	}
}

func TestAoSFieldTranslation(t *testing.T) {
	// One 4-byte field of a 64-byte object: field i lives at 0x2000+64i.
	e := entryOf(aosFieldMap(0, 0x2000, 64, 10))
	for i := 0; i < 10; i++ {
		want := memdata.VAddr(0x2000 + 64*i)
		if got := e.stashToVirt(i); got != want {
			t.Fatalf("stashToVirt(%d) = %#x, want %#x", i, uint64(got), uint64(want))
		}
	}
	// Other fields of the objects are NOT mapped.
	if _, ok := e.virtToStash(0x2004); ok {
		t.Fatal("non-field word reported as mapped")
	}
	if _, ok := e.virtToStash(0x2000 + 64*10); ok {
		t.Fatal("word past the tile reported as mapped")
	}
}

func Test2DTileTranslation(t *testing.T) {
	// Figure 2: a 2D AoS tile, rows of 4 objects (16 B each, 8 B field),
	// rows separated by 256 B, 3 rows.
	e := entryOf(tileMap(64, 0x8000, 8, 16, 4, 256, 3))
	fieldWords := 2
	for row := 0; row < 3; row++ {
		for col := 0; col < 4; col++ {
			for w := 0; w < fieldWords; w++ {
				soff := 64 + (row*4+col)*fieldWords + w
				want := memdata.VAddr(0x8000 + row*256 + col*16 + w*4)
				if got := e.stashToVirt(soff); got != want {
					t.Fatalf("stashToVirt(%d) = %#x, want %#x", soff, uint64(got), uint64(want))
				}
				back, ok := e.virtToStash(want)
				if !ok || back != soff {
					t.Fatalf("virtToStash(%#x) = (%d,%v), want (%d,true)", uint64(want), back, ok, soff)
				}
			}
		}
	}
	if e.Words() != 3*4*2 {
		t.Fatalf("Words() = %d, want 24", e.Words())
	}
}

func TestOutOfRangeStashOffsetPanics(t *testing.T) {
	e := entryOf(linearMap(0, 0x1000, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range stashToVirt did not panic")
		}
	}()
	e.stashToVirt(4)
}

func TestSameTile(t *testing.T) {
	a := tileMap(0, 0x8000, 8, 16, 4, 256, 3)
	b := a
	b.StashBase = 512 // allocation differs, tile identical
	if !a.sameTile(b) {
		t.Fatal("identical tiles with different stash bases must match")
	}
	c := a
	c.GlobalBase = 0x9000
	if a.sameTile(c) {
		t.Fatal("different global bases must not match")
	}
}

func TestPagesCoverage(t *testing.T) {
	// 2 rows spaced one page apart: mapping spans exactly 2 pages.
	e := entryOf(tileMap(0, 0x10000, 4, 4, 8, 4096, 2))
	pages := e.pages()
	if len(pages) != 2 || pages[0] != 0x10000 || pages[1] != 0x11000 {
		t.Fatalf("pages = %#v", pages)
	}
}

// Property: stashToVirt and virtToStash are exact inverses over the
// whole tile, for arbitrary well-formed tiles.
func TestTranslationInverseProperty(t *testing.T) {
	f := func(fw, objW, rowE, rows, gapW uint8) bool {
		fieldWords := int(fw)%4 + 1
		objWords := fieldWords + int(objW)%8
		rowElems := int(rowE)%16 + 1
		numRows := int(rows)%4 + 1
		stride := rowElems*objWords*4 + int(gapW)%64*4
		m := MapParams{
			StashBase:   0,
			GlobalBase:  0x40000,
			FieldBytes:  fieldWords * 4,
			ObjectBytes: objWords * 4,
			RowElems:    rowElems,
			StrideBytes: stride,
			NumRows:     numRows,
			Coherent:    true,
		}
		if err := m.Validate(); err != nil {
			return false
		}
		e := entryOf(m)
		for off := 0; off < e.Words(); off++ {
			va := e.stashToVirt(off)
			back, ok := e.virtToStash(va)
			if !ok || back != off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
