package cellcache

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"stash/internal/cluster"
)

// RemoteConfig tunes a Remote tier (the remote+<engine>:// spec
// wrapper). Peers is required; everything else has defaults.
type RemoteConfig struct {
	// Peers are the base URLs of every cluster shard, including this
	// one; Self (when set) is removed from the candidate set so a shard
	// never asks itself over the network.
	Peers []string
	Self  string
	// Timeout bounds each peer fetch. Zero selects 500ms — a peer hit
	// must be decisively cheaper than simulating, or not happen at all.
	Timeout time.Duration
	// BreakerThreshold is the consecutive fetch failures that open one
	// peer's circuit breaker (fetches skip that peer until a half-open
	// probe succeeds). Zero selects 3; negative disables the breakers.
	BreakerThreshold int
	// BreakerBackoff is the initial open window before a half-open
	// probe, doubled per consecutive trip. Zero selects 1s.
	BreakerBackoff time.Duration
	// Client overrides http.DefaultClient (tests).
	Client *http.Client
}

// Remote is an Engine wrapper implementing the cluster's peer-fill
// tier: a Get that misses the wrapped engine asks the ring-nearest
// peers for the cell's frame over GET /v1/cellframe before reporting a
// miss, so a shard whose routing just changed (membership change,
// failover, hedge) warms from the peer that already paid for the
// simulation instead of re-running it. Fetched frames are adopted into
// the wrapped engine, so each cell crosses the network at most once.
//
// Failure is never louder than a miss: a dead, slow, or erroring peer
// feeds its per-peer circuit breaker and the lookup degrades to local
// simulation. This is the DiStash blueprint's tiered multi-stash store
// — the paper's stash with one more, network-shaped, tier behind it.
type Remote struct {
	inner   Engine
	ring    *cluster.Ring
	client  *http.Client
	timeout time.Duration

	breakers map[string]*breaker // per-peer; nil when disabled

	fills  atomic.Uint64 // peer fetches that produced a valid frame
	misses atomic.Uint64 // lookups no peer had (local simulation follows)
	errs   atomic.Uint64 // peer fetches that failed (timeout, 5xx, bad frame)
}

// NewRemote wraps inner with the peer-fill tier.
func NewRemote(inner Engine, cfg RemoteConfig) (*Remote, error) {
	self := strings.TrimSuffix(cfg.Self, "/")
	var peers []string
	for _, p := range cfg.Peers {
		if p = strings.TrimSuffix(strings.TrimSpace(p), "/"); p != "" && p != self {
			peers = append(peers, p)
		}
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cellcache: remote tier needs at least one peer besides self")
	}
	ring, err := cluster.NewRing(peers, 0)
	if err != nil {
		return nil, fmt.Errorf("cellcache: remote tier: %w", err)
	}
	r := &Remote{
		inner:   inner,
		ring:    ring,
		client:  cfg.Client,
		timeout: cfg.Timeout,
	}
	if r.client == nil {
		r.client = http.DefaultClient
	}
	if r.timeout <= 0 {
		r.timeout = 500 * time.Millisecond
	}
	threshold := cfg.BreakerThreshold
	if threshold == 0 {
		threshold = 3
	}
	if threshold > 0 {
		r.breakers = make(map[string]*breaker, len(peers))
		for _, p := range peers {
			r.breakers[p] = newBreaker(threshold, cfg.BreakerBackoff, time.Now)
		}
	}
	return r, nil
}

// Local returns the wrapped engine — the path that never touches the
// network. serve's /v1/cellframe handler reads through it so peer
// peeks can never cascade into peer-of-peer fetches.
func (r *Remote) Local() Engine { return r.inner }

// ringKey maps an engine key to the routing key the coordinator used:
// the bare fingerprint, with any tenant-namespace prefix stripped.
// Peer selection must agree with cell routing or fills would ask the
// wrong shard.
func ringKey(key string) string {
	if i := strings.LastIndexByte(key, ':'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// Get reads the wrapped engine first, then asks up to two ring-nearest
// peers (the key's likely owner and its successor) for the frame. A
// fetched frame is validated and adopted locally before being
// returned; every failure path degrades to (nil, false) — a miss the
// Cache front answers by simulating locally.
func (r *Remote) Get(key string) ([]byte, bool) {
	if frame, ok := r.inner.Get(key); ok {
		return frame, true
	}
	seq := r.ring.Sequence(ringKey(key))
	if len(seq) > 2 {
		seq = seq[:2]
	}
	for _, peer := range seq {
		br := r.breakers[peer]
		if br != nil && !br.allow() {
			continue
		}
		frame, st := r.fetch(peer, key)
		if br != nil {
			if st == fetchErr {
				br.failure()
			} else {
				br.success()
			}
		}
		if st == fetchHit {
			r.fills.Add(1)
			r.inner.Put(key, frame) // best effort: adoption failing must not fail the hit
			return frame, true
		}
	}
	r.misses.Add(1)
	return nil, false
}

const (
	fetchHit = iota
	fetchMiss
	fetchErr
)

// fetch runs one GET /v1/cellframe against peer. 200 with a decodable
// frame is a hit, 404 a clean miss; everything else (including a frame
// that fails validation) is an error that feeds the peer's breaker.
func (r *Remote) fetch(peer, key string) ([]byte, int) {
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", peer+"/v1/cellframe?key="+url.QueryEscape(key), nil)
	if err != nil {
		r.errs.Add(1)
		return nil, fetchErr
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.errs.Add(1)
		return nil, fetchErr
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, fetchMiss
	default:
		r.errs.Add(1)
		return nil, fetchErr
	}
	frame, err := io.ReadAll(io.LimitReader(resp.Body, int64(maxValLen)+frameHdr+1))
	if err != nil {
		r.errs.Add(1)
		return nil, fetchErr
	}
	// Validate before adopting: a truncated or corrupt transfer must
	// not plant an undecodable frame in the local engine.
	if _, _, _, err := decodeFrame(frame); err != nil {
		r.errs.Add(1)
		return nil, fetchErr
	}
	return frame, fetchHit
}

// Put, Delete, Len, Keys, and Close delegate to the wrapped engine:
// the remote tier is read-side only — writes stay local, and the
// coordinator's fingerprint routing is what keeps them where reads
// will look.
func (r *Remote) Put(key string, val []byte) error { return r.inner.Put(key, val) }
func (r *Remote) Delete(key string)                { r.inner.Delete(key) }
func (r *Remote) Len() int                         { return r.inner.Len() }
func (r *Remote) Keys(fn func(string) bool)        { r.inner.Keys(fn) }
func (r *Remote) Close() error                     { return r.inner.Close() }

// snapshot returns the fill/miss/error counters.
func (r *Remote) snapshot() (fills, misses, errs uint64) {
	return r.fills.Load(), r.misses.Load(), r.errs.Load()
}
