package cellcache

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// peerServer is a fake shard serving GET /v1/cellframe from a frame
// map, counting requests.
func peerServer(t *testing.T, frames map[string][]byte) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.URL.Path != "/v1/cellframe" {
			t.Errorf("peer got path %q", r.URL.Path)
		}
		frame, ok := frames[r.URL.Query().Get("key")]
		if !ok {
			http.Error(w, "no such cell", http.StatusNotFound)
			return
		}
		w.Write(frame)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func mustFrame(t *testing.T, payload string) []byte {
	t.Helper()
	frame, err := encodeFrame(CodecRaw, 0, []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestRemotePeerFill(t *testing.T) {
	key := "t-aa:deadbeef"
	srv, hits := peerServer(t, map[string][]byte{key: mustFrame(t, "cell result")})
	r, err := NewRemote(NewMemory(0, 0), RemoteConfig{Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	frame, ok := r.Get(key)
	if !ok {
		t.Fatal("peer fill missed")
	}
	payload, _, _, err := decodeFrame(frame)
	if err != nil || string(payload) != "cell result" {
		t.Fatalf("filled frame decodes to %q, %v", payload, err)
	}
	if f, m, e := r.snapshot(); f != 1 || m != 0 || e != 0 {
		t.Fatalf("snapshot = %d fills, %d misses, %d errs; want 1,0,0", f, m, e)
	}
	// The frame was adopted: the second Get is local, no network.
	before := hits.Load()
	if _, ok := r.Get(key); !ok {
		t.Fatal("adopted frame missing from inner engine")
	}
	if hits.Load() != before {
		t.Fatalf("second Get hit the peer (%d -> %d requests)", before, hits.Load())
	}
}

func TestRemoteMissDegrades(t *testing.T) {
	srv, _ := peerServer(t, nil)
	r, err := NewRemote(NewMemory(0, 0), RemoteConfig{Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("miss everywhere reported as hit")
	}
	if f, m, e := r.snapshot(); f != 0 || m != 1 || e != 0 {
		t.Fatalf("snapshot = %d,%d,%d; want 0,1,0 (404 is a clean miss, not an error)", f, m, e)
	}
}

// TestRemoteBadFrameRejected pins that a corrupt peer response is an
// error, not a hit: nothing undecodable may be adopted locally.
func TestRemoteBadFrameRejected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not a frame"))
	}))
	defer srv.Close()
	inner := NewMemory(0, 0)
	r, err := NewRemote(inner, RemoteConfig{Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("k"); ok {
		t.Fatal("corrupt peer frame served as a hit")
	}
	if _, _, e := r.snapshot(); e == 0 {
		t.Fatal("corrupt frame not counted as an error")
	}
	if inner.Len() != 0 {
		t.Fatal("corrupt frame adopted into the local engine")
	}
}

// TestRemoteDeadPeerBreaker pins the degradation path: a peer that
// errors trips its breaker after the threshold and is then skipped —
// lookups keep answering (as misses) without hammering the dead peer.
func TestRemoteDeadPeerBreaker(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "sick", http.StatusInternalServerError)
	}))
	defer srv.Close()
	r, err := NewRemote(NewMemory(0, 0), RemoteConfig{
		Peers:            []string{srv.URL},
		BreakerThreshold: 2,
		BreakerBackoff:   time.Hour, // no half-open probe during the test
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, ok := r.Get(fmt.Sprintf("key-%d", i)); ok {
			t.Fatal("dead peer produced a hit")
		}
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("dead peer was hit %d times, want exactly the 2 breaker-threshold probes", got)
	}
	if f, m, e := r.snapshot(); f != 0 || m != 6 || e != 2 {
		t.Fatalf("snapshot = %d,%d,%d; want 0 fills, 6 misses, 2 errs", f, m, e)
	}
}

func TestRemoteNeedsAPeer(t *testing.T) {
	if _, err := NewRemote(NewMemory(0, 0), RemoteConfig{}); err == nil {
		t.Error("no peers accepted")
	}
	if _, err := NewRemote(NewMemory(0, 0), RemoteConfig{
		Peers: []string{"http://me:1/"}, Self: "http://me:1",
	}); err == nil {
		t.Error("self-only peer list accepted")
	}
}

// TestRemoteCachePeerFill drives the whole stack through the spec
// grammar: a remote+memory cache whose Get misses locally fills from
// the peer with zero local computation, promotes into the memory tier,
// and counts the fill in Stats.
func TestRemoteCachePeerFill(t *testing.T) {
	key := "cafef00d"
	srv, hits := peerServer(t, map[string][]byte{key: mustFrame(t, "peer cell")})
	c, err := Open("remote+memory://?peers=" + srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	val, ok := c.Get("", key)
	if !ok || string(val) != "peer cell" {
		t.Fatalf("Get = %q, %v; want peer fill", val, ok)
	}
	st := c.Stats()
	if st.RemoteFills != 1 || st.StoreHits != 1 {
		t.Fatalf("stats = %+v, want RemoteFills=1 StoreHits=1", st)
	}
	// Promotion: the repeat hit is a memory-tier hit, no network.
	before := hits.Load()
	if _, ok := c.Get("", key); !ok {
		t.Fatal("promoted entry missing")
	}
	if hits.Load() != before {
		t.Fatal("promoted entry re-fetched from the peer")
	}
	if st := c.Stats(); st.MemHits != 1 {
		t.Fatalf("stats = %+v, want MemHits=1 after promotion", st)
	}

	// A key no peer has degrades to an ordinary miss, and Do simulates
	// locally.
	ran := false
	val, cached, err := c.Do("", "0000aaaa", func() ([]byte, error) { ran = true; return []byte("local"), nil })
	if err != nil || cached || !ran || string(val) != "local" {
		t.Fatalf("Do after remote miss = %q cached=%v ran=%v err=%v", val, cached, ran, err)
	}
	if st := c.Stats(); st.RemoteMisses == 0 {
		t.Fatalf("stats = %+v, want RemoteMisses counted", st)
	}
}

// TestPeekFrame pins the /v1/cellframe read side: frames come back
// verbatim from local tiers only — no stats churn, no peer cascade.
func TestPeekFrame(t *testing.T) {
	srv, hits := peerServer(t, nil)
	c, err := Open("remote+memory://?peers=" + srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("t-aa", "feedface", []byte("mine")); err != nil {
		t.Fatal(err)
	}
	frame, ok := c.PeekFrame("t-aa:feedface")
	if !ok {
		t.Fatal("PeekFrame missed a present entry")
	}
	payload, _, _, err := decodeFrame(frame)
	if err != nil || string(payload) != "mine" {
		t.Fatalf("peeked frame decodes to %q, %v", payload, err)
	}
	if _, ok := c.PeekFrame("t-aa:absent"); ok {
		t.Fatal("PeekFrame hit an absent entry")
	}
	if hits.Load() != 0 {
		t.Fatalf("PeekFrame touched the peer %d times; peeks must never cascade", hits.Load())
	}
	hitsBefore, missBefore := c.Stats().Hits, c.Stats().Misses
	c.PeekFrame("t-aa:feedface")
	if st := c.Stats(); st.Hits != hitsBefore || st.Misses != missBefore {
		t.Fatal("PeekFrame moved the hit/miss counters")
	}
}

func TestParseSpecRemote(t *testing.T) {
	sp, err := ParseSpec("remote+memory://?peers=http://a:1,http://b:1&self=http://a:1&remote_timeout=250ms&remote_breaker=5&remote_backoff=2s")
	if err != nil {
		t.Fatal(err)
	}
	want := &RemoteConfig{
		Peers: []string{"http://a:1", "http://b:1"}, Self: "http://a:1",
		Timeout: 250 * time.Millisecond, BreakerThreshold: 5, BreakerBackoff: 2 * time.Second,
	}
	if sp.Scheme != "memory" || !reflect.DeepEqual(sp.Remote, want) {
		t.Fatalf("ParseSpec = %+v (remote %+v), want scheme memory, remote %+v", sp, sp.Remote, want)
	}

	sp, err = ParseSpec("remote+faulty+pairtree:///d?peers=http://a:1&fault_seed=3&remote_breaker=0")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Scheme != "pairtree" || sp.Fault == nil || sp.Fault.Seed != 3 ||
		sp.Remote == nil || sp.Remote.BreakerThreshold != -1 {
		t.Fatalf("stacked prefixes parsed as %+v (fault %+v, remote %+v)", sp, sp.Fault, sp.Remote)
	}

	for _, in := range []string{
		"remote+memory://",                             // no peers
		"remote+memory://?peers=",                      // empty peers
		"memory://?peers=http://a:1",                   // peers without remote+
		"memory://?self=http://a:1",                    // ditto
		"remote+memory://?peers=x&remote_timeout=fast", // bad duration
		"remote+memory://?peers=x&remote_breaker=-1",   // negative threshold
		"remote+memory://?peers=x&remote_backoff=0s",   // non-positive backoff
		"faulty+remote+memory://?peers=x",              // prefixes in the wrong order
	} {
		if sp, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted: %+v", in, sp)
		}
	}
}

func TestSpecRemoteRoundTrip(t *testing.T) {
	in := "remote+memory://?peers=http://a:1,http://b:1&self=http://a:1&remote_timeout=250ms&remote_breaker=5&remote_backoff=2s"
	sp, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := ParseSpec(sp.String())
	if err != nil {
		t.Fatalf("respec %q -> %q: %v", in, sp.String(), err)
	}
	if !reflect.DeepEqual(sp, sp2) {
		t.Errorf("remote spec round trip drifted: %+v vs %+v", sp, sp2)
	}
}
