package cellcache

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Spec is a parsed cache engine specification. The textual grammar is
// a URL whose scheme selects the engine and whose query tunes the
// orthogonal axes (front-tier bounds, codec, TTL, breaker, faults):
//
//	memory://?entries=4096&bytes=256MiB
//	log:///var/lib/stashd?compress=gzip
//	pairtree:///var/lib/stashd?compress=gzip&ttl=24h&entries=1024
//	faulty+pairtree:///tmp/chaos?fault_seed=7&fault_put=0.2&fault_torn=0.1
//	remote+memory://?peers=http://a:8080,http://b:8080&self=http://a:8080
//
// For the persistent engines, entries/bytes bound the in-memory front
// tier composed in front of the engine (entries=-1 disables it);
// compress selects the payload codec (none, gzip); ttl arms expiry
// with extend-on-read; breaker/breaker_backoff tune the store tier's
// circuit breaker (breaker=0 disables it). A "faulty+" scheme prefix
// wraps the engine in deterministic storage fault injection (see
// Faulty) tuned by the fault_* parameters — the chaos harness behind
// degraded-mode testing. A "remote+" scheme prefix wraps the engine in
// the cluster peer-fill tier (see Remote) tuned by peers= (required),
// self=, remote_timeout=, remote_breaker= (0 disables the per-peer
// breakers), and remote_backoff=; prefixes compose as
// remote+faulty+<engine>. Unknown query parameters are an error — a
// typoed knob must not silently select defaults.
type Spec struct {
	// Scheme is the engine: "memory", "log", or "pairtree".
	Scheme string
	// Path roots a persistent engine's files. Empty for memory.
	Path string
	// Entries and Bytes bound the in-memory tier (the whole cache for
	// memory, the front tier otherwise). Zero selects the defaults
	// (4096 entries, 256 MiB); Entries < 0 disables the tier.
	Entries int
	Bytes   int64
	// Codec is the stored-payload compression identity (CodecRaw,
	// CodecGzip). Frames are self-describing, so changing the codec
	// never invalidates existing entries.
	Codec byte
	// TTL, when positive, expires entries that go unread for TTL;
	// every read extends the lease (see Cache).
	TTL time.Duration
	// BreakerThreshold is the consecutive store-write failures that
	// trip the circuit breaker: 0 selects the default (5), negative
	// disables the breaker. Ignored without a store engine.
	BreakerThreshold int
	// BreakerBackoff is the initial open window before a half-open
	// probe (doubled per consecutive trip, jittered). Zero selects the
	// default (1s).
	BreakerBackoff time.Duration
	// Fault, when non-nil, wraps the store engine in a Faulty with
	// this profile ("faulty+" schemes).
	Fault *FaultProfile
	// Remote, when non-nil, wraps the store engine in the cluster
	// peer-fill tier ("remote+" schemes).
	Remote *RemoteConfig
}

// ParseSpec parses the engine-spec URL grammar.
func ParseSpec(raw string) (Spec, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return Spec{}, fmt.Errorf("cellcache: invalid cache spec %q: %w", raw, err)
	}
	sp := Spec{Scheme: u.Scheme, Path: u.Host + u.Path}
	if u.Opaque != "" {
		sp.Path = u.Opaque
	}
	if inner, ok := strings.CutPrefix(sp.Scheme, "remote+"); ok {
		sp.Scheme = inner
		sp.Remote = &RemoteConfig{}
	}
	if inner, ok := strings.CutPrefix(sp.Scheme, "faulty+"); ok {
		sp.Scheme = inner
		sp.Fault = &FaultProfile{}
	}
	switch sp.Scheme {
	case "memory":
		if sp.Path != "" && sp.Path != "/" {
			return Spec{}, fmt.Errorf("cellcache: memory:// takes no path (got %q)", sp.Path)
		}
		sp.Path = ""
	case "log", "pairtree":
		sp.Path = strings.TrimSuffix(sp.Path, "/")
		if sp.Path == "" {
			return Spec{}, fmt.Errorf("cellcache: %s:// requires a directory path", sp.Scheme)
		}
	default:
		return Spec{}, fmt.Errorf("cellcache: unknown cache engine %q (want memory, log, or pairtree)", sp.Scheme)
	}
	q, err := url.ParseQuery(u.RawQuery)
	if err != nil {
		return Spec{}, fmt.Errorf("cellcache: invalid cache spec query %q: %w", u.RawQuery, err)
	}
	for key, vals := range q {
		v := vals[len(vals)-1]
		switch key {
		case "entries":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Spec{}, fmt.Errorf("cellcache: invalid entries %q: %w", v, err)
			}
			sp.Entries = n
		case "bytes":
			n, err := ParseSize(v)
			if err != nil {
				return Spec{}, fmt.Errorf("cellcache: invalid bytes %q: %w", v, err)
			}
			sp.Bytes = n
		case "compress":
			c, err := ParseCodec(v)
			if err != nil {
				return Spec{}, fmt.Errorf("cellcache: %w", err)
			}
			sp.Codec = c
		case "ttl":
			d, err := time.ParseDuration(v)
			if err != nil {
				return Spec{}, fmt.Errorf("cellcache: invalid ttl %q: %w", v, err)
			}
			if d < 0 {
				return Spec{}, fmt.Errorf("cellcache: negative ttl %v", d)
			}
			sp.TTL = d
		case "breaker":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Spec{}, fmt.Errorf("cellcache: invalid breaker threshold %q (want 0 to disable or a positive count)", v)
			}
			if n == 0 {
				sp.BreakerThreshold = -1 // explicit off
			} else {
				sp.BreakerThreshold = n
			}
		case "breaker_backoff":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return Spec{}, fmt.Errorf("cellcache: invalid breaker_backoff %q (want a positive duration)", v)
			}
			sp.BreakerBackoff = d
		case "fault_seed", "fault_put", "fault_get", "fault_torn",
			"fault_latency", "fault_down_first", "fault_down_every", "fault_down_for":
			if sp.Fault == nil {
				return Spec{}, fmt.Errorf("cellcache: %s requires a faulty+ engine scheme", key)
			}
			if err := parseFaultParam(sp.Fault, key, v); err != nil {
				return Spec{}, err
			}
		case "peers", "self", "remote_timeout", "remote_breaker", "remote_backoff":
			if sp.Remote == nil {
				return Spec{}, fmt.Errorf("cellcache: %s requires a remote+ engine scheme", key)
			}
			if err := parseRemoteParam(sp.Remote, key, v); err != nil {
				return Spec{}, err
			}
		default:
			return Spec{}, fmt.Errorf("cellcache: unknown cache spec parameter %q", key)
		}
	}
	if sp.Remote != nil && len(sp.Remote.Peers) == 0 {
		return Spec{}, fmt.Errorf("cellcache: remote+ requires peers= (comma-separated shard base URLs)")
	}
	return sp, nil
}

// parseRemoteParam sets one remote-tier knob on the config.
func parseRemoteParam(r *RemoteConfig, key, v string) error {
	switch key {
	case "peers":
		for _, p := range strings.Split(v, ",") {
			if p = strings.TrimSpace(p); p != "" {
				r.Peers = append(r.Peers, p)
			}
		}
		if len(r.Peers) == 0 {
			return fmt.Errorf("cellcache: peers= lists no shard URLs")
		}
	case "self":
		r.Self = v
	case "remote_timeout":
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return fmt.Errorf("cellcache: invalid remote_timeout %q (want a positive duration)", v)
		}
		r.Timeout = d
	case "remote_breaker":
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("cellcache: invalid remote_breaker %q (want 0 to disable or a positive count)", v)
		}
		if n == 0 {
			r.BreakerThreshold = -1 // explicit off
		} else {
			r.BreakerThreshold = n
		}
	case "remote_backoff":
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return fmt.Errorf("cellcache: invalid remote_backoff %q (want a positive duration)", v)
		}
		r.BreakerBackoff = d
	}
	return nil
}

// parseFaultParam sets one fault_* knob on the profile.
func parseFaultParam(p *FaultProfile, key, v string) error {
	switch key {
	case "fault_seed":
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("cellcache: invalid %s %q: %w", key, v, err)
		}
		p.Seed = n
	case "fault_put", "fault_get", "fault_torn":
		x, err := strconv.ParseFloat(v, 64)
		if err != nil || x < 0 || x > 1 {
			return fmt.Errorf("cellcache: invalid %s %q (want a probability in [0,1])", key, v)
		}
		switch key {
		case "fault_put":
			p.PutErr = x
		case "fault_get":
			p.GetErr = x
		case "fault_torn":
			p.Torn = x
		}
	case "fault_latency":
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return fmt.Errorf("cellcache: invalid %s %q (want a non-negative duration)", key, v)
		}
		p.Latency = d
	case "fault_down_first", "fault_down_every", "fault_down_for":
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("cellcache: invalid %s %q (want a non-negative count)", key, v)
		}
		switch key {
		case "fault_down_first":
			p.DownFirst = n
		case "fault_down_every":
			p.DownEvery = n
		case "fault_down_for":
			p.DownFor = n
		}
	}
	return nil
}

// String renders the spec back into the URL grammar (defaults
// omitted), suitable for logs.
func (sp Spec) String() string {
	var q []string
	if sp.Entries != 0 {
		q = append(q, "entries="+strconv.Itoa(sp.Entries))
	}
	if sp.Bytes != 0 {
		q = append(q, "bytes="+strconv.FormatInt(sp.Bytes, 10))
	}
	if sp.Codec != CodecRaw {
		q = append(q, "compress="+CodecName(sp.Codec))
	}
	if sp.TTL > 0 {
		q = append(q, "ttl="+sp.TTL.String())
	}
	switch {
	case sp.BreakerThreshold < 0:
		q = append(q, "breaker=0")
	case sp.BreakerThreshold > 0:
		q = append(q, "breaker="+strconv.Itoa(sp.BreakerThreshold))
	}
	if sp.BreakerBackoff > 0 {
		q = append(q, "breaker_backoff="+sp.BreakerBackoff.String())
	}
	scheme := sp.Scheme
	if sp.Remote != nil {
		r := sp.Remote
		q = append(q, "peers="+strings.Join(r.Peers, ","))
		if r.Self != "" {
			q = append(q, "self="+r.Self)
		}
		if r.Timeout > 0 {
			q = append(q, "remote_timeout="+r.Timeout.String())
		}
		switch {
		case r.BreakerThreshold < 0:
			q = append(q, "remote_breaker=0")
		case r.BreakerThreshold > 0:
			q = append(q, "remote_breaker="+strconv.Itoa(r.BreakerThreshold))
		}
		if r.BreakerBackoff > 0 {
			q = append(q, "remote_backoff="+r.BreakerBackoff.String())
		}
	}
	if sp.Fault != nil {
		scheme = "faulty+" + scheme
		p := sp.Fault
		if p.Seed != 0 {
			q = append(q, "fault_seed="+strconv.FormatUint(p.Seed, 10))
		}
		if p.PutErr > 0 {
			q = append(q, "fault_put="+strconv.FormatFloat(p.PutErr, 'g', -1, 64))
		}
		if p.GetErr > 0 {
			q = append(q, "fault_get="+strconv.FormatFloat(p.GetErr, 'g', -1, 64))
		}
		if p.Torn > 0 {
			q = append(q, "fault_torn="+strconv.FormatFloat(p.Torn, 'g', -1, 64))
		}
		if p.Latency > 0 {
			q = append(q, "fault_latency="+p.Latency.String())
		}
		if p.DownFirst > 0 {
			q = append(q, "fault_down_first="+strconv.Itoa(p.DownFirst))
		}
		if p.DownEvery > 0 {
			q = append(q, "fault_down_every="+strconv.Itoa(p.DownEvery))
		}
		if p.DownFor > 0 {
			q = append(q, "fault_down_for="+strconv.Itoa(p.DownFor))
		}
	}
	if sp.Remote != nil {
		scheme = "remote+" + scheme
	}
	s := scheme + "://" + sp.Path
	if len(q) > 0 {
		s += "?" + strings.Join(q, "&")
	}
	return s
}

// ParseSize parses a byte count with an optional binary-power suffix:
// "1024", "64KiB", "256MiB", "2GiB" (KB/MB/GB accepted as synonyms).
func ParseSize(s string) (int64, error) {
	mult := int64(1)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
	} {
		if strings.HasSuffix(s, suf.name) {
			s, mult = strings.TrimSuffix(s, suf.name), suf.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size")
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("size overflows int64")
	}
	return n * mult, nil
}

// Open parses an engine-spec URL and opens the cache it describes.
func Open(raw string) (*Cache, error) {
	sp, err := ParseSpec(raw)
	if err != nil {
		return nil, err
	}
	return sp.Open()
}

// Open builds the engine the spec names, composes the Cache front over
// it, and runs the startup TTL scan for persistent engines. A fault
// profile wraps the store engine in a Faulty; unless disabled, a store
// engine also gets the circuit breaker (default threshold, or the
// spec's breaker/breaker_backoff overrides).
func (sp Spec) Open() (*Cache, error) {
	c := newCache(sp.Codec, sp.TTL)
	if sp.Entries >= 0 {
		c.mem = NewMemory(sp.Entries, sp.Bytes)
	}
	var err error
	switch sp.Scheme {
	case "memory":
		// The memory tier is the whole cache — unless a wrapper needs
		// the Engine seam: a faulty or remote memory cache runs a second
		// Memory engine as the store tier behind the wrapper (chaos
		// tests with no disk; diskless cluster shards).
		if sp.Fault != nil || sp.Remote != nil {
			c.store = NewMemory(0, 0)
		}
	case "log":
		c.store, err = OpenLog(sp.Path)
	case "pairtree":
		c.store, err = OpenPairtree(sp.Path)
	default:
		err = fmt.Errorf("unknown cache engine %q", sp.Scheme)
	}
	if err != nil {
		return nil, fmt.Errorf("cellcache: opening %s engine: %w", sp.Scheme, err)
	}
	if c.store != nil && sp.Fault != nil {
		c.store = NewFaulty(c.store, *sp.Fault)
	}
	if sp.Remote != nil {
		// Remote wraps outermost so peer fills adopt through the fault
		// injector (chaos realism) and Stats can find it by type.
		r, err := NewRemote(c.store, *sp.Remote)
		if err != nil {
			return nil, err
		}
		c.store = r
	}
	if c.store != nil && sp.BreakerThreshold >= 0 {
		c.breaker = newBreaker(sp.BreakerThreshold, sp.BreakerBackoff,
			func() time.Time { return c.now() })
	}
	if c.store != nil && sp.TTL > 0 {
		c.purgeExpired()
	}
	return c, nil
}
