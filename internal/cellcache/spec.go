package cellcache

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Spec is a parsed cache engine specification. The textual grammar is
// a URL whose scheme selects the engine and whose query tunes the
// orthogonal axes (front-tier bounds, codec, TTL):
//
//	memory://?entries=4096&bytes=256MiB
//	log:///var/lib/stashd?compress=gzip
//	pairtree:///var/lib/stashd?compress=gzip&ttl=24h&entries=1024
//
// For the persistent engines, entries/bytes bound the in-memory front
// tier composed in front of the engine (entries=-1 disables it);
// compress selects the payload codec (none, gzip); ttl arms expiry
// with extend-on-read. Unknown query parameters are an error — a
// typoed knob must not silently select defaults.
type Spec struct {
	// Scheme is the engine: "memory", "log", or "pairtree".
	Scheme string
	// Path roots a persistent engine's files. Empty for memory.
	Path string
	// Entries and Bytes bound the in-memory tier (the whole cache for
	// memory, the front tier otherwise). Zero selects the defaults
	// (4096 entries, 256 MiB); Entries < 0 disables the tier.
	Entries int
	Bytes   int64
	// Codec is the stored-payload compression identity (CodecRaw,
	// CodecGzip). Frames are self-describing, so changing the codec
	// never invalidates existing entries.
	Codec byte
	// TTL, when positive, expires entries that go unread for TTL;
	// every read extends the lease (see Cache).
	TTL time.Duration
}

// ParseSpec parses the engine-spec URL grammar.
func ParseSpec(raw string) (Spec, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return Spec{}, fmt.Errorf("cellcache: invalid cache spec %q: %w", raw, err)
	}
	sp := Spec{Scheme: u.Scheme, Path: u.Host + u.Path}
	if u.Opaque != "" {
		sp.Path = u.Opaque
	}
	switch sp.Scheme {
	case "memory":
		if sp.Path != "" && sp.Path != "/" {
			return Spec{}, fmt.Errorf("cellcache: memory:// takes no path (got %q)", sp.Path)
		}
		sp.Path = ""
	case "log", "pairtree":
		sp.Path = strings.TrimSuffix(sp.Path, "/")
		if sp.Path == "" {
			return Spec{}, fmt.Errorf("cellcache: %s:// requires a directory path", sp.Scheme)
		}
	default:
		return Spec{}, fmt.Errorf("cellcache: unknown cache engine %q (want memory, log, or pairtree)", sp.Scheme)
	}
	q, err := url.ParseQuery(u.RawQuery)
	if err != nil {
		return Spec{}, fmt.Errorf("cellcache: invalid cache spec query %q: %w", u.RawQuery, err)
	}
	for key, vals := range q {
		v := vals[len(vals)-1]
		switch key {
		case "entries":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Spec{}, fmt.Errorf("cellcache: invalid entries %q: %w", v, err)
			}
			sp.Entries = n
		case "bytes":
			n, err := ParseSize(v)
			if err != nil {
				return Spec{}, fmt.Errorf("cellcache: invalid bytes %q: %w", v, err)
			}
			sp.Bytes = n
		case "compress":
			c, err := ParseCodec(v)
			if err != nil {
				return Spec{}, fmt.Errorf("cellcache: %w", err)
			}
			sp.Codec = c
		case "ttl":
			d, err := time.ParseDuration(v)
			if err != nil {
				return Spec{}, fmt.Errorf("cellcache: invalid ttl %q: %w", v, err)
			}
			if d < 0 {
				return Spec{}, fmt.Errorf("cellcache: negative ttl %v", d)
			}
			sp.TTL = d
		default:
			return Spec{}, fmt.Errorf("cellcache: unknown cache spec parameter %q", key)
		}
	}
	return sp, nil
}

// String renders the spec back into the URL grammar (defaults
// omitted), suitable for logs.
func (sp Spec) String() string {
	var q []string
	if sp.Entries != 0 {
		q = append(q, "entries="+strconv.Itoa(sp.Entries))
	}
	if sp.Bytes != 0 {
		q = append(q, "bytes="+strconv.FormatInt(sp.Bytes, 10))
	}
	if sp.Codec != CodecRaw {
		q = append(q, "compress="+CodecName(sp.Codec))
	}
	if sp.TTL > 0 {
		q = append(q, "ttl="+sp.TTL.String())
	}
	s := sp.Scheme + "://" + sp.Path
	if len(q) > 0 {
		s += "?" + strings.Join(q, "&")
	}
	return s
}

// ParseSize parses a byte count with an optional binary-power suffix:
// "1024", "64KiB", "256MiB", "2GiB" (KB/MB/GB accepted as synonyms).
func ParseSize(s string) (int64, error) {
	mult := int64(1)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
	} {
		if strings.HasSuffix(s, suf.name) {
			s, mult = strings.TrimSuffix(s, suf.name), suf.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size")
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("size overflows int64")
	}
	return n * mult, nil
}

// Open parses an engine-spec URL and opens the cache it describes.
func Open(raw string) (*Cache, error) {
	sp, err := ParseSpec(raw)
	if err != nil {
		return nil, err
	}
	return sp.Open()
}

// Open builds the engine the spec names, composes the Cache front over
// it, and runs the startup TTL scan for persistent engines.
func (sp Spec) Open() (*Cache, error) {
	c := newCache(sp.Codec, sp.TTL)
	if sp.Entries >= 0 {
		c.mem = NewMemory(sp.Entries, sp.Bytes)
	}
	var err error
	switch sp.Scheme {
	case "memory":
		// The memory tier is the whole cache.
	case "log":
		c.store, err = OpenLog(sp.Path)
	case "pairtree":
		c.store, err = OpenPairtree(sp.Path)
	default:
		err = fmt.Errorf("unknown cache engine %q", sp.Scheme)
	}
	if err != nil {
		return nil, fmt.Errorf("cellcache: opening %s engine: %w", sp.Scheme, err)
	}
	if c.store != nil && sp.TTL > 0 {
		c.purgeExpired()
	}
	return c, nil
}
