package cellcache

import (
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"memory://", Spec{Scheme: "memory"}},
		{"memory://?entries=4096&bytes=256MiB", Spec{Scheme: "memory", Entries: 4096, Bytes: 256 << 20}},
		{"memory://?entries=-1", Spec{Scheme: "memory", Entries: -1}},
		{"log:///var/lib/stashd", Spec{Scheme: "log", Path: "/var/lib/stashd"}},
		{"log://cache", Spec{Scheme: "log", Path: "cache"}},
		{"log://cache/sub?bytes=1GiB", Spec{Scheme: "log", Path: "cache/sub", Bytes: 1 << 30}},
		{"pairtree:///data?compress=gzip&ttl=24h", Spec{Scheme: "pairtree", Path: "/data", Codec: CodecGzip, TTL: 24 * time.Hour}},
		{"pairtree://d?compress=none&ttl=90s&entries=16&bytes=4096", Spec{Scheme: "pairtree", Path: "d", Entries: 16, Bytes: 4096, TTL: 90 * time.Second}},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, in := range []string{
		"",                     // no scheme
		"redis://host",         // unknown engine
		"log://",               // persistent engine without a path
		"pairtree://",          // ditto
		"memory:///some/path",  // memory takes no path
		"memory://?entires=4",  // typoed parameter
		"memory://?entries=x",  // bad int
		"memory://?bytes=10XB", // bad size suffix
		"log://d?compress=lz4", // unknown codec
		"log://d?ttl=soon",     // bad duration
		"log://d?ttl=-5m",      // negative ttl
	} {
		if sp, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted: %+v", in, sp)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, in := range []string{
		"memory://",
		"log://cache?entries=16",
		"pairtree:///data?bytes=1048576&compress=gzip&ttl=24h0m0s",
	} {
		sp, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		sp2, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("respec %q -> %q: %v", in, sp.String(), err)
		}
		if sp != sp2 {
			t.Errorf("spec round trip drifted: %+v vs %+v", sp, sp2)
		}
	}
}

func TestParseSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"0", 0}, {"1024", 1024}, {"64KiB", 64 << 10}, {"256MiB", 256 << 20},
		{"2GiB", 2 << 30}, {"16MB", 16 << 20},
	} {
		got, err := ParseSize(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	for _, in := range []string{"", "-1", "10TiB10", "MiB", "1.5MiB"} {
		if n, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) accepted: %d", in, n)
		}
	}
}
