package cellcache

import (
	"container/list"
	"sync"
)

const (
	defaultMaxEntries = 4096
	defaultMaxBytes   = 256 << 20
)

type memEntry struct {
	key string
	val []byte
}

// Memory is the in-memory LRU engine, bounded by entry count and total
// value bytes. It serves two roles: the engine behind a memory://
// cache, and the hot front tier composed in front of a persistent
// engine. All methods are safe for concurrent use.
type Memory struct {
	maxEntries int
	maxBytes   int64

	mu        sync.Mutex
	lru       *list.List // front = most recent; values are *memEntry
	byKey     map[string]*list.Element
	bytes     int64
	evictions uint64
}

// NewMemory builds a Memory engine. Zero bounds select the defaults
// (4096 entries, 256 MiB).
func NewMemory(maxEntries int, maxBytes int64) *Memory {
	if maxEntries <= 0 {
		maxEntries = defaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = defaultMaxBytes
	}
	return &Memory{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		lru:        list.New(),
		byKey:      make(map[string]*list.Element),
	}
}

func (m *Memory) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byKey[key]
	if !ok {
		return nil, false
	}
	m.lru.MoveToFront(el)
	return el.Value.(*memEntry).val, true
}

// Put upserts and then enforces the bounds, evicting oldest-first. The
// byte bound always retains at least one entry, so a single oversized
// value still caches.
func (m *Memory) Put(key string, val []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[key]; ok {
		e := el.Value.(*memEntry)
		m.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		m.lru.MoveToFront(el)
	} else {
		m.byKey[key] = m.lru.PushFront(&memEntry{key: key, val: val})
		m.bytes += int64(len(val))
	}
	for m.lru.Len() > m.maxEntries || (m.bytes > m.maxBytes && m.lru.Len() > 1) {
		oldest := m.lru.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*memEntry)
		m.lru.Remove(oldest)
		delete(m.byKey, e.key)
		m.bytes -= int64(len(e.val))
		m.evictions++
	}
	return nil
}

func (m *Memory) Delete(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[key]; ok {
		e := el.Value.(*memEntry)
		m.lru.Remove(el)
		delete(m.byKey, key)
		m.bytes -= int64(len(e.val))
	}
}

func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

// Keys yields a snapshot of the key set taken under the lock, so yield
// may freely call back into the engine.
func (m *Memory) Keys(yield func(key string) bool) {
	m.mu.Lock()
	keys := make([]string, 0, len(m.byKey))
	for k := range m.byKey {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	for _, k := range keys {
		if !yield(k) {
			return
		}
	}
}

func (m *Memory) Close() error { return nil }

// usage reports current occupancy and lifetime evictions for Stats.
func (m *Memory) usage() (entries int, bytes int64, evictions uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len(), m.bytes, m.evictions
}
