package cellcache

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestFaultyDeterminism: two engines under the same profile fail
// identically, operation for operation — the property that makes every
// chaos-run failure replayable.
func TestFaultyDeterminism(t *testing.T) {
	prof := FaultProfile{Seed: 42, PutErr: 0.3, GetErr: 0.3, Torn: 0.2}
	trace := func() (string, [4]uint64) {
		f := NewFaulty(NewMemory(0, 0), prof)
		var b strings.Builder
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("k%d", i%17)
			if i%2 == 0 {
				if err := f.Put(k, []byte("0123456789")); err != nil {
					b.WriteByte('E')
				} else {
					b.WriteByte('.')
				}
			} else {
				if _, ok := f.Get(k); ok {
					b.WriteByte('h')
				} else {
					b.WriteByte('m')
				}
			}
		}
		p, g, torn, d := f.Counts()
		return b.String(), [4]uint64{p, g, torn, d}
	}
	t1, c1 := trace()
	t2, c2 := trace()
	if t1 != t2 {
		t.Errorf("same profile, different fault streams:\n%s\n%s", t1, t2)
	}
	if c1 != c2 {
		t.Errorf("fault counts diverged: %v vs %v", c1, c2)
	}
	if c1[0] == 0 || c1[2] == 0 {
		t.Errorf("profile injected nothing: counts %v", c1)
	}
}

// TestFaultyDownWindows: DownFirst fails exactly the first N operations
// (a sick-at-boot store that heals); DownEvery/DownFor recur cyclically.
func TestFaultyDownWindows(t *testing.T) {
	f := NewFaulty(NewMemory(0, 0), FaultProfile{DownFirst: 3})
	for i := 0; i < 3; i++ {
		if err := f.Put("k", []byte("v")); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("op %d during DownFirst: err = %v, want injected fault", i, err)
		}
	}
	if err := f.Put("k", []byte("v")); err != nil {
		t.Fatalf("op after DownFirst window still failing: %v", err)
	}

	// 2 healthy, 1 down, repeating.
	f = NewFaulty(NewMemory(0, 0), FaultProfile{DownEvery: 2, DownFor: 1})
	var got strings.Builder
	for i := 0; i < 9; i++ {
		if err := f.Put("k", []byte("v")); err != nil {
			got.WriteByte('x')
		} else {
			got.WriteByte('.')
		}
	}
	if got.String() != "..x..x..x" {
		t.Errorf("cyclic window = %q, want ..x..x..x", got.String())
	}
}

// TestFaultyHeal: Heal makes the wrapper permanently transparent, even
// under a certain-failure profile.
func TestFaultyHeal(t *testing.T) {
	f := NewFaulty(NewMemory(0, 0), FaultProfile{PutErr: 1, GetErr: 1})
	if err := f.Put("k", []byte("v")); err == nil {
		t.Fatal("PutErr=1 did not fail")
	}
	f.Heal()
	if err := f.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put after Heal: %v", err)
	}
	if v, ok := f.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("Get after Heal = %q, %v", v, ok)
	}
}

// TestTornWriteNeverServedWrong: a store that persists a prefix of the
// frame yet reports success must never yield wrong bytes — the v3
// frame length (raw codec carries no other integrity signal above the
// engine) turns every truncation into a miss.
func TestTornWriteNeverServedWrong(t *testing.T) {
	c := openSpec(t, "faulty+memory://?entries=-1&breaker=0&fault_seed=7&fault_torn=1", "")
	misses := 0
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("cell%d", i)
		want := bytes.Repeat([]byte(fmt.Sprintf("payload %d ", i)), 8)
		if err := c.Put("", key, want); err != nil {
			t.Fatalf("Put(%s): %v", key, err)
		}
		got, ok := c.Get("", key)
		if ok && !bytes.Equal(got, want) {
			t.Fatalf("torn write served wrong bytes for %s: %d bytes, want %d", key, len(got), len(want))
		}
		if !ok {
			misses++
		}
	}
	if misses == 0 {
		t.Error("fault_torn=1 over 32 writes produced no detectable truncation")
	}
}

// TestBreakerOpensAndRecovers: consecutive store-write failures trip
// the breaker, an open breaker skips the store (writes fail typed,
// reads miss without touching the engine), and after the backoff a
// half-open probe against the healed engine closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	c := openSpec(t, "faulty+memory://?entries=-1&breaker=2&breaker_backoff=1s&fault_down_first=2", "")
	clock := time.Now()
	c.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		if err := c.Put("", fmt.Sprintf("k%d", i), []byte("v")); err == nil {
			t.Fatalf("Put %d during outage succeeded", i)
		}
	}
	s := c.Stats()
	if s.BreakerState != BreakerOpen || s.BreakerTrips != 1 || s.PutErrors != 2 {
		t.Fatalf("after threshold failures: state=%d trips=%d putErrs=%d", s.BreakerState, s.BreakerTrips, s.PutErrors)
	}

	// Open: writes are skipped with the typed error (the engine is not
	// hammered), reads are misses.
	if err := c.Put("", "skipped", []byte("v")); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("open-breaker Put err = %v, want ErrStoreUnavailable", err)
	}
	if s := c.Stats(); s.PutErrors != 2 {
		t.Errorf("skipped write counted as an engine failure: putErrs=%d", s.PutErrors)
	}
	if _, ok := c.Get("", "k0"); ok {
		t.Error("open-breaker Get served from the sick store")
	}

	// Backoff (jittered up to 1.25x base) lapses; the engine has healed
	// (DownFirst consumed). The half-open probe write closes the breaker.
	clock = clock.Add(2 * time.Second)
	if err := c.Put("", "recovered", []byte("back")); err != nil {
		t.Fatalf("half-open probe Put: %v", err)
	}
	if s := c.Stats(); s.BreakerState != BreakerClosed || s.BreakerTrips != 1 {
		t.Errorf("after recovery: state=%d trips=%d", s.BreakerState, s.BreakerTrips)
	}
	if v, ok := c.Get("", "recovered"); !ok || string(v) != "back" {
		t.Errorf("post-recovery Get = %q, %v", v, ok)
	}
}

// TestBreakerReopensWithLongerBackoff: a failed half-open probe reopens
// immediately with a doubled window.
func TestBreakerReopensWithLongerBackoff(t *testing.T) {
	clock := time.Now()
	b := newBreaker(1, time.Second, func() time.Time { return clock })
	b.failure() // trip 1
	if st, trips := b.snapshot(); st != BreakerOpen || trips != 1 {
		t.Fatalf("state=%d trips=%d after first failure", st, trips)
	}
	if b.allow() {
		t.Fatal("allowed during open window")
	}
	clock = clock.Add(2 * time.Second) // past 1.25x max jittered base
	if !b.allow() {
		t.Fatal("half-open probe not allowed after backoff")
	}
	b.failure() // probe fails: reopen, doubled wait
	clock = clock.Add(1400 * time.Millisecond)
	if b.allow() {
		t.Error("reopened breaker allowed before the doubled backoff (min 1.5s) lapsed")
	}
	clock = clock.Add(2 * time.Second)
	if !b.allow() {
		t.Error("probe not allowed after the doubled backoff")
	}
	b.success()
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Errorf("state=%d after success, want closed", st)
	}
}

// TestProbe: a healthy cache probes clean; a cache whose store cannot
// round-trip the sentinel reports a tiered error. Probe bypasses the
// breaker — it must report the engine's truth even when tripped.
func TestProbe(t *testing.T) {
	if err := openSpec(t, "memory://", "").Probe(); err != nil {
		t.Errorf("healthy memory cache probe: %v", err)
	}
	if err := openSpec(t, "pairtree://"+t.TempDir(), "").Probe(); err != nil {
		t.Errorf("healthy pairtree cache probe: %v", err)
	}
	c := openSpec(t, "faulty+memory://?fault_down_first=1000", "")
	err := c.Probe()
	if err == nil {
		t.Fatal("probe of a down store succeeded")
	}
	if !strings.Contains(err.Error(), "store tier") {
		t.Errorf("probe error does not name the tier: %v", err)
	}
}

// TestSpecFaultGrammar: the faulty+ scheme and fault_*/breaker knobs
// parse, render, and round-trip; misuse is rejected loudly.
func TestSpecFaultGrammar(t *testing.T) {
	sp, err := ParseSpec("faulty+pairtree:///data?fault_seed=7&fault_put=0.25&fault_torn=0.1&fault_latency=5ms&fault_down_first=3&breaker=3&breaker_backoff=2s")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Scheme != "pairtree" || sp.Fault == nil {
		t.Fatalf("scheme=%q fault=%v", sp.Scheme, sp.Fault)
	}
	if sp.Fault.Seed != 7 || sp.Fault.PutErr != 0.25 || sp.Fault.Torn != 0.1 ||
		sp.Fault.Latency != 5*time.Millisecond || sp.Fault.DownFirst != 3 {
		t.Errorf("fault profile = %+v", *sp.Fault)
	}
	if sp.BreakerThreshold != 3 || sp.BreakerBackoff != 2*time.Second {
		t.Errorf("breaker = %d / %v", sp.BreakerThreshold, sp.BreakerBackoff)
	}
	sp2, err := ParseSpec(sp.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", sp.String(), err)
	}
	if *sp2.Fault != *sp.Fault || sp2.BreakerThreshold != sp.BreakerThreshold || sp2.BreakerBackoff != sp.BreakerBackoff {
		t.Errorf("round trip changed the spec: %q -> %q", sp.String(), sp2.String())
	}

	// breaker=0 is explicit off, and survives the round trip.
	sp, err = ParseSpec("log:///data?breaker=0")
	if err != nil {
		t.Fatal(err)
	}
	if sp.BreakerThreshold != -1 {
		t.Errorf("breaker=0 parsed to %d, want -1", sp.BreakerThreshold)
	}
	if sp2, err := ParseSpec(sp.String()); err != nil || sp2.BreakerThreshold != -1 {
		t.Errorf("breaker=0 round trip: %v, %d", err, sp2.BreakerThreshold)
	}

	for _, bad := range []string{
		"log:///data?fault_put=0.5",          // fault knob without faulty+
		"faulty+memory://?fault_put=1.5",     // probability out of range
		"faulty+memory://?fault_seed=x",      // not a number
		"faulty+memory://?fault_latency=-1s", // negative duration
		"memory://?breaker=-2",               // negative threshold
		"memory://?breaker_backoff=0",        // non-positive backoff
		"faulty+nvram:///data",               // unknown inner engine
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
}

// TestFrameV2BackCompat: sce2 frames (no body length) written by older
// caches still decode, and a truncated sce3 raw frame is a loud error,
// not silently short bytes.
func TestFrameV2BackCompat(t *testing.T) {
	payload := []byte(`{"cycles":123}`)
	v2 := make([]byte, frameHdrV2+len(payload))
	copy(v2, frameMagicV2)
	v2[4] = CodecRaw
	binary.LittleEndian.PutUint64(v2[5:13], 0)
	copy(v2[frameHdrV2:], payload)
	got, expiry, codec, err := decodeFrame(v2)
	if err != nil || !bytes.Equal(got, payload) || expiry != 0 || codec != CodecRaw {
		t.Fatalf("v2 frame decode = %q, %d, %d, %v", got, expiry, codec, err)
	}

	v3, err := encodeFrame(CodecRaw, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _, err := decodeFrame(v3); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("v3 frame decode = %q, %v", got, err)
	}
	if _, _, _, err := decodeFrame(v3[:len(v3)-3]); err == nil {
		t.Error("truncated v3 frame decoded without error")
	}
}
