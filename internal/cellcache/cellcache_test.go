package cellcache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMemHitMiss(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.Get("", "k"); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put("", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get("", "k")
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	s := c.Stats()
	// MemBytes counts framed bytes: frameHdr + 1 payload byte.
	if s.Hits != 1 || s.Misses != 1 || s.MemHits != 1 || s.MemEntries != 1 || s.MemBytes != frameHdr+1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestLRUEvictionBounds fills past both bounds and checks the tier
// stays bounded, evicts oldest-first, and keeps recently-used entries.
func TestLRUEvictionBounds(t *testing.T) {
	c, err := New(Options{MaxEntries: 4, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		c.Put("", fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	s := c.Stats()
	if s.MemEntries != 4 || s.Evictions != 6 {
		t.Fatalf("after 10 puts into a 4-entry tier: %+v", s)
	}
	for i := 0; i < 6; i++ {
		if _, ok := c.Get("", fmt.Sprintf("k%d", i)); ok {
			t.Errorf("k%d survived eviction", i)
		}
	}
	for i := 6; i < 10; i++ {
		if _, ok := c.Get("", fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d missing", i)
		}
	}

	// Recently-used survives: touch k6, insert, expect k7 evicted first.
	c.Get("", "k6")
	c.Put("", "kA", []byte("a"))
	if _, ok := c.Get("", "k6"); !ok {
		t.Error("recently-used k6 was evicted before older k7")
	}
	if _, ok := c.Get("", "k7"); ok {
		t.Error("k7 should have been the LRU victim")
	}
}

// TestByteBound checks the byte bound evicts independently of the
// entry bound (while always retaining at least one entry, so a single
// oversized value still caches).
func TestByteBound(t *testing.T) {
	c, err := New(Options{MaxEntries: 100, MaxBytes: 150})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Put("", fmt.Sprintf("k%d", i), make([]byte, 40)) // 40+frameHdr stored
	}
	if s := c.Stats(); s.MemBytes > 150 || s.MemEntries > 2 {
		t.Errorf("byte bound not enforced: %+v", s)
	}
	c.Put("", "big", make([]byte, 500))
	if _, ok := c.Get("", "big"); !ok {
		t.Error("oversized value should still be retained as the sole entry")
	}
}

func TestDiskRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][]byte{}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("cell-%03d", i)
		v := bytes.Repeat([]byte{byte(i)}, 10+i)
		vals[k] = v
		if err := c.Put("", k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulated restart: a fresh cache over the same directory serves
	// every entry from the log.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if n := c2.Stats().StoreEntries; n != 20 {
		t.Fatalf("restarted index has %d entries, want 20", n)
	}
	for k, want := range vals {
		got, ok := c2.Get("", k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("after restart, Get(%s) = %q, %v; want %q", k, got, ok, want)
		}
	}
	if s := c2.Stats(); s.StoreHits != 20 {
		t.Errorf("want 20 store hits after restart, got %+v", s)
	}
	// Promotion: a second Get is a memory hit, not another store read.
	c2.Get("", "cell-000")
	if s := c2.Stats(); s.StoreHits != 20 || s.MemHits != 1 {
		t.Errorf("promoted entry re-read from store: %+v", s)
	}
}

// TestCorruptedDiskEntrySkipped flips a byte inside one record's value
// and checks that on reload only that record is lost — the entries
// before and after it still serve — and the cache keeps working.
func TestCorruptedDiskEntrySkipped(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("", "aaa", []byte("first-value"))
	c.Put("", "bbb", []byte("second-value"))
	c.Put("", "ccc", []byte("third-value"))
	c.Close()

	path := filepath.Join(dir, logName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(raw, []byte("second-value"))
	if i < 0 {
		t.Fatal("second record not found in log")
	}
	raw[i] ^= 0xff
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatalf("corrupted record must not be fatal: %v", err)
	}
	defer c2.Close()
	if _, ok := c2.Get("", "bbb"); ok {
		t.Error("corrupted record served")
	}
	for _, k := range []string{"aaa", "ccc"} {
		if _, ok := c2.Get("", k); !ok {
			t.Errorf("intact record %s lost alongside the corrupted one", k)
		}
	}
	// The corrupted key is a plain miss: re-putting repairs it.
	if err := c2.Put("", "bbb", []byte("second-value")); err != nil {
		t.Fatal(err)
	}
	if v, ok := c2.Get("", "bbb"); !ok || string(v) != "second-value" {
		t.Error("re-put after corruption did not take")
	}
}

// TestTornTailTruncated cuts the log mid-record (a crash during
// append) and checks the intact prefix loads and appends still work.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("", "aaa", []byte("first-value"))
	c.Put("", "bbb", []byte("second-value"))
	c.Close()

	path := filepath.Join(dir, logName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o666); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatalf("torn tail must not be fatal: %v", err)
	}
	if _, ok := c2.Get("", "aaa"); !ok {
		t.Error("intact prefix record lost")
	}
	if _, ok := c2.Get("", "bbb"); ok {
		t.Error("torn record served")
	}
	c2.Put("", "ccc", []byte("third-value"))
	c2.Close()

	c3, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	for _, k := range []string{"aaa", "ccc"} {
		if _, ok := c3.Get("", k); !ok {
			t.Errorf("%s missing after post-truncation append", k)
		}
	}
}

func TestForeignLogRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("not a cache log at all"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Dir: dir}); err == nil {
		t.Fatal("foreign file silently adopted as a cache log")
	}
}

// TestDoSingleflight launches many concurrent Do calls for one key and
// checks exactly one computes while the rest share its bytes.
func TestDoSingleflight(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	vals := make([][]byte, n)
	cachedFlags := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, cached, err := c.Do("", "k", func() ([]byte, error) {
				calls.Add(1)
				<-gate
				return []byte("computed"), nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], cachedFlags[i] = v, cached
		}(i)
	}
	// Let followers pile onto the leader's flight, then release it.
	for c.Stats().Collapsed < n-1 {
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	fresh := 0
	for i := range vals {
		if string(vals[i]) != "computed" {
			t.Fatalf("caller %d got %q", i, vals[i])
		}
		if !cachedFlags[i] {
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("%d callers reported a fresh compute, want exactly the leader", fresh)
	}
	if v, cached, _ := c.Do("", "k", func() ([]byte, error) { t.Error("recompute after fill"); return nil, nil }); !cached || string(v) != "computed" {
		t.Error("post-flight Do missed the cache")
	}
}

// TestDoErrorNotCached: a failed compute reaches every waiter but the
// next Do retries.
func TestDoErrorNotCached(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	boom := errors.New("boom")
	if _, _, err := c.Do("", "k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, cached, err := c.Do("", "k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || cached || string(v) != "ok" {
		t.Fatalf("retry after error: %q %v %v", v, cached, err)
	}
}

// TestNamespaceIsolation: the same key under different namespaces is
// different entries — one tenant's cells are invisible to another —
// and the per-namespace counters track each tenant separately.
func TestNamespaceIsolation(t *testing.T) {
	for _, spec := range []string{"memory://", "log://{dir}", "pairtree://{dir}?compress=gzip"} {
		t.Run(spec, func(t *testing.T) {
			c := openSpec(t, spec, t.TempDir())
			if err := c.Put("alice", "cell", []byte("alice-result")); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get("bob", "cell"); ok {
				t.Fatal("bob read alice's cell")
			}
			if _, ok := c.Get("", "cell"); ok {
				t.Fatal("anonymous read alice's cell")
			}
			if v, ok := c.Get("alice", "cell"); !ok || string(v) != "alice-result" {
				t.Fatalf("alice's own cell: %q, %v", v, ok)
			}
			if err := c.Put("bob", "cell", []byte("bob-result")); err != nil {
				t.Fatal(err)
			}
			if v, _ := c.Get("alice", "cell"); string(v) != "alice-result" {
				t.Errorf("bob's put clobbered alice's cell: %q", v)
			}
			if v, ok := c.Get("bob", "cell"); !ok || string(v) != "bob-result" {
				t.Errorf("bob's own cell: %q, %v", v, ok)
			}
			ns := c.Namespaces()
			if ns["alice"].Hits != 2 || ns["alice"].Misses != 0 {
				t.Errorf("alice stats = %+v", ns["alice"])
			}
			if ns["bob"].Hits != 1 || ns["bob"].Misses != 1 {
				t.Errorf("bob stats = %+v", ns["bob"])
			}
		})
	}
}

// openSpec opens the spec with {dir} substituted, registering cleanup.
func openSpec(t *testing.T, spec, dir string) *Cache {
	t.Helper()
	c, err := Open(strings.Replace(spec, "{dir}", dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestCodecSelfDescribing: entries written under one codec read back
// correctly through a cache configured with another — the frame
// header, not the configuration, decides how bytes are decoded. This
// is what makes compressed and plain entries impossible to confuse
// across restarts and config changes.
func TestCodecSelfDescribing(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte(`{"cycles":12345} `), 200)

	gz, err := Open("pairtree://" + dir + "?compress=gzip")
	if err != nil {
		t.Fatal(err)
	}
	if err := gz.Put("", "compressed", payload); err != nil {
		t.Fatal(err)
	}
	gz.Close()

	// Reopen with compression off: the gzip entry still decompresses,
	// and a plain entry written now coexists with it.
	plain, err := Open("pairtree://" + dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := plain.Get("", "compressed"); !ok || !bytes.Equal(v, payload) {
		t.Fatalf("gzip entry through plain cache: ok=%v len=%d want %d", ok, len(v), len(payload))
	}
	if err := plain.Put("", "plain", payload); err != nil {
		t.Fatal(err)
	}
	plain.Close()

	// And back again with gzip on: both entries serve byte-identically.
	gz2, err := Open("pairtree://" + dir + "?compress=gzip")
	if err != nil {
		t.Fatal(err)
	}
	defer gz2.Close()
	for _, k := range []string{"compressed", "plain"} {
		if v, ok := gz2.Get("", k); !ok || !bytes.Equal(v, payload) {
			t.Errorf("%s entry through gzip cache: ok=%v len=%d", k, ok, len(v))
		}
	}
}

// TestCompressionAccounting: stored-bytes stats shrink under gzip on
// compressible payloads, and the raw side matches the payload sizes.
func TestCompressionAccounting(t *testing.T) {
	dir := t.TempDir()
	c, err := Open("log://" + dir + "?compress=gzip")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := bytes.Repeat([]byte(`{"workload":"implicit","cycles":123} `), 100)
	if err := c.Put("", "k", payload); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.BytesRaw != uint64(len(payload)) {
		t.Errorf("BytesRaw = %d, want %d", s.BytesRaw, len(payload))
	}
	if s.BytesStored == 0 || s.BytesStored >= s.BytesRaw {
		t.Errorf("gzip did not shrink: raw=%d stored=%d", s.BytesRaw, s.BytesStored)
	}
	// Byte-identical replay through the compressed store tier.
	c2, err := Open("log://" + dir + "?compress=gzip&entries=-1")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if v, ok := c2.Get("", "k"); !ok || !bytes.Equal(v, payload) {
		t.Errorf("compressed round trip: ok=%v len=%d want %d", ok, len(v), len(payload))
	}
}

// TestTTLExpiry: entries expire once the lease lapses, across both
// tiers and across restart.
func TestTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	c, err := Open("pairtree://" + dir + "?ttl=1h")
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Now()
	c.now = func() time.Time { return clock }
	if err := c.Put("", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("", "k"); !ok {
		t.Fatal("fresh entry missing")
	}
	clock = clock.Add(2 * time.Hour)
	if _, ok := c.Get("", "k"); ok {
		t.Fatal("expired entry served")
	}
	if s := c.Stats(); s.Expired == 0 {
		t.Errorf("expiry not counted: %+v", s)
	}
	if n := c.Stats().StoreEntries; n != 0 {
		t.Errorf("expired entry still on the store tier (%d entries)", n)
	}
	c.Close()
}

// TestTTLRestartPurge: an entry whose lease lapses while the daemon is
// down is purged by the startup scan, not resurrected; one with a live
// lease survives the restart.
func TestTTLRestartPurge(t *testing.T) {
	dir := t.TempDir()
	c, err := Open("pairtree://" + dir + "?ttl=10ms")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("", "doomed", []byte("v"))
	c.Close()
	time.Sleep(30 * time.Millisecond)

	c2, err := Open("pairtree://" + dir + "?ttl=10ms")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if n := c2.Stats().StoreEntries; n != 0 {
		t.Errorf("restart resurrected %d expired entries", n)
	}

	// A live lease survives: same dir, generous TTL.
	c2.Close()
	c2b, err := Open("pairtree://" + dir + "?ttl=1h")
	if err != nil {
		t.Fatal(err)
	}
	c2b.Put("", "alive", []byte("v"))
	c2b.Close()
	c3, err := Open("pairtree://" + dir + "?ttl=1h")
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if v, ok := c3.Get("", "alive"); !ok || string(v) != "v" {
		t.Errorf("live-lease entry lost across restart: %q, %v", v, ok)
	}
}

// TestTTLExtendOnRead: reads renew the lease, so an entry read more
// often than every TTL/2 lives forever, while an unread one dies.
func TestTTLExtendOnRead(t *testing.T) {
	c, err := Open("memory://?ttl=1h")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	clock := time.Now()
	c.now = func() time.Time { return clock }
	c.Put("", "read", []byte("hot"))
	c.Put("", "unread", []byte("cold"))

	// Read "read" every 45 minutes for 6 hours: each read lands past
	// the half-life, renewing the lease every time.
	for i := 0; i < 8; i++ {
		clock = clock.Add(45 * time.Minute)
		if _, ok := c.Get("", "read"); !ok {
			t.Fatalf("extended entry expired after %d reads", i)
		}
	}
	if _, ok := c.Get("", "unread"); ok {
		t.Error("unread entry outlived its lease")
	}
}
