package cellcache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemHitMiss(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get("k")
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.MemEntries != 1 || s.MemBytes != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestLRUEvictionBounds fills past both bounds and checks the tier
// stays bounded, evicts oldest-first, and keeps recently-used entries.
func TestLRUEvictionBounds(t *testing.T) {
	c, err := New(Options{MaxEntries: 4, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	s := c.Stats()
	if s.MemEntries != 4 || s.Evictions != 6 {
		t.Fatalf("after 10 puts into a 4-entry tier: %+v", s)
	}
	for i := 0; i < 6; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Errorf("k%d survived eviction", i)
		}
	}
	for i := 6; i < 10; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d missing", i)
		}
	}

	// Recently-used survives: touch k6, insert, expect k7 evicted first.
	c.Get("k6")
	c.Put("kA", []byte("a"))
	if _, ok := c.Get("k6"); !ok {
		t.Error("recently-used k6 was evicted before older k7")
	}
	if _, ok := c.Get("k7"); ok {
		t.Error("k7 should have been the LRU victim")
	}
}

// TestByteBound checks the byte bound evicts independently of the
// entry bound (while always retaining at least one entry, so a single
// oversized value still caches).
func TestByteBound(t *testing.T) {
	c, err := New(Options{MaxEntries: 100, MaxBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 40))
	}
	if s := c.Stats(); s.MemBytes > 100 || s.MemEntries > 2 {
		t.Errorf("byte bound not enforced: %+v", s)
	}
	c.Put("big", make([]byte, 500))
	if _, ok := c.Get("big"); !ok {
		t.Error("oversized value should still be retained as the sole entry")
	}
}

func TestDiskRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][]byte{}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("cell-%03d", i)
		v := bytes.Repeat([]byte{byte(i)}, 10+i)
		vals[k] = v
		if err := c.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulated restart: a fresh cache over the same directory serves
	// every entry from the log.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if n := c2.Stats().DiskEntries; n != 20 {
		t.Fatalf("restarted index has %d entries, want 20", n)
	}
	for k, want := range vals {
		got, ok := c2.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("after restart, Get(%s) = %q, %v; want %q", k, got, ok, want)
		}
	}
	if s := c2.Stats(); s.DiskHits != 20 {
		t.Errorf("want 20 disk hits after restart, got %+v", s)
	}
	// Promotion: a second Get is a memory hit, not another disk read.
	c2.Get("cell-000")
	if s := c2.Stats(); s.DiskHits != 20 {
		t.Errorf("promoted entry re-read from disk: %+v", s)
	}
}

// TestCorruptedDiskEntrySkipped flips a byte inside one record's value
// and checks that on reload only that record is lost — the entries
// before and after it still serve — and the cache keeps working.
func TestCorruptedDiskEntrySkipped(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("aaa", []byte("first-value"))
	c.Put("bbb", []byte("second-value"))
	c.Put("ccc", []byte("third-value"))
	c.Close()

	path := filepath.Join(dir, logName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(raw, []byte("second-value"))
	if i < 0 {
		t.Fatal("second record not found in log")
	}
	raw[i] ^= 0xff
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatalf("corrupted record must not be fatal: %v", err)
	}
	defer c2.Close()
	if _, ok := c2.Get("bbb"); ok {
		t.Error("corrupted record served")
	}
	for _, k := range []string{"aaa", "ccc"} {
		if _, ok := c2.Get(k); !ok {
			t.Errorf("intact record %s lost alongside the corrupted one", k)
		}
	}
	// The corrupted key is a plain miss: re-putting repairs it.
	if err := c2.Put("bbb", []byte("second-value")); err != nil {
		t.Fatal(err)
	}
	if v, ok := c2.Get("bbb"); !ok || string(v) != "second-value" {
		t.Error("re-put after corruption did not take")
	}
}

// TestTornTailTruncated cuts the log mid-record (a crash during
// append) and checks the intact prefix loads and appends still work.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("aaa", []byte("first-value"))
	c.Put("bbb", []byte("second-value"))
	c.Close()

	path := filepath.Join(dir, logName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o666); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatalf("torn tail must not be fatal: %v", err)
	}
	if _, ok := c2.Get("aaa"); !ok {
		t.Error("intact prefix record lost")
	}
	if _, ok := c2.Get("bbb"); ok {
		t.Error("torn record served")
	}
	c2.Put("ccc", []byte("third-value"))
	c2.Close()

	c3, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	for _, k := range []string{"aaa", "ccc"} {
		if _, ok := c3.Get(k); !ok {
			t.Errorf("%s missing after post-truncation append", k)
		}
	}
}

func TestForeignLogRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("not a cache log at all"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Dir: dir}); err == nil {
		t.Fatal("foreign file silently adopted as a cache log")
	}
}

// TestDoSingleflight launches many concurrent Do calls for one key and
// checks exactly one computes while the rest share its bytes.
func TestDoSingleflight(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	vals := make([][]byte, n)
	cachedFlags := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, cached, err := c.Do("k", func() ([]byte, error) {
				calls.Add(1)
				<-gate
				return []byte("computed"), nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], cachedFlags[i] = v, cached
		}(i)
	}
	// Let followers pile onto the leader's flight, then release it.
	for c.Stats().Collapsed < n-1 {
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	fresh := 0
	for i := range vals {
		if string(vals[i]) != "computed" {
			t.Fatalf("caller %d got %q", i, vals[i])
		}
		if !cachedFlags[i] {
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("%d callers reported a fresh compute, want exactly the leader", fresh)
	}
	if v, cached, _ := c.Do("k", func() ([]byte, error) { t.Error("recompute after fill"); return nil, nil }); !cached || string(v) != "computed" {
		t.Error("post-flight Do missed the cache")
	}
}

// TestDoErrorNotCached: a failed compute reaches every waiter but the
// next Do retries.
func TestDoErrorNotCached(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, cached, err := c.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || cached || string(v) != "ok" {
		t.Fatalf("retry after error: %q %v %v", v, cached, err)
	}
}
