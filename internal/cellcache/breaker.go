package cellcache

import (
	"errors"
	"sync"
	"time"
)

// ErrStoreUnavailable is returned (wrapped in a PersistError by Do)
// when the store tier's circuit breaker is open and a write was
// skipped rather than attempted against an engine known to be sick.
var ErrStoreUnavailable = errors.New("cellcache: store tier unavailable (circuit breaker open)")

// Breaker states, exposed through Stats.BreakerState and stashd's
// stashd_cache_breaker_state metric.
const (
	BreakerClosed   = 0
	BreakerHalfOpen = 1
	BreakerOpen     = 2
)

// breaker is the store tier's circuit breaker. The Cache front feeds
// it every store-engine Put outcome; after threshold consecutive
// failures it opens, and while open both store reads and writes are
// skipped — a dead disk is not hammered on every cache miss, and the
// memory tier plus fresh simulation keep serving (degraded mode).
// After a jittered backoff the breaker half-opens: operations flow
// again as probes, the first Put success closes it, a Put failure
// reopens it with doubled backoff (capped). Reads never change the
// state — Engine.Get cannot distinguish an I/O error from a miss, so
// only writes carry a health signal.
type breaker struct {
	threshold int
	base      time.Duration
	maxWait   time.Duration
	now       func() time.Time

	mu          sync.Mutex
	state       int
	consecutive int
	wait        time.Duration
	until       time.Time // while open: earliest half-open probe time
	trips       uint64
	rng         uint64 // splitmix64 state for backoff jitter
}

const (
	defaultBreakerThreshold = 5
	defaultBreakerBackoff   = time.Second
	maxBreakerBackoffMult   = 64
)

func newBreaker(threshold int, backoff time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if backoff <= 0 {
		backoff = defaultBreakerBackoff
	}
	return &breaker{
		threshold: threshold,
		base:      backoff,
		maxWait:   maxBreakerBackoffMult * backoff,
		now:       now,
		wait:      backoff,
		rng:       1,
	}
}

// allow reports whether a store operation may proceed. While open it
// answers false until the backoff elapses, then flips to half-open and
// lets probes through.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return true
	}
	if b.now().Before(b.until) {
		return false
	}
	b.state = BreakerHalfOpen
	return true
}

// success records a healthy store write: the breaker closes and the
// failure streak and backoff reset.
func (b *breaker) success() {
	b.mu.Lock()
	b.consecutive = 0
	b.state = BreakerClosed
	b.wait = b.base
	b.mu.Unlock()
}

// failure records a failed store write. A half-open probe failure
// reopens immediately with doubled backoff; in closed state the
// threshold-th consecutive failure trips the breaker.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	switch b.state {
	case BreakerHalfOpen:
		b.wait = min(2*b.wait, b.maxWait)
		b.open()
	case BreakerClosed:
		if b.consecutive >= b.threshold {
			b.open()
		}
	}
}

// open trips the breaker with the current backoff, jittered ±25% so a
// fleet of nodes sharing a sick backend does not probe in lockstep.
// Called with b.mu held.
func (b *breaker) open() {
	b.state = BreakerOpen
	b.trips++
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	jitter := 0.75 + 0.5*float64(z>>11)/float64(1<<53) // [0.75, 1.25)
	b.until = b.now().Add(time.Duration(jitter * float64(b.wait)))
}

// snapshot reports the state and trip count for Stats.
func (b *breaker) snapshot() (state int, trips uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// An open breaker whose backoff has lapsed is half-open in spirit:
	// the next operation will probe. Report it as such so metrics do
	// not claim "open" forever on an idle server.
	if b.state == BreakerOpen && !b.now().Before(b.until) {
		return BreakerHalfOpen, b.trips
	}
	return b.state, b.trips
}
