package cellcache

// Engine is the storage boundary of the cell cache: a flat key→value
// store of opaque bytes. Three implementations ship — Memory (bounded
// LRU), Log (one append-only CRC-checked file), and Pairtree (one file
// per entry under fanned-out hash-prefix directories) — and a remote
// or peer tier slots in behind the same five methods without touching
// the Cache front or any HTTP handler.
//
// Engines know nothing about compression, TTL, or tenancy: the Cache
// front frames every value (codec byte + expiry + payload, see
// codec.go) before it reaches an engine, and prefixes keys with the
// tenant namespace. Values handed to Put are owned by the engine;
// slices returned by Get are shared and must not be modified.
//
// Semantics every engine must honor (enforced by the conformance
// suite in conformance_test.go):
//
//   - Put is an upsert: the last write for a key wins, including
//     across a restart for persistent engines.
//   - Get of a corrupted entry is a miss, never an error: persistent
//     engines verify checksums and drop damaged entries.
//   - Delete is idempotent; deleting a missing key is a no-op.
//   - Keys iterates a point-in-time snapshot of the key set (used for
//     startup TTL scans); yield returning false stops the walk.
type Engine interface {
	// Get returns the stored bytes for key. The slice is shared;
	// callers must not modify it.
	Get(key string) ([]byte, bool)
	// Put stores val under key, replacing any previous value.
	Put(key string, val []byte) error
	// Delete removes key if present.
	Delete(key string)
	// Len reports the number of stored entries.
	Len() int
	// Keys calls yield for each stored key (snapshot order is
	// unspecified) until the keys run out or yield returns false.
	Keys(yield func(key string) bool)
	// Close releases the engine's resources. The engine must not be
	// used afterwards.
	Close() error
}

// Key and value bounds shared by the persistent engines. Keys are
// namespace-prefixed fingerprints (well under 1 KiB); values are
// framed serialized SweepResults.
const (
	maxKeyLen = 1 << 10
	maxValLen = 1 << 30
)
