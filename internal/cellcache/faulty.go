package cellcache

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjectedFault is the base error every fault the Faulty engine
// injects wraps, so tests and callers can tell injected failures from
// real ones with errors.Is.
var ErrInjectedFault = errors.New("cellcache: injected storage fault")

// FaultProfile describes the deterministic fault stream a Faulty
// engine injects. Probabilities are evaluated against a
// splitmix64-derived pseudo-random stream seeded by Seed (the same
// discipline as internal/faults), so a given profile always injects
// the same faults in the same operation order and every failure it
// uncovers is exactly reproducible. The zero profile injects nothing.
type FaultProfile struct {
	// Seed selects the pseudo-random stream. Two engines with equal
	// profiles fail identically.
	Seed uint64
	// PutErr is the probability in [0,1] that a Put fails with an I/O
	// error (nothing is written).
	PutErr float64
	// GetErr is the probability that a Get fails to read and reports a
	// miss — the engine contract for unreadable entries.
	GetErr float64
	// Torn is the probability that a Put persists only a prefix of the
	// value yet reports success — a torn write. The cache's frame
	// length check (and the engines' checksums) must catch it on read.
	Torn float64
	// Latency is the maximum extra latency injected per operation,
	// drawn uniformly; zero injects none.
	Latency time.Duration
	// DownFirst fails the first DownFirst operations outright — a
	// storage tier that is sick at startup and then heals, for breaker
	// recovery tests.
	DownFirst int
	// DownEvery and DownFor arm cyclic unavailability windows: after
	// every DownEvery healthy operations the next DownFor operations
	// fail outright, modelling transient outages that recur and heal.
	DownEvery, DownFor int
}

// Enabled reports whether the profile injects any fault at all.
func (p FaultProfile) Enabled() bool {
	return p.PutErr > 0 || p.GetErr > 0 || p.Torn > 0 || p.Latency > 0 ||
		p.DownFirst > 0 || (p.DownEvery > 0 && p.DownFor > 0)
}

// Faulty wraps an Engine and injects storage faults per a
// FaultProfile. It is composed from the -cache spec grammar as
// "faulty+<engine>://..." (see Spec) and is the storage half of
// stashd's chaos harness: everything above it — frame validation,
// circuit breaker, degraded serving — must hold up no matter what it
// does. Heal stops all injection, after which the inner engine must
// serve (and replay) exactly as if the faults never happened.
type Faulty struct {
	inner Engine

	mu     sync.Mutex
	prof   FaultProfile
	rng    uint64 // splitmix64 state
	ops    int    // operations seen (Get + Put)
	healed bool

	putErrs, getErrs, torn, downOps uint64
}

// NewFaulty wraps inner with the profile's fault stream.
func NewFaulty(inner Engine, p FaultProfile) *Faulty {
	return &Faulty{inner: inner, prof: p, rng: p.Seed}
}

// Heal permanently stops fault injection; the wrapper becomes
// transparent.
func (f *Faulty) Heal() {
	f.mu.Lock()
	f.healed = true
	f.mu.Unlock()
}

// splitmix64 advances the stream (reference increments, as in
// internal/faults).
func (f *Faulty) splitmix64() uint64 {
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// draw returns the next uniform value in [0,1).
func (f *Faulty) draw() float64 {
	return float64(f.splitmix64()>>11) / float64(1<<53)
}

// op accounts one operation and decides its fate under the profile:
// sleep is the injected latency, down reports an outage window, and
// fault fires with probability prob. Called with f.mu held.
func (f *Faulty) op(prob float64) (sleep time.Duration, down, fault bool) {
	if f.healed {
		return 0, false, false
	}
	n := f.ops
	f.ops++
	if f.prof.Latency > 0 {
		sleep = time.Duration(f.draw() * float64(f.prof.Latency))
	}
	if n < f.prof.DownFirst {
		f.downOps++
		return sleep, true, false
	}
	if f.prof.DownEvery > 0 && f.prof.DownFor > 0 {
		cycle := f.prof.DownEvery + f.prof.DownFor
		if (n-f.prof.DownFirst)%cycle >= f.prof.DownEvery {
			f.downOps++
			return sleep, true, false
		}
	}
	if prob > 0 && f.draw() < prob {
		return sleep, false, true
	}
	return sleep, false, false
}

// Get injects read faults (outage windows and unreadable entries read
// as misses, per the Engine contract) before delegating.
func (f *Faulty) Get(key string) ([]byte, bool) {
	f.mu.Lock()
	sleep, down, fault := f.op(f.prof.GetErr)
	if down || fault {
		f.getErrs++
	}
	f.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if down || fault {
		return nil, false
	}
	return f.inner.Get(key)
}

// Put injects write faults: outright I/O errors, outage windows, and
// torn writes that persist a prefix yet report success.
func (f *Faulty) Put(key string, val []byte) error {
	f.mu.Lock()
	sleep, down, fault := f.op(f.prof.PutErr)
	cut := -1
	if !down && !fault && !f.healed && f.prof.Torn > 0 && f.draw() < f.prof.Torn {
		cut = int(f.splitmix64() % uint64(len(val)+1))
		f.torn++
	}
	if down || fault {
		f.putErrs++
	}
	f.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if down {
		return fmt.Errorf("%w: engine unavailable", ErrInjectedFault)
	}
	if fault {
		return fmt.Errorf("%w: put I/O error", ErrInjectedFault)
	}
	if cut >= 0 {
		// The torn prefix is persisted and Put lies about success —
		// the read path's integrity checks have to catch this.
		return f.inner.Put(key, val[:cut])
	}
	return f.inner.Put(key, val)
}

func (f *Faulty) Delete(key string)            { f.inner.Delete(key) }
func (f *Faulty) Len() int                     { return f.inner.Len() }
func (f *Faulty) Keys(yield func(string) bool) { f.inner.Keys(yield) }
func (f *Faulty) Close() error                 { return f.inner.Close() }

// Counts reports how many faults have fired, for diagnostics and
// tests.
func (f *Faulty) Counts() (putErrs, getErrs, torn, downOps uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.putErrs, f.getErrs, f.torn, f.downOps
}
