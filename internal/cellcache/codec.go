package cellcache

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
)

// Every value an engine stores is framed with a self-describing
// header, so an entry carries its own codec identity and expiry and
// can never be misread by a cache configured differently from the one
// that wrote it (a gzip-written entry read by a compression-off cache
// still decompresses; a plain entry read by a gzip cache is served
// as-is):
//
//	"sce3" | codec u8 | expiry u64 (unix nanoseconds, 0 = never) | bodyLen u32 | body
//
// little-endian. The magic doubles as the stored-entry version: v1
// caches stored bare payloads, which fail the magic check and read as
// misses — exactly the orphaning the stash-cell-v2 fingerprint bump
// implies. The body is the serialized SweepResult bytes, compressed
// per the codec byte.
//
// v3 adds the explicit body length so a frame that was cut short by a
// torn or interrupted write is detected at the Cache layer even for
// uncompressed payloads (gzip carries its own footer; raw bytes
// previously had no way to prove they were whole). v2 frames — the
// same header minus the length — are still decoded, so upgrading
// never orphans an existing cache.
const (
	frameMagic   = "sce3"
	frameHdr     = 4 + 1 + 8 + 4
	frameMagicV2 = "sce2"
	frameHdrV2   = 4 + 1 + 8

	// Codec identities, stable on disk. New codecs append; never
	// renumber.
	CodecRaw  byte = 0
	CodecGzip byte = 1
)

// ParseCodec maps an engine-spec compress= value to a codec identity.
func ParseCodec(name string) (byte, error) {
	switch name {
	case "", "none", "raw":
		return CodecRaw, nil
	case "gzip":
		return CodecGzip, nil
	default:
		return 0, fmt.Errorf("unknown compression codec %q (want none or gzip)", name)
	}
}

// CodecName is ParseCodec's inverse, for metrics and logs.
func CodecName(c byte) string {
	if c == CodecGzip {
		return "gzip"
	}
	return "none"
}

// encodeFrame frames payload under codec with the given expiry,
// compressing the payload when the codec calls for it.
func encodeFrame(codec byte, expiry int64, payload []byte) ([]byte, error) {
	body := payload
	if codec == CodecGzip {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(payload); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		body = buf.Bytes()
	}
	frame := make([]byte, frameHdr+len(body))
	copy(frame, frameMagic)
	frame[4] = codec
	binary.LittleEndian.PutUint64(frame[5:13], uint64(expiry))
	binary.LittleEndian.PutUint32(frame[13:17], uint32(len(body)))
	copy(frame[frameHdr:], body)
	return frame, nil
}

// frameExpiry reads just the expiry from a frame header, without
// touching (or decompressing) the payload — the startup TTL scan's
// fast path. Both frame versions share the expiry offset.
func frameExpiry(frame []byte) (int64, bool) {
	if len(frame) < frameHdrV2 ||
		(string(frame[:4]) != frameMagic && string(frame[:4]) != frameMagicV2) {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(frame[5:13])), true
}

// decodeFrame validates the header and returns the decompressed
// payload. The codec comes from the frame, not from configuration.
// For CodecRaw the payload aliases the frame's backing array (zero
// copy on the hot path). A v3 frame whose body is shorter than its
// declared length — a torn write — is an error, which the Cache turns
// into a dropped entry and a recompute.
func decodeFrame(frame []byte) (payload []byte, expiry int64, codec byte, err error) {
	var body []byte
	switch {
	case len(frame) >= frameHdr && string(frame[:4]) == frameMagic:
		body = frame[frameHdr:]
		if want := binary.LittleEndian.Uint32(frame[13:17]); uint32(len(body)) != want {
			return nil, 0, 0, fmt.Errorf("torn cache entry: %d body bytes, header says %d", len(body), want)
		}
	case len(frame) >= frameHdrV2 && string(frame[:4]) == frameMagicV2:
		body = frame[frameHdrV2:]
	default:
		return nil, 0, 0, fmt.Errorf("not a framed cache entry")
	}
	codec = frame[4]
	expiry = int64(binary.LittleEndian.Uint64(frame[5:13]))
	switch codec {
	case CodecRaw:
		return body, expiry, codec, nil
	case CodecGzip:
		zr, err := gzip.NewReader(bytes.NewReader(body))
		if err != nil {
			return nil, 0, 0, err
		}
		payload, err = io.ReadAll(io.LimitReader(zr, maxValLen+1))
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, 0, 0, err
		}
		if len(payload) > maxValLen {
			return nil, 0, 0, fmt.Errorf("decompressed cache entry exceeds %d bytes", maxValLen)
		}
		return payload, expiry, codec, nil
	default:
		return nil, 0, 0, fmt.Errorf("unknown cache entry codec %d", codec)
	}
}
