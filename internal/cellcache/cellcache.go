// Package cellcache memoizes simulation cell results by content
// address. A cell's fingerprint (stash.RunSpec.Fingerprint) fully
// determines its result — every simulation is deterministic — so the
// cache stores the cell's serialized result bytes verbatim and a hit
// replays them byte-identically without running a single engine cycle.
//
// The cache is tiered: a bounded in-memory LRU front tier answers hot
// lookups, and an optional append-only on-disk log keeps every result
// across restarts. Entries evicted from memory remain served from
// disk; a corrupted or truncated disk record is skipped (a miss), never
// fatal. Concurrent fills of the same key are collapsed: one caller
// computes, the rest wait and share the bytes (singleflight).
package cellcache

import (
	"container/list"
	"fmt"
	"sync"
)

// Options configures a Cache. The zero value is usable: memory-only
// with default bounds.
type Options struct {
	// MaxEntries bounds the in-memory tier's entry count. Zero selects
	// the default of 4096; negative disables the in-memory tier (every
	// hit reads through to disk).
	MaxEntries int
	// MaxBytes bounds the in-memory tier's total value bytes. Zero
	// selects the default of 256 MiB.
	MaxBytes int64
	// Dir, when non-empty, arms the persistent tier: results are
	// appended to Dir/cells.log and reloaded on New, so a restarted
	// daemon keeps its cache. The directory is created if missing.
	Dir string
}

const (
	defaultMaxEntries = 4096
	defaultMaxBytes   = 256 << 20
)

// Stats is a point-in-time counter snapshot; see Cache.Stats.
type Stats struct {
	// Hits counts lookups served from either tier; Misses the rest.
	// A singleflight follower counts as a hit (it never simulated).
	Hits, Misses uint64
	// DiskHits is the subset of Hits served by the persistent tier.
	DiskHits uint64
	// Collapsed counts singleflight followers: concurrent Do calls for
	// a key that shared another caller's in-flight computation.
	Collapsed uint64
	// Evictions counts entries dropped from the memory tier by bounds.
	Evictions uint64
	// MemEntries and MemBytes describe the memory tier right now;
	// DiskEntries the persistent index (0 when the disk tier is off).
	MemEntries  int
	MemBytes    int64
	DiskEntries int
}

type entry struct {
	key string
	val []byte
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is a two-tier content-addressed result cache. All methods are
// safe for concurrent use.
type Cache struct {
	maxEntries int
	maxBytes   int64

	mu       sync.Mutex
	lru      *list.List // front = most recent; values are *entry
	byKey    map[string]*list.Element
	memBytes int64
	flights  map[string]*flight
	stats    Stats

	disk *diskTier // nil when Options.Dir is empty
}

// New opens a cache. With Options.Dir set, the persistent log is
// replayed into the index (corrupted tails and records are skipped);
// errors creating or reading the directory are returned, not fatal to
// the caller's data.
func New(opts Options) (*Cache, error) {
	c := &Cache{
		maxEntries: opts.MaxEntries,
		maxBytes:   opts.MaxBytes,
		lru:        list.New(),
		byKey:      make(map[string]*list.Element),
		flights:    make(map[string]*flight),
	}
	if c.maxEntries == 0 {
		c.maxEntries = defaultMaxEntries
	}
	if c.maxBytes == 0 {
		c.maxBytes = defaultMaxBytes
	}
	if opts.Dir != "" {
		d, err := openDiskTier(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("cellcache: opening disk tier: %w", err)
		}
		c.disk = d
	}
	return c, nil
}

// Close releases the persistent tier's file handle. The cache must not
// be used afterwards.
func (c *Cache) Close() error {
	if c.disk != nil {
		return c.disk.close()
	}
	return nil
}

// Get returns the cached bytes for key. The returned slice is shared:
// callers must not modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	val, ok := c.lookup(key)
	c.mu.Lock()
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	c.mu.Unlock()
	return val, ok
}

// lookup reads through both tiers without touching the hit/miss
// counters (Do accounts for its lookups itself).
func (c *Cache) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true
	}
	disk := c.disk
	c.mu.Unlock()

	if disk != nil {
		if val, ok := disk.get(key); ok {
			c.mu.Lock()
			c.stats.DiskHits++
			c.insertMemLocked(key, val)
			c.mu.Unlock()
			return val, true
		}
	}
	return nil, false
}

// Put stores val under key in both tiers. The cache takes ownership of
// val; callers must not modify it afterwards.
func (c *Cache) Put(key string, val []byte) error {
	c.mu.Lock()
	c.insertMemLocked(key, val)
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		if err := disk.put(key, val); err != nil {
			return fmt.Errorf("cellcache: persisting %s: %w", key, err)
		}
	}
	return nil
}

// Do returns the cached bytes for key, computing them with fn on a
// miss. Concurrent Do calls for the same key run fn once: the leader
// computes and stores, followers block and share the result. cached
// reports whether the bytes came without running fn in this call —
// from either tier or from another caller's flight. fn errors are
// returned to every waiter and never cached.
func (c *Cache) Do(key string, fn func() ([]byte, error)) (val []byte, cached bool, err error) {
	if val, ok := c.lookup(key); ok {
		c.mu.Lock()
		c.stats.Hits++
		c.mu.Unlock()
		return val, true, nil
	}
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.stats.Hits++
		c.stats.Collapsed++
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		return f.val, true, nil
	}
	// Re-check the memory tier under the lock: a flight that landed
	// between the lookup above and here must be a hit, not a second run.
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.Misses++
	c.mu.Unlock()

	f.val, f.err = fn()
	if f.err == nil {
		if perr := c.Put(key, f.val); perr != nil {
			// The result is valid even if persisting it failed; keep
			// serving it and surface the disk problem to the leader only.
			err = perr
		}
	}
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, false, f.err
	}
	return f.val, false, err
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.MemEntries = c.lru.Len()
	s.MemBytes = c.memBytes
	if c.disk != nil {
		s.DiskEntries = c.disk.len()
	}
	return s
}

// insertMemLocked adds or refreshes a memory-tier entry and enforces
// the tier's bounds. c.mu must be held.
func (c *Cache) insertMemLocked(key string, val []byte) {
	if c.maxEntries < 0 {
		return // memory tier disabled
	}
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*entry)
		c.memBytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.lru.MoveToFront(el)
	} else {
		c.byKey[key] = c.lru.PushFront(&entry{key: key, val: val})
		c.memBytes += int64(len(val))
	}
	for c.lru.Len() > c.maxEntries || (c.memBytes > c.maxBytes && c.lru.Len() > 1) {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry)
		c.lru.Remove(oldest)
		delete(c.byKey, e.key)
		c.memBytes -= int64(len(e.val))
		c.stats.Evictions++
	}
}
