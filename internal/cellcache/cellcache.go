// Package cellcache memoizes simulation cell results by content
// address. A cell's fingerprint (stash.RunSpec.Fingerprint) fully
// determines its result — every simulation is deterministic — so the
// cache stores the cell's serialized result bytes and a hit replays
// them byte-identically without running a single engine cycle.
//
// The package is layered (DESIGN.md §12):
//
//	Cache front   namespaces · singleflight · TTL · framing/codec · stats
//	      │
//	Engine        Memory (LRU) · Log (append-only CRC log) · Pairtree
//	              (one file per entry under hash-prefix directories)
//
// The Cache front owns every policy — concurrent fills of a key
// collapse to one computation (singleflight), failures are never
// cached, values are framed with a self-describing codec/expiry header
// and optionally gzip-compressed, TTL leases extend on read, and keys
// are prefixed with a tenant namespace so tenants can never read each
// other's cells. Engines are dumb byte stores behind the Engine
// interface; a persistent engine gets a Memory front tier composed in
// front of it, with store-tier hits promoted into memory.
package cellcache

import (
	"fmt"
	"sync"
	"time"
)

// Options configures New, the programmatic constructor predating the
// engine-spec URL grammar (see ParseSpec/Open for the full surface).
// The zero value is usable: memory-only with default bounds.
type Options struct {
	// MaxEntries bounds the in-memory tier's entry count. Zero selects
	// the default of 4096; negative disables the in-memory tier (every
	// hit reads through to the persistent engine).
	MaxEntries int
	// MaxBytes bounds the in-memory tier's total value bytes. Zero
	// selects the default of 256 MiB.
	MaxBytes int64
	// Dir, when non-empty, selects the Log engine rooted at Dir, so a
	// restarted daemon keeps its cache.
	Dir string
}

// New opens a cache described by Options. It is equivalent to opening
// the spec "memory://?entries=..&bytes=.." (Dir empty) or
// "log://Dir?entries=..&bytes=..".
func New(opts Options) (*Cache, error) {
	sp := Spec{Scheme: "memory", Entries: opts.MaxEntries, Bytes: opts.MaxBytes}
	if opts.Dir != "" {
		sp.Scheme, sp.Path = "log", opts.Dir
	}
	return sp.Open()
}

// Stats is a point-in-time counter snapshot; see Cache.Stats.
type Stats struct {
	// Hits counts lookups served from any tier; Misses the rest. A
	// singleflight follower counts as a hit (it never simulated).
	Hits, Misses uint64
	// MemHits and StoreHits split Hits by serving tier (followers are
	// in neither). A warm entry costs one StoreHit, then promotion
	// makes repeats MemHits.
	MemHits, StoreHits uint64
	// Collapsed counts singleflight followers: concurrent Do calls for
	// a key that shared another caller's in-flight computation.
	Collapsed uint64
	// Evictions counts entries dropped from the memory tier by bounds.
	Evictions uint64
	// Expired counts entries dropped because their TTL lease lapsed.
	Expired uint64
	// BytesRaw and BytesStored account compression on the stored tier:
	// payload bytes before framing vs framed (compressed) bytes
	// written. Their ratio is the compression ratio.
	BytesRaw, BytesStored uint64
	// RemoteFills, RemoteMisses, and RemoteErrors describe the remote
	// peer-fill tier when one is configured (remote+ specs): lookups a
	// peer answered, lookups no peer had, and peer fetches that failed.
	RemoteFills, RemoteMisses, RemoteErrors uint64
	// PutErrors counts store-tier writes that failed against the
	// engine; each one is a result that was served degraded (computed
	// but not persisted).
	PutErrors uint64
	// BreakerTrips counts closed→open transitions of the store tier's
	// circuit breaker; BreakerState is its state right now
	// (BreakerClosed, BreakerHalfOpen, or BreakerOpen).
	BreakerTrips uint64
	BreakerState int
	// MemEntries and MemBytes describe the memory tier right now;
	// StoreEntries the persistent engine (0 when memory-only).
	MemEntries   int
	MemBytes     int64
	StoreEntries int
}

// NamespaceStats are the per-tenant counters behind stashd's
// per-namespace metrics.
type NamespaceStats struct {
	Hits, Misses          uint64
	BytesRaw, BytesStored uint64
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

const (
	tierMiss = iota
	tierMem
	tierStore
)

// Cache is the content-addressed result cache front over one or two
// engines. All methods are safe for concurrent use.
type Cache struct {
	mem     *Memory  // front tier; nil when disabled (Spec.Entries < 0)
	store   Engine   // persistent engine; nil for memory-only
	breaker *breaker // store-tier circuit breaker; nil when disabled or memory-only
	codec   byte     // codec for newly stored payloads
	ttl     time.Duration
	now     func() time.Time // injectable clock (tests)

	mu      sync.Mutex
	flights map[string]*flight
	stats   Stats
	ns      map[string]*NamespaceStats
}

func newCache(codec byte, ttl time.Duration) *Cache {
	return &Cache{
		codec:   codec,
		ttl:     ttl,
		now:     time.Now,
		flights: make(map[string]*flight),
		ns:      make(map[string]*NamespaceStats),
	}
}

// PersistError reports that a value was computed successfully but
// could not be written to the store tier — the result in hand is
// valid and must be served; only its durability is degraded. Do wraps
// every store-side write failure (engine I/O errors and
// breaker-skipped writes alike) in this type so callers can tell
// "serve it, count it, move on" apart from a failed computation.
type PersistError struct{ Err error }

func (e *PersistError) Error() string {
	return "cellcache: result computed but not persisted: " + e.Err.Error()
}
func (e *PersistError) Unwrap() error { return e.Err }

// storeAllowed reports whether store-tier operations may proceed
// under the breaker. With no breaker, always.
func (c *Cache) storeAllowed() bool {
	return c.breaker == nil || c.breaker.allow()
}

// storeWrite writes one frame to the store engine, feeding the
// breaker the outcome and counting engine failures.
func (c *Cache) storeWrite(k string, frame []byte) error {
	if !c.storeAllowed() {
		return ErrStoreUnavailable
	}
	if err := c.store.Put(k, frame); err != nil {
		if c.breaker != nil {
			c.breaker.failure()
		}
		c.mu.Lock()
		c.stats.PutErrors++
		c.mu.Unlock()
		return err
	}
	if c.breaker != nil {
		c.breaker.success()
	}
	return nil
}

// Close releases the engines. The cache must not be used afterwards.
func (c *Cache) Close() error {
	if c.mem != nil {
		c.mem.Close()
	}
	if c.store != nil {
		return c.store.Close()
	}
	return nil
}

// engineKey prefixes key with the tenant namespace. The empty
// namespace maps to the bare key, so single-tenant callers pay
// nothing. Namespaces must not contain ':' (stashd derives them as
// hex digests, see internal/serve).
func engineKey(ns, key string) string {
	if ns == "" {
		return key
	}
	return ns + ":" + key
}

// memCodec is the codec for memory-tier frames: raw when a persistent
// engine sits behind (hot hits must not pay decompression; the store
// copy carries the compression), the configured codec when memory is
// the only tier (trading CPU to fit more cells under MaxBytes).
func (c *Cache) memCodec() byte {
	if c.store != nil {
		return CodecRaw
	}
	return c.codec
}

// Get returns the cached bytes for key in namespace ns. The returned
// slice is shared: callers must not modify it.
func (c *Cache) Get(ns, key string) ([]byte, bool) {
	val, tier := c.lookup(engineKey(ns, key))
	c.account(ns, tier)
	return val, tier != tierMiss
}

// account updates the global and per-namespace hit/miss counters for
// one lookup outcome.
func (c *Cache) account(ns string, tier int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nsLocked(ns)
	switch tier {
	case tierMem:
		c.stats.Hits++
		c.stats.MemHits++
		n.Hits++
	case tierStore:
		c.stats.Hits++
		c.stats.StoreHits++
		n.Hits++
	default:
		c.stats.Misses++
		n.Misses++
	}
}

func (c *Cache) nsLocked(ns string) *NamespaceStats {
	n, ok := c.ns[ns]
	if !ok {
		n = &NamespaceStats{}
		c.ns[ns] = n
	}
	return n
}

// lookup reads through both tiers without touching the hit/miss
// counters (Get and Do account for their lookups themselves). Expired
// or undecodable frames are dropped and read as misses; store-tier
// hits are promoted into the memory tier; reads extend TTL leases.
func (c *Cache) lookup(k string) ([]byte, int) {
	now := c.now()
	if c.mem != nil {
		if frame, ok := c.mem.Get(k); ok {
			payload, expiry, _, err := decodeFrame(frame)
			switch {
			case err != nil:
				c.mem.Delete(k)
			case c.expired(expiry, now):
				c.dropExpired(k, true)
			default:
				c.extend(k, payload, expiry, now)
				return payload, tierMem
			}
		}
	}
	if c.store != nil && c.storeAllowed() {
		if frame, ok := c.store.Get(k); ok {
			payload, expiry, _, err := decodeFrame(frame)
			switch {
			case err != nil:
				c.store.Delete(k)
			case c.expired(expiry, now):
				c.dropExpired(k, false)
			default:
				expiry = c.extend(k, payload, expiry, now)
				if c.mem != nil {
					if mf, err := encodeFrame(c.memCodec(), expiry, payload); err == nil {
						c.mem.Put(k, mf)
					}
				}
				return payload, tierStore
			}
		}
	}
	return nil, tierMiss
}

func (c *Cache) expired(expiry int64, now time.Time) bool {
	return expiry != 0 && now.UnixNano() >= expiry
}

// dropExpired removes an expired entry from both tiers. A memory copy
// never outlives the store copy's lease (extensions update both), so
// expiry in memory implies expiry on the store.
func (c *Cache) dropExpired(k string, inMem bool) {
	if inMem && c.mem != nil {
		c.mem.Delete(k)
	}
	if c.store != nil {
		c.store.Delete(k)
	}
	c.mu.Lock()
	c.stats.Expired++
	c.mu.Unlock()
}

// extend implements extend-on-read: once a lease has burned through
// half its TTL, a read renews it to now+TTL in both tiers. The
// half-life threshold bounds rewrite traffic (a hot entry rewrites at
// most once per TTL/2) while guaranteeing an entry read at least once
// per TTL/2 never expires. Returns the (possibly renewed) expiry.
func (c *Cache) extend(k string, payload []byte, expiry int64, now time.Time) int64 {
	if c.ttl <= 0 || expiry == 0 || expiry-now.UnixNano() >= int64(c.ttl)/2 {
		return expiry
	}
	renewed := now.Add(c.ttl).UnixNano()
	if c.mem != nil {
		if mf, err := encodeFrame(c.memCodec(), renewed, payload); err == nil {
			c.mem.Put(k, mf)
		}
	}
	if c.store != nil {
		if sf, err := encodeFrame(c.codec, renewed, payload); err == nil {
			c.storeWrite(k, sf) // best effort; the read already succeeded
		}
	}
	return renewed
}

// Put stores val under key in namespace ns, in both tiers. The cache
// takes ownership of val; callers must not modify it afterwards.
func (c *Cache) Put(ns, key string, val []byte) error {
	return c.put(ns, engineKey(ns, key), val)
}

func (c *Cache) put(ns, k string, val []byte) error {
	var expiry int64
	if c.ttl > 0 {
		expiry = c.now().Add(c.ttl).UnixNano()
	}
	if c.mem != nil {
		mf, err := encodeFrame(c.memCodec(), expiry, val)
		if err != nil {
			return fmt.Errorf("cellcache: framing %s: %w", k, err)
		}
		c.mem.Put(k, mf)
		if c.store == nil {
			c.accountStored(ns, len(val), len(mf))
		}
	}
	if c.store != nil {
		sf, err := encodeFrame(c.codec, expiry, val)
		if err != nil {
			return fmt.Errorf("cellcache: framing %s: %w", k, err)
		}
		if err := c.storeWrite(k, sf); err != nil {
			return fmt.Errorf("cellcache: persisting %s: %w", k, err)
		}
		c.accountStored(ns, len(val), len(sf))
	}
	return nil
}

func (c *Cache) accountStored(ns string, raw, stored int) {
	c.mu.Lock()
	c.stats.BytesRaw += uint64(raw)
	c.stats.BytesStored += uint64(stored)
	n := c.nsLocked(ns)
	n.BytesRaw += uint64(raw)
	n.BytesStored += uint64(stored)
	c.mu.Unlock()
}

// Do returns the cached bytes for key in namespace ns, computing them
// with fn on a miss. Concurrent Do calls for the same (ns, key) run fn
// once: the leader computes and stores, followers block and share the
// result. cached reports whether the bytes came without running fn in
// this call — from either tier or from another caller's flight. fn
// errors are returned to every waiter and never cached.
//
// A computed-but-not-persisted value — the engine write failed or the
// breaker skipped it — is returned alongside a *PersistError: val is
// valid and servable, only its durability is degraded. The disk being
// sick must never fail a computation that succeeded.
func (c *Cache) Do(ns, key string, fn func() ([]byte, error)) (val []byte, cached bool, err error) {
	k := engineKey(ns, key)
	if val, tier := c.lookup(k); tier != tierMiss {
		c.account(ns, tier)
		return val, true, nil
	}
	c.mu.Lock()
	if f, ok := c.flights[k]; ok {
		c.stats.Hits++
		c.stats.Collapsed++
		c.nsLocked(ns).Hits++
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		return f.val, true, nil
	}
	// Re-check the memory tier under the flight lock: a leader deletes
	// its flight only after Put, so a flight that landed between the
	// lookup above and here is visible either in the flight map or in
	// the memory tier — never a second run.
	if c.mem != nil {
		if frame, ok := c.mem.Get(k); ok {
			if payload, expiry, _, err := decodeFrame(frame); err == nil && !c.expired(expiry, c.now()) {
				c.stats.Hits++
				c.stats.MemHits++
				c.nsLocked(ns).Hits++
				c.mu.Unlock()
				return payload, true, nil
			}
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.stats.Misses++
	c.nsLocked(ns).Misses++
	c.mu.Unlock()

	f.val, f.err = fn()
	if f.err == nil {
		if perr := c.put(ns, k, f.val); perr != nil {
			// The result is valid even if persisting it failed; keep
			// serving it and surface the disk problem to the leader only,
			// typed so callers can serve degraded instead of failing.
			err = &PersistError{Err: perr}
		}
	}
	c.mu.Lock()
	delete(c.flights, k)
	c.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, false, f.err
	}
	return f.val, false, err
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	if c.mem != nil {
		s.MemEntries, s.MemBytes, s.Evictions = c.mem.usage()
	}
	if c.store != nil {
		s.StoreEntries = c.store.Len()
	}
	if r, ok := c.store.(*Remote); ok {
		s.RemoteFills, s.RemoteMisses, s.RemoteErrors = r.snapshot()
	}
	if c.breaker != nil {
		s.BreakerState, s.BreakerTrips = c.breaker.snapshot()
	}
	return s
}

// PeekFrame returns the stored frame for an engine key (ns:fingerprint
// or a bare fingerprint) exactly as a tier holds it — no stats, no TTL
// extension, no promotion, and, crucially, no remote tier: a Remote
// store is read through its Local engine, so one shard peeking another
// can never cascade into peer-of-peer fetches. Expired and undecodable
// frames read as absent. This is the read side of GET /v1/cellframe,
// the shard-to-shard peer-fill protocol.
func (c *Cache) PeekFrame(key string) ([]byte, bool) {
	now := c.now()
	usable := func(frame []byte) bool {
		payload, expiry, _, err := decodeFrame(frame)
		return err == nil && payload != nil && !c.expired(expiry, now)
	}
	if c.mem != nil {
		if frame, ok := c.mem.Get(key); ok && usable(frame) {
			return frame, true
		}
	}
	store := c.store
	if r, ok := store.(*Remote); ok {
		store = r.Local()
	}
	if store != nil && c.storeAllowed() {
		if frame, ok := store.Get(key); ok && usable(frame) {
			return frame, true
		}
	}
	return nil, false
}

// Probe round-trips a sentinel entry through every tier — write, read
// back, compare, delete — straight against the engines (bypassing the
// breaker), verifying the cache is usable before a daemon starts
// taking traffic. A broken -cache target fails fast at boot with a
// clear error instead of erroring on the first live request.
func (c *Cache) Probe() error {
	const key = "!probe" // '!' can never appear in a ns:fingerprint key
	want := []byte("stashd startup probe")
	frame, err := encodeFrame(c.codec, 0, want)
	if err != nil {
		return fmt.Errorf("cellcache: probe framing: %w", err)
	}
	probeEngine := func(tier string, e Engine) error {
		if err := e.Put(key, frame); err != nil {
			return fmt.Errorf("cellcache: %s tier probe write: %w", tier, err)
		}
		got, ok := e.Get(key)
		if !ok {
			return fmt.Errorf("cellcache: %s tier probe read: written entry not found", tier)
		}
		payload, _, _, err := decodeFrame(got)
		if err != nil {
			return fmt.Errorf("cellcache: %s tier probe read: %w", tier, err)
		}
		if string(payload) != string(want) {
			return fmt.Errorf("cellcache: %s tier probe read back %d bytes, want %d", tier, len(payload), len(want))
		}
		e.Delete(key)
		return nil
	}
	if c.mem != nil {
		if err := probeEngine("memory", c.mem); err != nil {
			return err
		}
	}
	if c.store != nil {
		if err := probeEngine("store", c.store); err != nil {
			return err
		}
	}
	return nil
}

// Namespaces snapshots the per-tenant counters, keyed by namespace.
func (c *Cache) Namespaces() map[string]NamespaceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]NamespaceStats, len(c.ns))
	for ns, n := range c.ns {
		out[ns] = *n
	}
	return out
}

// purgeExpired drops entries whose lease already lapsed from the
// persistent engine. Run once at open, so a restarted daemon does not
// resurrect expired cells (and their disk space, for Pairtree, is
// reclaimed). frameExpiry reads only the header — no decompression.
func (c *Cache) purgeExpired() {
	now := c.now()
	var expired []string
	c.store.Keys(func(k string) bool {
		if frame, ok := c.store.Get(k); ok {
			if expiry, ok := frameExpiry(frame); ok && c.expired(expiry, now) {
				expired = append(expired, k)
			}
		}
		return true
	})
	for _, k := range expired {
		c.store.Delete(k)
	}
	if len(expired) > 0 {
		c.mu.Lock()
		c.stats.Expired += uint64(len(expired))
		c.mu.Unlock()
	}
}
