package cellcache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Log is the append-only persistent engine: one file, Dir/cells.log:
//
//	header  "stashcellcache1\n"
//	record  u32 keyLen | u32 valLen | key | val | u32 crc32(key|val)
//
// little-endian throughout. Append-only keeps crash behaviour simple:
// a torn write can only damage the tail, which the loader truncates
// away; a bit-flipped record fails its checksum and is skipped. Put is
// an upsert by appending — the loader lets later records win — so a
// TTL extension rewrite is just another append. Delete drops the key
// from the in-memory index only; the record's bytes stay in the log
// (and are re-indexed on restart), which is safe because the Cache
// front re-checks every frame's expiry on read.
type Log struct {
	mu    sync.Mutex
	f     *os.File
	size  int64 // current append offset
	index map[string]logRef
}

const (
	logName      = "cells.log"
	logMagic     = "stashcellcache1\n"
	recordPrefix = 8 // two u32 lengths
)

type logRef struct {
	off    int64 // record start (the length prefix)
	keyLen uint32
	valLen uint32
}

// OpenLog opens (creating if needed) the log engine rooted at dir and
// replays the log into its index. Corrupted records are skipped and a
// torn tail is truncated; only I/O errors and a foreign header are
// reported.
func OpenLog(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, err
	}
	d := &Log{f: f, index: make(map[string]logRef)}
	if err := d.load(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// load replays the log. Later records for a key overwrite earlier ones
// in the index (append-as-upsert).
func (d *Log) load() error {
	st, err := d.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		if _, err := d.f.Write([]byte(logMagic)); err != nil {
			return err
		}
		d.size = int64(len(logMagic))
		return nil
	}
	hdr := make([]byte, len(logMagic))
	if _, err := io.ReadFull(io.NewSectionReader(d.f, 0, int64(len(hdr))), hdr); err != nil || string(hdr) != logMagic {
		return fmt.Errorf("%s is not a cell cache log (bad header)", d.f.Name())
	}

	off := int64(len(logMagic))
	buf := make([]byte, 0, 4096)
	for off < st.Size() {
		var prefix [recordPrefix]byte
		if _, err := d.f.ReadAt(prefix[:], off); err != nil {
			break // torn tail
		}
		keyLen := binary.LittleEndian.Uint32(prefix[0:4])
		valLen := binary.LittleEndian.Uint32(prefix[4:8])
		if keyLen == 0 || keyLen > maxKeyLen || valLen > maxValLen {
			break // framing lost; everything after is unusable
		}
		recLen := int64(recordPrefix) + int64(keyLen) + int64(valLen) + 4
		if off+recLen > st.Size() {
			break // truncated record
		}
		body := int(keyLen) + int(valLen) + 4
		if cap(buf) < body {
			buf = make([]byte, body)
		}
		buf = buf[:body]
		if _, err := d.f.ReadAt(buf, off+recordPrefix); err != nil {
			break
		}
		key := buf[:keyLen]
		sum := binary.LittleEndian.Uint32(buf[body-4:])
		if crc32.ChecksumIEEE(buf[:body-4]) == sum {
			d.index[string(key)] = logRef{off: off, keyLen: keyLen, valLen: valLen}
		}
		// Checksum mismatch: the record is framed but corrupt — skip it
		// and keep scanning; later records are still good.
		off += recLen
	}
	// Drop any torn tail so future appends produce a well-formed log.
	if off < st.Size() {
		if err := d.f.Truncate(off); err != nil {
			return err
		}
	}
	d.size = off
	return nil
}

// Get reads and verifies key's record. A record that fails
// verification (bit rot since load) is dropped from the index and
// reported as a miss.
func (d *Log) Get(key string) ([]byte, bool) {
	d.mu.Lock()
	ref, ok := d.index[key]
	d.mu.Unlock()
	if !ok {
		return nil, false
	}
	body := int(ref.keyLen) + int(ref.valLen) + 4
	buf := make([]byte, body)
	if _, err := d.f.ReadAt(buf, ref.off+recordPrefix); err != nil {
		d.Delete(key)
		return nil, false
	}
	sum := binary.LittleEndian.Uint32(buf[body-4:])
	if crc32.ChecksumIEEE(buf[:body-4]) != sum || string(buf[:ref.keyLen]) != key {
		d.Delete(key)
		return nil, false
	}
	return buf[ref.keyLen : body-4], true
}

// Put appends a record and points the index at it; an existing key's
// older record becomes dead weight in the file but the new one wins,
// both now and on reload.
func (d *Log) Put(key string, val []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("invalid cache key length %d", len(key))
	}
	if len(val) > maxValLen {
		return errors.New("cache value too large for the log engine")
	}
	rec := make([]byte, recordPrefix+len(key)+len(val)+4)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	copy(rec[recordPrefix:], key)
	copy(rec[recordPrefix+len(key):], val)
	sum := crc32.ChecksumIEEE(rec[recordPrefix : len(rec)-4])
	binary.LittleEndian.PutUint32(rec[len(rec)-4:], sum)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.f.WriteAt(rec, d.size); err != nil {
		return err
	}
	d.index[key] = logRef{off: d.size, keyLen: uint32(len(key)), valLen: uint32(len(val))}
	d.size += int64(len(rec))
	return nil
}

func (d *Log) Delete(key string) {
	d.mu.Lock()
	delete(d.index, key)
	d.mu.Unlock()
}

func (d *Log) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index)
}

func (d *Log) Keys(yield func(key string) bool) {
	d.mu.Lock()
	keys := make([]string, 0, len(d.index))
	for k := range d.index {
		keys = append(keys, k)
	}
	d.mu.Unlock()
	for _, k := range keys {
		if !yield(k) {
			return
		}
	}
}

func (d *Log) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}
