package cellcache

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file is the cross-engine conformance suite: one table of
// engines (and one of cache specs layered over them) driven through
// the semantics every implementation must share. A new engine — the
// distributed tier's remote backend included — earns its place by
// adding a row here, not by hand-written parallel tests.

type engineCase struct {
	name       string
	persistent bool
	open       func(t *testing.T, dir string) Engine
	// corrupt damages every stored entry's bytes on disk (no-op for
	// volatile engines).
	corrupt func(t *testing.T, dir string)
}

var engineCases = []engineCase{
	{
		name: "memory",
		open: func(t *testing.T, dir string) Engine { return NewMemory(0, 0) },
	},
	{
		name:       "log",
		persistent: true,
		open: func(t *testing.T, dir string) Engine {
			e, err := OpenLog(dir)
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
		corrupt: func(t *testing.T, dir string) {
			corruptFile(t, filepath.Join(dir, logName), len(logMagic))
		},
	},
	{
		name:       "pairtree",
		persistent: true,
		open: func(t *testing.T, dir string) Engine {
			e, err := OpenPairtree(dir)
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
		corrupt: corruptPairtree,
	},
	// A healed Faulty wrapper must be indistinguishable from its inner
	// engine — the chaos harness's "replay after heal" guarantee starts
	// with the wrapper itself conforming.
	{
		name:       "faulty-pairtree",
		persistent: true,
		open: func(t *testing.T, dir string) Engine {
			e, err := OpenPairtree(dir)
			if err != nil {
				t.Fatal(err)
			}
			f := NewFaulty(e, FaultProfile{Seed: 9, PutErr: 0.5, GetErr: 0.5, Torn: 0.5, DownFirst: 4})
			f.Heal()
			return f
		},
		corrupt: corruptPairtree,
	},
}

func corruptPairtree(t *testing.T, dir string) {
	n := 0
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, pairtreeSuffix) {
			corruptFile(t, path, 0)
			n++
		}
		return nil
	})
	if n == 0 {
		t.Fatal("no pairtree entry files to corrupt")
	}
}

// corruptFile flips a byte in the back half of the file (inside value
// bytes, past headers at off), simulating bit rot.
func corruptFile(t *testing.T, path string, off int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) <= off {
		t.Fatalf("%s too short to corrupt", path)
	}
	i := off + (len(raw)-off)*3/4
	raw[i] ^= 0xff
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
}

// TestEngineConformance drives the raw Engine contract against every
// implementation.
func TestEngineConformance(t *testing.T) {
	for _, ec := range engineCases {
		t.Run(ec.name, func(t *testing.T) {
			dir := t.TempDir()
			e := ec.open(t, dir)

			// Round trip, including binary values and the empty value.
			vals := map[string][]byte{
				"k-empty":  {},
				"k-binary": {0, 1, 0xff, '\n', 0x80, 0},
				"k-big":    bytes.Repeat([]byte{0xAB}, 1<<16),
			}
			for k, v := range vals {
				if err := e.Put(k, v); err != nil {
					t.Fatalf("Put(%s): %v", k, err)
				}
			}
			for k, want := range vals {
				got, ok := e.Get(k)
				if !ok || !bytes.Equal(got, want) {
					t.Fatalf("Get(%s) = %v, %v; want %d bytes", k, len(got), ok, len(want))
				}
			}
			if _, ok := e.Get("k-absent"); ok {
				t.Error("hit on absent key")
			}
			if n := e.Len(); n != len(vals) {
				t.Errorf("Len = %d, want %d", n, len(vals))
			}

			// Put is an upsert: last write wins.
			if err := e.Put("k-binary", []byte("second")); err != nil {
				t.Fatal(err)
			}
			if v, _ := e.Get("k-binary"); string(v) != "second" {
				t.Errorf("upsert did not win: %q", v)
			}
			if n := e.Len(); n != len(vals) {
				t.Errorf("upsert changed Len to %d", n)
			}

			// Keys yields exactly the stored set; early stop works.
			seen := map[string]bool{}
			e.Keys(func(k string) bool { seen[k] = true; return true })
			if len(seen) != len(vals) {
				t.Errorf("Keys yielded %d keys, want %d", len(seen), len(vals))
			}
			for k := range vals {
				if !seen[k] {
					t.Errorf("Keys missed %s", k)
				}
			}
			stopped := 0
			e.Keys(func(string) bool { stopped++; return false })
			if stopped != 1 {
				t.Errorf("yield-false did not stop the walk (%d yields)", stopped)
			}

			// Delete is effective and idempotent.
			e.Delete("k-empty")
			e.Delete("k-empty")
			e.Delete("k-never-existed")
			if _, ok := e.Get("k-empty"); ok {
				t.Error("deleted key still served")
			}
			if n := e.Len(); n != len(vals)-1 {
				t.Errorf("Len after delete = %d, want %d", n, len(vals)-1)
			}

			if !ec.persistent {
				return
			}

			// Restart survival: upserts and deletes... deletes need not
			// survive (the log keeps dead records), but last-wins must.
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			e2 := ec.open(t, dir)
			if v, ok := e2.Get("k-binary"); !ok || string(v) != "second" {
				t.Errorf("after restart, upsert lost: %q, %v", v, ok)
			}
			if v, ok := e2.Get("k-big"); !ok || !bytes.Equal(v, vals["k-big"]) {
				t.Errorf("after restart, k-big lost (%d bytes, %v)", len(v), ok)
			}

			// Corruption tolerance: damaged entries are misses, never
			// errors, and the engine keeps accepting writes.
			e2.Close()
			ec.corrupt(t, dir)
			e3 := ec.open(t, dir)
			defer e3.Close()
			if v, ok := e3.Get("k-big"); ok && !bytes.Equal(v, vals["k-big"]) {
				t.Error("corrupted value served with wrong bytes instead of missing")
			}
			if err := e3.Put("k-after", []byte("post-corruption")); err != nil {
				t.Fatalf("Put after corruption: %v", err)
			}
			if v, ok := e3.Get("k-after"); !ok || string(v) != "post-corruption" {
				t.Errorf("post-corruption write unreadable: %q, %v", v, ok)
			}
		})
	}
}

// cacheCase layers the Cache front over each engine × codec.
type cacheCase struct {
	name       string
	persistent bool
	spec       func(dir, params string) string
}

var cacheCases = []cacheCase{
	{"memory", false, func(dir, params string) string { return "memory://" + params }},
	{"memory-gzip", false, func(dir, params string) string { return "memory://" + join(params, "compress=gzip") }},
	{"log", true, func(dir, params string) string { return "log://" + dir + params }},
	{"log-gzip", true, func(dir, params string) string { return "log://" + dir + join(params, "compress=gzip") }},
	{"pairtree", true, func(dir, params string) string { return "pairtree://" + dir + params }},
	{"pairtree-gzip", true, func(dir, params string) string { return "pairtree://" + dir + join(params, "compress=gzip") }},
	// Zero-probability fault wrapper: the full Cache contract must hold
	// through the Faulty seam (and the default breaker) unchanged.
	{"faulty-pairtree", true, func(dir, params string) string { return "faulty+pairtree://" + dir + params }},
	{"faulty-pairtree-gzip", true, func(dir, params string) string {
		return "faulty+pairtree://" + dir + join(params, "compress=gzip")
	}},
}

// join appends a query parameter to an optional existing "?..." tail.
func join(params, extra string) string {
	if params == "" {
		return "?" + extra
	}
	return params + "&" + extra
}

// TestCacheConformanceRoundTrip: puts replay byte-identically under
// every engine × codec combination, including after a restart for the
// persistent engines and with the memory tier disabled (forcing every
// read through the store).
func TestCacheConformanceRoundTrip(t *testing.T) {
	payload := func(i int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf(`{"cell":%d,"cycles":%d} `, i, i*7717)), 1+i%40)
	}
	for _, cc := range cacheCases {
		t.Run(cc.name, func(t *testing.T) {
			dir := t.TempDir()
			c := openSpec(t, cc.spec(dir, ""), "")
			for i := 0; i < 50; i++ {
				if err := c.Put("ns", fmt.Sprint(i), payload(i)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 50; i++ {
				v, ok := c.Get("ns", fmt.Sprint(i))
				if !ok || !bytes.Equal(v, payload(i)) {
					t.Fatalf("round trip %d: ok=%v", i, ok)
				}
			}
			if !cc.persistent {
				return
			}
			c.Close()
			// Restart, memory tier off: byte identity straight off the engine.
			c2 := openSpec(t, cc.spec(dir, "?entries=-1"), "")
			for i := 0; i < 50; i++ {
				v, ok := c2.Get("ns", fmt.Sprint(i))
				if !ok || !bytes.Equal(v, payload(i)) {
					t.Fatalf("restart round trip %d: ok=%v", i, ok)
				}
			}
			if s := c2.Stats(); s.StoreHits != 50 || s.MemHits != 0 {
				t.Errorf("all hits should be store-tier: %+v", s)
			}
		})
	}
}

// TestCacheConformanceEviction: the memory tier stays bounded under
// every spec; with a persistent engine behind it, evicted entries are
// still served (from the store) and re-promoted.
func TestCacheConformanceEviction(t *testing.T) {
	for _, cc := range cacheCases {
		t.Run(cc.name, func(t *testing.T) {
			c := openSpec(t, cc.spec(t.TempDir(), "?entries=4"), "")
			for i := 0; i < 12; i++ {
				c.Put("", fmt.Sprintf("k%d", i), []byte{byte(i)})
			}
			s := c.Stats()
			if s.MemEntries > 4 || s.Evictions < 8 {
				t.Fatalf("memory tier unbounded: %+v", s)
			}
			_, ok := c.Get("", "k0")
			if cc.persistent {
				if !ok {
					t.Error("evicted entry lost despite persistent engine")
				}
				if s := c.Stats(); s.StoreHits != 1 {
					t.Errorf("evicted entry not served by store tier: %+v", s)
				}
				// Promoted: the repeat is a memory hit.
				c.Get("", "k0")
				if s := c.Stats(); s.MemHits == 0 {
					t.Errorf("store hit not promoted: %+v", s)
				}
			} else if ok {
				t.Error("evicted entry served by a memory-only cache")
			}
		})
	}
}

// TestCacheConformanceTTL: expiry and extend-on-read behave
// identically under every engine.
func TestCacheConformanceTTL(t *testing.T) {
	for _, cc := range cacheCases {
		t.Run(cc.name, func(t *testing.T) {
			c := openSpec(t, cc.spec(t.TempDir(), "?ttl=1h"), "")
			clock := time.Now()
			c.now = func() time.Time { return clock }
			c.Put("", "hot", []byte("extended"))
			c.Put("", "cold", []byte("abandoned"))
			for i := 0; i < 6; i++ {
				clock = clock.Add(45 * time.Minute)
				if _, ok := c.Get("", "hot"); !ok {
					t.Fatalf("read-extended entry expired at step %d", i)
				}
			}
			if _, ok := c.Get("", "cold"); ok {
				t.Error("unread entry outlived its lease")
			}
			if s := c.Stats(); s.Expired == 0 {
				t.Errorf("expiry not counted: %+v", s)
			}
		})
	}
}

// TestCacheConformanceSingleflight: concurrent Do calls for one key
// collapse to one computation under every engine.
func TestCacheConformanceSingleflight(t *testing.T) {
	for _, cc := range cacheCases {
		t.Run(cc.name, func(t *testing.T) {
			c := openSpec(t, cc.spec(t.TempDir(), ""), "")
			var calls atomic.Int64
			gate := make(chan struct{})
			const n = 8
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					v, _, err := c.Do("t1", "k", func() ([]byte, error) {
						calls.Add(1)
						<-gate
						return []byte("computed"), nil
					})
					if err != nil || string(v) != "computed" {
						t.Errorf("Do = %q, %v", v, err)
					}
				}()
			}
			for c.Stats().Collapsed < n-1 {
			}
			close(gate)
			wg.Wait()
			if got := calls.Load(); got != 1 {
				t.Errorf("fn ran %d times, want 1", got)
			}
			// Failures are never cached, under any engine.
			boom := fmt.Errorf("boom")
			if _, _, err := c.Do("t1", "fail", func() ([]byte, error) { return nil, boom }); err != boom {
				t.Fatalf("err = %v", err)
			}
			if v, cached, err := c.Do("t1", "fail", func() ([]byte, error) { return []byte("ok"), nil }); err != nil || cached || string(v) != "ok" {
				t.Errorf("failure was cached: %q %v %v", v, cached, err)
			}
		})
	}
}

// TestCacheConformanceCorruption: on-disk damage reads as a miss and
// the cell is recomputed, never served wrong, under both persistent
// engines and both codecs.
func TestCacheConformanceCorruption(t *testing.T) {
	for _, cc := range cacheCases {
		if !cc.persistent {
			continue
		}
		ec := engineFor(t, cc.name)
		t.Run(cc.name, func(t *testing.T) {
			dir := t.TempDir()
			c := openSpec(t, cc.spec(dir, ""), "")
			want := bytes.Repeat([]byte("precious result "), 64)
			c.Put("", "k", want)
			c.Close()

			ec.corrupt(t, dir)
			c2 := openSpec(t, cc.spec(dir, ""), "")
			if v, ok := c2.Get("", "k"); ok && !bytes.Equal(v, want) {
				t.Fatal("corrupted entry served with wrong bytes")
			}
			// The key is a plain miss: Do recomputes and repairs it.
			v, cached, err := c2.Do("", "k", func() ([]byte, error) { return want, nil })
			if err != nil || !bytes.Equal(v, want) {
				t.Fatalf("recompute after corruption: %v %v", err, cached)
			}
			if v, ok := c2.Get("", "k"); !ok || !bytes.Equal(v, want) {
				t.Error("repair did not take")
			}
		})
	}
}

func engineFor(t *testing.T, cacheName string) engineCase {
	name := strings.TrimSuffix(cacheName, "-gzip")
	for _, ec := range engineCases {
		if ec.name == name {
			return ec
		}
	}
	t.Fatalf("no engine case %q", name)
	return engineCase{}
}
