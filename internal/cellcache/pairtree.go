package cellcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Pairtree is the sharded-directory persistent engine: one file per
// entry, fanned out under two levels of hash-prefix directories
// (HashStash's pairtree layout):
//
//	root/ab/cd/<sha256(key)[4:]>.cell
//
// where ab/cd are the first four hex digits of the key's SHA-256.
// Each file is self-describing and self-verifying:
//
//	"spt1" | u32 keyLen | u32 valLen | key | val | u32 crc32(key|val)
//
// little-endian. Writes go to a temp file in root and rename into
// place, so a crash mid-write leaves either the old entry or none —
// never a torn one — and an upsert is atomic. Unlike the Log engine
// there is no global file to rewrite or scan on eviction: Delete
// removes one file, and startup only counts entries instead of
// replaying a log, so huge caches open fast and evicting one tenant's
// cells never touches another's.
type Pairtree struct {
	root string

	mu    sync.Mutex // serializes Put/Delete bookkeeping; Gets are lock-free
	count int
}

const (
	pairtreeMagic  = "spt1"
	pairtreeSuffix = ".cell"
	pairtreeHdr    = 4 + 8 // magic + two u32 lengths
)

// OpenPairtree opens (creating if needed) the pairtree rooted at dir
// and counts the existing entries. Files are not verified at open —
// corruption is detected (and the file dropped) on first Get.
func OpenPairtree(dir string) (*Pairtree, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	p := &Pairtree{root: dir}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), pairtreeSuffix) {
			p.count++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// path fans the key's hash out over two directory levels so no single
// directory grows unboundedly (65536 leaf dirs at full fanout).
func (p *Pairtree) path(key string) string {
	h := sha256.Sum256([]byte(key))
	hh := hex.EncodeToString(h[:])
	return filepath.Join(p.root, hh[:2], hh[2:4], hh[4:]+pairtreeSuffix)
}

// parseEntry validates one entry file's framing, checksum, and stored
// key, returning the value bytes.
func parseEntry(raw []byte, key string) ([]byte, bool) {
	if len(raw) < pairtreeHdr+4 || string(raw[:4]) != pairtreeMagic {
		return nil, false
	}
	keyLen := binary.LittleEndian.Uint32(raw[4:8])
	valLen := binary.LittleEndian.Uint32(raw[8:12])
	if keyLen == 0 || keyLen > maxKeyLen || valLen > maxValLen ||
		int64(len(raw)) != int64(pairtreeHdr)+int64(keyLen)+int64(valLen)+4 {
		return nil, false
	}
	body := raw[pairtreeHdr : len(raw)-4]
	sum := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, false
	}
	if key != "" && string(body[:keyLen]) != key {
		return nil, false
	}
	return body[keyLen:], true
}

// Get reads and verifies the entry's file. A corrupted file (bad
// magic, framing, checksum, or key) is removed and reported as a miss.
func (p *Pairtree) Get(key string) ([]byte, bool) {
	raw, err := os.ReadFile(p.path(key))
	if err != nil {
		return nil, false
	}
	val, ok := parseEntry(raw, key)
	if !ok {
		p.Delete(key)
		return nil, false
	}
	return val, true
}

// Put atomically writes the entry: temp file in root, then rename into
// its fanout directory.
func (p *Pairtree) Put(key string, val []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("invalid cache key length %d", len(key))
	}
	if len(val) > maxValLen {
		return errors.New("cache value too large for the pairtree engine")
	}
	rec := make([]byte, pairtreeHdr+len(key)+len(val)+4)
	copy(rec, pairtreeMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(val)))
	copy(rec[pairtreeHdr:], key)
	copy(rec[pairtreeHdr+len(key):], val)
	sum := crc32.ChecksumIEEE(rec[pairtreeHdr : len(rec)-4])
	binary.LittleEndian.PutUint32(rec[len(rec)-4:], sum)

	dst := p.path(key)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(dst), 0o777); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(p.root, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(rec); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// The rename only makes the entry durable if the data reached the
	// platter first — fsync before rename, then fsync the parent
	// directory so the rename itself survives a power cut. Without
	// both, a crash can leave a named file with garbage (or no) blocks.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	existed := false
	if _, err := os.Lstat(dst); err == nil {
		existed = true
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if dir, err := os.Open(filepath.Dir(dst)); err == nil {
		dir.Sync()
		dir.Close()
	}
	if !existed {
		p.count++
	}
	return nil
}

func (p *Pairtree) Delete(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := os.Remove(p.path(key)); err == nil {
		p.count--
	}
}

func (p *Pairtree) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// Keys walks the tree, reading each entry file's header to recover the
// stored key (file names are key hashes, so the key itself lives in
// the file). Unreadable or corrupt files are skipped.
func (p *Pairtree) Keys(yield func(key string) bool) {
	stop := errors.New("stop")
	filepath.WalkDir(p.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), pairtreeSuffix) {
			return nil
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		if len(raw) < pairtreeHdr || string(raw[:4]) != pairtreeMagic {
			return nil
		}
		keyLen := binary.LittleEndian.Uint32(raw[4:8])
		if keyLen == 0 || keyLen > maxKeyLen || int64(len(raw)) < int64(pairtreeHdr)+int64(keyLen) {
			return nil
		}
		if !yield(string(raw[pairtreeHdr : pairtreeHdr+keyLen])) {
			return stop
		}
		return nil
	})
}

func (p *Pairtree) Close() error { return nil }
