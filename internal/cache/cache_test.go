package cache

import (
	"testing"

	"stash/internal/coh"
	"stash/internal/energy"
	"stash/internal/llc"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/sim"
	"stash/internal/stats"
)

// rig wires two L1 caches (nodes 1 and 2) to a full set of LLC banks on
// a 4x4 mesh, backed by DRAM.
type rig struct {
	eng  *sim.Engine
	net  *noc.Network
	mem  *memdata.Memory
	a, b *Cache
	acct *energy.Account
	set  *stats.Set
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	net := noc.New(eng, 4, 4, acct, set)
	mem := memdata.NewMemory()
	r := &rig{eng: eng, net: net, mem: mem, acct: acct, set: set}
	for n := 0; n < 16; n++ {
		router := coh.NewRouter()
		router.Attach(coh.ToLLC, llc.NewBank(eng, net, n, llc.DefaultParams(), mem, acct, set))
		switch n {
		case 1:
			r.a = New(eng, net, n, "a", DefaultParams(), acct, set)
			router.Attach(coh.ToL1, r.a)
		case 2:
			r.b = New(eng, net, n, "b", DefaultParams(), acct, set)
			router.Attach(coh.ToL1, r.b)
		}
		net.Register(n, func(m *noc.Message) { router.Deliver(m.Payload.(*coh.Packet)) })
	}
	return r
}

// load synchronously loads one word through cache c.
func (r *rig) load(c *Cache, addr memdata.PAddr) uint32 {
	line := memdata.LineOf(addr)
	w := memdata.WordIndex(addr)
	var out uint32
	doneFlag := false
	c.Load(line, memdata.Bit(w), func(vals [memdata.WordsPerLine]uint32) {
		out = vals[w]
		doneFlag = true
	})
	r.eng.Run()
	if !doneFlag {
		panic("load never completed")
	}
	return out
}

// store synchronously stores one word through cache c and drains.
func (r *rig) store(c *Cache, addr memdata.PAddr, v uint32) {
	line := memdata.LineOf(addr)
	w := memdata.WordIndex(addr)
	var vals [memdata.WordsPerLine]uint32
	vals[w] = v
	c.Store(line, memdata.Bit(w), vals, func() {})
	r.eng.Run()
}

func TestLoadMissThenHit(t *testing.T) {
	r := newRig(t)
	r.mem.StoreWord(0x1040, 321)
	if got := r.load(r.a, 0x1040); got != 321 {
		t.Fatalf("miss load = %d, want 321", got)
	}
	if got := r.load(r.a, 0x1040); got != 321 {
		t.Fatalf("hit load = %d, want 321", got)
	}
	if r.set.Sum("l1.a.misses") != 1 || r.set.Sum("l1.a.hits") != 1 {
		t.Fatalf("hit/miss = %d/%d, want 1/1",
			r.set.Sum("l1.a.hits"), r.set.Sum("l1.a.misses"))
	}
}

func TestStoreRegistersAndIsReadableLocally(t *testing.T) {
	r := newRig(t)
	r.store(r.a, 0x2000, 7)
	v, st, ok := r.a.Peek(0x2000)
	if !ok || v != 7 || st != coh.Registered {
		t.Fatalf("Peek = (%d, %v, %v), want (7, Registered, true)", v, st, ok)
	}
	if got := r.load(r.a, 0x2000); got != 7 {
		t.Fatalf("own store read = %d, want 7", got)
	}
}

func TestRemoteReadForwardsToOwner(t *testing.T) {
	r := newRig(t)
	r.store(r.a, 0x3000, 99)
	// b reads the word a owns: LLC forwards, a answers with its value.
	if got := r.load(r.b, 0x3000); got != 99 {
		t.Fatalf("remote read = %d, want 99", got)
	}
	if r.set.Sum("l1.a.remote_hits") != 1 {
		t.Fatalf("remote hits at owner = %d, want 1", r.set.Sum("l1.a.remote_hits"))
	}
}

func TestSelfInvalidateDropsSharedKeepsRegistered(t *testing.T) {
	r := newRig(t)
	r.mem.StoreWord(0x4000, 5)
	r.load(r.a, 0x4000)     // Shared
	r.store(r.a, 0x4004, 6) // Registered, same line
	r.a.SelfInvalidate()
	if _, st, _ := r.a.Peek(0x4000); st != coh.Invalid {
		t.Fatalf("shared word state after self-inv = %v, want Invalid", st)
	}
	if _, st, _ := r.a.Peek(0x4004); st != coh.Registered {
		t.Fatalf("registered word state after self-inv = %v, want Registered", st)
	}
}

func TestSelfInvalidatePicksUpRemoteUpdate(t *testing.T) {
	r := newRig(t)
	r.mem.StoreWord(0x5000, 1)
	if got := r.load(r.b, 0x5000); got != 1 {
		t.Fatalf("initial = %d", got)
	}
	r.store(r.a, 0x5000, 2) // a registers the word; b's copy is stale
	// b self-invalidates at the synchronization point, then re-reads.
	r.b.SelfInvalidate()
	if got := r.load(r.b, 0x5000); got != 2 {
		t.Fatalf("post-sync read = %d, want 2", got)
	}
}

func TestEvictionWritesBackAndDataSurvives(t *testing.T) {
	r := newRig(t)
	p := DefaultParams()
	numSets := p.SizeBytes / memdata.LineBytes / p.Ways
	stride := memdata.PAddr(numSets * memdata.LineBytes)
	r.store(r.a, 0x8000, 77)
	// Stream enough conflicting lines to evict 0x8000.
	for i := 1; i <= p.Ways+1; i++ {
		r.load(r.a, 0x8000+memdata.PAddr(i)*stride)
	}
	if r.set.Sum("l1.a.writebacks") == 0 {
		t.Fatal("no writebacks on eviction")
	}
	// The value must be visible to the other core via the LLC.
	if got := r.load(r.b, 0x8000); got != 77 {
		t.Fatalf("post-eviction remote read = %d, want 77", got)
	}
}

func TestDrainWaitsForRegistration(t *testing.T) {
	r := newRig(t)
	var vals [memdata.WordsPerLine]uint32
	vals[0] = 9
	drained := false
	r.a.Store(0x9000, memdata.Bit(0), vals, func() {})
	r.a.Drain(func() { drained = true })
	if drained {
		t.Fatal("drained before registration ack")
	}
	r.eng.Run()
	if !drained {
		t.Fatal("never drained")
	}
	if _, st, _ := r.a.Peek(0x9000); st != coh.Registered {
		t.Fatalf("state after drain = %v, want Registered", st)
	}
}

func TestPartialLineMiss(t *testing.T) {
	r := newRig(t)
	r.mem.StoreWord(0xa000, 1)
	r.mem.StoreWord(0xa004, 2)
	r.load(r.a, 0xa000)
	// Second word of the same line: partial miss (word-granularity).
	if got := r.load(r.a, 0xa004); got != 2 {
		t.Fatalf("partial-line load = %d, want 2", got)
	}
}

func TestConcurrentMissesMerge(t *testing.T) {
	r := newRig(t)
	r.mem.StoreWord(0xb000, 11)
	line := memdata.LineOf(memdata.PAddr(0xb000))
	count := 0
	for i := 0; i < 4; i++ {
		r.a.Load(line, memdata.Bit(0), func(vals [memdata.WordsPerLine]uint32) {
			if vals[0] == 11 {
				count++
			}
		})
	}
	r.eng.Run()
	if count != 4 {
		t.Fatalf("completed loads = %d, want 4", count)
	}
	// All four merged into a single LLC read.
	var llcReads uint64
	for n := 0; n < 16; n++ {
		llcReads += r.set.Sum("llc.") // counts everything; use misses below
	}
	if r.set.Sum("l1.a.misses") != 4 {
		t.Fatalf("l1 misses = %d, want 4 (all counted)", r.set.Sum("l1.a.misses"))
	}
}

func TestWritebackAllMakesDataGloballyVisible(t *testing.T) {
	r := newRig(t)
	r.store(r.a, 0xc000, 13)
	r.a.WritebackAll()
	r.eng.Run()
	if got := r.load(r.b, 0xc000); got != 13 {
		t.Fatalf("read after WritebackAll = %d, want 13", got)
	}
	if _, _, ok := r.a.Peek(0xc000); ok {
		t.Fatal("line still present after WritebackAll")
	}
}

func TestEnergyChargedPerTransaction(t *testing.T) {
	r := newRig(t)
	r.mem.StoreWord(0xd000, 1)
	r.load(r.a, 0xd000)
	r.load(r.a, 0xd000)
	if got := r.acct.Count(energy.L1Miss); got != 1 {
		t.Fatalf("L1 miss energy events = %d, want 1", got)
	}
	if got := r.acct.Count(energy.L1Hit); got != 1 {
		t.Fatalf("L1 hit energy events = %d, want 1", got)
	}
	if got := r.acct.Count(energy.TLBAccess); got != 2 {
		t.Fatalf("TLB events = %d, want 2", got)
	}
}

func TestNoEnergyWhenDisabled(t *testing.T) {
	eng := sim.NewEngine()
	acct := energy.NewAccount(energy.DefaultCosts())
	set := stats.NewSet()
	net := noc.New(eng, 4, 4, acct, set)
	mem := memdata.NewMemory()
	p := DefaultParams()
	p.ChargeEnergy = false
	var c *Cache
	for n := 0; n < 16; n++ {
		router := coh.NewRouter()
		router.Attach(coh.ToLLC, llc.NewBank(eng, net, n, llc.DefaultParams(), mem, acct, set))
		if n == 1 {
			c = New(eng, net, n, "cpu", p, acct, set)
			router.Attach(coh.ToL1, c)
		}
		net.Register(n, func(m *noc.Message) { router.Deliver(m.Payload.(*coh.Packet)) })
	}
	c.Load(0, memdata.Bit(0), func([memdata.WordsPerLine]uint32) {})
	eng.Run()
	if acct.Count(energy.L1Miss) != 0 || acct.Count(energy.TLBAccess) != 0 {
		t.Fatal("CPU L1 charged energy despite ChargeEnergy=false")
	}
	if acct.Count(energy.NoCFlitHop) == 0 {
		t.Fatal("CPU L1 NoC traffic must still be charged (paper Section 5.2)")
	}
}
